package signext_test

import (
	"strings"
	"testing"

	"signext"
)

const apiSrc = `
int sum(int[] a) {
	int t = 0;
	for (int i = 0; i < a.length; i++) { t += a[i]; }
	return t;
}
void main() {
	int[] a = new int[128];
	for (int i = 0; i < a.length; i++) { a[i] = i * 17 - 1000; }
	print(sum(a));
	double d = sum(a);
	print(d / 4.0);
}`

func TestFacadeEndToEnd(t *testing.T) {
	res, err := signext.CompileSource(apiSrc, signext.Options{
		Variant: signext.VariantAll, Machine: signext.IA64, WithProfile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := res.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	run, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Output != ref {
		t.Fatalf("optimized output diverged:\nref %q\ngot %q", ref, run.Output)
	}
	if res.Eliminated() == 0 {
		t.Fatal("nothing eliminated")
	}
	if run.Cycles == 0 || run.Steps == 0 {
		t.Fatal("no execution accounting")
	}
	if !strings.Contains(res.Format("sum"), "func sum") {
		t.Fatal("Format broken")
	}
	if !strings.Contains(res.Assembly("sum"), "cmp4") {
		t.Fatal("Assembly broken")
	}
}

func TestFacadeVariantSweep(t *testing.T) {
	var baseline int64 = -1
	for _, v := range signext.Variants {
		res, err := signext.CompileSource(apiSrc, signext.Options{Variant: v, Machine: signext.IA64})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		run, err := res.Run()
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if v == signext.VariantBaseline {
			baseline = run.DynamicExts
		}
		if v == signext.VariantAll && run.DynamicExts*4 > baseline {
			t.Fatalf("full algorithm left %d of %d dynamic extensions", run.DynamicExts, baseline)
		}
	}
}

func TestFacadeCompileError(t *testing.T) {
	_, err := signext.CompileSource("void main() { undeclared = 1; }", signext.Options{})
	if err == nil {
		t.Fatal("frontend error not surfaced")
	}
	if !strings.Contains(err.Error(), "undeclared") && !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestFacadeCheckedRun(t *testing.T) {
	res, err := signext.CompileSource(apiSrc, signext.Options{
		Variant: signext.VariantAll, Machine: signext.IA64, CheckedRun: true,
	})
	if err != nil {
		t.Fatalf("guarded compile + oracle rejected a sound program: %v", err)
	}
	if fbs := res.Fallbacks(); len(fbs) != 0 {
		t.Fatalf("spurious fallbacks: %v", fbs)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("explicit re-check failed: %v", err)
	}
}

func TestFacadeBudgetFallback(t *testing.T) {
	res, err := signext.CompileSource(apiSrc, signext.Options{
		Variant: signext.VariantAll, Machine: signext.IA64, CheckedRun: true, ElimBudget: 1,
	})
	if err != nil {
		t.Fatalf("budget fallback must still compile and pass the oracle: %v", err)
	}
	fbs := res.Fallbacks()
	if len(fbs) == 0 {
		t.Fatal("budget exhaustion not reported")
	}
	for _, fb := range fbs {
		if fb.Phase != "signext" || fb.Func == "" || !strings.Contains(fb.Reason, "budget") {
			t.Fatalf("malformed fallback record: %+v", fb)
		}
	}
	ref, err := res.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	run, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Output != ref {
		t.Fatalf("fallback code diverged:\nref %q\ngot %q", ref, run.Output)
	}
}

func TestFacadeCompileCache(t *testing.T) {
	cache := signext.NewCache(64 << 20)
	opts := signext.Options{
		Variant: signext.VariantAll, Machine: signext.IA64,
		WithProfile: true, Cache: cache,
	}
	cold, err := signext.CompileSource(apiSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	cs := cold.CacheStats()
	if cs == nil || cs.Hits != 0 || cs.Misses == 0 {
		t.Fatalf("first compile should be all misses, got %+v", cs)
	}
	warm, err := signext.CompileSource(apiSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.CacheStats()
	if ws == nil || ws.Misses != 0 || ws.Hits != cs.Misses {
		t.Fatalf("second compile should be all hits, got %+v", ws)
	}
	if warm.Format("sum") != cold.Format("sum") || warm.StaticExts() != cold.StaticExts() {
		t.Fatal("warm compile differs from cold compile")
	}
	wr, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	cr, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}
	if wr.Output != cr.Output || wr.DynamicExts != cr.DynamicExts {
		t.Fatalf("warm execution diverged: %+v vs %+v", wr, cr)
	}
	uncached, err := signext.CompileSource(apiSrc, signext.Options{
		Variant: signext.VariantAll, Machine: signext.IA64, WithProfile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if uncached.CacheStats() != nil {
		t.Fatal("compile without a cache reported cache stats")
	}
}

func TestFacadeRunTiered(t *testing.T) {
	tr, err := signext.RunTieredSource(apiSrc, signext.TieredOptions{
		Options:      signext.Options{Variant: signext.VariantAll, Machine: signext.IA64},
		Invocations:  4,
		HotThreshold: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Outputs) != 4 {
		t.Fatalf("got %d outputs, want 4", len(tr.Outputs))
	}
	ref, err := tr.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range tr.Outputs {
		if out != ref {
			t.Fatalf("invocation %d output diverged:\nref %q\ngot %q", i+1, ref, out)
		}
	}
	if len(tr.Promotions) == 0 || tr.Telemetry.TierUps == 0 {
		t.Fatal("no promotions under a low threshold")
	}
	// The steady-state artifact behaves like a one-shot compile.
	run, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Output != ref {
		t.Fatalf("steady-state output diverged:\nref %q\ngot %q", ref, run.Output)
	}
	if tr.Eliminated() == 0 {
		t.Fatal("steady-state compile eliminated nothing")
	}
	compiled := 0
	for _, s := range tr.States {
		if s.Tier.String() == "compiled" {
			compiled++
		}
	}
	if compiled != tr.Telemetry.TierUps {
		t.Fatalf("state/telemetry mismatch: %d compiled states, %d tier-ups", compiled, tr.Telemetry.TierUps)
	}
}

func TestFacadeProfileRoundTrip(t *testing.T) {
	tr, err := signext.RunTieredSource(apiSrc, signext.TieredOptions{
		Options:      signext.Options{Variant: signext.VariantAll, Machine: signext.IA64},
		HotThreshold: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := tr.Profile.Marshal()
	back, err := signext.ParseProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	// Compiling with the decoded profile reproduces the steady-state code.
	res, err := signext.CompileSource(apiSrc, signext.Options{
		Variant: signext.VariantAll, Machine: signext.IA64, Profile: back,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range tr.IR().Funcs {
		if got, want := res.Format(fn.Name), tr.Format(fn.Name); got != want {
			t.Fatalf("round-tripped profile compiled %s differently:\n%s\n----\n%s", fn.Name, got, want)
		}
	}
	// A warm-started run promotes before its first invocation.
	warm, err := signext.RunTieredSource(apiSrc, signext.TieredOptions{
		Options:      signext.Options{Variant: signext.VariantAll, Machine: signext.IA64},
		Invocations:  1,
		HotThreshold: 50,
		Seed:         back,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range warm.Promotions {
		if p.Invocation == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("seeded profile did not warm-start any promotion")
	}
}

func TestFacadeTieredCompileOption(t *testing.T) {
	res, err := signext.CompileSource(apiSrc, signext.Options{
		Variant: signext.VariantAll, Machine: signext.IA64, Tiered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := res.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	run, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Output != ref {
		t.Fatalf("Options.Tiered compile diverged:\nref %q\ngot %q", ref, run.Output)
	}
	if res.Eliminated() == 0 {
		t.Fatal("nothing eliminated")
	}
}
