package signext_test

import (
	"fmt"
	"log"

	"signext"
)

// ExampleCompileSource compiles the paper's count-down-loop shape with the
// full algorithm and reports the dynamic sign extension counts.
func ExampleCompileSource() {
	src := `
	void main() {
		int[] a = new int[100];
		for (int i = 0; i < a.length; i++) { a[i] = i; }
		int t = 0;
		int i = a.length;
		do { i = i - 1; t += a[i]; } while (i > 0);
		print(t);
	}`
	res, err := signext.CompileSource(src, signext.Options{
		Variant: signext.VariantAll,
		Machine: signext.IA64,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := res.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %s", run.Output)
	fmt.Printf("dynamic 32-bit sign extensions: %d\n", run.DynamicExts)
	// Output:
	// output: 4950
	// dynamic 32-bit sign extensions: 1
}

// ExampleResult_Format shows the optimized IR of a compiled function.
func ExampleResult_Format() {
	res, err := signext.CompileSource(`
	int half(int x) { return x / 2; }
	void main() { print(half(10)); }`, signext.Options{Variant: signext.VariantAll})
	if err != nil {
		log.Fatal(err)
	}
	run, _ := res.Run()
	fmt.Print(run.Output)
	// Output:
	// 5
}
