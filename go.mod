module signext

go 1.22
