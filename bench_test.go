// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark compiles and executes its suite once per iteration and
// reports the headline metric through b.ReportMetric:
//
//	BenchmarkTable1  — jBYTEmark dynamic extension counts (avg % vs baseline)
//	BenchmarkTable2  — SPECjvm98 dynamic extension counts
//	BenchmarkTable3  — compilation-time breakdown (% in sign-ext phase)
//	BenchmarkFigure11/12 — percentage series behind the figures
//	BenchmarkFigure13/14 — cycle-model performance improvement
//	BenchmarkAblation*   — design-choice ablations called out in DESIGN.md
//
// Run with: go test -bench=. -benchmem
package signext_test

import (
	"testing"

	"signext"
	"signext/internal/bench"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/workloads"
)

func runSuite(b *testing.B, ws []workloads.Workload, o bench.Options) *bench.SuiteResult {
	b.Helper()
	var res *bench.SuiteResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunSuite(ws, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Mismatch) > 0 {
			b.Fatalf("miscompiles: %v", res.Mismatch)
		}
	}
	return res
}

// BenchmarkTable1 regenerates Table 1: dynamic counts of remaining 32-bit
// sign extensions for jBYTEmark, all twelve variants.
func BenchmarkTable1(b *testing.B) {
	res := runSuite(b, workloads.JBYTEmark(), bench.Options{Machine: ir.IA64, UseProfile: true})
	b.ReportMetric(res.AvgPct(jit.All), "avg%_new_algorithm")
	b.ReportMetric(res.AvgPct(jit.FirstAlgorithm), "avg%_first_algorithm")
	b.ReportMetric(res.AvgPct(jit.GenUse), "avg%_gen_use")
}

// BenchmarkTable2 regenerates Table 2 for SPECjvm98.
func BenchmarkTable2(b *testing.B) {
	res := runSuite(b, workloads.SPECjvm98(), bench.Options{Machine: ir.IA64, UseProfile: true})
	b.ReportMetric(res.AvgPct(jit.All), "avg%_new_algorithm")
	b.ReportMetric(res.AvgPct(jit.FirstAlgorithm), "avg%_first_algorithm")
	b.ReportMetric(res.AvgPct(jit.BasicUDDU), "avg%_basic_ud_du")
}

// BenchmarkTable3 regenerates Table 3: the JIT compilation-time breakdown
// (sign extension optimizations vs UD/DU chain creation vs the rest) over
// every workload under the full algorithm.
func BenchmarkTable3(b *testing.B) {
	var se, ch, tot float64
	for i := 0; i < b.N; i++ {
		se, ch, tot = 0, 0, 0
		for _, suite := range [][]workloads.Workload{workloads.SPECjvm98(), workloads.JBYTEmark()} {
			res, err := bench.RunSuite(suite, bench.Options{
				Machine: ir.IA64, UseProfile: true, Variants: []jit.Variant{jit.All},
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, tm := range res.Timing {
				se += tm.SignExt.Seconds()
				ch += tm.Chains.Seconds()
				tot += tm.Total().Seconds()
			}
		}
	}
	if tot > 0 {
		b.ReportMetric(100*se/tot, "signext_%compile_time")
		b.ReportMetric(100*ch/tot, "chains_%compile_time")
	}
}

// BenchmarkFigure11 regenerates the percentage series of Figure 11.
func BenchmarkFigure11(b *testing.B) {
	res := runSuite(b, workloads.JBYTEmark(), bench.Options{Machine: ir.IA64, UseProfile: true})
	best, worst := 100.0, 0.0
	for wi := range res.Names {
		p := res.Pct(jit.All, wi)
		if p < best {
			best = p
		}
		if p > worst {
			worst = p
		}
	}
	b.ReportMetric(best, "best%_remaining")
	b.ReportMetric(worst, "worst%_remaining")
}

// BenchmarkFigure12 regenerates the percentage series of Figure 12.
func BenchmarkFigure12(b *testing.B) {
	res := runSuite(b, workloads.SPECjvm98(), bench.Options{Machine: ir.IA64, UseProfile: true})
	best, worst := 100.0, 0.0
	for wi := range res.Names {
		p := res.Pct(jit.All, wi)
		if p < best {
			best = p
		}
		if p > worst {
			worst = p
		}
	}
	b.ReportMetric(best, "best%_remaining")
	b.ReportMetric(worst, "worst%_remaining")
}

// BenchmarkFigure13 regenerates Figure 13: performance improvement of the
// full algorithm over baseline for jBYTEmark under the cycle model.
func BenchmarkFigure13(b *testing.B) {
	res := runSuite(b, workloads.JBYTEmark(), bench.Options{Machine: ir.IA64, UseProfile: true})
	sum := 0.0
	for wi := range res.Names {
		sum += res.Improvement(jit.All, wi)
	}
	b.ReportMetric(sum/float64(len(res.Names)), "avg_%improvement")
}

// BenchmarkFigure14 regenerates Figure 14 for SPECjvm98.
func BenchmarkFigure14(b *testing.B) {
	res := runSuite(b, workloads.SPECjvm98(), bench.Options{Machine: ir.IA64, UseProfile: true})
	sum := 0.0
	for wi := range res.Names {
		sum += res.Improvement(jit.All, wi)
	}
	b.ReportMetric(sum/float64(len(res.Names)), "avg_%improvement")
}

// BenchmarkAblationPPC64 repeats the Table 1 measurement on the PPC64-like
// model, where implicit sign-extending loads leave fewer extensions to
// remove in the first place (DESIGN.md ablation).
func BenchmarkAblationPPC64(b *testing.B) {
	res := runSuite(b, workloads.JBYTEmark(), bench.Options{Machine: ir.PPC64, UseProfile: true})
	b.ReportMetric(res.AvgPct(jit.All), "avg%_new_algorithm")
}

// BenchmarkAblationNoProfile measures order determination running on static
// frequency estimates only (no interpreter branch profile).
func BenchmarkAblationNoProfile(b *testing.B) {
	res := runSuite(b, workloads.JBYTEmark(), bench.Options{Machine: ir.IA64, UseProfile: false})
	b.ReportMetric(res.AvgPct(jit.All), "avg%_new_algorithm")
}

// BenchmarkAblationMaxLen measures the Figure 10 effect across the suite: a
// configured maximum array length below 0x7fffffff loosens Theorem 4's
// bound.
func BenchmarkAblationMaxLen(b *testing.B) {
	// The start index must be a genuinely signed runtime value: a constant
	// (or any zero-upper-half source) would let Theorem 3 remove the
	// extension regardless of maxlen.
	const src = `
static int bias = 0;
int walk(int[] a, int start, int stop) {
	int t = 0;
	int i = start;
	do { i = i - 2; t += a[i]; } while (i > stop);
	return t;
}
void main() {
	int[] a = new int[4096];
	for (int k = 0; k < a.length; k++) { a[k] = k; bias = bias - 1; }
	int start = bias + 8096; // = 4000, but signed and unknown to the ranges
	print(walk(a, start, 2));
}`
	var javaExts, smallExts int64
	for i := 0; i < b.N; i++ {
		for _, maxLen := range []int64{0, 0x7fff0001} {
			res, err := signext.CompileSource(src, signext.Options{
				Variant: signext.VariantAll, Machine: signext.IA64, MaxArrayLen: maxLen,
			})
			if err != nil {
				b.Fatal(err)
			}
			run, err := res.Run()
			if err != nil {
				b.Fatal(err)
			}
			if maxLen == 0 {
				javaExts = run.DynamicExts
			} else {
				smallExts = run.DynamicExts
			}
		}
	}
	b.ReportMetric(float64(javaExts), "dyn_ext_java_maxlen")
	b.ReportMetric(float64(smallExts), "dyn_ext_small_maxlen")
	if smallExts >= javaExts {
		b.Fatal("Theorem 4 with a smaller maxlen must remove more extensions")
	}
}

// BenchmarkAblationGeneration compares the two generation strategies of
// Figure 6 in isolation (no elimination): after-definition generation leaves
// more raw extensions than before-use generation, which is exactly why the
// paper pairs it with elimination.
func BenchmarkAblationGeneration(b *testing.B) {
	res := runSuite(b, workloads.JBYTEmark(), bench.Options{
		Machine: ir.IA64, Variants: []jit.Variant{jit.Baseline, jit.GenUse, jit.All},
	})
	b.ReportMetric(res.AvgPct(jit.GenUse), "gen_use_avg%")
	b.ReportMetric(res.AvgPct(jit.All), "gen_def_plus_elim_avg%")
}
