// Package signext is a from-scratch reproduction of "Effective Sign
// Extension Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002): a
// JIT-style compiler pipeline for 64-bit targets that generates sign
// extensions after every narrow definition, then removes almost all of them
// using UD/DU chains, frequency-ordered elimination, extension insertion,
// and the array-subscript theorems enabled by Java-like language rules.
//
// The package is a facade over the internal compiler:
//
//	res, err := signext.CompileSource(src, signext.Options{Variant: signext.VariantAll})
//	run, err := res.Run()
//	fmt.Println(run.Output, run.DynamicExts)
//
// Programs are written in MiniJava (see internal/minijava) or built directly
// with the IR builder (internal/ir) and compiled with CompileProgram.
package signext

import (
	"signext/internal/codecache"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/minijava"
	"signext/internal/peep"
	"signext/internal/profile"
	"signext/internal/target"
	"signext/internal/tiered"
)

// Variant selects the algorithm configuration, matching the paper's Tables 1
// and 2 rows.
type Variant = jit.Variant

// The measured variants.
const (
	VariantBaseline    = jit.Baseline
	VariantGenUse      = jit.GenUse
	VariantFirst       = jit.FirstAlgorithm
	VariantBasicUDDU   = jit.BasicUDDU
	VariantInsert      = jit.Insert
	VariantOrder       = jit.Order
	VariantInsertOrder = jit.InsertOrder
	VariantArray       = jit.Array
	VariantArrayInsert = jit.ArrayInsert
	VariantArrayOrder  = jit.ArrayOrder
	VariantAllPDE      = jit.AllPDE
	VariantAll         = jit.All
)

// Variants lists every variant in the paper's table order.
var Variants = jit.Variants

// Machine selects the target model.
type Machine = ir.Machine

// Supported machine models (section 4: IA64 zero-extends loads, PPC64
// sign-extends them).
const (
	IA64  = ir.IA64
	PPC64 = ir.PPC64
)

// Options configures a compilation.
type Options struct {
	Variant     Variant
	Machine     Machine
	MaxArrayLen int64 // the language's maxlen; 0 means Java's 0x7fffffff
	NoGeneral   bool  // disable the Figure 5 step (2) general optimizations
	WithProfile bool  // run the interpreter tier first for branch profiles

	// Parallelism sets the number of worker goroutines compiling functions
	// concurrently: 0 uses every CPU, 1 compiles sequentially. The compiled
	// program and all statistics are identical for every setting.
	Parallelism int

	// Checked runs the deep IR verifier at every phase boundary; a failing
	// function reverts to its pre-phase code (see Result.Fallbacks) instead
	// of aborting compilation.
	Checked bool

	// CheckedRun additionally executes the compiled program against the
	// Baseline-variant reference in the interpreter after compilation and
	// fails with an error on any output divergence or dynamic
	// extension-count regression.
	CheckedRun bool

	// ElimBudget caps the elimination phase's per-function analysis work;
	// exhaustion disables the phase for that function. 0 means unlimited.
	ElimBudget int

	// Peep enables the declarative rule-table peephole pass after the sign
	// extension phase: magic-number division, shift recombination, decided
	// branches, algebraic identities — each licensed by the value-range
	// facts the elimination phase proves.
	Peep bool

	// PeepRules restricts the peephole pass to the named table rules (see
	// RuleNames). Nil means every rule; unknown names fail compilation.
	PeepRules []string

	// Cache, when non-nil, serves per-function compilations from a shared
	// content-addressed cache (see NewCache, NewShardedCache,
	// NewPersistentCache) and stores misses into it. Warm hits are
	// bit-identical to the compile that populated the entry.
	Cache CacheHandle

	// Profile, when non-nil, feeds this branch profile to order
	// determination instead of gathering one (overrides WithProfile).
	// Profiles persisted by a tiered run (Profile.Marshal, sxelim
	// -profile-out) round-trip here.
	Profile Profile

	// Tiered gathers the branch profile with the tiered runtime instead of
	// a flat profiling run: the program executes under the execution
	// manager (default thresholds) and the compile uses the profile it
	// collected. Ignored when Profile is set.
	Tiered bool
}

// Cache is a shared, concurrency-safe, content-addressed per-function
// compilation cache with an LRU byte bound. One Cache may back any number of
// concurrent compilations; entries are keyed on the function's structural
// fingerprint plus every option that can change the compiled output.
type Cache = codecache.Cache

// CacheHandle is any cache topology the compiler accepts: a flat Cache, a
// Sharded cache (NewShardedCache), or a disk-backed persistent cache
// (NewPersistentCache).
type CacheHandle = codecache.Interface

// NewCache creates a compilation cache bounded to maxBytes resident bytes
// (estimated). maxBytes <= 0 yields a cache that stores at most one entry.
func NewCache(maxBytes int64) *Cache { return codecache.New(maxBytes) }

// NewShardedCache creates a compilation cache split over nShards
// independently locked LRU shards (0 = a sensible default), routed by
// content-address prefix — the topology for many concurrent compilations
// sharing one hot cache.
func NewShardedCache(maxBytes int64, nShards int) CacheHandle {
	return codecache.NewSharded(maxBytes, nShards)
}

// NewPersistentCache creates a sharded in-memory cache that writes every
// entry through to a crash-safe on-disk store rooted at dir and falls back
// to it on memory misses, so the warm set survives process restarts —
// including kill -9. Persisted entries are SHA-256-verified on load;
// corrupted files are quarantined and recompiled, never served.
func NewPersistentCache(dir string, maxBytes int64, nShards int) (CacheHandle, error) {
	disk, err := codecache.OpenDiskStore(dir, jit.PayloadCodec())
	if err != nil {
		return nil, err
	}
	return codecache.NewSpill(codecache.NewSharded(maxBytes, nShards), disk), nil
}

// CacheStats reports what Options.Cache did during one compilation.
type CacheStats = jit.CacheStats

// Fallback describes one optimizer phase that panicked, failed verification,
// or exhausted its work budget and was therefore disabled for one function.
// The compiled code is still correct: that function runs its pre-phase code.
type Fallback struct {
	Phase  string // pipeline phase that failed
	Func   string // function it was disabled for
	Reason string // one-line diagnosis
}

// Result is a compiled program.
type Result struct {
	res *jit.Result
	src *ir.Program
}

// StaticExts returns the number of extension instructions left in the code.
func (r *Result) StaticExts() int { return r.res.StaticExts }

// Eliminated returns how many extensions the optimizer removed.
func (r *Result) Eliminated() int { return r.res.Stats.Eliminated }

// Inserted returns how many extensions the insertion phase added.
func (r *Result) Inserted() int { return r.res.Stats.Inserted }

// PeepRewrites returns how many rule-table rewrites the peephole pass
// applied (0 unless Options.Peep was set).
func (r *Result) PeepRewrites() int { return r.res.PeepRewrites }

// IR returns the compiled program for inspection.
func (r *Result) IR() *ir.Program { return r.res.Prog }

// Fallbacks reports every phase the guarded pipeline disabled per function
// (after a panic, a verifier rejection, or budget exhaustion). Empty on a
// clean compile.
func (r *Result) Fallbacks() []Fallback {
	var fbs []Fallback
	for _, pe := range r.res.Fallbacks {
		fbs = append(fbs, Fallback{Phase: pe.Phase, Func: pe.Func, Reason: pe.Error()})
	}
	return fbs
}

// PhaseRecord is one compile-telemetry sample: wall time and counters for
// one phase of one function's compilation.
type PhaseRecord = jit.PhaseRecord

// Telemetry returns the per-function, per-phase compile-time records, sorted
// by function name. Their walls sum to exactly the compile work time.
func (r *Result) Telemetry() []PhaseRecord { return r.res.Telemetry }

// CacheStats reports this compile's cache hits and misses plus a snapshot of
// the shared cache's cumulative counters. It returns nil when the compile ran
// without a cache.
func (r *Result) CacheStats() *CacheStats { return r.res.CacheStats }

// Check runs the differential oracle against the Baseline-variant reference:
// identical output and traps, non-increasing dynamic extension count. It
// returns nil when the optimized program is observably sound.
func (r *Result) Check() error {
	_, err := jit.OracleCheck(r.src, r.res, "main")
	return err
}

// Format renders a compiled function as IR text.
func (r *Result) Format(fn string) string {
	f := r.res.Prog.Func(fn)
	if f == nil {
		return ""
	}
	return f.Format()
}

// Assembly lowers a compiled function to the machine model's instructions.
func (r *Result) Assembly(fn string) string {
	f := r.res.Prog.Func(fn)
	if f == nil {
		return ""
	}
	return target.Lower(f, r.res.Options.Machine).Format()
}

// RunResult is the outcome of executing a compiled program.
type RunResult struct {
	Output      string
	DynamicExts int64 // executed 32-bit sign extensions (Tables 1/2 metric)
	AllExts     int64 // executed extensions of every width
	Cycles      int64 // modelled machine cycles
	Steps       int64
}

// Run executes the compiled program's main function on the 64-bit machine
// model.
func (r *Result) Run() (*RunResult, error) {
	out, err := jit.Execute(r.res, "main")
	rr := &RunResult{}
	if out != nil {
		rr.Output = out.Output
		rr.DynamicExts = out.Ext32()
		rr.AllExts = out.ExtTotal()
		rr.Cycles = out.Cycles
		rr.Steps = out.Steps
	}
	return rr, err
}

// ReferenceRun executes the original (unconverted) program under 32-bit
// semantics — the oracle the optimized program must match.
func (r *Result) ReferenceRun() (string, error) {
	out, err := interp.Run(r.src, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		return "", err
	}
	return out.Output, nil
}

// CompileSource compiles MiniJava source under the given options.
func CompileSource(src string, o Options) (*Result, error) {
	cu, err := minijava.Compile(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(cu.Prog, o)
}

// jitOptions maps facade options onto the pipeline's, with the resolved
// branch profile.
func (o Options) jitOptions(p interp.Profile) jit.Options {
	return jit.Options{
		Variant:     o.Variant,
		Machine:     o.Machine,
		MaxArrayLen: o.MaxArrayLen,
		GeneralOpts: !o.NoGeneral,
		Profile:     p,
		Parallelism: o.Parallelism,
		Checked:     o.Checked || o.CheckedRun,
		ElimBudget:  o.ElimBudget,
		Peep:        o.Peep,
		PeepRules:   o.PeepRules,
		Cache:       o.Cache,
	}
}

// PeepRuleNames lists the peephole rule table's rule names in table order —
// the vocabulary Options.PeepRules accepts.
func PeepRuleNames() []string { return peep.RuleNames() }

// ValidatePeepRules checks a rule-name filter against the table, returning a
// descriptive error for any unknown name.
func ValidatePeepRules(names []string) error { return peep.ValidateRules(names) }

// CompileProgram compiles an IR program (in 32-bit form) under the given
// options. The input program is not modified.
func CompileProgram(prog *ir.Program, o Options) (*Result, error) {
	if err := peep.ValidateRules(o.PeepRules); err != nil {
		return nil, err
	}
	var p interp.Profile
	switch {
	case o.Profile != nil:
		p = o.Profile.ToInterp()
	case o.Tiered:
		gathered, err := GatherProfileTiered(prog, TieredOptions{Options: o})
		if err != nil {
			return nil, err
		}
		p = gathered.ToInterp()
	case o.WithProfile:
		ip, err := jit.ProfileRun(prog, "main", 0)
		if err != nil {
			return nil, err
		}
		p = ip
	}
	res, err := jit.Compile(prog, o.jitOptions(p))
	if err != nil {
		return nil, err
	}
	r := &Result{res: res, src: prog}
	if o.CheckedRun {
		if err := r.Check(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// Profile is a serializable branch profile: per-function call counts plus
// per-branch taken/fall-through totals, gathered by the interpreter tier.
// Marshal/Unmarshal give a deterministic JSON wire form (sxelim -profile-out
// / -profile-in).
type Profile = profile.Profile

// ParseProfile decodes a profile serialized with Profile.Marshal.
func ParseProfile(data []byte) (Profile, error) { return profile.Unmarshal(data) }

// GatherProfile executes the program's main once in the profiling
// interpreter tier and returns the branch profile (maxSteps 0 = default
// step budget). The profile of a trapping run's executed prefix is returned
// alongside the error.
func GatherProfile(prog *ir.Program, maxSteps int64) (Profile, error) {
	res, err := interp.Run(prog, "main", interp.Options{
		Mode:       interp.Mode32,
		Profile:    true,
		CountCalls: true,
		MaxSteps:   maxSteps,
	})
	return profile.FromInterp(res.Profile, res.Calls), err
}

// GatherProfileSource is GatherProfile over MiniJava source.
func GatherProfileSource(src string, maxSteps int64) (Profile, error) {
	cu, err := minijava.Compile(src)
	if err != nil {
		return nil, err
	}
	return GatherProfile(cu.Prog, maxSteps)
}

// GatherProfileTiered runs the tiered execution manager over the program
// and returns the profile it collected.
func GatherProfileTiered(prog *ir.Program, o TieredOptions) (Profile, error) {
	t, err := RunTiered(prog, o)
	if err != nil {
		return nil, err
	}
	return t.Profile, nil
}

// Tier-runtime types re-exported for facade users.
type (
	// Promotion records one function's tier-up.
	Promotion = tiered.Promotion
	// TierState is one function's tier, hotness weight and promotion point.
	TierState = tiered.FuncState
	// TierTelemetry aggregates invocation counts, tier-ups, tier-up wall
	// time and the per-tier modelled cycle split.
	TierTelemetry = tiered.Telemetry
)

// TieredOptions configures RunTiered.
type TieredOptions struct {
	Options

	// Invocations is how many times main runs under the execution manager
	// (default 3).
	Invocations int

	// HotThreshold is the hotness weight (calls + branch events) at which a
	// function is promoted out of the interpreter tier. 0 selects the
	// default; negative never promotes.
	HotThreshold int64

	// InterpPenalty scales cycles of interpreter-tier frames (default 10;
	// bench runs substitute a measured interpreter-vs-compiled ratio).
	InterpPenalty float64

	// MaxSteps bounds each invocation's interpreter steps (0 = default).
	MaxSteps int64

	// Seed warm-starts the profile, typically loaded with ParseProfile;
	// functions already hot in it promote before the first invocation.
	Seed Profile
}

// TieredResult is the outcome of a tiered execution.
type TieredResult struct {
	// Result is the steady-state artifact: the whole program compiled with
	// the gathered profile (bit-identical to the promoted bodies that ran).
	*Result

	// Outputs holds each invocation's program output, in order. All entries
	// are identical for a deterministic program — the tier mix never
	// changes observable behaviour.
	Outputs []string

	// Promotions lists every tier-up, in promotion order.
	Promotions []Promotion

	// States is the final per-function tier state, sorted by name.
	States []TierState

	// Telemetry aggregates the run's tier behaviour.
	Telemetry TierTelemetry

	// Profile is the gathered branch profile (persist with Marshal).
	Profile Profile
}

// RunTiered executes prog under the tiered runtime — every function starts
// in the profiling interpreter tier; functions crossing the hotness
// threshold are promoted through the full guarded jit pipeline with the
// profile gathered so far — and returns the steady-state compile plus tier
// telemetry. The input program is not modified.
func RunTiered(prog *ir.Program, o TieredOptions) (*TieredResult, error) {
	inv := o.Invocations
	if inv <= 0 {
		inv = 3
	}
	m, err := tiered.New(prog, tiered.Config{
		Options:       o.jitOptions(nil),
		Entry:         "main",
		HotThreshold:  o.HotThreshold,
		InterpPenalty: o.InterpPenalty,
		MaxSteps:      o.MaxSteps,
		Seed:          o.Seed,
	})
	if err != nil {
		return nil, err
	}
	tr := &TieredResult{}
	for i := 0; i < inv; i++ {
		res, err := m.Invoke()
		if err != nil {
			return nil, err
		}
		tr.Outputs = append(tr.Outputs, res.Output)
	}
	final, err := m.Finalize()
	if err != nil {
		return nil, err
	}
	tr.Result = &Result{res: final, src: prog}
	tr.Promotions = m.Promotions()
	tr.States = m.States()
	tr.Telemetry = m.Telemetry()
	tr.Profile = m.Profile()
	if o.CheckedRun {
		if err := tr.Result.Check(); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// RunTieredSource is RunTiered over MiniJava source.
func RunTieredSource(src string, o TieredOptions) (*TieredResult, error) {
	cu, err := minijava.Compile(src)
	if err != nil {
		return nil, err
	}
	return RunTiered(cu.Prog, o)
}
