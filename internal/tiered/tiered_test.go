package tiered

import (
	"strings"
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/codecache"
	"signext/internal/jit"
)

// testProg: main calls f(40) and prints its result; f runs a branchy loop
// with a narrow accumulator, so it gathers branch counts fast and exercises
// the extension machinery once promoted.
func testProg() *ir.Program {
	prog := ir.NewProgram()

	f := ir.NewFunc("f", ir.Param{W: ir.W32})
	n := f.Param(0)
	s := f.Fn.NewReg()
	i := f.Fn.NewReg()
	f.ConstTo(ir.W32, s, 0x7ffffff0) // near MaxInt32: the loop wraps W32
	f.ConstTo(ir.W32, i, 0)
	head := f.NewBlock()
	body := f.NewBlock()
	even := f.NewBlock()
	odd := f.NewBlock()
	latch := f.NewBlock()
	exit := f.NewBlock()
	f.Jmp(head)
	f.SetBlock(head)
	f.Br(ir.W32, ir.CondLT, i, n, body, exit)
	f.SetBlock(body)
	one := f.Const(ir.W32, 1)
	m := f.And(ir.W32, i, one)
	zero := f.Const(ir.W32, 0)
	f.Br(ir.W32, ir.CondEQ, m, zero, even, odd)
	f.SetBlock(even)
	f.OpTo(ir.OpAdd, ir.W32, s, s, i)
	f.Jmp(latch)
	f.SetBlock(odd)
	t := f.Mul(ir.W32, i, i)
	f.OpTo(ir.OpAdd, ir.W32, s, s, t)
	f.Jmp(latch)
	f.SetBlock(latch)
	f.OpTo(ir.OpAdd, ir.W32, i, i, one)
	f.Ext(ir.W32, i)
	f.Jmp(head)
	f.SetBlock(exit)
	f.Print(ir.W32, s)
	f.Ret(s)
	f.Fn.RetW = ir.W32
	prog.AddFunc(f.Fn)

	mb := ir.NewFunc("main")
	arg := mb.Const(ir.W32, 40)
	v := mb.Call("f", ir.W32, false, arg)
	mb.Print(ir.W32, v)
	mb.Ret(ir.NoReg)
	prog.AddFunc(mb.Fn)
	return prog
}

func testOpts() jit.Options {
	return jit.Options{Variant: jit.All, Machine: ir.IA64, GeneralOpts: true}
}

func formatProg(p *ir.Program) string {
	var sb strings.Builder
	for _, fn := range p.Funcs {
		sb.WriteString(fn.Format())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestPromotionAndOutputIdentity is the package-level contract: outputs stay
// bit-identical across the cold, mixed and steady tiers, the hot function
// tiers up, and the Finalize artifact equals a one-shot compile fed the
// gathered profile.
func TestPromotionAndOutputIdentity(t *testing.T) {
	prog := testProg()
	m, err := New(prog, Config{Options: testOpts(), HotThreshold: 150})
	if err != nil {
		t.Fatal(err)
	}

	var outputs []string
	for i := 0; i < 4; i++ {
		res, err := m.Invoke()
		if err != nil {
			t.Fatalf("invocation %d: %v", i+1, err)
		}
		outputs = append(outputs, res.Output)
	}
	for i, out := range outputs {
		if out != outputs[0] {
			t.Fatalf("invocation %d output diverged:\n%q\n%q", i+1, out, outputs[0])
		}
	}

	proms := m.Promotions()
	if len(proms) == 0 {
		t.Fatal("hot loop function was never promoted")
	}
	if m.Tier("f") != TierCompiled {
		t.Fatalf("f still in tier %v after %d invocations", m.Tier("f"), len(outputs))
	}
	for _, p := range proms {
		if p.Weight < 150 {
			t.Errorf("promotion of %s below threshold: weight %d", p.Func, p.Weight)
		}
		if p.Invocation < 1 {
			t.Errorf("unseeded promotion of %s at invocation %d", p.Func, p.Invocation)
		}
	}

	// One-shot compile with the gathered profile: same output...
	final, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	oneOpts := testOpts()
	oneOpts.Profile = m.Profile().ToInterp()
	oneshot, err := jit.Compile(prog, oneOpts)
	if err != nil {
		t.Fatal(err)
	}
	run, err := jit.Execute(oneshot, "main")
	if err != nil {
		t.Fatal(err)
	}
	if run.Output != outputs[0] {
		t.Fatalf("one-shot output diverged from tiered:\n%q\n%q", run.Output, outputs[0])
	}
	// ...and a bit-identical program to Finalize.
	if formatProg(final.Prog) != formatProg(oneshot.Prog) {
		t.Fatal("Finalize program differs from one-shot compile with the gathered profile")
	}
}

// TestFrozenProfileInvariant: the compiled body a function received at
// promotion time must be bit-identical to the one a later compile with the
// final (larger) profile produces — promoted functions' counts freeze, and
// the compiler only reads a function's own branch counts.
func TestFrozenProfileInvariant(t *testing.T) {
	prog := testProg()
	m, err := New(prog, Config{Options: testOpts(), HotThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := m.Invoke(); err != nil {
			t.Fatal(err)
		}
	}
	final, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Promotions() {
		got := m.mixed.Func(p.Func).Format()
		want := final.Prog.Func(p.Func).Format()
		if got != want {
			t.Errorf("promoted body of %s (invocation %d) differs from the final compile:\n%s\n----\n%s",
				p.Func, p.Invocation, got, want)
		}
	}
}

// TestSeedWarmStart: a profile persisted by a previous process promotes hot
// functions before the first invocation runs.
func TestSeedWarmStart(t *testing.T) {
	prog := testProg()
	warm, err := New(prog, Config{Options: testOpts(), HotThreshold: 150})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := warm.Invoke(); err != nil {
			t.Fatal(err)
		}
	}
	seed := warm.Profile()

	m, err := New(prog, Config{Options: testOpts(), HotThreshold: 150, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	proms := m.Promotions()
	if len(proms) == 0 || m.Tier("f") != TierCompiled {
		t.Fatal("seeded manager did not promote before the first invocation")
	}
	for _, p := range proms {
		if p.Invocation != 0 {
			t.Errorf("seeded promotion of %s stamped invocation %d, want 0", p.Func, p.Invocation)
		}
	}
	res, err := m.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != ref.Output {
		t.Fatalf("warm-started output diverged from reference:\n%q\n%q", res.Output, ref.Output)
	}
}

// TestNeverPromote: a negative threshold keeps everything in the
// interpreter tier, and the pure-interpreter output matches the reference
// semantics.
func TestNeverPromote(t *testing.T) {
	prog := testProg()
	m, err := New(prog, Config{Options: testOpts(), HotThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Promotions()) != 0 {
		t.Fatal("negative threshold still promoted")
	}
	ref, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != ref.Output {
		t.Fatalf("interpreter-tier output diverged from reference:\n%q\n%q", res.Output, ref.Output)
	}
	tel := m.Telemetry()
	if tel.CompiledCycles != 0 || tel.InterpCycles == 0 {
		t.Fatalf("cycle split wrong for all-interp run: %+v", tel)
	}
}

// TestTelemetryAndSteadySpeedup: per-invocation cycles are recorded, the
// interpreter penalty makes the cold invocation dearer than the steady one,
// and the tier split accounts for every modelled cycle.
func TestTelemetryAndSteadySpeedup(t *testing.T) {
	prog := testProg()
	m, err := New(prog, Config{Options: testOpts(), HotThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, err := m.Invoke(); err != nil {
			t.Fatal(err)
		}
	}
	tel := m.Telemetry()
	if tel.Invocations != rounds || len(tel.InvocationCycles) != rounds {
		t.Fatalf("invocation accounting: %+v", tel)
	}
	if tel.TierUps == 0 || tel.TierUpWall <= 0 {
		t.Fatalf("tier-up telemetry missing: %+v", tel)
	}
	if sp := tel.SteadySpeedup(); sp <= 1 {
		t.Errorf("steady-state speedup = %g, want > 1 (penalty %d)", sp, DefaultInterpPenalty)
	}
	var sum int64
	for _, c := range tel.InvocationCycles {
		sum += c
	}
	if got := tel.InterpCycles + tel.CompiledCycles; got != sum {
		t.Errorf("cycle split %d does not account for invocation total %d", got, sum)
	}
	states := m.States()
	if len(states) != 2 {
		t.Fatalf("States() = %v", states)
	}
	for _, s := range states {
		if s.Tier == TierCompiled && s.PromotedAt < 1 {
			t.Errorf("compiled %s has PromotedAt %d", s.Name, s.PromotedAt)
		}
		if s.Tier == TierInterp && s.PromotedAt != -1 {
			t.Errorf("interp %s has PromotedAt %d", s.Name, s.PromotedAt)
		}
	}
}

// TestCacheWarmPromotions: with a shared code cache, later promotion rounds
// and Finalize re-serve the frozen-profile functions as warm hits.
func TestCacheWarmPromotions(t *testing.T) {
	prog := testProg()
	opts := testOpts()
	opts.Cache = codecache.New(1 << 20)
	m, err := New(prog, Config{Options: opts, HotThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := m.Invoke(); err != nil {
			t.Fatal(err)
		}
	}
	final, err := m.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if final.CacheStats == nil || final.CacheStats.Hits == 0 {
		t.Fatalf("Finalize did not reuse frozen-profile compilations: %+v", final.CacheStats)
	}
}
