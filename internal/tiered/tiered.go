// Package tiered is the execution manager of the paper's combined
// interpreter and dynamic compiler: every function starts in the profiling
// interpreter tier (its 32-bit source form, Mode32), and functions whose
// hotness weight — entry count plus observed branch events — crosses a
// configurable threshold are promoted by recompiling through the full
// guarded jit pipeline with the profile gathered so far. Promoted functions
// run their compiled 64-bit bodies (Mode64) in the same program as the
// interpreter-tier remainder; the mix is sound because both calling
// conventions pass sign-extended narrow arguments and returns.
//
// A function's branch profile freezes at promotion: later runs execute its
// compiled body, whose instruction IDs no longer correspond to the source
// form, so the collector excludes promoted functions. Because the compiler
// consumes only a function's own branch counts, the body compiled at
// promotion time is bit-identical to one compiled later with the final
// gathered profile — the invariant the difftest profile-identity property
// checks against one-shot compilation.
package tiered

import (
	"fmt"
	"sort"
	"time"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/profile"
	"signext/internal/target"
)

// Tier identifies which form of a function executes.
type Tier uint8

const (
	// TierInterp is the profiling interpreter tier: the 32-bit source form.
	TierInterp Tier = iota
	// TierCompiled is the optimized tier: the jit-compiled 64-bit form.
	TierCompiled
)

func (t Tier) String() string {
	if t == TierCompiled {
		return "compiled"
	}
	return "interp"
}

// Defaults for Config zero values.
const (
	DefaultHotThreshold  = 100
	DefaultInterpPenalty = 10
)

// Config configures a Manager.
type Config struct {
	// Options is the jit pipeline configuration used for every promotion
	// compile and for Finalize. Options.Profile is overwritten with the
	// gathered profile on each compile.
	Options jit.Options

	// Entry is the function each Invoke executes. Default "main".
	Entry string

	// HotThreshold is the hotness weight (calls + branch events, seeded by
	// Seed) at which a function leaves the interpreter tier. Default
	// DefaultHotThreshold; negative means never promote.
	HotThreshold int64

	// InterpPenalty scales the cycle cost of instructions executed in
	// interpreter-tier frames, making the tier split visible in the cycle
	// telemetry. Default DefaultInterpPenalty (a modelled 10×); 1 disables
	// the penalty. bench.CompileBench replaces the default with a measured
	// ratio — interpreter nanoseconds per cycle over compiled-form
	// nanoseconds per cycle — so artifact tier-up speedups are calibrated
	// rather than assumed.
	InterpPenalty float64

	// MaxSteps bounds each invocation's interpreter steps (0 = interp
	// default).
	MaxSteps int64

	// Seed warm-starts the collector, e.g. from a persisted profile
	// (sxelim -profile-in). Seeded weight counts toward promotion, so hot
	// functions from a previous process can tier up before their first run.
	Seed profile.Profile
}

// Promotion records one function's tier-up.
type Promotion struct {
	Func       string
	Invocation int           // invocation after which it was promoted (0 = seeded)
	Weight     int64         // hotness weight at promotion time
	Wall       time.Duration // wall clock of the promotion's compile round
}

// FuncState is one function's current tier for inspection and CLI display.
type FuncState struct {
	Name       string
	Tier       Tier
	Weight     int64
	PromotedAt int // invocation after which it tiered up; -1 if still interpreting
}

// Telemetry aggregates the runtime's tier behaviour.
type Telemetry struct {
	Invocations int
	TierUps     int           // functions promoted to the compiled tier
	TierUpWall  time.Duration // total wall clock of promotion compile rounds

	// InterpCycles and CompiledCycles split the cycles by the tier of the
	// executing frame; InterpCycles already includes the InterpPenalty
	// factor. InvocationCycles records each invocation's total, so
	// cold-vs-steady-state comparisons need no re-run. InvokeWall is the
	// summed wall clock of the Invoke executions themselves (promotion
	// compiles excluded) — the measured counterpart of the modelled cycles.
	InterpCycles     int64
	CompiledCycles   int64
	InvocationCycles []int64
	InvokeWall       time.Duration
}

// SteadySpeedup returns the modelled speedup of the last (steady-state)
// invocation over the first (cold, all-interpreter) one; 0 with fewer than
// two invocations.
func (t Telemetry) SteadySpeedup() float64 {
	n := len(t.InvocationCycles)
	if n < 2 || t.InvocationCycles[n-1] == 0 {
		return 0
	}
	return float64(t.InvocationCycles[0]) / float64(t.InvocationCycles[n-1])
}

// Manager owns a tiered execution of one program.
type Manager struct {
	cfg       Config
	src       *ir.Program // pristine 32-bit source: every compile starts here
	mixed     *ir.Program // executing program: source bodies + promoted compiled bodies
	collector *profile.Collector
	tier      map[string]Tier
	prom      []Promotion
	promAt    map[string]int
	tel       Telemetry
	baseCost  func(*ir.Instr) int64
}

// New creates a Manager for prog (32-bit frontend form; not modified). A
// non-nil cfg.Seed is checked for promotions immediately, so functions hot
// in a previous process skip the cold tier.
func New(prog *ir.Program, cfg Config) (*Manager, error) {
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	if cfg.HotThreshold == 0 {
		cfg.HotThreshold = DefaultHotThreshold
	}
	if cfg.InterpPenalty <= 0 {
		cfg.InterpPenalty = DefaultInterpPenalty
	}
	m := &Manager{
		cfg:       cfg,
		src:       prog,
		mixed:     prog.Clone(),
		collector: profile.NewCollector(cfg.Seed),
		tier:      map[string]Tier{},
		promAt:    map[string]int{},
		baseCost:  target.CostModel(cfg.Options.Machine),
	}
	for _, fn := range prog.Funcs {
		m.tier[fn.Name] = TierInterp
	}
	if cfg.Seed != nil {
		if err := m.promote(0); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Invoke executes the entry function once on the current tier mix,
// accumulates the run's branch profile and call counts for every function
// still in the interpreter tier, then promotes functions that crossed the
// hotness threshold. The interp.Result is returned even when execution
// trapped (the profile of the executed prefix still counts); promotion is
// skipped on error.
func (m *Manager) Invoke() (*interp.Result, error) {
	m.tel.Invocations++
	inv := m.tel.Invocations

	// Interpreter-tier frames run Mode32, compiled frames Mode64, so
	// Result.ModeCycles is exactly the per-tier cycle split; the penalty is
	// applied to the interpreter share afterwards. The cost model stays
	// pure, which lets the threaded dispatcher charge whole segments at
	// once instead of calling a closure per instruction.
	t0 := time.Now()
	res, err := interp.Run(m.mixed, m.cfg.Entry, interp.Options{
		Mode:        interp.Mode64,
		Machine:     m.cfg.Options.Machine,
		MaxArrayLen: m.cfg.Options.MaxArrayLen,
		MaxSteps:    m.cfg.MaxSteps,
		Profile:     true,
		CountCalls:  true,
		FuncMode: func(name string) interp.Mode {
			if m.tier[name] == TierCompiled {
				return interp.Mode64
			}
			return interp.Mode32
		},
		Cost: m.baseCost,
	})
	m.tel.InvokeWall += time.Since(t0)
	m.collector.AddRun(res.Profile, res.Calls, func(name string) bool {
		return m.tier[name] != TierCompiled
	})
	interpCycles := int64(float64(res.ModeCycles[interp.Mode32]) * m.cfg.InterpPenalty)
	compiledCycles := res.ModeCycles[interp.Mode64]
	m.tel.InterpCycles += interpCycles
	m.tel.CompiledCycles += compiledCycles
	m.tel.InvocationCycles = append(m.tel.InvocationCycles, interpCycles+compiledCycles)
	if err != nil {
		return res, err
	}
	if perr := m.promote(inv); perr != nil {
		return res, perr
	}
	return res, nil
}

// promote recompiles and swaps in every interpreter-tier function whose
// weight reached the threshold. One compile round serves all of them: the
// jit pipeline is whole-program, and with a shared Options.Cache the
// already-promoted functions are warm hits.
func (m *Manager) promote(inv int) error {
	if m.cfg.HotThreshold < 0 {
		return nil
	}
	var hot []string
	for _, fn := range m.src.Funcs {
		if m.tier[fn.Name] == TierInterp && m.collector.Weight(fn.Name) >= m.cfg.HotThreshold {
			hot = append(hot, fn.Name)
		}
	}
	if len(hot) == 0 {
		return nil
	}
	o := m.cfg.Options
	o.Profile = m.collector.Snapshot().ToInterp()
	t0 := time.Now()
	res, err := jit.Compile(m.src, o)
	wall := time.Since(t0)
	if err != nil {
		return fmt.Errorf("tiered: promotion compile (invocation %d): %w", inv, err)
	}
	for _, name := range hot {
		cf := res.Prog.Func(name)
		if cf == nil {
			return fmt.Errorf("tiered: compiled program lost function %s", name)
		}
		m.mixed.ReplaceFunc(cf)
		m.tier[name] = TierCompiled
		m.promAt[name] = inv
		m.prom = append(m.prom, Promotion{
			Func: name, Invocation: inv,
			Weight: m.collector.Weight(name), Wall: wall,
		})
	}
	m.tel.TierUps = len(m.prom)
	m.tel.TierUpWall += wall
	return nil
}

// Finalize compiles the whole program one-shot with the gathered profile —
// the steady-state artifact. By the frozen-profile invariant its promoted
// functions are bit-identical to the bodies the mixed program has been
// executing.
func (m *Manager) Finalize() (*jit.Result, error) {
	o := m.cfg.Options
	o.Profile = m.collector.Snapshot().ToInterp()
	return jit.Compile(m.src, o)
}

// Profile returns a snapshot of the gathered profile (seed included).
func (m *Manager) Profile() profile.Profile { return m.collector.Snapshot() }

// Promotions returns every tier-up so far, in promotion order.
func (m *Manager) Promotions() []Promotion { return append([]Promotion(nil), m.prom...) }

// Telemetry returns the aggregate tier telemetry.
func (m *Manager) Telemetry() Telemetry {
	t := m.tel
	t.InvocationCycles = append([]int64(nil), m.tel.InvocationCycles...)
	return t
}

// Tier returns fn's current tier.
func (m *Manager) Tier(fn string) Tier { return m.tier[fn] }

// States returns the per-function tier state, sorted by name.
func (m *Manager) States() []FuncState {
	out := make([]FuncState, 0, len(m.src.Funcs))
	for _, fn := range m.src.Funcs {
		s := FuncState{
			Name:       fn.Name,
			Tier:       m.tier[fn.Name],
			Weight:     m.collector.Weight(fn.Name),
			PromotedAt: -1,
		}
		if s.Tier == TierCompiled {
			s.PromotedAt = m.promAt[fn.Name]
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
