package jit

import (
	"context"
	"testing"

	"signext/internal/codecache"
	"signext/internal/interp"
)

// TestDeadlineExpiredDegradesNeverWrong: compiling under an already-expired
// context must still produce a complete, correct program — every function at
// the Convert64-only floor, all of them listed in Result.Degraded, and the
// executed output identical to the 32-bit reference.
func TestDeadlineExpiredDegradesNeverWrong(t *testing.T) {
	cu := compileSrc(t)
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the compile starts

	for _, par := range []int{1, 4} {
		res, err := Compile(cu.Prog, Options{
			Variant: All, GeneralOpts: true, Verify: true,
			Parallelism: par, Ctx: ctx,
		})
		if err != nil {
			t.Fatalf("parallelism %d: degraded compile must not fail: %v", par, err)
		}
		if len(res.Degraded) != len(cu.Prog.Funcs) {
			t.Fatalf("parallelism %d: Degraded = %v, want all %d functions", par, res.Degraded, len(cu.Prog.Funcs))
		}
		if res.Stats.Eliminated != 0 || res.Stats.Inserted != 0 {
			t.Fatalf("parallelism %d: floor compile ran the elimination phase: %+v", par, res.Stats)
		}
		out, err := Execute(res, "main")
		if err != nil {
			t.Fatalf("parallelism %d: degraded program trapped: %v", par, err)
		}
		if out.Output != ref.Output {
			t.Fatalf("parallelism %d: degraded output diverges:\n got %q\nwant %q", par, out.Output, ref.Output)
		}
	}
}

// TestDeadlineFloorMatchesBaselineNoOpts: the floor code is exactly what a
// Baseline-variant, no-general-opts compile produces, function by function.
func TestDeadlineFloorMatchesBaselineNoOpts(t *testing.T) {
	cu := compileSrc(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	deg, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	floor, err := Compile(cu.Prog, Options{Variant: Baseline, GeneralOpts: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range floor.Prog.Funcs {
		if got := deg.Prog.Func(fn.Name).Format(); got != fn.Format() {
			t.Fatalf("%s: degraded code != Convert64-only floor:\n%s\n---\n%s", fn.Name, got, fn.Format())
		}
	}
}

// TestDeadlineFloorBypassesCache: floored functions must neither consume nor
// populate the shared cache — their outcome depends on when the deadline
// fired, not on content.
func TestDeadlineFloorBypassesCache(t *testing.T) {
	cu := compileSrc(t)
	cache := codecache.New(64 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Ctx: ctx, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("floor compile stored %d cache entries", cache.Len())
	}
	cs := res.CacheStats
	if cs == nil || cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("floor compile touched the cache: %+v", cs)
	}

	// And a healthy compile afterwards populates and reuses it normally.
	cold, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStats.Misses == 0 || cache.Len() == 0 {
		t.Fatal("healthy compile did not populate the cache")
	}
	warm, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.Hits != len(cu.Prog.Funcs) {
		t.Fatalf("warm hits = %d, want %d", warm.CacheStats.Hits, len(cu.Prog.Funcs))
	}
	for _, fn := range cold.Prog.Funcs {
		if warm.Prog.Func(fn.Name).Format() != fn.Format() {
			t.Fatalf("%s: warm result not identical after a degraded compile shared the cache", fn.Name)
		}
	}
}

// TestNoDeadlineUnaffected: a nil Ctx and a generous live deadline both
// compile fully optimized with nothing degraded.
func TestNoDeadlineUnaffected(t *testing.T) {
	cu := compileSrc(t)
	ctx := context.Background()
	for _, o := range []Options{
		{Variant: All, GeneralOpts: true},
		{Variant: All, GeneralOpts: true, Ctx: ctx},
	} {
		res, err := Compile(cu.Prog, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Degraded) != 0 {
			t.Fatalf("healthy compile degraded: %v", res.Degraded)
		}
		if res.Stats.Eliminated == 0 {
			t.Fatal("elimination did not run")
		}
	}
}
