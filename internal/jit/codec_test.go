package jit

import (
	"testing"

	"signext/internal/codecache"
	"signext/internal/guard"
)

// TestPersistentCacheWarmIdentity: a compile against a fresh process's
// cache (empty memory, populated disk) must be bit-identical to the cold
// compile that populated the disk — the restart-survival contract.
func TestPersistentCacheWarmIdentity(t *testing.T) {
	cu := compileSrc(t)
	dir := t.TempDir()
	disk, err := codecache.OpenDiskStore(dir, PayloadCodec())
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Variant: All, GeneralOpts: true, Verify: true,
		Cache: codecache.NewSpill(codecache.NewSharded(64<<20, 4), disk)}
	cold, err := Compile(cu.Prog, o)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Stats().Stores == 0 {
		t.Fatal("cold compile persisted nothing")
	}

	// "Restart": same disk store, empty memory cache.
	o2 := o
	o2.Cache = codecache.NewSpill(codecache.NewSharded(64<<20, 4), disk)
	warm, err := Compile(cu.Prog, o2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.Hits != len(cu.Prog.Funcs) {
		t.Fatalf("warm hits = %d, want %d (all from disk)", warm.CacheStats.Hits, len(cu.Prog.Funcs))
	}
	if disk.Stats().Loads == 0 {
		t.Fatal("warm compile never read the disk store")
	}
	if warm.Stats != cold.Stats || warm.StaticExts != cold.StaticExts {
		t.Fatalf("warm stats diverge: %+v vs %+v", warm.Stats, cold.Stats)
	}
	for _, fn := range cold.Prog.Funcs {
		if warm.Prog.Func(fn.Name).Format() != fn.Format() {
			t.Fatalf("%s: disk-warmed result not bit-identical", fn.Name)
		}
	}
}

// TestPersistentCacheCorruptEntryRecompiled: flipping bytes in persisted
// entries must never change a compile's result — corrupt files are
// quarantined and the functions silently recompiled.
func TestPersistentCacheCorruptEntryRecompiled(t *testing.T) {
	cu := compileSrc(t)
	dir := t.TempDir()
	disk, err := codecache.OpenDiskStore(dir, PayloadCodec())
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Variant: All, GeneralOpts: true,
		Cache: codecache.NewSpill(codecache.New(64<<20), disk)}
	cold, err := Compile(cu.Prog, o)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every persisted entry, deterministically.
	inj := guard.NewInjector(1)
	corrupted := 0
	for {
		if _, ok := inj.CorruptDiskEntry(dir); !ok {
			break
		}
		corrupted++
		if corrupted >= 64 {
			break
		}
	}
	if corrupted == 0 {
		t.Fatal("injector found no disk entries to corrupt")
	}

	o2 := o
	o2.Cache = codecache.NewSpill(codecache.New(64<<20), disk)
	warm, err := Compile(cu.Prog, o2)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Stats().Quarantined == 0 {
		t.Fatal("no corrupt entry was quarantined")
	}
	for _, fn := range cold.Prog.Funcs {
		if warm.Prog.Func(fn.Name).Format() != fn.Format() {
			t.Fatalf("%s: result diverged after disk corruption — the cache lied", fn.Name)
		}
	}
}

// TestPayloadCodecDeclinesFallbackEntries: entries carrying fallback records
// are not persisted.
func TestPayloadCodecDeclinesFallbackEntries(t *testing.T) {
	codec := PayloadCodec()
	if _, ok := codec.Encode(&cachePayload{fallbacks: []*guard.PhaseError{{Phase: "signext"}}}); ok {
		t.Fatal("codec persisted an entry with fallback records")
	}
	if _, ok := codec.Encode("not a payload"); ok {
		t.Fatal("codec persisted a foreign payload type")
	}
}

// TestPayloadCodecRejectsGarbage: version skew and semantically garbled IR
// both come back as decode errors (the quarantine trigger), never panics.
func TestPayloadCodecRejectsGarbage(t *testing.T) {
	codec := PayloadCodec()
	for _, bad := range []string{
		`not json`,
		`{"version":999,"func":""}`,
		`{"version":1,"func":"not ir"}`,
		`{"version":1,"func":"func f() i32 {\nb0:\n\tr0 = const 1\n}"}`, // block without terminator
	} {
		if _, _, err := codec.Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%q) accepted garbage", bad)
		}
	}
}
