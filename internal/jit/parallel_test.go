package jit

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/workloads"
)

// fingerprint captures everything about a compile that must not depend on
// the worker count: the full IR print, the statistics, and the telemetry and
// fallback records (minus wall times, which legitimately vary).
func fingerprint(res *Result) string {
	var b strings.Builder
	for _, fn := range res.Prog.Funcs {
		b.WriteString(fn.Format())
	}
	fmt.Fprintf(&b, "stats=%+v static=%d\n", res.Stats, res.StaticExts)
	for _, r := range res.Telemetry {
		fmt.Fprintf(&b, "tel %s %s elim=%d ins=%d dum=%d fb=%v\n",
			r.Func, r.Phase, r.Eliminated, r.Inserted, r.Dummies, r.Fallback)
	}
	for _, fb := range res.Fallbacks {
		fmt.Fprintf(&b, "fb %s %s panic=%v err=%v\n", fb.Phase, fb.Func, fb.Panic != nil, fb.Err != nil)
	}
	return b.String()
}

// TestParallelMatchesSequential is the tentpole guarantee: compiling the
// benchmark workloads with a full worker pool produces bit-identical results
// to a sequential compile, for every variant.
func TestParallelMatchesSequential(t *testing.T) {
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		par = 4 // still exercises the pool path
	}
	for _, w := range workloads.All() {
		cu, err := minijava.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		profile, err := ProfileRun(cu.Prog, "main", 0)
		if err != nil {
			t.Fatalf("%s: profile: %v", w.Name, err)
		}
		for _, v := range Variants {
			o := Options{
				Variant: v, Machine: ir.IA64, GeneralOpts: true,
				Profile: profile, Verify: true,
			}
			o.Parallelism = 1
			seq, err := Compile(cu.Prog, o)
			if err != nil {
				t.Fatalf("%s/%v seq: %v", w.Name, v, err)
			}
			o.Parallelism = par
			got, err := Compile(cu.Prog, o)
			if err != nil {
				t.Fatalf("%s/%v par: %v", w.Name, v, err)
			}
			if a, b := fingerprint(seq), fingerprint(got); a != b {
				t.Fatalf("%s/%v: parallel compile differs from sequential\n--- sequential ---\n%s\n--- parallel(%d) ---\n%s",
					w.Name, v, a, par, b)
			}
		}
	}
}

// TestParallelMatchesSequentialPPC64 repeats the determinism check on the
// second machine model for the full variant.
func TestParallelMatchesSequentialPPC64(t *testing.T) {
	for _, w := range workloads.JBYTEmark()[:3] {
		cu, err := minijava.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		o := Options{Variant: All, Machine: ir.PPC64, GeneralOpts: true, Verify: true}
		o.Parallelism = 1
		seq, err := Compile(cu.Prog, o)
		if err != nil {
			t.Fatal(err)
		}
		o.Parallelism = 8
		got, err := Compile(cu.Prog, o)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(seq) != fingerprint(got) {
			t.Fatalf("%s: PPC64 parallel compile differs from sequential", w.Name)
		}
	}
}

// TestTimingPartition is the accounting regression test: SignExt, Chains and
// Others must be a disjoint partition — their sum equals the sum over all
// telemetry records, each record counted exactly once.
func TestTimingPartition(t *testing.T) {
	cu, err := minijava.Compile(workloads.JBYTEmark()[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 4} {
		for _, v := range []Variant{Baseline, GenUse, FirstAlgorithm, All} {
			res, err := Compile(cu.Prog, Options{
				Variant: v, GeneralOpts: true, Verify: true, Parallelism: parallelism,
			})
			if err != nil {
				t.Fatalf("%v: %v", v, err)
			}
			var total, chains, signext, others int64
			for _, r := range res.Telemetry {
				total += int64(r.Wall)
				switch r.Phase {
				case PhaseChains:
					chains += int64(r.Wall)
				case PhaseSignExt:
					signext += int64(r.Wall)
				default:
					others += int64(r.Wall)
				}
				if r.Wall < 0 {
					t.Fatalf("%v: negative wall time in record %+v", v, r)
				}
			}
			tm := res.Timing
			if int64(tm.Total()) != total {
				t.Fatalf("%v par=%d: Timing.Total()=%v but telemetry sums to %v",
					v, parallelism, tm.Total(), total)
			}
			if int64(tm.Chains) != chains || int64(tm.SignExt) != signext || int64(tm.Others) != others {
				t.Fatalf("%v par=%d: partition mismatch: timing=%+v, telemetry chains=%d signext=%d others=%d",
					v, parallelism, tm, chains, signext, others)
			}
			if tm.SignExt < 0 || tm.Chains < 0 || tm.Others < 0 {
				t.Fatalf("%v: negative bucket: %+v", v, tm)
			}
			if tm.Wall <= 0 {
				t.Fatalf("%v: missing wall-clock stamp: %+v", v, tm)
			}
			if v == All && chains == 0 {
				t.Fatalf("expected a chains record for the full variant")
			}
		}
	}
}

// TestTelemetrySortedAndComplete pins the record layout the benchtab JSON
// export relies on: sorted by function name (program-scope records first),
// one conversion and one signext record per function.
func TestTelemetrySortedAndComplete(t *testing.T) {
	cu := compileSrc(t)
	res, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Verify: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Telemetry); i++ {
		if res.Telemetry[i-1].Func > res.Telemetry[i].Func {
			t.Fatalf("telemetry not sorted by function: %q before %q",
				res.Telemetry[i-1].Func, res.Telemetry[i].Func)
		}
	}
	perFunc := map[string]map[string]int{}
	for _, r := range res.Telemetry {
		if perFunc[r.Func] == nil {
			perFunc[r.Func] = map[string]int{}
		}
		perFunc[r.Func][r.Phase]++
	}
	if perFunc[ProgramScope][PhaseInlining] != 1 {
		t.Fatalf("missing program-scope inlining record: %+v", perFunc)
	}
	for _, fn := range res.Prog.Funcs {
		got := perFunc[fn.Name]
		if got[PhaseConvert] != 1 || got[PhaseOpts] != 1 || got[PhaseSignExt] != 1 {
			t.Fatalf("%s: incomplete phase records: %+v", fn.Name, got)
		}
	}
}

// TestParallelFallbackDeterministic forces a signext panic in one function
// and checks the fallback handling — snapshot restore, record contents, the
// rest of the program still optimized — is identical at every worker count.
func TestParallelFallbackDeterministic(t *testing.T) {
	cu := compileSrc(t) // two functions: rnd and main
	compile := func(par int) *Result {
		res, err := Compile(cu.Prog, Options{
			Variant: All, GeneralOpts: true, Verify: true, Parallelism: par,
			PhaseHook: func(phase string, fn *ir.Func) {
				if phase == PhaseSignExt && fn != nil && fn.Name == "rnd" {
					panic("forced signext failure")
				}
			},
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res
	}
	seq := compile(1)
	if len(seq.Fallbacks) != 1 || seq.Fallbacks[0].Func != "rnd" || seq.Fallbacks[0].Phase != PhaseSignExt {
		t.Fatalf("expected exactly one rnd/signext fallback, got %+v", seq.Fallbacks)
	}
	par := compile(8)
	if fingerprint(seq) != fingerprint(par) {
		t.Fatalf("fallback compile differs between worker counts\n--- seq ---\n%s\n--- par ---\n%s",
			fingerprint(seq), fingerprint(par))
	}
	// The fallback phase's record must be flagged.
	var flagged bool
	for _, r := range par.Telemetry {
		if r.Func == "rnd" && r.Phase == PhaseSignExt && r.Fallback {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("fallback not flagged in telemetry")
	}
}
