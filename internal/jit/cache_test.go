package jit

import (
	"runtime"
	"strings"
	"testing"

	"signext/internal/codecache"
	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/workloads"
)

// cacheFingerprint is the warm/cold identity check: everything fingerprint()
// captures, except the "cache" telemetry records a warm compile necessarily
// adds (walls are already excluded by fingerprint).
func cacheFingerprint(res *Result) string {
	var b strings.Builder
	for _, line := range strings.Split(fingerprint(res), "\n") {
		if strings.HasPrefix(line, "tel ") && strings.Contains(line, " "+PhaseCache+" ") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCacheWarmIdentity is the tentpole guarantee: for every workload, every
// variant and every worker count, a warm-hit compile produces bit-identical
// IR, statistics, counter telemetry and fallback records to the cold compile
// that populated the cache — and the warm compile's timing partition stays
// disjoint (every record in exactly one bucket).
func TestCacheWarmIdentity(t *testing.T) {
	all := runtime.GOMAXPROCS(0)
	for _, w := range workloads.All() {
		cu, err := minijava.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		profile, err := ProfileRun(cu.Prog, "main", 0)
		if err != nil {
			t.Fatalf("%s: profile: %v", w.Name, err)
		}
		for _, v := range Variants {
			cache := codecache.New(64 << 20)
			o := Options{
				Variant: v, Machine: ir.IA64, GeneralOpts: true,
				Profile: profile, Parallelism: 1, Cache: cache,
			}
			cold, err := Compile(cu.Prog, o)
			if err != nil {
				t.Fatalf("%s/%v cold: %v", w.Name, v, err)
			}
			if cold.CacheStats == nil || cold.CacheStats.Hits != 0 || cold.CacheStats.Misses != len(cu.Prog.Funcs) {
				t.Fatalf("%s/%v cold: unexpected cache stats %+v", w.Name, v, cold.CacheStats)
			}
			want := cacheFingerprint(cold)
			for _, par := range []int{1, 4, all} {
				o.Parallelism = par
				warm, err := Compile(cu.Prog, o)
				if err != nil {
					t.Fatalf("%s/%v warm(par=%d): %v", w.Name, v, par, err)
				}
				cs := warm.CacheStats
				if cs == nil || cs.Hits != len(cu.Prog.Funcs) || cs.Misses != 0 {
					t.Fatalf("%s/%v warm(par=%d): expected all hits, got %+v", w.Name, v, par, cs)
				}
				if got := cacheFingerprint(warm); got != want {
					t.Fatalf("%s/%v warm(par=%d): output differs from cold compile\n--- cold ---\n%s\n--- warm ---\n%s",
						w.Name, v, par, want, got)
				}
				var work int64
				for _, r := range warm.Telemetry {
					work += int64(r.Wall)
				}
				if work != int64(warm.Timing.Total()) {
					t.Fatalf("%s/%v warm(par=%d): timing partition broken: records sum %d, Total %d",
						w.Name, v, par, work, warm.Timing.Total())
				}
			}
		}
	}
}

// TestCacheEvictionRefill drives a cache far too small for the workload so
// entries are evicted and refilled continuously, and requires compiles to
// stay bit-identical throughout — an eviction may cost time, never
// correctness.
func TestCacheEvictionRefill(t *testing.T) {
	cu, err := minijava.Compile(workloads.SPECjvm98()[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(cu.Prog.Funcs) < 2 {
		t.Fatal("test premise: workload must have several functions")
	}
	cache := codecache.New(4 << 10) // a few KB: holds ~1 function
	o := Options{Variant: All, Machine: ir.IA64, GeneralOpts: true, Cache: cache, Parallelism: 1}
	ref, err := Compile(cu.Prog, o)
	if err != nil {
		t.Fatal(err)
	}
	want := cacheFingerprint(ref)
	for i := 0; i < 3; i++ {
		res, err := Compile(cu.Prog, o)
		if err != nil {
			t.Fatal(err)
		}
		if got := cacheFingerprint(res); got != want {
			t.Fatalf("round %d: eviction-refill cycle changed the compile output", i)
		}
	}
	s := cache.Stats()
	if s.Evictions == 0 {
		t.Errorf("premise broken: no evictions under a %d-byte bound (stats %+v)", 4<<10, s)
	}
	if s.Bytes > s.CapacityBytes && s.Entries > 1 {
		t.Errorf("byte bound violated: %+v", s)
	}

	// After growing the cache, a refill pass makes the next compile all-hits
	// and still identical.
	big := codecache.New(64 << 20)
	o.Cache = big
	if _, err := Compile(cu.Prog, o); err != nil {
		t.Fatal(err)
	}
	res, err := Compile(cu.Prog, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.Hits != len(cu.Prog.Funcs) || res.CacheStats.Misses != 0 {
		t.Fatalf("refill did not produce a fully warm compile: %+v", res.CacheStats)
	}
	if got := cacheFingerprint(res); got != want {
		t.Fatal("refilled warm compile differs from the original cold compile")
	}
}

// TestCacheParanoidRejectsCorruptedEntry is the chaos variant: a corrupted
// function planted under a valid cache key must be caught by paranoid-mode
// guard verification, evicted, and transparently recompiled — while a
// non-paranoid cache happily installs the corpse, which is exactly why the
// mode exists.
func TestCacheParanoidRejectsCorruptedEntry(t *testing.T) {
	cu, err := minijava.Compile(workloads.JBYTEmark()[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	// GeneralOpts off keeps inlining out of the picture, so cacheKey over the
	// source functions matches what Compile computes internally.
	o := Options{Variant: All, Machine: ir.IA64, GeneralOpts: false, Parallelism: 1}
	corrupt := func() (*codecache.Cache, codecache.Key) {
		cache := codecache.New(64 << 20)
		oc := o
		oc.Cache = cache
		if _, err := Compile(cu.Prog, oc); err != nil {
			t.Fatal(err)
		}
		key := cacheKey(cu.Prog.Funcs[0], oc)
		v, ok := cache.Get(key)
		if !ok {
			t.Fatal("test premise: key derivation out of sync with Compile")
		}
		p := v.(*cachePayload)
		bad := p.fn.Clone()
		// An ext of width 64 is structurally illegal; the deep verifier
		// rejects it.
		ext := bad.NewInstr(ir.OpExt)
		ext.W = ir.W64
		ext.Dst, ext.Srcs[0], ext.NSrcs = 0, 0, 1
		bad.Entry().InsertAt(0, ext)
		cache.Put(key, &cachePayload{
			fn: bad, stats: p.stats, records: p.records,
			fallbacks: p.fallbacks, staticExts: p.staticExts,
		}, 1024)
		return cache, key
	}

	// Paranoid mode: the corruption is rejected, recompiled and replaced.
	cache, key := corrupt()
	cache.SetParanoid(true)
	oc := o
	oc.Cache = cache
	res, err := Compile(cu.Prog, oc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.ParanoidRejects != 1 {
		t.Fatalf("expected 1 paranoid reject, got %+v", res.CacheStats)
	}
	if err := guard.VerifyProgram(res.Prog, o.Machine); err != nil {
		t.Fatalf("paranoid mode shipped a corrupted function: %v", err)
	}
	if s := cache.Stats(); s.ParanoidRejects != 1 {
		t.Errorf("cache-side reject counter not bumped: %+v", s)
	}
	// The bad entry was replaced by the recompile: the next hit verifies.
	if v, ok := cache.Get(key); !ok {
		t.Error("recompiled entry was not restored")
	} else if err := guard.VerifyFunc(v.(*cachePayload).fn, o.Machine); err != nil {
		t.Errorf("restored entry still corrupt: %v", err)
	}

	// Control: without paranoid mode the planted corpse is installed
	// verbatim — the deep verifier then fails on the compiled program.
	cache, _ = corrupt()
	oc.Cache = cache
	res, err = Compile(cu.Prog, oc)
	if err != nil {
		t.Fatal(err)
	}
	if err := guard.VerifyProgram(res.Prog, o.Machine); err == nil {
		t.Fatal("control failed: corrupted entry was expected to reach the output without paranoid mode")
	}
}

// TestCacheProfileSignatureSeparation: the per-function branch-profile
// signature partitions the key space exactly. A re-gathered profile with
// identical counts (a distinct map object, as a warm-started tiered run
// produces) must hit every entry; changing a single branch count must miss
// for the affected function and only for it.
func TestCacheProfileSignatureSeparation(t *testing.T) {
	cu, err := minijava.Compile(workloads.JBYTEmark()[1].Source)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ProfileRun(cu.Prog, "main", 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileRun(cu.Prog, "main", 0) // deterministic re-run: equal counts, fresh maps
	if err != nil {
		t.Fatal(err)
	}
	cache := codecache.New(64 << 20)
	o := Options{Variant: All, Machine: ir.IA64, GeneralOpts: true, Cache: cache, Parallelism: 1, Profile: p1}
	cold, err := Compile(cu.Prog, o)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStats.Hits != 0 {
		t.Fatalf("cold compile was not cold: %+v", cold.CacheStats)
	}
	funcs := cold.CacheStats.Misses

	o.Profile = p2
	warm, err := Compile(cu.Prog, o)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.Misses != 0 || warm.CacheStats.Hits != funcs {
		t.Fatalf("re-gathered identical profile did not hit every entry: %+v", warm.CacheStats)
	}

	// Mutate one branch count of one function: that function's key — and no
	// other — must change.
	mut := interp.Profile{}
	for name, branches := range p2 {
		mb := map[int]*[2]int64{}
		for id, c := range branches {
			cc := *c
			mb[id] = &cc
		}
		mut[name] = mb
	}
	victim := ""
	for _, fn := range cu.Prog.Funcs {
		if len(mut[fn.Name]) > 0 {
			victim = fn.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("no function gathered branch counts")
	}
	for _, c := range mut[victim] {
		c[0]++ // one extra taken edge
		break
	}
	mo := o
	mo.Profile = mut
	for _, fn := range cu.Prog.Funcs {
		same := cacheKey(fn, o) == cacheKey(fn, mo)
		if fn.Name == victim && same {
			t.Errorf("%s: changed branch count did not change the cache key", fn.Name)
		}
		if fn.Name != victim && !same {
			t.Errorf("%s: unrelated function's key changed with another function's profile", fn.Name)
		}
	}
	res, err := Compile(cu.Prog, mo)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.Misses != 1 || res.CacheStats.Hits != funcs-1 {
		t.Errorf("changed profile should miss exactly the affected function: %+v (funcs %d)",
			res.CacheStats, funcs)
	}
}

// TestCacheKeySeparation: compiles that may differ in output must never share
// entries — variant, profile, budget and machine all partition the key space.
func TestCacheKeySeparation(t *testing.T) {
	cu, err := minijava.Compile(workloads.JBYTEmark()[1].Source)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := ProfileRun(cu.Prog, "main", 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := codecache.New(64 << 20)
	base := Options{Variant: All, Machine: ir.IA64, GeneralOpts: true, Cache: cache, Parallelism: 1}
	if _, err := Compile(cu.Prog, base); err != nil {
		t.Fatal(err)
	}
	variants := map[string]Options{}
	for name, mut := range map[string]func(*Options){
		"variant": func(o *Options) { o.Variant = Baseline },
		"machine": func(o *Options) { o.Machine = ir.PPC64 },
		"profile": func(o *Options) { o.Profile = profile },
		"budget":  func(o *Options) { o.ElimBudget = 1 << 20 },
		"checked": func(o *Options) { o.Checked = true },
	} {
		o := base
		mut(&o)
		variants[name] = o
	}
	for name, o := range variants {
		res, err := Compile(cu.Prog, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "profile" {
			// A function with no profiled branches legitimately shares its
			// entry with the profile-less compile (identical inputs); every
			// function that has profile data must get a fresh key.
			for _, fn := range cu.Prog.Funcs {
				with, without := o, o
				without.Profile = nil
				if len(profile[fn.Name]) > 0 && cacheKey(fn, with) == cacheKey(fn, without) {
					t.Errorf("profile: %s has branch counts but key ignores them", fn.Name)
				}
			}
			if res.CacheStats.Misses == 0 {
				t.Errorf("profile: no function was recompiled under a real profile: %+v", res.CacheStats)
			}
			continue
		}
		if res.CacheStats.Hits != 0 {
			t.Errorf("%s: option change reused cache entries: %+v", name, res.CacheStats)
		}
	}
	// The unchanged options still hit.
	res, err := Compile(cu.Prog, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.Misses != 0 {
		t.Errorf("baseline options stopped hitting after unrelated compiles: %+v", res.CacheStats)
	}

	// A hooked compile bypasses the cache in both directions.
	o := base
	o.PhaseHook = func(string, *ir.Func) {}
	hooked, err := Compile(cu.Prog, o)
	if err != nil {
		t.Fatal(err)
	}
	if hooked.CacheStats != nil {
		t.Errorf("hooked compile should report no cache involvement, got %+v", hooked.CacheStats)
	}
}
