// Package jit drives the compiler pipeline of the paper's Figure 5 — 64-bit
// conversion, general optimizations, and the sign extension phase — for each
// measured algorithm variant, with per-phase timing (the paper's Table 3) and
// the tiered profile collection of its combined interpreter and dynamic
// compiler: a profiling run in the interpreter supplies branch statistics to
// order determination.
//
// The pipeline is guarded the way a production JIT tier is: every optimizer
// phase runs under recover with a pre-phase snapshot of the function, so a
// panicking or (under Options.Checked) verifier-rejected phase disables
// itself for that function only and compilation still succeeds with the
// correct Convert64-only code. See internal/guard.
//
// Per-function pipelines are independent, so Compile fans them out over a
// worker pool (Options.Parallelism). The result is bit-identical to a
// sequential compile: workers only touch their own function, and the driver
// merges statistics, telemetry and fallbacks in a deterministic order.
package jit

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"signext/internal/codecache"
	"signext/internal/extelim"
	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/opt"
	"signext/internal/peep"
	"signext/internal/target"
)

// Variant enumerates the measured algorithm configurations, matching the rows
// of the paper's Tables 1 and 2.
type Variant int

// The twelve variants of Tables 1 and 2.
const (
	Baseline       Variant = iota // disable the sign extension phase entirely
	GenUse                        // generate before use points; no elimination
	FirstAlgorithm                // generation after defs + backward dataflow
	BasicUDDU                     // UD/DU elimination; no insert/order/array
	Insert                        // + insertion only
	Order                         // + order determination only
	InsertOrder                   // insertion and order determination
	Array                         // array-subscript elimination only
	ArrayInsert                   // array + insertion
	ArrayOrder                    // array + order determination
	AllPDE                        // everything, PDE-style insertion
	All                           // the new algorithm, everything enabled
	numVariants
)

// Variants lists every variant in table order.
var Variants = []Variant{
	Baseline, GenUse, FirstAlgorithm, BasicUDDU, Insert, Order, InsertOrder,
	Array, ArrayInsert, ArrayOrder, AllPDE, All,
}

var variantNames = [numVariants]string{
	"baseline", "gen use (reference)", "first algorithm (bwd flow)",
	"basic ud/du", "insert", "order", "insert, order", "array",
	"array, insert", "array, order", "all, using PDE (reference)",
	"new algorithm (all)",
}

func (v Variant) String() string { return variantNames[v] }

// config maps a variant onto the elimination phase switches.
func (v Variant) config() (useElim bool, c extelim.Config) {
	switch v {
	case Baseline, GenUse, FirstAlgorithm:
		return false, c
	case BasicUDDU:
	case Insert:
		c.Insert = true
	case Order:
		c.Order = true
	case InsertOrder:
		c.Insert, c.Order = true, true
	case Array:
		c.Array = true
	case ArrayInsert:
		c.Array, c.Insert = true, true
	case ArrayOrder:
		c.Array, c.Order = true, true
	case AllPDE:
		c.Array, c.Insert, c.Order, c.UsePDE = true, true, true, true
	case All:
		c.Array, c.Insert, c.Order = true, true, true
	}
	return true, c
}

// Options configures a compilation.
type Options struct {
	Variant     Variant
	Machine     ir.Machine
	MaxArrayLen int64
	GeneralOpts bool           // Figure 5 step (2); on for all paper rows
	Profile     interp.Profile // branch profile for order determination
	Verify      bool           // run the shallow IR verifier after each phase

	// Parallelism is the number of worker goroutines the per-function phase
	// pipelines fan out over. 0 selects runtime.GOMAXPROCS(0); 1 compiles
	// strictly sequentially on the calling goroutine. Whole-program inlining
	// always runs sequentially first. The compiled program, statistics,
	// telemetry and fallback records are identical for every setting — only
	// wall-clock time changes.
	Parallelism int

	// Checked runs the deep guard verifier (CFG consistency, def-before-use,
	// extension widths, chain cross-consistency) at every phase boundary. A
	// function failing verification is restored to its pre-phase snapshot —
	// the phase is disabled for that function only — and the failure is
	// recorded in Result.Fallbacks.
	Checked bool

	// ElimBudget caps the per-function analysis work of the elimination
	// phase (extelim.Config.MaxWork). Exhaustion triggers the same graceful
	// fallback as a phase panic. 0 means unlimited.
	ElimBudget int

	// Peep enables the declarative rule-table peephole pass (internal/peep)
	// after the sign extension phase. It consumes the same value-range facts
	// the elimination phase proves — the upper-32-bits-zero facts in
	// particular feed the magic-number division rules — and runs under the
	// same guard: a panicking or verifier-rejected pass restores the
	// pre-phase snapshot for that function only.
	Peep bool

	// PeepRules, when non-empty, restricts the peephole pass to the named
	// table rules. Names must come from peep.RuleNames; validate user input
	// with peep.ValidateRules before compiling. Nil means every rule.
	PeepRules []string

	// PhaseHook, if set, is called inside every guarded phase before its
	// body runs, with the function about to be transformed (nil for the
	// whole-program inlining phase). Tests use it to force deterministic
	// phase failures; a panicking hook behaves exactly like a panicking
	// phase. With Parallelism above 1 the hook is called concurrently from
	// worker goroutines and must be safe for that.
	PhaseHook func(phase string, fn *ir.Func)

	// Cache, when non-nil, memoizes per-function compilation results in a
	// shared, concurrency-safe LRU. Entries are content-addressed on the
	// function's structural fingerprint plus its name and every option that
	// influences compilation (variant, machine, array bound, general-opts /
	// verify / checked switches, elimination budget, peephole switches and
	// the function's branch-profile signature). A hit installs a clone of the cached
	// optimized function and replays its statistics, counter telemetry
	// (walls zeroed; one "cache" record carries the true lookup cost) and
	// fallback records, so warm results are bit-identical to cold ones. A
	// non-nil PhaseHook bypasses the cache entirely. With
	// Cache.SetParanoid(true) every hit is re-verified by the deep guard
	// verifier; a failing entry is evicted and silently recompiled. Any
	// codecache.Interface works: a flat Cache, a Sharded cache, or a
	// disk-backed Spill whose warm entries survive process restarts.
	Cache codecache.Interface

	// Ctx, when non-nil, carries the compile's deadline and cancellation.
	// The pipeline checks it at per-function boundaries: once the context
	// is done, every not-yet-compiled function is compiled at the floor —
	// guarded Convert64-only, the same correct code a phase fallback
	// produces — and recorded in Result.Degraded. Compile still returns a
	// complete, correct program; it is degraded, never wrong, and never
	// aborted. Floor compiles bypass the cache (their outcome depends on
	// when the deadline fired, not only on content).
	Ctx context.Context
}

// ctxDone reports whether the compile's context (if any) has expired.
func (o Options) ctxDone() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// parallelism resolves the worker count for a program with n functions.
func (o Options) parallelism(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Timing is the compilation-time breakdown of the paper's Table 3. The three
// buckets are a disjoint partition of the compile work: every telemetry
// record lands in exactly one bucket, so SignExt + Chains + Others == the sum
// over Result.Telemetry — regression-tested, not merely intended.
type Timing struct {
	SignExt time.Duration // sign extension optimizations proper (chain building excluded)
	Chains  time.Duration // shared analyses: UD/DU chains + value ranges
	Others  time.Duration // everything else (inlining, conversion, general opts, verification)

	// Wall is the end-to-end wall-clock time of Compile. With one worker it
	// tracks Total(); with several it is smaller — Total() sums the per-phase
	// work across all workers, which is what Table 3 reports.
	Wall time.Duration
}

// Total returns the full compilation work time (summed across workers).
func (t Timing) Total() time.Duration { return t.SignExt + t.Chains + t.Others }

// Telemetry phase names, in pipeline order.
const (
	PhaseInlining = "inlining"
	PhaseConvert  = "convert64"
	PhaseOpts     = "general opts"
	PhaseGenUse   = "gen-use conversion"
	PhaseSignExt  = "signext"
	PhasePeep     = "peep"
	PhaseChains   = "chains"
	PhaseVerify   = "verify"
	ProgramScope  = "<program>" // Func value for whole-program records
)

// PhaseRecord is one compile-telemetry sample: the wall time one phase spent
// on one function, plus that phase's counters. Records for the whole-program
// inlining phase carry Func == ProgramScope. The "chains" record splits the
// UD/DU chain + value range construction out of the enclosing "signext"
// phase, so summing all records of a function gives its total compile time
// with no double counting.
type PhaseRecord struct {
	Func       string        `json:"func"`
	Phase      string        `json:"phase"`
	Wall       time.Duration `json:"wall_ns"`
	Eliminated int           `json:"eliminated,omitempty"`
	Inserted   int           `json:"inserted,omitempty"`
	Dummies    int           `json:"dummies,omitempty"`
	Rewrites   int           `json:"rewrites,omitempty"`
	Fallback   bool          `json:"fallback,omitempty"` // phase failed; snapshot restored
}

// Result is a compiled program plus its statistics.
type Result struct {
	Prog       *ir.Program
	Options    Options
	Stats      extelim.Stats // summed over functions
	Timing     Timing
	StaticExts int // extension instructions surviving in the code

	// PeepRewrites counts rule-table rewrites applied by the peephole pass,
	// summed over functions. Zero unless Options.Peep is set.
	PeepRewrites int

	// Telemetry holds one record per (function, phase) the pipeline ran,
	// sorted by function name (ProgramScope first), then pipeline order.
	// Timing is derived from it: each record belongs to exactly one
	// SignExt/Chains/Others bucket.
	Telemetry []PhaseRecord

	// Fallbacks records every phase that panicked, failed verification, or
	// exhausted its work budget and was therefore disabled for one function,
	// sorted like Telemetry. The compiled code is still correct: the affected
	// function runs its pre-phase (at worst Convert64-only) code.
	Fallbacks []*guard.PhaseError

	// Degraded lists the functions (sorted by name) compiled at the
	// Convert64-only floor because Options.Ctx expired before their
	// pipeline ran. Degraded code is correct — it is the same code the
	// Baseline variant produces — just unoptimized.
	Degraded []string

	// CacheStats reports this compile's cache traffic plus a snapshot of the
	// shared cache's cumulative counters. Nil when Options.Cache is nil.
	CacheStats *CacheStats
}

// funcOutcome is everything one per-function pipeline produces. Workers fill
// these in independently; the driver merges them in function order so the
// result is identical regardless of scheduling.
type funcOutcome struct {
	stats      extelim.Stats
	records    []PhaseRecord
	fallbacks  []*guard.PhaseError
	replace    *ir.Func // restored snapshot or cached clone to install into Prog, nil if untouched
	fatal      error    // conversion or shallow-verifier failure: abort compile
	staticExts int
	rewrites   int // peephole rule-table rewrites applied

	cacheHit      bool // served from Options.Cache
	cacheRejected bool // cached entry failed paranoid verification; recompiled
	degraded      bool // deadline expired; compiled at the Convert64-only floor
}

// compileFuncFloor compiles fn at the graceful-degradation floor: guarded
// Convert64-only, exactly the code a sign-extension-phase fallback (or the
// Baseline variant) produces. It is the deadline path, so it must be cheap
// and must not consult the cache — its outcome depends on when the deadline
// fired, not only on the function's content.
func compileFuncFloor(fn *ir.Func, o Options) funcOutcome {
	o.Variant = Baseline
	o.GeneralOpts = false
	o.Cache = nil
	out := compileFunc(fn, o)
	out.degraded = true
	return out
}

// compileFunc runs the per-function pipeline — conversion, general
// optimizations, and the sign extension phase, each guarded — on fn. It
// mutates fn (or, after a fallback, a restored clone) and never touches any
// other function or the enclosing program, so it is safe to run one
// compileFunc per function concurrently.
func compileFunc(fn *ir.Func, o Options) funcOutcome {
	var out funcOutcome
	cur := fn // current version of the function; a fallback swaps in the snapshot

	record := func(r PhaseRecord) { out.records = append(out.records, r) }

	var verifyWall time.Duration
	verify := func(after string) bool {
		if !o.Verify {
			return true
		}
		t0 := time.Now()
		err := cur.Verify()
		verifyWall += time.Since(t0)
		if err != nil {
			out.fatal = fmt.Errorf("after %s: %w", after, err)
			return false
		}
		return true
	}

	// guarded runs one phase body under recover, with a pre-phase snapshot.
	// On panic, on body error (budget exhaustion), or on deep-verifier
	// rejection under Checked, the snapshot becomes the current function —
	// the phase is disabled for this function only — and the failure is
	// recorded. Reports whether the phase's effects were kept.
	guarded := func(phase string, body func(f *ir.Func) error) bool {
		f := cur
		snap := f.Clone()
		perr := guard.RunPhase(phase, f.Name, o.Variant.String(), "", func() error {
			if o.PhaseHook != nil {
				o.PhaseHook(phase, f)
			}
			if err := body(f); err != nil {
				return err
			}
			if o.Checked {
				return guard.VerifyFunc(f, o.Machine)
			}
			return nil
		})
		if perr == nil {
			return true
		}
		perr.Snapshot = guard.Snapshot(f)
		cur = snap
		out.replace = snap
		out.fallbacks = append(out.fallbacks, perr)
		return false
	}

	// mustConvert runs a conversion body. Conversion is the correctness
	// floor, so there is nothing to fall back to: a failure here is a hard,
	// structured compile error.
	mustConvert := func(phase string, body func(f *ir.Func)) bool {
		f := cur
		perr := guard.RunPhase(phase, f.Name, o.Variant.String(), "", func() error {
			if o.PhaseHook != nil {
				o.PhaseHook(phase, f)
			}
			body(f)
			if o.Checked {
				return guard.VerifyFunc(f, o.Machine)
			}
			return nil
		})
		if perr != nil {
			perr.Snapshot = guard.Snapshot(f)
			out.fatal = perr
			return false
		}
		return true
	}

	// Step (1): conversion for a 64-bit architecture. The "gen use"
	// reference generates at the code generation phase instead, i.e. after
	// the general optimizations.
	if o.Variant != GenUse {
		t0 := time.Now()
		ok := mustConvert(PhaseConvert, func(f *ir.Func) {
			extelim.Convert64(f, o.Machine)
		})
		record(PhaseRecord{Func: fn.Name, Phase: PhaseConvert, Wall: time.Since(t0)})
		if !ok {
			return out
		}
	}
	if !verify("conversion") {
		return out
	}

	// Step (2): general optimizations.
	if o.GeneralOpts {
		t0 := time.Now()
		kept := guarded(PhaseOpts, func(f *ir.Func) error {
			opt.Run(f)
			return nil
		})
		record(PhaseRecord{Func: fn.Name, Phase: PhaseOpts, Wall: time.Since(t0), Fallback: !kept})
		if !verify("general optimizations") {
			return out
		}
	}
	if o.Variant == GenUse {
		t0 := time.Now()
		ok := mustConvert(PhaseGenUse, func(f *ir.Func) {
			extelim.ConvertGenUse(f, o.Machine)
		})
		record(PhaseRecord{Func: fn.Name, Phase: PhaseGenUse, Wall: time.Since(t0)})
		if !ok {
			return out
		}
		if !verify("gen-use conversion") {
			return out
		}
	}

	// Step (3): the sign extension phase. This is the phase the guardrails
	// exist for: any failure falls back to the Convert64-only code above.
	switch o.Variant {
	case Baseline, GenUse:
		// disabled
	case FirstAlgorithm:
		t0 := time.Now()
		var n int
		kept := guarded(PhaseSignExt, func(f *ir.Func) error {
			n = extelim.FirstAlgorithm(f)
			return nil
		})
		if kept {
			out.stats.Eliminated += n
		}
		record(PhaseRecord{
			Func: fn.Name, Phase: PhaseSignExt, Wall: time.Since(t0),
			Eliminated: n, Fallback: !kept,
		})
	default:
		_, c := o.Variant.config()
		c.Machine = o.Machine
		c.MaxArrayLen = o.MaxArrayLen
		c.Profile = o.Profile
		c.MaxWork = o.ElimBudget
		t0 := time.Now()
		var st extelim.Stats
		kept := guarded(PhaseSignExt, func(f *ir.Func) error {
			st = extelim.Eliminate(f, c)
			if st.BudgetExhausted {
				return fmt.Errorf("guard: elimination work budget of %d exhausted", o.ElimBudget)
			}
			return nil
		})
		wall := time.Since(t0)
		if kept {
			out.stats.Inserted += st.Inserted
			out.stats.Dummies += st.Dummies
			out.stats.Eliminated += st.Eliminated
		}
		// The eliminator times its chain + value-range construction
		// (extelim.Stats.ChainTime); split that out as its own record so the
		// "signext" record holds only the elimination work proper and the
		// partition stays disjoint. A panicking phase loses its measurement
		// (st is zero) — its whole wall lands in "signext", still counted
		// exactly once.
		chain := st.ChainTime
		if chain > wall {
			chain = wall
		}
		record(PhaseRecord{
			Func: fn.Name, Phase: PhaseSignExt, Wall: wall - chain,
			Eliminated: st.Eliminated, Inserted: st.Inserted, Dummies: st.Dummies,
			Fallback: !kept,
		})
		if chain > 0 {
			record(PhaseRecord{Func: fn.Name, Phase: PhaseChains, Wall: chain})
		}
	}
	if !verify("sign extension phase") {
		return out
	}

	// The rule-table peephole pass runs last, on the extension-minimal code:
	// it consumes the value-range facts the elimination phase worked to make
	// provable (a dividend's upper 32 bits known zero is what licenses the
	// magic-number division rules). Guarded like every optimizer phase — a
	// panic or verifier rejection restores the snapshot and the function
	// keeps its pre-peep code.
	if o.Peep {
		t0 := time.Now()
		var st peep.Stats
		kept := guarded(PhasePeep, func(f *ir.Func) error {
			st = peep.Run(f, peep.Config{
				Machine:     o.Machine,
				MaxArrayLen: o.MaxArrayLen,
				Rules:       o.PeepRules,
			})
			return nil
		})
		rec := PhaseRecord{Func: fn.Name, Phase: PhasePeep, Wall: time.Since(t0), Fallback: !kept}
		if kept {
			rec.Rewrites = st.Rewrites
			out.rewrites += st.Rewrites
		}
		record(rec)
		if !verify("peephole phase") {
			return out
		}
	}

	if verifyWall > 0 {
		record(PhaseRecord{Func: fn.Name, Phase: PhaseVerify, Wall: verifyWall})
	}
	out.staticExts = cur.CountOp(ir.OpExt)
	return out
}

// Compile clones src and compiles it under the given options. src itself is
// never modified, so one frontend result can be compiled under all variants.
//
// Optimizer phases (general optimizations and the sign extension phase) are
// panic-safe: a panic never escapes Compile; the offending function is
// restored from its pre-phase snapshot and the failure recorded in
// Result.Fallbacks. Conversion failures have no correct fallback — without
// the generated extensions the 64-bit machine would read dirty upper bits —
// so they abort compilation with a structured *guard.PhaseError.
//
// Per-function pipelines run on Options.Parallelism workers; the merged
// result is identical for every worker count.
func Compile(src *ir.Program, o Options) (*Result, error) {
	start := time.Now()
	prog := src.Clone()
	res := &Result{Prog: prog, Options: o}

	// Method inlining runs first, on the 32-bit form, like the paper's
	// intermediate-language inliner [10, 19]: it removes call boundaries so
	// argument/result extensions become visible to the later phases. It is
	// all-or-nothing: a failure restarts from a fresh clone without it. It
	// is also the one whole-program phase, so it stays sequential. A compile
	// whose deadline already expired skips it: every function is about to be
	// floored to Convert64-only anyway, and inlining is the most expensive
	// phase to spend a blown budget on.
	if o.GeneralOpts && !o.ctxDone() {
		t0 := time.Now()
		perr := guard.RunPhase(PhaseInlining, ProgramScope, o.Variant.String(), "", func() error {
			if o.PhaseHook != nil {
				o.PhaseHook(PhaseInlining, nil)
			}
			opt.InlineProgram(prog)
			if o.Checked {
				return guard.VerifyProgram(prog, o.Machine)
			}
			return nil
		})
		if perr != nil {
			prog = src.Clone()
			res.Prog = prog
			res.Fallbacks = append(res.Fallbacks, perr)
		}
		res.Telemetry = append(res.Telemetry, PhaseRecord{
			Func: ProgramScope, Phase: PhaseInlining, Wall: time.Since(t0), Fallback: perr != nil,
		})
		if o.Verify {
			tv := time.Now()
			var verr error
			for _, fn := range prog.Funcs {
				if err := fn.Verify(); err != nil {
					verr = fmt.Errorf("after inlining: %w", err)
					break
				}
			}
			res.Telemetry = append(res.Telemetry, PhaseRecord{
				Func: ProgramScope, Phase: PhaseVerify, Wall: time.Since(tv),
			})
			if verr != nil {
				return nil, verr
			}
		}
	}

	// Fan the per-function pipelines out. Workers write only their own slot
	// and their own function; the program (shared Funcs slice + name index)
	// is mutated exclusively by the merge loop below, after the join.
	outs := make([]funcOutcome, len(prog.Funcs))
	if par := o.parallelism(len(prog.Funcs)); par <= 1 {
		for i, fn := range prog.Funcs {
			outs[i] = compileFuncCached(fn, o)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					outs[i] = compileFuncCached(prog.Funcs[i], o)
				}
			}()
		}
		for i := range outs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	// Deterministic merge, in function order. A fatal outcome (conversion
	// failure or shallow-verifier rejection) aborts with the lowest-index
	// function's error — the same one a sequential compile hits first.
	for i := range outs {
		if err := outs[i].fatal; err != nil {
			return nil, err
		}
	}
	for i := range outs {
		out := &outs[i]
		if out.replace != nil {
			prog.ReplaceFunc(out.replace)
		}
		res.Stats.Inserted += out.stats.Inserted
		res.Stats.Dummies += out.stats.Dummies
		res.Stats.Eliminated += out.stats.Eliminated
		res.Telemetry = append(res.Telemetry, out.records...)
		res.Fallbacks = append(res.Fallbacks, out.fallbacks...)
		res.StaticExts += out.staticExts
		res.PeepRewrites += out.rewrites
		if out.degraded {
			res.Degraded = append(res.Degraded, prog.Funcs[i].Name)
		}
	}
	sort.Strings(res.Degraded)
	res.Stats.Remaining = res.StaticExts
	if o.Cache != nil && o.PhaseHook == nil {
		cs := &CacheStats{}
		for i := range outs {
			switch {
			case outs[i].cacheHit:
				cs.Hits++
			case outs[i].degraded:
				// Floored functions never consulted the cache.
			default:
				cs.Misses++
			}
			if outs[i].cacheRejected {
				cs.ParanoidRejects++
			}
		}
		cs.Shared = o.Cache.Stats()
		res.CacheStats = cs
	}

	// Sort by function name (ProgramScope sorts first; per-function phase
	// order is preserved by stability), derive the Timing partition from the
	// records, and stamp the end-to-end wall clock.
	sort.SliceStable(res.Telemetry, func(i, j int) bool {
		return res.Telemetry[i].Func < res.Telemetry[j].Func
	})
	sort.SliceStable(res.Fallbacks, func(i, j int) bool {
		return res.Fallbacks[i].Func < res.Fallbacks[j].Func
	})
	for _, r := range res.Telemetry {
		switch r.Phase {
		case PhaseSignExt:
			res.Timing.SignExt += r.Wall
		case PhaseChains:
			res.Timing.Chains += r.Wall
		default:
			res.Timing.Others += r.Wall
		}
	}
	res.Timing.Wall = time.Since(start)
	return res, nil
}

// OracleCheck runs the differential oracle on a compiled result: src (the
// 32-bit-form frontend output the result was compiled from) is recompiled
// under the Baseline variant — the same pipeline with the sign extension
// phase disabled, i.e. exactly the Convert64-only code a fallback produces —
// and both programs execute in the interpreter. Any output divergence, trap
// divergence, or dynamic extension-count regression is returned as an error.
// The report carries both runs' observations either way.
func OracleCheck(src *ir.Program, res *Result, entry string) (*guard.Report, error) {
	refOpts := res.Options
	refOpts.Variant = Baseline
	refOpts.Checked = false
	refOpts.ElimBudget = 0
	refOpts.PhaseHook = nil
	ref, err := Compile(src, refOpts)
	if err != nil {
		return nil, fmt.Errorf("guard: oracle reference compile failed: %w", err)
	}
	o := guard.Oracle{
		Machine:     res.Options.Machine,
		MaxArrayLen: res.Options.MaxArrayLen,
		Entry:       entry,
	}
	return o.CheckAgainst(ref.Prog, res.Prog)
}

// ProfileRun executes the source (32-bit form) program in the interpreter
// tier, collecting the branch statistics the dynamic compiler receives.
func ProfileRun(src *ir.Program, entry string, maxSteps int64) (interp.Profile, error) {
	res, err := interp.Run(src, entry, interp.Options{
		Mode:     interp.Mode32,
		Profile:  true,
		MaxSteps: maxSteps,
	})
	if err != nil {
		return nil, err
	}
	return res.Profile, nil
}

// Execute runs a compiled program on the 64-bit machine model with the
// target cost model attached, returning output, dynamic extension counts and
// cycles.
func Execute(res *Result, entry string) (*interp.Result, error) {
	return interp.Run(res.Prog, entry, interp.Options{
		Mode:        interp.Mode64,
		Machine:     res.Options.Machine,
		Cost:        target.CostModel(res.Options.Machine),
		MaxArrayLen: res.Options.MaxArrayLen,
	})
}
