// Package jit drives the compiler pipeline of the paper's Figure 5 — 64-bit
// conversion, general optimizations, and the sign extension phase — for each
// measured algorithm variant, with per-phase timing (the paper's Table 3) and
// the tiered profile collection of its combined interpreter and dynamic
// compiler: a profiling run in the interpreter supplies branch statistics to
// order determination.
package jit

import (
	"fmt"
	"time"

	"signext/internal/extelim"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/opt"
	"signext/internal/target"
)

// Variant enumerates the measured algorithm configurations, matching the rows
// of the paper's Tables 1 and 2.
type Variant int

// The twelve variants of Tables 1 and 2.
const (
	Baseline       Variant = iota // disable the sign extension phase entirely
	GenUse                        // generate before use points; no elimination
	FirstAlgorithm                // generation after defs + backward dataflow
	BasicUDDU                     // UD/DU elimination; no insert/order/array
	Insert                        // + insertion only
	Order                         // + order determination only
	InsertOrder                   // insertion and order determination
	Array                         // array-subscript elimination only
	ArrayInsert                   // array + insertion
	ArrayOrder                    // array + order determination
	AllPDE                        // everything, PDE-style insertion
	All                           // the new algorithm, everything enabled
	numVariants
)

// Variants lists every variant in table order.
var Variants = []Variant{
	Baseline, GenUse, FirstAlgorithm, BasicUDDU, Insert, Order, InsertOrder,
	Array, ArrayInsert, ArrayOrder, AllPDE, All,
}

var variantNames = [numVariants]string{
	"baseline", "gen use (reference)", "first algorithm (bwd flow)",
	"basic ud/du", "insert", "order", "insert, order", "array",
	"array, insert", "array, order", "all, using PDE (reference)",
	"new algorithm (all)",
}

func (v Variant) String() string { return variantNames[v] }

// config maps a variant onto the elimination phase switches.
func (v Variant) config() (useElim bool, c extelim.Config) {
	switch v {
	case Baseline, GenUse, FirstAlgorithm:
		return false, c
	case BasicUDDU:
	case Insert:
		c.Insert = true
	case Order:
		c.Order = true
	case InsertOrder:
		c.Insert, c.Order = true, true
	case Array:
		c.Array = true
	case ArrayInsert:
		c.Array, c.Insert = true, true
	case ArrayOrder:
		c.Array, c.Order = true, true
	case AllPDE:
		c.Array, c.Insert, c.Order, c.UsePDE = true, true, true, true
	case All:
		c.Array, c.Insert, c.Order = true, true, true
	}
	return true, c
}

// Options configures a compilation.
type Options struct {
	Variant     Variant
	Machine     ir.Machine
	MaxArrayLen int64
	GeneralOpts bool           // Figure 5 step (2); on for all paper rows
	Profile     interp.Profile // branch profile for order determination
	Verify      bool           // run the IR verifier after each phase
}

// Timing is the compilation-time breakdown of the paper's Table 3.
type Timing struct {
	SignExt time.Duration // sign extension optimizations (all)
	Chains  time.Duration // shared analyses: UD/DU chains + value ranges
	Others  time.Duration // everything else (conversion, general opts, ...)
}

// Total returns the full compilation time.
func (t Timing) Total() time.Duration { return t.SignExt + t.Chains + t.Others }

// Result is a compiled program plus its statistics.
type Result struct {
	Prog       *ir.Program
	Options    Options
	Stats      extelim.Stats // summed over functions
	Timing     Timing
	StaticExts int // extension instructions surviving in the code
}

// Compile clones src and compiles it under the given options. src itself is
// never modified, so one frontend result can be compiled under all variants.
func Compile(src *ir.Program, o Options) (*Result, error) {
	prog := src.Clone()
	res := &Result{Prog: prog, Options: o}

	check := func(phase string) error {
		if !o.Verify {
			return nil
		}
		for _, fn := range prog.Funcs {
			if err := fn.Verify(); err != nil {
				return fmt.Errorf("after %s: %w", phase, err)
			}
		}
		return nil
	}

	// Method inlining runs first, on the 32-bit form, like the paper's
	// intermediate-language inliner [10, 19]: it removes call boundaries so
	// argument/result extensions become visible to the later phases.
	t0 := time.Now()
	if o.GeneralOpts {
		opt.InlineProgram(prog)
		if err := check("inlining"); err != nil {
			return nil, err
		}
	}

	// Step (1): conversion for a 64-bit architecture. The "gen use"
	// reference generates at the code generation phase instead, i.e. after
	// the general optimizations.
	if o.Variant != GenUse {
		for _, fn := range prog.Funcs {
			extelim.Convert64(fn, o.Machine)
		}
	}
	if err := check("conversion"); err != nil {
		return nil, err
	}

	// Step (2): general optimizations.
	if o.GeneralOpts {
		for _, fn := range prog.Funcs {
			opt.Run(fn)
		}
		if err := check("general optimizations"); err != nil {
			return nil, err
		}
	}
	if o.Variant == GenUse {
		for _, fn := range prog.Funcs {
			extelim.ConvertGenUse(fn, o.Machine)
		}
		if err := check("gen-use conversion"); err != nil {
			return nil, err
		}
	}
	res.Timing.Others = time.Since(t0)

	// Step (3): the sign extension phase.
	t1 := time.Now()
	switch o.Variant {
	case Baseline, GenUse:
		// disabled
	case FirstAlgorithm:
		for _, fn := range prog.Funcs {
			res.Stats.Eliminated += extelim.FirstAlgorithm(fn)
		}
	default:
		_, c := o.Variant.config()
		c.Machine = o.Machine
		c.MaxArrayLen = o.MaxArrayLen
		c.Profile = o.Profile
		var chains time.Duration
		for _, fn := range prog.Funcs {
			st := extelim.Eliminate(fn, c)
			res.Stats.Inserted += st.Inserted
			res.Stats.Dummies += st.Dummies
			res.Stats.Eliminated += st.Eliminated
			chains += st.ChainTime
		}
		res.Timing.Chains = chains
	}
	res.Timing.SignExt = time.Since(t1) - res.Timing.Chains
	if err := check("sign extension phase"); err != nil {
		return nil, err
	}

	for _, fn := range prog.Funcs {
		res.StaticExts += fn.CountOp(ir.OpExt)
	}
	res.Stats.Remaining = res.StaticExts
	return res, nil
}

// ProfileRun executes the source (32-bit form) program in the interpreter
// tier, collecting the branch statistics the dynamic compiler receives.
func ProfileRun(src *ir.Program, entry string, maxSteps int64) (interp.Profile, error) {
	res, err := interp.Run(src, entry, interp.Options{
		Mode:     interp.Mode32,
		Profile:  true,
		MaxSteps: maxSteps,
	})
	if err != nil {
		return nil, err
	}
	return res.Profile, nil
}

// Execute runs a compiled program on the 64-bit machine model with the
// target cost model attached, returning output, dynamic extension counts and
// cycles.
func Execute(res *Result, entry string) (*interp.Result, error) {
	return interp.Run(res.Prog, entry, interp.Options{
		Mode:        interp.Mode64,
		Machine:     res.Options.Machine,
		Cost:        target.CostModel(res.Options.Machine),
		MaxArrayLen: res.Options.MaxArrayLen,
	})
}
