// Package jit drives the compiler pipeline of the paper's Figure 5 — 64-bit
// conversion, general optimizations, and the sign extension phase — for each
// measured algorithm variant, with per-phase timing (the paper's Table 3) and
// the tiered profile collection of its combined interpreter and dynamic
// compiler: a profiling run in the interpreter supplies branch statistics to
// order determination.
//
// The pipeline is guarded the way a production JIT tier is: every optimizer
// phase runs under recover with a pre-phase snapshot of the function, so a
// panicking or (under Options.Checked) verifier-rejected phase disables
// itself for that function only and compilation still succeeds with the
// correct Convert64-only code. See internal/guard.
package jit

import (
	"fmt"
	"time"

	"signext/internal/extelim"
	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/opt"
	"signext/internal/target"
)

// Variant enumerates the measured algorithm configurations, matching the rows
// of the paper's Tables 1 and 2.
type Variant int

// The twelve variants of Tables 1 and 2.
const (
	Baseline       Variant = iota // disable the sign extension phase entirely
	GenUse                        // generate before use points; no elimination
	FirstAlgorithm                // generation after defs + backward dataflow
	BasicUDDU                     // UD/DU elimination; no insert/order/array
	Insert                        // + insertion only
	Order                         // + order determination only
	InsertOrder                   // insertion and order determination
	Array                         // array-subscript elimination only
	ArrayInsert                   // array + insertion
	ArrayOrder                    // array + order determination
	AllPDE                        // everything, PDE-style insertion
	All                           // the new algorithm, everything enabled
	numVariants
)

// Variants lists every variant in table order.
var Variants = []Variant{
	Baseline, GenUse, FirstAlgorithm, BasicUDDU, Insert, Order, InsertOrder,
	Array, ArrayInsert, ArrayOrder, AllPDE, All,
}

var variantNames = [numVariants]string{
	"baseline", "gen use (reference)", "first algorithm (bwd flow)",
	"basic ud/du", "insert", "order", "insert, order", "array",
	"array, insert", "array, order", "all, using PDE (reference)",
	"new algorithm (all)",
}

func (v Variant) String() string { return variantNames[v] }

// config maps a variant onto the elimination phase switches.
func (v Variant) config() (useElim bool, c extelim.Config) {
	switch v {
	case Baseline, GenUse, FirstAlgorithm:
		return false, c
	case BasicUDDU:
	case Insert:
		c.Insert = true
	case Order:
		c.Order = true
	case InsertOrder:
		c.Insert, c.Order = true, true
	case Array:
		c.Array = true
	case ArrayInsert:
		c.Array, c.Insert = true, true
	case ArrayOrder:
		c.Array, c.Order = true, true
	case AllPDE:
		c.Array, c.Insert, c.Order, c.UsePDE = true, true, true, true
	case All:
		c.Array, c.Insert, c.Order = true, true, true
	}
	return true, c
}

// Options configures a compilation.
type Options struct {
	Variant     Variant
	Machine     ir.Machine
	MaxArrayLen int64
	GeneralOpts bool           // Figure 5 step (2); on for all paper rows
	Profile     interp.Profile // branch profile for order determination
	Verify      bool           // run the shallow IR verifier after each phase

	// Checked runs the deep guard verifier (CFG consistency, def-before-use,
	// extension widths, chain cross-consistency) at every phase boundary. A
	// function failing verification is restored to its pre-phase snapshot —
	// the phase is disabled for that function only — and the failure is
	// recorded in Result.Fallbacks.
	Checked bool

	// ElimBudget caps the per-function analysis work of the elimination
	// phase (extelim.Config.MaxWork). Exhaustion triggers the same graceful
	// fallback as a phase panic. 0 means unlimited.
	ElimBudget int

	// PhaseHook, if set, is called inside every guarded phase before its
	// body runs, with the function about to be transformed (nil for the
	// whole-program inlining phase). Tests use it to force deterministic
	// phase failures; a panicking hook behaves exactly like a panicking
	// phase.
	PhaseHook func(phase string, fn *ir.Func)
}

// Timing is the compilation-time breakdown of the paper's Table 3.
type Timing struct {
	SignExt time.Duration // sign extension optimizations (all)
	Chains  time.Duration // shared analyses: UD/DU chains + value ranges
	Others  time.Duration // everything else (conversion, general opts, ...)
}

// Total returns the full compilation time.
func (t Timing) Total() time.Duration { return t.SignExt + t.Chains + t.Others }

// Result is a compiled program plus its statistics.
type Result struct {
	Prog       *ir.Program
	Options    Options
	Stats      extelim.Stats // summed over functions
	Timing     Timing
	StaticExts int // extension instructions surviving in the code

	// Fallbacks records every phase that panicked, failed verification, or
	// exhausted its work budget and was therefore disabled for one function.
	// The compiled code is still correct: the affected function runs its
	// pre-phase (at worst Convert64-only) code.
	Fallbacks []*guard.PhaseError
}

// Compile clones src and compiles it under the given options. src itself is
// never modified, so one frontend result can be compiled under all variants.
//
// Optimizer phases (general optimizations and the sign extension phase) are
// panic-safe: a panic never escapes Compile; the offending function is
// restored from its pre-phase snapshot and the failure recorded in
// Result.Fallbacks. Conversion failures have no correct fallback — without
// the generated extensions the 64-bit machine would read dirty upper bits —
// so they abort compilation with a structured *guard.PhaseError.
func Compile(src *ir.Program, o Options) (*Result, error) {
	prog := src.Clone()
	res := &Result{Prog: prog, Options: o}

	check := func(phase string) error {
		if !o.Verify {
			return nil
		}
		for _, fn := range prog.Funcs {
			if err := fn.Verify(); err != nil {
				return fmt.Errorf("after %s: %w", phase, err)
			}
		}
		return nil
	}

	// guarded runs one per-function phase body under recover, with a
	// pre-phase snapshot. On panic, on body error (budget exhaustion), or on
	// deep-verifier rejection under Checked, the snapshot is restored — the
	// phase is disabled for that function only — and the failure recorded.
	// Reports whether the phase's effects were kept.
	guarded := func(phase string, fn *ir.Func, body func() error) bool {
		snap := fn.Clone()
		perr := guard.RunPhase(phase, fn.Name, o.Variant.String(), "", func() error {
			if o.PhaseHook != nil {
				o.PhaseHook(phase, fn)
			}
			if err := body(); err != nil {
				return err
			}
			if o.Checked {
				return guard.VerifyFunc(fn, o.Machine)
			}
			return nil
		})
		if perr == nil {
			return true
		}
		perr.Snapshot = guard.Snapshot(fn)
		prog.ReplaceFunc(snap)
		res.Fallbacks = append(res.Fallbacks, perr)
		return false
	}

	// mustConvert runs a conversion body for one function. Conversion is the
	// correctness floor, so there is nothing to fall back to: a failure here
	// is a hard, structured compile error.
	mustConvert := func(phase string, fn *ir.Func, body func()) *guard.PhaseError {
		perr := guard.RunPhase(phase, fn.Name, o.Variant.String(), "", func() error {
			if o.PhaseHook != nil {
				o.PhaseHook(phase, fn)
			}
			body()
			if o.Checked {
				return guard.VerifyFunc(fn, o.Machine)
			}
			return nil
		})
		if perr != nil {
			perr.Snapshot = guard.Snapshot(fn)
		}
		return perr
	}

	// Method inlining runs first, on the 32-bit form, like the paper's
	// intermediate-language inliner [10, 19]: it removes call boundaries so
	// argument/result extensions become visible to the later phases. It is
	// all-or-nothing: a failure restarts from a fresh clone without it.
	t0 := time.Now()
	if o.GeneralOpts {
		perr := guard.RunPhase("inlining", "<program>", o.Variant.String(), "", func() error {
			if o.PhaseHook != nil {
				o.PhaseHook("inlining", nil)
			}
			opt.InlineProgram(prog)
			if o.Checked {
				return guard.VerifyProgram(prog, o.Machine)
			}
			return nil
		})
		if perr != nil {
			prog = src.Clone()
			res.Prog = prog
			res.Fallbacks = append(res.Fallbacks, perr)
		}
		if err := check("inlining"); err != nil {
			return nil, err
		}
	}

	// Step (1): conversion for a 64-bit architecture. The "gen use"
	// reference generates at the code generation phase instead, i.e. after
	// the general optimizations.
	if o.Variant != GenUse {
		for _, fn := range prog.Funcs {
			if perr := mustConvert("convert64", fn, func() {
				extelim.Convert64(fn, o.Machine)
			}); perr != nil {
				return nil, perr
			}
		}
	}
	if err := check("conversion"); err != nil {
		return nil, err
	}

	// Step (2): general optimizations.
	if o.GeneralOpts {
		for _, fn := range prog.Funcs {
			f := fn
			guarded("general opts", f, func() error {
				opt.Run(f)
				return nil
			})
		}
		if err := check("general optimizations"); err != nil {
			return nil, err
		}
	}
	if o.Variant == GenUse {
		for _, fn := range prog.Funcs {
			if perr := mustConvert("gen-use conversion", fn, func() {
				extelim.ConvertGenUse(fn, o.Machine)
			}); perr != nil {
				return nil, perr
			}
		}
		if err := check("gen-use conversion"); err != nil {
			return nil, err
		}
	}
	res.Timing.Others = time.Since(t0)

	// Step (3): the sign extension phase. This is the phase the guardrails
	// exist for: any failure falls back to the Convert64-only code above.
	t1 := time.Now()
	switch o.Variant {
	case Baseline, GenUse:
		// disabled
	case FirstAlgorithm:
		for _, fn := range prog.Funcs {
			f := fn
			var n int
			if guarded("signext", f, func() error {
				n = extelim.FirstAlgorithm(f)
				return nil
			}) {
				res.Stats.Eliminated += n
			}
		}
	default:
		_, c := o.Variant.config()
		c.Machine = o.Machine
		c.MaxArrayLen = o.MaxArrayLen
		c.Profile = o.Profile
		c.MaxWork = o.ElimBudget
		var chains time.Duration
		for _, fn := range prog.Funcs {
			f := fn
			var st extelim.Stats
			if guarded("signext", f, func() error {
				st = extelim.Eliminate(f, c)
				if st.BudgetExhausted {
					return fmt.Errorf("guard: elimination work budget of %d exhausted", o.ElimBudget)
				}
				return nil
			}) {
				res.Stats.Inserted += st.Inserted
				res.Stats.Dummies += st.Dummies
				res.Stats.Eliminated += st.Eliminated
				chains += st.ChainTime
			}
		}
		res.Timing.Chains = chains
	}
	res.Timing.SignExt = time.Since(t1) - res.Timing.Chains
	if err := check("sign extension phase"); err != nil {
		return nil, err
	}

	for _, fn := range prog.Funcs {
		res.StaticExts += fn.CountOp(ir.OpExt)
	}
	res.Stats.Remaining = res.StaticExts
	return res, nil
}

// OracleCheck runs the differential oracle on a compiled result: src (the
// 32-bit-form frontend output the result was compiled from) is recompiled
// under the Baseline variant — the same pipeline with the sign extension
// phase disabled, i.e. exactly the Convert64-only code a fallback produces —
// and both programs execute in the interpreter. Any output divergence, trap
// divergence, or dynamic extension-count regression is returned as an error.
// The report carries both runs' observations either way.
func OracleCheck(src *ir.Program, res *Result, entry string) (*guard.Report, error) {
	refOpts := res.Options
	refOpts.Variant = Baseline
	refOpts.Checked = false
	refOpts.ElimBudget = 0
	refOpts.PhaseHook = nil
	ref, err := Compile(src, refOpts)
	if err != nil {
		return nil, fmt.Errorf("guard: oracle reference compile failed: %w", err)
	}
	o := guard.Oracle{
		Machine:     res.Options.Machine,
		MaxArrayLen: res.Options.MaxArrayLen,
		Entry:       entry,
	}
	return o.CheckAgainst(ref.Prog, res.Prog)
}

// ProfileRun executes the source (32-bit form) program in the interpreter
// tier, collecting the branch statistics the dynamic compiler receives.
func ProfileRun(src *ir.Program, entry string, maxSteps int64) (interp.Profile, error) {
	res, err := interp.Run(src, entry, interp.Options{
		Mode:     interp.Mode32,
		Profile:  true,
		MaxSteps: maxSteps,
	})
	if err != nil {
		return nil, err
	}
	return res.Profile, nil
}

// Execute runs a compiled program on the 64-bit machine model with the
// target cost model attached, returning output, dynamic extension counts and
// cycles.
func Execute(res *Result, entry string) (*interp.Result, error) {
	return interp.Run(res.Prog, entry, interp.Options{
		Mode:        interp.Mode64,
		Machine:     res.Options.Machine,
		Cost:        target.CostModel(res.Options.Machine),
		MaxArrayLen: res.Options.MaxArrayLen,
	})
}
