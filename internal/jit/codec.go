package jit

import (
	"encoding/json"
	"fmt"

	"signext/internal/codecache"
	"signext/internal/extelim"
	"signext/internal/ir"
)

// PayloadCodec returns the codec that serializes per-function compile-cache
// entries for a codecache.DiskStore, making the warm set survive process
// restarts. The optimized function travels as its textual IR form —
// Format/ParseFunc round-trip to a fixpoint (pinned by the ir package), so a
// reloaded entry is bit-identical, by Format, to the one stored.
//
// Entries carrying fallback records are not persisted: a fallback's
// diagnosis (panic value, stack, snapshot) is context the next process
// cannot use, and such entries are rare and cheap to recompile. Persistence
// is an optimization; declining an entry is always safe.
func PayloadCodec() codecache.Codec { return payloadCodec{} }

type payloadCodec struct{}

// wirePayload is the persisted form of a cachePayload. The schema is
// versioned: a decode of any other version is a corruption-class error, so
// stale artifacts from older binaries are quarantined, not misread.
type wirePayload struct {
	Version    int           `json:"version"`
	Func       string        `json:"func"` // optimized function, IR text
	Stats      extelim.Stats `json:"stats"`
	Records    []PhaseRecord `json:"records"`
	StaticExts int           `json:"static_exts"`
}

const wirePayloadVersion = 1

func (payloadCodec) Encode(v any) ([]byte, bool) {
	p, ok := v.(*cachePayload)
	if !ok || len(p.fallbacks) > 0 {
		return nil, false
	}
	data, err := json.Marshal(&wirePayload{
		Version:    wirePayloadVersion,
		Func:       p.fn.Format(),
		Stats:      p.stats,
		Records:    p.records,
		StaticExts: p.staticExts,
	})
	if err != nil {
		return nil, false
	}
	return data, true
}

func (payloadCodec) Decode(data []byte) (any, int64, error) {
	var w wirePayload
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, 0, fmt.Errorf("jit: bad payload JSON: %w", err)
	}
	if w.Version != wirePayloadVersion {
		return nil, 0, fmt.Errorf("jit: unsupported payload version %d (want %d)", w.Version, wirePayloadVersion)
	}
	fn, err := ir.ParseFunc(w.Func)
	if err != nil {
		return nil, 0, fmt.Errorf("jit: bad payload IR: %w", err)
	}
	// The hash already proved the bytes intact; the shallow verifier
	// additionally proves the IR structurally sane, so a well-hashed but
	// semantically garbled artifact (wrong-version writer, hostile file)
	// still cannot enter the cache.
	if err := fn.Verify(); err != nil {
		return nil, 0, fmt.Errorf("jit: payload IR fails verification: %w", err)
	}
	p := &cachePayload{
		fn:         fn,
		stats:      w.Stats,
		records:    w.Records,
		staticExts: w.StaticExts,
	}
	return p, payloadSize(p), nil
}
