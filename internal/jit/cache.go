package jit

import (
	"sort"
	"time"

	"signext/internal/codecache"
	"signext/internal/extelim"
	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/ir"
)

// PhaseCache is the telemetry phase name recorded for a function whose
// compiled form was served from Options.Cache. Its wall time is the lookup,
// clone and (in paranoid mode) re-verification cost; it lands in the
// Timing.Others bucket, so the disjoint SignExt/Chains/Others partition over
// Result.Telemetry is preserved on warm compiles.
const PhaseCache = "cache"

// CacheStats reports what Options.Cache did during one Compile call.
// Hits/Misses/ParanoidRejects count this compile's functions only; Shared is
// the cumulative snapshot of the (possibly shared) cache taken after the
// compile, carrying the global hit/miss/eviction counters and current size.
type CacheStats struct {
	Hits            int             `json:"hits"`
	Misses          int             `json:"misses"`
	ParanoidRejects int             `json:"paranoid_rejects,omitempty"`
	Shared          codecache.Stats `json:"shared"`
}

// cachePayload is one cache entry: the optimized function plus everything
// compileFunc produced for it. The stored function is cloned on both store
// and load, so cached IR is never aliased by a live program.
type cachePayload struct {
	fn         *ir.Func
	stats      extelim.Stats
	records    []PhaseRecord
	fallbacks  []*guard.PhaseError
	staticExts int
	rewrites   int
}

// cacheKey derives the content address of fn's compilation under o: the
// structural fingerprint plus the function name (branch profiles are keyed by
// name) and every option that can change the compiled output or its recorded
// outcome.
func cacheKey(fn *ir.Func, o Options) codecache.Key {
	w := codecache.NewKeyWriter()
	w.String("sxelim-func-v2")
	fp := fn.Fingerprint()
	w.Bytes(fp[:])
	w.String(fn.Name)
	w.Uint64(uint64(o.Variant))
	w.Uint64(uint64(o.Machine))
	w.Int64(o.MaxArrayLen)
	w.Bool(o.GeneralOpts)
	w.Bool(o.Verify)
	w.Bool(o.Checked)
	w.Int64(int64(o.ElimBudget))
	w.Bool(o.Peep)
	w.Uint64(uint64(len(o.PeepRules)))
	for _, r := range o.PeepRules {
		w.String(r)
	}
	profileSignature(w, fn.Name, o.Profile)
	return w.Key()
}

// profileSignature mixes the function's branch profile into the key in a
// deterministic order: the same program compiled under a different profile
// may legitimately pick a different surviving extension (order determination)
// and must not share cache entries.
func profileSignature(w *codecache.KeyWriter, fname string, p interp.Profile) {
	m := p[fname]
	w.Uint64(uint64(len(m)))
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w.Int64(int64(id))
		w.Int64(m[id][0])
		w.Int64(m[id][1])
	}
}

// payloadSize estimates the resident bytes of a cache entry, charged against
// the cache's byte bound. It intentionally overestimates slightly: pointer
// and allocator overhead are real memory too.
func payloadSize(p *cachePayload) int64 {
	size := int64(256)
	for _, b := range p.fn.Blocks {
		size += 64
		size += 16 * int64(len(b.Succs)+len(b.Preds))
		for _, ins := range b.Instrs {
			size += 112 + int64(len(ins.Callee)) + 8*int64(len(ins.Args))
		}
	}
	size += 96 * int64(len(p.records))
	size += 256 * int64(len(p.fallbacks))
	return size
}

// compileFuncCached wraps compileFunc with the content-addressed cache. A
// non-nil PhaseHook bypasses the cache entirely: hooked compiles are
// intentionally perturbable (fault injection) and must neither consume nor
// poison shared entries.
func compileFuncCached(fn *ir.Func, o Options) funcOutcome {
	// Deadline gone: degrade to the Convert64-only floor. Checked before any
	// cache traffic — a floored outcome must never be stored under (or
	// served as) the full compile's key.
	if o.ctxDone() {
		return compileFuncFloor(fn, o)
	}
	if o.Cache == nil || o.PhaseHook != nil {
		return compileFunc(fn, o)
	}
	key := cacheKey(fn, o)
	t0 := time.Now()
	if v, ok := o.Cache.Get(key); ok {
		p := v.(*cachePayload)
		clone := p.fn.Clone()
		if !o.Cache.Paranoid() || guard.VerifyFunc(clone, o.Machine) == nil {
			out := funcOutcome{
				stats:      p.stats,
				fallbacks:  p.fallbacks,
				replace:    clone,
				staticExts: p.staticExts,
				rewrites:   p.rewrites,
				cacheHit:   true,
			}
			// Replay the cold compile's counter telemetry with zero walls —
			// the work was not redone — and record the true hit cost under
			// the "cache" phase.
			for _, r := range p.records {
				r.Wall = 0
				out.records = append(out.records, r)
			}
			out.records = append(out.records, PhaseRecord{
				Func: fn.Name, Phase: PhaseCache, Wall: time.Since(t0),
			})
			return out
		}
		// Paranoid mode caught a corrupted entry: evict it and recompile.
		o.Cache.RejectParanoid(key)
		out := compileAndStore(fn, o, key)
		out.cacheRejected = true
		return out
	}
	return compileAndStore(fn, o, key)
}

// compileAndStore runs the real pipeline and stores the outcome under key.
// Fatal outcomes (conversion or shallow-verifier failures) are not cached:
// they abort the whole compile and carry context-dependent errors.
func compileAndStore(fn *ir.Func, o Options, key codecache.Key) funcOutcome {
	out := compileFunc(fn, o)
	if out.fatal != nil {
		return out
	}
	final := fn // compileFunc mutates fn in place...
	if out.replace != nil {
		final = out.replace // ...unless a fallback restored the snapshot
	}
	p := &cachePayload{
		fn:         final.Clone(),
		stats:      out.stats,
		records:    append([]PhaseRecord(nil), out.records...),
		fallbacks:  out.fallbacks,
		staticExts: out.staticExts,
		rewrites:   out.rewrites,
	}
	o.Cache.Put(key, p, payloadSize(p))
	return out
}
