package jit

import (
	"strings"
	"testing"

	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/ir"
)

// TestForcedPhasePanicFallsBack is the acceptance scenario of the guardrail
// work: a sign-extension phase that panics must not abort compilation — the
// function falls back to its Convert64-only code and the compiled program
// still matches the 32-bit reference exactly.
func TestForcedPhasePanicFallsBack(t *testing.T) {
	cu := compileSrc(t)
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}

	baseline, err := Compile(cu.Prog, Options{Variant: Baseline, GeneralOpts: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Execute(baseline, "main")
	if err != nil {
		t.Fatal(err)
	}

	res, err := Compile(cu.Prog, Options{
		Variant: All, GeneralOpts: true, Checked: true,
		PhaseHook: func(phase string, fn *ir.Func) {
			if phase == "signext" {
				panic("injected phase failure")
			}
		},
	})
	if err != nil {
		t.Fatalf("panic escaped the guarded pipeline: %v", err)
	}
	if len(res.Fallbacks) == 0 {
		t.Fatal("panicking phase not recorded as a fallback")
	}
	for _, fb := range res.Fallbacks {
		if fb.Phase != "signext" || fb.Panic == nil {
			t.Fatalf("unexpected fallback record: %+v", fb)
		}
		if fb.Snapshot == "" {
			t.Fatal("fallback carries no IR snapshot")
		}
	}
	if res.Stats.Eliminated != 0 {
		t.Fatalf("phase disabled yet claims %d eliminations", res.Stats.Eliminated)
	}

	out, err := Execute(res, "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != ref.Output {
		t.Fatalf("fallback code diverges from reference:\nref %q\ngot %q", ref.Output, out.Output)
	}
	// Convert64-only code executes exactly the baseline's extension count:
	// nothing was eliminated.
	if out.Ext32() != base.Ext32() {
		t.Fatalf("fallback is not Convert64-only: %d dynamic extensions, baseline %d",
			out.Ext32(), base.Ext32())
	}
}

// TestCheckedVerifierFallsBack: a phase that terminates normally but leaves
// corrupt IR behind is caught by the deep verifier under Checked, and the
// function reverts to its pre-phase snapshot.
func TestCheckedVerifierFallsBack(t *testing.T) {
	cu := compileSrc(t)
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(cu.Prog, Options{
		Variant: All, GeneralOpts: true, Checked: true,
		PhaseHook: func(phase string, fn *ir.Func) {
			// Sabotage the CFG the phase is about to work on: elimination
			// never repairs predecessor lists, so the damage survives the
			// phase body and only the boundary verifier can reject it.
			if phase == "signext" && fn.Name == "main" {
				guard.NewInjector(11).DropEdge(fn)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, fb := range res.Fallbacks {
		if fb.Func == "main" && fb.Err != nil && strings.Contains(fb.Err.Error(), "edge") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("verifier rejection not recorded: %v", res.Fallbacks)
	}
	out, err := Execute(res, "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != ref.Output {
		t.Fatal("restored snapshot diverges from reference")
	}
}

// TestCheckedCleanPipeline: on healthy input the fully guarded pipeline
// reports no fallbacks for any variant and matches the reference.
func TestCheckedCleanPipeline(t *testing.T) {
	cu := compileSrc(t)
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants {
		for _, m := range []ir.Machine{ir.IA64, ir.PPC64} {
			res, err := Compile(cu.Prog, Options{Variant: v, Machine: m, GeneralOpts: true, Checked: true})
			if err != nil {
				t.Fatalf("%v/%v: %v", v, m, err)
			}
			if len(res.Fallbacks) != 0 {
				t.Fatalf("%v/%v: spurious fallbacks: %v", v, m, res.Fallbacks)
			}
			out, err := Execute(res, "main")
			if err != nil {
				t.Fatalf("%v/%v: %v", v, m, err)
			}
			if out.Output != ref.Output {
				t.Fatalf("%v/%v: wrong output", v, m)
			}
		}
	}
}

// TestElimBudgetFallsBack: a starvation-level work budget disables the
// elimination phase per function instead of producing half-analyzed code,
// and the result still runs correctly.
func TestElimBudgetFallsBack(t *testing.T) {
	cu := compileSrc(t)
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Checked: true, ElimBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fallbacks) == 0 {
		t.Fatal("budget exhaustion not recorded")
	}
	for _, fb := range res.Fallbacks {
		if fb.Err == nil || !strings.Contains(fb.Err.Error(), "budget") {
			t.Fatalf("unexpected fallback: %v", fb)
		}
	}
	out, err := Execute(res, "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != ref.Output {
		t.Fatal("budget fallback diverges from reference")
	}

	// An ample budget must not trip.
	res, err = Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Checked: true, ElimBudget: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fallbacks) != 0 {
		t.Fatalf("ample budget tripped: %v", res.Fallbacks)
	}
	if res.Stats.Eliminated == 0 {
		t.Fatal("nothing eliminated under an ample budget")
	}
}

// TestOracleCheckOnPipeline: the differential oracle accepts every variant's
// output on the healthy pipeline.
func TestOracleCheckOnPipeline(t *testing.T) {
	cu := compileSrc(t)
	for _, v := range []Variant{Baseline, BasicUDDU, All} {
		res, err := Compile(cu.Prog, Options{Variant: v, GeneralOpts: true, Checked: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		rep, err := OracleCheck(cu.Prog, res, "main")
		if err != nil {
			t.Fatalf("%v: oracle rejected the pipeline: %v", v, err)
		}
		if rep.OptExts > rep.RefExts {
			t.Fatalf("%v: report inconsistent: opt %d > ref %d", v, rep.OptExts, rep.RefExts)
		}
	}
}
