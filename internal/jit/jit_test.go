package jit

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/minijava"
)

const src = `
static int seed = 77;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }
void main() {
	int[] a = new int[256];
	for (int i = 0; i < a.length; i++) { a[i] = rnd() - 30000; }
	long sum = 0;
	for (int i = a.length - 1; i >= 0; i--) { sum += a[i]; }
	print(sum);
	double d = sum;
	print(d * 0.5);
}`

func compileSrc(t *testing.T) *minijava.CompileUnit {
	t.Helper()
	cu, err := minijava.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return cu
}

// TestSourceNeverMutated: Compile must clone; the input program stays in its
// 32-bit form across all variants.
func TestSourceNeverMutated(t *testing.T) {
	cu := compileSrc(t)
	before := cu.Prog.Func("main").Format()
	for _, v := range Variants {
		if _, err := Compile(cu.Prog, Options{Variant: v, GeneralOpts: true, Verify: true}); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
	if got := cu.Prog.Func("main").Format(); got != before {
		t.Fatal("Compile mutated the source program")
	}
}

func TestVariantMonotonicity(t *testing.T) {
	cu := compileSrc(t)
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Variant]int64{}
	for _, v := range Variants {
		res, err := Compile(cu.Prog, Options{Variant: v, GeneralOpts: true, Verify: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		out, err := Execute(res, "main")
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if out.Output != ref.Output {
			t.Fatalf("%v: wrong output", v)
		}
		counts[v] = out.Ext32()
	}
	if counts[All] > counts[BasicUDDU] || counts[BasicUDDU] > counts[Baseline] {
		t.Fatalf("monotonicity violated: %v", counts)
	}
	if counts[Array] > counts[BasicUDDU] {
		t.Fatalf("array elimination made things worse: %v", counts)
	}
}

func TestTimingAccounted(t *testing.T) {
	cu := compileSrc(t)
	res, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Total() <= 0 {
		t.Fatal("no compilation time recorded")
	}
	if res.Timing.Chains < 0 || res.Timing.SignExt < 0 {
		t.Fatalf("negative phase time: %+v", res.Timing)
	}
}

func TestProfileRunFeedsOrdering(t *testing.T) {
	cu := compileSrc(t)
	prof, err := ProfileRun(cu.Prog, "main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) == 0 {
		t.Fatal("no profile collected")
	}
	res, err := Compile(cu.Prog, Options{Variant: All, GeneralOpts: true, Profile: prof, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(res, "main")
	if err != nil {
		t.Fatal(err)
	}
	if out.Steps == 0 {
		t.Fatal("nothing executed")
	}
}

func TestVariantStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range Variants {
		s := v.String()
		if s == "" || seen[s] {
			t.Fatalf("bad variant name %q", s)
		}
		seen[s] = true
	}
	if Baseline.String() != "baseline" || All.String() != "new algorithm (all)" {
		t.Fatal("table row names drifted")
	}
}
