package opt

import (
	"testing"

	"signext/internal/extelim"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/minijava"
)

func TestConstFold(t *testing.T) {
	b := ir.NewFunc("f")
	x := b.Const(ir.W32, 6)
	y := b.Const(ir.W32, 7)
	p := b.Mul(ir.W32, x, y)
	q := b.Add(ir.W32, p, b.Const(ir.W32, 100))
	e := b.Fn.NewInstr(ir.OpExt)
	e.W = ir.W32
	e.Dst = q
	e.Srcs[0] = q
	e.NSrcs = 1
	b.Block().Instrs = append(b.Block().Instrs, e)
	e.Blk = b.Block()
	b.Print(ir.W32, q)
	b.Ret(ir.NoReg)

	st := Run(b.Fn)
	if st.Folded < 2 {
		t.Fatalf("folded %d instructions, want >= 2 (mul, add, ext)", st.Folded)
	}
	res, err := interp.Run(progOf(b.Fn), "f", interp.Options{Mode: interp.Mode64})
	if err != nil || res.Output != "142\n" {
		t.Fatalf("folded program wrong: %q, %v", res.Output, err)
	}
	if res.Ext32() != 0 {
		t.Fatal("constant folding should have removed the extension")
	}
}

func TestConstFoldWrapsAt32Bits(t *testing.T) {
	b := ir.NewFunc("f")
	x := b.Const(ir.W32, 2147483647)
	y := b.Const(ir.W32, 1)
	s := b.Add(ir.W32, x, y)
	b.Print(ir.W32, s)
	b.Ret(ir.NoReg)
	Run(b.Fn)
	res, err := interp.Run(progOf(b.Fn), "f", interp.Options{Mode: interp.Mode64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "-2147483648\n" {
		t.Fatalf("folding must materialize the wrapped, extended constant: %q", res.Output)
	}
}

func TestDCE(t *testing.T) {
	b := ir.NewFunc("f")
	dead := b.Add(ir.W32, b.Const(ir.W32, 1), b.Const(ir.W32, 2))
	_ = dead
	live := b.Const(ir.W32, 5)
	b.Print(ir.W32, live)
	b.Ret(ir.NoReg)
	st := Run(b.Fn)
	if st.Dead == 0 {
		t.Fatal("dead add not removed")
	}
	n := 0
	b.Fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) { n++ })
	if n != 3 { // const 5, print, ret
		t.Fatalf("%d instructions remain, want 3", n)
	}
}

func TestLICMHoistsInvariantExt(t *testing.T) {
	// d = ext.32 s with s defined before the loop: hoistable (the paper's
	// PRE effect on loop-invariant extensions).
	b := ir.NewFunc("f", ir.Param{W: ir.W32})
	s := b.Add(ir.W32, ir.Reg(0), ir.Reg(0))
	i := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	w := b.Fn.NewReg()
	ext := b.ExtTo(ir.W32, w, s) // invariant
	_ = ext
	b.OpTo(ir.OpAdd, ir.W32, i, i, w)
	b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, i)
	b.Ret(ir.NoReg)

	st := Run(b.Fn)
	if st.Hoisted == 0 {
		t.Fatalf("invariant extension not hoisted: %+v\n%s", st, b.Fn.Format())
	}
	inLoop := 0
	for _, ins := range b.Fn.Blocks[1].Instrs {
		if ins.IsExt() && ins.Dst == w {
			inLoop++
		}
	}
	if inLoop != 0 {
		t.Fatalf("extension still in loop:\n%s", b.Fn.Format())
	}
}

func TestLICMRespectsLiveness(t *testing.T) {
	// x is live into the loop header (used before redefined): hoisting its
	// in-loop definition would clobber the first iteration's value.
	b := ir.NewFunc("f", ir.Param{W: ir.W32})
	x := b.Fn.NewReg()
	acc := b.Fn.NewReg()
	b.ConstTo(ir.W32, x, 42)
	b.ConstTo(ir.W32, acc, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(ir.OpAdd, ir.W32, acc, acc, x) // reads x before its in-loop def
	b.ConstTo(ir.W32, x, 7)               // pure, "invariant", but must stay
	b.Br(ir.W32, ir.CondLT, acc, ir.Reg(0), loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, acc)
	b.Ret(ir.NoReg)

	before := refOutput(t, b.Fn)
	Run(b.Fn)
	after := refOutput(t, b.Fn)
	if before != after {
		t.Fatalf("LICM changed behaviour: %q -> %q", before, after)
	}
}

func TestLocalCSE(t *testing.T) {
	b := ir.NewFunc("f", ir.Param{W: ir.W32})
	x := ir.Reg(0)
	a1 := b.Add(ir.W32, x, x)
	a2 := b.Add(ir.W32, x, x) // same expression
	s := b.Add(ir.W32, a1, a2)
	b.Ext(ir.W32, s)
	b.Print(ir.W32, s)
	b.Ret(ir.NoReg)
	st := Run(b.Fn)
	if st.CSE == 0 {
		t.Fatalf("duplicate add not CSEd: %+v", st)
	}
}

func TestCopyPropPreservesExtSources(t *testing.T) {
	// r3 = mov r2; r3 = ext.32 r3 — the ext's source must stay r3 so the
	// elimination phase sees the canonical same-register form.
	b := ir.NewFunc("f", ir.Param{W: ir.W32})
	r2 := b.Add(ir.W32, ir.Reg(0), ir.Reg(0))
	r3 := b.Mov(ir.W32, r2)
	ext := b.Ext(ir.W32, r3)
	b.Print(ir.W32, r3)
	b.Ret(ir.NoReg)
	Run(b.Fn)
	if ext.Srcs[0] != ext.Dst {
		t.Fatalf("copy propagation broke the same-register extension: %s", ext)
	}
}

// TestLICMDeterministic pins that two optimizations of the same input print
// identical IR. licm used to iterate loop-block sets in map-range order, so
// invariant instructions from different blocks of one loop were hoisted into
// the preheader in an order that varied between runs — which broke the
// bit-identical guarantee the parallel compile driver relies on.
func TestLICMDeterministic(t *testing.T) {
	// A loop whose body spans several blocks, each defining hoistable
	// invariant constants, so hoist order is observable in the preheader.
	src := `void main() {
		int s = 0;
		for (int i = 0; i < 40; i++) {
			if (i % 2 == 0) { s += 1001; } else { s -= 2002; }
			if (i % 3 == 0) { s += 3003; } else { s -= 4004; }
			s += 5005;
		}
		print(s);
	}`
	var want string
	for trial := 0; trial < 10; trial++ {
		cu, err := minijava.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		var got string
		for _, fn := range cu.Prog.Funcs {
			st := Run(fn)
			if trial == 0 && fn.Name == "main" && st.Hoisted == 0 {
				t.Fatalf("expected licm to hoist something: %+v", st)
			}
			got += fn.Format()
		}
		if trial == 0 {
			want = got
		} else if got != want {
			t.Fatalf("optimization of identical input diverged on trial %d:\n--- first ---\n%s\n--- now ---\n%s", trial, want, got)
		}
	}
}

// TestGeneralOptsPreserveSemantics runs the optimizer over every MiniJava
// snippet and compares reference outputs before and after — on both the
// 32-bit form and the converted 64-bit form.
func TestGeneralOptsPreserveSemantics(t *testing.T) {
	srcs := []string{
		`void main() {
			int a = 3 * 9 + 1;
			int b = a << 2;
			print(a + b);
			print(7 / 2); print(-7 / 2); print(-7 % 3);
		}`,
		`void main() {
			int s = 0;
			int inv = 12345 * 3;
			for (int i = 0; i < 50; i++) { s += inv + i; }
			print(s);
		}`,
		`static long g = 5;
		void main() {
			long t = g;
			for (int i = 0; i < 10; i++) { t = t * 3 - 1; }
			print(t);
			double d = t;
			print(d / 7.0);
		}`,
	}
	for si, src := range srcs {
		for _, convert := range []bool{false, true} {
			cu, err := minijava.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			mode := interp.Mode32
			if convert {
				for _, fn := range cu.Prog.Funcs {
					extelim.Convert64(fn, ir.IA64)
				}
				mode = interp.Mode64
			}
			before, err := interp.Run(cu.Prog, "main", interp.Options{Mode: mode, Machine: ir.IA64})
			if err != nil {
				t.Fatalf("src %d: %v", si, err)
			}
			for _, fn := range cu.Prog.Funcs {
				Run(fn)
				if err := fn.Verify(); err != nil {
					t.Fatalf("src %d: %v", si, err)
				}
			}
			after, err := interp.Run(cu.Prog, "main", interp.Options{Mode: mode, Machine: ir.IA64})
			if err != nil {
				t.Fatalf("src %d post-opt: %v", si, err)
			}
			if before.Output != after.Output {
				t.Fatalf("src %d (convert=%v): optimizer changed behaviour\nbefore %q\nafter  %q",
					si, convert, before.Output, after.Output)
			}
		}
	}
}

func progOf(fn *ir.Func) *ir.Program {
	p := ir.NewProgram()
	p.AddFunc(fn)
	return p
}

func refOutput(t *testing.T, fn *ir.Func) string {
	t.Helper()
	res, err := interp.Run(progOf(fn.Clone()), fn.Name, interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}
