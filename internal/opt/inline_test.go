package opt

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/minijava"
)

func TestInlineFlattensHelpers(t *testing.T) {
	cu, err := minijava.Compile(`
		int twice(int x) { return x + x; }
		int quad(int x) { return twice(twice(x)); }
		void main() {
			int s = 0;
			for (int i = 0; i < 10; i++) { s += quad(i); }
			print(s);
		}`)
	if err != nil {
		t.Fatal(err)
	}
	before, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	n := InlineProgram(cu.Prog)
	if n == 0 {
		t.Fatal("nothing inlined")
	}
	for _, fn := range cu.Prog.Funcs {
		if err := fn.Verify(); err != nil {
			t.Fatalf("%s: %v\n%s", fn.Name, err, fn.Format())
		}
	}
	// main must no longer call anything.
	calls := 0
	cu.Prog.Func("main").ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if ins.Op == ir.OpCall {
			calls++
		}
	})
	if calls != 0 {
		t.Fatalf("%d calls survive in main:\n%s", calls, cu.Prog.Func("main").Format())
	}
	after, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	if before.Output != after.Output {
		t.Fatalf("inlining changed behaviour: %q -> %q", before.Output, after.Output)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	cu, err := minijava.Compile(`
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		void main() { print(fib(12)); }`)
	if err != nil {
		t.Fatal(err)
	}
	InlineProgram(cu.Prog)
	for _, fn := range cu.Prog.Funcs {
		if err := fn.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "144\n" {
		t.Fatalf("fib broken after inline pass: %q", res.Output)
	}
}

func TestInlineMixedTypes(t *testing.T) {
	cu, err := minijava.Compile(`
		double mix(int i, long l, double d, int[] a) {
			return i + l + d + a[i];
		}
		long lhelp(long x) { return x * 3L - 1L; }
		void main() {
			int[] a = new int[8];
			a[3] = 40;
			print(mix(3, 100L, 0.5, a));
			print(lhelp(1000000000000L));
		}`)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	n := InlineProgram(cu.Prog)
	if n < 2 {
		t.Fatalf("inlined %d sites, want 2", n)
	}
	after, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	if before.Output != after.Output {
		t.Fatalf("mixed-type inlining changed behaviour: %q -> %q", before.Output, after.Output)
	}
}

func TestInlineVoidAndMultiReturn(t *testing.T) {
	cu, err := minijava.Compile(`
		static int g = 0;
		void bump(int k) {
			if (k > 5) { g += 10; return; }
			g += 1;
		}
		void main() {
			for (int i = 0; i < 10; i++) { bump(i); }
			print(g);
		}`)
	if err != nil {
		t.Fatal(err)
	}
	InlineProgram(cu.Prog)
	for _, fn := range cu.Prog.Funcs {
		if err := fn.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "46\n" {
		t.Fatalf("void/multi-return inlining broken: %q", res.Output)
	}
}
