package opt

import "signext/internal/ir"

// InlineProgram performs method inlining, one of the intermediate-language
// optimizations the paper's JIT applies before the sign extension phase
// (its references [10, 19] describe the inliner). Inlining matters here
// because it removes call boundaries: arguments and results no longer cross
// the sign-extended calling convention, so their extensions become visible
// to — and mostly removable by — the elimination phase, exactly as in the
// paper's FP-emulation and string-sort benchmarks.
//
// Small non-recursive callees are substituted at every call site, iterating
// a few rounds so helpers of helpers flatten too, with a growth budget per
// caller. Returns the number of call sites inlined.
func InlineProgram(prog *ir.Program) int {
	const (
		maxCalleeSize = 70
		maxCallerSize = 900
		rounds        = 3
	)
	size := func(fn *ir.Func) int {
		n := 0
		fn.ForEachInstr(func(_ *ir.Block, _ *ir.Instr) { n++ })
		return n
	}
	selfRecursive := func(fn *ir.Func) bool {
		rec := false
		fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
			if ins.Op == ir.OpCall && ins.Callee == fn.Name {
				rec = true
			}
		})
		return rec
	}

	total := 0
	for round := 0; round < rounds; round++ {
		n := 0
		for _, caller := range prog.Funcs {
			if size(caller) > maxCallerSize {
				continue
			}
			// Snapshot call sites; inlining rewrites the block list.
			type site struct {
				blk *ir.Block
				ins *ir.Instr
			}
			var sites []site
			caller.ForEachInstr(func(b *ir.Block, ins *ir.Instr) {
				if ins.Op != ir.OpCall {
					return
				}
				callee := prog.Func(ins.Callee)
				if callee == nil || callee == caller || callee.Name == "main" {
					return
				}
				if size(callee) > maxCalleeSize || selfRecursive(callee) {
					return
				}
				sites = append(sites, site{b, ins})
			})
			for _, s := range sites {
				if size(caller) > maxCallerSize {
					break
				}
				if s.ins.Blk != s.blk {
					continue // a previous inline moved it; next round
				}
				inlineCall(caller, s.blk, s.ins, prog.Func(s.ins.Callee))
				n++
			}
		}
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// inlineCall substitutes callee at the given call instruction.
func inlineCall(caller *ir.Func, blk *ir.Block, call *ir.Instr, callee *ir.Func) {
	k := blk.IndexOf(call)

	// Split: blk keeps the prefix; cont receives the suffix and blk's edges.
	cont := caller.NewBlock()
	cont.Instrs = append(cont.Instrs, blk.Instrs[k+1:]...)
	for _, ins := range cont.Instrs {
		ins.Blk = cont
	}
	cont.Succs = blk.Succs
	for _, s := range cont.Succs {
		for pi, p := range s.Preds {
			if p == blk {
				s.Preds[pi] = cont
			}
		}
	}
	blk.Instrs = blk.Instrs[:k]
	blk.Succs = nil

	// Registers of the callee live at an offset in the caller.
	base := ir.Reg(caller.NReg)
	caller.NReg += callee.NReg
	shift := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return r + base
	}

	// Pass arguments into the callee's parameter registers.
	for pi, p := range callee.Params {
		mv := caller.NewInstr(ir.OpMov)
		mv.W = ir.W64
		if p.Float {
			mv.Op = ir.OpFMov
		} else if !p.Ref && p.W == ir.W32 {
			mv.W = ir.W32
		}
		mv.Dst = base + ir.Reg(pi)
		mv.Srcs[0] = call.Args[pi]
		mv.NSrcs = 1
		mv.Blk = blk
		blk.Instrs = append(blk.Instrs, mv)
	}

	// Clone the callee body.
	bmap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		bmap[cb] = caller.NewBlock()
	}
	for _, cb := range callee.Blocks {
		nb := bmap[cb]
		for _, ins := range cb.Instrs {
			if ins.Op == ir.OpRet {
				// Return: copy the result into the call's destination and
				// jump to the continuation.
				if ins.NSrcs == 1 && call.Dst != ir.NoReg {
					mv := caller.NewInstr(ir.OpMov)
					mv.W = ir.W64
					if callee.RetF {
						mv.Op = ir.OpFMov
					} else if callee.RetW == ir.W32 {
						mv.W = ir.W32
					}
					mv.Dst = call.Dst
					mv.Srcs[0] = shift(ins.Srcs[0])
					mv.NSrcs = 1
					mv.Blk = nb
					nb.Instrs = append(nb.Instrs, mv)
				}
				jmp := caller.NewInstr(ir.OpJmp)
				jmp.Blk = nb
				nb.Instrs = append(nb.Instrs, jmp)
				ir.AddEdge(nb, cont)
				continue
			}
			ci := caller.NewInstr(ins.Op)
			id := ci.ID
			*ci = *ins
			ci.ID = id
			ci.Blk = nb
			ci.Dst = shift(ins.Dst)
			for si := 0; si < int(ins.NSrcs); si++ {
				ci.Srcs[si] = shift(ins.Srcs[si])
			}
			if ins.Args != nil {
				ci.Args = make([]ir.Reg, len(ins.Args))
				for ai, a := range ins.Args {
					ci.Args[ai] = shift(a)
				}
			}
			nb.Instrs = append(nb.Instrs, ci)
		}
		for _, s := range cb.Succs {
			ir.AddEdge(nb, bmap[s])
		}
	}

	// Enter the inlined body.
	jmp := caller.NewInstr(ir.OpJmp)
	jmp.Blk = blk
	blk.Instrs = append(blk.Instrs, jmp)
	ir.AddEdge(blk, bmap[callee.Entry()])
}
