// Package opt implements the "general optimizations" of the paper's Figure 5
// step (2), which run between the 64-bit conversion and the sign extension
// phase and themselves optimize sign extensions: constant folding turns an
// extension of a constant into a constant, local CSE merges repeated
// extensions, dead-code elimination drops unused ones, and the
// partial-redundancy-elimination variant (realized as dominator-safe
// loop-invariant code motion) moves loop-invariant extensions out of loops.
package opt

import (
	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/dataflow"
	"signext/internal/ir"
)

// Stats reports what the optimizer did.
type Stats struct {
	Folded   int // instructions replaced by constants
	Copies   int // uses rewritten by local copy propagation
	CSE      int // instructions replaced by copies of earlier results
	Dead     int // instructions removed as dead
	Hoisted  int // loop-invariant instructions moved to preheaders
	BrFolded int // statically decided branches simplified
}

// Run applies the full general-optimization pipeline to fn until it stops
// changing (bounded number of rounds).
func Run(fn *ir.Func) Stats {
	var total Stats
	for round := 0; round < 4; round++ {
		var st Stats
		st.Folded = constFold(fn)
		st.Copies = localCopyProp(fn)
		st.CSE = localCSE(fn)
		st.Hoisted = licm(fn)
		st.Dead = dce(fn)
		total.Folded += st.Folded
		total.Copies += st.Copies
		total.CSE += st.CSE
		total.Dead += st.Dead
		total.Hoisted += st.Hoisted
		if st == (Stats{}) {
			break
		}
	}
	return total
}

// constFold evaluates pure instructions whose operands are all known
// constants, using global reaching definitions so constants propagate across
// blocks. Results of W-bit ops are materialized as properly extended
// constants, which is what a real code generator emits and is always at
// least as defined as the original dirty register.
func constFold(fn *ir.Func) int {
	info := cfg.Compute(fn)
	ch := chains.Build(fn, info)
	constOf := func(ins *ir.Instr, op int) (int64, bool) {
		defs := ch.UD(ins, op)
		if len(defs) == 0 {
			return 0, false
		}
		var v int64
		for k, d := range defs {
			if d.IsParam() || d.Instr.Op != ir.OpConst {
				return 0, false
			}
			if k == 0 {
				v = d.Instr.Const
			} else if d.Instr.Const != v {
				return 0, false
			}
		}
		return v, true
	}
	n := 0
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if !ins.Pure() || !ins.HasDst() || ins.Op == ir.OpConst {
			return
		}
		v, ok := foldValue(ins, constOf)
		if !ok {
			return
		}
		ins.Op = ir.OpConst
		ins.Const = v
		ins.NSrcs = 0
		ins.Args = nil
		n++
	})
	return n
}

func foldValue(ins *ir.Instr, constOf func(*ir.Instr, int) (int64, bool)) (int64, bool) {
	get := func(k int) (int64, bool) { return constOf(ins, k) }
	w := ins.W
	norm := func(v int64) int64 {
		if w != ir.W64 {
			return w.SignExt(v)
		}
		return v
	}
	switch ins.Op {
	case ir.OpMov:
		if x, ok := get(0); ok {
			return x, true
		}
	case ir.OpExt:
		if x, ok := get(0); ok {
			return ins.W.SignExt(x), true
		}
	case ir.OpZext:
		if x, ok := get(0); ok {
			return ins.W.ZeroExt(x), true
		}
	case ir.OpNeg:
		if x, ok := get(0); ok {
			return norm(-x), true
		}
	case ir.OpNot:
		if x, ok := get(0); ok {
			return norm(^x), true
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpAShr, ir.OpLShr:
		x, ok := get(0)
		if !ok {
			return 0, false
		}
		y, ok := get(1)
		if !ok {
			return 0, false
		}
		switch ins.Op {
		case ir.OpAdd:
			return norm(x + y), true
		case ir.OpSub:
			return norm(x - y), true
		case ir.OpMul:
			return norm(x * y), true
		case ir.OpAnd:
			return norm(x & y), true
		case ir.OpOr:
			return norm(x | y), true
		case ir.OpXor:
			return norm(x ^ y), true
		case ir.OpShl:
			return norm(x << (uint(y) & uint(w-1))), true
		case ir.OpAShr:
			if w == ir.W64 {
				return x >> (uint(y) & 63), true
			}
			return w.SignExt(x) >> (uint(y) & uint(w-1)), true
		case ir.OpLShr:
			if w == ir.W64 {
				return int64(uint64(x) >> (uint(y) & 63)), true
			}
			return int64((uint64(x) & w.Mask()) >> (uint(y) & uint(w-1))), true
		}
	}
	return 0, false
}

// localCopyProp rewrites, within each block, uses of a copied register to the
// copy source while neither register is redefined.
func localCopyProp(fn *ir.Func) int {
	n := 0
	for _, b := range fn.Blocks {
		for k, ins := range b.Instrs {
			if ins.Op != ir.OpMov || ins.Dst == ins.Srcs[0] {
				continue
			}
			r, s := ins.Dst, ins.Srcs[0]
			for j := k + 1; j < len(b.Instrs); j++ {
				x := b.Instrs[j]
				// Never rewrite the source of an extension: the canonical
				// same-register form "v = ext.W v" is what makes extensions
				// candidates for the elimination phase.
				if x.Op != ir.OpExt && x.Op != ir.OpExtDummy {
					for op := 0; op < x.NumUses(); op++ {
						if x.UseAt(op) == r {
							x.SetUseAt(op, s)
							n++
						}
					}
				}
				if x.HasDst() && (x.Dst == r || x.Dst == s) {
					break
				}
			}
		}
	}
	return n
}

// localCSE replaces, within each block, a pure recomputation of an earlier
// expression with a copy of the earlier result. Sign extensions participate:
// two identical "r = ext.32 r" in a row collapse.
func localCSE(fn *ir.Func) int {
	type exprKey struct {
		op   ir.Op
		w    ir.Width
		c    int64
		f    float64
		s0   ir.Reg
		s1   ir.Reg
		fl   bool
		cond ir.Cond
	}
	n := 0
	for _, b := range fn.Blocks {
		avail := map[exprKey]ir.Reg{} // expression -> register holding it
		deps := map[ir.Reg][]exprKey{}
		for _, ins := range b.Instrs {
			cseable := ins.Pure() && ins.HasDst() && ins.NumUses() <= 2 && len(ins.Args) == 0
			var k exprKey
			replaced := false
			if cseable {
				k = exprKey{op: ins.Op, w: ins.W, c: ins.Const, f: ins.F, fl: ins.Float, cond: ins.Cond, s0: ir.NoReg, s1: ir.NoReg}
				if ins.NSrcs > 0 {
					k.s0 = ins.Srcs[0]
				}
				if ins.NSrcs > 1 {
					k.s1 = ins.Srcs[1]
				}
				if prev, ok := avail[k]; ok && prev != ins.Dst {
					// Reuse the prior result. The width is preserved: the
					// copy's width is what register-kind inference reads, so
					// rewriting a 32-bit producer into a mov.64 would
					// silently retype the register as a long.
					op := ir.OpMov
					if ins.Op == ir.OpFConst || kindIsFloat(ins.Op) {
						op = ir.OpFMov
					}
					ins.Op = op
					ins.Srcs[0] = prev
					ins.NSrcs = 1
					ins.Const = 0
					n++
					replaced = true
				}
			}
			// The definition kills every expression mentioning dst —
			// including, for a self-overwriting op, the one this very
			// instruction would otherwise make available.
			if ins.HasDst() {
				for _, dk := range deps[ins.Dst] {
					delete(avail, dk)
				}
				delete(deps, ins.Dst)
			}
			if cseable && !replaced && ins.Dst != k.s0 && ins.Dst != k.s1 {
				if _, ok := avail[k]; !ok {
					avail[k] = ins.Dst
					deps[ins.Dst] = append(deps[ins.Dst], k)
					if k.s0 != ir.NoReg {
						deps[k.s0] = append(deps[k.s0], k)
					}
					if k.s1 != ir.NoReg {
						deps[k.s1] = append(deps[k.s1], k)
					}
				}
			}
		}
	}
	return n
}

func kindIsFloat(op ir.Op) bool {
	switch op {
	case ir.OpFConst, ir.OpFMov, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpFNeg, ir.OpI2D, ir.OpL2D:
		return true
	}
	return false
}

// dce removes pure instructions whose results are never observed.
func dce(fn *ir.Func) int {
	info := cfg.Compute(fn)
	lv := dataflow.ComputeLiveness(fn, info)
	n := 0
	for _, b := range fn.Blocks {
		// Walk backward with a live set so chains of dead code die in one
		// pass.
		live := lv.Out[b].Clone()
		var dead []*ir.Instr
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			ins := b.Instrs[k]
			if ins.Pure() && ins.HasDst() && !live.Has(int(ins.Dst)) {
				dead = append(dead, ins)
				continue
			}
			if ins.HasDst() {
				live.Clear(int(ins.Dst))
			}
			ins.ForEachUse(func(_ int, r ir.Reg) { live.Set(int(r)) })
		}
		for _, d := range dead {
			b.Remove(d)
			n++
		}
	}
	return n
}

// licm hoists loop-invariant pure instructions into loop preheaders — the
// effect the paper obtains from its partial redundancy elimination phase
// ("loop-invariant sign extensions can be moved out of the loop").
func licm(fn *ir.Func) int {
	info := cfg.Compute(fn)
	if !info.HasLoop() {
		return 0
	}
	ch := chains.Build(fn, info)
	lv := dataflow.ComputeLiveness(fn, info)
	n := 0
	for _, l := range info.Loops {
		pre := l.Preheader()
		if pre == nil {
			continue
		}
		// Count in-loop definitions per register. Loop membership is a set;
		// iterate the RPO so hoisted instructions land in the preheader in a
		// deterministic order (map-range order varies between runs and would
		// make two compiles of the same input print different IR).
		defsInLoop := map[ir.Reg]int{}
		for _, b := range info.RPO {
			if !l.Blocks[b] {
				continue
			}
			for _, ins := range b.Instrs {
				if ins.HasDst() {
					defsInLoop[ins.Dst]++
				}
			}
		}
		for _, b := range info.RPO {
			if !l.Blocks[b] {
				continue
			}
			var hoist []*ir.Instr
			for _, ins := range b.Instrs {
				if !ins.Pure() || !ins.HasDst() || len(ins.Args) > 0 {
					continue
				}
				if defsInLoop[ins.Dst] != 1 {
					continue
				}
				// The destination must not be live around the back edge
				// before this definition (no prior value observed).
				if lv.In[l.Header].Has(int(ins.Dst)) {
					continue
				}
				invariant := true
				for op := 0; op < ins.NumUses(); op++ {
					for _, d := range ch.UD(ins, op) {
						if !d.IsParam() && l.Blocks[d.Instr.Blk] {
							invariant = false
						}
					}
					if len(ch.UD(ins, op)) == 0 {
						invariant = false
					}
				}
				if ins.NumUses() == 0 && ins.Op != ir.OpConst && ins.Op != ir.OpFConst {
					invariant = false
				}
				if invariant {
					hoist = append(hoist, ins)
				}
			}
			for _, ins := range hoist {
				b.Remove(ins)
				term := pre.Instrs[len(pre.Instrs)-1]
				pre.InsertBefore(term, ins)
				n++
			}
		}
		if n > 0 {
			// Hoisting changes reaching definitions; refresh for the next
			// loop.
			ch = chains.Build(fn, info)
			lv = dataflow.ComputeLiveness(fn, info)
		}
	}
	return n
}

// DCE removes pure instructions whose results are never observed and
// returns the number removed. It is exported for passes (the peephole
// rewriter) that orphan instructions and want the same cleanup the
// optimizer applies between its own rounds.
func DCE(fn *ir.Func) int { return dce(fn) }
