package progen_test

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/progen"
)

const testSeeds = 40

// TestMiniJavaDeterministic pins the contract that a seed alone reproduces a
// program: two generations with the same seed are byte-identical.
func TestMiniJavaDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := progen.MiniJava(seed, progen.Config{})
		b := progen.MiniJava(seed, progen.Config{})
		if a != b {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
	if progen.MiniJava(1, progen.Config{}) == progen.MiniJava(2, progen.Config{}) {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestMiniJavaWellFormed: every generated source must be accepted by the
// frontend and terminate in the 32-bit reference interpreter — a rejection
// or a runaway loop is a generator bug, not fuzz noise.
func TestMiniJavaWellFormed(t *testing.T) {
	for seed := int64(1); seed <= testSeeds; seed++ {
		src := progen.MiniJava(seed, progen.Config{})
		cu, err := minijava.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: frontend rejected generated program: %v\n%s", seed, err, src)
		}
		res, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: reference run failed after %d steps: %v\n%s", seed, res.Steps, err, src)
		}
		if res.Output == "" {
			t.Fatalf("seed %d: program produced no output (epilogue missing?)", seed)
		}
	}
}

// TestIRDeterministic is the IR generator's seed-reproducibility contract.
func TestIRDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, b := progen.IR(seed, progen.Config{}), progen.IR(seed, progen.Config{})
		if format(a) != format(b) {
			t.Fatalf("seed %d: IR generation is not deterministic", seed)
		}
	}
}

// TestIRWellFormed: generated IR must pass the structural verifier, round-trip
// through the textual form, and terminate in the 32-bit interpreter.
func TestIRWellFormed(t *testing.T) {
	for seed := int64(1); seed <= testSeeds; seed++ {
		prog := progen.IR(seed, progen.Config{})
		for _, fn := range prog.Funcs {
			if err := fn.Verify(); err != nil {
				t.Fatalf("seed %d: %s fails verification: %v\n%s", seed, fn.Name, err, fn.Format())
			}
		}
		back, err := ir.ParseProgram(format(prog))
		if err != nil {
			t.Fatalf("seed %d: textual round-trip parse failed: %v", seed, err)
		}
		if format(back) != format(prog) {
			t.Fatalf("seed %d: textual round-trip is not a fixpoint", seed)
		}
		res, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32, MaxSteps: 30_000_000})
		if err != nil {
			t.Fatalf("seed %d: reference run failed after %d steps: %v\n%s", seed, res.Steps, err, format(prog))
		}
		if res.Output == "" {
			t.Fatalf("seed %d: program produced no output", seed)
		}
	}
}

// TestIRStressesNarrowWidths: the generator exists to hammer the elimination
// pipeline, so (in aggregate) its output must contain explicit extensions,
// narrow arithmetic and narrow memory traffic.
func TestIRStressesNarrowWidths(t *testing.T) {
	var exts, narrowOps, narrowMem int
	for seed := int64(1); seed <= testSeeds; seed++ {
		prog := progen.IR(seed, progen.Config{})
		for _, fn := range prog.Funcs {
			exts += fn.CountOp(ir.OpExt)
			fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
				switch ins.Op {
				case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
					ir.OpShl, ir.OpAShr, ir.OpLShr, ir.OpNeg, ir.OpNot:
					if ins.W == ir.W8 || ins.W == ir.W16 {
						narrowOps++
					}
				case ir.OpArrLoad, ir.OpArrStore, ir.OpLoadG, ir.OpStoreG:
					if ins.W == ir.W8 || ins.W == ir.W16 {
						narrowMem++
					}
				}
			})
		}
	}
	if exts == 0 || narrowOps == 0 || narrowMem == 0 {
		t.Fatalf("generator is not stressing narrow widths: exts=%d narrowOps=%d narrowMem=%d",
			exts, narrowOps, narrowMem)
	}
}

func format(p *ir.Program) string {
	var s string
	if p.NGlobals > 0 {
		s = "globals " + itoa(p.NGlobals) + "\n"
	}
	for _, fn := range p.Funcs {
		s += fn.Format() + "\n"
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
