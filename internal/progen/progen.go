// Package progen generates seeded, size-bounded random programs that stress
// the sign extension elimination pipeline: narrow-width (i8/i16/i32)
// arithmetic, array-index address computation, loop-carried truncations,
// calls and returns through narrow parameter types, and INT_MIN/shift-amount
// edge values.
//
// Two generators share one configuration:
//
//   - MiniJava emits frontend source text, exercising the whole stack from
//     the parser down (the same shapes the native FuzzMiniJava corpus seeds).
//   - IR emits well-formed 32-bit-form ir.Programs directly through
//     ir.Builder, reaching IR shapes the MiniJava lowerer never produces
//     (redundant same-register extension chains, explicit narrow global
//     traffic, hand-placed loop-carried truncations).
//
// Both are deterministic per seed: the same (seed, Config) always yields the
// same program, so every fuzz finding is reproducible from its seed alone.
// Every generated program terminates by construction — loops are counted
// with read-only bounds — and is accepted by the frontend / ir.Verify, so a
// generation failure is itself a bug worth reporting.
package progen

// Config bounds the size of generated programs. The zero value selects
// defaults suitable for high-throughput differential campaigns.
type Config struct {
	Stmts int // statements in the main body (default 10)
	Depth int // maximum expression/nesting depth (default 2)
	Funcs int // helper functions with narrow parameter types (default 2)
}

func (c Config) withDefaults() Config {
	if c.Stmts <= 0 {
		c.Stmts = 10
	}
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.Funcs < 0 {
		c.Funcs = 0
	} else if c.Funcs == 0 {
		c.Funcs = 2
	}
	return c
}

// edgeConsts are the constants every width-sensitivity bug loves: zero, ±1,
// the i8/i16/char boundaries, and the int32 extremes. MinInt32 is spelled
// (-2147483647 - 1) in MiniJava sources because the literal's magnitude
// overflows before the unary minus applies, exactly as in Java.
var edgeConsts = []int64{0, 1, -1, 127, -128, 255, 32767, -32768, 65535, 2147483647, -2147483648}

// edgeShifts includes amounts at and beyond the operand width: IR shift
// semantics mask the amount mod width, so 32 and 33 exercise the wrap.
var edgeShifts = []int64{0, 1, 7, 8, 15, 16, 31, 32, 33, 63}
