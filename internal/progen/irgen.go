package progen

import (
	"fmt"
	"math/rand"

	"signext/internal/ir"
)

// irGen assembles random 32-bit-form IR programs directly through
// ir.Builder, reaching shapes the MiniJava lowerer never emits: redundant
// same-register extension chains, explicit narrow global traffic, and
// hand-placed loop-carried truncations. The discipline that keeps every
// program valid:
//
//   - loops are counted: the counter register is incremented exactly once
//     per iteration and is otherwise read-only, so execution terminates;
//   - array indices are masked with len-1 (lengths are powers of two), so
//     no bounds trap and no wild effective address;
//   - divisors are OR-ed with 1, so they are odd and never zero;
//   - values defined inside a branch arm or loop body leave the pools when
//     the scope closes, so every use is dominated by its definition;
//   - narrow call arguments are explicitly sign-extended at the call site
//     and helpers return width-32 values, matching the frontend's
//     "parameters and returns arrive extended" convention.
type irGen struct {
	r   *rand.Rand
	cfg Config
	b   *ir.Builder

	p32  []ir.Reg // int32-class values, defined on every path to here
	p64  []ir.Reg // int64-class values
	ro   []ir.Reg // readable but never mutated (live loop counters)
	arrs []irArr
	fns  []irHelper
}

type irArr struct {
	reg ir.Reg
	w   ir.Width
	n   int64 // power of two
}

type irHelper struct {
	name   string
	widths []ir.Width
}

func (g *irGen) pick32() ir.Reg {
	all := append(append([]ir.Reg{}, g.p32...), g.ro...)
	return all[g.r.Intn(len(all))]
}

// mut32 returns a register that may be redefined (never a live counter).
func (g *irGen) mut32() ir.Reg { return g.p32[g.r.Intn(len(g.p32))] }

func (g *irGen) pick64() ir.Reg {
	if len(g.p64) == 0 || g.r.Intn(4) == 0 {
		l := g.b.Mov(ir.W64, g.pick32()) // widening copy, frontend-style
		g.p64 = append(g.p64, l)
	}
	return g.p64[g.r.Intn(len(g.p64))]
}

func (g *irGen) narrowW() ir.Width {
	return []ir.Width{ir.W8, ir.W16, ir.W32, ir.W32}[g.r.Intn(4)]
}

// bin emits d = x op y into a fresh register.
func (g *irGen) bin(op ir.Op, w ir.Width, x, y ir.Reg) ir.Reg {
	d := g.b.Fn.NewReg()
	g.b.OpTo(op, w, d, x, y)
	return d
}

var binOps = []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}

// loop emits a counted loop running body bound times. The counter is pushed
// to the read-only pool for the body's duration and to p32 afterwards (its
// final value is a perfectly good operand). Pools are scoped to the body.
func (g *irGen) loop(bound int64, body func(counter ir.Reg)) {
	b := g.b
	i := b.Const(ir.W32, 0)
	limit := b.Const(ir.W32, bound)
	one := b.Const(ir.W32, 1)
	head, bodyB, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Jmp(head)
	b.SetBlock(head)
	b.Br(ir.W32, ir.CondLT, i, limit, bodyB, exit)
	b.SetBlock(bodyB)
	saved32, saved64, savedRO := len(g.p32), len(g.p64), len(g.ro)
	g.ro = append(g.ro, i)
	body(i)
	g.p32, g.p64, g.ro = g.p32[:saved32], g.p64[:saved64], g.ro[:savedRO]
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.Jmp(head)
	b.SetBlock(exit)
	g.p32 = append(g.p32, i)
}

// stmt emits one random statement; depth bounds nesting.
func (g *irGen) stmt(depth int) {
	b := g.b
	switch g.r.Intn(12) {
	case 0: // narrow binary op
		w := g.narrowW()
		g.p32 = append(g.p32, g.bin(binOps[g.r.Intn(len(binOps))], w, g.pick32(), g.pick32()))
	case 1: // 64-bit binary op
		d := g.bin(binOps[g.r.Intn(len(binOps))], ir.W64, g.pick64(), g.pick64())
		g.p64 = append(g.p64, d)
	case 2: // same-register extension chain: redundant-ext fodder
		t := b.Mov(ir.W32, g.pick32())
		b.Ext([]ir.Width{ir.W8, ir.W16, ir.W32}[g.r.Intn(3)], t)
		if g.r.Intn(2) == 0 {
			b.Ext([]ir.Width{ir.W8, ir.W16, ir.W32}[g.r.Intn(3)], t)
		}
		g.p32 = append(g.p32, t)
	case 3: // array load; narrow loads get the frontend's explicit extension
		a := g.arrs[g.r.Intn(len(g.arrs))]
		idx := g.bin(ir.OpAnd, ir.W32, g.pick32(), b.Const(ir.W32, a.n-1))
		v := b.ArrLoad(a.w, false, a.reg, idx)
		if a.w == ir.W8 || a.w == ir.W16 {
			b.Ext(a.w, v)
		}
		g.p32 = append(g.p32, v)
	case 4: // array store (truncating for narrow element widths)
		a := g.arrs[g.r.Intn(len(g.arrs))]
		idx := g.bin(ir.OpAnd, ir.W32, g.pick32(), b.Const(ir.W32, a.n-1))
		b.ArrStore(a.w, false, a.reg, idx, g.pick32())
	case 5: // global traffic
		cell := g.r.Intn(4)
		w := g.narrowW()
		if g.r.Intn(2) == 0 {
			b.StoreG(w, cell, g.pick32())
		} else {
			v := b.LoadG(w, cell)
			if w != ir.W64 {
				b.Ext(w, v)
			}
			g.p32 = append(g.p32, v)
		}
	case 6: // diamond mutating an existing register on both arms
		tgt := g.mut32()
		x, y := g.pick32(), g.pick32()
		thenB, elsB, join := b.NewBlock(), b.NewBlock(), b.NewBlock()
		conds := []ir.Cond{ir.CondEQ, ir.CondNE, ir.CondLT, ir.CondLE, ir.CondGT, ir.CondGE}
		b.Br(ir.W32, conds[g.r.Intn(len(conds))], x, y, thenB, elsB)
		b.SetBlock(thenB)
		b.OpTo(binOps[g.r.Intn(len(binOps))], g.narrowW(), tgt, tgt, g.pick32())
		b.Jmp(join)
		b.SetBlock(elsB)
		b.ConstTo(ir.W32, tgt, edgeConsts[g.r.Intn(len(edgeConsts))])
		b.Jmp(join)
		b.SetBlock(join)
	case 7: // counted loop with a loop-carried narrow accumulator
		if depth <= 0 {
			g.stmt(0)
			return
		}
		acc := b.Const(ir.W32, int64(g.r.Intn(100)))
		w := []ir.Width{ir.W8, ir.W16}[g.r.Intn(2)]
		g.loop(int64(2+g.r.Intn(10)), func(ir.Reg) {
			b.OpTo(ir.OpAdd, w, acc, acc, g.pick32())
			b.Ext(w, acc) // the value stays a clean narrow across iterations
			if g.r.Intn(2) == 0 {
				g.stmt(depth - 1)
			}
		})
		g.p32 = append(g.p32, acc)
	case 8: // helper call: narrow args are extended at the call site
		if len(g.fns) == 0 {
			g.stmt(depth)
			return
		}
		h := g.fns[g.r.Intn(len(g.fns))]
		args := make([]ir.Reg, len(h.widths))
		for k, w := range h.widths {
			v := g.pick32()
			if w == ir.W8 || w == ir.W16 {
				t := b.Fn.NewReg()
				b.ExtTo(w, t, v)
				v = t
			}
			args[k] = v
		}
		g.p32 = append(g.p32, b.Call(h.name, ir.W32, false, args...))
	case 9: // guarded division: OR 1 makes the divisor odd, hence nonzero
		w := []ir.Width{ir.W32, ir.W32, ir.W64}[g.r.Intn(3)]
		op := []ir.Op{ir.OpDiv, ir.OpRem}[g.r.Intn(2)]
		if w == ir.W64 {
			d := g.bin(ir.OpOr, ir.W64, g.pick64(), b.Const(ir.W64, 1))
			g.p64 = append(g.p64, g.bin(op, ir.W64, g.pick64(), d))
		} else {
			d := g.bin(ir.OpOr, ir.W32, g.pick32(), b.Const(ir.W32, 1))
			g.p32 = append(g.p32, g.bin(op, ir.W32, g.pick32(), d))
		}
	case 10: // shift by an edge amount (the interpreter masks mod width)
		w := g.narrowW()
		amt := b.Const(ir.W32, edgeShifts[g.r.Intn(len(edgeShifts))])
		op := []ir.Op{ir.OpShl, ir.OpAShr, ir.OpLShr}[g.r.Intn(3)]
		g.p32 = append(g.p32, g.bin(op, w, g.pick32(), amt))
	case 11: // unary / print
		switch g.r.Intn(4) {
		case 0:
			d := b.Fn.NewReg()
			b.Op1To(ir.OpNeg, g.narrowW(), d, g.pick32())
			g.p32 = append(g.p32, d)
		case 1:
			d := b.Fn.NewReg()
			b.Op1To(ir.OpNot, g.narrowW(), d, g.pick32())
			g.p32 = append(g.p32, d)
		case 2:
			g.p32 = append(g.p32, b.Zext(ir.W16, g.pick32())) // char-style
		default:
			b.Print(ir.W32, g.pick32())
		}
	}
}

// helperFunc builds one small leaf function with narrow parameter widths.
func (g *irGen) helperFunc(idx int) *ir.Func {
	widths := make([]ir.Width, 1+g.r.Intn(3))
	params := make([]ir.Param, len(widths))
	for k := range widths {
		widths[k] = []ir.Width{ir.W32, ir.W16, ir.W8}[g.r.Intn(3)]
		params[k] = ir.Param{W: widths[k]}
	}
	hb := ir.NewFunc(fmt.Sprintf("h%d", idx), params...)
	hb.Fn.RetW = ir.W32

	outer := g.b
	g.b = hb
	saved32, saved64, savedRO := g.p32, g.p64, g.ro
	g.p32, g.p64, g.ro = nil, nil, nil
	for k := range widths {
		g.ro = append(g.ro, hb.Param(k))
	}
	g.p32 = append(g.p32, hb.Const(ir.W32, edgeConsts[g.r.Intn(len(edgeConsts))]))
	for s, n := 0, 1+g.r.Intn(3); s < n; s++ {
		switch g.r.Intn(3) {
		case 0:
			w := g.narrowW()
			g.p32 = append(g.p32, g.bin(binOps[g.r.Intn(len(binOps))], w, g.pick32(), g.pick32()))
		case 1:
			t := hb.Mov(ir.W32, g.pick32())
			hb.Ext([]ir.Width{ir.W8, ir.W16}[g.r.Intn(2)], t)
			g.p32 = append(g.p32, t)
		case 2:
			amt := hb.Const(ir.W32, edgeShifts[g.r.Intn(len(edgeShifts))])
			g.p32 = append(g.p32, g.bin(ir.OpAShr, g.narrowW(), g.pick32(), amt))
		}
	}
	ret := g.bin(ir.OpAdd, ir.W32, g.pick32(), g.pick32())
	hb.Ret(ret)

	fn := hb.Fn
	g.b, g.p32, g.p64, g.ro = outer, saved32, saved64, savedRO
	g.fns = append(g.fns, irHelper{name: fn.Name, widths: widths})
	return fn
}

// IR returns a random, terminating, ir.Verify-clean 32-bit-form program
// deterministically derived from seed. The entry function is "main".
func IR(seed int64, cfg Config) *ir.Program {
	cfg = cfg.withDefaults()
	g := &irGen{r: rand.New(rand.NewSource(seed)), cfg: cfg}
	prog := ir.NewProgram()
	prog.NGlobals = 4

	for i := 0; i < cfg.Funcs; i++ {
		prog.AddFunc(g.helperFunc(i))
	}

	mb := ir.NewFunc("main")
	g.b = mb

	// Seed pools with edge constants so the very first statements already
	// have operands at the interesting boundaries.
	for _, v := range []int64{1, -1, 127, -32768, 2147483647, -2147483648} {
		g.p32 = append(g.p32, mb.Const(ir.W32, v))
	}
	g.p64 = append(g.p64, mb.Const(ir.W64, 2654435761))

	// Arrays of every integer element width, power-of-two lengths; filled by
	// counted loops with a cheap linear-congruential pattern.
	for _, aw := range []struct {
		w ir.Width
		n int64
	}{{ir.W32, 32}, {ir.W16, 32}, {ir.W8, 64}} {
		arr := mb.NewArr(aw.w, false, mb.Const(ir.W32, aw.n))
		a := irArr{reg: arr, w: aw.w, n: aw.n}
		g.arrs = append(g.arrs, a)
		k := mb.Const(ir.W32, int64(g.r.Intn(5000)+257))
		m := mb.Const(ir.W32, int64(g.r.Intn(1000))-500)
		g.loop(aw.n, func(i ir.Reg) {
			v := g.bin(ir.OpMul, ir.W32, i, k)
			v = g.bin(ir.OpAdd, ir.W32, v, m)
			mb.ArrStore(a.w, false, a.reg, i, v)
		})
	}

	for s := 0; s < cfg.Stmts; s++ {
		g.stmt(g.cfg.Depth)
	}

	// Epilogue: fold every array and global into one checksum and print it
	// through full-register consumers, plus long and float projections.
	cs := mb.Const(ir.W32, 0)
	c31 := mb.Const(ir.W32, 31)
	for _, a := range g.arrs {
		g.loop(a.n, func(i ir.Reg) {
			v := mb.ArrLoad(a.w, false, a.reg, i)
			if a.w == ir.W8 || a.w == ir.W16 {
				mb.Ext(a.w, v)
			}
			t := g.bin(ir.OpMul, ir.W32, cs, c31)
			mb.OpTo(ir.OpAdd, ir.W32, cs, t, v)
		})
	}
	for cell := 0; cell < 4; cell++ {
		v := mb.LoadG(ir.W32, cell)
		t := g.bin(ir.OpMul, ir.W32, cs, c31)
		mb.OpTo(ir.OpAdd, ir.W32, cs, t, v)
	}
	mb.Print(ir.W32, cs)
	l := mb.Mov(ir.W64, cs)
	l = g.bin(ir.OpMul, ir.W64, l, g.p64[0])
	mb.Print(ir.W64, l)
	mb.FPrint(mb.FMul(mb.I2D(cs), mb.FConst(0.125)))
	mb.Ret(ir.NoReg)

	prog.AddFunc(mb.Fn)
	return prog
}
