package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// mjGen generates random but terminating MiniJava programs exercising the
// whole frontend surface: mixed-width arithmetic, casts and chained casts,
// narrow (byte/short) locals and arrays, narrow-typed helper parameters,
// bounded loops with int and short counters, guarded division, and the
// INT_MIN / oversized-shift edge constants. Programs are deterministic per
// seed and always terminate: loop counters are read-only names.
type mjGen struct {
	r       *rand.Rand
	sb      strings.Builder
	cfg     Config
	loopID  int
	vars    []string // assignable int locals in scope
	shorts  []string // short locals (usable in int expressions via promotion)
	bytes   []string // byte locals
	ro      []string // read-only names (loop counters): never assigned
	helpers []helper // callable helper functions
	inMain  bool     // arrays a/b/c only exist in main
}

// helper describes a generated top-level function; params are MiniJava type
// keywords, so a call site knows which cast each argument needs.
type helper struct {
	name   string
	params []string
	ret    string
}

func (g *mjGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// scalars returns every readable integer-valued name in scope.
func (g *mjGen) scalars() []string {
	all := append(append([]string{}, g.vars...), g.ro...)
	all = append(all, g.shorts...)
	return append(all, g.bytes...)
}

func (g *mjGen) constant() string {
	switch g.r.Intn(3) {
	case 0:
		v := edgeConsts[g.r.Intn(len(edgeConsts))]
		if v == -2147483648 {
			return "(-2147483647 - 1)"
		}
		return fmt.Sprint(v)
	case 1:
		return fmt.Sprint(g.r.Int31n(200) - 100)
	default:
		return fmt.Sprint(g.r.Int31()) // large constants stress wrapping
	}
}

func (g *mjGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(6) {
		case 0, 1:
			return g.constant()
		case 2, 3:
			if all := g.scalars(); len(all) > 0 {
				return g.pick(all)
			}
			return "7"
		case 4:
			if !g.inMain {
				return g.constant()
			}
			switch g.r.Intn(3) {
			case 0:
				return fmt.Sprintf("a[%s & 31]", g.smallExpr())
			case 1:
				return fmt.Sprintf("b[%s & 63]", g.smallExpr())
			default:
				return fmt.Sprintf("c[%s & 31]", g.smallExpr())
			}
		default:
			if call, ok := g.callExpr(); ok {
				return call
			}
			return g.constant()
		}
	}
	op := g.pick([]string{"+", "-", "*", "&", "|", "^", "<<", ">>", ">>>", "/", "%"})
	x := g.intExpr(depth - 1)
	y := g.intExpr(depth - 1)
	switch op {
	case "<<", ">>", ">>>":
		if g.r.Intn(2) == 0 {
			// Raw edge amounts; IR shifts mask the amount mod the width.
			y = fmt.Sprint(edgeShifts[g.r.Intn(len(edgeShifts))])
		} else {
			y = fmt.Sprintf("(%s & 7)", y)
		}
	case "/", "%":
		y = fmt.Sprintf("(%s | 1)", y) // odd, hence nonzero: no div-by-zero traps
	}
	e := fmt.Sprintf("(%s %s %s)", x, op, y)
	switch g.r.Intn(10) {
	case 0:
		return "(byte)" + e
	case 1:
		return "(short)" + e
	case 2:
		return "(char)" + e
	case 3:
		return "(short)(byte)" + e // chained casts: back-to-back truncations
	case 4:
		return "(int)((long)" + e + " * 3L)"
	}
	return e
}

// callExpr builds a call to a random helper, casting each argument to the
// parameter's declared type (MiniJava, like Java, has no implicit narrowing).
func (g *mjGen) callExpr() (string, bool) {
	if len(g.helpers) == 0 {
		return "", false
	}
	h := g.helpers[g.r.Intn(len(g.helpers))]
	args := make([]string, len(h.params))
	for i, p := range h.params {
		a := g.intExpr(1)
		if p != "int" {
			a = fmt.Sprintf("(%s)(%s)", p, a)
		}
		args[i] = a
	}
	return fmt.Sprintf("%s(%s)", h.name, strings.Join(args, ", ")), true
}

func (g *mjGen) smallExpr() string {
	if all := g.scalars(); len(all) > 0 && g.r.Intn(2) == 0 {
		return g.pick(all)
	}
	return fmt.Sprint(g.r.Int31n(64))
}

func (g *mjGen) stmt(depth int) {
	switch g.r.Intn(10) {
	case 0: // new int local
		name := fmt.Sprintf("v%d", len(g.vars))
		fmt.Fprintf(&g.sb, "int %s = %s;\n", name, g.intExpr(g.cfg.Depth))
		g.vars = append(g.vars, name)
	case 1: // new narrow local: the value is live across later statements
		if g.r.Intn(2) == 0 {
			name := fmt.Sprintf("s%d", len(g.shorts))
			fmt.Fprintf(&g.sb, "short %s = (short)(%s);\n", name, g.intExpr(g.cfg.Depth))
			g.shorts = append(g.shorts, name)
		} else {
			name := fmt.Sprintf("y%d", len(g.bytes))
			fmt.Fprintf(&g.sb, "byte %s = (byte)(%s);\n", name, g.intExpr(g.cfg.Depth))
			g.bytes = append(g.bytes, name)
		}
	case 2: // assignment / compound
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		v := g.pick(g.vars)
		op := g.pick([]string{"=", "+=", "-=", "*=", "&=", "|=", "^="})
		fmt.Fprintf(&g.sb, "%s %s %s;\n", v, op, g.intExpr(g.cfg.Depth))
	case 3: // narrow reassignment: loop-carried truncation when inside a loop
		if len(g.shorts) == 0 {
			g.stmt(depth)
			return
		}
		s := g.pick(g.shorts)
		fmt.Fprintf(&g.sb, "%s = (short)(%s + %s);\n", s, s, g.intExpr(1))
	case 4: // array stores (int, byte and short arrays; stores truncate)
		if !g.inMain {
			g.stmt(depth)
			return
		}
		switch g.r.Intn(3) {
		case 0:
			fmt.Fprintf(&g.sb, "a[%s & 31] = %s;\n", g.smallExpr(), g.intExpr(g.cfg.Depth))
		case 1:
			fmt.Fprintf(&g.sb, "b[%s & 63] = (byte)(%s);\n", g.smallExpr(), g.intExpr(1))
		default:
			fmt.Fprintf(&g.sb, "c[%s & 31] = (short)(%s);\n", g.smallExpr(), g.intExpr(1))
		}
	case 5: // long accumulator update (int operand promotes); acc lives in main
		if !g.inMain {
			g.stmt(depth)
			return
		}
		fmt.Fprintf(&g.sb, "acc = acc * 3L + (%s);\n", g.intExpr(1))
	case 6: // bounded loop, int or short counter
		if depth <= 0 {
			g.stmt(0)
			return
		}
		idx := fmt.Sprintf("k%d", g.loopID)
		g.loopID++
		ty := g.pick([]string{"int", "int", "short"})
		bound := 3 + g.r.Intn(12)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "for (%s %s = 0; %s < %d; %s++) {\n", ty, idx, idx, bound, idx)
		} else {
			fmt.Fprintf(&g.sb, "for (%s %s = %d; %s > 0; %s--) {\n", ty, idx, bound, idx, idx)
		}
		savedRO, savedV, savedS, savedB := len(g.ro), len(g.vars), len(g.shorts), len(g.bytes)
		g.ro = append(g.ro, idx)
		for s, n := 0, g.r.Intn(2); s <= n; s++ {
			g.stmt(depth - 1)
		}
		// Block-scoped declarations disappear with the loop body.
		g.ro, g.vars, g.shorts, g.bytes = g.ro[:savedRO], g.vars[:savedV], g.shorts[:savedS], g.bytes[:savedB]
		g.sb.WriteString("}\n")
	case 7: // conditional
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		fmt.Fprintf(&g.sb, "if (%s %s %s) { %s = %s; }\n",
			g.pick(g.vars), g.pick([]string{"<", "<=", ">", ">=", "==", "!="}),
			g.intExpr(1), g.pick(g.vars), g.intExpr(1))
	case 8: // print: makes intermediate values observable
		if all := g.scalars(); len(all) > 0 {
			fmt.Fprintf(&g.sb, "print(%s);\n", g.pick(all))
		} else {
			fmt.Fprintf(&g.sb, "print(%s);\n", g.intExpr(1))
		}
	case 9: // call for effect
		if call, ok := g.callExpr(); ok {
			fmt.Fprintf(&g.sb, "print(%s);\n", call)
		} else {
			g.stmt(depth)
		}
	}
}

// genHelper emits one top-level helper with narrow parameter types; helper
// bodies see only their parameters and locals, never main's arrays.
func (g *mjGen) genHelper(i int) helper {
	types := []string{"int", "short", "byte", "char"}
	h := helper{name: fmt.Sprintf("h%d", i), ret: g.pick([]string{"int", "int", "short"})}
	nparams := 1 + g.r.Intn(3)
	decl := make([]string, nparams)
	for p := 0; p < nparams; p++ {
		ty := types[g.r.Intn(len(types))]
		h.params = append(h.params, ty)
		decl[p] = fmt.Sprintf("%s p%d", ty, p)
	}
	fmt.Fprintf(&g.sb, "%s %s(%s) {\n", h.ret, h.name, strings.Join(decl, ", "))
	savedV, savedRO, savedS, savedB := g.vars, g.ro, g.shorts, g.bytes
	g.vars, g.ro, g.shorts, g.bytes = nil, nil, nil, nil
	for p := 0; p < nparams; p++ {
		g.ro = append(g.ro, fmt.Sprintf("p%d", p))
	}
	for s, n := 0, g.r.Intn(3); s < n; s++ {
		g.stmt(0)
	}
	ret := g.intExpr(g.cfg.Depth)
	if h.ret == "short" {
		ret = fmt.Sprintf("(short)(%s)", ret)
	}
	fmt.Fprintf(&g.sb, "return %s;\n}\n", ret)
	g.vars, g.ro, g.shorts, g.bytes = savedV, savedRO, savedS, savedB
	return h
}

// MiniJava returns a random, terminating, frontend-accepted MiniJava program
// deterministically derived from seed.
func MiniJava(seed int64, cfg Config) string {
	cfg = cfg.withDefaults()
	g := &mjGen{r: rand.New(rand.NewSource(seed)), cfg: cfg}
	fmt.Fprintf(&g.sb, "static int seed = %d;\n", g.r.Int31())
	g.sb.WriteString("int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }\n")
	for i := 0; i < cfg.Funcs; i++ {
		g.helpers = append(g.helpers, g.genHelper(i))
	}
	g.sb.WriteString(`void main() {
	int[] a = new int[32];
	byte[] b = new byte[64];
	short[] c = new short[32];
	long acc = 0;
	for (int i = 0; i < 32; i++) { a[i] = rnd() - 32768; }
	for (int i = 0; i < 64; i++) { b[i] = (byte) rnd(); }
	for (int i = 0; i < 32; i++) { c[i] = (short) (rnd() * 3); }
`)
	g.inMain = true
	for s := 0; s < cfg.Stmts; s++ {
		g.stmt(2)
	}
	// Deterministic epilogue: observable checksums through full-register
	// consumers, plus the long and double projections of the result.
	g.sb.WriteString(`
	int cs = 0;
	for (int i = 0; i < 32; i++) { cs = cs * 31 + a[i]; }
	for (int i = 0; i < 64; i++) { cs = cs * 31 + b[i]; }
	for (int i = 0; i < 32; i++) { cs = cs * 31 + c[i]; }
`)
	for _, s := range g.scalars() {
		fmt.Fprintf(&g.sb, "\tcs = cs * 31 + %s;\n", s)
	}
	g.sb.WriteString(`	print(cs);
	print(acc);
	long lcs = cs;
	print(lcs * 2654435761L);
	double d = cs;
	print(d * 0.125);
}
`)
	return g.sb.String()
}
