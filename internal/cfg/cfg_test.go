package cfg

import (
	"testing"

	"signext/internal/ir"
)

// buildNested constructs a doubly nested loop:
//
//	entry -> outerHead -> innerHead -> innerBody -> innerHead
//	                      innerExit -> outerLatch -> outerHead
//	outerExit -> ret
func buildNested() (*ir.Func, map[string]*ir.Block) {
	b := ir.NewFunc("nest", ir.Param{W: ir.W32})
	n := ir.Reg(0)
	i := b.Fn.NewReg()
	j := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	outerHead := b.NewBlock()
	innerHead := b.NewBlock()
	innerBody := b.NewBlock()
	outerLatch := b.NewBlock()
	exit := b.NewBlock()
	b.Jmp(outerHead)
	b.SetBlock(outerHead)
	b.ConstTo(ir.W32, j, 0)
	b.Br(ir.W32, ir.CondLT, i, n, innerHead, exit)
	b.SetBlock(innerHead)
	b.Br(ir.W32, ir.CondLT, j, n, innerBody, outerLatch)
	b.SetBlock(innerBody)
	one := b.Const(ir.W32, 1)
	b.OpTo(ir.OpAdd, ir.W32, j, j, one)
	b.Jmp(innerHead)
	b.SetBlock(outerLatch)
	one2 := b.Const(ir.W32, 1)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one2)
	b.Jmp(outerHead)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)
	return b.Fn, map[string]*ir.Block{
		"entry": b.Fn.Entry(), "outerHead": outerHead, "innerHead": innerHead,
		"innerBody": innerBody, "outerLatch": outerLatch, "exit": exit,
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	fn, _ := buildNested()
	info := Compute(fn)
	if info.RPO[0] != fn.Entry() {
		t.Fatal("RPO must start at entry")
	}
	if len(info.RPO) != len(fn.Blocks) {
		t.Fatalf("RPO covers %d of %d blocks", len(info.RPO), len(fn.Blocks))
	}
	// Every block except loop headers appears after all its predecessors.
	for _, b := range info.RPO {
		for _, p := range b.Preds {
			if info.RPONum[p] > info.RPONum[b] && !info.Dominates(b, p) {
				t.Errorf("%v before its non-backedge predecessor %v", b, p)
			}
		}
	}
}

func TestDominators(t *testing.T) {
	fn, m := buildNested()
	info := Compute(fn)
	cases := []struct {
		a, b string
		want bool
	}{
		{"entry", "exit", true},
		{"outerHead", "innerBody", true},
		{"innerHead", "innerBody", true},
		{"innerBody", "outerLatch", false},
		{"innerHead", "outerLatch", true},
		{"outerLatch", "outerHead", false},
		{"exit", "exit", true},
	}
	for _, c := range cases {
		if got := info.Dominates(m[c.a], m[c.b]); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if info.IDom[m["innerBody"]] != m["innerHead"] {
		t.Errorf("idom(innerBody) = %v", info.IDom[m["innerBody"]])
	}
}

func TestLoopNesting(t *testing.T) {
	fn, m := buildNested()
	info := Compute(fn)
	if len(info.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(info.Loops))
	}
	if !info.HasLoop() {
		t.Fatal("HasLoop")
	}
	if d := info.Depth(m["innerBody"]); d != 2 {
		t.Errorf("depth(innerBody) = %d, want 2", d)
	}
	if d := info.Depth(m["outerLatch"]); d != 1 {
		t.Errorf("depth(outerLatch) = %d, want 1", d)
	}
	if d := info.Depth(m["exit"]); d != 0 {
		t.Errorf("depth(exit) = %d, want 0", d)
	}
	if d := info.Depth(m["innerHead"]); d != 2 {
		t.Errorf("depth(innerHead) = %d, want 2", d)
	}
	// The inner loop's parent is the outer loop.
	var inner *Loop
	for _, l := range info.Loops {
		if l.Header == m["innerHead"] {
			inner = l
		}
	}
	if inner == nil || inner.Parent == nil || inner.Parent.Header != m["outerHead"] {
		t.Fatal("inner loop's parent not detected")
	}
}

func TestPreheader(t *testing.T) {
	fn, m := buildNested()
	info := Compute(fn)
	for _, l := range info.Loops {
		switch l.Header {
		case m["outerHead"]:
			if got := l.Preheader(); got != m["entry"] {
				t.Errorf("outer preheader = %v", got)
			}
		case m["innerHead"]:
			if got := l.Preheader(); got != m["outerHead"] {
				// outerHead branches (two successors) so it cannot serve as
				// a preheader; nil is also acceptable only if outerHead has
				// 2 succs — which it does.
				if got != nil {
					t.Errorf("inner preheader = %v", got)
				}
			}
		}
	}
}

func TestStraightLine(t *testing.T) {
	b := ir.NewFunc("s")
	b.Print(ir.W32, b.Const(ir.W32, 1))
	b.Ret(ir.NoReg)
	info := Compute(b.Fn)
	if info.HasLoop() {
		t.Fatal("straight-line code has no loops")
	}
	if len(info.PostOrder()) != 1 {
		t.Fatal("postorder size")
	}
}

func TestUnreachableBlockIgnored(t *testing.T) {
	b := ir.NewFunc("u")
	b.Ret(ir.NoReg)
	dead := b.NewBlock()
	b.SetBlock(dead)
	b.Ret(ir.NoReg)
	info := Compute(b.Fn)
	if info.Reached[dead] {
		t.Fatal("unreachable block marked reached")
	}
	if len(info.RPO) != 1 {
		t.Fatalf("RPO should hold only reachable blocks, got %d", len(info.RPO))
	}
}
