// Package cfg provides control-flow analyses over the IR: reverse postorder,
// dominator trees, natural loop detection and loop nesting depth. These feed
// the frequency estimator (order determination, paper section 2.2), the
// loop-invariant code motion used by the PRE phase, and the rule that sign
// extension insertion applies only to methods containing loops.
package cfg

import "signext/internal/ir"

// Info bundles the control-flow facts for one function.
type Info struct {
	Fn      *ir.Func
	RPO     []*ir.Block       // reverse postorder, entry first
	RPONum  map[*ir.Block]int // block -> position in RPO
	IDom    map[*ir.Block]*ir.Block
	Loops   []*Loop             // outermost-first within each nest
	LoopOf  map[*ir.Block]*Loop // innermost loop containing the block
	Reached map[*ir.Block]bool  // reachable from entry
}

// Loop is a natural loop.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	Parent *Loop
	Depth  int // 1 for outermost loops
	// Latches are the blocks with back edges to Header.
	Latches []*ir.Block
}

// Contains reports whether b belongs to the loop body (header included).
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// Compute runs all analyses for fn.
func Compute(fn *ir.Func) *Info {
	info := &Info{
		Fn:      fn,
		RPONum:  map[*ir.Block]int{},
		IDom:    map[*ir.Block]*ir.Block{},
		LoopOf:  map[*ir.Block]*Loop{},
		Reached: map[*ir.Block]bool{},
	}
	info.computeRPO()
	info.computeDominators()
	info.computeLoops()
	return info
}

func (info *Info) computeRPO() {
	var post []*ir.Block
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		info.Reached[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(info.Fn.Entry())
	info.RPO = make([]*ir.Block, len(post))
	for k := range post {
		info.RPO[k] = post[len(post)-1-k]
	}
	for k, b := range info.RPO {
		info.RPONum[b] = k
	}
}

// computeDominators uses the Cooper-Harvey-Kennedy iterative algorithm.
func (info *Info) computeDominators() {
	entry := info.Fn.Entry()
	info.IDom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range info.RPO[1:] {
			var newIDom *ir.Block
			for _, p := range b.Preds {
				if info.IDom[p] == nil {
					continue // unprocessed or unreachable
				}
				if newIDom == nil {
					newIDom = p
				} else {
					newIDom = info.intersect(p, newIDom)
				}
			}
			if newIDom != nil && info.IDom[b] != newIDom {
				info.IDom[b] = newIDom
				changed = true
			}
		}
	}
}

func (info *Info) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for info.RPONum[a] > info.RPONum[b] {
			a = info.IDom[a]
		}
		for info.RPONum[b] > info.RPONum[a] {
			b = info.IDom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b.
func (info *Info) Dominates(a, b *ir.Block) bool {
	entry := info.Fn.Entry()
	for {
		if b == a {
			return true
		}
		if b == entry {
			return false
		}
		d := info.IDom[b]
		if d == nil || d == b {
			return false
		}
		b = d
	}
}

func (info *Info) computeLoops() {
	// Find back edges: edge b -> h where h dominates b.
	headers := map[*ir.Block][]*ir.Block{} // header -> latches
	var order []*ir.Block
	for _, b := range info.RPO {
		for _, s := range b.Succs {
			if info.Reached[s] && info.Dominates(s, b) {
				if len(headers[s]) == 0 {
					order = append(order, s)
				}
				headers[s] = append(headers[s], b)
			}
		}
	}
	// Build natural loop bodies.
	loopByHeader := map[*ir.Block]*Loop{}
	for _, h := range order {
		l := &Loop{Header: h, Blocks: map[*ir.Block]bool{h: true}, Latches: headers[h]}
		var stack []*ir.Block
		for _, latch := range headers[h] {
			if !l.Blocks[latch] {
				l.Blocks[latch] = true
				stack = append(stack, latch)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range b.Preds {
				if info.Reached[p] && !l.Blocks[p] {
					l.Blocks[p] = true
					stack = append(stack, p)
				}
			}
		}
		loopByHeader[h] = l
		info.Loops = append(info.Loops, l)
	}
	// Establish nesting: the innermost loop containing each block.
	// Process loops from smallest to largest body so the innermost wins.
	for _, l := range info.Loops {
		for b := range l.Blocks {
			cur := info.LoopOf[b]
			if cur == nil || len(l.Blocks) < len(cur.Blocks) {
				info.LoopOf[b] = l
			}
		}
	}
	// Parent: the innermost *other* loop containing this loop's header.
	for _, l := range info.Loops {
		var parent *Loop
		for _, cand := range info.Loops {
			if cand == l || !cand.Blocks[l.Header] {
				continue
			}
			if parent == nil || len(cand.Blocks) < len(parent.Blocks) {
				parent = cand
			}
		}
		l.Parent = parent
	}
	for _, l := range info.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
}

// Depth returns the loop nesting depth of b (0 outside any loop).
func (info *Info) Depth(b *ir.Block) int {
	if l := info.LoopOf[b]; l != nil {
		return l.Depth
	}
	return 0
}

// HasLoop reports whether the function contains any loop; the paper applies
// sign extension insertion only to such methods (section 2.1).
func (info *Info) HasLoop() bool { return len(info.Loops) > 0 }

// Preheader returns the unique out-of-loop predecessor of l's header if it
// exists and has the header as its only successor; otherwise nil. Used by
// loop-invariant code motion.
func (l *Loop) Preheader() *ir.Block {
	var pre *ir.Block
	for _, p := range l.Header.Preds {
		if l.Blocks[p] {
			continue
		}
		if pre != nil {
			return nil // multiple outside predecessors
		}
		pre = p
	}
	if pre != nil && len(pre.Succs) == 1 {
		return pre
	}
	return nil
}

// PostOrder returns blocks in postorder (useful for backward dataflow).
func (info *Info) PostOrder() []*ir.Block {
	out := make([]*ir.Block, len(info.RPO))
	for k := range info.RPO {
		out[k] = info.RPO[len(info.RPO)-1-k]
	}
	return out
}
