package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"signext/internal/interp"
	"signext/internal/minijava"
	"signext/internal/workloads"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Variant == 0 {
		// Config zero value is jit.Baseline; the daemon default is All,
		// which cmd/sxelimd sets explicitly. Tests want the full pipeline.
		v, err := ParseVariant("all")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Variant = v
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, ts.Client())
	c.BaseBackoff = 2 * time.Millisecond
	return s, c
}

// refOutput runs the untouched 32-bit program — the semantics every daemon
// answer must reproduce.
func refOutput(t *testing.T, src string) string {
	t.Helper()
	cu, err := minijava.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	return res.Output
}

func TestCompileRunMatchesReference(t *testing.T) {
	_, c := newTestServer(t, Config{})
	for _, wl := range workloads.All() {
		resp, err := c.Compile(context.Background(), &CompileRequest{Source: wl.Source, Run: true})
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if resp.Trap != "" {
			t.Fatalf("%s: unexpected trap %q", wl.Name, resp.Trap)
		}
		if want := refOutput(t, wl.Source); resp.Output != want {
			t.Errorf("%s: daemon output %q, reference %q", wl.Name, resp.Output, want)
		}
		if resp.Degraded {
			t.Errorf("%s: degraded without any pressure", wl.Name)
		}
	}
}

// TestDegradedIdentityAllWorkloads is the degraded-path identity table test:
// with a deadline that expires before any function compiles, every response
// is the Convert64-only floor — marked degraded, and still printing exactly
// what the reference interpreter prints, on every workload. Degraded, never
// wrong.
func TestDegradedIdentityAllWorkloads(t *testing.T) {
	_, c := newTestServer(t, Config{
		// Every admitted request stalls well past its deadline before
		// compiling. The margin is generous: a context deadline takes
		// effect only once its timer goroutine runs, which can lag on a
		// loaded single-CPU machine.
		FaultDelay: func() time.Duration { return 20 * time.Millisecond },
	})
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Suite+"/"+wl.Name, func(t *testing.T) {
			resp, err := c.Compile(context.Background(), &CompileRequest{
				Source:     wl.Source,
				Run:        true,
				DeadlineMS: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.Degraded || len(resp.DegradedFuncs) == 0 {
				t.Fatalf("deadline of 1ms under a 5ms stall did not degrade (funcs: %v)", resp.DegradedFuncs)
			}
			if resp.Eliminated != 0 {
				t.Errorf("floored compile claims %d eliminations", resp.Eliminated)
			}
			if resp.Trap != "" {
				t.Fatalf("degraded run trapped: %q", resp.Trap)
			}
			if want := refOutput(t, wl.Source); resp.Output != want {
				t.Errorf("degraded output %q != reference %q", resp.Output, want)
			}
		})
	}
}

func TestBadRequestsAreStructured(t *testing.T) {
	_, c := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  CompileRequest
	}{
		{"empty", CompileRequest{}},
		{"both inputs", CompileRequest{Source: "void main() {}", IR: "func main() i64 {\nb0:\n\tret.64 r0\n}"}},
		{"bad variant", CompileRequest{Source: "void main() {}", Variant: "warp-speed"}},
		{"bad machine", CompileRequest{Source: "void main() {}", Machine: "z80"}},
		{"parse error", CompileRequest{Source: "void main( {"}},
		{"bad ir", CompileRequest{IR: "func f( nonsense"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Compile(context.Background(), &tc.req)
			re, ok := err.(*RequestError)
			if !ok {
				t.Fatalf("err = %v, want *RequestError", err)
			}
			if re.Status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", re.Status)
			}
			if re.Msg == "" {
				t.Fatal("empty diagnostic")
			}
		})
	}
}

// TestBackpressure: with one worker slot and no queue, concurrent requests
// are answered 429 + Retry-After instead of piling up — and the client's
// retry loop absorbs the rejection, so every request eventually succeeds.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	var stalled sync.Once
	firstIn := make(chan struct{})
	s, c := newTestServer(t, Config{
		MaxInflight: 1,
		MaxQueue:    -1, // no queue: second request is rejected outright
		FaultDelay: func() time.Duration {
			stalled.Do(func() { close(firstIn) })
			<-release
			return 0
		},
	})

	src := "void main() { print(42); }"
	done := make(chan error, 1)
	go func() {
		_, err := c.Compile(context.Background(), &CompileRequest{Source: src})
		done <- err
	}()
	<-firstIn

	// Raw request while the slot is held: must be 429 with a parseable
	// Retry-After, not a hang.
	req := &CompileRequest{Source: src}
	raw := NewClient(c.base, c.hc)
	raw.MaxRetries = 0
	_, err := raw.Compile(context.Background(), req)
	if err == nil {
		t.Fatal("second request admitted past MaxInflight=1, MaxQueue=0")
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}

	// A retrying client rides out the backpressure.
	retrier := NewClient(c.base, c.hc)
	retrier.MaxRetries = 50
	retrier.BaseBackoff = time.Millisecond
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	if _, err := retrier.Compile(context.Background(), req); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("stalled request failed: %v", err)
	}
}

// TestDrain: draining answers new work 503, flips /healthz, and waits for
// inflight requests to finish.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s, c := newTestServer(t, Config{
		FaultDelay: func() time.Duration {
			once.Do(func() { close(entered) })
			<-release
			return 0
		},
	})

	var inflightErr atomic.Value
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		if _, err := c.Compile(context.Background(), &CompileRequest{Source: "void main() { print(7); }"}); err != nil {
			inflightErr.Store(err)
		}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Draining state is visible immediately; the inflight request is not
	// yet done.
	deadline := time.Now().Add(2 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("draining flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Health(context.Background()); err == nil {
		t.Error("healthz still ok while draining")
	}
	nc := NewClient(c.base, c.hc)
	nc.MaxRetries = 0
	if _, err := nc.Compile(context.Background(), &CompileRequest{Source: "void main() {}"}); err == nil {
		t.Error("new request admitted while draining")
	}

	select {
	case <-finished:
		t.Fatal("inflight request finished before release — test is vacuous")
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-finished
	if err, _ := inflightErr.Load().(error); err != nil {
		t.Fatalf("inflight request failed across drain: %v", err)
	}
}

// TestStatszSnapshot: counters, cache traffic and latency quantiles all show
// up in one snapshot.
func TestStatszSnapshot(t *testing.T) {
	_, c := newTestServer(t, Config{CacheDir: t.TempDir()})
	src := "void main() { int i; i = 0; while (i < 10) { print(i); i = i + 1; } }"
	for i := 0; i < 3; i++ {
		if _, err := c.Compile(context.Background(), &CompileRequest{Source: src}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 3 {
		t.Errorf("served = %d, want 3", st.Served)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("repeat compiles produced no cache hits: %+v", st.Cache)
	}
	if st.Disk == nil || st.Disk.Stores == 0 {
		t.Errorf("disk spill recorded no stores: %+v", st.Disk)
	}
	if st.Latency.Count != 3 || st.Latency.P50NS <= 0 || st.Latency.P99NS < st.Latency.P50NS {
		t.Errorf("implausible latency stats: %+v", st.Latency)
	}
}

func TestHandlerMethodChecks(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/compile", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile = %d, want 405", rec.Code)
	}
}
