package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"signext/internal/codecache"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/minijava"
	"signext/internal/target"
)

// Config parameterizes a Server. The zero value is usable: variant "all" on
// ia64, a 64 MiB sharded in-memory cache, a 2 s default deadline, GOMAXPROCS
// worker slots and a 64-deep queue.
type Config struct {
	Variant     jit.Variant // default variant for requests that name none
	Machine     ir.Machine  // default machine model
	MaxArrayLen int64       // array-length bound threaded into compile and run

	CacheBytes int64  // in-memory cache budget; <0 disables the cache, 0 = 64 MiB
	Shards     int    // cache shard count, 0 = codecache.DefaultShards
	CacheDir   string // disk spill directory; "" = memory-only
	Paranoid   bool   // re-verify every cache hit with the deep verifier

	// DefaultDeadline bounds compiles whose request names no deadline;
	// MaxDeadline clamps what a request may ask for. Zero values select
	// 2 s and 30 s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxInflight bounds concurrently compiling requests (0 = GOMAXPROCS);
	// MaxQueue bounds requests waiting for a slot (0 = 64, <0 = no queue).
	// A request beyond both is answered 429 with a Retry-After hint.
	MaxInflight int
	MaxQueue    int

	ElimBudget int   // per-function elimination work cap, 0 = unlimited
	MaxSteps   int64 // default interpreter budget for run/profile, 0 = 50M

	// FaultDelay, when set, is called once per admitted request and the
	// returned duration slept before compiling. Chaos tests use it (backed
	// by guard.Injector.Delay) to push requests over their deadlines.
	FaultDelay func() time.Duration
}

const (
	defaultCacheBytes = 64 << 20
	defaultDeadline   = 2 * time.Second
	defaultMaxDead    = 30 * time.Second
	defaultMaxQueue   = 64
	defaultMaxSteps   = 50_000_000
)

// Server is the daemon: an http.Handler plus the shared cache, admission
// control and drain machinery. Create one with New, expose it with Serve
// (or mount Handler on any http.Server), stop it with Drain.
type Server struct {
	cfg   Config
	cache codecache.Interface  // nil when disabled
	disk  *codecache.DiskStore // nil without CacheDir

	sem     chan struct{} // worker slots; len = inflight
	pending atomic.Int64  // admitted requests (waiting + inflight)

	draining atomic.Bool
	inflight sync.WaitGroup // tracked /compile handlers, for Drain without Serve

	served   atomic.Int64
	degraded atomic.Int64
	rejected atomic.Int64
	failed   atomic.Int64

	lat latRing

	httpSrv *http.Server
}

// New builds a Server, opening the disk store when cfg.CacheDir is set.
func New(cfg Config) (*Server, error) {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = defaultCacheBytes
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = defaultDeadline
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = defaultMaxDead
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = defaultMaxQueue
	} else if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = defaultMaxSteps
	}

	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight)}
	if cfg.CacheBytes > 0 {
		mem := codecache.NewSharded(cfg.CacheBytes, cfg.Shards)
		mem.SetParanoid(cfg.Paranoid)
		if cfg.CacheDir != "" {
			disk, err := codecache.OpenDiskStore(cfg.CacheDir, jit.PayloadCodec())
			if err != nil {
				return nil, fmt.Errorf("serve: open cache dir: %w", err)
			}
			s.disk = disk
			s.cache = codecache.NewSpill(mem, disk)
		} else {
			s.cache = mem
		}
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	return s, nil
}

// Handler returns the daemon's routes: POST /compile, GET /healthz,
// GET /statsz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/statsz", s.handleStats)
	return mux
}

// Serve accepts connections on l until Drain (or a listener error).
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Drain stops accepting new work and waits — bounded by ctx — for inflight
// requests to finish. New /compile requests are answered 503 the moment it
// is called; /healthz flips to 503 so load balancers stop routing here.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	return s.httpSrv.Shutdown(ctx)
}

// Stats snapshots the server's counters, cache state and latency window.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Served:   s.served.Load(),
		Degraded: s.degraded.Load(),
		Rejected: s.rejected.Load(),
		Failed:   s.failed.Load(),
		Inflight: len(s.sem),
		Draining: s.draining.Load(),
		Latency:  s.lat.stats(),
	}
	if q := int(s.pending.Load()) - st.Inflight; q > 0 {
		st.Queued = q
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	if s.disk != nil {
		d := s.disk.Stats()
		st.Disk = &d
	}
	return st
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// writeJSON answers with status and a JSON body; encode failures are the
// client's connection dying, which needs no handling.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// reject answers an overload or drain condition with a Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, status int, msg string) {
	s.rejected.Add(1)
	w.Header().Set("Retry-After", s.retryAfter())
	writeJSON(w, status, &CompileResponse{Error: msg})
}

// retryAfter estimates how long a client should back off: roughly one
// default deadline per queued request ahead of it, at least one second.
func (s *Server) retryAfter() string {
	waiting := int(s.pending.Load())
	secs := int64(time.Duration(waiting) * s.cfg.DefaultDeadline / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

const maxRequestBytes = 8 << 20

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "draining")
		return
	}

	// Admission: bound admitted requests (waiting + compiling) before
	// reading the body, so overload costs the server almost nothing. The
	// Add-then-check pattern is exact — each admitted request holds its
	// own increment, so the bound is never exceeded.
	bound := int64(s.cfg.MaxInflight + s.cfg.MaxQueue)
	if s.pending.Add(1) > bound {
		s.pending.Add(-1)
		s.reject(w, http.StatusTooManyRequests, "queue full")
		return
	}
	defer s.pending.Add(-1)
	s.inflight.Add(1)
	defer s.inflight.Done()

	var req CompileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		s.failed.Add(1)
		writeJSON(w, http.StatusBadRequest, &CompileResponse{Error: "bad request body: " + err.Error()})
		return
	}

	resp, status := s.compile(r.Context(), &req)
	switch {
	case status != http.StatusOK:
		s.failed.Add(1)
	default:
		s.served.Add(1)
		if resp.Degraded {
			s.degraded.Add(1)
		}
		s.lat.record(resp.WallNS)
	}
	writeJSON(w, status, resp)
}

// compile resolves one request end to end: options, deadline, worker slot,
// jit pipeline, optional execution. It returns a response and HTTP status;
// only malformed input produces a non-200 — deadline exhaustion degrades,
// runtime traps are reported faithfully in the body.
func (s *Server) compile(reqCtx context.Context, req *CompileRequest) (*CompileResponse, int) {
	start := time.Now()

	variant := s.cfg.Variant
	if req.Variant != "" {
		v, err := ParseVariant(req.Variant)
		if err != nil {
			return &CompileResponse{Error: err.Error()}, http.StatusBadRequest
		}
		variant = v
	}
	machine := s.cfg.Machine
	if req.Machine != "" {
		m, err := ParseMachine(req.Machine)
		if err != nil {
			return &CompileResponse{Error: err.Error()}, http.StatusBadRequest
		}
		machine = m
	}

	var prog *ir.Program
	switch {
	case req.Source != "" && req.IR != "":
		return &CompileResponse{Error: "source and ir are mutually exclusive"}, http.StatusBadRequest
	case req.Source != "":
		cu, err := minijava.Compile(req.Source)
		if err != nil {
			return &CompileResponse{Error: "minijava: " + err.Error()}, http.StatusBadRequest
		}
		prog = cu.Prog
	case req.IR != "":
		p, err := ir.ParseProgram(req.IR)
		if err != nil {
			return &CompileResponse{Error: "ir: " + err.Error()}, http.StatusBadRequest
		}
		prog = p
	default:
		return &CompileResponse{Error: "one of source or ir is required"}, http.StatusBadRequest
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(reqCtx, deadline)
	defer cancel()

	// The deadline covers queueing: a request that waited too long for a
	// slot compiles at the floor instead of blocking its successors.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	if s.cfg.FaultDelay != nil {
		if d := s.cfg.FaultDelay(); d > 0 {
			time.Sleep(d)
		}
	}

	maxSteps := s.cfg.MaxSteps
	if req.MaxSteps > 0 {
		maxSteps = req.MaxSteps
	}

	opts := jit.Options{
		Variant:     variant,
		Machine:     machine,
		MaxArrayLen: s.cfg.MaxArrayLen,
		GeneralOpts: true,
		Checked:     true,
		Parallelism: 1, // concurrency comes from requests, not per-request fan-out
		ElimBudget:  s.cfg.ElimBudget,
		Cache:       s.cache,
		Ctx:         ctx,
	}
	if req.WithProfile && ctx.Err() == nil {
		// A failed profile run (trap, step limit) is not fatal: compile
		// without order determination rather than refuse the request.
		if p, err := jit.ProfileRun(prog, "main", maxSteps); err == nil {
			opts.Profile = p
		}
	}

	res, err := jit.Compile(prog, opts)
	if err != nil {
		// Fatal pipeline errors mean malformed input that slipped past the
		// front end (e.g. hand-written IR failing conversion).
		return &CompileResponse{Error: "compile: " + err.Error()}, http.StatusBadRequest
	}

	resp := &CompileResponse{
		Eliminated:    res.Stats.Eliminated,
		Inserted:      res.Stats.Inserted,
		StaticExts:    res.StaticExts,
		Degraded:      len(res.Degraded) > 0 || len(res.Fallbacks) > 0,
		DegradedFuncs: res.Degraded,
		Fallbacks:     len(res.Fallbacks),
	}
	if res.CacheStats != nil {
		resp.CacheHits = res.CacheStats.Hits
		resp.CacheMisses = res.CacheStats.Misses
	}

	if req.Run {
		out, rerr := interp.Run(res.Prog, "main", interp.Options{
			Mode:        interp.Mode64,
			Machine:     machine,
			Cost:        target.CostModel(machine),
			MaxArrayLen: s.cfg.MaxArrayLen,
			MaxSteps:    maxSteps,
		})
		if rerr != nil {
			resp.Trap = rerr.Error()
		}
		if out != nil {
			resp.Output = out.Output
			resp.DynamicExts = out.ExtTotal()
			resp.Cycles = out.Cycles
			resp.Steps = out.Steps
		}
	}

	resp.WallNS = time.Since(start).Nanoseconds()
	return resp, http.StatusOK
}

// latRing is a fixed sliding window of recent request latencies; quantiles
// sort a copy, so recording stays O(1) under the lock.
type latRing struct {
	mu    sync.Mutex
	buf   [4096]int64
	count int64
	max   int64
}

func (r *latRing) record(ns int64) {
	r.mu.Lock()
	r.buf[r.count%int64(len(r.buf))] = ns
	r.count++
	if ns > r.max {
		r.max = ns
	}
	r.mu.Unlock()
}

func (r *latRing) stats() LatencyStats {
	r.mu.Lock()
	n := r.count
	if n > int64(len(r.buf)) {
		n = int64(len(r.buf))
	}
	window := make([]int64, n)
	copy(window, r.buf[:n])
	st := LatencyStats{Count: r.count, MaxNS: r.max}
	r.mu.Unlock()
	if n == 0 {
		return st
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	st.P50NS = window[n/2]
	st.P99NS = window[(n*99)/100]
	return st
}
