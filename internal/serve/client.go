package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client talks to a sxelimd daemon, absorbing the transient failures the
// server is designed to emit: 429/503 answers (and their Retry-After hints)
// and connection errors are retried with exponential backoff and jitter;
// 4xx request errors are permanent and returned immediately.
type Client struct {
	base string
	hc   *http.Client

	// Retry policy. The zero value of a Dial'd client retries 5 times,
	// starting at 25 ms and capping at 1 s between attempts.
	MaxRetries  int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	mu  sync.Mutex
	rng *rand.Rand // jitter source; seeded per client, never shared
}

// Dial returns a client for a daemon at network/addr — typically
// ("unix", "/run/sxelimd.sock") or ("tcp", "127.0.0.1:7878").
func Dial(network, addr string) *Client {
	tr := &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
	return newClient("http://sxelimd", &http.Client{Transport: tr})
}

// NewClient wraps an existing base URL and http.Client — the hook tests use
// to point at an httptest.Server.
func NewClient(base string, hc *http.Client) *Client {
	return newClient(base, hc)
}

func newClient(base string, hc *http.Client) *Client {
	return &Client{
		base:        base,
		hc:          hc,
		MaxRetries:  5,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// RequestError is a permanent, non-retryable daemon answer (4xx/5xx other
// than overload): the request itself is wrong.
type RequestError struct {
	Status int
	Msg    string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("sxelimd: %d: %s", e.Status, e.Msg)
}

// Compile submits one request, retrying transient failures until ctx
// expires or the retry budget runs out.
func (c *Client) Compile(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, retryAfter, err := c.post(ctx, body)
		if err == nil {
			return resp, nil
		}
		if _, permanent := err.(*RequestError); permanent {
			return nil, err
		}
		lastErr = err
		if attempt >= c.MaxRetries {
			return nil, fmt.Errorf("sxelimd: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		if err := c.sleep(ctx, attempt, retryAfter); err != nil {
			return nil, fmt.Errorf("sxelimd: %w (last answer: %v)", err, lastErr)
		}
	}
}

// post performs one HTTP exchange. Overload answers and transport errors
// come back as plain errors (retryable); request errors as *RequestError.
func (c *Client) post(ctx context.Context, body []byte) (*CompileResponse, time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/compile", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	defer hres.Body.Close()

	switch hres.StatusCode {
	case http.StatusOK:
		var resp CompileResponse
		if err := json.NewDecoder(io.LimitReader(hres.Body, maxRequestBytes)).Decode(&resp); err != nil {
			return nil, 0, fmt.Errorf("decode answer: %w", err)
		}
		return &resp, 0, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		retryAfter := parseRetryAfter(hres.Header.Get("Retry-After"))
		return nil, retryAfter, fmt.Errorf("overloaded: %s", hres.Status)
	default:
		msg := hres.Status
		var resp CompileResponse
		if json.NewDecoder(io.LimitReader(hres.Body, maxRequestBytes)).Decode(&resp) == nil && resp.Error != "" {
			msg = resp.Error
		}
		return nil, 0, &RequestError{Status: hres.StatusCode, Msg: msg}
	}
}

func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.ParseInt(h, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleep backs off before the next attempt: the server's Retry-After hint
// when present (jittered ±50% so a rejected herd does not return in step),
// else exponential from BaseBackoff, capped at MaxBackoff.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := c.BaseBackoff << uint(attempt)
	if retryAfter > 0 {
		d = retryAfter
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d)+1))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Health reports whether the daemon is accepting work.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("unhealthy: %s", hres.Status)
	}
	return nil
}

// Stats fetches the daemon's /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statsz: %s", hres.Status)
	}
	var st ServerStats
	if err := json.NewDecoder(io.LimitReader(hres.Body, maxRequestBytes)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
