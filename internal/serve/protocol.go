// Package serve is the fault-tolerant compile daemon behind cmd/sxelimd: a
// long-lived server that accepts concurrent compile/run requests over HTTP
// (usually on a unix socket) and is engineered to degrade rather than lie or
// die. Per-request deadlines thread into the jit pipeline as a
// context.Context; an expired deadline floors the remaining functions to
// guarded Convert64-only code and marks the response degraded — the answer
// is still correct, just unoptimized. Admission control bounds the queue and
// answers overload with 429 + Retry-After instead of unbounded goroutines,
// and the warm set lives in a crash-safe disk-spill cache that survives
// kill -9.
package serve

import (
	"fmt"

	"signext/internal/codecache"
	"signext/internal/ir"
	"signext/internal/jit"
)

// CompileRequest is the body of POST /compile. Exactly one of Source
// (MiniJava) or IR (signext IR text, ir.ParseProgram syntax) must be set.
type CompileRequest struct {
	Source string `json:"source,omitempty"` // MiniJava source
	IR     string `json:"ir,omitempty"`     // IR text; mutually exclusive with Source

	Variant string `json:"variant,omitempty"` // short name (see ParseVariant); "" = server default
	Machine string `json:"machine,omitempty"` // "ia64" or "ppc64"; "" = server default

	// Run executes the compiled program on the 64-bit machine model and
	// fills the dynamic fields of the response.
	Run bool `json:"run,omitempty"`

	// WithProfile gathers a branch profile (a 32-bit interpreter run)
	// before compiling, enabling order determination. Skipped when the
	// deadline has already expired — profiled compilation of floored code
	// would be wasted work.
	WithProfile bool `json:"with_profile,omitempty"`

	// DeadlineMS bounds this request's compile in milliseconds. 0 selects
	// the server default; values above the server maximum are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// MaxSteps bounds the interpreter when Run (or WithProfile) is set.
	// 0 selects the server default.
	MaxSteps int64 `json:"max_steps,omitempty"`
}

// CompileResponse is the body of a 200 answer. Error-status answers (400,
// 429, 500, 503) carry only Error, plus Retry-After as an HTTP header where
// applicable.
type CompileResponse struct {
	// Static compile results.
	Eliminated int `json:"eliminated"`
	Inserted   int `json:"inserted"`
	StaticExts int `json:"static_exts"`

	// Degradation facts. Degraded is true when any function was floored by
	// the deadline or disabled by a guarded-phase fallback; the code is
	// correct either way.
	Degraded      bool     `json:"degraded"`
	DegradedFuncs []string `json:"degraded_funcs,omitempty"`
	Fallbacks     int      `json:"fallbacks,omitempty"`

	// Cache traffic for this request (not cumulative).
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`

	// Dynamic results, present when Run was set. A runtime trap is a
	// faithful answer, not a server error: Trap carries its message and
	// Output whatever was printed before it.
	Output      string `json:"output,omitempty"`
	Trap        string `json:"trap,omitempty"`
	DynamicExts int64  `json:"dynamic_exts,omitempty"`
	Cycles      int64  `json:"cycles,omitempty"`
	Steps       int64  `json:"steps,omitempty"`

	WallNS int64 `json:"wall_ns"`

	// Error is set on non-200 answers: a malformed request, an unknown
	// variant, a front-end parse failure.
	Error string `json:"error,omitempty"`
}

// ServerStats is the body of GET /statsz.
type ServerStats struct {
	Served   int64 `json:"served"`   // 200 answers
	Degraded int64 `json:"degraded"` // 200 answers with Degraded set
	Rejected int64 `json:"rejected"` // 429/503 answers
	Failed   int64 `json:"failed"`   // 400/500 answers

	Inflight int  `json:"inflight"` // requests holding a worker slot now
	Queued   int  `json:"queued"`   // requests waiting for a slot now
	Draining bool `json:"draining"`

	Cache codecache.Stats      `json:"cache"`
	Disk  *codecache.DiskStats `json:"disk,omitempty"` // nil without a cache dir

	Latency LatencyStats `json:"latency"`
}

// LatencyStats summarizes the sliding window of recent /compile latencies.
type LatencyStats struct {
	Count int64 `json:"count"` // total requests measured (window may be smaller)
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// variantByFlag maps the short command-line spellings (shared with sxelim)
// to pipeline variants.
var variantByFlag = map[string]jit.Variant{
	"baseline":     jit.Baseline,
	"genuse":       jit.GenUse,
	"first":        jit.FirstAlgorithm,
	"basic":        jit.BasicUDDU,
	"insert":       jit.Insert,
	"order":        jit.Order,
	"insert-order": jit.InsertOrder,
	"array":        jit.Array,
	"array-insert": jit.ArrayInsert,
	"array-order":  jit.ArrayOrder,
	"all-pde":      jit.AllPDE,
	"all":          jit.All,
}

// ParseVariant resolves a short variant name ("all", "baseline", …).
func ParseVariant(name string) (jit.Variant, error) {
	v, ok := variantByFlag[name]
	if !ok {
		return 0, fmt.Errorf("unknown variant %q", name)
	}
	return v, nil
}

// ParseMachine resolves a machine model name.
func ParseMachine(name string) (ir.Machine, error) {
	switch name {
	case "ia64":
		return ir.IA64, nil
	case "ppc64":
		return ir.PPC64, nil
	}
	return 0, fmt.Errorf("unknown machine %q", name)
}
