package serve

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"signext/internal/progen"
)

// TestHelperProcessDaemon is not a test: re-executed by
// TestCrashRestartWarmStart with SXELIMD_HELPER=1, it runs a real daemon on
// a unix socket until the parent kills it — with SIGKILL, which is the
// point.
func TestHelperProcessDaemon(t *testing.T) {
	if os.Getenv("SXELIMD_HELPER") != "1" {
		t.Skip("helper process only")
	}
	v, err := ParseVariant("all")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Variant: v, CacheDir: os.Getenv("SXELIMD_CACHEDIR")})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("unix", os.Getenv("SXELIMD_SOCKET"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(l); err != nil {
		t.Fatal(err)
	}
}

// startHelper re-executes the test binary as a daemon and waits for its
// socket to accept.
func startHelper(t *testing.T, socket, cacheDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcessDaemon$")
	cmd.Env = append(os.Environ(),
		"SXELIMD_HELPER=1",
		"SXELIMD_SOCKET="+socket,
		"SXELIMD_CACHEDIR="+cacheDir,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("unix", socket, 100*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon socket never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRestartWarmStart is the crash-safety end-to-end: a daemon is
// killed with SIGKILL while serving concurrent traffic, restarted over the
// same cache directory, and must (a) answer every replayed request exactly
// as before the crash and (b) answer them warm — served off the disk store
// the crash could not corrupt.
func TestCrashRestartWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	// Unix socket paths are length-limited (~104 bytes); t.TempDir can
	// exceed that under long test names.
	dir, err := os.MkdirTemp("", "sxd")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	socket := filepath.Join(dir, "s.sock")
	cacheDir := filepath.Join(dir, "cache")

	progs := make([]string, 8)
	for i := range progs {
		progs[i] = progen.MiniJava(int64(7000+i), progen.Config{Stmts: 6, Funcs: 2})
	}

	// Round 1: populate the cache, record the answers.
	cmd := startHelper(t, socket, cacheDir)
	c := Dial("unix", socket)
	want := make([]*CompileResponse, len(progs))
	for i, src := range progs {
		resp, err := c.Compile(context.Background(), &CompileRequest{Source: src, Run: true})
		if err != nil {
			t.Fatalf("prog %d: %v", i, err)
		}
		want[i] = resp
	}

	// Kill -9 while a concurrent wave is inflight. Those requests may fail
	// with connection errors — a killed daemon gives no answer, it must
	// never give a wrong one.
	var wg sync.WaitGroup
	for _, src := range progs {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			cc := Dial("unix", socket)
			cc.MaxRetries = 0
			cc.Compile(context.Background(), &CompileRequest{Source: src, Run: true})
		}(src)
	}
	time.Sleep(5 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	wg.Wait()
	os.Remove(socket)

	// Round 2: restart over the same cache dir; replay.
	cmd2 := startHelper(t, socket, cacheDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	c2 := Dial("unix", socket)
	for i, src := range progs {
		resp, err := c2.Compile(context.Background(), &CompileRequest{Source: src, Run: true})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		w := want[i]
		if resp.Output != w.Output || resp.Trap != w.Trap ||
			resp.Eliminated != w.Eliminated || resp.StaticExts != w.StaticExts ||
			resp.DynamicExts != w.DynamicExts || resp.Cycles != w.Cycles {
			t.Errorf("replay %d: answer changed across crash:\n pre: %+v\npost: %+v", i, w, resp)
		}
	}
	st, err := c2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Disk == nil || st.Disk.Loads == 0 {
		t.Fatalf("restart answered cold: no warm hits from the disk store (disk: %+v)", st.Disk)
	}
	t.Logf("restart warm: %d disk loads, cache %+v", st.Disk.Loads, st.Cache)
}
