package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/minijava"
	"signext/internal/progen"
)

// TestChaosCampaign drives the daemon the way the failure matrix says it
// must survive: concurrent requests with hostile deadlines, seeded delay
// faults pushing compiles over those deadlines, and disk-cache entries
// corrupted between rounds. The invariant under all of it: zero incorrect
// responses. Degraded answers and quarantined entries are expected — wrong
// output is the only failure.
func TestChaosCampaign(t *testing.T) {
	dir := t.TempDir()
	inj := guard.NewInjector(42)
	var injMu sync.Mutex // Injector's rng is not concurrency-safe; handlers are concurrent
	cfg := Config{
		CacheDir: dir,
		Paranoid: true,
		FaultDelay: func() time.Duration {
			injMu.Lock()
			defer injMu.Unlock()
			return inj.Delay(2 * time.Millisecond)
		},
	}

	// A pool of generated programs with reference outputs computed by the
	// untouched 32-bit interpreter.
	const nProgs = 6
	type prog struct{ src, want string }
	pool := make([]prog, nProgs)
	for i := range pool {
		src := progen.MiniJava(int64(1000+i), progen.Config{Stmts: 8, Funcs: 2})
		cu, err := minijava.Compile(src)
		if err != nil {
			t.Fatalf("generated program %d does not compile: %v", i, err)
		}
		ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		pool[i] = prog{src: src, want: ref.Output}
	}

	// Each round runs a fresh server over the same cache directory —
	// restart semantics, so warm answers come off disk and corrupted
	// entries are actually loaded, detected and quarantined.
	var wrong, degraded int64
	var quarantined, diskLoads uint64
	var mu sync.Mutex
	const rounds = 4
	for round := 0; round < rounds; round++ {
		s, c := newTestServer(t, cfg)
		c.MaxRetries = 20
		var wg sync.WaitGroup
		for i, p := range pool {
			wg.Add(1)
			go func(i int, p prog) {
				defer wg.Done()
				req := &CompileRequest{Source: p.src, Run: true}
				// Every other request gets a deadline tighter than the
				// injected delay can be — some will floor.
				if i%2 == 0 {
					req.DeadlineMS = 1
				}
				resp, err := c.Compile(context.Background(), req)
				if err != nil {
					t.Errorf("round %d prog %d: %v", round, i, err)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if resp.Trap != "" || resp.Output != p.want {
					wrong++
					t.Errorf("round %d prog %d: INCORRECT answer: trap=%q output=%q want=%q",
						round, i, resp.Trap, resp.Output, p.want)
				}
				if resp.Degraded {
					degraded++
				}
			}(i, p)
		}
		wg.Wait()

		st := s.Stats()
		if st.Failed != 0 {
			t.Errorf("round %d: %d failed answers: %+v", round, st.Failed, st)
		}
		if st.Disk == nil {
			t.Fatal("no disk stats")
		}
		quarantined += st.Disk.Quarantined
		diskLoads += st.Disk.Loads

		// Between rounds: flip bits in (or truncate) persisted entries.
		for k := 0; k < 2; k++ {
			if path, ok := inj.CorruptDiskEntry(dir); ok && testing.Verbose() {
				fmt.Printf("round %d: corrupted %s\n", round, path)
			}
		}
	}

	if wrong != 0 {
		t.Fatalf("%d incorrect responses — the one unacceptable outcome", wrong)
	}
	if diskLoads == 0 {
		t.Error("no warm answer ever came off disk — restarts are cold")
	}
	if quarantined == 0 {
		t.Error("corruption campaign quarantined nothing")
	}
	t.Logf("campaign: degraded=%d quarantined=%d disk loads=%d",
		degraded, quarantined, diskLoads)
}
