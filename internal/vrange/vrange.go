// Package vrange implements the value-range analysis the paper's array
// subscript handling (section 3) depends on: Theorems 2-4 need conditions of
// the form "0 <= i or j <= 0x7fffffff" or "maxlen-1-0x7fffffff <= i or j",
// which "can be determined at compile time using one of the value range
// analysis techniques [4, 7]".
//
// Ranges describe the semantic value of a definition: the low W bits of the
// destination register interpreted as a signed W-bit integer. This quantity
// is well defined even when the register's upper bits are dirty, and it is
// invariant under insertion or removal of 32-bit sign extensions, so ranges
// computed once per phase remain valid throughout the elimination phase.
package vrange

import (
	"math"

	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/dataflow"
	"signext/internal/ir"
)

// Range is an inclusive interval of signed values. Lo > Hi encodes bottom
// (no information yet / unreachable).
type Range struct {
	Lo, Hi int64
}

// Bottom is the empty range.
func Bottom() Range { return Range{1, 0} }

// Full32 is the full signed 32-bit range.
func Full32() Range { return Range{math.MinInt32, math.MaxInt32} }

// Full64 is the full signed 64-bit range.
func Full64() Range { return Range{math.MinInt64, math.MaxInt64} }

// IsBottom reports whether the range is empty.
func (r Range) IsBottom() bool { return r.Lo > r.Hi }

// Const returns the singleton range.
func Const(v int64) Range { return Range{v, v} }

// Union returns the smallest interval containing both ranges.
func (r Range) Union(o Range) Range {
	if r.IsBottom() {
		return o
	}
	if o.IsBottom() {
		return r
	}
	return Range{min64(r.Lo, o.Lo), max64(r.Hi, o.Hi)}
}

// Intersect returns the interval intersection.
func (r Range) Intersect(o Range) Range {
	if r.IsBottom() || o.IsBottom() {
		return Bottom()
	}
	return Range{max64(r.Lo, o.Lo), min64(r.Hi, o.Hi)}
}

// Within reports whether every value in r lies in [lo, hi]. A bottom range
// is vacuously within any interval.
func (r Range) Within(lo, hi int64) bool {
	if r.IsBottom() {
		return true
	}
	return r.Lo >= lo && r.Hi <= hi
}

// NonNeg reports whether the range is known non-negative (and bounded by the
// signed 32-bit maximum), i.e. the paper's "0 <= x <= 0x7fffffff".
func (r Range) NonNeg() bool { return r.Within(0, math.MaxInt32) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// shlExact returns v<<n and whether the shift is exact in int64 (round
// trips without losing bits). Exact endpoint shifts make the whole interval
// shift exact: |v·2^n| is bounded by a representable endpoint product.
func shlExact(v int64, n uint) (int64, bool) {
	s := v << n
	return s, s>>n == v
}

// Analysis holds the fixpoint solution for one function.
type Analysis struct {
	fn     *ir.Func
	ch     *chains.Chains
	info   *cfg.Info
	mach   ir.Machine
	maxLen int64
	defs   map[*ir.Instr]Range
	bumpLo map[*ir.Instr]int
	bumpHi map[*ir.Instr]int
	sites  map[blockReg][]condSite
	prefix map[useKey]bool // memo: query operand has an earlier in-block semantic def
}

type useKey struct {
	ins *ir.Instr
	op  int
}

const widenAfter = 8

// Compute runs the analysis. maxLen is the language's maximum array length
// (the paper's maxlen; 0x7fffffff for Java). info supplies the control-flow
// facts used to refine ranges with dominating branch conditions — the role
// played by symbolic range propagation in the paper's section 3.
func Compute(fn *ir.Func, ch *chains.Chains, info *cfg.Info, mach ir.Machine, maxLen int64) *Analysis {
	a := &Analysis{
		fn:     fn,
		ch:     ch,
		info:   info,
		mach:   mach,
		maxLen: maxLen,
		defs:   map[*ir.Instr]Range{},
		bumpLo: map[*ir.Instr]int{},
		bumpHi: map[*ir.Instr]int{},
	}
	if a.maxLen == 0 {
		a.maxLen = math.MaxInt32
	}
	for pass := 0; pass < 60; pass++ {
		changed := false
		fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
			if !ins.HasDst() {
				return
			}
			nr := a.transfer(ins)
			old, seen := a.defs[ins]
			if seen {
				nr = nr.Union(old) // monotone growth
			}
			if !seen || nr != old {
				// Widen only the moving bound, so stable bounds (a loop
				// counter's zero floor) survive widening.
				full := a.fullFor(ins.W)
				if seen && nr.Lo < old.Lo {
					a.bumpLo[ins]++
					if a.bumpLo[ins] > widenAfter {
						nr.Lo = full.Lo
					}
				}
				if seen && nr.Hi > old.Hi {
					a.bumpHi[ins]++
					if a.bumpHi[ins] > widenAfter {
						nr.Hi = full.Hi
					}
				}
				if !seen || nr != old {
					a.defs[ins] = nr
					changed = true
				}
			}
		})
		if !changed {
			break
		}
	}
	// Narrowing: widening overshoots moving bounds (a counter capped by a
	// branch still gets its Hi widened to +inf once it grows for more than
	// widenAfter passes). With the fixpoint converged, recomputing each
	// transfer over the final operand ranges and intersecting recovers the
	// precise interval; every stored range remains an over-approximation by
	// induction, so this is sound.
	for pass := 0; pass < 3; pass++ {
		changed := false
		fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
			if !ins.HasDst() {
				return
			}
			nr := a.transfer(ins).Intersect(a.defs[ins])
			if !nr.IsBottom() && nr != a.defs[ins] {
				a.defs[ins] = nr
				changed = true
			}
		})
		if !changed {
			break
		}
	}
	return a
}

func (a *Analysis) fullFor(w ir.Width) Range {
	if w == ir.W64 {
		return Full64()
	}
	return Full32()
}

// OfDef returns the range of the definition d.
func (a *Analysis) OfDef(d dataflow.DefSite) Range {
	if d.IsParam() {
		p := a.fn.Params[d.Param]
		if p.Float || p.Ref {
			return Full64()
		}
		return a.fullFor(p.W)
	}
	if r, ok := a.defs[d.Instr]; ok {
		return r
	}
	// Not yet visited by the fixpoint: optimistic bottom, so cyclic
	// definitions (loop counters) converge to their least range instead of
	// starting at top.
	return Bottom()
}

// OfDefRange returns the computed range of an instruction's destination and
// whether one exists.
func (a *Analysis) OfDefRange(ins *ir.Instr) (Range, bool) {
	r, ok := a.defs[ins]
	return r, ok
}

// OfOperand returns the union of the ranges of every definition reaching the
// given operand.
func (a *Analysis) OfOperand(ins *ir.Instr, op int) Range {
	defs := a.ch.UD(ins, op)
	if len(defs) == 0 {
		return a.fullFor(ir.W64) // uninitialized: no information
	}
	r := Bottom()
	for _, d := range defs {
		r = r.Union(a.OfDef(d))
	}
	return r
}

// condSite is one branch condition that provably constrains a register at a
// query block: the branch t (conditional terminator of its block), which
// operand side carries the register, and whether the constraint is the
// branch condition or its negation.
type condSite struct {
	t       *ir.Instr
	side    int // operand index of the constrained register
	negated bool
}

type blockReg struct {
	blk *ir.Block
	reg ir.Reg
}

// OfOperandAt returns the operand's range refined by every branch condition
// that dominates the instruction: an edge D→S contributes when S dominates
// the query block, S's other predecessors are back edges (dominated by S),
// the branch compares the same register, and no semantic definition of the
// register can reach the query without re-passing D. This recovers the
// loop-bound facts ("i < n" inside a for body, across inner loops) that the
// paper obtains from symbolic range propagation [4, 7].
//
// Same-register 32-bit extensions and dummy markers preserve the semantic
// value our ranges describe, so they do not count as definitions here.
func (a *Analysis) OfOperandAt(ins *ir.Instr, op int) Range {
	base := a.OfOperand(ins, op)
	if a.info == nil || ins.Blk == nil {
		return base
	}
	reg := ins.UseAt(op)
	// Semantic definitions of reg earlier in the query block invalidate
	// every dominating condition (memoized: block layout is stable while
	// the analysis is alive).
	if a.prefix == nil {
		a.prefix = map[useKey]bool{}
	}
	blocked, seen := a.prefix[useKey{ins, op}]
	if !seen {
		for _, x := range ins.Blk.Instrs {
			if x == ins {
				break
			}
			if semanticDef(x, reg) {
				blocked = true
				break
			}
		}
		a.prefix[useKey{ins, op}] = blocked
	}
	if blocked {
		return base
	}
	for _, site := range a.condSites(ins.Blk, reg) {
		cond := site.t.Cond
		if site.negated {
			cond = cond.Negate()
		}
		other := a.OfOperand(site.t, 1-site.side)
		base = refineByCond(base, cond, site.side == 1, other, site.t.W)
	}
	return base
}

// semanticDef reports whether ins changes the semantic (low-32-bit signed)
// value of reg.
func semanticDef(ins *ir.Instr, reg ir.Reg) bool {
	if !ins.HasDst() || ins.Dst != reg {
		return false
	}
	switch ins.Op {
	case ir.OpExtDummy:
		return false
	case ir.OpExt:
		// ext.32 rewrites only the upper half; narrower extensions change
		// the 32-bit value.
		return !(ins.W == ir.W32 && ins.Srcs[0] == reg)
	}
	return true
}

// condSites computes (and caches — the structure is invariant during a
// fixpoint) the dominating branch conditions applicable to reg at block B.
func (a *Analysis) condSites(b *ir.Block, reg ir.Reg) []condSite {
	if a.sites == nil {
		a.sites = map[blockReg][]condSite{}
	}
	key := blockReg{b, reg}
	if s, ok := a.sites[key]; ok {
		return s
	}
	var out []condSite
	seen := map[*ir.Block]bool{}
	for d := b; d != nil && !seen[d]; d = a.info.IDom[d] {
		seen[d] = true
		t := d.Term()
		if t == nil || t.Op != ir.OpBr || len(d.Succs) != 2 || d.Succs[0] == d.Succs[1] {
			continue
		}
		for side := 0; side < 2; side++ {
			if t.Srcs[side] != reg {
				continue
			}
			for edge := 0; edge < 2; edge++ {
				s := d.Succs[edge]
				if !a.info.Dominates(s, b) {
					continue
				}
				// The edge must be the region's only entry: every other
				// predecessor of S is a back edge from within S's region.
				entryOK := true
				for _, p := range s.Preds {
					if p != d && !a.info.Dominates(s, p) {
						entryOK = false
					}
				}
				if !entryOK {
					continue
				}
				if a.regReachesWithoutD(b, d, reg) {
					continue // a definition can reach the query bypassing D
				}
				out = append(out, condSite{t: t, side: side, negated: edge == 1})
			}
		}
	}
	a.sites[key] = out
	return out
}

// regReachesWithoutD reports whether some semantic definition of reg reaches
// block b along a path that does not pass through d (in which case d's
// branch condition may be stale at b). The query block's own instructions
// are checked separately by the caller.
func (a *Analysis) regReachesWithoutD(b, d *ir.Block, reg ir.Reg) bool {
	// Backward reachability from b in the CFG with d removed, looking for
	// blocks containing semantic defs of reg. b itself is scanned in full if
	// a cycle re-reaches it: a definition anywhere in b then lies between d
	// and the query on some d-free path.
	seen := map[*ir.Block]bool{}
	stack := []*ir.Block{}
	for _, p := range b.Preds {
		if p != d && !seen[p] {
			seen[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, insX := range x.Instrs {
			if semanticDef(insX, reg) {
				return true
			}
		}
		for _, p := range x.Preds {
			if p != d && !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// refineByCond intersects base with the constraint "x cond other" (or
// "other cond x" when mirrored), for a width-w integer compare.
func refineByCond(base Range, cond ir.Cond, mirrored bool, other Range, w ir.Width) Range {
	if other.IsBottom() {
		return base
	}
	if mirrored {
		// other cond x  ==  x cond' other
		switch cond {
		case ir.CondLT:
			cond = ir.CondGT
		case ir.CondLE:
			cond = ir.CondGE
		case ir.CondGT:
			cond = ir.CondLT
		case ir.CondGE:
			cond = ir.CondLE
		case ir.CondULT:
			cond = ir.CondUGT
		case ir.CondULE:
			cond = ir.CondUGE
		case ir.CondUGT:
			cond = ir.CondULT
		case ir.CondUGE:
			cond = ir.CondULE
		}
	}
	max := int64(math.MaxInt64)
	min := int64(math.MinInt64)
	switch cond {
	case ir.CondEQ:
		return base.Intersect(other)
	case ir.CondNE:
		return base
	case ir.CondLT:
		if other.Hi < max {
			return base.Intersect(Range{min, other.Hi - 1})
		}
	case ir.CondLE:
		return base.Intersect(Range{min, other.Hi})
	case ir.CondGT:
		if other.Lo > min {
			return base.Intersect(Range{other.Lo + 1, max})
		}
	case ir.CondGE:
		return base.Intersect(Range{other.Lo, max})
	case ir.CondULT, ir.CondULE:
		// An unsigned upper bound by a value known within the signed
		// positive half pins the sign bit to zero (the bounds-check fact).
		limit := int64(math.MaxInt32)
		if w == ir.W64 {
			limit = math.MaxInt64
		}
		if other.Within(0, limit) {
			hi := other.Hi
			if cond == ir.CondULT {
				hi--
			}
			return base.Intersect(Range{0, hi})
		}
	}
	return base
}

// ConstOperand reports whether operand op of ins is a known constant.
func (a *Analysis) ConstOperand(ins *ir.Instr, op int) (int64, bool) {
	r := a.OfOperand(ins, op)
	if !r.IsBottom() && r.Lo == r.Hi {
		return r.Lo, true
	}
	return 0, false
}

func (a *Analysis) transfer(ins *ir.Instr) Range {
	w := ins.W
	full := a.fullFor(w)
	src := func(k int) Range { return a.OfOperandAt(ins, k).Intersect(Full64()) }
	switch ins.Op {
	case ir.OpConst:
		return Const(ins.Const)
	case ir.OpMov:
		return src(0)
	case ir.OpExt:
		// The semantic 32-bit value of ext.W is sext_W of the operand's low
		// W bits; when the operand already fits in W bits the value is
		// unchanged.
		s := src(0)
		lim := Range{-(1 << (w - 1)), 1<<(w-1) - 1}
		if w == ir.W32 {
			// ext.32 leaves the low 32 bits alone: the W32 semantic value
			// is exactly the operand's.
			return s
		}
		if s.Within(lim.Lo, lim.Hi) {
			return s
		}
		return lim
	case ir.OpExtDummy:
		// Array-access postcondition: the index's semantic value was in
		// [0, maxlen-1] (section 3, predicate LS).
		return src(0).Intersect(Range{0, a.maxLen - 1})
	case ir.OpZext:
		if w == ir.W64 {
			return src(0)
		}
		return Range{0, int64(w.Mask())}
	case ir.OpAdd:
		return a.addRange(src(0), src(1), w)
	case ir.OpSub:
		s1 := src(1)
		if s1.IsBottom() {
			return Bottom()
		}
		neg := Range{-s1.Hi, -s1.Lo}
		if s1.Lo == math.MinInt64 {
			neg = Full64()
		}
		return a.addRange(src(0), neg, w)
	case ir.OpMul:
		x, y := src(0), src(1)
		if x.IsBottom() || y.IsBottom() {
			return Bottom()
		}
		lo, hi, ok := mulBounds(x, y)
		if !ok {
			return full
		}
		r := Range{lo, hi}
		if !r.Within(full.Lo, full.Hi) {
			return full
		}
		return r
	case ir.OpNeg:
		s := src(0)
		if s.IsBottom() {
			return Bottom()
		}
		if s.Lo == full.Lo { // -MinInt wraps
			return full
		}
		return Range{-s.Hi, -s.Lo}
	case ir.OpNot:
		s := src(0)
		if s.IsBottom() {
			return Bottom()
		}
		return Range{^s.Hi, ^s.Lo}
	case ir.OpAnd:
		x, y := src(0), src(1)
		if x.IsBottom() || y.IsBottom() {
			return Bottom()
		}
		// x & y with a non-negative operand is bounded by it.
		hi := int64(math.MaxInt64)
		known := false
		if x.NonNeg() || (w == ir.W64 && x.Within(0, math.MaxInt64)) {
			hi = min64(hi, x.Hi)
			known = true
		}
		if y.NonNeg() || (w == ir.W64 && y.Within(0, math.MaxInt64)) {
			hi = min64(hi, y.Hi)
			known = true
		}
		if known {
			return Range{0, hi}
		}
		return full
	case ir.OpOr, ir.OpXor:
		x, y := src(0), src(1)
		if x.IsBottom() || y.IsBottom() {
			return Bottom()
		}
		if x.Within(0, full.Hi) && y.Within(0, full.Hi) {
			return Range{0, full.Hi}
		}
		return full
	case ir.OpShl:
		x, y := src(0), src(1)
		if x.IsBottom() || y.IsBottom() {
			return Bottom()
		}
		if y.Within(0, int64(w)-1) {
			// Each endpoint shift is checked for int64 overflow by round
			// trip; a result interval that can leave the W-bit signed range
			// wraps at the width boundary, so only an in-range interval is
			// usable.
			lo, okLo := shlExact(x.Lo, uint(y.Lo))
			hi, okHi := shlExact(x.Hi, uint(y.Hi))
			if x.Lo < 0 {
				// A negative lower bound moves further down as the shift
				// grows.
				lo, okLo = shlExact(x.Lo, uint(y.Hi))
			}
			if x.Hi < 0 {
				// An all-negative range peaks at the smallest shift.
				hi, okHi = shlExact(x.Hi, uint(y.Lo))
			}
			if okLo && okHi {
				r := Range{lo, hi}
				if r.Within(full.Lo, full.Hi) {
					return r
				}
			}
		}
		return full
	case ir.OpLShr:
		x, y := src(0), src(1)
		if x.IsBottom() || y.IsBottom() {
			return Bottom()
		}
		// A dividend with known-zero upper bits shifts like an unsigned
		// quantity whose interval is exact: this is the fact the magic
		// division rewrite both consumes (proving its operand range) and
		// produces (its >>u S result is the quotient range).
		if x.Within(0, full.Hi) && y.Within(0, int64(w)-1) {
			return Range{x.Lo >> uint(y.Hi), x.Hi >> uint(y.Lo)}
		}
		if y.Within(1, int64(w)-1) {
			// Any one-or-more-bit logical shift clears the sign bit: the
			// result is bounded by the shifted all-ones pattern even when
			// nothing is known about the value.
			if w == ir.W64 {
				return Range{0, int64(^uint64(0) >> uint(y.Lo))}
			}
			return Range{0, int64(w.Mask() >> uint(y.Lo))}
		}
		// A zero shift leaves the (possibly negative) low bits intact.
		return full
	case ir.OpAShr:
		x, y := src(0), src(1)
		if x.IsBottom() || y.IsBottom() {
			return Bottom()
		}
		lo, hi := min64(x.Lo, 0), max64(x.Hi, 0)
		if y.Lo == y.Hi && y.Lo >= 0 && y.Lo < int64(w) {
			// Known shift amount: exact interval shift (sound for signed
			// values; >> rounds toward minus infinity on both bounds).
			lo, hi = x.Lo>>uint(y.Lo), x.Hi>>uint(y.Lo)
		} else if x.NonNeg() && y.Lo >= 0 && y.Lo < int64(w) {
			hi = x.Hi >> uint(y.Lo)
			lo = 0
		}
		return Range{lo, hi}.Intersect(full)
	case ir.OpDiv:
		x, y := src(0), src(1)
		if x.Within(0, full.Hi) && y.Within(1, full.Hi) {
			return Range{0, x.Hi}
		}
		return full
	case ir.OpRem:
		x, y := src(0), src(1)
		if x.Within(0, full.Hi) && y.Within(1, full.Hi) {
			return Range{0, y.Hi - 1}
		}
		return full
	case ir.OpLoadG, ir.OpArrLoad:
		if ins.Float {
			return Full64()
		}
		if w == ir.W64 {
			return Full64()
		}
		if a.mach == ir.PPC64 {
			return Range{-(1 << (w - 1)), 1<<(w-1) - 1}
		}
		// IA64 zero-extends: for sub-32-bit widths the 32-bit semantic
		// value is the unsigned cell value.
		if w == ir.W32 {
			return Full32()
		}
		return Range{0, int64(w.Mask())}
	case ir.OpArrLen, ir.OpNewArr:
		return Range{0, a.maxLen}
	case ir.OpD2I:
		return Full32()
	case ir.OpD2L:
		return Full64()
	default:
		return a.fullFor(ir.W64)
	}
}

// addRange models a W-bit addition: exact interval arithmetic unless the
// result can leave the W-bit signed range, in which case it wraps and we give
// up.
func (a *Analysis) addRange(x, y Range, w ir.Width) Range {
	if x.IsBottom() || y.IsBottom() {
		return Bottom()
	}
	full := a.fullFor(w)
	lo, lok := addNoOverflow(x.Lo, y.Lo)
	hi, hok := addNoOverflow(x.Hi, y.Hi)
	if !lok || !hok {
		return full
	}
	r := Range{lo, hi}
	if !r.Within(full.Lo, full.Hi) {
		return full
	}
	return r
}

func addNoOverflow(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulBounds(x, y Range) (int64, int64, bool) {
	vals := [4]int64{}
	cands := [4][2]int64{{x.Lo, y.Lo}, {x.Lo, y.Hi}, {x.Hi, y.Lo}, {x.Hi, y.Hi}}
	for k, c := range cands {
		p := c[0] * c[1]
		if c[0] != 0 && (p/c[0] != c[1]) {
			return 0, 0, false
		}
		vals[k] = p
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo, hi = min64(lo, v), max64(hi, v)
	}
	return lo, hi, true
}
