package vrange

import (
	"math"
	"testing"
	"testing/quick"

	"signext/internal/ir"
)

// Property: Union over-approximates membership; Intersect is exact.
func TestRangeAlgebraProperty(t *testing.T) {
	f := func(a, b, c, d, v int64) bool {
		r1 := Range{min64(a, b), max64(a, b)}
		r2 := Range{min64(c, d), max64(c, d)}
		in := func(r Range, x int64) bool { return !r.IsBottom() && x >= r.Lo && x <= r.Hi }
		if in(r1, v) || in(r2, v) {
			if !in(r1.Union(r2), v) {
				return false
			}
		}
		if in(r1.Intersect(r2), v) != (in(r1, v) && in(r2, v)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRefineByCond covers the constraint derivations, including the unsigned
// bounds-check form.
func TestRefineByCond(t *testing.T) {
	base := Full32()
	if r := refineByCond(base, ir.CondLT, false, Range{0, 100}, ir.W32); r.Hi != 99 {
		t.Errorf("x < [0,100]: %v", r)
	}
	if r := refineByCond(base, ir.CondGE, false, Range{5, 10}, ir.W32); r.Lo != 5 {
		t.Errorf("x >= [5,10]: %v", r)
	}
	if r := refineByCond(base, ir.CondLT, true, Range{7, 7}, ir.W32); r.Lo != 8 {
		t.Errorf("7 < x: %v", r)
	}
	if r := refineByCond(base, ir.CondULT, false, Range{0, 50}, ir.W32); r != (Range{0, 49}) {
		t.Errorf("x <u [0,50]: %v", r)
	}
	if r := refineByCond(base, ir.CondEQ, false, Range{3, 3}, ir.W32); r != (Range{3, 3}) {
		t.Errorf("x == 3: %v", r)
	}
	// Unsigned against a possibly-negative bound gives nothing.
	if r := refineByCond(base, ir.CondULT, false, Range{-1, 50}, ir.W32); r != base {
		t.Errorf("x <u [-1,50] must not refine: %v", r)
	}
	// x < MaxInt64 edge must not underflow.
	if r := refineByCond(Full64(), ir.CondLT, false, Range{math.MinInt64, math.MaxInt64}, ir.W64); r != Full64() {
		t.Errorf("unbounded LT must not refine: %v", r)
	}
}
