package vrange

import (
	"math"
	"testing"

	"signext/internal/ir"
)

// bounded materializes a runtime value the analysis can bound but not fold:
// a full-width global load masked to [0, mask].
func bounded(b *ir.Builder, mask int64) ir.Reg {
	g := b.LoadG(ir.W64, 0)
	return b.And(ir.W64, g, b.Const(ir.W64, mask))
}

// TestLShrKnownZeroUpper pins the fact chain the magic-number division
// rewrite stands on: a logical shift of a value with known-zero upper bits
// is the exact unsigned interval shift. Before the fix the 64-bit case
// always widened to full and the narrow case ignored the dividend's range.
func TestLShrKnownZeroUpper(t *testing.T) {
	// (x in [0, 2^20-1]) >>u 4 at width 64.
	r := analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := bounded(b, 0xfffff)
		return b.OpTo(ir.OpLShr, ir.W64, b.Fn.NewReg(), x, b.Const(ir.W64, 4))
	})
	if want := (Range{0, 0xfffff >> 4}); r != want {
		t.Errorf("lshr.64 of [0,0xfffff] by 4: got %v, want %v", r, want)
	}
	// Shift amount itself only known as a range [0, 7].
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := bounded(b, 0xfffff)
		y := b.And(ir.W64, b.LoadG(ir.W64, 1), b.Const(ir.W64, 7))
		return b.OpTo(ir.OpLShr, ir.W64, b.Fn.NewReg(), x, y)
	})
	if want := (Range{0, 0xfffff}); r != want {
		t.Errorf("lshr.64 of [0,0xfffff] by [0,7]: got %v, want %v", r, want)
	}
	// Narrow width uses the dividend's bound, not just the all-ones mask.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := bounded(b, 1000)
		return b.OpTo(ir.OpLShr, ir.W32, b.Fn.NewReg(), x, b.Const(ir.W32, 2))
	})
	if want := (Range{0, 250}); r != want {
		t.Errorf("lshr.32 of [0,1000] by 2: got %v, want %v", r, want)
	}
	// A zero shift of a known-non-negative value is the identity.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := bounded(b, 9)
		return b.OpTo(ir.OpLShr, ir.W32, b.Fn.NewReg(), x, b.Const(ir.W32, 0))
	})
	if want := (Range{0, 9}); r != want {
		t.Errorf("lshr.32 of [0,9] by 0: got %v, want %v", r, want)
	}
}

// TestLShrUnknownValue: one-or-more-bit logical shifts clear the sign bit
// even of a wholly unknown value; a zero shift of a possibly-negative value
// must stay full (">>> 0" keeps the sign).
func TestLShrUnknownValue(t *testing.T) {
	r := analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.LoadG(ir.W64, 0)
		return b.OpTo(ir.OpLShr, ir.W64, b.Fn.NewReg(), x, b.Const(ir.W64, 1))
	})
	if want := (Range{0, math.MaxInt64}); r != want {
		t.Errorf("lshr.64 of unknown by 1: got %v, want %v", r, want)
	}
	if !contains(r, math.MaxInt64) {
		t.Errorf("lshr.64 of unknown by 1 can reach MaxInt64 (x = -1); range %v excludes it", r)
	}
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.LoadG(ir.W64, 0)
		return b.OpTo(ir.OpLShr, ir.W32, b.Fn.NewReg(), x, b.Const(ir.W32, 1))
	})
	if want := (Range{0, math.MaxInt32}); r != want {
		t.Errorf("lshr.32 of unknown by 1: got %v, want %v", r, want)
	}
	// x >>> 0 of a possibly-negative value keeps the sign: must contain -1.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.LoadG(ir.W64, 0)
		return b.OpTo(ir.OpLShr, ir.W32, b.Fn.NewReg(), x, b.Const(ir.W32, 0))
	})
	if !contains(r, -1) {
		t.Errorf("lshr.32 of unknown by 0 keeps the sign; range %v excludes -1", r)
	}
}

// TestShlBoundedAmount: a shift whose amount is only known as a range still
// yields an exact interval when the endpoint shifts cannot overflow.
// Before the fix any non-singleton amount widened to full.
func TestShlBoundedAmount(t *testing.T) {
	r := analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := bounded(b, 100)
		y := b.And(ir.W64, b.LoadG(ir.W64, 1), b.Const(ir.W64, 3))
		return b.OpTo(ir.OpShl, ir.W64, b.Fn.NewReg(), x, y)
	})
	if want := (Range{0, 800}); r != want {
		t.Errorf("shl.64 of [0,100] by [0,3]: got %v, want %v", r, want)
	}
	// Negative values move down as the shift grows.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W32, -5)
		y := b.And(ir.W64, b.LoadG(ir.W64, 1), b.Const(ir.W64, 2))
		return b.OpTo(ir.OpShl, ir.W32, b.Fn.NewReg(), x, y)
	})
	if want := (Range{-20, -5}); r != want {
		t.Errorf("shl.32 of -5 by [0,2]: got %v, want %v", r, want)
	}
}

// TestShlOverflowAtWidthBoundary: a shift that can leave the width's signed
// range wraps, so the transfer must widen to full — never produce the
// un-wrapped mathematical interval.
func TestShlOverflowAtWidthBoundary(t *testing.T) {
	// 2^30 << 1 wraps to MinInt32 at width 32.
	r := analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W32, 1<<30)
		return b.OpTo(ir.OpShl, ir.W32, b.Fn.NewReg(), x, b.Const(ir.W32, 1))
	})
	if !contains(r, math.MinInt32) {
		t.Errorf("shl.32 of 2^30 by 1 wraps to MinInt32; range %v excludes it", r)
	}
	// 2^62 << 2 wraps to 0 at width 64.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W64, 1<<62)
		return b.OpTo(ir.OpShl, ir.W64, b.Fn.NewReg(), x, b.Const(ir.W64, 2))
	})
	if !contains(r, 0) {
		t.Errorf("shl.64 of 2^62 by 2 wraps to 0; range %v excludes it", r)
	}
	// MinInt64 << 1 wraps to 0: the int64 round-trip check must catch the
	// endpoint, not just positive overflow.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W64, math.MinInt64)
		return b.OpTo(ir.OpShl, ir.W64, b.Fn.NewReg(), x, b.Const(ir.W64, 1))
	})
	if !contains(r, 0) {
		t.Errorf("shl.64 of MinInt64 by 1 wraps to 0; range %v excludes it", r)
	}
	// Away from the boundary the shift is exact.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W32, 3)
		return b.OpTo(ir.OpShl, ir.W32, b.Fn.NewReg(), x, b.Const(ir.W32, 4))
	})
	if r != Const(48) {
		t.Errorf("shl.32 of 3 by 4: got %v, want exactly 48", r)
	}
}

// TestShiftTransferSoundnessSweep cross-checks the three shift transfers
// against the interpreter's exact semantics over a dense operand sweep:
// every runtime result must fall inside the computed range.
func TestShiftTransferSoundnessSweep(t *testing.T) {
	vals := []int64{-9, -1, 0, 1, 7, 100, 1000, math.MaxInt32, math.MinInt32}
	shifts := []int64{0, 1, 4, 31}
	for _, op := range []ir.Op{ir.OpShl, ir.OpLShr, ir.OpAShr} {
		for _, w := range []ir.Width{ir.W32, ir.W64} {
			for _, mask := range []int64{0xff, 0xffff} {
				for _, n := range shifts {
					if n >= int64(w) {
						continue
					}
					r := analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
						x := bounded(b, mask)
						return b.OpTo(op, w, b.Fn.NewReg(), x, b.Const(ir.W64, n))
					})
					for _, v := range vals {
						if v < 0 || v > mask {
							continue
						}
						var sem int64
						switch op {
						case ir.OpShl:
							sem = v << uint(n)
						case ir.OpLShr:
							sem = int64(uint64(v) >> uint(n))
						case ir.OpAShr:
							sem = v >> uint(n)
						}
						if w != ir.W64 {
							sem = w.SignExt(sem)
						}
						if !contains(r, sem) {
							t.Fatalf("%s.%d x=[0,%#x] n=%d: runtime value %d (x=%d) outside range %v",
								op, w, mask, n, sem, v, r)
						}
					}
				}
			}
		}
	}
}
