package vrange

import (
	"math"
	"testing"

	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/ir"
)

// analyze runs the fixpoint over a straight-line function assembled by
// build, which returns the instruction whose destination range the test
// inspects.
func analyze(t *testing.T, mach ir.Machine, build func(b *ir.Builder) *ir.Instr) Range {
	t.Helper()
	b := ir.NewFunc("t")
	ins := build(b)
	b.Ret(ir.NoReg)
	if err := b.Fn.Verify(); err != nil {
		t.Fatalf("bad test function: %v\n%s", err, b.Fn.Format())
	}
	info := cfg.Compute(b.Fn)
	ch := chains.Build(b.Fn, info)
	a := Compute(b.Fn, ch, info, mach, 64)
	r, ok := a.OfDefRange(ins)
	if !ok {
		t.Fatalf("no range computed for %s", ins)
	}
	return r
}

// contains reports interval membership (false for bottom).
func contains(r Range, v int64) bool { return !r.IsBottom() && r.Lo <= v && v <= r.Hi }

// TestNegationAtIntMin: negating a range touching the type minimum wraps
// (-MinInt == MinInt in two's complement), so the transfer must widen to
// full rather than produce the unrepresentable -MinInt.
func TestNegationAtIntMin(t *testing.T) {
	r := analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W32, math.MinInt32)
		return b.Op1To(ir.OpNeg, ir.W32, b.Fn.NewReg(), x)
	})
	if !contains(r, math.MinInt32) {
		t.Errorf("neg.32 of MinInt32 wraps to MinInt32; range %v excludes it", r)
	}
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W64, math.MinInt64)
		return b.Op1To(ir.OpNeg, ir.W64, b.Fn.NewReg(), x)
	})
	if !contains(r, math.MinInt64) {
		t.Errorf("neg.64 of MinInt64 wraps to MinInt64; range %v excludes it", r)
	}
	// Away from the boundary, negation is exact.
	r = analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
		x := b.Const(ir.W32, math.MinInt32+1)
		return b.Op1To(ir.OpNeg, ir.W32, b.Fn.NewReg(), x)
	})
	if r != Const(math.MaxInt32) {
		t.Errorf("neg.32 of MinInt32+1: got %v, want %v", r, Const(math.MaxInt32))
	}
}

// TestShiftAmountEdges: the interpreter masks shift amounts with W-1, so an
// amount >= W behaves as amount & (W-1). The transfer functions may widen,
// but must never exclude the true runtime value.
func TestShiftAmountEdges(t *testing.T) {
	cases := []struct {
		name    string
		op      ir.Op
		w       ir.Width
		x, n    int64
		runtime int64 // value the interpreter computes with masked amount
	}{
		{"shl32 by 32 is shl 0", ir.OpShl, ir.W32, 5, 32, 5},
		{"shl32 by 33 is shl 1", ir.OpShl, ir.W32, 5, 33, 10},
		{"shl32 by 31", ir.OpShl, ir.W32, 1, 31, math.MinInt32},
		// A zero logical shift keeps the sign-normalized W32 value: the low
		// 32 bits are unchanged and the Mode32 semantic value stays -120.
		{"lshr32 by 32 is lshr 0", ir.OpLShr, ir.W32, -120, 32, -120},
		{"lshr32 by 63 is lshr 31", ir.OpLShr, ir.W32, -1, 63, 1},
		{"ashr32 by 32 is ashr 0", ir.OpAShr, ir.W32, -7, 32, -7},
		{"ashr32 by 31", ir.OpAShr, ir.W32, math.MinInt32, 31, -1},
		{"lshr64 by 63", ir.OpLShr, ir.W64, -1, 63, 1},
		{"shl64 by 63", ir.OpShl, ir.W64, 1, 63, math.MinInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := analyze(t, ir.IA64, func(b *ir.Builder) *ir.Instr {
				x := b.Const(ir.W64, tc.x)
				n := b.Const(ir.W64, tc.n)
				return b.OpTo(tc.op, tc.w, b.Fn.NewReg(), x, n)
			})
			if !contains(r, tc.runtime) {
				t.Errorf("%v.%d x=%d n=%d: range %v excludes runtime value %d",
					tc.op, tc.w, tc.x, tc.n, r, tc.runtime)
			}
		})
	}
}

// TestBottomAlgebra: bottom is the identity of Union, absorbing for
// Intersect, and vacuously within everything.
func TestBottomAlgebra(t *testing.T) {
	r := Range{-5, 17}
	if got := Bottom().Union(r); got != r {
		t.Errorf("Bottom ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(Bottom()); got != r {
		t.Errorf("r ∪ Bottom = %v, want %v", got, r)
	}
	if !Bottom().Union(Bottom()).IsBottom() {
		t.Error("Bottom ∪ Bottom is not bottom")
	}
	if !Bottom().Intersect(r).IsBottom() || !r.Intersect(Bottom()).IsBottom() {
		t.Error("intersection with Bottom is not bottom")
	}
	if !(Range{10, 20}).Intersect(Range{30, 40}).IsBottom() {
		t.Error("disjoint intersection is not bottom")
	}
	if !Bottom().Within(5, 4) || !Bottom().Within(math.MinInt64, math.MaxInt64) {
		t.Error("Bottom is not vacuously within")
	}
	if Bottom().NonNeg() != true {
		t.Error("Bottom.NonNeg should be vacuously true")
	}
}

// TestWithinAtExtremes exercises Within where naive arithmetic on the bounds
// would overflow.
func TestWithinAtExtremes(t *testing.T) {
	cases := []struct {
		r      Range
		lo, hi int64
		want   bool
	}{
		{Full64(), math.MinInt64, math.MaxInt64, true},
		{Full64(), math.MinInt64 + 1, math.MaxInt64, false},
		{Full64(), math.MinInt64, math.MaxInt64 - 1, false},
		{Const(math.MinInt64), math.MinInt64, math.MinInt64, true},
		{Const(math.MaxInt64), math.MaxInt64, math.MaxInt64, true},
		{Const(math.MaxInt64), math.MinInt64, math.MaxInt64 - 1, false},
		{Range{math.MinInt64, 0}, math.MinInt64, 0, true},
		{Range{math.MinInt64, 0}, -1, 0, false},
		{Full32(), math.MinInt32, math.MaxInt32, true},
		{Full32(), 0, math.MaxInt64, false},
	}
	for _, tc := range cases {
		if got := tc.r.Within(tc.lo, tc.hi); got != tc.want {
			t.Errorf("%v.Within(%d, %d) = %v, want %v", tc.r, tc.lo, tc.hi, got, tc.want)
		}
	}
	if (Range{0, math.MaxInt32}).NonNeg() != true {
		t.Error("[0, MaxInt32] should be NonNeg")
	}
	if (Range{0, math.MaxInt32 + 1}).NonNeg() {
		t.Error("[0, MaxInt32+1] must not be NonNeg")
	}
	if (Range{-1, 10}).NonNeg() {
		t.Error("[-1, 10] must not be NonNeg")
	}
}
