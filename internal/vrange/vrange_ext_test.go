package vrange_test

import (
	"testing"

	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/extelim"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/minijava"
	. "signext/internal/vrange"
)

func TestRangeAlgebra(t *testing.T) {
	a := Range{-5, 10}
	b := Range{0, 20}
	if u := a.Union(b); u != (Range{-5, 20}) {
		t.Errorf("union: %v", u)
	}
	if i := a.Intersect(b); i != (Range{0, 10}) {
		t.Errorf("intersect: %v", i)
	}
	if !b.NonNeg() || a.NonNeg() {
		t.Error("NonNeg")
	}
	if !Bottom().IsBottom() || !Bottom().Within(5, 4) {
		t.Error("bottom")
	}
	if bot := a.Intersect(Range{11, 12}); !bot.IsBottom() {
		t.Errorf("disjoint intersect: %v", bot)
	}
	if Bottom().Union(a) != a || a.Union(Bottom()) != a {
		t.Error("bottom is the union identity")
	}
}

// Property: Union over-approximates membership; Intersect is exact.
func analyzeSrc(t *testing.T, src string) (*ir.Func, *Analysis) {
	t.Helper()
	cu, err := minijava.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := cu.Prog.Func("main")
	extelim.Convert64(fn, ir.IA64)
	info := cfg.Compute(fn)
	ch := chains.Build(fn, info)
	return fn, Compute(fn, ch, info, ir.IA64, 0)
}

func findOp(fn *ir.Func, op ir.Op) *ir.Instr {
	var found *ir.Instr
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if found == nil && ins.Op == op {
			found = ins
		}
	})
	return found
}

// TestLoopCounterRange: the canonical for-loop counter gets a tight,
// non-negative range through directional widening plus the dominating
// i<n condition.
func TestLoopCounterRange(t *testing.T) {
	fn, vr := analyzeSrc(t, `
		void main() {
			int n = 100;
			int s = 0;
			for (int i = 0; i < n; i++) { s = s + i; }
			print(s);
		}`)
	// Find the counter increment: the same-register add whose second operand
	// is the constant 1 (s += i uses a non-constant operand).
	var inc *ir.Instr
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if ins.Op == ir.OpAdd && ins.Dst == ins.Srcs[0] && inc == nil {
			if c, ok := vr.ConstOperand(ins, 1); ok && c == 1 {
				inc = ins
			}
		}
	})
	if inc == nil {
		t.Fatal("no increment found")
	}
	r, ok := vr.OfDefRange(inc)
	if !ok || !(r.Lo >= 1 && r.Hi <= 100) {
		t.Fatalf("increment range = %v (want within [1,100])", r)
	}
	op0 := vr.OfOperandAt(inc, 0)
	if !op0.Within(0, 99) {
		t.Fatalf("refined counter operand = %v (want within [0,99])", op0)
	}
}

// TestProductRange: i*n with bounded factors stays exact, enabling the
// extended-arithmetic deduction the flattened-matrix subscripts need.
func TestProductRange(t *testing.T) {
	fn, vr := analyzeSrc(t, `
		void main() {
			int n = 24;
			int[] a = new int[n * n];
			for (int i = 0; i < n; i++) {
				for (int j = 0; j < n; j++) { a[i * n + j] = i + j; }
			}
			print(a[100]);
		}`)
	var mul *ir.Instr
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if ins.Op == ir.OpMul && mul == nil && ins.Blk != fn.Entry() {
			mul = ins
		}
	})
	if mul == nil {
		t.Fatal("no multiply found")
	}
	r, ok := vr.OfDefRange(mul)
	if !ok || !r.Within(0, 552) {
		t.Fatalf("i*n range = %v (want within [0, 552])", r)
	}
}

// TestDummyRange: the just_extended marker carries the bounds-check
// postcondition [0, maxlen-1].
func TestDummyRange(t *testing.T) {
	b := ir.NewFunc("main", ir.Param{Ref: true}, ir.Param{W: ir.W32})
	i := ir.Reg(1)
	v := b.ArrLoad(ir.W32, false, ir.Reg(0), i)
	d := b.Fn.NewInstr(ir.OpExtDummy)
	d.W = ir.W32
	d.Dst = i
	d.Srcs[0] = i
	d.NSrcs = 1
	d.Blk = b.Block()
	b.Block().Instrs = append(b.Block().Instrs, d)
	b.Print(ir.W32, v)
	b.Ret(ir.NoReg)
	info := cfg.Compute(b.Fn)
	ch := chains.Build(b.Fn, info)
	vr := Compute(b.Fn, ch, info, ir.IA64, 1000)
	r, ok := vr.OfDefRange(d)
	if !ok || !r.Within(0, 999) {
		t.Fatalf("dummy range = %v (want within [0, 999])", r)
	}
}

// TestRuntimeSoundness is the load-bearing property: every range the
// analysis claims must contain the semantic value of every runtime
// definition. Violations would silently license unsound extension removal.
func TestRuntimeSoundness(t *testing.T) {
	srcs := []string{
		`void main() {
			int n = 50; int s = 0;
			for (int i = 0; i < n; i++) {
				for (int j = i; j < n; j++) { s += i * j; }
			}
			print(s);
		}`,
		`void main() {
			int x = 2147483640;
			for (int k = 0; k < 20; k++) { x = x + 1; print(x); }
		}`,
		`static int seed = 9;
		int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }
		void main() {
			int[] a = new int[64];
			for (int i = 0; i < a.length; i++) { a[i] = rnd() - 40000; }
			int t = 0;
			int i = a.length;
			do { i = i - 1; t += a[i] % 97; } while (i > 0);
			print(t);
		}`,
		`void main() {
			int v = -2147483648;
			int w = v - 1;      // wraps to MaxInt32
			print(w);
			int u = v * 3;
			print(u);
		}`,
	}
	for si, src := range srcs {
		cu, err := minijava.Compile(src)
		if err != nil {
			t.Fatalf("src %d: %v", si, err)
		}
		analyses := map[string]*Analysis{}
		for _, fn := range cu.Prog.Funcs {
			extelim.Convert64(fn, ir.IA64)
			info := cfg.Compute(fn)
			ch := chains.Build(fn, info)
			analyses[fn.Name] = Compute(fn, ch, info, ir.IA64, 0)
		}
		violations := 0
		_, err = interp.Run(cu.Prog, "main", interp.Options{
			Mode:    interp.Mode64,
			Machine: ir.IA64,
			OnDef: func(ins *ir.Instr, raw int64) {
				if violations > 3 || ins.Blk == nil || ins.Blk.Fn == nil {
					return
				}
				vr := analyses[ins.Blk.Fn.Name]
				if vr == nil {
					return
				}
				kinds := ir.Kinds(ins.Blk.Fn)
				if int(ins.Dst) >= len(kinds) || kinds[ins.Dst] != ir.KInt32 && kinds[ins.Dst] != ir.KInt64 {
					return
				}
				r, ok := vr.OfDefRange(ins)
				if !ok || r.IsBottom() {
					return
				}
				sem := raw
				if ins.W != ir.W64 && kinds[ins.Dst] == ir.KInt32 {
					sem = ir.W32.SignExt(raw)
				}
				if sem < r.Lo || sem > r.Hi {
					violations++
					t.Errorf("src %d: %s produced %d outside claimed range [%d, %d]",
						si, ins, sem, r.Lo, r.Hi)
				}
			},
		})
		if err != nil {
			t.Fatalf("src %d: run: %v", si, err)
		}
	}
}

// TestRefineByCond covers the constraint derivations, including the unsigned
// bounds-check form.
