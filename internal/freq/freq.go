// Package freq estimates basic-block execution frequencies for the paper's
// order determination (section 2.2): sign extensions are eliminated starting
// from the most frequently executed region, so that the surviving extension
// is the one in the coldest block.
//
// The estimate combines the loop nesting level of each block with the
// execution frequency within its acyclic region derived from branch
// probabilities. When a dynamic profile gathered by the interpreter tier is
// available (the paper's combined interpreter and dynamic compiler [20]),
// measured branch probabilities replace the static 50/50 guess.
package freq

import (
	"sort"

	"signext/internal/cfg"
	"signext/internal/interp"
	"signext/internal/ir"
)

// LoopScale is the assumed iteration count of one loop level in the static
// estimate.
const LoopScale = 10.0

// Estimate holds per-block frequency estimates for one function.
type Estimate struct {
	Fn   *ir.Func
	Freq map[*ir.Block]float64
}

// Compute produces the frequency estimate. profile may be nil (purely static
// estimation).
func Compute(fn *ir.Func, info *cfg.Info, profile interp.Profile) *Estimate {
	e := &Estimate{Fn: fn, Freq: map[*ir.Block]float64{}}

	// Branch probability of each conditional edge.
	prob := func(b *ir.Block, succIdx int) float64 {
		if len(b.Succs) < 2 {
			return 1
		}
		term := b.Term()
		if profile != nil && term != nil {
			taken, fall := profile.Counts(fn.Name, term.ID)
			total := taken + fall
			if total > 0 {
				if succIdx == 0 {
					return float64(taken) / float64(total)
				}
				return float64(fall) / float64(total)
			}
		}
		// Static heuristic: a back edge (to a dominating block) is very
		// likely taken; otherwise split evenly.
		s := b.Succs[succIdx]
		if info.Dominates(s, b) {
			return 0.9
		}
		for k, o := range b.Succs {
			if k != succIdx && info.Dominates(o, b) {
				return 0.1
			}
		}
		return 0.5
	}

	// Propagate frequencies in RPO within the acyclic skeleton: ignore back
	// edges, then multiply loop bodies by LoopScale per nesting level (or by
	// the profiled trip count when available).
	e.Freq[fn.Entry()] = 1
	for _, b := range info.RPO {
		if b == fn.Entry() {
			continue
		}
		sum := 0.0
		for _, p := range b.Preds {
			if !info.Reached[p] {
				continue
			}
			if info.Dominates(b, p) {
				continue // back edge: handled by the loop multiplier
			}
			idx := succIndex(p, b)
			sum += e.Freq[p] * prob(p, idx)
		}
		e.Freq[b] = sum
	}
	for _, b := range info.RPO {
		d := info.Depth(b)
		scale := 1.0
		for i := 0; i < d; i++ {
			scale *= LoopScale
		}
		e.Freq[b] *= scale
	}

	// Note the profile influences the estimate only through the branch
	// probabilities above, exactly as the paper describes (section 2.2
	// "enhance the accuracy of branch probabilities"): absolute profiled
	// counts would not compose with the static loop-nesting scale, and after
	// transformations that renumber instructions (inlining) they would be
	// partly stale.
	return e
}

func succIndex(p, b *ir.Block) int {
	for k, s := range p.Succs {
		if s == b {
			return k
		}
	}
	return 0
}

// HotFirst returns the function's blocks sorted from most to least frequently
// executed; ties break on block ID for determinism.
func (e *Estimate) HotFirst() []*ir.Block {
	out := append([]*ir.Block(nil), e.Fn.Blocks...)
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := e.Freq[out[i]], e.Freq[out[j]]
		if fi != fj {
			return fi > fj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
