// Package freq estimates basic-block execution frequencies for the paper's
// order determination (section 2.2): sign extensions are eliminated starting
// from the most frequently executed region, so that the surviving extension
// is the one in the coldest block.
//
// The estimate combines the loop nesting level of each block with the
// execution frequency within its acyclic region derived from branch
// probabilities. When a dynamic profile gathered by the interpreter tier is
// available (the paper's combined interpreter and dynamic compiler [20]),
// measured branch probabilities replace the static 50/50 guess.
package freq

import (
	"fmt"
	"sort"

	"signext/internal/cfg"
	"signext/internal/ir"
)

// BranchProfile supplies dynamic taken/fall-through counts for the branch
// terminating with frontend instruction id in function fn. Both
// interp.Profile and profile.Profile satisfy it; a map-typed nil value is
// fine (lookups return 0, 0 and the static heuristic takes over).
type BranchProfile interface {
	Counts(fn string, id int) (taken, fall int64)
}

// LoopScale is the assumed iteration count of one loop level in the static
// estimate.
const LoopScale = 10.0

// Epsilon is the frequency floor for reachable blocks. Irreducible or
// profile-starved CFGs can propagate exactly zero into a live block (every
// acyclic predecessor unreached, or a one-sided profile assigning a branch
// arm probability 0); without a floor, order determination would treat such
// a block — possibly a live loop body — as the coldest region and could
// leave the surviving extension in genuinely hot code.
const Epsilon = 1e-9

// Estimate holds per-block frequency estimates for one function.
type Estimate struct {
	Fn   *ir.Func
	Freq map[*ir.Block]float64
}

// Compute produces the frequency estimate. profile may be nil (purely static
// estimation).
func Compute(fn *ir.Func, info *cfg.Info, profile BranchProfile) *Estimate {
	e := &Estimate{Fn: fn, Freq: map[*ir.Block]float64{}}

	// Raw branch probability of each conditional edge, before normalization.
	rawProb := func(b *ir.Block, succIdx int) float64 {
		if len(b.Succs) < 2 {
			return 1
		}
		term := b.Term()
		if profile != nil && term != nil {
			taken, fall := profile.Counts(fn.Name, term.ID)
			if taken > 0 || fall > 0 {
				// Sum in float64: merged profiles saturate counts at
				// MaxInt64, so the int64 sum can overflow negative and
				// silently discard the profile for exactly the hottest
				// branches.
				total := float64(taken) + float64(fall)
				if succIdx == 0 {
					return float64(taken) / total
				}
				return float64(fall) / total
			}
		}
		// Static heuristic: a back edge (to a dominating block) is very
		// likely taken; otherwise split evenly.
		s := b.Succs[succIdx]
		if info.Dominates(s, b) {
			return 0.9
		}
		for k, o := range b.Succs {
			if k != succIdx && info.Dominates(o, b) {
				return 0.1
			}
		}
		return 0.5
	}
	// prob normalizes the arms of each branch to sum to exactly 1. The raw
	// values can drift: the static heuristic assigns 0.9 to every dominating
	// successor, so a branch whose arms BOTH close a loop sums to 1.8; and
	// merged or partial dynamic profiles can carry rounding residue. Without
	// normalization such a branch injects (or leaks) frequency mass, inflating
	// everything downstream of it. The division is skipped when the sum is
	// already exactly 1 so the common cases (0.9/0.1, 0.5/0.5, well-formed
	// profiles) keep their bit-exact historical values.
	prob := func(b *ir.Block, succIdx int) float64 {
		p := rawProb(b, succIdx)
		if len(b.Succs) < 2 {
			return p
		}
		sum := 0.0
		for k := range b.Succs {
			sum += rawProb(b, k)
		}
		if sum != 1 && sum > 0 {
			return p / sum
		}
		return p
	}

	// Propagate frequencies in RPO within the acyclic skeleton: ignore back
	// edges, then multiply loop bodies by LoopScale per nesting level (or by
	// the profiled trip count when available).
	e.Freq[fn.Entry()] = 1
	for _, b := range info.RPO {
		if b == fn.Entry() {
			continue
		}
		sum := 0.0
	preds:
		for i, p := range b.Preds {
			// Duplicate edges appear once per edge in Preds; edgeMass already
			// sums every p→b edge, so handle each distinct predecessor once.
			for _, q := range b.Preds[:i] {
				if q == p {
					continue preds
				}
			}
			if !info.Reached[p] {
				continue
			}
			if info.Dominates(b, p) {
				continue // back edge: handled by the loop multiplier
			}
			sum += e.Freq[p] * edgeMass(p, b, prob)
		}
		e.Freq[b] = sum
	}
	// Frequency floor: info.RPO holds exactly the blocks reachable from the
	// entry, so this floors reached blocks (and only those) at Epsilon before
	// loop scaling, preserving the relative ordering of nested zero-mass
	// loop bodies.
	for _, b := range info.RPO {
		if e.Freq[b] == 0 {
			e.Freq[b] = Epsilon
		}
	}
	for _, b := range info.RPO {
		d := info.Depth(b)
		scale := 1.0
		for i := 0; i < d; i++ {
			scale *= LoopScale
		}
		e.Freq[b] *= scale
	}

	// Note the profile influences the estimate only through the branch
	// probabilities above, exactly as the paper describes (section 2.2
	// "enhance the accuracy of branch probabilities"): absolute profiled
	// counts would not compose with the static loop-nesting scale, and after
	// transformations that renumber instructions (inlining) they would be
	// partly stale.
	return e
}

// edgeMass returns the total branch probability flowing from p to b, summing
// over every p→b edge: a conditional branch with both arms targeting the same
// block contributes the mass of both. A predecessor with no matching
// successor edge is a corrupted CFG — that used to be silently treated as
// edge 0, skewing the estimate; now it fails loudly.
func edgeMass(p, b *ir.Block, prob func(*ir.Block, int) float64) float64 {
	mass := 0.0
	found := false
	for k, s := range p.Succs {
		if s == b {
			mass += prob(p, k)
			found = true
		}
	}
	if !found {
		panic(fmt.Sprintf("freq: %s lists %s as a predecessor, but %s has no successor edge to %s",
			b, p, p, b))
	}
	return mass
}

// HotFirst returns the function's blocks sorted from most to least frequently
// executed; ties break on block ID for determinism.
func (e *Estimate) HotFirst() []*ir.Block {
	out := append([]*ir.Block(nil), e.Fn.Blocks...)
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := e.Freq[out[i]], e.Freq[out[j]]
		if fi != fj {
			return fi > fj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
