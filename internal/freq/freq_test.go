package freq

import (
	"testing"

	"signext/internal/cfg"
	"signext/internal/interp"
	"signext/internal/ir"
)

// buildIfInLoop: a loop whose body splits into a hot arm and a cold arm.
func buildIfInLoop() (*ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Instr) {
	b := ir.NewFunc("f", ir.Param{W: ir.W32})
	i := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	head := b.NewBlock()
	hot := b.NewBlock()
	cold := b.NewBlock()
	latch := b.NewBlock()
	exit := b.NewBlock()
	b.Jmp(head)
	b.SetBlock(head)
	mask := b.Const(ir.W32, 15)
	m := b.And(ir.W32, i, mask)
	zero := b.Const(ir.W32, 0)
	var condBr *ir.Instr
	{
		ins := b.Fn.NewInstr(ir.OpBr)
		ins.W = ir.W32
		ins.Cond = ir.CondEQ
		ins.Srcs[0], ins.Srcs[1] = m, zero
		ins.NSrcs = 2
		ins.Blk = b.Block()
		b.Block().Instrs = append(b.Block().Instrs, ins)
		ir.AddEdge(b.Block(), cold) // taken 1/16 of the time
		ir.AddEdge(b.Block(), hot)
		condBr = ins
		b.SetBlock(nil)
	}
	b.SetBlock(hot)
	b.Jmp(latch)
	b.SetBlock(cold)
	b.Jmp(latch)
	b.SetBlock(latch)
	b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
	b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), head, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, i)
	b.Ret(ir.NoReg)
	return b.Fn, hot, cold, exit, condBr
}

func TestStaticEstimate(t *testing.T) {
	fn, hot, cold, exit, _ := buildIfInLoop()
	info := cfg.Compute(fn)
	e := Compute(fn, info, nil)
	if e.Freq[hot] <= e.Freq[exit] || e.Freq[cold] <= e.Freq[exit] {
		t.Fatalf("loop blocks must be hotter than the exit: hot=%g cold=%g exit=%g",
			e.Freq[hot], e.Freq[cold], e.Freq[exit])
	}
	// Statically the if arms split 50/50, so hot == cold.
	if e.Freq[hot] != e.Freq[cold] {
		t.Fatalf("static estimate should split evenly: %g vs %g", e.Freq[hot], e.Freq[cold])
	}
	order := e.HotFirst()
	if order[len(order)-1] != exit && order[len(order)-2] != exit {
		t.Fatalf("exit should rank near the bottom: %v", order)
	}
}

func TestProfileRefinesEstimate(t *testing.T) {
	fn, hot, cold, _, _ := buildIfInLoop()
	prog := ir.NewProgram()
	prog.AddFunc(fn)
	// Drive f with 64 iterations via a main that calls it.
	mb := ir.NewFunc("main")
	mb.CallV("f", mb.Const(ir.W32, 64))
	mb.Ret(ir.NoReg)
	prog.AddFunc(mb.Fn)
	res, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	info := cfg.Compute(fn)
	e := Compute(fn, info, res.Profile)
	if e.Freq[hot] <= e.Freq[cold] {
		t.Fatalf("profile must discover the skew: hot=%g cold=%g", e.Freq[hot], e.Freq[cold])
	}
	// 15/16 vs 1/16 split: the ratio should be large.
	if e.Freq[hot] < 10*e.Freq[cold] {
		t.Fatalf("profiled ratio too small: hot=%g cold=%g", e.Freq[hot], e.Freq[cold])
	}
}

func TestHotFirstDeterministic(t *testing.T) {
	fn, _, _, _, _ := buildIfInLoop()
	info := cfg.Compute(fn)
	e := Compute(fn, info, nil)
	a := e.HotFirst()
	b := e.HotFirst()
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("HotFirst is not deterministic")
		}
	}
}
