package freq

import (
	"math"
	"testing"

	"signext/internal/cfg"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/progen"
)

// buildIfInLoop: a loop whose body splits into a hot arm and a cold arm.
func buildIfInLoop() (*ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Instr) {
	b := ir.NewFunc("f", ir.Param{W: ir.W32})
	i := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	head := b.NewBlock()
	hot := b.NewBlock()
	cold := b.NewBlock()
	latch := b.NewBlock()
	exit := b.NewBlock()
	b.Jmp(head)
	b.SetBlock(head)
	mask := b.Const(ir.W32, 15)
	m := b.And(ir.W32, i, mask)
	zero := b.Const(ir.W32, 0)
	var condBr *ir.Instr
	{
		ins := b.Fn.NewInstr(ir.OpBr)
		ins.W = ir.W32
		ins.Cond = ir.CondEQ
		ins.Srcs[0], ins.Srcs[1] = m, zero
		ins.NSrcs = 2
		ins.Blk = b.Block()
		b.Block().Instrs = append(b.Block().Instrs, ins)
		ir.AddEdge(b.Block(), cold) // taken 1/16 of the time
		ir.AddEdge(b.Block(), hot)
		condBr = ins
		b.SetBlock(nil)
	}
	b.SetBlock(hot)
	b.Jmp(latch)
	b.SetBlock(cold)
	b.Jmp(latch)
	b.SetBlock(latch)
	b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
	b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), head, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, i)
	b.Ret(ir.NoReg)
	return b.Fn, hot, cold, exit, condBr
}

func TestStaticEstimate(t *testing.T) {
	fn, hot, cold, exit, _ := buildIfInLoop()
	info := cfg.Compute(fn)
	e := Compute(fn, info, nil)
	if e.Freq[hot] <= e.Freq[exit] || e.Freq[cold] <= e.Freq[exit] {
		t.Fatalf("loop blocks must be hotter than the exit: hot=%g cold=%g exit=%g",
			e.Freq[hot], e.Freq[cold], e.Freq[exit])
	}
	// Statically the if arms split 50/50, so hot == cold.
	if e.Freq[hot] != e.Freq[cold] {
		t.Fatalf("static estimate should split evenly: %g vs %g", e.Freq[hot], e.Freq[cold])
	}
	order := e.HotFirst()
	if order[len(order)-1] != exit && order[len(order)-2] != exit {
		t.Fatalf("exit should rank near the bottom: %v", order)
	}
}

func TestProfileRefinesEstimate(t *testing.T) {
	fn, hot, cold, _, _ := buildIfInLoop()
	prog := ir.NewProgram()
	prog.AddFunc(fn)
	// Drive f with 64 iterations via a main that calls it.
	mb := ir.NewFunc("main")
	mb.CallV("f", mb.Const(ir.W32, 64))
	mb.Ret(ir.NoReg)
	prog.AddFunc(mb.Fn)
	res, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	info := cfg.Compute(fn)
	e := Compute(fn, info, res.Profile)
	if e.Freq[hot] <= e.Freq[cold] {
		t.Fatalf("profile must discover the skew: hot=%g cold=%g", e.Freq[hot], e.Freq[cold])
	}
	// 15/16 vs 1/16 split: the ratio should be large.
	if e.Freq[hot] < 10*e.Freq[cold] {
		t.Fatalf("profiled ratio too small: hot=%g cold=%g", e.Freq[hot], e.Freq[cold])
	}
}

// TestProfileEdgeMappingMatchesInterpreter pins the taken/fall-through edge
// convention between the interpreter's profile and the frequency estimate:
// Profile.Counts' taken count is the number of times control went to
// Succs[0] and fall the number of times it went to Succs[1]. A swap would
// silently invert hot-first ordering. The test traces actual block entries
// and checks them against both the raw counts and the resulting estimate.
func TestProfileEdgeMappingMatchesInterpreter(t *testing.T) {
	fn, hot, cold, _, condBr := buildIfInLoop()
	// In buildIfInLoop the branch's Succs[0] (taken, i&15 == 0) is the cold
	// arm and Succs[1] (fall) the hot arm; each arm has the branch block as
	// its only predecessor, so traced entries count the edges exactly.
	if condBr.Blk.Succs[0] != cold || condBr.Blk.Succs[1] != hot {
		t.Fatal("test premise broken: successor arms moved")
	}
	prog := ir.NewProgram()
	prog.AddFunc(fn)
	mb := ir.NewFunc("main")
	mb.CallV("f", mb.Const(ir.W32, 64))
	mb.Ret(ir.NoReg)
	prog.AddFunc(mb.Fn)

	entries := map[*ir.Block]int64{}
	res, err := interp.Run(prog, "main", interp.Options{
		Mode: interp.Mode32, Profile: true,
		Trace: func(fname string, blk *ir.Block, ins *ir.Instr) {
			if fname == "f" && len(blk.Instrs) > 0 && ins == blk.Instrs[0] {
				entries[blk]++
			}
		},
		TraceLimit: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	taken, fall := res.Profile.Counts("f", condBr.ID)
	if taken+fall != entries[cold]+entries[hot] {
		t.Fatalf("branch executed %d times but profile counted %d",
			entries[cold]+entries[hot], taken+fall)
	}
	if taken != entries[cold] || fall != entries[hot] {
		t.Fatalf("edge mapping swapped: profile (taken=%d fall=%d), traced (Succs[0]=%d Succs[1]=%d)",
			taken, fall, entries[cold], entries[hot])
	}
	if taken == 0 || fall == 0 || fall <= taken {
		t.Fatalf("expected a skewed, two-sided split: taken=%d fall=%d", taken, fall)
	}

	// The estimate must agree with observed reality: the fall arm ran ~15x
	// more often, so it must also be estimated hotter.
	info := cfg.Compute(fn)
	e := Compute(fn, info, res.Profile)
	if e.Freq[hot] <= e.Freq[cold] {
		t.Fatalf("estimate disagrees with traced execution: hot=%g cold=%g",
			e.Freq[hot], e.Freq[cold])
	}
	ratioTraced := float64(entries[hot]) / float64(entries[cold])
	ratioEst := e.Freq[hot] / e.Freq[cold]
	if ratioEst < 0.5*ratioTraced || ratioEst > 2*ratioTraced {
		t.Fatalf("estimated arm ratio %g far from traced ratio %g", ratioEst, ratioTraced)
	}
}

func TestHotFirstDeterministic(t *testing.T) {
	fn, _, _, _, _ := buildIfInLoop()
	info := cfg.Compute(fn)
	e := Compute(fn, info, nil)
	a := e.HotFirst()
	b := e.HotFirst()
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("HotFirst is not deterministic")
		}
	}
}

// TestDuplicateEdgeMass pins the edgeMass fix: a conditional branch with
// both arms targeting the same block must deliver the block its entire
// frequency. The pre-fix succIndex lookup resolved every duplicate edge to
// edge 0, so the block received 2*P(edge0) instead of P(edge0)+P(edge1) —
// here 0.14 instead of 0.70 — which ranked it below a genuinely colder
// block in HotFirst order.
func TestDuplicateEdgeMass(t *testing.T) {
	b := ir.NewFunc("f")
	entry := b.Block()
	split := b.NewBlock()
	colder := b.NewBlock()
	dup := b.NewBlock()
	exit := b.NewBlock()
	x := b.Const(ir.W32, 0)
	y := b.Const(ir.W32, 1)
	b.Br(ir.W32, ir.CondLT, x, y, split, colder)
	entryBr := entry.Term()
	b.SetBlock(split)
	b.Br(ir.W32, ir.CondEQ, x, y, dup, dup) // both arms to the same block
	splitBr := split.Term()
	b.SetBlock(colder)
	b.Jmp(exit)
	b.SetBlock(dup)
	b.Jmp(exit)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)
	fn := b.Fn
	if len(split.Succs) != 2 || split.Succs[0] != dup || split.Succs[1] != dup {
		t.Fatal("test premise broken: duplicate edge not built")
	}

	profile := interp.Profile{"f": {
		entryBr.ID: {7, 3}, // split 0.7, colder 0.3
		splitBr.ID: {1, 9}, // dup edges carry 0.1 and 0.9
	}}
	info := cfg.Compute(fn)
	e := Compute(fn, info, profile)

	if got := e.Freq[dup]; math.Abs(got-0.7) > 1e-12 {
		t.Errorf("dup-edge block frequency = %g, want 0.7 (mass of both edges)", got)
	}
	if got := e.Freq[colder]; math.Abs(got-0.3) > 1e-12 {
		t.Errorf("colder block frequency = %g, want 0.3", got)
	}
	rank := map[*ir.Block]int{}
	for i, blk := range e.HotFirst() {
		rank[blk] = i
	}
	if rank[dup] > rank[colder] {
		t.Errorf("HotFirst ranks dup-edge block (%g) below colder block (%g)",
			e.Freq[dup], e.Freq[colder])
	}
}

// TestMissingEdgePanics pins the loud-failure half of the edgeMass fix: a
// predecessor list naming a block with no matching successor edge is a
// corrupted CFG and must not be silently scored as edge 0.
func TestMissingEdgePanics(t *testing.T) {
	b := ir.NewFunc("f")
	entry := b.Block()
	a := b.NewBlock()
	other := b.NewBlock()
	x := b.Const(ir.W32, 0)
	b.Br(ir.W32, ir.CondLT, x, x, a, other)
	b.SetBlock(a)
	b.Ret(ir.NoReg)
	b.SetBlock(other)
	b.Ret(ir.NoReg)
	_ = entry
	// Corrupt: other claims a as predecessor, but a has no edge to it.
	other.Preds = append(other.Preds, a)
	info := cfg.Compute(b.Fn)
	defer func() {
		if recover() == nil {
			t.Error("Compute silently accepted a pred with no matching successor edge")
		}
	}()
	Compute(b.Fn, info, nil)
}

// TestEpsilonFloorProfileStarved pins the frequency floor: a branch arm the
// profile never took used to propagate exactly zero into live blocks — here
// a reachable loop body — making order determination treat them as the
// coldest code in the function.
func TestEpsilonFloorProfileStarved(t *testing.T) {
	b := ir.NewFunc("f")
	entry := b.Block()
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()
	x := b.Const(ir.W32, 0)
	y := b.Const(ir.W32, 1)
	b.Br(ir.W32, ir.CondLT, x, y, head, exit)
	entryBr := entry.Term()
	b.SetBlock(head)
	b.Br(ir.W32, ir.CondLT, x, y, body, exit)
	b.SetBlock(body)
	b.Jmp(head)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)
	fn := b.Fn

	// The profile saw the entry branch 5 times and never took the loop arm.
	profile := interp.Profile{"f": {entryBr.ID: {0, 5}}}
	info := cfg.Compute(fn)
	e := Compute(fn, info, profile)
	for _, blk := range info.RPO {
		if e.Freq[blk] <= 0 {
			t.Errorf("reached block %s has frequency %g, want > 0", blk, e.Freq[blk])
		}
	}
	// The floor is scaled by loop depth, so the never-entered loop body still
	// ranks above the equally-starved straight-line code would.
	if e.Freq[body] <= e.Freq[head]/LoopScale*0.99 {
		t.Errorf("loop scaling lost on floored blocks: body=%g head=%g", e.Freq[body], e.Freq[head])
	}
}

// TestProgenReachedBlocksPositive is the fuzz-shaped regression test for the
// epsilon floor: across generated programs and real interpreter profiles,
// every block reachable from the entry must receive a positive frequency.
// Pre-fix, one-sided profiled branches in these seeds propagated exact
// zeros into live blocks (including nested loop bodies).
func TestProgenReachedBlocksPositive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, kind := range []string{"ir", "mj"} {
			var prog *ir.Program
			if kind == "ir" {
				prog = progen.IR(seed, progen.Config{})
			} else {
				cu, err := minijava.Compile(progen.MiniJava(seed, progen.Config{}))
				if err != nil {
					t.Fatalf("seed %d: frontend rejected generated program: %v", seed, err)
				}
				prog = cu.Prog
			}
			ref, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32, Profile: true})
			if err != nil {
				continue // a trapping program still profiles what it ran; skip
			}
			for _, fn := range prog.Funcs {
				info := cfg.Compute(fn)
				e := Compute(fn, info, ref.Profile)
				for _, blk := range info.RPO {
					if e.Freq[blk] <= 0 {
						t.Errorf("seed %d kind %s fn %s: reached block %s has frequency %g",
							seed, kind, fn.Name, blk, e.Freq[blk])
					}
				}
			}
		}
	}
}

// buildDiamond: entry conditionally branches to two arms that rejoin.
func buildDiamond() (*ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Instr) {
	b := ir.NewFunc("f")
	entry := b.Block()
	then := b.NewBlock()
	els := b.NewBlock()
	join := b.NewBlock()
	x := b.Const(ir.W32, 0)
	y := b.Const(ir.W32, 1)
	b.Br(ir.W32, ir.CondLT, x, y, then, els)
	br := entry.Term()
	b.SetBlock(then)
	b.Jmp(join)
	b.SetBlock(els)
	b.Jmp(join)
	b.SetBlock(join)
	b.Ret(ir.NoReg)
	return b.Fn, then, els, join, br
}

// TestSaturatedProfileNoOverflow pins the audit's int64-overflow fix: merged
// profiles saturate counts at MaxInt64, and the branch total used to be
// summed in int64 — MaxInt64 + 1 wraps negative, so the `total > 0` guard
// silently discarded the profile for exactly the hottest branches and fell
// back to the 50/50 static split.
func TestSaturatedProfileNoOverflow(t *testing.T) {
	fn, then, els, _, br := buildDiamond()
	profile := interp.Profile{"f": {br.ID: {math.MaxInt64, 1}}}
	info := cfg.Compute(fn)
	e := Compute(fn, info, profile)
	if e.Freq[then] < 0.999 {
		t.Errorf("saturated taken count ignored: then=%g (static fallback would give 0.5)", e.Freq[then])
	}
	if e.Freq[els] > 1e-3 {
		t.Errorf("saturated profile fall arm = %g, want ~0", e.Freq[els])
	}
}

// TestProfileArmsNormalized pins the arm normalization: with large merged
// counts, float64 rounding can make taken/total + fall/total land a few ulp
// off 1, so every branch leaked (or injected) frequency mass into its
// downstream region. Normalized arms restore exact mass conservation here:
// the join of a diamond must carry exactly the entry's frequency.
func TestProfileArmsNormalized(t *testing.T) {
	fn, then, els, join, br := buildDiamond()
	// These counts make float64(taken)/total + float64(fall)/total come out
	// below 1 (0.99999999999999988…) before normalization.
	profile := interp.Profile{"f": {br.ID: {2226407336114473942, 8407677068955557379}}}
	info := cfg.Compute(fn)
	e := Compute(fn, info, profile)
	if got := e.Freq[then] + e.Freq[els]; got != 1 {
		t.Errorf("arm probabilities sum to %.20g, want exactly 1", got)
	}
	if got := e.Freq[join]; got != 1 {
		t.Errorf("diamond join frequency = %.20g, want exactly 1 (mass conserved)", got)
	}
	// Sanity: the skew itself must survive normalization.
	if e.Freq[els] < 3*e.Freq[then] {
		t.Errorf("normalization destroyed the profile skew: then=%g els=%g", e.Freq[then], e.Freq[els])
	}
}
