package freq

import (
	"testing"

	"signext/internal/cfg"
	"signext/internal/interp"
	"signext/internal/ir"
)

// buildIfInLoop: a loop whose body splits into a hot arm and a cold arm.
func buildIfInLoop() (*ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Instr) {
	b := ir.NewFunc("f", ir.Param{W: ir.W32})
	i := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	head := b.NewBlock()
	hot := b.NewBlock()
	cold := b.NewBlock()
	latch := b.NewBlock()
	exit := b.NewBlock()
	b.Jmp(head)
	b.SetBlock(head)
	mask := b.Const(ir.W32, 15)
	m := b.And(ir.W32, i, mask)
	zero := b.Const(ir.W32, 0)
	var condBr *ir.Instr
	{
		ins := b.Fn.NewInstr(ir.OpBr)
		ins.W = ir.W32
		ins.Cond = ir.CondEQ
		ins.Srcs[0], ins.Srcs[1] = m, zero
		ins.NSrcs = 2
		ins.Blk = b.Block()
		b.Block().Instrs = append(b.Block().Instrs, ins)
		ir.AddEdge(b.Block(), cold) // taken 1/16 of the time
		ir.AddEdge(b.Block(), hot)
		condBr = ins
		b.SetBlock(nil)
	}
	b.SetBlock(hot)
	b.Jmp(latch)
	b.SetBlock(cold)
	b.Jmp(latch)
	b.SetBlock(latch)
	b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
	b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), head, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, i)
	b.Ret(ir.NoReg)
	return b.Fn, hot, cold, exit, condBr
}

func TestStaticEstimate(t *testing.T) {
	fn, hot, cold, exit, _ := buildIfInLoop()
	info := cfg.Compute(fn)
	e := Compute(fn, info, nil)
	if e.Freq[hot] <= e.Freq[exit] || e.Freq[cold] <= e.Freq[exit] {
		t.Fatalf("loop blocks must be hotter than the exit: hot=%g cold=%g exit=%g",
			e.Freq[hot], e.Freq[cold], e.Freq[exit])
	}
	// Statically the if arms split 50/50, so hot == cold.
	if e.Freq[hot] != e.Freq[cold] {
		t.Fatalf("static estimate should split evenly: %g vs %g", e.Freq[hot], e.Freq[cold])
	}
	order := e.HotFirst()
	if order[len(order)-1] != exit && order[len(order)-2] != exit {
		t.Fatalf("exit should rank near the bottom: %v", order)
	}
}

func TestProfileRefinesEstimate(t *testing.T) {
	fn, hot, cold, _, _ := buildIfInLoop()
	prog := ir.NewProgram()
	prog.AddFunc(fn)
	// Drive f with 64 iterations via a main that calls it.
	mb := ir.NewFunc("main")
	mb.CallV("f", mb.Const(ir.W32, 64))
	mb.Ret(ir.NoReg)
	prog.AddFunc(mb.Fn)
	res, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	info := cfg.Compute(fn)
	e := Compute(fn, info, res.Profile)
	if e.Freq[hot] <= e.Freq[cold] {
		t.Fatalf("profile must discover the skew: hot=%g cold=%g", e.Freq[hot], e.Freq[cold])
	}
	// 15/16 vs 1/16 split: the ratio should be large.
	if e.Freq[hot] < 10*e.Freq[cold] {
		t.Fatalf("profiled ratio too small: hot=%g cold=%g", e.Freq[hot], e.Freq[cold])
	}
}

// TestProfileEdgeMappingMatchesInterpreter pins the taken/fall-through edge
// convention between the interpreter's profile and the frequency estimate:
// Profile.Counts' taken count is the number of times control went to
// Succs[0] and fall the number of times it went to Succs[1]. A swap would
// silently invert hot-first ordering. The test traces actual block entries
// and checks them against both the raw counts and the resulting estimate.
func TestProfileEdgeMappingMatchesInterpreter(t *testing.T) {
	fn, hot, cold, _, condBr := buildIfInLoop()
	// In buildIfInLoop the branch's Succs[0] (taken, i&15 == 0) is the cold
	// arm and Succs[1] (fall) the hot arm; each arm has the branch block as
	// its only predecessor, so traced entries count the edges exactly.
	if condBr.Blk.Succs[0] != cold || condBr.Blk.Succs[1] != hot {
		t.Fatal("test premise broken: successor arms moved")
	}
	prog := ir.NewProgram()
	prog.AddFunc(fn)
	mb := ir.NewFunc("main")
	mb.CallV("f", mb.Const(ir.W32, 64))
	mb.Ret(ir.NoReg)
	prog.AddFunc(mb.Fn)

	entries := map[*ir.Block]int64{}
	res, err := interp.Run(prog, "main", interp.Options{
		Mode: interp.Mode32, Profile: true,
		Trace: func(fname string, blk *ir.Block, ins *ir.Instr) {
			if fname == "f" && len(blk.Instrs) > 0 && ins == blk.Instrs[0] {
				entries[blk]++
			}
		},
		TraceLimit: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	taken, fall := res.Profile.Counts("f", condBr.ID)
	if taken+fall != entries[cold]+entries[hot] {
		t.Fatalf("branch executed %d times but profile counted %d",
			entries[cold]+entries[hot], taken+fall)
	}
	if taken != entries[cold] || fall != entries[hot] {
		t.Fatalf("edge mapping swapped: profile (taken=%d fall=%d), traced (Succs[0]=%d Succs[1]=%d)",
			taken, fall, entries[cold], entries[hot])
	}
	if taken == 0 || fall == 0 || fall <= taken {
		t.Fatalf("expected a skewed, two-sided split: taken=%d fall=%d", taken, fall)
	}

	// The estimate must agree with observed reality: the fall arm ran ~15x
	// more often, so it must also be estimated hotter.
	info := cfg.Compute(fn)
	e := Compute(fn, info, res.Profile)
	if e.Freq[hot] <= e.Freq[cold] {
		t.Fatalf("estimate disagrees with traced execution: hot=%g cold=%g",
			e.Freq[hot], e.Freq[cold])
	}
	ratioTraced := float64(entries[hot]) / float64(entries[cold])
	ratioEst := e.Freq[hot] / e.Freq[cold]
	if ratioEst < 0.5*ratioTraced || ratioEst > 2*ratioTraced {
		t.Fatalf("estimated arm ratio %g far from traced ratio %g", ratioEst, ratioTraced)
	}
}

func TestHotFirstDeterministic(t *testing.T) {
	fn, _, _, _, _ := buildIfInLoop()
	info := cfg.Compute(fn)
	e := Compute(fn, info, nil)
	a := e.HotFirst()
	b := e.HotFirst()
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("HotFirst is not deterministic")
		}
	}
}
