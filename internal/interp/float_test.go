package interp

import (
	"math"
	"strings"
	"testing"

	"signext/internal/ir"
)

func TestFloatArithmetic(t *testing.T) {
	r, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		x := b.FConst(2.5)
		y := b.FConst(4.0)
		b.FPrint(b.FAdd(x, y))
		b.FPrint(b.FSub(x, y))
		b.FPrint(b.FMul(x, y))
		b.FPrint(b.FDiv(x, y))
		b.FPrint(b.FNeg(x))
		b.FPrint(b.FMov(y))
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "6.5\n-1.5\n10\n0.625\n-2.5\n4\n"
	if r.Output != want {
		t.Fatalf("got %q want %q", r.Output, want)
	}
}

func TestFloatBuiltins(t *testing.T) {
	r, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		x := b.FConst(4.0)
		b.FPrint(b.FCall("sqrt", x))
		b.FPrint(b.FCall("fabs", b.FNeg(x)))
		b.FPrint(b.FCall("floor", b.FConst(2.9)))
		b.FPrint(b.FCall("pow", b.FConst(2), b.FConst(8)))
		b.FPrint(b.FCall("exp", b.FConst(0)))
		b.FPrint(b.FCall("log", b.FConst(1)))
		b.FPrint(b.FCall("sin", b.FConst(0)))
		b.FPrint(b.FCall("cos", b.FConst(0)))
		b.FPrint(b.FCall("atan", b.FConst(0)))
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "2\n4\n2\n256\n1\n0\n0\n1\n1\n0\n"
	_ = want
	lines := strings.Split(strings.TrimSpace(r.Output), "\n")
	wantVals := []float64{2, 4, 2, 256, 1, 0, 0, 1, 0}
	if len(lines) != len(wantVals) {
		t.Fatalf("line count: %q", r.Output)
	}
	for i, w := range wantVals {
		if lines[i] != trimFloat(w) {
			t.Errorf("builtin %d: got %s want %g", i, lines[i], w)
		}
	}
	// Unknown builtin errors.
	_, err = run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		b.FPrint(b.FCall("nonsense", b.FConst(1)))
		b.Ret(ir.NoReg)
	})
	if err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func trimFloat(f float64) string {
	s := strings.TrimRight(strings.TrimRight(
		strings.ReplaceAll(strings.TrimSpace(
			strings.ToLower(strings.TrimSpace(formatF(f)))), "+", ""), "0"), ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func formatF(f float64) string {
	return strings.TrimSpace(strings.ReplaceAll(
		strings.TrimSpace(strings.ToLower(strings.TrimSpace(fmtG(f)))), "e00", ""))
}

func fmtG(f float64) string {
	// strconv via interp's own formatting: reuse a tiny program.
	return strings.TrimSpace(floatString(f))
}

func floatString(f float64) string {
	prog := ir.NewProgram()
	b := ir.NewFunc("main")
	b.FPrint(b.FConst(f))
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	res, _ := Run(prog, "main", Options{Mode: Mode64})
	return res.Output
}

func TestFloatGlobalsAndConversions(t *testing.T) {
	r, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		v := b.FConst(3.75)
		b.StoreGF(1, v)
		l := b.LoadGF(1)
		b.FPrint(l)
		i := b.D2I(l)
		b.Print(ir.W32, i)
		g := b.D2L(b.FConst(1e12))
		b.Print(ir.W64, g)
		d := b.L2D(g)
		b.FPrint(d)
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "3.75\n3\n1000000000000\n1e+12\n"
	if r.Output != want {
		t.Fatalf("got %q want %q", r.Output, want)
	}
}

func TestFloatBranch(t *testing.T) {
	r, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		x := b.FConst(1.5)
		y := b.FConst(2.5)
		tBlk, fBlk := b.NewBlock(), b.NewBlock()
		b.FBr(ir.CondLT, x, y, tBlk, fBlk)
		b.SetBlock(tBlk)
		b.Print(ir.W32, b.Const(ir.W32, 1))
		b.Ret(ir.NoReg)
		b.SetBlock(fBlk)
		b.Print(ir.W32, b.Const(ir.W32, 0))
		b.Ret(ir.NoReg)
	})
	if err != nil || strings.TrimSpace(r.Output) != "1" {
		t.Fatalf("fbr: %q %v", r.Output, err)
	}
}

func TestTrapAndNilArray(t *testing.T) {
	_, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		tr := b.Fn.NewInstr(ir.OpTrap)
		tr.Blk = b.Block()
		b.Block().Instrs = append(b.Block().Instrs, tr)
		b.SetBlock(nil)
	})
	if err != ErrTrap {
		t.Fatalf("trap: %v", err)
	}
	_, err = run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		nilRef := b.Fn.NewReg()
		b.ConstTo(ir.W64, nilRef, 0)
		b.Print(ir.W32, b.ArrLen(nilRef))
		b.Ret(ir.NoReg)
	})
	if err != ErrNilArray {
		t.Fatalf("nil array: %v", err)
	}
}

func TestNegativeArraySize(t *testing.T) {
	_, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		n := b.Const(ir.W32, -4)
		a := b.NewArr(ir.W32, false, n)
		b.Print(ir.W32, b.ArrLen(a))
		b.Ret(ir.NoReg)
	})
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative size: %v", err)
	}
}

func TestZextAndNarrowStores(t *testing.T) {
	r, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		v := b.Const(ir.W32, -1)
		b.Print(ir.W64, b.Zext(ir.W16, v))
		b.StoreG(ir.W8, 0, v)
		b.Print(ir.W64, b.LoadG(ir.W8, 0)) // zero-extended byte on IA64
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Output != "65535\n255\n" {
		t.Fatalf("got %q", r.Output)
	}
}

func TestMode32NormalizesEverything(t *testing.T) {
	r, err := run(t, Options{Mode: Mode32}, func(b *ir.Builder) {
		big := b.Const(ir.W32, math.MaxInt32)
		s := b.Mul(ir.W32, big, big)
		b.Print(ir.W64, s) // even a 64-bit view sees the normalized value
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(r.Output) != "1" { // MaxInt32^2 mod 2^32 = 1
		t.Fatalf("got %q", r.Output)
	}
}
