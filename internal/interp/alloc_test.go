package interp

import (
	"testing"

	"signext/internal/ir"
)

// callHeavyProg: main calls a tiny function n times — the workload shape
// where per-invocation allocation churn (a fresh register file and profile
// map per call) used to dominate.
func callHeavyProg(n int64) *ir.Program {
	prog := ir.NewProgram()

	f := ir.NewFunc("f", ir.Param{W: ir.W32})
	x := f.Param(0)
	one := f.Const(ir.W32, 1)
	s := f.Add(ir.W32, x, one)
	f.Ext(ir.W32, s)
	f.Ret(s)
	prog.AddFunc(f.Fn)

	b := ir.NewFunc("main")
	i := b.Fn.NewReg()
	acc := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	b.ConstTo(ir.W32, acc, 0)
	lim := b.Const(ir.W32, n)
	one = b.Const(ir.W32, 1)
	loop, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Br(ir.W32, ir.CondLT, i, lim, body, exit)
	b.SetBlock(body)
	r := b.Call("f", ir.W32, false, i)
	b.OpTo(ir.OpAdd, ir.W32, acc, acc, r)
	b.Ext(ir.W32, acc)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.Ext(ir.W32, i)
	b.Jmp(loop)
	b.SetBlock(exit)
	b.Print(ir.W32, acc)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	return prog
}

// TestAllocsPerCallRegression: with pooled register files and frames, the
// marginal allocation cost of an interpreted call must be (near) zero: 990
// extra calls may not add more than a handful of allocations, under either
// dispatcher. Before pooling, every call allocated at least a register
// slice, so 990 extra calls cost >= 990 allocations.
func TestAllocsPerCallRegression(t *testing.T) {
	small := callHeavyProg(10)
	big := callHeavyProg(1000)
	for _, d := range []Dispatch{DispatchSwitch, DispatchThreaded} {
		run := func(p *ir.Program) float64 {
			return testing.AllocsPerRun(5, func() {
				if _, err := Run(p, "main", Options{Mode: Mode32, Profile: true, CountCalls: true, Dispatch: d}); err != nil {
					t.Fatal(err)
				}
			})
		}
		extra := run(big) - run(small)
		if extra > 20 {
			t.Errorf("dispatch=%d: 990 extra calls cost %.0f extra allocations; want amortized ~0", d, extra)
		}
	}
}
