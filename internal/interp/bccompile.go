// Bytecode compilation: flattening an ir.Func into the fast (fused,
// segment-accounted) and careful (unfused, per-instruction) code arrays of a
// bcFunc, plus the per-run bcState plumbing on machine.
package interp

import (
	"signext/internal/ir"
)

const minInt64 = -1 << 63

// compileBC flattens fn, or returns nil when the function is irregular — a
// terminator anywhere but block-last position. The walker keeps executing the
// rest of a block after a mid-block jump; replicating that in flat code is
// not worth it, so irregular functions stay on the walker.
func compileBC(prog *ir.Program, fn *ir.Func) *bcFunc {
	for _, b := range fn.Blocks {
		for i, ins := range b.Instrs {
			if ins.IsTerminator() && i != len(b.Instrs)-1 {
				return nil
			}
		}
	}

	bf := &bcFunc{fn: fn}
	origIdx := map[*ir.Instr]int32{}
	brIdx := map[*ir.Instr]int32{}
	callIdx := map[*ir.Instr]int32{}
	for _, b := range fn.Blocks {
		for _, ins := range b.Instrs {
			origIdx[ins] = int32(len(bf.origs))
			bf.origs = append(bf.origs, ins)
			switch ins.Op {
			case ir.OpBr, ir.OpFBr:
				brIdx[ins] = int32(len(bf.brIDs))
				bf.brIDs = append(bf.brIDs, ins.ID)
			case ir.OpCall:
				callIdx[ins] = int32(len(bf.callees))
				bf.callees = append(bf.callees, prog.Func(ins.Callee))
				bf.argLists = append(bf.argLists, ins.Args)
				bf.names = append(bf.names, ins.Callee)
			}
		}
	}

	// Careful array: 1:1 with origs, unfused, no accounting tokens (the
	// careful loop accounts inline). Branch targets stay zero — careful mode
	// provably traps before any terminator executes.
	bf.careful = make([]bcIns, len(bf.origs))
	for k, ins := range bf.origs {
		bf.careful[k] = encodeOne(ins, origIdx[ins], brIdx, callIdx)
	}

	// Fast array: per block, segment heads + fused code, then a fell-through
	// token when the block has no terminator.
	type patch struct {
		pc    int32
		blk   *ir.Block
		taken bool
	}
	var patches []patch
	blockStart := map[*ir.Block]int32{}
	for _, b := range fn.Blocks {
		blockStart[b] = int32(len(bf.fast))
		instrs := b.Instrs
		for segStart := 0; segStart < len(instrs); {
			segEnd := segStart
			for segEnd < len(instrs) && instrs[segEnd].Op != ir.OpCall {
				segEnd++
			}
			if segEnd < len(instrs) {
				segEnd++ // the call ends its segment, inclusive
			}
			seg := bcSeg{
				steps:     int64(segEnd - segStart),
				origStart: origIdx[instrs[segStart]],
				origEnd:   origIdx[instrs[segEnd-1]] + 1,
			}
			for _, ins := range instrs[segStart:segEnd] {
				if ins.Op == ir.OpExt {
					found := false
					for j := range seg.exts {
						if seg.exts[j].w == ins.W {
							seg.exts[j].n++
							found = true
							break
						}
					}
					if !found {
						seg.exts = append(seg.exts, extCount{w: ins.W, n: 1})
					}
				}
			}
			segID := int32(len(bf.segs))
			bf.segs = append(bf.segs, seg)
			bf.fast = append(bf.fast, bcIns{h: hSeg, tok: tokSeg, t0: segID})

			for i := segStart; i < segEnd; {
				fused, n := fuse(instrs, i, segEnd, origIdx, brIdx)
				if n == 0 {
					fused = encodeOne(instrs[i], origIdx[instrs[i]], brIdx, callIdx)
					n = 1
				}
				pc := int32(len(bf.fast))
				bf.fast = append(bf.fast, fused)
				switch fused.tok {
				case tokBr, tokFBr, tokExtBr, tokAddBr, tokSubBr, tokAddExtBr:
					br := instrs[i+n-1]
					patches = append(patches,
						patch{pc: pc, blk: br.Blk.Succs[0], taken: true},
						patch{pc: pc, blk: br.Blk.Succs[1], taken: false})
				case tokJmp, tokAddJmp:
					patches = append(patches, patch{pc: pc, blk: instrs[i].Blk.Succs[0], taken: true})
				}
				i += n
			}
			segStart = segEnd
		}
		if b.Term() == nil {
			bf.fast = append(bf.fast, bcIns{h: hFellThrough, tok: tokFellThrough, imm: int64(b.ID)})
		}
	}
	for _, p := range patches {
		if p.taken {
			bf.fast[p.pc].t0 = blockStart[p.blk]
		} else {
			bf.fast[p.pc].t1 = blockStart[p.blk]
		}
	}
	return bf
}

// fuse tries the superinstruction patterns at instrs[i] (longest first,
// within [i, segEnd)). It returns the fused encoding and the number of
// constituent instructions, or n == 0 when nothing matches.
func fuse(instrs []*ir.Instr, i, segEnd int, origIdx, brIdx map[*ir.Instr]int32) (bcIns, int) {
	cur := instrs[i]
	var nxt, nxt2 *ir.Instr
	if i+1 < segEnd {
		nxt = instrs[i+1]
	}
	if i+2 < segEnd {
		nxt2 = instrs[i+2]
	}
	extOf := func(ext *ir.Instr, src ir.Reg) bool {
		return ext != nil && ext.Op == ir.OpExt && ext.Srcs[0] == src
	}
	intBr := func(br *ir.Instr) bool {
		return br != nil && br.Op == ir.OpBr
	}

	// add + ext + br (the inc/normalize/loop-back latch progen emits).
	if cur.Op == ir.OpAdd && extOf(nxt, cur.Dst) && intBr(nxt2) {
		return bcIns{
			h: hAddExtBr, tok: tokAddExtBr,
			w: cur.W, w2: nxt.W, w3: nxt2.W, cond: nxt2.Cond,
			dst: cur.Dst, a: cur.Srcs[0], b: cur.Srcs[1], c: nxt.Dst,
			x: nxt2.Srcs[0], y: nxt2.Srcs[1],
			orig: origIdx[cur], prof: brIdx[nxt2],
		}, 3
	}
	// const + add reading the constant.
	if cur.Op == ir.OpConst && nxt != nil && nxt.Op == ir.OpAdd &&
		(nxt.Srcs[0] == cur.Dst || nxt.Srcs[1] == cur.Dst) {
		return bcIns{
			h: hConstAdd, tok: tokConstAdd,
			w: nxt.W, imm: cur.Const,
			c: cur.Dst, dst: nxt.Dst, a: nxt.Srcs[0], b: nxt.Srcs[1],
			orig: origIdx[cur],
		}, 2
	}
	// const + aload indexed by the constant (the a[K] idiom). Skipped when an
	// ext of the load follows, so the aload+ext fusion can claim it instead —
	// either way two of the three instructions fuse.
	if cur.Op == ir.OpConst && nxt != nil && nxt.Op == ir.OpArrLoad &&
		!nxt.Float && nxt.Srcs[1] == cur.Dst && !extOf(nxt2, nxt.Dst) {
		return bcIns{
			h: hConstALoad, tok: tokConstALoad,
			w: nxt.W, imm: cur.Const,
			c: cur.Dst, dst: nxt.Dst, a: nxt.Srcs[0], b: nxt.Srcs[1],
			orig: origIdx[cur],
		}, 2
	}
	// arith + ext of the result.
	if extOf(nxt, cur.Dst) {
		switch cur.Op {
		case ir.OpAdd, ir.OpSub, ir.OpMul:
			h, tok := hAddExt, tokAddExt
			switch cur.Op {
			case ir.OpSub:
				h, tok = hSubExt, tokSubExt
			case ir.OpMul:
				h, tok = hMulExt, tokMulExt
			}
			return bcIns{
				h: h, tok: tok,
				w: cur.W, w2: nxt.W,
				dst: cur.Dst, a: cur.Srcs[0], b: cur.Srcs[1], c: nxt.Dst,
				orig: origIdx[cur],
			}, 2
		case ir.OpLoadG:
			if !cur.Float {
				return bcIns{
					h: hLoadGExt, tok: tokLoadGExt,
					w: cur.W, w2: nxt.W, imm: cur.Const,
					dst: cur.Dst, c: nxt.Dst,
					orig: origIdx[cur],
				}, 2
			}
		case ir.OpArrLoad:
			if !cur.Float {
				return bcIns{
					h: hArrLoadExt, tok: tokArrLoadExt,
					w: cur.W, w2: nxt.W,
					dst: cur.Dst, a: cur.Srcs[0], b: cur.Srcs[1], c: nxt.Dst,
					orig: origIdx[cur],
				}, 2
			}
		}
	}
	// ext + br (narrow compare operands freshly normalized).
	if cur.Op == ir.OpExt && intBr(nxt) {
		return bcIns{
			h: hExtBr, tok: tokExtBr,
			w: cur.W, w2: nxt.W, cond: nxt.Cond,
			dst: cur.Dst, a: cur.Srcs[0],
			x: nxt.Srcs[0], y: nxt.Srcs[1],
			orig: origIdx[cur], prof: brIdx[nxt],
		}, 2
	}
	// add/sub + br.
	if (cur.Op == ir.OpAdd || cur.Op == ir.OpSub) && intBr(nxt) {
		h, tok := hAddBr, tokAddBr
		if cur.Op == ir.OpSub {
			h, tok = hSubBr, tokSubBr
		}
		return bcIns{
			h: h, tok: tok,
			w: cur.W, w2: nxt.W, cond: nxt.Cond,
			dst: cur.Dst, a: cur.Srcs[0], b: cur.Srcs[1],
			x: nxt.Srcs[0], y: nxt.Srcs[1],
			orig: origIdx[cur], prof: brIdx[nxt],
		}, 2
	}
	// add + jmp (loop latch with the normalization already elided).
	if cur.Op == ir.OpAdd && nxt != nil && nxt.Op == ir.OpJmp {
		return bcIns{
			h: hAddJmp, tok: tokAddJmp,
			w: cur.W, dst: cur.Dst, a: cur.Srcs[0], b: cur.Srcs[1],
			orig: origIdx[cur],
		}, 2
	}
	return bcIns{}, 0
}

// encodeOne returns the unfused encoding of ins. Branch targets are left for
// the caller to patch (fast array) or unused (careful array).
func encodeOne(ins *ir.Instr, orig int32, brIdx, callIdx map[*ir.Instr]int32) bcIns {
	in := bcIns{w: ins.W, cond: ins.Cond, fl: ins.Float, dst: ins.Dst,
		a: ins.Srcs[0], b: ins.Srcs[1], c: ins.Srcs[2], orig: orig}
	switch ins.Op {
	case ir.OpConst:
		in.h, in.tok, in.imm = hConst, tokConst, ins.Const
	case ir.OpFConst:
		in.h, in.tok, in.fimm = hFConst, tokFConst, ins.F
	case ir.OpMov:
		in.h, in.tok = hMov, tokMov
	case ir.OpFMov:
		in.h, in.tok = hFMov, tokFMov
	case ir.OpAdd:
		in.h, in.tok = hAdd, tokAdd
	case ir.OpSub:
		in.h, in.tok = hSub, tokSub
	case ir.OpMul:
		in.h, in.tok = hMul, tokMul
	case ir.OpDiv:
		in.h, in.tok = hDiv, tokDiv
	case ir.OpRem:
		in.h, in.tok = hRem, tokRem
	case ir.OpAnd:
		in.h, in.tok = hAnd, tokAnd
	case ir.OpOr:
		in.h, in.tok = hOr, tokOr
	case ir.OpXor:
		in.h, in.tok = hXor, tokXor
	case ir.OpNot:
		in.h, in.tok = hNot, tokNot
	case ir.OpNeg:
		in.h, in.tok = hNeg, tokNeg
	case ir.OpShl:
		in.h, in.tok = hShl, tokShl
	case ir.OpAShr:
		in.h, in.tok = hAShr, tokAShr
	case ir.OpLShr:
		in.h, in.tok = hLShr, tokLShr
	case ir.OpExt:
		in.h, in.tok, in.extW = hExt, tokExt, ins.W
	case ir.OpZext:
		in.h, in.tok = hZext, tokZext
	case ir.OpExtDummy:
		in.h, in.tok = hExtDummy, tokExtDummy
	case ir.OpI2D, ir.OpL2D:
		in.h, in.tok = hI2D, tokI2D
	case ir.OpD2I:
		in.h, in.tok = hD2I, tokD2I
	case ir.OpD2L:
		in.h, in.tok = hD2L, tokD2L
	case ir.OpFAdd:
		in.h, in.tok = hFAdd, tokFAdd
	case ir.OpFSub:
		in.h, in.tok = hFSub, tokFSub
	case ir.OpFMul:
		in.h, in.tok = hFMul, tokFMul
	case ir.OpFDiv:
		in.h, in.tok = hFDiv, tokFDiv
	case ir.OpFNeg:
		in.h, in.tok = hFNeg, tokFNeg
	case ir.OpFCall:
		in.h, in.tok = hFCall, tokFCall
	case ir.OpCall:
		in.h, in.tok, in.t0 = hCall, tokCall, callIdx[ins]
	case ir.OpRet:
		in.h, in.tok = hRet, tokRet
		if ins.NSrcs != 1 {
			in.a = ir.NoReg
		}
	case ir.OpLoadG:
		in.h, in.tok, in.imm = hLoadG, tokLoadG, ins.Const
	case ir.OpStoreG:
		in.h, in.tok, in.imm = hStoreG, tokStoreG, ins.Const
	case ir.OpNewArr:
		in.h, in.tok = hNewArr, tokNewArr
	case ir.OpArrLoad:
		in.h, in.tok = hArrLoad, tokArrLoad
	case ir.OpArrStore:
		in.h, in.tok = hArrStore, tokArrStore
	case ir.OpArrLen:
		in.h, in.tok = hArrLen, tokArrLen
	case ir.OpBr:
		in.h, in.tok, in.x, in.y, in.prof = hBr, tokBr, ins.Srcs[0], ins.Srcs[1], brIdx[ins]
	case ir.OpFBr:
		in.h, in.tok, in.x, in.y, in.prof = hFBr, tokFBr, ins.Srcs[0], ins.Srcs[1], brIdx[ins]
	case ir.OpJmp:
		in.h, in.tok = hJmp, tokJmp
	case ir.OpTrap:
		in.h, in.tok = hTrap, tokTrap
	case ir.OpPrint:
		in.h, in.tok = hPrint, tokPrint
	case ir.OpFPrint:
		in.h, in.tok = hFPrint, tokFPrint
	default:
		in.h, in.tok = hBad, tokBad
	}
	return in
}

// ---------------------------------------------------------------------------
// Per-machine state: lazy compile cache, per-run cost/profile tables, pools.

// bcFor returns fn's threaded state, compiling on first use, or nil when the
// run uses the walker (switch dispatch, per-instruction hooks, or an
// irregular function).
func (m *machine) bcFor(fn *ir.Func) *bcState {
	if !m.threaded {
		return nil
	}
	st, ok := m.bc[fn]
	if ok {
		return st
	}
	if bf := compileBC(m.prog, fn); bf != nil {
		st = m.newBCState(bf)
	}
	if m.bc == nil {
		m.bc = map[*ir.Func]*bcState{}
	}
	m.bc[fn] = st
	return st
}

// newBCState evaluates the run's cost model once per instruction (Options.
// Cost must be pure: segment accounting sums it ahead of execution order) and
// sizes the dense branch counters.
func (m *machine) newBCState(bf *bcFunc) *bcState {
	st := &bcState{bf: bf}
	if m.opt.Cost != nil {
		st.cost = make([]int64, len(bf.origs))
		for k, ins := range bf.origs {
			st.cost[k] = m.opt.Cost(ins)
		}
		st.segCost = make([]int64, len(bf.segs))
		for si := range bf.segs {
			seg := &bf.segs[si]
			sum := int64(0)
			for k := seg.origStart; k < seg.origEnd; k++ {
				sum += st.cost[k]
			}
			st.segCost[si] = sum
		}
	}
	if m.res.Profile != nil {
		st.prof = make([][2]int64, len(bf.brIDs))
	}
	return st
}

// flushBCProfiles materializes the dense branch counters into Result.Profile
// with the walker's exact shape: every entered function gets a map (possibly
// empty), and counters exist only for branches that executed.
func (m *machine) flushBCProfiles() {
	if m.res.Profile == nil {
		return
	}
	for fn, st := range m.bc {
		if st == nil || !st.entered {
			continue
		}
		pm := m.res.Profile[fn.Name]
		if pm == nil {
			pm = make(map[int]*[2]int64, len(st.bf.brIDs))
			m.res.Profile[fn.Name] = pm
		}
		for bi := range st.prof {
			c := &st.prof[bi]
			if c[0] == 0 && c[1] == 0 {
				continue
			}
			p := pm[st.bf.brIDs[bi]]
			if p == nil {
				p = new([2]int64)
				pm[st.bf.brIDs[bi]] = p
			}
			p[0] += c[0]
			p[1] += c[1]
		}
	}
}

// acquireRegs returns a zeroed register file, reusing a pooled backing array
// when one is large enough.
func (m *machine) acquireRegs(n int) []slot {
	if k := len(m.regPool); k > 0 {
		s := m.regPool[k-1]
		if cap(s) >= n {
			m.regPool = m.regPool[:k-1]
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]slot, n)
}

func (m *machine) releaseRegs(s []slot) {
	m.regPool = append(m.regPool, s)
}

func (m *machine) acquireFrame() *bcFrame {
	if k := len(m.framePool); k > 0 {
		fr := m.framePool[k-1]
		m.framePool = m.framePool[:k-1]
		*fr = bcFrame{}
		return fr
	}
	return new(bcFrame)
}

func (m *machine) releaseFrame(fr *bcFrame) {
	fr.regs = nil
	fr.st = nil
	fr.err = nil
	m.framePool = append(m.framePool, fr)
}
