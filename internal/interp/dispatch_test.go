package interp

import (
	"fmt"
	"reflect"
	"testing"

	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/target"
	"signext/internal/workloads"
)

// runBoth executes prog under both dispatchers with identical options and
// returns the pair of results and errors.
func runBoth(t *testing.T, prog *ir.Program, opt Options) (sw, th *Result, swErr, thErr error) {
	t.Helper()
	o := opt
	o.Dispatch = DispatchSwitch
	sw, swErr = Run(prog, "main", o)
	o.Dispatch = DispatchThreaded
	th, thErr = Run(prog, "main", o)
	return sw, th, swErr, thErr
}

// assertIdentical requires every observable of the two runs to match: output,
// error string, step and cycle totals, per-mode cycle split, executed
// sign-extension counts, branch profiles, and call counts.
func assertIdentical(t *testing.T, label string, sw, th *Result, swErr, thErr error) {
	t.Helper()
	errStr := func(err error) string {
		if err == nil {
			return "<nil>"
		}
		return err.Error()
	}
	if errStr(swErr) != errStr(thErr) {
		t.Fatalf("%s: error mismatch: switch %q, threaded %q", label, errStr(swErr), errStr(thErr))
	}
	if sw.Output != th.Output {
		t.Fatalf("%s: output mismatch:\nswitch:\n%s\nthreaded:\n%s", label, sw.Output, th.Output)
	}
	if sw.Steps != th.Steps {
		t.Fatalf("%s: steps: switch %d, threaded %d", label, sw.Steps, th.Steps)
	}
	if sw.Cycles != th.Cycles {
		t.Fatalf("%s: cycles: switch %d, threaded %d", label, sw.Cycles, th.Cycles)
	}
	if sw.ModeCycles != th.ModeCycles {
		t.Fatalf("%s: mode cycles: switch %v, threaded %v", label, sw.ModeCycles, th.ModeCycles)
	}
	if sw.Ext != th.Ext {
		t.Fatalf("%s: ext counts: switch %v, threaded %v", label, sw.Ext[8:33], th.Ext[8:33])
	}
	if !reflect.DeepEqual(sw.Profile, th.Profile) {
		t.Fatalf("%s: branch profiles differ:\nswitch:   %v\nthreaded: %v", label, sw.Profile, th.Profile)
	}
	if !reflect.DeepEqual(sw.Calls, th.Calls) {
		t.Fatalf("%s: call counts differ: switch %v, threaded %v", label, sw.Calls, th.Calls)
	}
}

// TestDispatchIdentityWorkloads runs every workload through both dispatchers
// in both modes on both machine models with profiling and the cost model on,
// asserting bit-identical observables.
func TestDispatchIdentityWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cu, err := minijava.Compile(w.Source)
			if err != nil {
				t.Fatalf("compile %s: %v", w.Name, err)
			}
			for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
				for _, mode := range []Mode{Mode32, Mode64} {
					opt := Options{
						Mode:       mode,
						Machine:    mach,
						Profile:    true,
						CountCalls: true,
						Cost:       target.CostModel(mach),
					}
					sw, th, swErr, thErr := runBoth(t, cu.Prog, opt)
					label := fmt.Sprintf("%s/%v/mode%d", w.Name, mach, 64-32*int(mode))
					assertIdentical(t, label, sw, th, swErr, thErr)
					if sw.Steps == 0 {
						t.Fatalf("%s: workload executed no steps", label)
					}
				}
			}
		})
	}
}

// stepLimitProg mixes traps, calls, prints, and narrow arithmetic so a step
// limit can land on every interesting instruction kind.
func stepLimitProg() *ir.Program {
	prog := ir.NewProgram()

	f := ir.NewFunc("f", ir.Param{W: ir.W32})
	x := f.Param(0)
	one := f.Const(ir.W32, 1)
	s := f.Add(ir.W32, x, one)
	f.Ext(ir.W32, s)
	f.Print(ir.W32, s)
	f.Ret(s)
	prog.AddFunc(f.Fn)

	b := ir.NewFunc("main")
	i := b.Fn.NewReg()
	acc := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	b.ConstTo(ir.W32, acc, 0)
	n := b.Const(ir.W32, 25)
	one = b.Const(ir.W32, 1)
	loop, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Br(ir.W32, ir.CondLT, i, n, body, exit)
	b.SetBlock(body)
	r := b.Call("f", ir.W32, false, i)
	b.OpTo(ir.OpAdd, ir.W32, acc, acc, r)
	b.Ext(ir.W32, acc)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.Ext(ir.W32, i)
	b.Jmp(loop)
	b.SetBlock(exit)
	b.Print(ir.W32, acc)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	return prog
}

// TestDispatchIdentityStepLimitSweep pins the exact step-limit semantics of
// the segment-batched fast path: for every possible MaxSteps value up to the
// program's full length, both dispatchers must stop at the same instruction
// with the same totals, output prefix, and partial profile.
func TestDispatchIdentityStepLimitSweep(t *testing.T) {
	prog := stepLimitProg()
	full, err := Run(prog, "main", Options{Mode: Mode32, Dispatch: DispatchSwitch})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	cost := target.CostModel(ir.IA64)
	for lim := int64(1); lim <= full.Steps+1; lim++ {
		opt := Options{
			Mode:       Mode32,
			MaxSteps:   lim,
			Profile:    true,
			CountCalls: true,
			Cost:       cost,
		}
		sw, th, swErr, thErr := runBoth(t, prog, opt)
		assertIdentical(t, fmt.Sprintf("maxsteps=%d", lim), sw, th, swErr, thErr)
		if lim < full.Steps && swErr == nil {
			t.Fatalf("maxsteps=%d: expected a step-limit trap", lim)
		}
		if lim < full.Steps && sw.Steps != lim+1 {
			t.Fatalf("maxsteps=%d: walker stopped at step %d, want %d", lim, sw.Steps, lim+1)
		}
	}
}

// TestSuperinstructionFusion asserts the compiler actually emits the fused
// encodings for the hot pairs, and that the fused code computes the same
// results as the walker, including Mode32 normalization between the fused
// constituents.
func TestSuperinstructionFusion(t *testing.T) {
	prog := ir.NewProgram()
	prog.NGlobals = 1
	b := ir.NewFunc("main")
	i := b.Fn.NewReg()
	s := b.Fn.NewReg()
	b.ConstTo(ir.W8, i, 0)
	b.ConstTo(ir.W32, s, 0)
	n := b.Const(ir.W32, 300)
	b.StoreG(ir.W16, 0, b.Const(ir.W32, -5))
	arr := b.NewArr(ir.W8, false, b.Const(ir.W32, 4))
	// Defined outside the loop so the latch is a bare add+ext+br triple; a
	// const right before the add would fuse as const+add instead.
	one := b.Const(ir.W32, 1)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	// const + add -> tokConstAdd
	three := b.Const(ir.W32, 3)
	b.OpTo(ir.OpAdd, ir.W32, s, s, three)
	// mul + ext -> tokMulExt
	b.OpTo(ir.OpMul, ir.W8, s, s, s)
	b.Ext(ir.W8, s)
	// loadg + ext -> tokLoadGExt
	g := b.LoadG(ir.W16, 0)
	b.Ext(ir.W16, g)
	b.OpTo(ir.OpAdd, ir.W32, s, s, g)
	// aload + ext -> tokArrLoadExt
	e := b.ArrLoad(ir.W8, false, arr, b.Const(ir.W32, 2))
	b.Ext(ir.W8, e)
	b.OpTo(ir.OpAdd, ir.W32, s, s, e)
	b.Ext(ir.W32, s)
	// add + ext + br -> tokAddExtBr (the loop latch)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, n, loop, exit)
	b.SetBlock(exit)
	// Second loop: the MiniJava-shaped pairs (no ext in sight).
	zero := b.Const(ir.W32, 0)
	m := b.Const(ir.W32, 400)
	d := b.Fn.NewReg()
	loop2, body2, exit2 := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Jmp(loop2)
	b.SetBlock(loop2)
	// const + aload (no trailing ext) -> tokConstALoad
	e2 := b.ArrLoad(ir.W8, false, arr, b.Const(ir.W32, 2))
	b.OpTo(ir.OpAdd, ir.W32, s, s, e2)
	// sub + br -> tokSubBr
	b.OpTo(ir.OpSub, ir.W32, d, m, i)
	b.Br(ir.W32, ir.CondGT, d, zero, body2, exit2)
	b.SetBlock(body2)
	// add + jmp -> tokAddJmp
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.Jmp(loop2)
	b.SetBlock(exit2)
	b.Print(ir.W32, s)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)

	bf := compileBC(prog, prog.Func("main"))
	if bf == nil {
		t.Fatal("compileBC rejected a regular function")
	}
	want := map[bcTok]bool{tokConstAdd: false, tokMulExt: false, tokLoadGExt: false, tokArrLoadExt: false, tokAddExtBr: false,
		tokConstALoad: false, tokSubBr: false, tokAddJmp: false}
	for _, in := range bf.fast {
		if _, ok := want[in.tok]; ok {
			want[in.tok] = true
		}
	}
	for tok, got := range want {
		if !got {
			t.Errorf("expected fused token %d in fast code, not emitted", tok)
		}
	}

	for _, mode := range []Mode{Mode32, Mode64} {
		opt := Options{Mode: mode, Profile: true, Cost: target.CostModel(ir.IA64)}
		sw, th, swErr, thErr := runBoth(t, prog, opt)
		assertIdentical(t, fmt.Sprintf("fusion/mode%d", mode), sw, th, swErr, thErr)
	}
}

// TestDispatchIdentityTraps covers mid-segment traps, where the threaded
// fast path must roll its optimistic segment accounting back to the walker's
// exact totals.
func TestDispatchIdentityTraps(t *testing.T) {
	build := func(f func(b *ir.Builder)) *ir.Program {
		prog := ir.NewProgram()
		b := ir.NewFunc("main")
		f(b)
		prog.AddFunc(b.Fn)
		return prog
	}
	cases := map[string]*ir.Program{
		"div-zero-mid-block": build(func(b *ir.Builder) {
			x := b.Const(ir.W32, 7)
			b.Ext(ir.W32, x) // counted ext before the trap
			y := b.Const(ir.W32, 0)
			q := b.Div(ir.W32, x, y)
			b.Print(ir.W32, q)
			b.Ret(ir.NoReg)
		}),
		"bounds-after-print": build(func(b *ir.Builder) {
			arr := b.NewArr(ir.W32, false, b.Const(ir.W32, 2))
			b.Print(ir.W32, b.Const(ir.W32, 11)) // output before the trap must survive
			// const+aload fuses to tokConstALoad, so this also pins the trap
			// attribution inside a fused pair: the rollback must charge the
			// aload (the second constituent), not the const.
			v := b.ArrLoad(ir.W32, false, arr, b.Const(ir.W32, 9))
			b.Print(ir.W32, v)
			b.Ret(ir.NoReg)
		}),
		"neg-array-size": build(func(b *ir.Builder) {
			b.NewArr(ir.W32, false, b.Const(ir.W32, -3))
			b.Ret(ir.NoReg)
		}),
		"explicit-trap": build(func(b *ir.Builder) {
			b.Print(ir.W32, b.Const(ir.W32, 1))
			then, els := b.NewBlock(), b.NewBlock()
			z := b.Const(ir.W32, 0)
			b.Br(ir.W32, ir.CondEQ, z, z, then, els)
			b.SetBlock(then)
			blk := b.Block()
			blk.InsertAt(len(blk.Instrs), b.Fn.NewInstr(ir.OpTrap))
			b.SetBlock(els)
			b.Ret(ir.NoReg)
		}),
	}
	cost := target.CostModel(ir.IA64)
	for name, prog := range cases {
		for _, mode := range []Mode{Mode32, Mode64} {
			opt := Options{Mode: mode, Profile: true, CountCalls: true, Cost: cost}
			sw, th, swErr, thErr := runBoth(t, prog, opt)
			assertIdentical(t, fmt.Sprintf("%s/mode%d", name, mode), sw, th, swErr, thErr)
			if swErr == nil {
				t.Fatalf("%s: expected a trap", name)
			}
		}
	}
}

// TestThreadedFallsBackForHooks: Trace and OnDef observe individual
// instruction executions, so threaded dispatch must quietly use the walker
// and deliver identical hook streams.
func TestThreadedFallsBackForHooks(t *testing.T) {
	prog := benchProg()
	var swDefs, thDefs []int64
	_, err := Run(prog, "main", Options{Mode: Mode32, Dispatch: DispatchSwitch,
		OnDef: func(_ *ir.Instr, v int64) { swDefs = append(swDefs, v) }})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, "main", Options{Mode: Mode32, Dispatch: DispatchThreaded,
		OnDef: func(_ *ir.Instr, v int64) { thDefs = append(thDefs, v) }})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(swDefs, thDefs) {
		t.Fatalf("OnDef streams differ: %d vs %d defs", len(swDefs), len(thDefs))
	}
}

// TestIrregularFunctionFallsBack: a function with a mid-block terminator must
// not compile to bytecode, and the mixed program still runs identically.
func TestIrregularFunctionFallsBack(t *testing.T) {
	prog := ir.NewProgram()
	b := ir.NewFunc("main")
	v := b.Const(ir.W32, 9)
	entry := b.Block()
	exit := b.NewBlock()
	b.Jmp(exit)
	// Walker semantics: a mid-block jump sets the successor but keeps
	// executing the rest of the block. The builder refuses to emit past a
	// terminator, so splice the print in by hand.
	p := b.Fn.NewInstr(ir.OpPrint)
	p.W = ir.W32
	p.Srcs[0] = v
	p.NSrcs = 1
	entry.InsertAt(len(entry.Instrs), p)
	b.SetBlock(exit)
	b.Print(ir.W32, v)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)

	if bf := compileBC(prog, prog.Func("main")); bf != nil {
		t.Fatal("compileBC accepted an irregular function")
	}
	sw, th, swErr, thErr := runBoth(t, prog, Options{Mode: Mode32})
	assertIdentical(t, "irregular", sw, th, swErr, thErr)
}

// TestModeCyclesSplit pins the ModeCycles invariant both dispatchers share.
func TestModeCyclesSplit(t *testing.T) {
	prog := stepLimitProg()
	for _, d := range []Dispatch{DispatchSwitch, DispatchThreaded} {
		res, err := Run(prog, "main", Options{
			Mode: Mode64,
			Cost: target.CostModel(ir.IA64),
			FuncMode: func(name string) Mode {
				if name == "f" {
					return Mode32
				}
				return Mode64
			},
			Dispatch: d,
		})
		if err != nil {
			t.Fatalf("dispatch %d: %v", d, err)
		}
		if res.ModeCycles[Mode32] == 0 || res.ModeCycles[Mode64] == 0 {
			t.Fatalf("dispatch %d: expected both tiers to accrue cycles, got %v", d, res.ModeCycles)
		}
		if res.ModeCycles[Mode32]+res.ModeCycles[Mode64] != res.Cycles {
			t.Fatalf("dispatch %d: mode split %v does not sum to cycles %d", d, res.ModeCycles, res.Cycles)
		}
	}
}
