package interp

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"signext/internal/ir"
)

// run executes a single-function program built by build.
func run(t *testing.T, opt Options, build func(b *ir.Builder)) (*Result, error) {
	t.Helper()
	prog := ir.NewProgram()
	prog.NGlobals = 4
	b := ir.NewFunc("main")
	build(b)
	prog.AddFunc(b.Fn)
	if err := b.Fn.Verify(); err != nil {
		t.Fatal(err)
	}
	return Run(prog, "main", opt)
}

// TestDirtyUpperBits is the core fidelity property: in Mode64 a 32-bit add
// leaves the true 64-bit sum in the register, so printing it (a
// full-register consumer) exposes the missing extension, while Mode32
// normalizes.
func TestDirtyUpperBits(t *testing.T) {
	build := func(b *ir.Builder) {
		x := b.Const(ir.W32, math.MaxInt32)
		y := b.Const(ir.W32, 1)
		s := b.Add(ir.W32, x, y)
		b.Print(ir.W32, s)
		b.Ret(ir.NoReg)
	}
	r64, err := run(t, Options{Mode: Mode64}, build)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(r64.Output) != "2147483648" {
		t.Fatalf("Mode64 should expose the dirty register: %q", r64.Output)
	}
	r32, err := run(t, Options{Mode: Mode32}, build)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(r32.Output) != "-2147483648" {
		t.Fatalf("Mode32 must wrap: %q", r32.Output)
	}
}

// TestExtRepairsRegister: the explicit extension turns the dirty register
// back into the wrapped 32-bit value, and is counted.
func TestExtRepairsRegister(t *testing.T) {
	r, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		x := b.Const(ir.W32, math.MaxInt32)
		y := b.Const(ir.W32, 1)
		s := b.Add(ir.W32, x, y)
		b.Ext(ir.W32, s)
		b.Print(ir.W32, s)
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(r.Output) != "-2147483648" {
		t.Fatalf("extension failed to repair: %q", r.Output)
	}
	if r.Ext32() != 1 || r.ExtTotal() != 1 {
		t.Fatalf("extension count: %d", r.Ext32())
	}
}

// TestWildEADetection: an array access whose index register is dirty but
// whose low 32 bits pass the bounds check is a detected miscompile.
func TestWildEADetection(t *testing.T) {
	_, err := run(t, Options{Mode: Mode64, Machine: ir.IA64}, func(b *ir.Builder) {
		n := b.Const(ir.W32, 10)
		a := b.NewArr(ir.W32, false, n)
		// idx = (2^31-1) + (2^31+3): full 2^32+2, low32 = 2.
		x := b.Const(ir.W32, math.MaxInt32)
		y := b.Const(ir.W32, math.MaxInt32)
		s := b.Add(ir.W32, x, y)
		s2 := b.Add(ir.W32, s, b.Const(ir.W32, 4))
		v := b.ArrLoad(ir.W32, false, a, s2)
		b.Print(ir.W32, v)
		b.Ret(ir.NoReg)
	})
	if !errors.Is(err, ErrWildEA) {
		t.Fatalf("want wild-EA detection, got %v", err)
	}
}

func TestBoundsCheckUsesLow32(t *testing.T) {
	// Negative low 32 bits trap as out-of-bounds (Java semantics).
	_, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		n := b.Const(ir.W32, 10)
		a := b.NewArr(ir.W32, false, n)
		idx := b.Const(ir.W32, -1)
		v := b.ArrLoad(ir.W32, false, a, idx)
		b.Print(ir.W32, v)
		b.Ret(ir.NoReg)
	})
	if !errors.Is(err, ErrBounds) {
		t.Fatalf("want bounds trap, got %v", err)
	}
}

func TestZeroExtendingLoads(t *testing.T) {
	build := func(b *ir.Builder) {
		v := b.Const(ir.W32, -5)
		b.StoreG(ir.W32, 0, v)
		l := b.LoadG(ir.W32, 0)
		// Print the raw register (requires extension to be correct; here we
		// print deliberately to observe the machine difference).
		b.Print(ir.W64, l)
		b.Ret(ir.NoReg)
	}
	ia, err := run(t, Options{Mode: Mode64, Machine: ir.IA64}, build)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(ia.Output) != "4294967291" {
		t.Fatalf("IA64 load must zero-extend: %q", ia.Output)
	}
	ppc, err := run(t, Options{Mode: Mode64, Machine: ir.PPC64}, build)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(ppc.Output) != "-5" {
		t.Fatalf("PPC64 load must sign-extend (lwa): %q", ppc.Output)
	}
}

func TestDivSemantics(t *testing.T) {
	r, err := run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		x := b.Const(ir.W32, math.MinInt32)
		y := b.Const(ir.W32, -1)
		q := b.Div(ir.W32, x, y)
		b.Print(ir.W32, q)
		r2 := b.Rem(ir.W32, b.Const(ir.W32, -7), b.Const(ir.W32, 2))
		b.Print(ir.W32, r2)
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Output != "-2147483648\n-1\n" {
		t.Fatalf("Java division semantics: %q", r.Output)
	}
	_, err = run(t, Options{Mode: Mode64}, func(b *ir.Builder) {
		q := b.Div(ir.W32, b.Const(ir.W32, 1), b.Const(ir.W32, 0))
		b.Print(ir.W32, q)
		b.Ret(ir.NoReg)
	})
	if !errors.Is(err, ErrDivZero) {
		t.Fatalf("want division trap, got %v", err)
	}
}

func TestD2IEdgeCases(t *testing.T) {
	if d2i(math.NaN()) != 0 {
		t.Error("NaN -> 0")
	}
	if d2i(1e300) != math.MaxInt32 || d2i(-1e300) != math.MinInt32 {
		t.Error("saturation")
	}
	if d2l(1e300) != math.MaxInt64 {
		t.Error("long saturation")
	}
	if d2i(-3.99) != -3 {
		t.Error("truncation toward zero")
	}
}

// Property: 32-bit shift semantics match Java (mask 31; extr-style extract
// reading only the low word).
func TestShiftProperty(t *testing.T) {
	f := func(x int32, n uint8) bool {
		prog := ir.NewProgram()
		b := ir.NewFunc("main")
		xr := b.Const(ir.W32, int64(x))
		nr := b.Const(ir.W32, int64(n))
		a := b.Shl(ir.W32, xr, nr)
		b.Ext(ir.W32, a)
		s := b.AShr(ir.W32, xr, nr)
		u := b.LShr(ir.W32, xr, nr)
		b.Ext(ir.W32, u) // lshr leaves a zero-extended register
		b.Print(ir.W32, a)
		b.Print(ir.W32, s)
		b.Print(ir.W32, u)
		b.Ret(ir.NoReg)
		prog.AddFunc(b.Fn)
		res, err := Run(prog, "main", Options{Mode: Mode64})
		if err != nil {
			return false
		}
		sh := n & 31
		want := []int64{
			int64(x << sh),
			int64(x >> sh),
			int64(int32(uint32(x) >> sh)),
		}
		lines := strings.Fields(res.Output)
		for k, w := range want {
			if lines[k] != itoa(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [24]byte
	pos := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		pos--
		buf[pos] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

func TestStepLimit(t *testing.T) {
	_, err := run(t, Options{Mode: Mode64, MaxSteps: 100}, func(b *ir.Builder) {
		loop := b.NewBlock()
		b.Jmp(loop)
		b.SetBlock(loop)
		b.Jmp(loop)
	})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want step limit, got %v", err)
	}
}

func TestProfileCollection(t *testing.T) {
	r, err := run(t, Options{Mode: Mode32, Profile: true}, func(b *ir.Builder) {
		i := b.Fn.NewReg()
		b.ConstTo(ir.W32, i, 0)
		loop, exit := b.NewBlock(), b.NewBlock()
		b.Jmp(loop)
		b.SetBlock(loop)
		b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
		b.Br(ir.W32, ir.CondLT, i, b.Const(ir.W32, 10), loop, exit)
		b.SetBlock(exit)
		b.Ret(ir.NoReg)
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, m := range r.Profile {
		for _, c := range m {
			total += c[0] + c[1]
		}
	}
	if total != 10 {
		t.Fatalf("profiled %d branch executions, want 10", total)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	prog := ir.NewProgram()
	f := ir.NewFunc("fact", ir.Param{W: ir.W32})
	n := ir.Reg(0)
	base, rec := f.NewBlock(), f.NewBlock()
	f.Br(ir.W32, ir.CondLE, n, f.Const(ir.W32, 1), base, rec)
	f.SetBlock(base)
	f.Ret(f.Const(ir.W32, 1))
	f.SetBlock(rec)
	m := f.Sub(ir.W32, n, f.Const(ir.W32, 1))
	f.Ext(ir.W32, m)
	r := f.Call("fact", ir.W32, false, m)
	out := f.Mul(ir.W32, n, r)
	f.Ext(ir.W32, out)
	f.Ret(out)
	prog.AddFunc(f.Fn)

	mn := ir.NewFunc("main")
	v := mn.Call("fact", ir.W32, false, mn.Const(ir.W32, 10))
	mn.Print(ir.W32, v)
	mn.Ret(ir.NoReg)
	prog.AddFunc(mn.Fn)

	res, err := Run(prog, "main", Options{Mode: Mode64})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(res.Output) != "3628800" {
		t.Fatalf("fact(10) = %q", res.Output)
	}
}

func TestDummyAssertion(t *testing.T) {
	_, err := run(t, Options{Mode: Mode64, CheckDummies: true}, func(b *ir.Builder) {
		x := b.Const(ir.W32, math.MaxInt32)
		s := b.Add(ir.W32, x, x) // dirty
		d := b.Fn.NewInstr(ir.OpExtDummy)
		d.W = ir.W32
		d.Dst = s
		d.Srcs[0] = s
		d.NSrcs = 1
		d.Blk = b.Block()
		b.Block().Instrs = append(b.Block().Instrs, d)
		b.Ret(ir.NoReg)
	})
	if !errors.Is(err, ErrDummy) {
		t.Fatalf("want dummy violation, got %v", err)
	}
}

// TestDivRemMinIntOverflowCorner pins the idiv/irem overflow corner in both
// interpreter modes: MinInt32 / -1 must wrap to MinInt32 with correctly
// sign-extended upper bits (Java semantics, and the sibling of the lshr
// normalization bug), not trap and not keep the dirty 64-bit quotient
// +2147483648. The 64-bit adds consume the full register, so a dirty
// quotient would change the printed values. The 64-bit corner
// MinInt64 / -1 must likewise wrap rather than fault.
func TestDivRemMinIntOverflowCorner(t *testing.T) {
	build := func(b *ir.Builder) {
		x := b.Const(ir.W32, math.MinInt32)
		y := b.Const(ir.W32, -1)
		q := b.Div(ir.W32, x, y)
		rem := b.Rem(ir.W32, x, y)
		b.Print(ir.W32, q)
		b.Print(ir.W32, rem)
		// div.32/rem.32 define sign-extended results; a full-register
		// consumer exposes any dirty upper bits.
		z := b.Const(ir.W64, 0)
		b.Print(ir.W64, b.Add(ir.W64, q, z))
		b.Print(ir.W64, b.Add(ir.W64, rem, z))
		x64 := b.Const(ir.W64, math.MinInt64)
		y64 := b.Const(ir.W64, -1)
		b.Print(ir.W64, b.Div(ir.W64, x64, y64))
		b.Print(ir.W64, b.Rem(ir.W64, x64, y64))
		b.Ret(ir.NoReg)
	}
	want := "-2147483648\n0\n-2147483648\n0\n-9223372036854775808\n0\n"
	for _, mode := range []Mode{Mode32, Mode64} {
		r, err := run(t, Options{Mode: mode}, build)
		if err != nil {
			t.Fatalf("mode %v: MinInt/-1 must wrap, not trap: %v", mode, err)
		}
		if r.Output != want {
			t.Errorf("mode %v output:\n%q\nwant:\n%q", mode, r.Output, want)
		}
	}
}
