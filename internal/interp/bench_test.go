package interp

import (
	"testing"

	"signext/internal/ir"
)

// benchProg: a tight arithmetic loop, the interpreter's hot path.
func benchProg() *ir.Program {
	prog := ir.NewProgram()
	b := ir.NewFunc("main")
	i := b.Fn.NewReg()
	s := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	b.ConstTo(ir.W32, s, 0)
	n := b.Const(ir.W32, 100000)
	one := b.Const(ir.W32, 1)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(ir.OpAdd, ir.W32, s, s, i)
	b.Ext(ir.W32, s)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, n, loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, s)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	return prog
}

func BenchmarkInterpLoop(b *testing.B) {
	prog := benchProg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, "main", Options{Mode: Mode64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpLoopWithCost(b *testing.B) {
	prog := benchProg()
	cost := func(ins *ir.Instr) int64 { return 1 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, "main", Options{Mode: Mode64, Cost: cost}); err != nil {
			b.Fatal(err)
		}
	}
}
