// Package interp executes IR programs with faithful 64-bit register
// semantics. It plays three roles in the reproduction:
//
//   - Soundness oracle: in Mode64 a W-bit operation executes as its 64-bit
//     counterpart, so the upper bits of its result are whatever the full
//     operation produced. Consumers that require sign-extended operands
//     (int→double conversion, 64-bit compares, calls, prints, effective
//     addresses) read the full register. A sign extension that was removed
//     unsoundly therefore corrupts the program output, which tests detect by
//     comparing against the unoptimized run.
//
//   - Measurement instrument: it counts dynamically executed sign-extension
//     instructions per width — the quantity reported in the paper's Tables 1
//     and 2 — and accumulates machine cycles under a pluggable cost model for
//     the performance figures.
//
//   - Profiler: it records taken/fall-through counts for every conditional
//     branch, reproducing the interpreter-collected profiles the paper feeds
//     into order determination (section 2.2).
package interp

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"signext/internal/ir"
)

// Mode selects the register semantics.
type Mode uint8

const (
	// Mode64 models a 64-bit machine: W-bit results carry dirty upper bits.
	Mode64 Mode = iota
	// Mode32 models the source ("32-bit architecture") semantics: every
	// W-bit result is normalized by sign extension. Used as the frontend
	// reference semantics.
	Mode32
)

// Profile records per-branch execution counts: function name -> branch
// instruction ID -> [taken, fall-through].
type Profile map[string]map[int]*[2]int64

// Counts bundles a branch's taken/fall-through totals.
func (p Profile) Counts(fn string, id int) (taken, fall int64) {
	if m := p[fn]; m != nil {
		if c := m[id]; c != nil {
			return c[0], c[1]
		}
	}
	return 0, 0
}

// Options configures a run.
type Options struct {
	Mode         Mode
	Machine      ir.Machine
	MaxSteps     int64 // 0 means the default limit
	Profile      bool  // collect branch profiles
	CheckDummies bool  // verify ext.dummy assertions at runtime

	// Cost is the per-instruction cycle cost model. It must be pure (a
	// function of the instruction alone): threaded dispatch evaluates it
	// once per instruction at bytecode-compile time and charges whole
	// segments at once, not in execution order.
	Cost func(*ir.Instr) int64

	MaxArrayLen int64   // language maximum array length (0 = 2^31-1)
	InitGlobals []int64 // initial integer values for global cells

	// Dispatch selects the execution engine. The default (DispatchAuto)
	// runs token-threaded bytecode and falls back to the reference tree
	// walker for options that observe individual instructions (Trace,
	// OnDef) and for irregular functions. Results are bit-identical either
	// way — the dispatch-identity property in internal/difftest enforces
	// it — so this knob exists for benchmarking and differential testing.
	Dispatch Dispatch

	// FuncMode, if set, overrides Mode per function: each call frame
	// executes under FuncMode(name). The tiered runtime uses this for
	// mixed-tier programs — functions still in the profiling interpreter
	// tier keep their 32-bit source form (Mode32) while promoted functions
	// run their compiled 64-bit form (Mode64). Cross-tier calls are sound
	// because both conventions pass sign-extended narrow arguments and
	// returns (Mode32 normalizes every def; compiled code keeps the
	// extensions the requiredness analysis demands at calls and returns).
	FuncMode func(name string) Mode

	// CountCalls records per-function entry counts in Result.Calls — the
	// invocation half of the tiered runtime's hotness metric.
	CountCalls bool

	// OnDef, if set, observes every integer definition as it executes
	// (instruction and the raw 64-bit register value written). Used by
	// tests to validate static analyses against runtime behaviour.
	OnDef func(*ir.Instr, int64)

	// Trace, if set, receives one line per executed instruction
	// ("funcname\tblock\tinstruction"), for debugging miscompiles.
	Trace func(fn string, blk *ir.Block, ins *ir.Instr)

	// TraceLimit bounds the number of Trace callbacks (0 = 100000).
	TraceLimit int64

	// MaxDepth bounds the call-frame depth. The interpreter recurses one Go
	// frame per interpreted call, so an unbounded deeply recursive program
	// would grow the Go stack without limit; past the bound the run returns
	// a structured ErrDepthExceeded instead. 0 selects DefaultMaxDepth;
	// negative means unlimited (tests only).
	MaxDepth int
}

// DefaultMaxDepth is the call-depth bound when Options.MaxDepth is 0. Deep
// enough for any real workload (each frame is one interpreted call, not one
// loop iteration), shallow enough that the Go stack stays modest.
const DefaultMaxDepth = 10000

// Result is the outcome of a run.
type Result struct {
	Output string
	Steps  int64
	Cycles int64

	// ModeCycles splits Cycles by the executing function's register
	// semantics: ModeCycles[Mode64] for compiled-form frames and
	// ModeCycles[Mode32] for source-form frames. In a tiered run this is
	// the per-tier cycle breakdown the measured interpreter penalty is
	// applied to. Invariant: ModeCycles[0]+ModeCycles[1] == Cycles.
	ModeCycles [2]int64

	Ext     [65]int64 // dynamic executed OpExt count, indexed by width
	Profile Profile
	Calls   map[string]int64 // per-function entry counts (Options.CountCalls)
}

// Ext32 returns the dynamically executed 32-bit sign extension count, the
// quantity of the paper's Tables 1 and 2.
func (r *Result) Ext32() int64 { return r.Ext[32] }

// ExtTotal returns all executed sign extensions across widths.
func (r *Result) ExtTotal() int64 { return r.Ext[8] + r.Ext[16] + r.Ext[32] }

// Runtime errors.
var (
	ErrStepLimit  = errors.New("interp: step limit exceeded")
	ErrWildEA     = errors.New("interp: corrupt effective address (dirty index register)")
	ErrBounds     = errors.New("interp: array index out of bounds")
	ErrNegSize    = errors.New("interp: negative array size")
	ErrDivZero    = errors.New("interp: division by zero")
	ErrDummy      = errors.New("interp: ext.dummy assertion violated")
	ErrNilArray   = errors.New("interp: nil array reference")
	ErrNoFunction = errors.New("interp: unknown function")
	ErrTrap       = errors.New("interp: trap executed")
	ErrDepth      = errors.New("interp: call depth exceeded")
)

type array struct {
	w  ir.Width
	fl bool
	i  []int64
	f  []float64
}

type slot struct {
	i int64
	f float64
	a *array
}

type cell struct {
	i int64
	f float64
}

const defaultMaxSteps = 1 << 31

type machine struct {
	prog       *ir.Program
	opt        Options
	mode       Mode // semantics of the currently executing function
	globals    []cell
	out        strings.Builder
	res        Result
	maxLen     int64
	depth      int   // current call-frame depth
	maxDepth   int   // resolved Options.MaxDepth (<= 0 means unlimited)
	traceLimit int64 // resolved Options.TraceLimit
	threaded   bool  // token-threaded dispatch enabled for this run

	bc        map[*ir.Func]*bcState // lazy bytecode cache (nil value = walker)
	regPool   [][]slot              // recycled register files
	framePool []*bcFrame            // recycled threaded frames
}

// Run executes prog starting at function entry (no arguments, typically
// "main") and returns the result. A non-nil error reports a runtime trap or
// a detected miscompile; Result is still returned with the state accumulated
// so far.
func Run(prog *ir.Program, entry string, opt Options) (*Result, error) {
	m := &machine{prog: prog, opt: opt, mode: opt.Mode, globals: make([]cell, prog.NGlobals)}
	for k, v := range opt.InitGlobals {
		if k < len(m.globals) {
			m.globals[k].i = v
		}
	}
	m.maxLen = opt.MaxArrayLen
	if m.maxLen == 0 {
		m.maxLen = math.MaxInt32
	}
	m.maxDepth = opt.MaxDepth
	if m.maxDepth == 0 {
		m.maxDepth = DefaultMaxDepth
	}
	if opt.MaxSteps == 0 {
		opt.MaxSteps = defaultMaxSteps
		m.opt.MaxSteps = defaultMaxSteps
	}
	m.traceLimit = opt.TraceLimit
	if m.traceLimit == 0 {
		m.traceLimit = 100000
	}
	// Trace and OnDef observe individual instruction executions, which the
	// segment-batched fast path cannot deliver; they force the walker.
	m.threaded = opt.Dispatch != DispatchSwitch && opt.Trace == nil && opt.OnDef == nil
	if opt.Profile {
		m.res.Profile = Profile{}
	}
	if opt.CountCalls {
		m.res.Calls = map[string]int64{}
	}
	fn := prog.Func(entry)
	if fn == nil {
		return &m.res, fmt.Errorf("%w: %s", ErrNoFunction, entry)
	}
	_, err := m.call(fn, nil, nil)
	m.flushBCProfiles()
	m.res.Output = m.out.String()
	return &m.res, err
}

// call sets up one frame: it resolves the function's semantic mode (tiered
// runs mix Mode32 interpreter-tier and Mode64 compiled functions in one
// program), counts the entry, picks the dispatch engine, and restores the
// caller's mode on return. The callee reads its arguments directly from the
// caller's register file (caller[argRegs[k]] lands in the callee's register
// k), avoiding a per-call argument slice.
func (m *machine) call(fn *ir.Func, caller []slot, argRegs []ir.Reg) (slot, error) {
	if m.maxDepth > 0 && m.depth >= m.maxDepth {
		return slot{}, fmt.Errorf("%w: %d frames at call to %s", ErrDepth, m.depth, fn.Name)
	}
	m.depth++
	if m.res.Calls != nil {
		m.res.Calls[fn.Name]++
	}
	prev := m.mode
	if m.opt.FuncMode != nil {
		m.mode = m.opt.FuncMode(fn.Name)
	}
	var rv slot
	var err error
	if st := m.bcFor(fn); st != nil {
		rv, err = m.execBC(st, fn, caller, argRegs)
	} else {
		rv, err = m.exec(fn, caller, argRegs)
	}
	m.mode = prev
	m.depth--
	return rv, err
}

func (m *machine) exec(fn *ir.Func, caller []slot, argRegs []ir.Reg) (slot, error) {
	regs := m.acquireRegs(fn.NReg)
	defer m.releaseRegs(regs)
	for k, r := range argRegs {
		regs[k] = caller[r]
	}
	var prof map[int]*[2]int64
	if m.res.Profile != nil {
		prof = m.res.Profile[fn.Name]
		if prof == nil {
			nbr := 0
			fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
				if ins.Op == ir.OpBr || ins.Op == ir.OpFBr {
					nbr++
				}
			})
			prof = make(map[int]*[2]int64, nbr)
			m.res.Profile[fn.Name] = prof
		}
	}
	b := fn.Entry()
	for {
		var next *ir.Block
		for _, ins := range b.Instrs {
			m.res.Steps++
			if m.res.Steps > m.opt.MaxSteps {
				return slot{}, ErrStepLimit
			}
			if m.opt.Cost != nil {
				c := m.opt.Cost(ins)
				m.res.Cycles += c
				m.res.ModeCycles[m.mode] += c
			}
			if m.opt.Trace != nil && m.res.Steps <= m.traceLimit {
				m.opt.Trace(fn.Name, b, ins)
			}
			switch ins.Op {
			case ir.OpConst:
				regs[ins.Dst].i = ins.Const
			case ir.OpFConst:
				regs[ins.Dst].f = ins.F
			case ir.OpMov:
				regs[ins.Dst] = regs[ins.Srcs[0]]
			case ir.OpFMov:
				regs[ins.Dst].f = regs[ins.Srcs[0]].f
			case ir.OpAdd:
				m.setInt(regs, ins, regs[ins.Srcs[0]].i+regs[ins.Srcs[1]].i)
			case ir.OpSub:
				m.setInt(regs, ins, regs[ins.Srcs[0]].i-regs[ins.Srcs[1]].i)
			case ir.OpMul:
				m.setInt(regs, ins, regs[ins.Srcs[0]].i*regs[ins.Srcs[1]].i)
			case ir.OpDiv, ir.OpRem:
				x, y := regs[ins.Srcs[0]].i, regs[ins.Srcs[1]].i
				// Normalize the divisor by the operation width for every
				// width: a narrow divisor whose low W bits are zero divides
				// by zero no matter what its dirty upper bits hold. SignExt
				// at W64 is the identity, covering the plain y == 0 case.
				// (The old guard special-cased only W32, so a W8/W16 divisor
				// like 0x100 escaped the trap and divided by 256.)
				if ins.W.SignExt(y) == 0 {
					return slot{}, ErrDivZero
				}
				var v int64
				if ins.Op == ir.OpDiv {
					if x == math.MinInt64 && y == -1 {
						v = math.MinInt64
					} else {
						v = x / y
					}
				} else {
					if x == math.MinInt64 && y == -1 {
						v = 0
					} else {
						v = x % y
					}
				}
				// The division routine produces a properly extended W-bit
				// result (see ir.DefOf); dirty inputs yield a wrong value.
				if ins.W != ir.W64 {
					v = ins.W.SignExt(v)
				}
				regs[ins.Dst].i = v
			case ir.OpAnd:
				m.setInt(regs, ins, regs[ins.Srcs[0]].i&regs[ins.Srcs[1]].i)
			case ir.OpOr:
				m.setInt(regs, ins, regs[ins.Srcs[0]].i|regs[ins.Srcs[1]].i)
			case ir.OpXor:
				m.setInt(regs, ins, regs[ins.Srcs[0]].i^regs[ins.Srcs[1]].i)
			case ir.OpNot:
				m.setInt(regs, ins, ^regs[ins.Srcs[0]].i)
			case ir.OpNeg:
				m.setInt(regs, ins, -regs[ins.Srcs[0]].i)
			case ir.OpShl:
				x := regs[ins.Srcs[0]].i
				n := uint(regs[ins.Srcs[1]].i) & uint(ins.W-1)
				m.setInt(regs, ins, x<<n)
			case ir.OpAShr:
				x := regs[ins.Srcs[0]].i
				n := uint(regs[ins.Srcs[1]].i) & uint(ins.W-1)
				if ins.W == ir.W64 {
					regs[ins.Dst].i = x >> n
				} else {
					// Signed bit-field extract: reads only the low W bits.
					regs[ins.Dst].i = ins.W.SignExt(x) >> n
				}
			case ir.OpLShr:
				x := regs[ins.Srcs[0]].i
				n := uint(regs[ins.Srcs[1]].i) & uint(ins.W-1)
				if ins.W == ir.W64 {
					regs[ins.Dst].i = int64(uint64(x) >> n)
				} else {
					// A zero shift of a negative value keeps bit W-1 set, so
					// the result must go through Mode32 normalization like any
					// other narrow def (found by sxfuzz: ">>> 0" printed the
					// zero-extended register on the 32-bit reference).
					m.setInt(regs, ins, int64((uint64(x)&ins.W.Mask())>>n))
				}
			case ir.OpExt:
				m.res.Ext[ins.W]++
				regs[ins.Dst].i = ins.W.SignExt(regs[ins.Srcs[0]].i)
			case ir.OpZext:
				regs[ins.Dst].i = ins.W.ZeroExt(regs[ins.Srcs[0]].i)
			case ir.OpExtDummy:
				v := regs[ins.Srcs[0]].i
				if m.opt.CheckDummies && v != ins.W.SignExt(v) {
					return slot{}, fmt.Errorf("%w: %s holds %#x", ErrDummy, ins, uint64(v))
				}
				regs[ins.Dst].i = v
			case ir.OpI2D:
				// Converts the full register; a dirty operand gives a wrong
				// double (the reason statement (10) of Figure 3 demands an
				// extension).
				regs[ins.Dst].f = float64(regs[ins.Srcs[0]].i)
			case ir.OpL2D:
				regs[ins.Dst].f = float64(regs[ins.Srcs[0]].i)
			case ir.OpD2I:
				regs[ins.Dst].i = d2i(regs[ins.Srcs[0]].f)
			case ir.OpD2L:
				regs[ins.Dst].i = d2l(regs[ins.Srcs[0]].f)
			case ir.OpFAdd:
				regs[ins.Dst].f = regs[ins.Srcs[0]].f + regs[ins.Srcs[1]].f
			case ir.OpFSub:
				regs[ins.Dst].f = regs[ins.Srcs[0]].f - regs[ins.Srcs[1]].f
			case ir.OpFMul:
				regs[ins.Dst].f = regs[ins.Srcs[0]].f * regs[ins.Srcs[1]].f
			case ir.OpFDiv:
				regs[ins.Dst].f = regs[ins.Srcs[0]].f / regs[ins.Srcs[1]].f
			case ir.OpFNeg:
				regs[ins.Dst].f = -regs[ins.Srcs[0]].f
			case ir.OpFCall:
				v, err := m.fbuiltin(ins, regs)
				if err != nil {
					return slot{}, err
				}
				regs[ins.Dst].f = v
			case ir.OpCall:
				callee := m.prog.Func(ins.Callee)
				if callee == nil {
					return slot{}, fmt.Errorf("%w: %s", ErrNoFunction, ins.Callee)
				}
				rv, err := m.call(callee, regs, ins.Args)
				if err != nil {
					return slot{}, err
				}
				if ins.HasDst() {
					regs[ins.Dst] = rv
				}
			case ir.OpRet:
				if ins.NSrcs == 1 {
					return regs[ins.Srcs[0]], nil
				}
				return slot{}, nil
			case ir.OpLoadG:
				g := m.globals[ins.Const]
				if ins.Float {
					regs[ins.Dst].f = g.f
				} else {
					regs[ins.Dst].i = m.loadExtend(ins.W, g.i)
				}
			case ir.OpStoreG:
				if ins.Float {
					m.globals[ins.Const].f = regs[ins.Srcs[0]].f
				} else {
					m.globals[ins.Const].i = int64(uint64(regs[ins.Srcs[0]].i) & ins.W.Mask())
				}
			case ir.OpNewArr:
				n := regs[ins.Srcs[0]].i
				if n < 0 || n > m.maxLen {
					return slot{}, fmt.Errorf("%w: %d", ErrNegSize, n)
				}
				if n > 1<<28 {
					return slot{}, fmt.Errorf("interp: array too large for the host: %d", n)
				}
				a := &array{w: ins.W, fl: ins.Float}
				if ins.Float {
					a.f = make([]float64, n)
				} else {
					a.i = make([]int64, n)
				}
				regs[ins.Dst].a = a
			case ir.OpArrLoad:
				a := regs[ins.Srcs[0]].a
				k, err := m.index(a, regs[ins.Srcs[1]].i)
				if err != nil {
					return slot{}, err
				}
				if a.fl {
					regs[ins.Dst].f = a.f[k]
				} else {
					regs[ins.Dst].i = m.loadExtend(ins.W, a.i[k])
				}
			case ir.OpArrStore:
				a := regs[ins.Srcs[0]].a
				k, err := m.index(a, regs[ins.Srcs[1]].i)
				if err != nil {
					return slot{}, err
				}
				if a.fl {
					a.f[k] = regs[ins.Srcs[2]].f
				} else {
					a.i[k] = int64(uint64(regs[ins.Srcs[2]].i) & ins.W.Mask())
				}
			case ir.OpArrLen:
				a := regs[ins.Srcs[0]].a
				if a == nil {
					return slot{}, ErrNilArray
				}
				if a.fl {
					regs[ins.Dst].i = int64(len(a.f))
				} else {
					regs[ins.Dst].i = int64(len(a.i))
				}
			case ir.OpBr:
				// cmp4 width semantics live in evalBr, shared with the
				// threaded dispatcher so the two engines cannot drift.
				taken := evalBr(ins.Cond, ins.W, regs[ins.Srcs[0]].i, regs[ins.Srcs[1]].i)
				if prof != nil {
					c := prof[ins.ID]
					if c == nil {
						c = new([2]int64)
						prof[ins.ID] = c
					}
					if taken {
						c[0]++
					} else {
						c[1]++
					}
				}
				if taken {
					next = ins.Blk.Succs[0]
				} else {
					next = ins.Blk.Succs[1]
				}
			case ir.OpFBr:
				taken := ins.Cond.EvalF(regs[ins.Srcs[0]].f, regs[ins.Srcs[1]].f)
				if prof != nil {
					c := prof[ins.ID]
					if c == nil {
						c = new([2]int64)
						prof[ins.ID] = c
					}
					if taken {
						c[0]++
					} else {
						c[1]++
					}
				}
				if taken {
					next = ins.Blk.Succs[0]
				} else {
					next = ins.Blk.Succs[1]
				}
			case ir.OpJmp:
				next = ins.Blk.Succs[0]
			case ir.OpTrap:
				return slot{}, ErrTrap
			case ir.OpPrint:
				// The runtime print routine consumes the full register per
				// the sign-extended argument convention.
				m.out.WriteString(strconv.FormatInt(regs[ins.Srcs[0]].i, 10))
				m.out.WriteByte('\n')
			case ir.OpFPrint:
				m.out.WriteString(strconv.FormatFloat(regs[ins.Srcs[0]].f, 'g', 12, 64))
				m.out.WriteByte('\n')
			default:
				return slot{}, fmt.Errorf("interp: cannot execute %s", ins)
			}
			if m.opt.OnDef != nil && ins.HasDst() {
				m.opt.OnDef(ins, regs[ins.Dst].i)
			}
		}
		if next == nil {
			return slot{}, fmt.Errorf("interp: block %s fell through", b)
		}
		b = next
	}
}

// setInt writes an integer result, normalizing in Mode32.
func (m *machine) setInt(regs []slot, ins *ir.Instr, v int64) {
	if m.mode == Mode32 && ins.W != ir.W64 {
		v = ins.W.SignExt(v)
	}
	regs[ins.Dst].i = v
}

// loadExtend applies the machine's memory-read extension to a W-bit cell.
func (m *machine) loadExtend(w ir.Width, raw int64) int64 {
	if w == ir.W64 {
		return raw
	}
	if m.mode == Mode32 || m.opt.Machine == ir.PPC64 {
		return w.SignExt(raw)
	}
	return w.ZeroExt(raw) // IA64: zero-extending loads
}

// index validates an array access. The bounds check compares the low 32 bits
// of the index register (cmp4.geu); the effective address is formed from the
// full register (shladd), so a dirty register that passes the bounds check is
// a detected miscompile.
func (m *machine) index(a *array, idx int64) (int64, error) {
	if a == nil {
		return 0, ErrNilArray
	}
	n := int64(len(a.i))
	if a.fl {
		n = int64(len(a.f))
	}
	low := uint32(uint64(idx))
	if uint64(low) >= uint64(n) {
		return 0, fmt.Errorf("%w: index %d (low32 of %#x), length %d", ErrBounds, int32(low), uint64(idx), n)
	}
	if m.mode == Mode32 {
		return int64(low), nil
	}
	if idx != int64(low) {
		return 0, fmt.Errorf("%w: register %#x, semantic index %d", ErrWildEA, uint64(idx), low)
	}
	return idx, nil
}

func (m *machine) fbuiltin(ins *ir.Instr, regs []slot) (float64, error) {
	arg := func(k int) float64 { return regs[ins.Args[k]].f }
	switch ins.Callee {
	case "sqrt":
		return math.Sqrt(arg(0)), nil
	case "sin":
		return math.Sin(arg(0)), nil
	case "cos":
		return math.Cos(arg(0)), nil
	case "atan":
		return math.Atan(arg(0)), nil
	case "exp":
		return math.Exp(arg(0)), nil
	case "log":
		return math.Log(arg(0)), nil
	case "fabs":
		return math.Abs(arg(0)), nil
	case "pow":
		return math.Pow(arg(0), arg(1)), nil
	case "floor":
		return math.Floor(arg(0)), nil
	}
	return 0, fmt.Errorf("interp: unknown float builtin %q", ins.Callee)
}

// d2i converts with Java semantics: NaN to zero, saturating at the int32
// range boundaries; the result is sign-extended by construction.
func d2i(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return math.MinInt32
	}
	return int64(int32(f))
}

func d2l(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}
