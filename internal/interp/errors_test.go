package interp

import (
	"errors"
	"strings"
	"testing"

	"signext/internal/ir"
)

// TestStepLimitExactBoundary: an infinite loop trips ErrStepLimit in 32-bit
// mode too (TestStepLimit covers Mode64), and a program finishing under the
// budget must not be penalized.
func TestStepLimitExactBoundary(t *testing.T) {
	loop := ir.NewProgram()
	lb := ir.NewFunc("main")
	blk := lb.NewBlock()
	lb.Jmp(blk)
	lb.SetBlock(blk)
	lb.Jmp(blk)
	loop.AddFunc(lb.Fn)
	if _, err := Run(loop, "main", Options{Mode: Mode32, MaxSteps: 1000}); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}

	prog := ir.NewProgram()
	b := ir.NewFunc("main")
	b.Print(ir.W32, b.Const(ir.W32, 7))
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	res, err := Run(prog, "main", Options{Mode: Mode32, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "7\n" {
		t.Fatalf("wrong output %q", res.Output)
	}
}

// TestCheckDummiesViolation: an ext.dummy whose register holds dirty upper
// bits is the optimizer claiming "already extended" falsely; with
// CheckDummies the interpreter must fail the run with ErrDummy.
func TestCheckDummiesViolation(t *testing.T) {
	prog := ir.NewProgram()
	prog.NGlobals = 1
	b := ir.NewFunc("main")
	// A negative 32-bit value reloaded on IA64 zero-extends: the register is
	// dirty, so the hand-planted dummy's assertion is false.
	b.StoreG(ir.W32, 0, b.Const(ir.W32, -1))
	x := b.LoadG(ir.W32, 0)
	dummy := b.Fn.NewInstr(ir.OpExtDummy)
	dummy.W = ir.W32
	dummy.Dst = x
	dummy.Srcs[0] = x
	dummy.NSrcs = 1
	b.Block().InsertAt(len(b.Block().Instrs), dummy)
	b.Print(ir.W32, x)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)

	_, err := Run(prog, "main", Options{Mode: Mode64, Machine: ir.IA64, CheckDummies: true})
	if !errors.Is(err, ErrDummy) {
		t.Fatalf("want ErrDummy, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("diagnostic lacks the dirty value: %v", err)
	}

	// Without CheckDummies the marker is a plain move and the run completes
	// (with the wrong, dirty-bit behaviour the checker exists to expose).
	if _, err := Run(prog, "main", Options{Mode: Mode64, Machine: ir.IA64}); err != nil {
		t.Fatalf("unchecked run must not trap: %v", err)
	}
}

// narrowDivProg divides 7 by a W-width divisor whose register holds div64:
// at narrow widths only the low W bits of the divisor are semantically live.
func narrowDivProg(op ir.Op, w ir.Width, div64 int64) *ir.Program {
	prog := ir.NewProgram()
	b := ir.NewFunc("main")
	x := b.Const(ir.W32, 7)
	y := b.Const(ir.W32, div64)
	var q ir.Reg
	if op == ir.OpDiv {
		q = b.Div(w, x, y)
	} else {
		q = b.Rem(w, x, y)
	}
	b.Print(ir.W32, q)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	return prog
}

// TestDivZeroNarrowWidths: a W8/W16 divisor whose low bits are zero but whose
// upper bits are dirty (e.g. 0x100 at W8) is a semantic division by zero.
// The old guard special-cased only W32, so such divisors escaped the trap and
// divided by the dirty full-register value. Regression for the width-
// normalized divisor check, pinned on both dispatchers and both modes.
func TestDivZeroNarrowWidths(t *testing.T) {
	cases := []struct {
		name  string
		op    ir.Op
		w     ir.Width
		div   int64
		trap  bool
		print string
	}{
		{"div-w8-0x100", ir.OpDiv, ir.W8, 0x100, true, ""},
		{"rem-w8-0x100", ir.OpRem, ir.W8, 0x100, true, ""},
		{"div-w16-0x10000", ir.OpDiv, ir.W16, 0x10000, true, ""},
		{"rem-w16-0x30000", ir.OpRem, ir.W16, 0x30000, true, ""},
		{"div-w32-zero", ir.OpDiv, ir.W32, 0, true, ""},
		{"div-w64-zero", ir.OpDiv, ir.W64, 0, true, ""},
		// Low bits nonzero: not a zero divisor, however dirty the top is.
		// The quotient still uses the full dirty register (7/0x103 = 0) —
		// that wrong-value behaviour is what the soundness oracle detects.
		{"div-w8-0x103", ir.OpDiv, ir.W8, 0x103, false, "0\n"},
		{"div-w16-3", ir.OpDiv, ir.W16, 3, false, "2\n"},
	}
	for _, tc := range cases {
		for _, d := range []Dispatch{DispatchSwitch, DispatchThreaded} {
			for _, mode := range []Mode{Mode32, Mode64} {
				res, err := Run(narrowDivProg(tc.op, tc.w, tc.div), "main",
					Options{Mode: mode, Dispatch: d})
				if tc.trap {
					if !errors.Is(err, ErrDivZero) {
						t.Fatalf("%s dispatch=%d mode=%d: want ErrDivZero, got %v", tc.name, d, mode, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s dispatch=%d mode=%d: unexpected trap %v", tc.name, d, mode, err)
				}
				if res.Output != tc.print {
					t.Fatalf("%s dispatch=%d mode=%d: output %q, want %q", tc.name, d, mode, res.Output, tc.print)
				}
			}
		}
	}
}

// TestCheckDummiesAcceptsCleanRegister: a truthful dummy (register freshly
// extended) must pass the assertion.
func TestCheckDummiesAcceptsCleanRegister(t *testing.T) {
	prog := ir.NewProgram()
	prog.NGlobals = 1
	b := ir.NewFunc("main")
	b.StoreG(ir.W32, 0, b.Const(ir.W32, -1))
	x := b.LoadG(ir.W32, 0)
	b.Ext(ir.W32, x)
	dummy := b.Fn.NewInstr(ir.OpExtDummy)
	dummy.W = ir.W32
	dummy.Dst = x
	dummy.Srcs[0] = x
	dummy.NSrcs = 1
	b.Block().InsertAt(len(b.Block().Instrs), dummy)
	b.Print(ir.W32, x)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)

	res, err := Run(prog, "main", Options{Mode: Mode64, Machine: ir.IA64, CheckDummies: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "-1\n" {
		t.Fatalf("wrong output %q", res.Output)
	}
}
