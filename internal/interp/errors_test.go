package interp

import (
	"errors"
	"strings"
	"testing"

	"signext/internal/ir"
)

// TestStepLimitExactBoundary: an infinite loop trips ErrStepLimit in 32-bit
// mode too (TestStepLimit covers Mode64), and a program finishing under the
// budget must not be penalized.
func TestStepLimitExactBoundary(t *testing.T) {
	loop := ir.NewProgram()
	lb := ir.NewFunc("main")
	blk := lb.NewBlock()
	lb.Jmp(blk)
	lb.SetBlock(blk)
	lb.Jmp(blk)
	loop.AddFunc(lb.Fn)
	if _, err := Run(loop, "main", Options{Mode: Mode32, MaxSteps: 1000}); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}

	prog := ir.NewProgram()
	b := ir.NewFunc("main")
	b.Print(ir.W32, b.Const(ir.W32, 7))
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	res, err := Run(prog, "main", Options{Mode: Mode32, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "7\n" {
		t.Fatalf("wrong output %q", res.Output)
	}
}

// TestCheckDummiesViolation: an ext.dummy whose register holds dirty upper
// bits is the optimizer claiming "already extended" falsely; with
// CheckDummies the interpreter must fail the run with ErrDummy.
func TestCheckDummiesViolation(t *testing.T) {
	prog := ir.NewProgram()
	prog.NGlobals = 1
	b := ir.NewFunc("main")
	// A negative 32-bit value reloaded on IA64 zero-extends: the register is
	// dirty, so the hand-planted dummy's assertion is false.
	b.StoreG(ir.W32, 0, b.Const(ir.W32, -1))
	x := b.LoadG(ir.W32, 0)
	dummy := b.Fn.NewInstr(ir.OpExtDummy)
	dummy.W = ir.W32
	dummy.Dst = x
	dummy.Srcs[0] = x
	dummy.NSrcs = 1
	b.Block().InsertAt(len(b.Block().Instrs), dummy)
	b.Print(ir.W32, x)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)

	_, err := Run(prog, "main", Options{Mode: Mode64, Machine: ir.IA64, CheckDummies: true})
	if !errors.Is(err, ErrDummy) {
		t.Fatalf("want ErrDummy, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("diagnostic lacks the dirty value: %v", err)
	}

	// Without CheckDummies the marker is a plain move and the run completes
	// (with the wrong, dirty-bit behaviour the checker exists to expose).
	if _, err := Run(prog, "main", Options{Mode: Mode64, Machine: ir.IA64}); err != nil {
		t.Fatalf("unchecked run must not trap: %v", err)
	}
}

// TestCheckDummiesAcceptsCleanRegister: a truthful dummy (register freshly
// extended) must pass the assertion.
func TestCheckDummiesAcceptsCleanRegister(t *testing.T) {
	prog := ir.NewProgram()
	prog.NGlobals = 1
	b := ir.NewFunc("main")
	b.StoreG(ir.W32, 0, b.Const(ir.W32, -1))
	x := b.LoadG(ir.W32, 0)
	b.Ext(ir.W32, x)
	dummy := b.Fn.NewInstr(ir.OpExtDummy)
	dummy.W = ir.W32
	dummy.Dst = x
	dummy.Srcs[0] = x
	dummy.NSrcs = 1
	b.Block().InsertAt(len(b.Block().Instrs), dummy)
	b.Print(ir.W32, x)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)

	res, err := Run(prog, "main", Options{Mode: Mode64, Machine: ir.IA64, CheckDummies: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "-1\n" {
		t.Fatalf("wrong output %q", res.Output)
	}
}
