package interp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"signext/internal/ir"
)

// traceProg: a short two-function program whose instruction stream is stable
// enough to pin in a golden file — a loop with narrow arithmetic, a call, and
// a print.
func traceProg() *ir.Program {
	prog := ir.NewProgram()

	f := ir.NewFunc("twice", ir.Param{W: ir.W32})
	x := f.Param(0)
	r := f.Add(ir.W32, x, x)
	f.Ext(ir.W32, r)
	f.Ret(r)
	prog.AddFunc(f.Fn)

	b := ir.NewFunc("main")
	i := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	lim := b.Const(ir.W32, 3)
	one := b.Const(ir.W32, 1)
	loop, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Br(ir.W32, ir.CondLT, i, lim, body, exit)
	b.SetBlock(body)
	d := b.Call("twice", ir.W32, false, i)
	b.Print(ir.W32, d)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.Ext(ir.W32, i)
	b.Jmp(loop)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	return prog
}

func collectTrace(t *testing.T, opt Options) []string {
	t.Helper()
	var lines []string
	opt.Trace = func(fn string, blk *ir.Block, ins *ir.Instr) {
		lines = append(lines, fmt.Sprintf("%s\t%s\t%s", fn, blk, ins))
	}
	if _, err := Run(traceProg(), "main", opt); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestTraceGolden pins the full trace of traceProg against a checked-in
// golden file, so trace format or interleaving drift is caught. Run with
// -update to regenerate.
func TestTraceGolden(t *testing.T) {
	lines := collectTrace(t, Options{Mode: Mode32})
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "trace_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("trace drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceLimitResolvedOnce: the limit is resolved once at machine
// construction, and truncation is exact — exactly min(limit, steps) lines,
// regardless of the requested dispatcher (Trace forces the walker, so the
// trace is identical under both settings).
func TestTraceLimitResolvedOnce(t *testing.T) {
	full := collectTrace(t, Options{Mode: Mode32})
	if len(full) < 10 {
		t.Fatalf("traceProg too short to exercise truncation: %d lines", len(full))
	}
	for _, d := range []Dispatch{DispatchSwitch, DispatchThreaded} {
		for _, lim := range []int64{1, 5, int64(len(full)) - 1, int64(len(full)), int64(len(full)) + 7} {
			lines := collectTrace(t, Options{Mode: Mode32, TraceLimit: lim, Dispatch: d})
			want := int(lim)
			if want > len(full) {
				want = len(full)
			}
			if len(lines) != want {
				t.Errorf("dispatch=%d limit=%d: got %d trace lines, want %d", d, lim, len(lines), want)
			}
			for i, l := range lines {
				if l != full[i] {
					t.Errorf("dispatch=%d limit=%d: line %d diverged: %q vs %q", d, lim, i, l, full[i])
					break
				}
			}
		}
	}
}
