package interp

import (
	"math"
	"strings"
	"testing"

	"signext/internal/ir"
)

// twoTierProg builds a caller/callee pair where the callee's narrow result
// is observable: main prints callee's W32 return value after an overflow.
// The callee exists in two forms sharing a program: "wrapped" normalizes
// its narrow defs explicitly (a compiled 64-bit form with its extension
// kept), "raw" relies on the executing mode to normalize (32-bit form).
func twoTierProg() *ir.Program {
	prog := ir.NewProgram()

	wrapped := ir.NewFunc("wrapped")
	{
		x := wrapped.Const(ir.W32, math.MaxInt32)
		y := wrapped.Const(ir.W32, 1)
		s := wrapped.Add(ir.W32, x, y)
		wrapped.Ext(ir.W32, s) // the extension a compiled form carries at the return
		wrapped.Ret(s)
	}
	wrapped.Fn.RetW = ir.W32
	prog.AddFunc(wrapped.Fn)

	raw := ir.NewFunc("raw")
	{
		x := raw.Const(ir.W32, math.MaxInt32)
		y := raw.Const(ir.W32, 1)
		s := raw.Add(ir.W32, x, y)
		raw.Ret(s)
	}
	raw.Fn.RetW = ir.W32
	prog.AddFunc(raw.Fn)

	main := ir.NewFunc("main")
	{
		a := main.Call("wrapped", ir.W32, false)
		main.Print(ir.W32, a)
		b := main.Call("raw", ir.W32, false)
		main.Print(ir.W32, b)
		main.Ret(ir.NoReg)
	}
	prog.AddFunc(main.Fn)
	return prog
}

// TestFuncModeMixedTiers pins the mixed-tier contract: per-function modes
// resolve independently per frame, and a Mode32 frame normalizes narrow defs
// even when its caller runs Mode64 (and vice versa).
func TestFuncModeMixedTiers(t *testing.T) {
	prog := twoTierProg()

	// wrapped runs as compiled code (Mode64, extension does the repair);
	// raw stays in the interpreter tier (Mode32 normalization).
	modes := map[string]Mode{"main": Mode64, "wrapped": Mode64, "raw": Mode32}
	r, err := Run(prog, "main", Options{
		Mode:     Mode64,
		FuncMode: func(name string) Mode { return modes[name] },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "-2147483648\n-2147483648\n"
	if r.Output != want {
		t.Fatalf("mixed-tier output %q, want %q", r.Output, want)
	}

	// Control: running raw under Mode64 (as if promoted without compilation)
	// exposes the dirty register — proving FuncMode really switched modes.
	r, err = Run(prog, "main", Options{
		Mode:     Mode64,
		FuncMode: func(name string) Mode { return Mode64 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Output, "2147483648\n") || strings.Count(r.Output, "-2147483648") != 1 {
		t.Fatalf("all-Mode64 run should expose raw's dirty register: %q", r.Output)
	}
}

// TestFuncModeRestoredAfterReturn: after a callee with a different mode
// returns, the caller's own narrow defs normalize under the caller's mode.
func TestFuncModeRestoredAfterReturn(t *testing.T) {
	prog := ir.NewProgram()

	callee := ir.NewFunc("callee")
	callee.Ret(ir.NoReg)
	prog.AddFunc(callee.Fn)

	main := ir.NewFunc("main")
	{
		main.Call("callee", 0, false)
		x := main.Const(ir.W32, math.MaxInt32)
		y := main.Const(ir.W32, 1)
		s := main.Add(ir.W32, x, y) // after the call: must use main's Mode32
		main.Print(ir.W32, s)
		main.Ret(ir.NoReg)
	}
	prog.AddFunc(main.Fn)

	modes := map[string]Mode{"main": Mode32, "callee": Mode64}
	r, err := Run(prog, "main", Options{
		Mode:     Mode64, // base mode differs from main's on purpose
		FuncMode: func(name string) Mode { return modes[name] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(r.Output) != "-2147483648" {
		t.Fatalf("caller mode not restored after callee returned: %q", r.Output)
	}
}

// TestCountCalls: entry counts cover every frame, including recursive and
// repeated calls, and stay nil when not requested.
func TestCountCalls(t *testing.T) {
	prog := ir.NewProgram()

	callee := ir.NewFunc("callee")
	callee.Ret(ir.NoReg)
	prog.AddFunc(callee.Fn)

	main := ir.NewFunc("main")
	{
		main.Call("callee", 0, false)
		main.Call("callee", 0, false)
		main.Call("callee", 0, false)
		main.Ret(ir.NoReg)
	}
	prog.AddFunc(main.Fn)

	r, err := Run(prog, "main", Options{Mode: Mode32, CountCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Calls["main"] != 1 || r.Calls["callee"] != 3 {
		t.Fatalf("Calls = %v, want main:1 callee:3", r.Calls)
	}

	r, err = Run(prog, "main", Options{Mode: Mode32})
	if err != nil {
		t.Fatal(err)
	}
	if r.Calls != nil {
		t.Fatalf("Calls recorded without CountCalls: %v", r.Calls)
	}
}
