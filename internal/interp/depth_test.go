package interp

import (
	"errors"
	"strings"
	"testing"

	"signext/internal/minijava"
)

// recursiveSrc recurses n frames deep before returning. No loop bound
// protects it: termination relies entirely on the argument, which is the
// shape a hostile or buggy input uses to grow the interpreter's Go stack.
const recursiveSrc = `
int down(int n) {
	if (n <= 0) return 0;
	return down(n - 1) + 1;
}
void main() {
	print(down(30000));
}`

func TestMaxDepthStructuredError(t *testing.T) {
	cu, err := minijava.Compile(recursiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Default bound: the 30000-frame recursion must come back as ErrDepth —
	// a structured error, not a stack blowout.
	res, err := Run(cu.Prog, "main", Options{Mode: Mode32})
	if !errors.Is(err, ErrDepth) {
		t.Fatalf("err = %v, want ErrDepth", err)
	}
	if res == nil {
		t.Fatal("result must carry the partial run")
	}
	if !strings.Contains(err.Error(), "down") {
		t.Errorf("error %q does not name the function", err)
	}

	// An explicit bound is honored exactly: depth 40 lets a 30-deep
	// recursion finish…
	shallow := `
int down(int n) {
	if (n <= 0) return 0;
	return down(n - 1) + 1;
}
void main() {
	print(down(30));
}`
	cu2, err := minijava.Compile(shallow)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(cu2.Prog, "main", Options{Mode: Mode32, MaxDepth: 40})
	if err != nil || out.Output != "30\n" {
		t.Fatalf("depth-40 run = (%q, %v), want (30, nil)", out.Output, err)
	}
	// …and depth 10 trips it.
	if _, err := Run(cu2.Prog, "main", Options{Mode: Mode32, MaxDepth: 10}); !errors.Is(err, ErrDepth) {
		t.Fatalf("depth-10 run err = %v, want ErrDepth", err)
	}
}

// TestMaxDepthDeterministicAcrossModes: the bound trips at the same frame in
// 32-bit and 64-bit mode, so differential runs see identical traps.
func TestMaxDepthDeterministicAcrossModes(t *testing.T) {
	cu, err := minijava.Compile(recursiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err32 := Run(cu.Prog, "main", Options{Mode: Mode32, MaxDepth: 100})
	_, err64 := Run(cu.Prog.Clone(), "main", Options{Mode: Mode32, MaxDepth: 100})
	if err32 == nil || err64 == nil || err32.Error() != err64.Error() {
		t.Fatalf("depth traps differ: %v vs %v", err32, err64)
	}
}
