// Token-threaded bytecode dispatch. The tree-walking interpreter in interp.go
// is the reference semantics; this file compiles each regular ir.Func into a
// flat code array whose instructions carry their handler as a function
// pointer (token threading), with superinstructions fused for the hot
// adjacent pairs progen and the MiniJava frontend emit (const+add,
// const+aload, arith+ext, load+ext, ext/add/sub+br, add+jmp).
//
// Bookkeeping is hoisted out of the instruction loop: a segment is a maximal
// run of instructions inside one block that contains no call except as its
// last instruction. A tokSeg pseudo-instruction at the head of each segment
// adds the whole segment's step count, cycle cost, and sign-extension counts
// up front, so plain handlers execute with zero per-step accounting. That
// optimistic accounting is exact whenever the segment runs to completion,
// which is every execution except two rare cases:
//
//   - a handler traps mid-segment (div-by-zero, bounds, dummy violation, ...):
//     the dispatch loop rolls the accounting back to the segment entry and
//     re-adds the executed prefix, reproducing the walker's totals exactly;
//   - the step limit would be hit inside the segment: tokSeg switches to a
//     "careful" unfused shadow array that accounts per instruction, and which
//     provably returns ErrStepLimit (or an earlier trap) before reaching the
//     segment's terminator, at exactly the walker's step count.
//
// Branch profiles are kept in dense per-function counter arrays and
// materialized into Result.Profile maps when the run finishes.
//
// Functions with a terminator anywhere but block-last position (irregular
// after aggressive transforms) do not compile; callers fall back to the tree
// walker. Dispatch choice is per function, so mixed programs stay exact.
package interp

import (
	"fmt"
	"strconv"

	"signext/internal/ir"
)

// Dispatch selects the interpreter's dispatch strategy.
type Dispatch uint8

const (
	// DispatchAuto uses threaded dispatch unless an option requires
	// per-instruction hooks (Trace, OnDef), then falls back to the walker.
	DispatchAuto Dispatch = iota
	// DispatchSwitch forces the reference tree-walking interpreter.
	DispatchSwitch
	// DispatchThreaded asks for threaded dispatch explicitly. Trace and
	// OnDef still force the walker: they observe individual executions.
	DispatchThreaded
)

type bcHandler func(fr *bcFrame, in *bcIns, pc int) int

// bcTok identifies the encoding for tests and debugging; behaviour lives in
// the handler pointer.
type bcTok uint8

const (
	tokSeg bcTok = iota
	tokConst
	tokFConst
	tokMov
	tokFMov
	tokAdd
	tokSub
	tokMul
	tokDiv
	tokRem
	tokAnd
	tokOr
	tokXor
	tokNot
	tokNeg
	tokShl
	tokAShr
	tokLShr
	tokExt
	tokZext
	tokExtDummy
	tokI2D
	tokL2D
	tokD2I
	tokD2L
	tokFAdd
	tokFSub
	tokFMul
	tokFDiv
	tokFNeg
	tokFCall
	tokCall
	tokRet
	tokLoadG
	tokStoreG
	tokNewArr
	tokArrLoad
	tokArrStore
	tokArrLen
	tokBr
	tokFBr
	tokJmp
	tokTrap
	tokPrint
	tokFPrint
	tokBad
	tokFellThrough
	// Superinstructions (fused pairs/triples, fast array only).
	tokConstAdd
	tokAddExt
	tokSubExt
	tokMulExt
	tokLoadGExt
	tokArrLoadExt
	tokExtBr
	tokAddBr
	tokAddExtBr
	tokSubBr
	tokAddJmp
	tokConstALoad
)

// bcIns is one flat-code instruction. Field use varies by token:
//
//	w/w2/w3: widths of the 1st/2nd/3rd fused constituent
//	dst/a/b/c: register operands (c = secondary dst: const dst, ext dst)
//	x/y: branch compare operands
//	t0/t1: taken/fall-through targets; seg index (tokSeg); call index (tokCall)
//	imm: const value, global index, block ID (tokFellThrough)
//	orig: index into bcFunc.origs for error formatting and rollback
//	prof: dense branch-counter index
//	extW: width of an OpExt encoding (careful-array accounting)
type bcIns struct {
	h    bcHandler
	tok  bcTok
	w    ir.Width
	w2   ir.Width
	w3   ir.Width
	cond ir.Cond
	fl   bool
	extW ir.Width
	dst  ir.Reg
	a    ir.Reg
	b    ir.Reg
	c    ir.Reg
	x    ir.Reg
	y    ir.Reg
	t0   int32
	t1   int32
	orig int32
	prof int32
	imm  int64
	fimm float64
}

type extCount struct {
	w ir.Width
	n int64
}

// bcSeg is the accounting summary of one segment.
type bcSeg struct {
	steps     int64
	exts      []extCount
	origStart int32
	origEnd   int32 // exclusive
}

// bcFunc is the compiled form of one function (per machine, per run).
type bcFunc struct {
	fn       *ir.Func
	fast     []bcIns // fused code with tokSeg accounting heads
	careful  []bcIns // unfused, 1:1 with origs, per-instruction accounting
	segs     []bcSeg
	origs    []*ir.Instr
	callees  []*ir.Func // nil if unresolved at compile time
	argLists [][]ir.Reg
	names    []string // callee names (error messages for unresolved)
	brIDs    []int    // dense branch index -> instruction ID
}

// bcState is bcFunc plus per-run state that depends on Options.
type bcState struct {
	bf      *bcFunc
	cost    []int64      // per orig index; nil when Options.Cost is nil
	segCost []int64      // per segment
	prof    [][2]int64   // dense branch counters; nil when !Options.Profile
	entered bool         // function executed at least once this run
}

// bcFrame is one threaded call frame. Pooled on the machine: it escapes into
// handler calls, so a fresh allocation per call would defeat the
// allocation-churn fix.
type bcFrame struct {
	m     *machine
	st    *bcState
	regs  []slot
	norm  bool // Mode32: narrow defs normalize
	sload bool // memory loads sign-extend (Mode32 or PPC64)

	segIdx     int32
	baseSteps  int64
	baseCycles int64
	baseModeC  int64

	ret      slot
	err      error
	trapOrig int32
	exact    bool // err's accounting is already exact; skip rollback
}

// trap records a mid-segment runtime error; the dispatch loop rolls the
// optimistic segment accounting back to this instruction.
func (fr *bcFrame) trap(in *bcIns, err error) int {
	fr.err = err
	fr.trapOrig = in.orig
	return -1
}

// evalBr evaluates a conditional branch with the walker's width semantics:
// 64-bit compares read full registers; narrow compares (cmp4) read only the
// low W bits, zero-extended for unsigned conditions, sign-extended otherwise.
func evalBr(cond ir.Cond, w ir.Width, x, y int64) bool {
	if w == ir.W64 {
		return cond.Eval(x, y)
	}
	switch cond {
	case ir.CondULT, ir.CondULE, ir.CondUGT, ir.CondUGE:
		return cond.Eval(w.ZeroExt(x), w.ZeroExt(y))
	}
	return cond.Eval(w.SignExt(x), w.SignExt(y))
}

// ---------------------------------------------------------------------------
// Execution

func (m *machine) execBC(st *bcState, fn *ir.Func, caller []slot, argRegs []ir.Reg) (slot, error) {
	st.entered = true
	regs := m.acquireRegs(fn.NReg)
	for k, r := range argRegs {
		regs[k] = caller[r]
	}
	fr := m.acquireFrame()
	fr.m = m
	fr.st = st
	fr.regs = regs
	fr.norm = m.mode == Mode32
	fr.sload = m.mode == Mode32 || m.opt.Machine == ir.PPC64

	code := st.bf.fast
	pc := 0
	for pc >= 0 {
		in := &code[pc]
		pc = in.h(fr, in, pc)
	}
	ret, err := fr.ret, fr.err
	if err != nil && !fr.exact {
		m.bcRollback(fr)
	}
	m.releaseFrame(fr)
	m.releaseRegs(regs)
	return ret, err
}

// bcRollback undoes a segment's optimistic accounting after a mid-segment
// trap and re-adds the executed prefix, reproducing the walker's totals: the
// trapping instruction's step and cost are charged (the walker charges both
// before executing), its sign extension is not (OpExt never traps).
func (m *machine) bcRollback(fr *bcFrame) {
	st := fr.st
	seg := &st.bf.segs[fr.segIdx]
	k := fr.trapOrig
	m.res.Steps = fr.baseSteps + int64(k-seg.origStart) + 1
	if st.cost != nil {
		sum := int64(0)
		for i := seg.origStart; i <= k; i++ {
			sum += st.cost[i]
		}
		m.res.Cycles = fr.baseCycles + sum
		m.res.ModeCycles[m.mode] = fr.baseModeC + sum
	}
	for _, e := range seg.exts {
		m.res.Ext[e.w] -= e.n
	}
	for i := seg.origStart; i < k; i++ {
		if ins := st.bf.origs[i]; ins.Op == ir.OpExt {
			m.res.Ext[ins.W]++
		}
	}
}

func hSeg(fr *bcFrame, in *bcIns, pc int) int {
	m := fr.m
	seg := &fr.st.bf.segs[in.t0]
	if m.res.Steps+seg.steps > m.opt.MaxSteps {
		return fr.runCareful(seg)
	}
	fr.segIdx = in.t0
	fr.baseSteps = m.res.Steps
	m.res.Steps += seg.steps
	if fr.st.cost != nil {
		fr.baseCycles = m.res.Cycles
		fr.baseModeC = m.res.ModeCycles[m.mode]
		c := fr.st.segCost[in.t0]
		m.res.Cycles += c
		m.res.ModeCycles[m.mode] += c
	}
	for _, e := range seg.exts {
		m.res.Ext[e.w] += e.n
	}
	return pc + 1
}

// runCareful executes a segment one instruction at a time with walker-order
// accounting (step, limit check, cost, execute). It is entered only when the
// step limit falls inside the segment, so it always returns ErrStepLimit (or
// an earlier trap) before reaching the segment's final instruction's effect:
// the limit check precedes execution, hence no terminator, call, or return
// ever runs here and the careful array's branch targets are never read.
func (fr *bcFrame) runCareful(seg *bcSeg) int {
	m := fr.m
	fr.exact = true
	code := fr.st.bf.careful
	for k := seg.origStart; k < seg.origEnd; k++ {
		in := &code[k]
		m.res.Steps++
		if m.res.Steps > m.opt.MaxSteps {
			fr.err = ErrStepLimit
			return -1
		}
		if fr.st.cost != nil {
			c := fr.st.cost[k]
			m.res.Cycles += c
			m.res.ModeCycles[m.mode] += c
		}
		if in.extW != 0 {
			m.res.Ext[in.extW]++
		}
		in.h(fr, in, int(k))
		if fr.err != nil {
			return -1
		}
	}
	// Unreachable when entered correctly; fail closed rather than continue
	// with skewed accounting.
	fr.err = ErrStepLimit
	return -1
}

// ---------------------------------------------------------------------------
// Plain handlers

func hConst(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].i = in.imm
	return pc + 1
}

func hFConst(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = in.fimm
	return pc + 1
}

func hMov(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst] = fr.regs[in.a]
	return pc + 1
}

func hFMov(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = fr.regs[in.a].f
	return pc + 1
}

func hAdd(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i + regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func hSub(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i - regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func hMul(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i * regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func divRem(fr *bcFrame, in *bcIns, rem bool) (int64, bool) {
	regs := fr.regs
	x, y := regs[in.a].i, regs[in.b].i
	// Normalize the divisor by the operation width for every width: a narrow
	// divisor whose low bits are zero divides by zero no matter what its
	// dirty upper bits hold. (SignExt at W64 is the identity, so this also
	// covers the plain y == 0 case.)
	if in.w.SignExt(y) == 0 {
		return 0, false
	}
	var v int64
	if rem {
		if x == minInt64 && y == -1 {
			v = 0
		} else {
			v = x % y
		}
	} else {
		if x == minInt64 && y == -1 {
			v = minInt64
		} else {
			v = x / y
		}
	}
	if in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	return v, true
}

func hDiv(fr *bcFrame, in *bcIns, pc int) int {
	v, ok := divRem(fr, in, false)
	if !ok {
		return fr.trap(in, ErrDivZero)
	}
	fr.regs[in.dst].i = v
	return pc + 1
}

func hRem(fr *bcFrame, in *bcIns, pc int) int {
	v, ok := divRem(fr, in, true)
	if !ok {
		return fr.trap(in, ErrDivZero)
	}
	fr.regs[in.dst].i = v
	return pc + 1
}

func hAnd(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i & regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func hOr(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i | regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func hXor(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i ^ regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func hNot(fr *bcFrame, in *bcIns, pc int) int {
	v := ^fr.regs[in.a].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	fr.regs[in.dst].i = v
	return pc + 1
}

func hNeg(fr *bcFrame, in *bcIns, pc int) int {
	v := -fr.regs[in.a].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	fr.regs[in.dst].i = v
	return pc + 1
}

func hShl(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	n := uint(regs[in.b].i) & uint(in.w-1)
	v := regs[in.a].i << n
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func hAShr(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	x := regs[in.a].i
	n := uint(regs[in.b].i) & uint(in.w-1)
	if in.w == ir.W64 {
		regs[in.dst].i = x >> n
	} else {
		regs[in.dst].i = in.w.SignExt(x) >> n
	}
	return pc + 1
}

func hLShr(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	x := regs[in.a].i
	n := uint(regs[in.b].i) & uint(in.w-1)
	if in.w == ir.W64 {
		regs[in.dst].i = int64(uint64(x) >> n)
	} else {
		v := int64((uint64(x) & in.w.Mask()) >> n)
		if fr.norm {
			v = in.w.SignExt(v)
		}
		regs[in.dst].i = v
	}
	return pc + 1
}

func hExt(fr *bcFrame, in *bcIns, pc int) int {
	// The execution count lives in the segment totals (or the careful loop);
	// the handler must not bump Result.Ext.
	fr.regs[in.dst].i = in.w.SignExt(fr.regs[in.a].i)
	return pc + 1
}

func hZext(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].i = in.w.ZeroExt(fr.regs[in.a].i)
	return pc + 1
}

func hExtDummy(fr *bcFrame, in *bcIns, pc int) int {
	v := fr.regs[in.a].i
	if fr.m.opt.CheckDummies && v != in.w.SignExt(v) {
		return fr.trap(in, fmt.Errorf("%w: %s holds %#x", ErrDummy, fr.st.bf.origs[in.orig], uint64(v)))
	}
	fr.regs[in.dst].i = v
	return pc + 1
}

func hI2D(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = float64(fr.regs[in.a].i)
	return pc + 1
}

func hD2I(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].i = d2i(fr.regs[in.a].f)
	return pc + 1
}

func hD2L(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].i = d2l(fr.regs[in.a].f)
	return pc + 1
}

func hFAdd(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = fr.regs[in.a].f + fr.regs[in.b].f
	return pc + 1
}

func hFSub(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = fr.regs[in.a].f - fr.regs[in.b].f
	return pc + 1
}

func hFMul(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = fr.regs[in.a].f * fr.regs[in.b].f
	return pc + 1
}

func hFDiv(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = fr.regs[in.a].f / fr.regs[in.b].f
	return pc + 1
}

func hFNeg(fr *bcFrame, in *bcIns, pc int) int {
	fr.regs[in.dst].f = -fr.regs[in.a].f
	return pc + 1
}

func hFCall(fr *bcFrame, in *bcIns, pc int) int {
	v, err := fr.m.fbuiltin(fr.st.bf.origs[in.orig], fr.regs)
	if err != nil {
		return fr.trap(in, err)
	}
	fr.regs[in.dst].f = v
	return pc + 1
}

func hCall(fr *bcFrame, in *bcIns, pc int) int {
	bf := fr.st.bf
	callee := bf.callees[in.t0]
	if callee == nil {
		// The call is its segment's last instruction, so the optimistic
		// accounting (which charges the call's own step and cost, exactly as
		// the walker does before erroring) is already exact.
		fr.err = fmt.Errorf("%w: %s", ErrNoFunction, bf.names[in.t0])
		fr.exact = true
		return -1
	}
	rv, err := fr.m.call(callee, fr.regs, bf.argLists[in.t0])
	if err != nil {
		fr.err = err
		fr.exact = true
		return -1
	}
	if in.dst != ir.NoReg {
		fr.regs[in.dst] = rv
	}
	return pc + 1
}

func hRet(fr *bcFrame, in *bcIns, pc int) int {
	if in.a != ir.NoReg {
		fr.ret = fr.regs[in.a]
	}
	return -1
}

func hLoadG(fr *bcFrame, in *bcIns, pc int) int {
	g := fr.m.globals[in.imm]
	if in.fl {
		fr.regs[in.dst].f = g.f
	} else {
		fr.regs[in.dst].i = bcLoadExtend(fr, in.w, g.i)
	}
	return pc + 1
}

func bcLoadExtend(fr *bcFrame, w ir.Width, raw int64) int64 {
	if w == ir.W64 {
		return raw
	}
	if fr.sload {
		return w.SignExt(raw)
	}
	return w.ZeroExt(raw)
}

func hStoreG(fr *bcFrame, in *bcIns, pc int) int {
	if in.fl {
		fr.m.globals[in.imm].f = fr.regs[in.a].f
	} else {
		fr.m.globals[in.imm].i = int64(uint64(fr.regs[in.a].i) & in.w.Mask())
	}
	return pc + 1
}

func hNewArr(fr *bcFrame, in *bcIns, pc int) int {
	n := fr.regs[in.a].i
	if n < 0 || n > fr.m.maxLen {
		return fr.trap(in, fmt.Errorf("%w: %d", ErrNegSize, n))
	}
	if n > 1<<28 {
		return fr.trap(in, fmt.Errorf("interp: array too large for the host: %d", n))
	}
	a := &array{w: in.w, fl: in.fl}
	if in.fl {
		a.f = make([]float64, n)
	} else {
		a.i = make([]int64, n)
	}
	fr.regs[in.dst].a = a
	return pc + 1
}

// bcIndex mirrors machine.index with the frame's cached mode.
func (fr *bcFrame) bcIndex(a *array, idx int64) (int64, error) {
	if a == nil {
		return 0, ErrNilArray
	}
	n := int64(len(a.i))
	if a.fl {
		n = int64(len(a.f))
	}
	low := uint32(uint64(idx))
	if uint64(low) >= uint64(n) {
		return 0, fmt.Errorf("%w: index %d (low32 of %#x), length %d", ErrBounds, int32(low), uint64(idx), n)
	}
	if fr.norm {
		return int64(low), nil
	}
	if idx != int64(low) {
		return 0, fmt.Errorf("%w: register %#x, semantic index %d", ErrWildEA, uint64(idx), low)
	}
	return idx, nil
}

func hArrLoad(fr *bcFrame, in *bcIns, pc int) int {
	a := fr.regs[in.a].a
	k, err := fr.bcIndex(a, fr.regs[in.b].i)
	if err != nil {
		return fr.trap(in, err)
	}
	if a.fl {
		fr.regs[in.dst].f = a.f[k]
	} else {
		fr.regs[in.dst].i = bcLoadExtend(fr, in.w, a.i[k])
	}
	return pc + 1
}

func hArrStore(fr *bcFrame, in *bcIns, pc int) int {
	a := fr.regs[in.a].a
	k, err := fr.bcIndex(a, fr.regs[in.b].i)
	if err != nil {
		return fr.trap(in, err)
	}
	if a.fl {
		a.f[k] = fr.regs[in.c].f
	} else {
		a.i[k] = int64(uint64(fr.regs[in.c].i) & in.w.Mask())
	}
	return pc + 1
}

func hArrLen(fr *bcFrame, in *bcIns, pc int) int {
	a := fr.regs[in.a].a
	if a == nil {
		return fr.trap(in, ErrNilArray)
	}
	if a.fl {
		fr.regs[in.dst].i = int64(len(a.f))
	} else {
		fr.regs[in.dst].i = int64(len(a.i))
	}
	return pc + 1
}

func (fr *bcFrame) count(in *bcIns, taken bool) {
	if fr.st.prof != nil {
		if taken {
			fr.st.prof[in.prof][0]++
		} else {
			fr.st.prof[in.prof][1]++
		}
	}
}

func hBr(fr *bcFrame, in *bcIns, pc int) int {
	taken := evalBr(in.cond, in.w, fr.regs[in.x].i, fr.regs[in.y].i)
	fr.count(in, taken)
	if taken {
		return int(in.t0)
	}
	return int(in.t1)
}

func hFBr(fr *bcFrame, in *bcIns, pc int) int {
	taken := in.cond.EvalF(fr.regs[in.x].f, fr.regs[in.y].f)
	fr.count(in, taken)
	if taken {
		return int(in.t0)
	}
	return int(in.t1)
}

func hJmp(fr *bcFrame, in *bcIns, pc int) int {
	return int(in.t0)
}

func hTrap(fr *bcFrame, in *bcIns, pc int) int {
	// Trap is a terminator, hence segment-last: the optimistic accounting
	// already charged exactly its step and cost, as the walker does.
	fr.err = ErrTrap
	fr.exact = true
	return -1
}

func hPrint(fr *bcFrame, in *bcIns, pc int) int {
	m := fr.m
	m.out.WriteString(strconv.FormatInt(fr.regs[in.a].i, 10))
	m.out.WriteByte('\n')
	return pc + 1
}

func hFPrint(fr *bcFrame, in *bcIns, pc int) int {
	m := fr.m
	m.out.WriteString(strconv.FormatFloat(fr.regs[in.a].f, 'g', 12, 64))
	m.out.WriteByte('\n')
	return pc + 1
}

func hBad(fr *bcFrame, in *bcIns, pc int) int {
	return fr.trap(in, fmt.Errorf("interp: cannot execute %s", fr.st.bf.origs[in.orig]))
}

func hFellThrough(fr *bcFrame, in *bcIns, pc int) int {
	fr.err = fmt.Errorf("interp: block b%d fell through", in.imm)
	fr.exact = true
	return -1
}

// ---------------------------------------------------------------------------
// Superinstruction handlers. Each replays its constituents sequentially with
// the exact single-op semantics (including Mode32 normalization between
// them), saving only the dispatch.

func hConstAdd(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	regs[in.c].i = in.imm
	v := regs[in.a].i + regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	return pc + 1
}

func fusedArithExt(fr *bcFrame, in *bcIns, v int64) {
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	fr.regs[in.dst].i = v
	fr.regs[in.c].i = in.w2.SignExt(v)
}

func hAddExt(fr *bcFrame, in *bcIns, pc int) int {
	fusedArithExt(fr, in, fr.regs[in.a].i+fr.regs[in.b].i)
	return pc + 1
}

func hSubExt(fr *bcFrame, in *bcIns, pc int) int {
	fusedArithExt(fr, in, fr.regs[in.a].i-fr.regs[in.b].i)
	return pc + 1
}

func hMulExt(fr *bcFrame, in *bcIns, pc int) int {
	fusedArithExt(fr, in, fr.regs[in.a].i*fr.regs[in.b].i)
	return pc + 1
}

func hLoadGExt(fr *bcFrame, in *bcIns, pc int) int {
	v := bcLoadExtend(fr, in.w, fr.m.globals[in.imm].i)
	fr.regs[in.dst].i = v
	fr.regs[in.c].i = in.w2.SignExt(v)
	return pc + 1
}

func hArrLoadExt(fr *bcFrame, in *bcIns, pc int) int {
	a := fr.regs[in.a].a
	k, err := fr.bcIndex(a, fr.regs[in.b].i)
	if err != nil {
		return fr.trap(in, err)
	}
	v := bcLoadExtend(fr, in.w, a.i[k])
	fr.regs[in.dst].i = v
	fr.regs[in.c].i = in.w2.SignExt(v)
	return pc + 1
}

func hExtBr(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	regs[in.dst].i = in.w.SignExt(regs[in.a].i)
	taken := evalBr(in.cond, in.w2, regs[in.x].i, regs[in.y].i)
	fr.count(in, taken)
	if taken {
		return int(in.t0)
	}
	return int(in.t1)
}

func hAddBr(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i + regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	taken := evalBr(in.cond, in.w2, regs[in.x].i, regs[in.y].i)
	fr.count(in, taken)
	if taken {
		return int(in.t0)
	}
	return int(in.t1)
}

func hAddExtBr(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i + regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	regs[in.c].i = in.w2.SignExt(v)
	taken := evalBr(in.cond, in.w3, regs[in.x].i, regs[in.y].i)
	fr.count(in, taken)
	if taken {
		return int(in.t0)
	}
	return int(in.t1)
}

func hSubBr(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	v := regs[in.a].i - regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	regs[in.dst].i = v
	taken := evalBr(in.cond, in.w2, regs[in.x].i, regs[in.y].i)
	fr.count(in, taken)
	if taken {
		return int(in.t0)
	}
	return int(in.t1)
}

func hAddJmp(fr *bcFrame, in *bcIns, pc int) int {
	v := fr.regs[in.a].i + fr.regs[in.b].i
	if fr.norm && in.w != ir.W64 {
		v = in.w.SignExt(v)
	}
	fr.regs[in.dst].i = v
	return int(in.t0)
}

func hConstALoad(fr *bcFrame, in *bcIns, pc int) int {
	regs := fr.regs
	regs[in.c].i = in.imm
	a := regs[in.a].a
	k, err := fr.bcIndex(a, regs[in.b].i)
	if err != nil {
		// The aload — the constituent after the const — is what traps.
		fr.err = err
		fr.trapOrig = in.orig + 1
		return -1
	}
	regs[in.dst].i = bcLoadExtend(fr, in.w, a.i[k])
	return pc + 1
}
