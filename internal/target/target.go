// Package target lowers optimized IR to the two machine models the paper
// evaluates — an IA64-like target (zero-extending loads, explicit sxt,
// shladd effective addresses, cmp4 32-bit compares) and a PPC64-like target
// (sign-extending lwa/lha loads, exts* extensions, indexed loads) — and
// prices instructions with the cycle cost model behind the performance
// figures. The lowering is deliberately schematic: one IR instruction maps
// to one or two target instructions with real mnemonics, enough to inspect
// where extensions survive and to charge modelled cycles, not to assemble.
package target

import (
	"fmt"
	"strings"

	"signext/internal/ir"
)

// Instruction is one lowered machine instruction.
type Instruction struct {
	Mnemonic string
	Args     string
	IR       *ir.Instr // originating IR instruction (nil for helper instrs)
}

func (i Instruction) String() string {
	if i.Args == "" {
		return i.Mnemonic
	}
	return i.Mnemonic + " " + i.Args
}

// Block is a lowered basic block.
type Block struct {
	Label  string
	Instrs []Instruction
}

// Asm is the lowering of one function for one machine model.
type Asm struct {
	Fn      *ir.Func
	Machine ir.Machine
	Blocks  []Block
}

// Format renders the lowering as assembler-style text.
func (a *Asm) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %s\n%s:\n", a.Machine, a.Fn.Name, a.Fn.Name)
	for _, b := range a.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for _, ins := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", ins)
		}
	}
	return sb.String()
}

// Count returns the number of lowered instructions with the given mnemonic.
func (a *Asm) Count(mnemonic string) int {
	n := 0
	for _, b := range a.Blocks {
		for _, ins := range b.Instrs {
			if ins.Mnemonic == mnemonic {
				n++
			}
		}
	}
	return n
}

// Lower translates a compiled (64-bit form) function to the machine model's
// instruction list.
func Lower(f *ir.Func, m ir.Machine) *Asm {
	a := &Asm{Fn: f, Machine: m}
	for _, b := range f.Blocks {
		lb := Block{Label: fmt.Sprintf(".L%s_b%d", f.Name, b.ID)}
		for _, ins := range b.Instrs {
			if m == ir.PPC64 {
				lb.Instrs = append(lb.Instrs, lowerPPC64(ins)...)
			} else {
				lb.Instrs = append(lb.Instrs, lowerIA64(ins)...)
			}
		}
		a.Blocks = append(a.Blocks, lb)
	}
	return a
}

// elemScale returns log2 of the array element size for shladd/sldi scaling.
func elemScale(w ir.Width, fl bool) int {
	if fl || w == ir.W64 {
		return 3
	}
	switch w {
	case ir.W16:
		return 1
	case ir.W32:
		return 2
	}
	return 0
}

func one(ins *ir.Instr, mnemonic, format string, args ...any) []Instruction {
	return []Instruction{{Mnemonic: mnemonic, Args: fmt.Sprintf(format, args...), IR: ins}}
}

func blockLabel(fn *ir.Func, b *ir.Block) string {
	return fmt.Sprintf(".L%s_b%d", fn.Name, b.ID)
}

func lowerIA64(ins *ir.Instr) []Instruction {
	fn := ins.Blk.Fn
	switch ins.Op {
	case ir.OpConst:
		if ir.W16.InRange(ins.Const) {
			return one(ins, "mov", "%s = %d", ins.Dst, ins.Const)
		}
		return one(ins, "movl", "%s = %d", ins.Dst, ins.Const)
	case ir.OpFConst:
		return one(ins, "ldfd", "%s = %g", ins.Dst, ins.F)
	case ir.OpMov:
		return one(ins, "mov", "%s = %s", ins.Dst, ins.Srcs[0])
	case ir.OpFMov:
		return one(ins, "mov", "%s = %s", ins.Dst, ins.Srcs[0])
	case ir.OpAdd:
		return one(ins, "add", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpSub:
		return one(ins, "sub", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpMul:
		// Fixed-point multiply runs on the FP unit (xma.l) on IA64.
		return one(ins, "xma.l", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpDiv:
		return one(ins, "br.call", "b0 = __divdi3 (%s, %s) -> %s", ins.Srcs[0], ins.Srcs[1], ins.Dst)
	case ir.OpRem:
		return one(ins, "br.call", "b0 = __moddi3 (%s, %s) -> %s", ins.Srcs[0], ins.Srcs[1], ins.Dst)
	case ir.OpAnd:
		return one(ins, "and", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpOr:
		return one(ins, "or", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpXor:
		return one(ins, "xor", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpNot:
		return one(ins, "andcm", "%s = -1, %s", ins.Dst, ins.Srcs[0])
	case ir.OpNeg:
		return one(ins, "sub", "%s = r0, %s", ins.Dst, ins.Srcs[0])
	case ir.OpShl:
		return one(ins, "shl", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpAShr:
		if ins.W == ir.W64 {
			return one(ins, "shr", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
		}
		// 32-bit shifts read only the low word: signed bit-field extract.
		return one(ins, "extr", "%s = %s, %s, 32", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpLShr:
		if ins.W == ir.W64 {
			return one(ins, "shr.u", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
		}
		return one(ins, "extr.u", "%s = %s, %s, 32", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpExt:
		return one(ins, fmt.Sprintf("sxt%d", ins.W.Bits()/8), "%s = %s", ins.Dst, ins.Srcs[0])
	case ir.OpZext:
		return one(ins, fmt.Sprintf("zxt%d", ins.W.Bits()/8), "%s = %s", ins.Dst, ins.Srcs[0])
	case ir.OpExtDummy:
		// Dummies are removed before lowering; render any survivor inertly.
		return one(ins, "nop.i", "0 // just_extended(%s)", ins.Srcs[0])
	case ir.OpI2D, ir.OpL2D:
		return []Instruction{
			{Mnemonic: "setf.sig", Args: fmt.Sprintf("%s = %s", ins.Dst, ins.Srcs[0]), IR: ins},
			{Mnemonic: "fcvt.xf", Args: fmt.Sprintf("%s = %s", ins.Dst, ins.Dst), IR: ins},
		}
	case ir.OpD2I, ir.OpD2L:
		return []Instruction{
			{Mnemonic: "fcvt.fx.trunc", Args: fmt.Sprintf("%s = %s", ins.Dst, ins.Srcs[0]), IR: ins},
			{Mnemonic: "getf.sig", Args: fmt.Sprintf("%s = %s", ins.Dst, ins.Dst), IR: ins},
		}
	case ir.OpFAdd:
		return one(ins, "fadd.d", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFSub:
		return one(ins, "fsub.d", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFMul:
		return one(ins, "fmpy.d", "%s = %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFDiv:
		return one(ins, "frcpa", "%s = %s, %s // + Newton steps", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFNeg:
		return one(ins, "fneg", "%s = %s", ins.Dst, ins.Srcs[0])
	case ir.OpFCall, ir.OpCall:
		args := make([]string, len(ins.Args))
		for k, r := range ins.Args {
			args[k] = r.String()
		}
		s := fmt.Sprintf("b0 = %s (%s)", ins.Callee, strings.Join(args, ", "))
		if ins.HasDst() {
			s += " -> " + ins.Dst.String()
		}
		return one(ins, "br.call", "%s", s)
	case ir.OpRet:
		if ins.NSrcs == 1 {
			return []Instruction{
				{Mnemonic: "mov", Args: "r8 = " + ins.Srcs[0].String(), IR: ins},
				{Mnemonic: "br.ret", Args: "b0", IR: ins},
			}
		}
		return one(ins, "br.ret", "b0")
	case ir.OpLoadG:
		if ins.Float {
			return one(ins, "ldfd", "%s = [gp+%d]", ins.Dst, 8*ins.Const)
		}
		// IA64 integer loads zero-extend: ld1/ld2/ld4/ld8.
		return one(ins, fmt.Sprintf("ld%d", ins.W.Bits()/8), "%s = [gp+%d]", ins.Dst, 8*ins.Const)
	case ir.OpStoreG:
		if ins.Float {
			return one(ins, "stfd", "[gp+%d] = %s", 8*ins.Const, ins.Srcs[0])
		}
		return one(ins, fmt.Sprintf("st%d", ins.W.Bits()/8), "[gp+%d] = %s", 8*ins.Const, ins.Srcs[0])
	case ir.OpNewArr:
		return one(ins, "br.call", "b0 = newarray (%s) -> %s", ins.Srcs[0], ins.Dst)
	case ir.OpArrLoad:
		// The effective address consumes the full index register: shladd
		// scales and adds in one instruction when the index is extended.
		ld := fmt.Sprintf("ld%d", ins.W.Bits()/8)
		if ins.Float {
			ld = "ldfd"
		}
		return []Instruction{
			{Mnemonic: "shladd", Args: fmt.Sprintf("%s = %s, %d, %s", ins.Dst, ins.Srcs[1], elemScale(ins.W, ins.Float), ins.Srcs[0]), IR: ins},
			{Mnemonic: ld, Args: fmt.Sprintf("%s = [%s]", ins.Dst, ins.Dst), IR: ins},
		}
	case ir.OpArrStore:
		st := fmt.Sprintf("st%d", ins.W.Bits()/8)
		if ins.Float {
			st = "stfd"
		}
		return []Instruction{
			{Mnemonic: "shladd", Args: fmt.Sprintf("rt = %s, %d, %s", ins.Srcs[1], elemScale(ins.W, ins.Float), ins.Srcs[0]), IR: ins},
			{Mnemonic: st, Args: fmt.Sprintf("[rt] = %s", ins.Srcs[2]), IR: ins},
		}
	case ir.OpArrLen:
		return one(ins, "ld4", "%s = [%s-8] // length header", ins.Dst, ins.Srcs[0])
	case ir.OpBr:
		// cmp4 compares only the low words; cmp the full registers.
		cmp := "cmp"
		if ins.W != ir.W64 {
			cmp = "cmp4"
		}
		cond := ins.Cond.String()
		cond = strings.TrimPrefix(cond, "u") // cmp4.ltu style suffix below
		suffix := ins.Cond.String()
		switch ins.Cond {
		case ir.CondULT, ir.CondULE, ir.CondUGT, ir.CondUGE:
			suffix = cond + "u"
		}
		return []Instruction{
			{Mnemonic: cmp + "." + suffix, Args: fmt.Sprintf("p6, p7 = %s, %s", ins.Srcs[0], ins.Srcs[1]), IR: ins},
			{Mnemonic: "(p6) br.cond", Args: blockLabel(fn, ins.Blk.Succs[0]), IR: ins},
		}
	case ir.OpFBr:
		return []Instruction{
			{Mnemonic: "fcmp." + ins.Cond.String(), Args: fmt.Sprintf("p6, p7 = %s, %s", ins.Srcs[0], ins.Srcs[1]), IR: ins},
			{Mnemonic: "(p6) br.cond", Args: blockLabel(fn, ins.Blk.Succs[0]), IR: ins},
		}
	case ir.OpJmp:
		return one(ins, "br", "%s", blockLabel(fn, ins.Blk.Succs[0]))
	case ir.OpTrap:
		return one(ins, "break", "0")
	case ir.OpPrint:
		return one(ins, "br.call", "b0 = print (%s)", ins.Srcs[0])
	case ir.OpFPrint:
		return one(ins, "br.call", "b0 = fprint (%s)", ins.Srcs[0])
	}
	return one(ins, "nop.i", "0 // %s", ins)
}

func lowerPPC64(ins *ir.Instr) []Instruction {
	fn := ins.Blk.Fn
	wsuf := func() string { // mnemonic word/doubleword suffix
		if ins.W == ir.W64 {
			return "d"
		}
		return "w"
	}
	switch ins.Op {
	case ir.OpConst:
		if ir.W16.InRange(ins.Const) {
			return one(ins, "li", "%s, %d", ins.Dst, ins.Const)
		}
		return one(ins, "lis+ori", "%s, %d", ins.Dst, ins.Const)
	case ir.OpFConst:
		return one(ins, "lfd", "%s, %g", ins.Dst, ins.F)
	case ir.OpMov, ir.OpFMov:
		return one(ins, "mr", "%s, %s", ins.Dst, ins.Srcs[0])
	case ir.OpAdd:
		return one(ins, "add", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpSub:
		return one(ins, "subf", "%s, %s, %s", ins.Dst, ins.Srcs[1], ins.Srcs[0])
	case ir.OpMul:
		return one(ins, "mull"+wsuf(), "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpDiv:
		return one(ins, "div"+wsuf(), "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpRem:
		return []Instruction{
			{Mnemonic: "div" + wsuf(), Args: fmt.Sprintf("rt, %s, %s", ins.Srcs[0], ins.Srcs[1]), IR: ins},
			{Mnemonic: "mull" + wsuf(), Args: fmt.Sprintf("rt, rt, %s", ins.Srcs[1]), IR: ins},
			{Mnemonic: "subf", Args: fmt.Sprintf("%s, rt, %s", ins.Dst, ins.Srcs[0]), IR: ins},
		}
	case ir.OpAnd:
		return one(ins, "and", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpOr:
		return one(ins, "or", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpXor:
		return one(ins, "xor", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpNot:
		return one(ins, "nor", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[0])
	case ir.OpNeg:
		return one(ins, "neg", "%s, %s", ins.Dst, ins.Srcs[0])
	case ir.OpShl:
		return one(ins, "sl"+wsuf(), "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpAShr:
		return one(ins, "sra"+wsuf(), "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpLShr:
		return one(ins, "srl"+wsuf(), "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpExt:
		switch ins.W {
		case ir.W8:
			return one(ins, "extsb", "%s, %s", ins.Dst, ins.Srcs[0])
		case ir.W16:
			return one(ins, "extsh", "%s, %s", ins.Dst, ins.Srcs[0])
		}
		return one(ins, "extsw", "%s, %s", ins.Dst, ins.Srcs[0])
	case ir.OpZext:
		// clrldi: rldicl rD, rS, 0, 64-W.
		return one(ins, "rldicl", "%s, %s, 0, %d", ins.Dst, ins.Srcs[0], 64-ins.W.Bits())
	case ir.OpExtDummy:
		return one(ins, "nop", "// just_extended(%s)", ins.Srcs[0])
	case ir.OpI2D, ir.OpL2D:
		return []Instruction{
			{Mnemonic: "std+lfd", Args: fmt.Sprintf("%s, %s", ins.Dst, ins.Srcs[0]), IR: ins},
			{Mnemonic: "fcfid", Args: fmt.Sprintf("%s, %s", ins.Dst, ins.Dst), IR: ins},
		}
	case ir.OpD2I:
		return one(ins, "fctiwz", "%s, %s", ins.Dst, ins.Srcs[0])
	case ir.OpD2L:
		return one(ins, "fctidz", "%s, %s", ins.Dst, ins.Srcs[0])
	case ir.OpFAdd:
		return one(ins, "fadd", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFSub:
		return one(ins, "fsub", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFMul:
		return one(ins, "fmul", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFDiv:
		return one(ins, "fdiv", "%s, %s, %s", ins.Dst, ins.Srcs[0], ins.Srcs[1])
	case ir.OpFNeg:
		return one(ins, "fneg", "%s, %s", ins.Dst, ins.Srcs[0])
	case ir.OpFCall, ir.OpCall:
		args := make([]string, len(ins.Args))
		for k, r := range ins.Args {
			args[k] = r.String()
		}
		s := fmt.Sprintf("%s (%s)", ins.Callee, strings.Join(args, ", "))
		if ins.HasDst() {
			s += " -> " + ins.Dst.String()
		}
		return one(ins, "bl", "%s", s)
	case ir.OpRet:
		if ins.NSrcs == 1 {
			return []Instruction{
				{Mnemonic: "mr", Args: "r3, " + ins.Srcs[0].String(), IR: ins},
				{Mnemonic: "blr", IR: ins},
			}
		}
		return []Instruction{{Mnemonic: "blr", IR: ins}}
	case ir.OpLoadG:
		if ins.Float {
			return one(ins, "lfd", "%s, %d(r2)", ins.Dst, 8*ins.Const)
		}
		// PPC64 narrow loads sign-extend in this model (lwa/lha); there is
		// no lba, so byte loads pair lbz with extsb.
		switch ins.W {
		case ir.W8:
			return []Instruction{
				{Mnemonic: "lbz", Args: fmt.Sprintf("%s, %d(r2)", ins.Dst, 8*ins.Const), IR: ins},
				{Mnemonic: "extsb", Args: fmt.Sprintf("%s, %s", ins.Dst, ins.Dst), IR: ins},
			}
		case ir.W16:
			return one(ins, "lha", "%s, %d(r2)", ins.Dst, 8*ins.Const)
		case ir.W64:
			return one(ins, "ld", "%s, %d(r2)", ins.Dst, 8*ins.Const)
		}
		return one(ins, "lwa", "%s, %d(r2)", ins.Dst, 8*ins.Const)
	case ir.OpStoreG:
		if ins.Float {
			return one(ins, "stfd", "%s, %d(r2)", ins.Srcs[0], 8*ins.Const)
		}
		mn := map[ir.Width]string{ir.W8: "stb", ir.W16: "sth", ir.W32: "stw", ir.W64: "std"}[ins.W]
		return one(ins, mn, "%s, %d(r2)", ins.Srcs[0], 8*ins.Const)
	case ir.OpNewArr:
		return one(ins, "bl", "newarray (%s) -> %s", ins.Srcs[0], ins.Dst)
	case ir.OpArrLoad:
		ld := map[ir.Width]string{ir.W8: "lbzx", ir.W16: "lhax", ir.W32: "lwax", ir.W64: "ldx"}[ins.W]
		if ins.Float {
			ld = "lfdx"
		}
		seq := []Instruction{
			{Mnemonic: "sldi", Args: fmt.Sprintf("rt, %s, %d", ins.Srcs[1], elemScale(ins.W, ins.Float)), IR: ins},
			{Mnemonic: ld, Args: fmt.Sprintf("%s, %s, rt", ins.Dst, ins.Srcs[0]), IR: ins},
		}
		if ins.W == ir.W8 && !ins.Float {
			seq = append(seq, Instruction{Mnemonic: "extsb", Args: fmt.Sprintf("%s, %s", ins.Dst, ins.Dst), IR: ins})
		}
		return seq
	case ir.OpArrStore:
		st := map[ir.Width]string{ir.W8: "stbx", ir.W16: "sthx", ir.W32: "stwx", ir.W64: "stdx"}[ins.W]
		if ins.Float {
			st = "stfdx"
		}
		return []Instruction{
			{Mnemonic: "sldi", Args: fmt.Sprintf("rt, %s, %d", ins.Srcs[1], elemScale(ins.W, ins.Float)), IR: ins},
			{Mnemonic: st, Args: fmt.Sprintf("%s, %s, rt", ins.Srcs[2], ins.Srcs[0]), IR: ins},
		}
	case ir.OpArrLen:
		return one(ins, "lwa", "%s, -8(%s) // length header", ins.Dst, ins.Srcs[0])
	case ir.OpBr:
		cmp := "cmp" + wsuf()
		switch ins.Cond {
		case ir.CondULT, ir.CondULE, ir.CondUGT, ir.CondUGE:
			cmp = "cmpl" + wsuf()
		}
		bcc := map[ir.Cond]string{
			ir.CondEQ: "beq", ir.CondNE: "bne", ir.CondLT: "blt", ir.CondLE: "ble",
			ir.CondGT: "bgt", ir.CondGE: "bge", ir.CondULT: "blt", ir.CondULE: "ble",
			ir.CondUGT: "bgt", ir.CondUGE: "bge",
		}[ins.Cond]
		return []Instruction{
			{Mnemonic: cmp, Args: fmt.Sprintf("cr0, %s, %s", ins.Srcs[0], ins.Srcs[1]), IR: ins},
			{Mnemonic: bcc, Args: blockLabel(fn, ins.Blk.Succs[0]), IR: ins},
		}
	case ir.OpFBr:
		bcc := map[ir.Cond]string{
			ir.CondEQ: "beq", ir.CondNE: "bne", ir.CondLT: "blt", ir.CondLE: "ble",
			ir.CondGT: "bgt", ir.CondGE: "bge",
		}[ins.Cond]
		if bcc == "" {
			bcc = "bge"
		}
		return []Instruction{
			{Mnemonic: "fcmpu", Args: fmt.Sprintf("cr0, %s, %s", ins.Srcs[0], ins.Srcs[1]), IR: ins},
			{Mnemonic: bcc, Args: blockLabel(fn, ins.Blk.Succs[0]), IR: ins},
		}
	case ir.OpJmp:
		return one(ins, "b", "%s", blockLabel(fn, ins.Blk.Succs[0]))
	case ir.OpTrap:
		return one(ins, "trap", "")
	case ir.OpPrint:
		return one(ins, "bl", "print (%s)", ins.Srcs[0])
	case ir.OpFPrint:
		return one(ins, "bl", "fprint (%s)", ins.Srcs[0])
	}
	return one(ins, "nop", "// %s", ins)
}

// CostModel returns the per-instruction cycle cost function for the machine
// model, the pricing behind the modelled-cycles numbers. Costs are coarse
// structural latencies (agreed per opcode class, not per microarchitecture):
// what matters for the paper's figures is that extensions, loads and address
// arithmetic carry realistic relative weights.
func CostModel(m ir.Machine) func(*ir.Instr) int64 {
	return func(ins *ir.Instr) int64 {
		switch ins.Op {
		case ir.OpExtDummy:
			return 0 // markers never reach generated code
		case ir.OpConst, ir.OpMov, ir.OpFMov, ir.OpAdd, ir.OpSub, ir.OpAnd,
			ir.OpOr, ir.OpXor, ir.OpNot, ir.OpNeg, ir.OpShl, ir.OpAShr,
			ir.OpLShr, ir.OpExt, ir.OpZext, ir.OpJmp:
			return 1
		case ir.OpBr, ir.OpFBr:
			return 2 // compare + branch
		case ir.OpMul:
			if m == ir.IA64 {
				return 7 // xma.l round-trips through the FP unit
			}
			return 5
		case ir.OpDiv, ir.OpRem:
			return 35
		case ir.OpFConst, ir.OpLoadG, ir.OpArrLen:
			return 2
		case ir.OpStoreG:
			return 1
		case ir.OpArrLoad:
			return 3 // scaled EA + load
		case ir.OpArrStore:
			return 2
		case ir.OpNewArr:
			return 50
		case ir.OpI2D, ir.OpL2D, ir.OpD2I, ir.OpD2L:
			return 5
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFNeg:
			return 4
		case ir.OpFDiv:
			return 30
		case ir.OpCall, ir.OpRet:
			return 5
		case ir.OpFCall:
			return 20
		case ir.OpPrint, ir.OpFPrint:
			return 10
		case ir.OpTrap:
			return 1
		}
		return 1
	}
}
