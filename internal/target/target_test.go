package target

import (
	"strings"
	"testing"

	"signext/internal/extelim"
	"signext/internal/ir"
)

// buildLoop returns a 64-bit-form function with a narrow loop: a 32-bit
// compare, an extension, an array access and a call-free epilogue.
func buildLoop(mach ir.Machine) *ir.Func {
	b := ir.NewFunc("loop")
	n := b.Const(ir.W32, 8)
	a := b.NewArr(ir.W32, false, n)
	i := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	v := b.ArrLoad(ir.W32, false, a, i)
	d := b.I2D(v)
	b.FPrint(d)
	b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
	b.Br(ir.W32, ir.CondLT, i, n, loop, exit)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)
	fn := b.Fn
	extelim.Convert64(fn, mach)
	return fn
}

func TestLowerIA64Mnemonics(t *testing.T) {
	fn := buildLoop(ir.IA64)
	asm := Lower(fn, ir.IA64)
	text := asm.Format()
	for _, want := range []string{"cmp4.lt", "shladd", "sxt4", "ld4", "br.cond"} {
		if !strings.Contains(text, want) {
			t.Errorf("IA64 lowering lacks %q:\n%s", want, text)
		}
	}
	if asm.Count("sxt4") != fn.CountOp(ir.OpExt) {
		t.Errorf("sxt4 count %d != OpExt count %d", asm.Count("sxt4"), fn.CountOp(ir.OpExt))
	}
}

func TestLowerPPC64Mnemonics(t *testing.T) {
	fn := buildLoop(ir.PPC64)
	asm := Lower(fn, ir.PPC64)
	text := asm.Format()
	for _, want := range []string{"cmpw", "sldi", "lwax", "blt"} {
		if !strings.Contains(text, want) {
			t.Errorf("PPC64 lowering lacks %q:\n%s", want, text)
		}
	}
	if n := fn.CountOp(ir.OpExt); n > 0 && asm.Count("extsw") == 0 {
		t.Errorf("%d extensions lowered without extsw", n)
	}
}

func TestLowerCoversEveryOpcode(t *testing.T) {
	// Every opcode the frontends can emit must lower without hitting the
	// nop fallback (dummies excepted: they are removed before lowering).
	b := ir.NewFunc("all")
	g0 := 0
	x := b.Const(ir.W32, 5)
	y := b.Const(ir.W64, 1<<40)
	f := b.FConst(1.5)
	b.StoreG(ir.W32, g0, x)
	l := b.LoadG(ir.W32, g0)
	arr := b.NewArr(ir.W16, false, x)
	b.ArrStore(ir.W16, false, arr, x, l)
	v := b.ArrLoad(ir.W16, false, arr, x)
	b.ArrLen(arr)
	b.Add(ir.W32, v, x)
	b.Sub(ir.W32, v, x)
	b.Mul(ir.W32, v, x)
	b.Div(ir.W32, v, x)
	b.Rem(ir.W32, v, x)
	b.And(ir.W32, v, x)
	b.Or(ir.W32, v, x)
	b.Xor(ir.W32, v, x)
	b.Not(ir.W32, v)
	b.Neg(ir.W32, v)
	b.Shl(ir.W32, v, x)
	b.AShr(ir.W32, v, x)
	b.LShr(ir.W64, y, x)
	b.Ext(ir.W32, v)
	b.Zext(ir.W16, v)
	dd := b.I2D(v)
	b.L2D(y)
	b.D2I(f)
	b.D2L(f)
	b.FAdd(f, dd)
	b.FSub(f, dd)
	b.FMul(f, dd)
	b.FDiv(f, dd)
	b.FNeg(f)
	b.Mov(ir.W64, y)
	b.FMov(f)
	b.Print(ir.W32, v)
	b.FPrint(f)
	b.Ret(ir.NoReg)
	fn := b.Fn

	for _, m := range []ir.Machine{ir.IA64, ir.PPC64} {
		asm := Lower(fn, m)
		if n := asm.Count("nop.i") + asm.Count("nop"); n > 0 {
			t.Errorf("%v: %d opcodes fell through to nop:\n%s", m, n, asm.Format())
		}
	}
}

func TestCostModelPositive(t *testing.T) {
	fn := buildLoop(ir.IA64)
	for _, m := range []ir.Machine{ir.IA64, ir.PPC64} {
		cost := CostModel(m)
		fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
			c := cost(ins)
			if ins.Op == ir.OpExtDummy {
				if c != 0 {
					t.Errorf("%v: dummy costs %d cycles", m, c)
				}
				return
			}
			if c <= 0 {
				t.Errorf("%v: %s costs %d cycles", m, ins, c)
			}
		})
	}
	if CostModel(ir.IA64)(&ir.Instr{Op: ir.OpMul, W: ir.W32}) <= CostModel(ir.IA64)(&ir.Instr{Op: ir.OpAdd, W: ir.W32}) {
		t.Error("multiply not more expensive than add")
	}
}
