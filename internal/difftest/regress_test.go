package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"signext/internal/ir"
)

func machinesFor(r *Repro) []ir.Machine { return []ir.Machine{r.Machine} }

// TestReproducers replays every minimized reproducer under testdata/ as a
// permanent regression test. Chaos reproducers assert two things: the clean
// pipeline still passes the oracle on the program (no false positive), and
// deleting a load-bearing extension from the optimized build is still a
// caught miscompile (the oracle has not gone blind). Property reproducers
// assert the recorded property now holds — a failure means the original bug
// regressed.
func TestReproducers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least 3 reproducers under testdata/, found %d", len(files))
	}
	minInstrs := 1 << 30
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			r, err := ParseRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			n := NumInstrs(r.Prog)
			if n < minInstrs {
				minInstrs = n
			}
			if n > 40 {
				t.Errorf("reproducer has %d instructions; the shrinker is expected to keep these small", n)
			}
			p := &Program{Seed: r.Seed, Kind: r.Kind, Prog: r.Prog}
			fails, skipped := Check(p, Config{OracleOnly: true})
			if skipped {
				t.Fatal("reproducer hit the step limit — it must terminate quickly")
			}
			if r.Prop == "chaos-dropext" {
				// The planted-fault reproducer: the clean build must be
				// correct, and the fault must still be visible.
				for _, f := range fails {
					t.Errorf("clean pipeline fails on chaos reproducer: %v", f)
				}
				if !ChaosCaught(r.Prog, r.Machine, shrinkMaxSteps) {
					t.Error("planted DropExt fault is no longer caught by the oracle")
				}
				return
			}
			// A property reproducer records a fixed pipeline bug; the
			// property must hold now and forever.
			fails, skipped = Check(p, Config{Machines: machinesFor(r), OracleOnly: false})
			if skipped {
				t.Fatal("reproducer hit the step limit")
			}
			for _, f := range fails {
				t.Errorf("regressed: %v (originally %s)", f, r.Detail)
			}
		})
	}
	if minInstrs > 25 {
		t.Errorf("smallest reproducer has %d instructions; at least one is expected at <= 25", minInstrs)
	}
}
