package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"signext/internal/guard"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/serve"
)

// serveDetail checks the serve-identity property for one program on one
// machine: the compile daemon, driven through its real HTTP handler, must
// answer exactly what the direct jit compile produced — same static
// statistics, same output, same trap — and a request forced onto the
// degraded floor by a hostile deadline must still reproduce the reference
// output. It returns "" when the property holds, a diagnostic otherwise.
func serveDetail(p *Program, mach ir.Machine, res *jit.Result, rep *guard.Report, cfg Config) string {
	req := serve.CompileRequest{
		Machine:  mach.String(),
		Run:      true,
		MaxSteps: cfg.MaxSteps,
	}
	if p.Kind == "mj" {
		req.Source = p.Source
	} else {
		req.IR = formatProgram(p.Prog)
	}

	// Healthy request: full identity with the direct compile.
	srv, err := serve.New(serve.Config{Variant: jit.All, Machine: mach, CacheBytes: -1})
	if err != nil {
		return fmt.Sprintf("daemon construction failed: %v", err)
	}
	resp, detail := post(srv, req)
	if detail != "" {
		return detail
	}
	if resp.Degraded {
		return fmt.Sprintf("daemon degraded without any pressure (funcs %v, fallbacks %d)", resp.DegradedFuncs, resp.Fallbacks)
	}
	if resp.Eliminated != res.Stats.Eliminated || resp.Inserted != res.Stats.Inserted || resp.StaticExts != res.StaticExts {
		return fmt.Sprintf("static results differ: daemon (elim %d, ins %d, exts %d), direct (elim %d, ins %d, exts %d)",
			resp.Eliminated, resp.Inserted, resp.StaticExts,
			res.Stats.Eliminated, res.Stats.Inserted, res.StaticExts)
	}
	if d := runIdentity("daemon", resp, rep.OptOutput, rep.OptErr != nil); d != "" {
		return d
	}

	// Degraded request: a 1 ms deadline under a much longer injected stall
	// floors every function — and the floored answer must still match the
	// reference run. Degraded, never wrong, via the same HTTP surface.
	// The stall is generous because a context deadline only takes effect
	// once its timer goroutine runs; on a loaded single-CPU box that can
	// lag the nominal deadline by milliseconds.
	dsrv, err := serve.New(serve.Config{
		Variant: jit.All, Machine: mach, CacheBytes: -1,
		FaultDelay: func() time.Duration { return 20 * time.Millisecond },
	})
	if err != nil {
		return fmt.Sprintf("degraded daemon construction failed: %v", err)
	}
	dreq := req
	dreq.DeadlineMS = 1
	dresp, detail := post(dsrv, dreq)
	if detail != "" {
		return "degraded request: " + detail
	}
	if !dresp.Degraded || len(dresp.DegradedFuncs) == 0 {
		return fmt.Sprintf("hostile deadline did not degrade (funcs %v)", dresp.DegradedFuncs)
	}
	if d := runIdentity("degraded daemon", dresp, rep.RefOutput, rep.RefErr != nil); d != "" {
		return d
	}
	return ""
}

// runIdentity compares a daemon answer's dynamic half against an expected
// output and trap disposition.
func runIdentity(who string, resp *serve.CompileResponse, wantOut string, wantTrap bool) string {
	if (resp.Trap != "") != wantTrap {
		return fmt.Sprintf("%s trap mismatch: daemon %q, expected trap=%v", who, resp.Trap, wantTrap)
	}
	if resp.Output != wantOut {
		return fmt.Sprintf("%s output mismatch:\ndaemon %q\nexpected %q", who, resp.Output, wantOut)
	}
	return ""
}

// post drives one request through the daemon's HTTP handler.
func post(srv *serve.Server, req serve.CompileRequest) (*serve.CompileResponse, string) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Sprintf("marshal request: %v", err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/compile", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return nil, fmt.Sprintf("daemon answered %d: %s", rec.Code, rec.Body.String())
	}
	var resp serve.CompileResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return nil, fmt.Sprintf("unmarshal answer: %v", err)
	}
	return &resp, ""
}
