package difftest

import (
	"testing"

	"signext/internal/minijava"
)

// TestDepthExceededIsExpectedEqual: a program that blows the interpreter's
// call-depth bound must flow through the differential properties as an
// expected-equal outcome — reference and optimized builds trap identically —
// not as a failure. This pins the recursion bound (interp.Options.MaxDepth)
// as a deterministic, mode-independent trap.
func TestDepthExceededIsExpectedEqual(t *testing.T) {
	src := `
int down(int n) {
	if (n <= 0) return 0;
	return down(n - 1) + 1;
}
void main() {
	print(down(30000));
}`
	cu, err := minijava.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{Seed: 0, Kind: "mj", Source: src, Prog: cu.Prog}
	fails, skipped := Check(p, Config{})
	if skipped {
		t.Fatal("depth-bounded program skipped entirely")
	}
	for _, f := range fails {
		t.Errorf("unexpected failure: %s", f.String())
	}
}
