package difftest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"signext/internal/ir"
	"signext/internal/progen"
)

// TestCheckGeneratedPrograms is the engine's own smoke test: across a seed
// sweep of both generator kinds, the fully optimized pipeline must satisfy
// every differential and metamorphic property. A failure here is either a
// pipeline miscompile or an engine bug — both are release blockers.
func TestCheckGeneratedPrograms(t *testing.T) {
	for _, kind := range []string{"mj", "ir"} {
		for seed := int64(1); seed <= 10; seed++ {
			p, err := Generate(seed, kind, progen.Config{})
			if err != nil {
				t.Fatalf("Generate(%d, %q): %v", seed, kind, err)
			}
			cfg := Config{}
			if seed%3 != 0 {
				cfg.OracleOnly = true // full metamorphic set on every third seed
			} else {
				cfg.Cache = true  // heavy seeds also check cache identity...
				cfg.Tiered = true // ...and profile identity under the tiered runtime
			}
			fails, skipped := Check(p, cfg)
			if skipped {
				t.Logf("seed %d (%s): skipped (step limit)", seed, kind)
				continue
			}
			for _, f := range fails {
				t.Errorf("seed %d (%s): %v", seed, kind, f)
			}
		}
	}
}

// TestChaosFaultCaught verifies the engine can see: planting a DropExt fault
// in an optimized build must be caught by the oracle for at least one seed,
// and the failing program must shrink to a small reproducer that still
// exhibits the fault.
func TestChaosFaultCaught(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		p, err := Generate(seed, "ir", progen.Config{})
		if err != nil {
			t.Fatalf("Generate(%d): %v", seed, err)
		}
		planted, caught, _ := chaosCheck(p, seed, Config{})
		if !planted || !caught {
			continue
		}
		pred := chaosPredicate(seed, Config{})
		if !pred(p.Prog) {
			t.Fatalf("seed %d: chaos predicate does not hold on the original program", seed)
		}
		small := Shrink(p.Prog, pred)
		if !pred(small) {
			t.Fatalf("seed %d: shrunk program no longer exhibits the fault", seed)
		}
		before, after := NumInstrs(p.Prog), NumInstrs(small)
		if after > before {
			t.Fatalf("seed %d: shrinker grew the program: %d -> %d", seed, before, after)
		}
		t.Logf("seed %d: caught planted fault, shrunk %d -> %d instructions", seed, before, after)
		return
	}
	t.Fatal("no seed in 1..30 produced a caught chaos fault — the oracle is blind")
}

// TestProfileIdentityProperty pins the tiered metamorphic property on its
// own: across a seed sweep the tiered runtime must reproduce the reference
// bit-for-bit and its steady-state artifact must equal the one-shot profile
// compile, and the shrinker's predicate plumbing must route the property
// name to a tiered-enabled config.
func TestProfileIdentityProperty(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 6; seed++ {
		for _, kind := range []string{"mj", "ir"} {
			p, err := Generate(seed, kind, progen.Config{})
			if err != nil {
				t.Fatalf("Generate(%d, %q): %v", seed, kind, err)
			}
			fails, skipped := Check(p, Config{Tiered: true})
			if skipped {
				continue
			}
			checked++
			for _, f := range fails {
				t.Errorf("seed %d (%s): %v", seed, kind, f)
			}
		}
	}
	if checked == 0 {
		t.Fatal("every seed skipped — the property was never exercised")
	}

	// The shrink predicate for a profile-identity finding must not report a
	// healthy program as failing.
	p, err := Generate(1, "ir", progen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := propPredicate("profile-identity", ir.IA64, Config{})
	if pred(p.Prog) {
		t.Fatal("profile-identity predicate claims a healthy program fails")
	}
}

// TestShrinkReducesToCore minimizes against a cheap structural predicate and
// checks the result is both far smaller and still valid.
func TestShrinkReducesToCore(t *testing.T) {
	p, err := Generate(7, "ir", progen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := func(cand *ir.Program) bool {
		main := cand.Func("main")
		return main != nil && main.CountOp(ir.OpArrStore) >= 1
	}
	if !pred(p.Prog) {
		t.Skip("seed 7 generated no array store")
	}
	small := Shrink(p.Prog, pred)
	if !pred(small) {
		t.Fatal("shrunk program lost the property")
	}
	if !validCandidate(small) {
		t.Fatal("shrunk program is not a valid candidate")
	}
	before, after := NumInstrs(p.Prog), NumInstrs(small)
	if after >= before {
		t.Fatalf("shrinker made no progress: %d -> %d", before, after)
	}
	t.Logf("shrunk %d -> %d instructions", before, after)
}

// TestReproRoundTrip checks Marshal/ParseRepro is lossless for the metadata
// and the program text.
func TestReproRoundTrip(t *testing.T) {
	p, err := Generate(3, "ir", progen.Config{Stmts: 3, Funcs: 0})
	if err != nil {
		t.Fatal(err)
	}
	r := &Repro{
		Seed: 3, Kind: "ir", Prop: "chaos-dropext", Machine: ir.PPC64,
		Chaos: 42, Detail: "oracle: output mismatch\nsecond line", Prog: p.Prog,
	}
	data := r.Marshal()
	got, err := ParseRepro(data)
	if err != nil {
		t.Fatalf("ParseRepro: %v\n%s", err, data)
	}
	if got.Seed != 3 || got.Kind != "ir" || got.Prop != "chaos-dropext" ||
		got.Machine != ir.PPC64 || got.Chaos != 42 {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if formatProgram(got.Prog) != formatProgram(p.Prog) {
		t.Fatal("program text did not round-trip")
	}
}

// TestCampaignSmoke runs a tiny campaign end to end and expects a clean
// verdict.
func TestCampaignSmoke(t *testing.T) {
	var log bytes.Buffer
	res, err := Campaign(CampaignConfig{Seed: 1, Count: 8, Workers: 2, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if res.Programs != 8 {
		t.Fatalf("ran %d programs, want 8", res.Programs)
	}
	if !res.OK {
		t.Fatalf("campaign not OK: %+v\n%s", res, log.String())
	}
}

// TestCampaignChaosMinimize runs a chaos campaign with minimization into a
// scratch directory and expects at least one caught fault and one
// reproducer file that parses back.
func TestCampaignChaosMinimize(t *testing.T) {
	dir := t.TempDir()
	res, err := Campaign(CampaignConfig{
		Seed: 1, Count: 10, Workers: 2, Chaos: true, Minimize: true,
		MaxRepros: 1, OutDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Caught < 1 {
		t.Fatalf("chaos campaign caught nothing: %+v", res)
	}
	if !res.OK {
		t.Fatalf("chaos campaign not OK: %+v", res)
	}
	if len(res.Repros) < 1 {
		t.Fatalf("no reproducers written: %+v", res)
	}
	data, err := os.ReadFile(res.Repros[0])
	if err != nil {
		t.Fatal(err)
	}
	r, err := ParseRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chaos == 0 {
		t.Fatal("chaos reproducer lost its injector seed")
	}
	if filepath.Dir(res.Repros[0]) != dir {
		t.Fatalf("reproducer written outside OutDir: %s", res.Repros[0])
	}
}
