package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"signext/internal/peep"
)

// TestPeepCorpus replays every directed corpus entry the rule-table
// generator committed under testdata/peep/: each must parse as a
// reproducer, name the peep-identity property and a live table rule, and
// pass the focused peep-identity check on both machines. This is the
// regression harness the generated corpus exists for — a rule whose
// rewrite ever diverges from the reference build fails here first.
func TestPeepCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "peep", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(peep.Rules) {
		t.Fatalf("corpus has %d entries for %d rules; regenerate with: go test ./internal/peep -run TestEveryRuleHasGeneratedTest -update",
			len(paths), len(peep.Rules))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			r, err := ParseRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			if r.Prop != "peep-identity" {
				t.Fatalf("corpus entry carries prop %q, want peep-identity", r.Prop)
			}
			if peep.FindRule(r.Rule) == nil {
				t.Fatalf("corpus entry targets unknown rule %q", r.Rule)
			}
			fails, skipped := Check(&Program{Kind: r.Kind, Seed: r.Seed, Prog: r.Prog}, Config{
				OracleOnly: true, Peep: true, PeepRules: []string{r.Rule},
			})
			if skipped {
				t.Fatal("corpus entry was skipped; directed entries must always run")
			}
			for _, f := range fails {
				t.Errorf("replay failure: %s", f)
			}
		})
	}
}

// TestCampaignCorpusSeeding drives the campaign-level replay path sxfuzz's
// -corpus flag uses: the directed entries run before any generated
// program, count toward the program total, and a clean corpus keeps the
// campaign green.
func TestCampaignCorpusSeeding(t *testing.T) {
	res, err := Campaign(CampaignConfig{
		Seed: 1, Count: 2, Workers: 2,
		Corpus: filepath.Join("testdata", "peep"),
		Check:  Config{OracleOnly: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("campaign with directed corpus failed: %+v", res)
	}
	if want := len(peep.Rules) + 2; res.Programs != want {
		t.Fatalf("corpus entries must count as programs: got %d, want %d", res.Programs, want)
	}
}
