package difftest

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"signext/internal/guard"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/progen"
)

// CampaignConfig drives a timed multi-worker differential-testing run.
type CampaignConfig struct {
	Seed     int64         // base seed; program i uses Seed+i
	Count    int           // program budget (0 = run until Duration)
	Duration time.Duration // wall budget (0 = run until Count)
	Workers  int           // default runtime.GOMAXPROCS(0)
	Kinds    []string      // generator kinds to alternate over (default mj, ir)
	Gen      progen.Config
	Check    Config

	// HeavySample runs the full metamorphic property set (parallel identity,
	// budget monotonicity, fixpoint convergence) on every Nth program and
	// the oracle-only fast set on the rest. 1 checks everything everywhere;
	// default 5.
	HeavySample int

	// Chaos switches the campaign to fault-injection self-checking: every
	// program is compiled cleanly, one extension is deleted from the
	// optimized build (guard.Injector.DropExt — the "optimizer removed an
	// extension it must not" fault), and the oracle must catch the
	// miscompile. A campaign that catches nothing proves the engine blind.
	Chaos bool

	// Corpus, when set, replays every .ir reproducer/corpus entry in the
	// directory before the generated programs — directed seeds (such as the
	// generated peephole-rule corpus) run first so a short smoke budget
	// still covers every rule.
	Corpus string

	Minimize  bool   // shrink failures and write reproducers
	MaxRepros int    // reproducers to emit (default 3)
	OutDir    string // reproducer directory (default internal/difftest/testdata)
	Log       io.Writer
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Count <= 0 && c.Duration <= 0 {
		c.Count = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []string{"mj", "ir"}
	}
	if c.HeavySample <= 0 {
		c.HeavySample = 5
	}
	if c.MaxRepros <= 0 {
		c.MaxRepros = 3
	}
	if c.OutDir == "" {
		c.OutDir = filepath.Join("internal", "difftest", "testdata")
	}
	return c
}

// CampaignResult is the one-line JSON verdict sxfuzz prints.
type CampaignResult struct {
	Seed           int64    `json:"seed"`
	Programs       int      `json:"programs"`
	Skipped        int      `json:"skipped"`
	Failures       int      `json:"failures"`
	FailureDetails []string `json:"failure_details,omitempty"`
	Planted        int      `json:"planted"` // chaos mode: faults injected
	Caught         int      `json:"caught"`  // chaos mode: miscompiles the oracle caught
	Benign         int      `json:"benign"`  // chaos mode: drops invisible on this input
	Repros         []string `json:"repros,omitempty"`
	MinReproInstrs int      `json:"min_repro_instrs,omitempty"`
	ElapsedMS      int64    `json:"elapsed_ms"`
	OK             bool     `json:"ok"`
}

// finding is one failing program awaiting minimization.
type finding struct {
	idx       int
	prog      *Program
	prop      string
	machine   ir.Machine
	detail    string
	chaosSeed int64
}

// Campaign generates and checks programs on a worker pool until the count
// or wall budget runs out, then (optionally) minimizes findings into
// reproducer files. The program set is determined by Seed and Count alone —
// worker scheduling cannot change which programs are generated, only how
// long the run takes.
func Campaign(cfg CampaignConfig) (*CampaignResult, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	res := &CampaignResult{Seed: cfg.Seed}
	var findings []finding
	if cfg.Corpus != "" {
		if err := replayCorpus(cfg, res); err != nil {
			return res, err
		}
	}
	var mu sync.Mutex
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				seed := cfg.Seed + int64(i)
				kind := cfg.Kinds[i%len(cfg.Kinds)]
				p, err := Generate(seed, kind, cfg.Gen)
				mu.Lock()
				res.Programs++
				mu.Unlock()
				if err != nil {
					mu.Lock()
					res.Failures++
					res.FailureDetails = append(res.FailureDetails, err.Error())
					mu.Unlock()
					continue
				}
				if cfg.Chaos {
					planted, caught, detail := chaosCheck(p, seed, cfg.Check)
					mu.Lock()
					if planted {
						res.Planted++
						if caught {
							res.Caught++
							findings = append(findings, finding{
								idx: i, prog: p, prop: "chaos-dropext",
								machine: cfg.Check.withDefaults().Machines[0],
								detail:  detail, chaosSeed: seed,
							})
						} else {
							res.Benign++
						}
					}
					mu.Unlock()
					continue
				}
				c := cfg.Check
				if cfg.HeavySample > 1 && i%cfg.HeavySample != 0 {
					c.OracleOnly = true
				}
				fails, skipped := Check(p, c)
				mu.Lock()
				if skipped {
					res.Skipped++
				}
				for _, f := range fails {
					res.Failures++
					detail := fmt.Sprintf("seed %d (%s): %s", seed, kind, f)
					res.FailureDetails = append(res.FailureDetails, detail)
					findings = append(findings, finding{
						idx: i, prog: p, prop: f.Prop, machine: f.Machine, detail: detail,
					})
				}
				if cfg.Log != nil && res.Programs%200 == 0 {
					fmt.Fprintf(cfg.Log, "sxfuzz: %d programs, %d failures, %d skipped (%.1fs)\n",
						res.Programs, res.Failures, res.Skipped, time.Since(start).Seconds())
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; cfg.Count <= 0 || i < cfg.Count; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		select {
		case idxCh <- i:
		case <-time.After(time.Minute):
			break feed // workers wedged; bail out rather than hang forever
		}
	}
	close(idxCh)
	wg.Wait()

	sort.Strings(res.FailureDetails)
	sort.Slice(findings, func(a, b int) bool { return findings[a].idx < findings[b].idx })
	if cfg.Minimize {
		if err := minimizeFindings(cfg, findings, res); err != nil {
			return res, err
		}
	}
	res.ElapsedMS = time.Since(start).Milliseconds()
	res.OK = res.Failures == 0 && (!cfg.Chaos || res.Caught >= 1)
	return res, nil
}

// replayCorpus runs every directed corpus entry under Corpus through the
// property its "; prop:" header names (plus the campaign's configured set),
// focused on the "; rule:" it targets when one is named. Entries count as
// programs; a failing entry fails the campaign like any generated program.
func replayCorpus(cfg CampaignConfig, res *CampaignResult) error {
	paths, err := filepath.Glob(filepath.Join(cfg.Corpus, "*.ir"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		r, err := ParseRepro(data)
		if err != nil {
			return fmt.Errorf("corpus %s: %w", path, err)
		}
		c := cfg.Check
		switch r.Prop {
		case "peep-identity":
			c.Peep = true
			if r.Rule != "" {
				c.PeepRules = []string{r.Rule}
			}
		case "cache-identity":
			c.Cache = true
		case "profile-identity":
			c.Tiered = true
		case "dispatch-identity":
			c.Dispatch = true
		}
		res.Programs++
		fails, skipped := Check(&Program{Kind: r.Kind, Seed: r.Seed, Prog: r.Prog}, c)
		if skipped {
			res.Skipped++
		}
		for _, f := range fails {
			res.Failures++
			res.FailureDetails = append(res.FailureDetails,
				fmt.Sprintf("corpus %s: %s", filepath.Base(path), f))
		}
	}
	if cfg.Log != nil && len(paths) > 0 {
		fmt.Fprintf(cfg.Log, "sxfuzz: replayed %d corpus entries, %d failures\n",
			len(paths), res.Failures)
	}
	return nil
}

// minimizeFindings shrinks the first MaxRepros findings (one per distinct
// property, preferring earlier programs) and writes reproducer files.
func minimizeFindings(cfg CampaignConfig, findings []finding, res *CampaignResult) error {
	written := 0
	seenProp := map[string]int{}
	for _, f := range findings {
		if written >= cfg.MaxRepros {
			break
		}
		// Cap reproducers per property so one noisy property cannot crowd
		// out the rest; chaos findings all share one property by design, so
		// the cap does not apply there.
		if f.chaosSeed == 0 && seenProp[f.prop] >= 2 {
			continue
		}
		var pred Predicate
		if f.chaosSeed != 0 {
			pred = chaosPredicate(f.chaosSeed, cfg.Check)
		} else {
			pred = propPredicate(f.prop, f.machine, cfg.Check)
		}
		if !pred(f.prog.Prog) {
			continue // not reproducible under the shrink budget; keep the seed in the log
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "sxfuzz: minimizing seed %d [%s] from %d instructions...\n",
				f.prog.Seed, f.prop, NumInstrs(f.prog.Prog))
		}
		small := Shrink(f.prog.Prog, pred)
		r := &Repro{
			Seed: f.prog.Seed, Kind: f.prog.Kind, Prop: f.prop,
			Machine: f.machine, Chaos: f.chaosSeed, Detail: f.detail, Prog: small,
		}
		path, err := saveRepro(cfg.OutDir, r)
		if err != nil {
			return err
		}
		n := NumInstrs(small)
		if res.MinReproInstrs == 0 || n < res.MinReproInstrs {
			res.MinReproInstrs = n
		}
		res.Repros = append(res.Repros, path)
		seenProp[f.prop]++
		written++
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "sxfuzz: wrote %s (%d instructions)\n", path, n)
		}
	}
	return nil
}

// chaosCheck plants one DropExt fault in the optimized build and asks the
// oracle. Reports whether a fault was planted and whether it was caught; an
// uncaught drop is benign (invisible on this input), not a miss — there is
// no ground truth that a specific extension is load-bearing.
func chaosCheck(p *Program, chaosSeed int64, c Config) (planted, caught bool, detail string) {
	c = c.withDefaults()
	mach := c.Machines[0]
	res, err := jit.Compile(p.Prog, jit.Options{
		Variant: jit.All, Machine: mach, GeneralOpts: true, Checked: true, Parallelism: 1,
	})
	if err != nil {
		return false, false, ""
	}
	mut := res.Prog.Clone()
	inj := guard.NewInjector(chaosSeed)
	injected := false
	for _, fn := range mut.Funcs {
		if inj.DropExt(fn) {
			injected = true
			break
		}
	}
	if !injected {
		return false, false, ""
	}
	_, oerr := guard.Oracle{Machine: mach, MaxSteps: c.MaxSteps}.Check(p.Prog, mut)
	if oerr != nil {
		return true, true, oerr.Error()
	}
	return true, false, ""
}

// chaosPredicate is the shrinking form of the planted-fault scenario. The
// campaign plants with the seeded injector, but replaying the same RNG on a
// shrunk candidate would pick a different extension, so the predicate uses
// the deterministic generalization ChaosCaught: the reproducer keeps the
// property "this program has a load-bearing extension the oracle can see".
func chaosPredicate(chaosSeed int64, c Config) Predicate {
	_ = chaosSeed // kept in the reproducer header for provenance only
	c = c.withDefaults()
	mach := c.Machines[0]
	return func(cand *ir.Program) bool {
		return ChaosCaught(cand, mach, shrinkMaxSteps)
	}
}

// ChaosCaught compiles prog through the full pipeline and then deletes each
// remaining same-register extension from the optimized build, one at a time
// in program order, asking the oracle about each mutant. It reports whether
// at least one deletion is a caught miscompile — the replay check for
// chaos reproducers.
func ChaosCaught(prog *ir.Program, mach ir.Machine, maxSteps int64) bool {
	// Checked compilation matches the main engine: a candidate the deep
	// verifier rejects (e.g. the shrinker deleted a reaching definition) is
	// not a valid reproducer even if the interpreter tolerates it.
	res, err := jit.Compile(prog, jit.Options{
		Variant: jit.All, Machine: mach, GeneralOpts: true, Checked: true, Parallelism: 1,
	})
	if err != nil {
		return false
	}
	for k := 0; ; k++ {
		mut := res.Prog.Clone()
		if !dropExtAt(mut, k) {
			return false
		}
		if _, oerr := (guard.Oracle{Machine: mach, MaxSteps: maxSteps}).Check(prog, mut); oerr != nil {
			return true
		}
	}
}

// dropExtAt deletes the k-th same-register extension of prog in program
// order, reporting whether one existed.
func dropExtAt(prog *ir.Program, k int) bool {
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, ins := range b.Instrs {
				if ins.IsExt() && ins.Dst == ins.Srcs[0] {
					if k == 0 {
						b.Remove(ins)
						return true
					}
					k--
				}
			}
		}
	}
	return false
}

// propPredicate replays the full property check on a candidate and requires
// a failure of the same property. Oracle-class properties shrink in
// oracle-only mode; metamorphic ones need the heavy set.
func propPredicate(prop string, mach ir.Machine, c Config) Predicate {
	c = c.withDefaults()
	c.MaxSteps = shrinkMaxSteps
	c.Machines = []ir.Machine{mach}
	switch prop {
	case "parallel-identity", "budget", "fixpoint":
		c.OracleOnly = false
	case "cache-identity":
		c.OracleOnly = false
		c.Cache = true
	case "profile-identity":
		c.OracleOnly = false
		c.Tiered = true
	case "dispatch-identity":
		// The property itself is cheap; shrink in oracle-only mode with the
		// explicit opt-in so replay skips the unrelated heavy properties.
		c.OracleOnly = true
		c.Dispatch = true
	case "peep-identity":
		// Same shape as dispatch-identity: cheap opt-in, oracle-only replay.
		c.OracleOnly = true
		c.Peep = true
	default:
		c.OracleOnly = true
	}
	if prop == "cross-machine" {
		c.Machines = []ir.Machine{ir.IA64, ir.PPC64}
	}
	return func(cand *ir.Program) bool {
		fails, skipped := Check(&Program{Kind: "ir", Prog: cand}, c)
		if skipped {
			return false
		}
		for _, f := range fails {
			if f.Prop == prop {
				return true
			}
		}
		return false
	}
}

// saveRepro writes one reproducer into dir, creating it if needed.
func saveRepro(dir string, r *Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, r.Marshal(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
