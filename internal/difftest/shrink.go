package difftest

import (
	"errors"

	"signext/internal/interp"
	"signext/internal/ir"
)

// Predicate reports whether a candidate 32-bit-form program still exhibits
// the failure being minimized. Candidates handed to it are always
// structurally valid (ir.Verify-clean, entry present) and terminate within
// the shrinker's step budget in the 32-bit interpreter.
type Predicate func(*ir.Program) bool

// shrinkMaxSteps bounds candidate pre-validation runs: collapsing a loop
// backedge can turn a terminating program into a spinner, and rejecting
// those must be cheap.
const shrinkMaxSteps = 2_000_000

// Shrink greedily minimizes prog while pred keeps holding, using ddmin-style
// chunked instruction deletion, conditional-branch collapsing, unreachable
// block removal, whole-function removal and constant simplification, to a
// fixpoint. The input program itself must satisfy pred; the result always
// does.
func Shrink(prog *ir.Program, pred Predicate) *ir.Program {
	cur := prog.Clone()
	holds := func(cand *ir.Program) bool { return validCandidate(cand) && pred(cand) }
	for round := 0; round < 12; round++ {
		changed := false
		if dropFuncs(&cur, holds) {
			changed = true
		}
		if collapseBranches(&cur, holds) {
			changed = true
		}
		if mergeBlocks(&cur, holds) {
			changed = true
		}
		// Constifying a def severs its whole input dependence chain, which
		// the next dropInstrs sweep then deletes — plain deletion alone
		// cannot do that, because removing a still-used definition is
		// rejected by the checked compile.
		if NumInstrs(cur) <= 100 && constifyDefs(&cur, holds) {
			changed = true
		}
		if dropInstrs(&cur, holds) {
			changed = true
		}
		// Constant rewriting costs one predicate call per constant, so it
		// only runs once the structural passes have the program small.
		if NumInstrs(cur) <= 60 && zeroConsts(&cur, holds) {
			changed = true
		}
		if !changed {
			return cur
		}
	}
	return cur
}

// NumInstrs counts the instructions of every function — the reproducer size
// metric reported by campaigns.
func NumInstrs(p *ir.Program) int {
	n := 0
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// validCandidate rejects structurally broken or non-terminating candidates
// before the (expensive) failure predicate runs.
func validCandidate(p *ir.Program) bool {
	if p.Func("main") == nil || len(p.Funcs) == 0 {
		return false
	}
	for _, fn := range p.Funcs {
		if len(fn.Blocks) == 0 || fn.Verify() != nil {
			return false
		}
	}
	_, err := interp.Run(p, "main", interp.Options{Mode: interp.Mode32, MaxSteps: shrinkMaxSteps})
	return !errors.Is(err, interp.ErrStepLimit) // traps are fine, spinning is not
}

// dropFuncs tries to delete whole non-entry functions.
func dropFuncs(cur **ir.Program, holds func(*ir.Program) bool) bool {
	changed := false
	for i := 0; i < len((*cur).Funcs); {
		if (*cur).Funcs[i].Name == "main" {
			i++
			continue
		}
		cand := (*cur).Clone()
		cand.Funcs = append(cand.Funcs[:i], cand.Funcs[i+1:]...)
		if holds(cand) {
			*cur = cand
			changed = true
		} else {
			i++
		}
	}
	return changed
}

// collapseBranches tries to replace each conditional branch with an
// unconditional jump to one of its successors, then prunes blocks that
// became unreachable.
func collapseBranches(cur **ir.Program, holds func(*ir.Program) bool) bool {
	changed := false
	for fi := range (*cur).Funcs {
		for bi := range (*cur).Funcs[fi].Blocks {
			for keep := 0; keep < 2; keep++ {
				fn := (*cur).Funcs[fi]
				if bi >= len(fn.Blocks) {
					break
				}
				term := fn.Blocks[bi].Term()
				if term == nil || (term.Op != ir.OpBr && term.Op != ir.OpFBr) {
					break
				}
				cand := (*cur).Clone()
				cfn := cand.Funcs[fi]
				blk := cfn.Blocks[bi]
				ct := blk.Term()
				if len(blk.Succs) != 2 {
					break
				}
				kept, dropped := blk.Succs[keep], blk.Succs[1-keep]
				blk.Remove(ct)
				jmp := cfn.NewInstr(ir.OpJmp)
				jmp.Blk = blk
				blk.Instrs = append(blk.Instrs, jmp)
				ir.RemoveEdge(blk, dropped)
				_ = kept // the edge to kept is already in place
				pruneUnreachable(cfn)
				if holds(cand) {
					*cur = cand
					changed = true
					break
				}
			}
		}
	}
	return changed
}

// mergeBlocks splices single-successor/single-predecessor block pairs
// together, dissolving the jmp-only chains that branch collapsing and
// instruction deletion leave behind. The rewrite is semantics-preserving,
// but block structure is compiler input, so each merge is still gated on
// the failure predicate.
func mergeBlocks(cur **ir.Program, holds func(*ir.Program) bool) bool {
	changed := false
	for again := true; again; {
		again = false
		for fi := range (*cur).Funcs {
			fn := (*cur).Funcs[fi]
			for bi := 0; bi < len(fn.Blocks) && !again; bi++ {
				b := fn.Blocks[bi]
				t := b.Term()
				if t == nil || t.Op != ir.OpJmp || len(b.Succs) != 1 {
					continue
				}
				s := b.Succs[0]
				if s == b || len(s.Preds) != 1 {
					continue
				}
				si := -1
				for k, x := range fn.Blocks {
					if x == s {
						si = k
					}
				}
				cand := (*cur).Clone()
				cfn := cand.Funcs[fi]
				spliceBlocks(cfn, cfn.Blocks[bi], cfn.Blocks[si])
				if holds(cand) {
					*cur = cand
					changed, again = true, true // block indices shifted; restart
				}
			}
		}
	}
	return changed
}

// spliceBlocks appends s's instructions to b (whose terminator is a jmp to
// s), transfers s's out-edges in order, and deletes s from the function.
func spliceBlocks(fn *ir.Func, b, s *ir.Block) {
	b.Remove(b.Term())
	ir.RemoveEdge(b, s)
	for _, t := range append([]*ir.Block{}, s.Succs...) {
		ir.RemoveEdge(s, t)
		ir.AddEdge(b, t)
	}
	for _, ins := range s.Instrs {
		ins.Blk = b
		b.Instrs = append(b.Instrs, ins)
	}
	s.Instrs = nil
	for k, x := range fn.Blocks {
		if x == s {
			fn.Blocks = append(fn.Blocks[:k], fn.Blocks[k+1:]...)
			break
		}
	}
}

// pruneUnreachable removes blocks not reachable from the entry, detaching
// their edges first so the CFG stays consistent.
func pruneUnreachable(fn *ir.Func) {
	reach := map[*ir.Block]bool{}
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(fn.Blocks[0])
	var kept []*ir.Block
	for _, b := range fn.Blocks {
		if reach[b] {
			kept = append(kept, b)
			continue
		}
		for len(b.Succs) > 0 {
			ir.RemoveEdge(b, b.Succs[0])
		}
	}
	fn.Blocks = kept
}

// dropInstrs deletes non-terminator instructions, largest chunks first
// (ddmin-style) so minimization cost stays far below one predicate call per
// instruction.
func dropInstrs(cur **ir.Program, holds func(*ir.Program) bool) bool {
	changed := false
	for fi := range (*cur).Funcs {
		for bi := 0; bi < len((*cur).Funcs[fi].Blocks); bi++ {
			// Body length excludes the terminator, which is never deleted.
			bodyLen := func() int {
				blk := (*cur).Funcs[fi].Blocks[bi]
				n := len(blk.Instrs)
				if t := blk.Term(); t != nil {
					n--
				}
				return n
			}
			for size := bodyLen(); size >= 1; size /= 2 {
				for start := 0; start+size <= bodyLen(); {
					cand := (*cur).Clone()
					blk := cand.Funcs[fi].Blocks[bi]
					blk.Instrs = append(blk.Instrs[:start:start], blk.Instrs[start+size:]...)
					if holds(cand) {
						*cur = cand
						changed = true
					} else {
						start++
					}
				}
			}
		}
	}
	return changed
}

// constifyDefs tries to replace each value-producing instruction with a
// constant-zero definition of the same register, cutting its operands loose.
func constifyDefs(cur **ir.Program, holds func(*ir.Program) bool) bool {
	changed := false
	for fi := range (*cur).Funcs {
		for bi := range (*cur).Funcs[fi].Blocks {
			for ii := range (*cur).Funcs[fi].Blocks[bi].Instrs {
				ins := (*cur).Funcs[fi].Blocks[bi].Instrs[ii]
				switch ins.Op {
				case ir.OpConst, ir.OpFConst, ir.OpNewArr:
					continue // already minimal / array refs must stay arrays
				}
				if ins.IsTerminator() || !ins.HasDst() {
					continue
				}
				cand := (*cur).Clone()
				cfn := cand.Funcs[fi]
				old := cfn.Blocks[bi].Instrs[ii]
				var c *ir.Instr
				if floatResult(old) {
					c = cfn.NewInstr(ir.OpFConst)
				} else {
					c = cfn.NewInstr(ir.OpConst)
					c.W = old.W
					if c.W == 0 {
						c.W = ir.W64
					}
				}
				c.Dst = old.Dst
				c.Blk = old.Blk
				cfn.Blocks[bi].Instrs[ii] = c
				if holds(cand) {
					*cur = cand
					changed = true
				}
			}
		}
	}
	return changed
}

// floatResult reports whether the instruction defines a float register.
func floatResult(ins *ir.Instr) bool {
	switch ins.Op {
	case ir.OpFConst, ir.OpFMov, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpFNeg, ir.OpI2D, ir.OpL2D, ir.OpFCall:
		return true
	case ir.OpArrLoad, ir.OpLoadG, ir.OpCall:
		return ins.Float
	}
	return false
}

// zeroConsts rewrites constants to 0 — smaller immediates make reproducers
// easier to read and often expose that a value is irrelevant.
func zeroConsts(cur **ir.Program, holds func(*ir.Program) bool) bool {
	changed := false
	for fi := range (*cur).Funcs {
		fn := (*cur).Funcs[fi]
		for bi := range fn.Blocks {
			for ii := range fn.Blocks[bi].Instrs {
				ins := (*cur).Funcs[fi].Blocks[bi].Instrs[ii]
				if ins.Op != ir.OpConst || ins.Const == 0 {
					continue
				}
				cand := (*cur).Clone()
				cand.Funcs[fi].Blocks[bi].Instrs[ii].Const = 0
				if holds(cand) {
					*cur = cand
					changed = true
				}
			}
		}
	}
	return changed
}
