package difftest

import (
	"fmt"
	"strconv"
	"strings"

	"signext/internal/ir"
)

// Repro is a self-contained, minimized reproducer: a 32-bit-form IR program
// plus everything needed to replay the failing property. The on-disk form is
// the canonical textual IR preceded by "; key: value" comment headers, so a
// reproducer is at once a regression-test input, a valid sxelim input
// (`sxelim repro.ir`), and readable in any editor.
type Repro struct {
	Seed    int64  // generator seed that produced the original program
	Kind    string // generator kind: "mj" or "ir"
	Prop    string // failed property ("oracle", "fixpoint", ...; "chaos" = planted fault)
	Machine ir.Machine
	Chaos   int64  // fault-injector seed for prop "chaos"; 0 otherwise
	Rule    string // peephole rule a directed corpus entry targets; "" otherwise
	Detail  string // one-line description of the original failure
	Prog    *ir.Program
}

// Marshal renders the reproducer in its on-disk form.
func (r *Repro) Marshal() []byte {
	var b strings.Builder
	b.WriteString("; sxfuzz reproducer — regenerate with: sxfuzz -minimize (see EXPERIMENTS.md)\n")
	fmt.Fprintf(&b, "; seed: %d\n", r.Seed)
	fmt.Fprintf(&b, "; kind: %s\n", r.Kind)
	fmt.Fprintf(&b, "; prop: %s\n", r.Prop)
	fmt.Fprintf(&b, "; machine: %v\n", r.Machine)
	if r.Chaos != 0 {
		fmt.Fprintf(&b, "; chaos: %d\n", r.Chaos)
	}
	if r.Rule != "" {
		fmt.Fprintf(&b, "; rule: %s\n", r.Rule)
	}
	if r.Detail != "" {
		fmt.Fprintf(&b, "; detail: %s\n", oneLine(r.Detail))
	}
	b.WriteString(formatProgram(r.Prog))
	return []byte(b.String())
}

// ParseRepro decodes the on-disk form; the IR parser itself skips the
// comment headers, which are re-read here for the metadata.
func ParseRepro(data []byte) (*Repro, error) {
	r := &Repro{Kind: "ir"}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ";") {
			continue
		}
		kv := strings.SplitN(strings.TrimSpace(strings.TrimPrefix(line, ";")), ":", 2)
		if len(kv) != 2 {
			continue
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "seed":
			r.Seed, _ = strconv.ParseInt(val, 10, 64)
		case "kind":
			r.Kind = val
		case "prop":
			r.Prop = val
		case "machine":
			if val == "ppc64" {
				r.Machine = ir.PPC64
			}
		case "chaos":
			r.Chaos, _ = strconv.ParseInt(val, 10, 64)
		case "rule":
			r.Rule = val
		case "detail":
			r.Detail = val
		}
	}
	if r.Prop == "" {
		return nil, fmt.Errorf("difftest: reproducer has no \"; prop:\" header")
	}
	prog, err := ir.ParseProgram(string(data))
	if err != nil {
		return nil, fmt.Errorf("difftest: reproducer IR: %w", err)
	}
	if prog.Func("main") == nil {
		return nil, fmt.Errorf("difftest: reproducer has no main function")
	}
	r.Prog = prog
	return r, nil
}

// Filename is the canonical reproducer name: property, kind and seed
// identify a finding uniquely within a campaign.
func (r *Repro) Filename() string {
	return fmt.Sprintf("repro_%s_%s_seed%d.ir", r.Prop, r.Kind, r.Seed)
}

func oneLine(s string) string {
	return strings.Join(strings.Fields(strings.ReplaceAll(s, "\n", " ")), " ")
}
