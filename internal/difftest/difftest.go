// Package difftest is the differential and metamorphic testing engine for
// the sign extension elimination pipeline. For each generated program it
// checks, against the real jit pipeline:
//
//   - the differential oracle: the fully eliminated build must reproduce the
//     unoptimized Convert64-only build bit-for-bit (output and trap
//     identity) and never execute more dynamic extensions;
//   - the 32-bit reference: the Convert64-only 64-bit build must reproduce
//     the frontend's 32-bit-form semantics (this is Convert64's own
//     correctness contract);
//   - cross-machine agreement: the IA64 and PPC64 reference outputs match;
//   - the guarded pipeline compiles every valid program with zero fallbacks;
//   - lowering cost invariants: IA64 sxt1/2/4 counts equal the surviving
//     OpExt count, PPC64 extsb/h/w counts equal it plus one per byte load
//     (the model pairs lbz with extsb);
//   - parallel identity: Parallelism=1 and Parallelism=N produce
//     bit-identical results;
//   - dispatch identity: the token-threaded bytecode interpreter and the
//     reference tree walker agree bit-for-bit — output, traps, step and
//     cycle accounting, dynamic extension counts, branch profiles — on both
//     the profiling-tier and optimized-tier configurations;
//   - cache identity (opt-in via Config.Cache): warm compile-cache hits are
//     bit-identical to the cold compile that populated the cache, at every
//     worker count;
//   - profile identity (opt-in via Config.Tiered): executing under the
//     tiered runtime — interpreter tier first, promotion to the compiled
//     tier mid-run — is bit-identical, in output and trap behaviour, to the
//     32-bit reference, and the steady-state Finalize artifact equals a
//     one-shot compile fed the gathered profile (the frozen-profile
//     invariant), at every worker count;
//   - budget monotonicity: Stats.Eliminated is monotone non-decreasing in
//     ElimBudget (exhaustion falls a function back to Convert64-only);
//   - fixpoint convergence: re-running Eliminate on its own output keeps
//     semantics, never increases the static extension count, and reaches a
//     textual fixpoint within a few iterations. (Strict single-pass
//     idempotence is empirically false — a second pass occasionally finds
//     one more eliminable extension — so the property checked is
//     convergence, not no-op; see DESIGN.md §8.)
//
// Failures are minimized by the shrinker (shrink.go) and persisted as
// self-contained reproducers (repro.go) which regress_test.go replays as
// ordinary go tests. Campaign (campaign.go) drives timed multi-worker runs;
// cmd/sxfuzz is its CLI.
package difftest

import (
	"errors"
	"fmt"
	"reflect"
	"strings"

	"signext/internal/codecache"
	"signext/internal/extelim"
	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/minijava"
	"signext/internal/progen"
	"signext/internal/target"
	"signext/internal/tiered"
)

// Program is one differential-test subject: a 32-bit-form IR program, plus
// the seed and generator kind that reproduce it.
type Program struct {
	Seed   int64
	Kind   string      // "mj" (via the MiniJava frontend) or "ir" (direct)
	Source string      // MiniJava source when Kind == "mj"
	Prog   *ir.Program // 32-bit form (frontend output)
}

// Generate builds the subject for one (seed, kind) pair. kind "mj" runs the
// progen MiniJava generator through the real frontend; kind "ir" uses the
// direct IR generator. A frontend rejection of a generated program is a
// generator bug and comes back as an error.
func Generate(seed int64, kind string, gen progen.Config) (*Program, error) {
	switch kind {
	case "mj":
		src := progen.MiniJava(seed, gen)
		cu, err := minijava.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("difftest: seed %d: frontend rejected generated source: %w", seed, err)
		}
		return &Program{Seed: seed, Kind: kind, Source: src, Prog: cu.Prog}, nil
	case "ir":
		return &Program{Seed: seed, Kind: kind, Prog: progen.IR(seed, gen)}, nil
	}
	return nil, fmt.Errorf("difftest: unknown program kind %q", kind)
}

// Config selects which properties Check runs and their budgets.
type Config struct {
	Machines    []ir.Machine // default {IA64, PPC64}
	MaxSteps    int64        // per interpreter run (default 50M)
	Budgets     []int        // ascending ElimBudget ladder; default {300, 3000}
	Parallelism int          // worker count of the parallel-identity leg (default 4)
	FixpointK   int          // Eliminate iterations allowed to converge (default 4)

	// Cache adds the cache-identity metamorphic property: compiling through a
	// freshly populated compile cache (warm hit) must be bit-identical to the
	// cold compile that populated it, at every worker count.
	Cache bool

	// Tiered adds the profile-identity metamorphic property: tiered execution
	// (functions promoted from the interpreter tier mid-run) must reproduce
	// the 32-bit reference bit-for-bit on every invocation, and its
	// steady-state Finalize artifact must equal a one-shot compile fed the
	// gathered profile, at every worker count.
	Tiered bool

	// Dispatch adds the dispatch-identity property: the token-threaded
	// bytecode interpreter must be bit-identical to the reference tree
	// walker — same output, trap, step count, cycle split, dynamic
	// extension count, branch profile and call counts — on both the
	// profiling-tier configuration (Mode32 on the source program) and the
	// optimized-tier configuration (Mode64 on the compiled program). The
	// property also runs as part of the default heavy set.
	Dispatch bool

	// Peep adds the peep-identity property: a build with the rule-table
	// peephole pass enabled must reproduce the reference build's output and
	// trap behaviour exactly, under both interpreter dispatchers. Only
	// observable behaviour is compared — the shift-ext rule may legitimately
	// materialize extension instructions, so dynamic extension counts are
	// out of scope for this property (unlike the oracle's).
	Peep bool

	// PeepRules restricts the peep-identity property's pass to the named
	// rules (nil = the whole table) — the focused mode for replaying a
	// directed corpus entry against the one rule it targets.
	PeepRules []string

	// Serve adds the serve-identity property: the same program submitted to
	// an in-process compile daemon (internal/serve) must produce the same
	// static results and the same output/trap as the direct jit compile —
	// and a second request forced to the degraded floor by a hostile
	// deadline must still reproduce the reference output. The daemon is
	// exercised through its real HTTP handler, not by calling into the
	// pipeline directly.
	Serve bool

	// OracleOnly restricts Check to the differential oracle and fallback
	// properties — the fast mode for high-throughput campaigns; the
	// metamorphic properties then run on a sample, not every program.
	OracleOnly bool
}

func (c Config) withDefaults() Config {
	if len(c.Machines) == 0 {
		c.Machines = []ir.Machine{ir.IA64, ir.PPC64}
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []int{300, 3000}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.FixpointK <= 0 {
		c.FixpointK = 4
	}
	return c
}

// Failure is one property violation on one program.
type Failure struct {
	Prop    string // property name: "oracle", "fallback", "lowering", ...
	Machine ir.Machine
	Detail  string
}

func (f Failure) String() string {
	return fmt.Sprintf("[%s/%v] %s", f.Prop, f.Machine, f.Detail)
}

// Check runs every configured property on one program. skipped reports that
// the program proved nothing (its reference run hit the step limit) and
// should not count as covered. An empty failure list means every property
// held.
func Check(p *Program, cfg Config) (fails []Failure, skipped bool) {
	cfg = cfg.withDefaults()
	fail := func(prop string, mach ir.Machine, format string, args ...interface{}) {
		fails = append(fails, Failure{Prop: prop, Machine: mach, Detail: fmt.Sprintf(format, args...)})
	}

	// The 32-bit-form reference semantics: ground truth for everything.
	ref32, ref32Err := interp.Run(p.Prog, "main", interp.Options{
		Mode: interp.Mode32, MaxSteps: cfg.MaxSteps,
	})
	if errors.Is(ref32Err, interp.ErrStepLimit) {
		return nil, true
	}

	refOut := map[ir.Machine]string{}
	for _, mach := range cfg.Machines {
		opts := jit.Options{
			Variant: jit.All, Machine: mach, GeneralOpts: true,
			Checked: true, Parallelism: 1,
		}
		res, err := jit.Compile(p.Prog, opts)
		if err != nil {
			fail("compile", mach, "guarded compile failed: %v", err)
			continue
		}
		for _, fb := range res.Fallbacks {
			fail("fallback", mach, "pipeline fell back on valid input: %v", fb)
		}

		// Differential oracle: Convert64-only reference vs fully eliminated.
		oracle := guard.Oracle{Machine: mach, MaxSteps: cfg.MaxSteps}
		rep, oerr := oracle.Check(p.Prog, res.Prog)
		if errors.Is(rep.RefErr, interp.ErrStepLimit) && errors.Is(rep.OptErr, interp.ErrStepLimit) {
			return nil, true
		}
		if oerr != nil {
			fail("oracle", mach, "%v", oerr)
		}
		if rep.RefErr == nil {
			refOut[mach] = rep.RefOutput
		}

		// Convert64 contract: the 64-bit reference build reproduces the
		// 32-bit-form semantics exactly.
		if (ref32Err != nil) != (rep.RefErr != nil) {
			fail("mode32", mach, "trap mismatch: 32-bit form %v, Convert64 reference %v", ref32Err, rep.RefErr)
		} else if ref32.Output != rep.RefOutput {
			fail("mode32", mach, "output mismatch:\n32-bit form %q\nConvert64 reference %q", ref32.Output, rep.RefOutput)
		}

		if d := loweringDetail(res.Prog, mach); d != "" {
			fail("lowering", mach, "%s", d)
		}

		// Dispatch identity: cheap enough (two extra interpreter runs per
		// leg) to run in the heavy set by default, and separately opt-in
		// for focused campaigns.
		if cfg.Dispatch || !cfg.OracleOnly {
			if d := dispatchDetail(p.Prog, res.Prog, mach, cfg.MaxSteps); d != "" {
				fail("dispatch-identity", mach, "%s", d)
			}
		}

		// Peep identity: like dispatch identity, cheap enough to gate only on
		// its opt-in, not on the heavy set, so directed corpus entries replay
		// it in oracle-only campaigns.
		if cfg.Peep {
			if d := peepDetail(p.Prog, mach, rep.RefOutput, rep.RefErr, cfg); d != "" {
				fail("peep-identity", mach, "%s", d)
			}
		}

		if cfg.OracleOnly {
			continue
		}

		// Parallel identity: worker count must not change the result.
		popts := opts
		popts.Parallelism = cfg.Parallelism
		pres, err := jit.Compile(p.Prog, popts)
		if err != nil {
			fail("parallel-identity", mach, "parallel compile failed: %v", err)
		} else if fingerprint(res) != fingerprint(pres) {
			fail("parallel-identity", mach, "Parallelism=1 and Parallelism=%d results differ", cfg.Parallelism)
		}

		// Cache identity: a warm cache hit must reproduce the cold compile
		// bit-for-bit at every worker count, and the cold cached compile must
		// match the uncached one.
		if cfg.Cache {
			cache := codecache.New(64 << 20)
			copts := opts
			copts.Cache = cache
			cold, cerr := jit.Compile(p.Prog, copts)
			if cerr != nil {
				fail("cache-identity", mach, "cold cached compile failed: %v", cerr)
			} else if fingerprint(cold) != fingerprint(res) {
				fail("cache-identity", mach, "cold compile through the cache differs from the uncached compile")
			} else {
				for _, par := range []int{1, cfg.Parallelism} {
					wopts := copts
					wopts.Parallelism = par
					warm, werr := jit.Compile(p.Prog, wopts)
					if werr != nil {
						fail("cache-identity", mach, "warm compile (par=%d) failed: %v", par, werr)
						continue
					}
					if warm.CacheStats == nil || warm.CacheStats.Misses != 0 || warm.CacheStats.Hits == 0 {
						fail("cache-identity", mach, "warm compile (par=%d) was not fully warm: %+v", par, warm.CacheStats)
					}
					if fingerprint(warm) != fingerprint(cold) {
						fail("cache-identity", mach, "warm cache hit (par=%d) differs from the cold compile", par)
					}
				}
			}
		}

		// Serve identity: the daemon's answer over its real HTTP handler
		// must agree with the direct compile, healthy and degraded.
		if cfg.Serve {
			if d := serveDetail(p, mach, res, rep, cfg); d != "" {
				fail("serve-identity", mach, "%s", d)
			}
		}

		// Profile identity: the tiered runtime promotes every function after
		// its first call (threshold 1), so later invocations run compiled
		// bodies mid-profile. Every invocation must reproduce the 32-bit
		// reference exactly, and by the frozen-profile invariant the
		// steady-state artifact must equal a one-shot compile fed the
		// gathered profile.
		if cfg.Tiered {
			for _, par := range []int{1, cfg.Parallelism} {
				topts := opts
				topts.Parallelism = par
				mgr, terr := tiered.New(p.Prog, tiered.Config{
					Options: topts, HotThreshold: 1, MaxSteps: cfg.MaxSteps,
				})
				if terr != nil {
					fail("profile-identity", mach, "tiered manager (par=%d): %v", par, terr)
					continue
				}
				proved := true
				for i := 1; i <= 3; i++ {
					tres, ierr := mgr.Invoke()
					if errors.Is(ierr, interp.ErrStepLimit) {
						proved = false // step-limited invocation proves nothing
						break
					}
					if (ierr != nil) != (ref32Err != nil) {
						fail("profile-identity", mach, "invocation %d (par=%d) trap mismatch: tiered %v, 32-bit reference %v",
							i, par, ierr, ref32Err)
						proved = false
						break
					}
					if tres.Output != ref32.Output {
						fail("profile-identity", mach, "invocation %d (par=%d) output mismatch:\ntiered %q\n32-bit reference %q",
							i, par, tres.Output, ref32.Output)
						proved = false
						break
					}
				}
				if !proved {
					continue
				}
				final, ferr := mgr.Finalize()
				if ferr != nil {
					fail("profile-identity", mach, "finalize (par=%d): %v", par, ferr)
					continue
				}
				sopts := topts
				sopts.Profile = mgr.Profile().ToInterp()
				oneshot, serr := jit.Compile(p.Prog, sopts)
				if serr != nil {
					fail("profile-identity", mach, "one-shot profile compile (par=%d): %v", par, serr)
					continue
				}
				if fingerprint(final) != fingerprint(oneshot) {
					fail("profile-identity", mach, "steady-state artifact (par=%d) differs from the one-shot compile with the gathered profile", par)
				}
			}
		}

		// Budget monotonicity: a larger work budget never eliminates less.
		prev, prevBudget := -1, 0
		for _, budget := range append(append([]int{}, cfg.Budgets...), 0) {
			bopts := opts
			bopts.ElimBudget = budget
			bres, err := jit.Compile(p.Prog, bopts)
			if err != nil {
				fail("budget", mach, "compile with budget %d failed: %v", budget, err)
				break
			}
			if prev >= 0 && bres.Stats.Eliminated < prev {
				fail("budget", mach, "eliminated count not monotone: budget %d eliminated %d, budget %d eliminated %d",
					prevBudget, prev, budget, bres.Stats.Eliminated)
			}
			prev, prevBudget = bres.Stats.Eliminated, budget
		}

		checkFixpoint(res, mach, cfg, p, fail)
	}

	// Cross-machine agreement of the reference builds.
	if a, aok := refOut[ir.IA64]; aok {
		if b, bok := refOut[ir.PPC64]; bok && a != b {
			fail("cross-machine", ir.IA64, "IA64 and PPC64 reference outputs differ:\nia64 %q\nppc64 %q", a, b)
		}
	}
	return fails, false
}

// checkFixpoint re-runs the elimination phase on its own output: the static
// extension count must never grow, the IR must reach a textual fixpoint
// within FixpointK iterations, and the converged program must still satisfy
// the oracle.
func checkFixpoint(res *jit.Result, mach ir.Machine, cfg Config, p *Program,
	fail func(prop string, mach ir.Machine, format string, args ...interface{})) {
	clone := res.Prog.Clone()
	ecfg := extelim.Config{Machine: mach, Insert: true, Order: true, Array: true}
	count := func() int {
		n := 0
		for _, fn := range clone.Funcs {
			n += fn.CountOp(ir.OpExt)
		}
		return n
	}
	prevExts, prevText := count(), formatProgram(clone)
	converged := false
	for it := 1; it <= cfg.FixpointK; it++ {
		for _, fn := range clone.Funcs {
			extelim.Eliminate(fn, ecfg)
		}
		exts, text := count(), formatProgram(clone)
		if exts > prevExts {
			fail("fixpoint", mach, "iteration %d grew the static extension count %d -> %d", it, prevExts, exts)
			return
		}
		if text == prevText {
			converged = true
			break
		}
		prevExts, prevText = exts, text
	}
	if !converged {
		fail("fixpoint", mach, "Eliminate did not reach an IR fixpoint within %d iterations", cfg.FixpointK)
		return
	}
	oracle := guard.Oracle{Machine: mach, MaxSteps: cfg.MaxSteps}
	if _, err := oracle.Check(p.Prog, clone); err != nil {
		fail("fixpoint", mach, "converged program violates the oracle: %v", err)
	}
}

// dispatchDetail runs a program under both interpreter dispatchers and
// demands bit-identical results: output, trap string, step count, total and
// per-mode cycles, dynamic extension count, branch profile, and call counts.
// It checks the two configurations the system actually runs: the profiling
// tier (Mode32, profile and call counting, on the source program) and the
// optimized tier (Mode64, dummy checking, on the compiled program).
func dispatchDetail(src, opt *ir.Program, mach ir.Machine, maxSteps int64) string {
	legs := []struct {
		name string
		prog *ir.Program
		opts interp.Options
	}{
		{"profiling-32", src, interp.Options{
			Mode: interp.Mode32, Machine: mach, MaxSteps: maxSteps,
			Profile: true, CountCalls: true, Cost: target.CostModel(mach),
		}},
		{"optimized-64", opt, interp.Options{
			Mode: interp.Mode64, Machine: mach, MaxSteps: maxSteps,
			CheckDummies: true, Cost: target.CostModel(mach),
		}},
	}
	for _, leg := range legs {
		so := leg.opts
		so.Dispatch = interp.DispatchSwitch
		sw, swErr := interp.Run(leg.prog, "main", so)
		to := leg.opts
		to.Dispatch = interp.DispatchThreaded
		th, thErr := interp.Run(leg.prog, "main", to)
		if d := dispatchCompare(sw, swErr, th, thErr); d != "" {
			return fmt.Sprintf("%s leg: %s", leg.name, d)
		}
	}
	return ""
}

// dispatchCompare reports the first divergence between a switch-dispatch run
// and a threaded-dispatch run, or "" if they are bit-identical.
func dispatchCompare(sw *interp.Result, swErr error, th *interp.Result, thErr error) string {
	errStr := func(err error) string {
		if err == nil {
			return "<nil>"
		}
		return err.Error()
	}
	if errStr(swErr) != errStr(thErr) {
		return fmt.Sprintf("trap mismatch: switch %v, threaded %v", swErr, thErr)
	}
	if sw.Output != th.Output {
		return fmt.Sprintf("output mismatch:\nswitch %q\nthreaded %q", sw.Output, th.Output)
	}
	if sw.Steps != th.Steps {
		return fmt.Sprintf("step count mismatch: switch %d, threaded %d", sw.Steps, th.Steps)
	}
	if sw.Cycles != th.Cycles {
		return fmt.Sprintf("cycle count mismatch: switch %d, threaded %d", sw.Cycles, th.Cycles)
	}
	if sw.ModeCycles != th.ModeCycles {
		return fmt.Sprintf("mode cycle split mismatch: switch %v, threaded %v", sw.ModeCycles, th.ModeCycles)
	}
	if sw.Ext != th.Ext {
		return fmt.Sprintf("dynamic extension count mismatch: switch %d, threaded %d", sw.Ext, th.Ext)
	}
	if !reflect.DeepEqual(sw.Profile, th.Profile) {
		return fmt.Sprintf("branch profile mismatch:\nswitch %v\nthreaded %v", sw.Profile, th.Profile)
	}
	if !reflect.DeepEqual(sw.Calls, th.Calls) {
		return fmt.Sprintf("call count mismatch:\nswitch %v\nthreaded %v", sw.Calls, th.Calls)
	}
	return ""
}

// peepDetail compiles the program with the rule-table peephole pass enabled
// and demands the reference build's observable behaviour: same trap, same
// output, under both interpreter dispatchers. The pass must also never fall
// back on valid input.
func peepDetail(src *ir.Program, mach ir.Machine, refOut string, refErr error, cfg Config) string {
	res, err := jit.Compile(src, jit.Options{
		Variant: jit.All, Machine: mach, GeneralOpts: true,
		Checked: true, Parallelism: 1,
		Peep: true, PeepRules: cfg.PeepRules,
	})
	if err != nil {
		return fmt.Sprintf("peep compile failed: %v", err)
	}
	for _, fb := range res.Fallbacks {
		return fmt.Sprintf("peep pipeline fell back on valid input: %v", fb)
	}
	for _, d := range []interp.Dispatch{interp.DispatchSwitch, interp.DispatchThreaded} {
		out, rerr := interp.Run(res.Prog, "main", interp.Options{
			Mode: interp.Mode64, Machine: mach, MaxSteps: cfg.MaxSteps, Dispatch: d,
		})
		if (rerr != nil) != (refErr != nil) {
			return fmt.Sprintf("dispatch %d trap mismatch: peeped %v, reference %v", d, rerr, refErr)
		}
		if rerr == nil && out.Output != refOut {
			return fmt.Sprintf("dispatch %d output mismatch:\npeeped    %q\nreference %q", d, out.Output, refOut)
		}
	}
	return ""
}

// loweringDetail cross-checks the machine-level extension cost against the
// IR-level count. IA64 materializes exactly one sxt1/sxt2/sxt4 per OpExt;
// PPC64 one extsb/extsh/extsw per OpExt plus one extsb per byte load (no
// sign-extending lba exists, so lbz pairs with extsb).
func loweringDetail(prog *ir.Program, mach ir.Machine) string {
	for _, fn := range prog.Funcs {
		asm := target.Lower(fn, mach)
		exts := fn.CountOp(ir.OpExt)
		var got, want int
		switch mach {
		case ir.IA64:
			got = asm.Count("sxt1") + asm.Count("sxt2") + asm.Count("sxt4")
			want = exts
		case ir.PPC64:
			byteLoads := 0
			fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
				if (ins.Op == ir.OpArrLoad || ins.Op == ir.OpLoadG) && ins.W == ir.W8 && !ins.Float {
					byteLoads++
				}
			})
			got = asm.Count("extsb") + asm.Count("extsh") + asm.Count("extsw")
			want = exts + byteLoads
		}
		if got != want {
			return fmt.Sprintf("%s: machine ext count %d, IR predicts %d", fn.Name, got, want)
		}
	}
	return ""
}

// fingerprint captures everything about a compile result that must not
// depend on worker scheduling: the IR, statistics, telemetry shape (minus
// wall times) and fallback records.
func fingerprint(res *jit.Result) string {
	var b strings.Builder
	for _, fn := range res.Prog.Funcs {
		b.WriteString(fn.Format())
	}
	fmt.Fprintf(&b, "stats=%+v static=%d rewrites=%d\n", res.Stats, res.StaticExts, res.PeepRewrites)
	for _, r := range res.Telemetry {
		if r.Phase == jit.PhaseCache {
			// Warm compiles record a per-function lookup-cost entry; it is
			// bookkeeping, not output, and must not break cache identity.
			continue
		}
		fmt.Fprintf(&b, "tel %s %s %d %d %d %d %v\n", r.Func, r.Phase, r.Eliminated, r.Inserted, r.Dummies, r.Rewrites, r.Fallback)
	}
	for _, fb := range res.Fallbacks {
		fmt.Fprintf(&b, "fb %s %s\n", fb.Phase, fb.Func)
	}
	return b.String()
}

// formatProgram renders a program in its canonical textual form.
func formatProgram(p *ir.Program) string {
	var b strings.Builder
	if p.NGlobals > 0 {
		fmt.Fprintf(&b, "globals %d\n", p.NGlobals)
	}
	for _, fn := range p.Funcs {
		b.WriteString(fn.Format())
		b.WriteByte('\n')
	}
	return b.String()
}
