package difftest

import (
	"testing"

	"signext/internal/minijava"
	"signext/internal/progen"
)

// TestServeIdentityOnGeneratedPrograms runs the serve-identity property over
// a batch of generated programs of both kinds: every daemon answer — healthy
// and forced-degraded — must agree with the direct compile and reference.
func TestServeIdentityOnGeneratedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, kind := range []string{"mj", "ir"} {
			p, err := Generate(seed, kind, progen.Config{Stmts: 6})
			if err != nil {
				t.Fatal(err)
			}
			fails, skipped := Check(p, Config{Serve: true, OracleOnly: false})
			if skipped {
				continue
			}
			for _, f := range fails {
				t.Errorf("seed %d kind %s: %s", seed, kind, f.String())
			}
		}
	}
}

// TestServeIdentityCatchesTrapPrograms: a program whose reference run traps
// (here: the recursion depth bound) must flow through the serve property as
// expected-equal — the daemon reports the same trap, healthy and degraded.
func TestServeIdentityTrapEquality(t *testing.T) {
	src := `
int down(int n) {
	if (n <= 0) return 0;
	return down(n - 1) + 1;
}
void main() {
	print(down(30000));
}`
	cu, err := minijava.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{Seed: 0, Kind: "mj", Source: src, Prog: cu.Prog}
	fails, skipped := Check(p, Config{Serve: true})
	if skipped {
		t.Fatal("depth-trapping program skipped")
	}
	for _, f := range fails {
		t.Errorf("unexpected failure: %s", f.String())
	}
}
