package bench

import (
	"strings"
	"testing"

	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/workloads"
)

// miniSuite is a fast two-workload suite for harness tests.
func miniSuite() []workloads.Workload {
	return []workloads.Workload{
		{Name: "tiny-up", Suite: "test", Source: `
			void main() {
				int[] a = new int[64];
				int s = 0;
				for (int i = 0; i < a.length; i++) { a[i] = i * 3; }
				for (int i = 0; i < a.length; i++) { s += a[i]; }
				print(s);
			}`},
		{Name: "tiny-down", Suite: "test", Source: `
			void main() {
				int[] a = new int[64];
				for (int i = 0; i < a.length; i++) { a[i] = i; }
				int t = 0;
				int i = a.length;
				do { i = i - 1; t += a[i]; } while (i > 0);
				double d = t;
				print(d);
			}`},
	}
}

func TestRunSuite(t *testing.T) {
	res, err := RunSuite(miniSuite(), Options{Machine: ir.IA64, UseProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatch) > 0 {
		t.Fatalf("miscompiles: %v", res.Mismatch)
	}
	if len(res.Names) != 2 {
		t.Fatalf("names: %v", res.Names)
	}
	for _, v := range jit.Variants {
		for wi := range res.Names {
			if res.Ext[v][wi] < 0 || res.Cycles[v][wi] <= 0 {
				t.Fatalf("bad measurement for %v/%s", v, res.Names[wi])
			}
		}
	}
	if res.AvgPct(jit.Baseline) != 100 {
		t.Fatalf("baseline average must be 100%%: %g", res.AvgPct(jit.Baseline))
	}
	if res.AvgPct(jit.All) >= res.AvgPct(jit.FirstAlgorithm) {
		t.Fatalf("the new algorithm must beat the first algorithm: %g vs %g",
			res.AvgPct(jit.All), res.AvgPct(jit.FirstAlgorithm))
	}
	if res.Improvement(jit.All, 0) <= 0 {
		t.Fatalf("no cycle improvement measured: %g", res.Improvement(jit.All, 0))
	}
}

func TestFormatting(t *testing.T) {
	res, err := RunSuite(miniSuite(), Options{
		Machine:  ir.IA64,
		Variants: []jit.Variant{jit.Baseline, jit.FirstAlgorithm, jit.All},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.FormatCountTable("Table T")
	for _, want := range []string{"Table T", "tiny-up", "tiny-down", "baseline", "new algorithm (all)", "%"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("count table missing %q:\n%s", want, tbl)
		}
	}
	fig := res.FormatPctFigure("Figure F")
	if !strings.Contains(fig, "#") || !strings.Contains(fig, "tiny-up") {
		t.Errorf("pct figure malformed:\n%s", fig)
	}
	perf := res.FormatPerfFigure("Figure P")
	if !strings.Contains(perf, "%") {
		t.Errorf("perf figure malformed:\n%s", perf)
	}
	tm := FormatTimingTable([]*SuiteResult{res})
	if !strings.Contains(tm, "average") {
		t.Errorf("timing table malformed:\n%s", tm)
	}
}
