package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"signext/internal/codecache"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/minijava"
	"signext/internal/target"
	"signext/internal/tiered"
	"signext/internal/workloads"
)

// CompileBenchOptions configures a compile-driver benchmark run.
type CompileBenchOptions struct {
	Machine     ir.Machine
	Variant     jit.Variant // defaults to jit.All
	UseProfile  bool
	Parallelism int // worker count of the parallel leg; 0 = runtime.GOMAXPROCS(0)
	Repeats     int // timing repeats per leg, minimum wall kept; 0 = 3

	// Cache adds a cold/warm pass per workload: one compile against an empty
	// compile cache (cold), then Repeats compiles against the now-populated
	// cache with the minimum wall kept (warm), recording hit/miss counters,
	// the warm-start speedup and a bit-identity check between the two.
	Cache      bool
	CacheBytes int64 // cache capacity; 0 = 64 MiB

	// Tiered adds a tiered-runtime pass per workload: the program runs under
	// the tiered execution manager (profiling interpreter tier, promotion to
	// the compiled tier at the hotness threshold) for TieredInvocations
	// invocations, recording tier-up counts, tier-up compile wall and the
	// modelled steady-state speedup, plus an identity check: every
	// invocation's output and the steady-state Finalize artifact must match a
	// one-shot compile fed the gathered profile.
	Tiered            bool
	TieredInvocations int   // invocations per workload; 0 = 4
	HotThreshold      int64 // promotion threshold; 0 = tiered.DefaultHotThreshold

	// Peep adds a peephole pass per workload: the program is recompiled with
	// the rule-table peephole pass (internal/peep) enabled and both builds
	// run under the deterministic cycle model, recording the rewrite count,
	// the cycle delta and an output-identity check.
	Peep bool

	// Interp adds an interpreter microbenchmark pass per workload: the
	// program runs under both dispatch engines in the profiling-tier
	// configuration (switch-dispatch tree walker vs token-threaded
	// bytecode), recording wall times, the threaded speedup and a full
	// result-identity check, plus a threaded run of the optimized program in
	// the compiled-tier configuration. The ratio of interpreter nanoseconds
	// per modelled cycle between the two tiers is the measured
	// interpreter-tier penalty; when the Tiered pass is also enabled it
	// replaces the modelled tiered.DefaultInterpPenalty, so the recorded
	// tier-up speedups are calibrated against this machine rather than
	// assumed.
	Interp bool
}

// CompileBenchWorkload is one workload's compile measurement: the same
// program compiled sequentially and with the worker pool.
type CompileBenchWorkload struct {
	Name      string  `json:"name"`
	Funcs     int     `json:"funcs"`
	SeqWallNS int64   `json:"seq_wall_ns"` // Parallelism = 1, min over repeats
	ParWallNS int64   `json:"par_wall_ns"` // Parallelism = N, min over repeats
	WorkNS    int64   `json:"work_ns"`     // Timing.Total() of the parallel leg
	Speedup   float64 `json:"speedup"`     // SeqWallNS / ParWallNS
	Identical bool    `json:"identical"`   // parallel result bit-identical to sequential
	Exts      int     `json:"static_exts"` // surviving extensions (same both legs)
	Elim      int     `json:"eliminated"`  // eliminated extensions (same both legs)

	// Phases is the per-function, per-phase telemetry of the parallel leg's
	// final repeat — the compile-time trajectory record.
	Phases []jit.PhaseRecord `json:"phases"`

	// Cold/warm pass (present only when CompileBenchOptions.Cache is set): one
	// compile against an empty cache, then Repeats fully-warm compiles with the
	// minimum wall kept.
	ColdWallNS     int64   `json:"cold_wall_ns,omitempty"`
	WarmWallNS     int64   `json:"warm_wall_ns,omitempty"`
	WarmSpeedup    float64 `json:"warm_speedup,omitempty"`    // ColdWallNS / WarmWallNS
	CacheIdentical bool    `json:"cache_identical,omitempty"` // cold and warm bit-identical to the uncached legs
	CacheHits      int     `json:"cache_hits,omitempty"`      // warm pass per-function hits
	CacheMisses    int     `json:"cache_misses,omitempty"`    // warm pass misses (must be 0)

	// Tiered pass (present only when CompileBenchOptions.Tiered is set).
	// Cycles are the interpreter's deterministic cost model, with the
	// interpreter-tier penalty applied, so the steady-state speedup is
	// modelled, reproducible and machine-independent.
	TierUps          int     `json:"tier_ups,omitempty"`           // functions promoted to the compiled tier
	TierUpWallNS     int64   `json:"tier_up_wall_ns,omitempty"`    // wall clock of promotion compile rounds
	TierColdCycles   int64   `json:"tier_cold_cycles,omitempty"`   // modelled cycles, first (all-interpreter) invocation
	TierSteadyCycles int64   `json:"tier_steady_cycles,omitempty"` // modelled cycles, last (steady-state) invocation
	TierSpeedup      float64 `json:"tier_speedup,omitempty"`       // TierColdCycles / TierSteadyCycles
	TierIdentical    bool    `json:"tier_identical,omitempty"`     // outputs + Finalize identical to the one-shot profile compile

	// Interpreter microbenchmark pass (present only when
	// CompileBenchOptions.Interp is set). Wall times are minima over
	// Repeats; identity covers output, traps, step and cycle accounting,
	// dynamic extension counts, branch profiles and call counts.
	InterpSwitchNS   int64   `json:"interp_switch_ns,omitempty"`   // profiling tier, switch dispatch
	InterpThreadedNS int64   `json:"interp_threaded_ns,omitempty"` // profiling tier, threaded dispatch
	InterpSpeedup    float64 `json:"interp_speedup,omitempty"`     // InterpSwitchNS / InterpThreadedNS
	InterpCompiledNS int64   `json:"interp_compiled_ns,omitempty"` // compiled tier (optimized prog, Mode64), threaded
	InterpIdentical  bool    `json:"interp_identical,omitempty"`   // threaded results bit-identical to switch
	MeasuredPenalty  float64 `json:"measured_penalty,omitempty"`   // (switch ns/cycle) / (compiled ns/cycle)

	// Peephole pass (present only when CompileBenchOptions.Peep is set): the
	// same workload recompiled with the rule-table peephole pass enabled,
	// with both builds executed under the deterministic cycle model. The
	// peeped build must print the same output and must never cost more
	// modelled cycles — a pessimizing rule breaks Validate, not just a
	// benchmark number.
	PeepWallNS    int64 `json:"peep_wall_ns,omitempty"`   // compile wall with -peep, min over repeats
	PeepRewrites  int   `json:"peep_rewrites,omitempty"`  // rule-table rewrites applied
	BaseCycles    int64 `json:"base_cycles,omitempty"`    // modelled cycles without the pass
	PeepCycles    int64 `json:"peep_cycles,omitempty"`    // modelled cycles with the pass
	PeepIdentical bool  `json:"peep_identical,omitempty"` // outputs bit-identical
}

// CompileBenchResult is the BENCH_compile.json artifact: the compile-driver
// benchmark over one workload suite.
type CompileBenchResult struct {
	Suite       string                 `json:"suite"`
	Machine     string                 `json:"machine"`
	Variant     string                 `json:"variant"`
	Parallelism int                    `json:"parallelism"` // resolved worker count of the parallel leg
	NumCPU      int                    `json:"num_cpu"`
	Repeats     int                    `json:"repeats"`
	Workloads   []CompileBenchWorkload `json:"workloads"`
	TotalSeqNS  int64                  `json:"total_seq_wall_ns"`
	TotalParNS  int64                  `json:"total_par_wall_ns"`
	Speedup     float64                `json:"speedup"` // TotalSeqNS / TotalParNS

	// Cold/warm aggregates (present only when the compile cache was enabled).
	CacheEnabled bool             `json:"cache_enabled,omitempty"`
	TotalColdNS  int64            `json:"total_cold_wall_ns,omitempty"`
	TotalWarmNS  int64            `json:"total_warm_wall_ns,omitempty"`
	WarmSpeedup  float64          `json:"warm_speedup,omitempty"` // TotalColdNS / TotalWarmNS
	CacheStats   *codecache.Stats `json:"cache_stats,omitempty"`  // counters summed over per-workload caches

	// Tiered aggregates (present only when the tiered pass was enabled).
	TieredEnabled     bool    `json:"tiered_enabled,omitempty"`
	TieredInvocations int     `json:"tiered_invocations,omitempty"`
	TotalTierUps      int     `json:"total_tier_ups,omitempty"`
	TotalTierUpNS     int64   `json:"total_tier_up_wall_ns,omitempty"`
	TierSpeedup       float64 `json:"tier_speedup,omitempty"` // sum cold cycles / sum steady cycles

	// Interpreter microbenchmark aggregates (present only when the interp
	// pass was enabled).
	InterpEnabled   bool    `json:"interp_enabled,omitempty"`
	TotalInterpSwNS int64   `json:"total_interp_switch_ns,omitempty"`
	TotalInterpThNS int64   `json:"total_interp_threaded_ns,omitempty"`
	InterpSpeedup   float64 `json:"interp_speedup,omitempty"`   // sum switch walls / sum threaded walls
	MeasuredPenalty float64 `json:"measured_penalty,omitempty"` // suite-wide (switch ns/cycle) / (compiled ns/cycle)

	// Peephole aggregates (present only when the peep pass was enabled).
	PeepEnabled     bool    `json:"peep_enabled,omitempty"`
	TotalRewrites   int     `json:"total_peep_rewrites,omitempty"`
	TotalBaseCycles int64   `json:"total_base_cycles,omitempty"`
	TotalPeepCycles int64   `json:"total_peep_cycles,omitempty"`
	PeepCycleGain   float64 `json:"peep_cycle_gain,omitempty"` // sum base cycles / sum peeped cycles
}

// compileFingerprint captures everything that must not depend on the worker
// count: IR, statistics, telemetry shape (minus walls) and fallbacks.
func compileFingerprint(res *jit.Result) string {
	var b strings.Builder
	for _, fn := range res.Prog.Funcs {
		b.WriteString(fn.Format())
	}
	fmt.Fprintf(&b, "stats=%+v static=%d rewrites=%d\n", res.Stats, res.StaticExts, res.PeepRewrites)
	for _, r := range res.Telemetry {
		if r.Phase == jit.PhaseCache {
			// Warm compiles add a lookup-cost record per function; it carries
			// no correctness content and must not break warm/cold identity.
			continue
		}
		fmt.Fprintf(&b, "tel %s %s %d %d %d %d %v\n", r.Func, r.Phase, r.Eliminated, r.Inserted, r.Dummies, r.Rewrites, r.Fallback)
	}
	for _, fb := range res.Fallbacks {
		fmt.Fprintf(&b, "fb %s %s\n", fb.Phase, fb.Func)
	}
	return b.String()
}

// CompileBench compiles every workload under the chosen variant twice — once
// strictly sequentially, once on the worker pool — verifying the two produce
// bit-identical results and recording wall times and per-phase telemetry.
func CompileBench(ws []workloads.Workload, o CompileBenchOptions) (*CompileBenchResult, error) {
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	variant := o.Variant
	if variant == jit.Baseline {
		variant = jit.All // zero value; Baseline has no sign-ext phase to measure
	}
	res := &CompileBenchResult{
		Machine:     o.Machine.String(),
		Variant:     variant.String(),
		Parallelism: par,
		NumCPU:      runtime.NumCPU(),
		Repeats:     o.Repeats,
	}
	if len(ws) > 0 {
		res.Suite = ws[0].Suite
		for _, w := range ws {
			if w.Suite != res.Suite {
				res.Suite = "all"
				break
			}
		}
	}
	cacheBytes := o.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = 64 << 20
	}
	var agg codecache.Stats
	res.CacheEnabled = o.Cache
	tieredInv := o.TieredInvocations
	if tieredInv <= 0 {
		tieredInv = 4
	}
	res.TieredEnabled = o.Tiered
	if o.Tiered {
		res.TieredInvocations = tieredInv
	}
	res.InterpEnabled = o.Interp
	res.PeepEnabled = o.Peep
	var sumColdCycles, sumSteadyCycles int64
	var sumInterpCyc32, sumInterpCyc64, sumInterpCompNS int64
	for _, w := range ws {
		cu, err := minijava.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		var profile interp.Profile
		if o.UseProfile {
			ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32, Profile: true})
			if err != nil {
				return nil, fmt.Errorf("%s: profile run: %w", w.Name, err)
			}
			profile = ref.Profile
		}
		jo := jit.Options{
			Variant: variant, Machine: o.Machine, GeneralOpts: true, Profile: profile,
		}
		leg := func(parallelism int) (*jit.Result, time.Duration, error) {
			jo.Parallelism = parallelism
			var best *jit.Result
			var bestWall time.Duration
			for r := 0; r < o.Repeats; r++ {
				cr, err := jit.Compile(cu.Prog, jo)
				if err != nil {
					return nil, 0, err
				}
				if best == nil || cr.Timing.Wall < bestWall {
					best, bestWall = cr, cr.Timing.Wall
				}
			}
			return best, bestWall, nil
		}
		seq, seqWall, err := leg(1)
		if err != nil {
			return nil, fmt.Errorf("%s: sequential compile: %w", w.Name, err)
		}
		pr, parWall, err := leg(par)
		if err != nil {
			return nil, fmt.Errorf("%s: parallel compile: %w", w.Name, err)
		}
		wl := CompileBenchWorkload{
			Name:      w.Name,
			Funcs:     len(cu.Prog.Funcs),
			SeqWallNS: int64(seqWall),
			ParWallNS: int64(parWall),
			WorkNS:    int64(pr.Timing.Total()),
			Identical: compileFingerprint(seq) == compileFingerprint(pr),
			Exts:      pr.StaticExts,
			Elim:      pr.Stats.Eliminated,
			Phases:    pr.Telemetry,
		}
		if wl.ParWallNS > 0 {
			wl.Speedup = float64(wl.SeqWallNS) / float64(wl.ParWallNS)
		}
		if o.Cache {
			// Cold/warm pass: a fresh per-workload cache keeps the cold leg
			// honestly cold even when workloads share identical functions.
			cache := codecache.New(cacheBytes)
			jo.Cache = cache
			jo.Parallelism = par
			cold, err := jit.Compile(cu.Prog, jo)
			if err != nil {
				return nil, fmt.Errorf("%s: cold compile: %w", w.Name, err)
			}
			if cold.CacheStats == nil || cold.CacheStats.Hits != 0 {
				return nil, fmt.Errorf("%s: cold compile was not cold: %+v", w.Name, cold.CacheStats)
			}
			warm, warmWall, err := leg(par)
			if err != nil {
				return nil, fmt.Errorf("%s: warm compile: %w", w.Name, err)
			}
			jo.Cache = nil
			wl.ColdWallNS = int64(cold.Timing.Wall)
			wl.WarmWallNS = int64(warmWall)
			if wl.WarmWallNS > 0 {
				wl.WarmSpeedup = float64(wl.ColdWallNS) / float64(wl.WarmWallNS)
			}
			ref := compileFingerprint(pr)
			wl.CacheIdentical = compileFingerprint(cold) == ref && compileFingerprint(warm) == ref
			wl.CacheHits = warm.CacheStats.Hits
			wl.CacheMisses = warm.CacheStats.Misses
			res.TotalColdNS += wl.ColdWallNS
			res.TotalWarmNS += wl.WarmWallNS
			s := cache.Stats()
			agg.Hits += s.Hits
			agg.Misses += s.Misses
			agg.Evictions += s.Evictions
			agg.ParanoidRejects += s.ParanoidRejects
			agg.Entries += s.Entries
			agg.Bytes += s.Bytes
			agg.CapacityBytes = s.CapacityBytes
		}
		if o.Peep {
			jo.Peep = true
			peeped, peepWall, err := leg(par)
			jo.Peep = false
			if err != nil {
				return nil, fmt.Errorf("%s: peep compile: %w", w.Name, err)
			}
			cost := target.CostModel(o.Machine)
			baseRun, err := interp.Run(pr.Prog, "main", interp.Options{
				Mode: interp.Mode64, Machine: o.Machine, Cost: cost,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: base run: %w", w.Name, err)
			}
			peepRun, err := interp.Run(peeped.Prog, "main", interp.Options{
				Mode: interp.Mode64, Machine: o.Machine, Cost: cost,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: peeped run: %w", w.Name, err)
			}
			wl.PeepWallNS = int64(peepWall)
			wl.PeepRewrites = peeped.PeepRewrites
			wl.BaseCycles = baseRun.Cycles
			wl.PeepCycles = peepRun.Cycles
			wl.PeepIdentical = baseRun.Output == peepRun.Output
			res.TotalRewrites += wl.PeepRewrites
			res.TotalBaseCycles += wl.BaseCycles
			res.TotalPeepCycles += wl.PeepCycles
		}
		var measuredPenalty float64
		if o.Interp {
			cost := target.CostModel(o.Machine)
			profOpts := interp.Options{
				Mode: interp.Mode32, Machine: o.Machine,
				Profile: true, CountCalls: true, Cost: cost,
			}
			sw, swNS, err := timeInterp(cu.Prog, profOpts, interp.DispatchSwitch, o.Repeats)
			if err != nil {
				return nil, fmt.Errorf("%s: interp switch leg: %w", w.Name, err)
			}
			th, thNS, err := timeInterp(cu.Prog, profOpts, interp.DispatchThreaded, o.Repeats)
			if err != nil {
				return nil, fmt.Errorf("%s: interp threaded leg: %w", w.Name, err)
			}
			comp, compNS, err := timeInterp(pr.Prog, interp.Options{
				Mode: interp.Mode64, Machine: o.Machine, Cost: cost,
			}, interp.DispatchThreaded, o.Repeats)
			if err != nil {
				return nil, fmt.Errorf("%s: interp compiled leg: %w", w.Name, err)
			}
			wl.InterpSwitchNS = swNS
			wl.InterpThreadedNS = thNS
			wl.InterpCompiledNS = compNS
			wl.InterpIdentical = interpIdentical(sw, th)
			if thNS > 0 {
				wl.InterpSpeedup = float64(swNS) / float64(thNS)
			}
			// The measured interpreter-tier penalty: how many times more wall
			// time the profiling interpreter spends per modelled cycle than
			// the interpreter running the optimized compiled form. This is
			// what the tiered runtime's modelled InterpPenalty approximates.
			if sw.Cycles > 0 && comp.Cycles > 0 && compNS > 0 {
				wl.MeasuredPenalty = (float64(swNS) / float64(sw.Cycles)) /
					(float64(compNS) / float64(comp.Cycles))
				measuredPenalty = wl.MeasuredPenalty
			}
			res.TotalInterpSwNS += swNS
			res.TotalInterpThNS += thNS
			sumInterpCyc32 += sw.Cycles
			sumInterpCyc64 += comp.Cycles
			sumInterpCompNS += compNS
		}
		if o.Tiered {
			mgr, err := tiered.New(cu.Prog, tiered.Config{
				Options:      jit.Options{Variant: variant, Machine: o.Machine, GeneralOpts: true, Parallelism: par},
				HotThreshold: o.HotThreshold,
				// With the interp pass enabled the tier split is weighted by
				// the measured penalty, not the modelled default.
				InterpPenalty: measuredPenalty,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: tiered: %w", w.Name, err)
			}
			var outputs []string
			for i := 0; i < tieredInv; i++ {
				tr, err := mgr.Invoke()
				if err != nil {
					return nil, fmt.Errorf("%s: tiered invocation %d: %w", w.Name, i+1, err)
				}
				outputs = append(outputs, tr.Output)
			}
			final, err := mgr.Finalize()
			if err != nil {
				return nil, fmt.Errorf("%s: tiered finalize: %w", w.Name, err)
			}
			// The identity oracle: one-shot compilation fed the gathered
			// profile. By the frozen-profile invariant its bodies match the
			// promoted ones, and its execution output every tiered invocation.
			oneshot, err := jit.Compile(cu.Prog, jit.Options{
				Variant: variant, Machine: o.Machine, GeneralOpts: true,
				Parallelism: par, Profile: mgr.Profile().ToInterp(),
			})
			if err != nil {
				return nil, fmt.Errorf("%s: tiered one-shot compile: %w", w.Name, err)
			}
			run, err := jit.Execute(oneshot, "main")
			if err != nil {
				return nil, fmt.Errorf("%s: tiered one-shot run: %w", w.Name, err)
			}
			wl.TierIdentical = compileFingerprint(final) == compileFingerprint(oneshot)
			for _, out := range outputs {
				if out != run.Output {
					wl.TierIdentical = false
				}
			}
			tel := mgr.Telemetry()
			wl.TierUps = tel.TierUps
			wl.TierUpWallNS = int64(tel.TierUpWall)
			wl.TierColdCycles = tel.InvocationCycles[0]
			wl.TierSteadyCycles = tel.InvocationCycles[len(tel.InvocationCycles)-1]
			if wl.TierSteadyCycles > 0 {
				wl.TierSpeedup = float64(wl.TierColdCycles) / float64(wl.TierSteadyCycles)
			}
			res.TotalTierUps += wl.TierUps
			res.TotalTierUpNS += wl.TierUpWallNS
			sumColdCycles += wl.TierColdCycles
			sumSteadyCycles += wl.TierSteadyCycles
		}
		res.TotalSeqNS += wl.SeqWallNS
		res.TotalParNS += wl.ParWallNS
		res.Workloads = append(res.Workloads, wl)
	}
	if res.TotalParNS > 0 {
		res.Speedup = float64(res.TotalSeqNS) / float64(res.TotalParNS)
	}
	if o.Cache {
		if res.TotalWarmNS > 0 {
			res.WarmSpeedup = float64(res.TotalColdNS) / float64(res.TotalWarmNS)
		}
		res.CacheStats = &agg
	}
	if o.Tiered && sumSteadyCycles > 0 {
		res.TierSpeedup = float64(sumColdCycles) / float64(sumSteadyCycles)
	}
	if o.Peep && res.TotalPeepCycles > 0 {
		res.PeepCycleGain = float64(res.TotalBaseCycles) / float64(res.TotalPeepCycles)
	}
	if o.Interp {
		if res.TotalInterpThNS > 0 {
			res.InterpSpeedup = float64(res.TotalInterpSwNS) / float64(res.TotalInterpThNS)
		}
		if sumInterpCyc32 > 0 && sumInterpCyc64 > 0 && sumInterpCompNS > 0 {
			res.MeasuredPenalty = (float64(res.TotalInterpSwNS) / float64(sumInterpCyc32)) /
				(float64(sumInterpCompNS) / float64(sumInterpCyc64))
		}
	}
	return res, nil
}

// timeInterp runs prog under opts with the given dispatcher repeats times,
// keeping the fastest wall clock, and returns the (deterministic) result.
func timeInterp(prog *ir.Program, opts interp.Options, d interp.Dispatch, repeats int) (*interp.Result, int64, error) {
	opts.Dispatch = d
	var best int64
	var res *interp.Result
	for r := 0; r < repeats; r++ {
		t0 := time.Now()
		out, err := interp.Run(prog, "main", opts)
		wall := time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, 0, err
		}
		if res == nil || wall < best {
			res, best = out, wall
		}
	}
	return res, best, nil
}

// interpIdentical reports whether two interpreter results are bit-identical
// in every observable: output, steps, cycles and their per-mode split,
// dynamic extension count, branch profile and call counts.
func interpIdentical(a, b *interp.Result) bool {
	return a.Output == b.Output &&
		a.Steps == b.Steps &&
		a.Cycles == b.Cycles &&
		a.ModeCycles == b.ModeCycles &&
		a.Ext == b.Ext &&
		reflect.DeepEqual(a.Profile, b.Profile) &&
		reflect.DeepEqual(a.Calls, b.Calls)
}

// Validate sanity-checks a decoded BENCH_compile.json: every workload must
// have been measured, produced identical sequential/parallel results, and
// carry complete telemetry. It returns nil for a healthy artifact.
func (r *CompileBenchResult) Validate() error {
	if len(r.Workloads) == 0 {
		return fmt.Errorf("compilebench: no workloads recorded")
	}
	if r.Parallelism < 1 || r.NumCPU < 1 || r.Repeats < 1 {
		return fmt.Errorf("compilebench: implausible run parameters: parallelism=%d num_cpu=%d repeats=%d",
			r.Parallelism, r.NumCPU, r.Repeats)
	}
	for _, w := range r.Workloads {
		if !w.Identical {
			return fmt.Errorf("compilebench: %s: parallel compile NOT identical to sequential", w.Name)
		}
		if w.SeqWallNS <= 0 || w.ParWallNS <= 0 {
			return fmt.Errorf("compilebench: %s: missing wall times (seq=%d par=%d)", w.Name, w.SeqWallNS, w.ParWallNS)
		}
		if w.Funcs < 1 {
			return fmt.Errorf("compilebench: %s: no functions", w.Name)
		}
		if len(w.Phases) == 0 {
			return fmt.Errorf("compilebench: %s: no phase telemetry", w.Name)
		}
		var work int64
		perFunc := map[string]bool{}
		for _, p := range w.Phases {
			if p.Wall < 0 {
				return fmt.Errorf("compilebench: %s: negative phase wall in %s/%s", w.Name, p.Func, p.Phase)
			}
			work += int64(p.Wall)
			perFunc[p.Func] = true
		}
		if work != w.WorkNS {
			return fmt.Errorf("compilebench: %s: phase walls sum to %d, recorded work %d (accounting broken)",
				w.Name, work, w.WorkNS)
		}
		if !speedupConsistent(w.Speedup, w.SeqWallNS, w.ParWallNS) {
			return fmt.Errorf("compilebench: %s: speedup %.4f inconsistent with walls %d/%d",
				w.Name, w.Speedup, w.SeqWallNS, w.ParWallNS)
		}
		if r.CacheEnabled {
			if !w.CacheIdentical {
				return fmt.Errorf("compilebench: %s: cached compile NOT identical to uncached", w.Name)
			}
			if w.ColdWallNS <= 0 || w.WarmWallNS <= 0 {
				return fmt.Errorf("compilebench: %s: missing cold/warm walls (cold=%d warm=%d)",
					w.Name, w.ColdWallNS, w.WarmWallNS)
			}
			if w.CacheHits < 1 {
				return fmt.Errorf("compilebench: %s: warm pass recorded no cache hits", w.Name)
			}
			if w.CacheMisses != 0 {
				return fmt.Errorf("compilebench: %s: warm pass was not fully warm (%d misses)", w.Name, w.CacheMisses)
			}
			if !speedupConsistent(w.WarmSpeedup, w.ColdWallNS, w.WarmWallNS) {
				return fmt.Errorf("compilebench: %s: warm speedup %.4f inconsistent with walls %d/%d",
					w.Name, w.WarmSpeedup, w.ColdWallNS, w.WarmWallNS)
			}
		}
		if r.TieredEnabled {
			if !w.TierIdentical {
				return fmt.Errorf("compilebench: %s: tiered execution NOT identical to one-shot profile compile", w.Name)
			}
			if w.TierUps < 1 {
				return fmt.Errorf("compilebench: %s: tiered pass recorded no promotions", w.Name)
			}
			if w.TierUpWallNS <= 0 {
				return fmt.Errorf("compilebench: %s: %d promotions but no tier-up wall recorded", w.Name, w.TierUps)
			}
			if w.TierColdCycles <= 0 || w.TierSteadyCycles <= 0 {
				return fmt.Errorf("compilebench: %s: missing tiered cycle record (cold=%d steady=%d)",
					w.Name, w.TierColdCycles, w.TierSteadyCycles)
			}
			if !speedupConsistent(w.TierSpeedup, w.TierColdCycles, w.TierSteadyCycles) {
				return fmt.Errorf("compilebench: %s: tiered speedup %.4f inconsistent with cycles %d/%d",
					w.Name, w.TierSpeedup, w.TierColdCycles, w.TierSteadyCycles)
			}
		}
		if r.PeepEnabled {
			if !w.PeepIdentical {
				return fmt.Errorf("compilebench: %s: peeped build output NOT identical to base", w.Name)
			}
			if w.PeepWallNS <= 0 {
				return fmt.Errorf("compilebench: %s: missing peep compile wall", w.Name)
			}
			if w.BaseCycles <= 0 || w.PeepCycles <= 0 {
				return fmt.Errorf("compilebench: %s: missing peep cycle record (base=%d peep=%d)",
					w.Name, w.BaseCycles, w.PeepCycles)
			}
			if w.PeepCycles > w.BaseCycles {
				return fmt.Errorf("compilebench: %s: peephole pass REGRESSED cycles (%d > %d)",
					w.Name, w.PeepCycles, w.BaseCycles)
			}
		}
		if r.InterpEnabled {
			if !w.InterpIdentical {
				return fmt.Errorf("compilebench: %s: threaded dispatch NOT identical to switch dispatch", w.Name)
			}
			if w.InterpSwitchNS <= 0 || w.InterpThreadedNS <= 0 || w.InterpCompiledNS <= 0 {
				return fmt.Errorf("compilebench: %s: missing interp walls (switch=%d threaded=%d compiled=%d)",
					w.Name, w.InterpSwitchNS, w.InterpThreadedNS, w.InterpCompiledNS)
			}
			if !speedupConsistent(w.InterpSpeedup, w.InterpSwitchNS, w.InterpThreadedNS) {
				return fmt.Errorf("compilebench: %s: interp speedup %.4f inconsistent with walls %d/%d",
					w.Name, w.InterpSpeedup, w.InterpSwitchNS, w.InterpThreadedNS)
			}
			if w.MeasuredPenalty <= 0 {
				return fmt.Errorf("compilebench: %s: missing measured interpreter penalty", w.Name)
			}
		}
	}
	var sumSeq, sumPar int64
	for _, w := range r.Workloads {
		sumSeq += w.SeqWallNS
		sumPar += w.ParWallNS
	}
	if sumSeq != r.TotalSeqNS || sumPar != r.TotalParNS {
		return fmt.Errorf("compilebench: totals %d/%d do not match workload sums %d/%d (truncated artifact?)",
			r.TotalSeqNS, r.TotalParNS, sumSeq, sumPar)
	}
	if r.Speedup <= 0 {
		return fmt.Errorf("compilebench: missing aggregate speedup")
	}
	if !speedupConsistent(r.Speedup, r.TotalSeqNS, r.TotalParNS) {
		return fmt.Errorf("compilebench: aggregate speedup %.4f inconsistent with totals %d/%d",
			r.Speedup, r.TotalSeqNS, r.TotalParNS)
	}
	if r.CacheEnabled {
		var sumCold, sumWarm int64
		for _, w := range r.Workloads {
			sumCold += w.ColdWallNS
			sumWarm += w.WarmWallNS
		}
		if sumCold != r.TotalColdNS || sumWarm != r.TotalWarmNS {
			return fmt.Errorf("compilebench: cold/warm totals %d/%d do not match workload sums %d/%d",
				r.TotalColdNS, r.TotalWarmNS, sumCold, sumWarm)
		}
		if !speedupConsistent(r.WarmSpeedup, r.TotalColdNS, r.TotalWarmNS) {
			return fmt.Errorf("compilebench: warm speedup %.4f inconsistent with totals %d/%d",
				r.WarmSpeedup, r.TotalColdNS, r.TotalWarmNS)
		}
		if r.CacheStats == nil {
			return fmt.Errorf("compilebench: cache enabled but no cache stats recorded")
		}
		if r.CacheStats.Hits == 0 || r.CacheStats.Misses == 0 {
			return fmt.Errorf("compilebench: implausible cache counters (hits=%d misses=%d): a cold/warm run has both",
				r.CacheStats.Hits, r.CacheStats.Misses)
		}
	}
	if r.TieredEnabled {
		if r.TieredInvocations < 2 {
			return fmt.Errorf("compilebench: tiered pass needs at least 2 invocations (cold and steady), recorded %d",
				r.TieredInvocations)
		}
		var sumUps int
		var sumWall, sumCold, sumSteady int64
		for _, w := range r.Workloads {
			sumUps += w.TierUps
			sumWall += w.TierUpWallNS
			sumCold += w.TierColdCycles
			sumSteady += w.TierSteadyCycles
		}
		if sumUps != r.TotalTierUps || sumWall != r.TotalTierUpNS {
			return fmt.Errorf("compilebench: tier-up totals %d/%dns do not match workload sums %d/%dns",
				r.TotalTierUps, r.TotalTierUpNS, sumUps, sumWall)
		}
		if !speedupConsistent(r.TierSpeedup, sumCold, sumSteady) {
			return fmt.Errorf("compilebench: tiered speedup %.4f inconsistent with cycle sums %d/%d",
				r.TierSpeedup, sumCold, sumSteady)
		}
	}
	if r.PeepEnabled {
		var sumRw int
		var sumBase, sumPeep int64
		for _, w := range r.Workloads {
			sumRw += w.PeepRewrites
			sumBase += w.BaseCycles
			sumPeep += w.PeepCycles
		}
		if sumRw != r.TotalRewrites || sumBase != r.TotalBaseCycles || sumPeep != r.TotalPeepCycles {
			return fmt.Errorf("compilebench: peep totals %d/%d/%d do not match workload sums %d/%d/%d",
				r.TotalRewrites, r.TotalBaseCycles, r.TotalPeepCycles, sumRw, sumBase, sumPeep)
		}
		if r.TotalRewrites < 1 {
			return fmt.Errorf("compilebench: peep pass enabled but no rule ever fired across the suite")
		}
		if !speedupConsistent(r.PeepCycleGain, r.TotalBaseCycles, r.TotalPeepCycles) {
			return fmt.Errorf("compilebench: peep cycle gain %.4f inconsistent with totals %d/%d",
				r.PeepCycleGain, r.TotalBaseCycles, r.TotalPeepCycles)
		}
	}
	if r.InterpEnabled {
		var sumSw, sumTh int64
		for _, w := range r.Workloads {
			sumSw += w.InterpSwitchNS
			sumTh += w.InterpThreadedNS
		}
		if sumSw != r.TotalInterpSwNS || sumTh != r.TotalInterpThNS {
			return fmt.Errorf("compilebench: interp totals %d/%d do not match workload sums %d/%d",
				r.TotalInterpSwNS, r.TotalInterpThNS, sumSw, sumTh)
		}
		if !speedupConsistent(r.InterpSpeedup, r.TotalInterpSwNS, r.TotalInterpThNS) {
			return fmt.Errorf("compilebench: interp speedup %.4f inconsistent with totals %d/%d",
				r.InterpSpeedup, r.TotalInterpSwNS, r.TotalInterpThNS)
		}
		// No fixed speedup floor here: wall-clock ratios vary with the host,
		// so the artifact only has to be internally consistent — CI gates the
		// minimum threaded speedup on its own measurement.
		if r.MeasuredPenalty <= 0 {
			return fmt.Errorf("compilebench: interp pass enabled but no measured penalty recorded")
		}
	}
	return nil
}

// speedupConsistent checks a recorded speedup against the walls it was
// derived from, with slack for the float64 round-trip through JSON.
func speedupConsistent(got float64, seq, par int64) bool {
	if par <= 0 {
		return got == 0
	}
	want := float64(seq) / float64(par)
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-9*want+1e-12
}

// ValidateCompileBenchJSON decodes and validates a BENCH_compile.json blob.
func ValidateCompileBenchJSON(data []byte) (*CompileBenchResult, error) {
	var r CompileBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("compilebench: bad JSON: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
