// Package bench is the experiment harness: it reruns the paper's evaluation
// (Tables 1-3, Figures 11-14) on the reproduction's workloads and formats
// the results in the paper's layout.
package bench

import (
	"fmt"
	"strings"
	"time"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/minijava"
	"signext/internal/workloads"
)

// SuiteResult holds every measurement for one benchmark suite on one
// machine model: the dynamic extension counts and cycle totals per variant
// and workload, plus compile-time breakdowns.
type SuiteResult struct {
	Suite     string
	Machine   ir.Machine
	Names     []string                // workload names, table column order
	Ext       map[jit.Variant][]int64 // dynamic 32-bit extensions
	ExtAll    map[jit.Variant][]int64 // all widths
	Cycles    map[jit.Variant][]int64 // modelled machine cycles
	Timing    []jit.Timing            // per workload, All variant
	Mismatch  []string                // workloads whose output diverged (must be empty)
	Reference []string                // reference outputs
}

// Options configures a suite run.
type Options struct {
	Machine     ir.Machine
	UseProfile  bool // feed interpreter branch profiles to order determination
	Variants    []jit.Variant
	MaxArrayLen int64
	Parallelism int // jit.Options.Parallelism: 0 = all CPUs, 1 = sequential
}

// RunSuite compiles and executes every workload under every variant.
func RunSuite(ws []workloads.Workload, o Options) (*SuiteResult, error) {
	if len(o.Variants) == 0 {
		o.Variants = jit.Variants
	}
	res := &SuiteResult{
		Machine: o.Machine,
		Ext:     map[jit.Variant][]int64{},
		ExtAll:  map[jit.Variant][]int64{},
		Cycles:  map[jit.Variant][]int64{},
	}
	if len(ws) > 0 {
		res.Suite = ws[0].Suite
	}
	for _, v := range o.Variants {
		res.Ext[v] = make([]int64, len(ws))
		res.ExtAll[v] = make([]int64, len(ws))
		res.Cycles[v] = make([]int64, len(ws))
	}
	res.Timing = make([]jit.Timing, len(ws))
	for wi, w := range ws {
		res.Names = append(res.Names, w.Name)
		cu, err := minijava.Compile(w.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		ref, err := interp.Run(cu.Prog, "main", interp.Options{
			Mode: interp.Mode32, Profile: o.UseProfile,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: reference run: %w", w.Name, err)
		}
		res.Reference = append(res.Reference, ref.Output)
		var profile interp.Profile
		if o.UseProfile {
			profile = ref.Profile
		}
		for _, v := range o.Variants {
			comp, err := jit.Compile(cu.Prog, jit.Options{
				Variant:     v,
				Machine:     o.Machine,
				MaxArrayLen: o.MaxArrayLen,
				GeneralOpts: true,
				Profile:     profile,
				Parallelism: o.Parallelism,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, v, err)
			}
			if v == jit.All {
				res.Timing[wi] = comp.Timing
			}
			out, err := jit.Execute(comp, "main")
			if err != nil {
				return nil, fmt.Errorf("%s/%s: execution: %w", w.Name, v, err)
			}
			if out.Output != ref.Output {
				res.Mismatch = append(res.Mismatch, fmt.Sprintf("%s/%s", w.Name, v))
			}
			res.Ext[v][wi] = out.Ext32()
			res.ExtAll[v][wi] = out.ExtTotal()
			res.Cycles[v][wi] = out.Cycles
		}
	}
	return res, nil
}

// Pct returns the variant's dynamic count as a percentage of baseline for
// workload wi.
func (r *SuiteResult) Pct(v jit.Variant, wi int) float64 {
	base := r.Ext[jit.Baseline][wi]
	if base == 0 {
		return 100
	}
	return 100 * float64(r.Ext[v][wi]) / float64(base)
}

// AvgPct is the arithmetic-mean percentage over the suite (the paper's
// "average" column).
func (r *SuiteResult) AvgPct(v jit.Variant) float64 {
	s := 0.0
	for wi := range r.Names {
		s += r.Pct(v, wi)
	}
	return s / float64(len(r.Names))
}

// Improvement returns the performance improvement of v over baseline for
// workload wi, in percent (Figures 13 and 14).
func (r *SuiteResult) Improvement(v jit.Variant, wi int) float64 {
	base := r.Cycles[jit.Baseline][wi]
	cur := r.Cycles[v][wi]
	if cur == 0 {
		return 0
	}
	return (float64(base)/float64(cur) - 1) * 100
}

// FormatCountTable renders the Table 1 / Table 2 layout: dynamic counts of
// remaining 32-bit sign extensions with percentages per variant.
func (r *SuiteResult) FormatCountTable(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (machine: %s)\n", title, r.Machine)
	w := 0
	for _, n := range r.Names {
		if len(n) > w {
			w = len(n)
		}
	}
	fmt.Fprintf(&sb, "%-28s", "")
	for _, n := range r.Names {
		fmt.Fprintf(&sb, " %14s", n)
	}
	fmt.Fprintf(&sb, " %9s\n", "average")
	for _, v := range jit.Variants {
		counts, ok := r.Ext[v]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "%-28s", v.String())
		for wi := range r.Names {
			fmt.Fprintf(&sb, " %14d", counts[wi])
		}
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "%-28s", "")
		for wi := range r.Names {
			fmt.Fprintf(&sb, " %13.2f%%", r.Pct(v, wi))
		}
		fmt.Fprintf(&sb, " %8.2f%%\n", r.AvgPct(v))
	}
	if len(r.Mismatch) > 0 {
		fmt.Fprintf(&sb, "!! OUTPUT MISMATCHES: %s\n", strings.Join(r.Mismatch, ", "))
	}
	return sb.String()
}

// FormatPctFigure renders Figures 11/12: the percentage series per variant
// as an ASCII chart (one bar per workload per variant).
func (r *SuiteResult) FormatPctFigure(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — remaining dynamic 32-bit sign extensions vs baseline (machine: %s)\n",
		title, r.Machine)
	for _, v := range jit.Variants {
		if _, ok := r.Ext[v]; !ok {
			continue
		}
		fmt.Fprintf(&sb, "\n%s:\n", v)
		for wi, n := range r.Names {
			p := r.Pct(v, wi)
			bar := int(p / 2)
			if bar > 60 {
				bar = 60
			}
			fmt.Fprintf(&sb, "  %-14s %6.2f%% |%s\n", n, p, strings.Repeat("#", bar))
		}
	}
	return sb.String()
}

// FormatPerfFigure renders Figures 13/14: modelled performance improvement
// over baseline.
func (r *SuiteResult) FormatPerfFigure(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — performance improvement over baseline (cycle model, machine: %s)\n",
		title, r.Machine)
	series := []jit.Variant{jit.GenUse, jit.FirstAlgorithm, jit.BasicUDDU, jit.InsertOrder, jit.Array, jit.All}
	for _, v := range series {
		if _, ok := r.Cycles[v]; !ok {
			continue
		}
		fmt.Fprintf(&sb, "\n%s:\n", v)
		for wi, n := range r.Names {
			imp := r.Improvement(v, wi)
			bar := int(imp)
			if bar < 0 {
				bar = 0
			}
			if bar > 60 {
				bar = 60
			}
			fmt.Fprintf(&sb, "  %-14s %+6.2f%% |%s\n", n, imp, strings.Repeat("#", bar))
		}
	}
	return sb.String()
}

// FormatTimingTable renders Table 3: the compile-time breakdown.
func FormatTimingTable(results []*SuiteResult) string {
	var sb strings.Builder
	sb.WriteString("Table 3. Breakdown of JIT compilation time\n")
	fmt.Fprintf(&sb, "%-14s %24s %22s %8s\n", "", "sign ext. opts (all)", "chains+ranges (shared)", "others")
	var tse, tch, tot time.Duration
	for _, r := range results {
		for wi, n := range r.Names {
			tm := r.Timing[wi]
			total := tm.Total()
			if total == 0 {
				continue
			}
			fmt.Fprintf(&sb, "%-14s %23.2f%% %21.2f%% %7.2f%%\n", n,
				pct(tm.SignExt, total), pct(tm.Chains, total), pct(tm.Others, total))
			tse += tm.SignExt
			tch += tm.Chains
			tot += total
		}
	}
	if tot > 0 {
		fmt.Fprintf(&sb, "%-14s %23.2f%% %21.2f%% %7.2f%%\n", "average",
			pct(tse, tot), pct(tch, tot), pct(tot-tse-tch, tot))
	}
	return sb.String()
}

func pct(a, total time.Duration) float64 {
	return 100 * float64(a) / float64(total)
}
