package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/progen"
	"signext/internal/serve"
)

// ServeBenchOptions parameterizes the daemon load benchmark.
type ServeBenchOptions struct {
	Machine ir.Machine

	Clients  int   // concurrent client goroutines (0 = 8)
	Requests int   // load-phase requests (0 = 200)
	Programs int   // distinct generated programs; repeats drive cache hits (0 = 12)
	Seed     int64 // progen seed base (0 = 1)

	CacheBytes int64  // daemon cache budget (0 = 64 MiB)
	CacheDir   string // disk spill directory ("" = memory-only)

	// DegradedRequests sizes the second phase: requests sent with a 1 ms
	// deadline while a 2 ms server-side delay fault is active, so every
	// one floors to Convert64-only. Their answers are still checked
	// against the reference. 0 = 16, <0 = skip the phase.
	DegradedRequests int
}

func (o ServeBenchOptions) withDefaults() ServeBenchOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Programs <= 0 {
		o.Programs = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DegradedRequests == 0 {
		o.DegradedRequests = 16
	}
	return o
}

// ServeBenchResult is the BENCH_serve.json artifact: what the daemon did
// under concurrent load and forced degradation, with every answer checked
// against the reference interpreter.
type ServeBenchResult struct {
	Machine  string `json:"machine"`
	NumCPU   int    `json:"num_cpu"`
	Clients  int    `json:"clients"`
	Programs int    `json:"programs"`

	// Load phase.
	Requests      int     `json:"requests"`
	DurationNS    int64   `json:"duration_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
	MaxNS         int64   `json:"max_ns"`

	// Degradation phase: forced-floor requests, still answered correctly.
	DegradedRequests int `json:"degraded_requests"`
	DegradedSeen     int `json:"degraded_seen"`

	// Daemon-side counters at the end of the run.
	Served    int64   `json:"served"`
	Rejected  int64   `json:"rejected"`
	CacheHits uint64  `json:"cache_hits"`
	CacheMiss uint64  `json:"cache_misses"`
	HitRate   float64 `json:"hit_rate"`

	DiskStores  uint64 `json:"disk_stores,omitempty"`
	DiskLoads   uint64 `json:"disk_loads,omitempty"`
	Quarantined uint64 `json:"disk_quarantined,omitempty"`

	// Identity: every 200 answer compared with the untouched 32-bit
	// interpreter. Mismatches must be zero — the daemon degrades, it does
	// not lie.
	IdentityChecked int `json:"identity_checked"`
	Mismatches      int `json:"mismatches"`
}

// ServeBench stands up an in-process daemon on a loopback listener, drives
// it with generated programs from concurrent retrying clients, then forces
// a degradation phase, and reports latency quantiles, cache traffic and the
// identity verdict.
func ServeBench(o ServeBenchOptions) (*ServeBenchResult, error) {
	o = o.withDefaults()

	// Generated corpus with reference outputs.
	type prog struct{ src, want string }
	corpus := make([]prog, o.Programs)
	for i := range corpus {
		src := progen.MiniJava(o.Seed+int64(i), progen.Config{Stmts: 10, Funcs: 2})
		cu, err := minijava.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("servebench: generated program %d: %w", i, err)
		}
		ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
		if err != nil {
			return nil, fmt.Errorf("servebench: reference run %d: %w", i, err)
		}
		corpus[i] = prog{src: src, want: ref.Output}
	}

	var faultOn atomic.Bool
	variant, err := serve.ParseVariant("all")
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(serve.Config{
		Variant:    variant,
		Machine:    o.Machine,
		CacheBytes: o.CacheBytes,
		CacheDir:   o.CacheDir,
		FaultDelay: func() time.Duration {
			if faultOn.Load() {
				// Must comfortably outlast the 1 ms request deadline: the
				// deadline only takes effect once its timer goroutine fires,
				// which can lag several ms under -race or on a loaded box.
				return 20 * time.Millisecond
			}
			return 0
		},
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	res := &ServeBenchResult{
		Machine:  o.Machine.String(),
		NumCPU:   runtime.NumCPU(),
		Clients:  o.Clients,
		Programs: o.Programs,
		Requests: o.Requests,
	}

	var mu sync.Mutex
	latencies := make([]int64, 0, o.Requests)
	record := func(p prog, resp *serve.CompileResponse, lat time.Duration, phaseLoad bool) {
		mu.Lock()
		defer mu.Unlock()
		res.IdentityChecked++
		if resp.Trap != "" || resp.Output != p.want {
			res.Mismatches++
		}
		if resp.Degraded {
			res.DegradedSeen++
		}
		if phaseLoad {
			latencies = append(latencies, lat.Nanoseconds())
		}
	}

	// Load phase: o.Requests requests round-robin over the corpus, fanned
	// over o.Clients concurrent retrying clients.
	work := make(chan int, o.Requests)
	for i := 0; i < o.Requests; i++ {
		work <- i
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, o.Clients)
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := serve.Dial("tcp", l.Addr().String())
			cl.MaxRetries = 20
			for i := range work {
				p := corpus[i%len(corpus)]
				t0 := time.Now()
				resp, err := cl.Compile(context.Background(), &serve.CompileRequest{Source: p.src, Run: true})
				if err != nil {
					errs <- fmt.Errorf("servebench: request %d: %w", i, err)
					return
				}
				record(p, resp, time.Since(t0), true)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	res.DurationNS = time.Since(start).Nanoseconds()
	res.ThroughputRPS = float64(o.Requests) / (float64(res.DurationNS) / 1e9)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.P50NS = latencies[n/2]
		res.P99NS = latencies[(n*99)/100]
		res.MaxNS = latencies[n-1]
	}

	// Degradation phase: hostile deadlines under an active delay fault.
	if o.DegradedRequests > 0 {
		res.DegradedRequests = o.DegradedRequests
		faultOn.Store(true)
		cl := serve.Dial("tcp", l.Addr().String())
		cl.MaxRetries = 20
		for i := 0; i < o.DegradedRequests; i++ {
			p := corpus[i%len(corpus)]
			resp, err := cl.Compile(context.Background(), &serve.CompileRequest{
				Source: p.src, Run: true, DeadlineMS: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("servebench: degraded request %d: %w", i, err)
			}
			record(p, resp, 0, false)
		}
		faultOn.Store(false)
	}

	st := srv.Stats()
	res.Served = st.Served
	res.Rejected = st.Rejected
	res.CacheHits = st.Cache.Hits
	res.CacheMiss = st.Cache.Misses
	res.HitRate = st.Cache.HitRate()
	if st.Disk != nil {
		res.DiskStores = st.Disk.Stores
		res.DiskLoads = st.Disk.Loads
		res.Quarantined = st.Disk.Quarantined
	}
	return res, nil
}

// Validate cross-checks a ServeBenchResult's internal consistency — the
// same checks `benchtab -validate` applies to a committed artifact.
func (r *ServeBenchResult) Validate() error {
	if r.Requests <= 0 || r.Clients <= 0 || r.Programs <= 0 {
		return fmt.Errorf("servebench: empty run (requests %d, clients %d, programs %d)",
			r.Requests, r.Clients, r.Programs)
	}
	if r.Mismatches != 0 {
		return fmt.Errorf("servebench: %d INCORRECT answers out of %d checked", r.Mismatches, r.IdentityChecked)
	}
	if r.IdentityChecked != r.Requests+r.DegradedRequests {
		return fmt.Errorf("servebench: checked %d answers, expected %d",
			r.IdentityChecked, r.Requests+r.DegradedRequests)
	}
	if r.Served != int64(r.Requests+r.DegradedRequests) {
		return fmt.Errorf("servebench: daemon served %d, clients saw %d", r.Served, r.Requests+r.DegradedRequests)
	}
	if r.DegradedRequests > 0 && r.DegradedSeen < r.DegradedRequests {
		return fmt.Errorf("servebench: only %d of %d forced-floor requests degraded",
			r.DegradedSeen, r.DegradedRequests)
	}
	if r.P50NS <= 0 || r.P99NS < r.P50NS || r.MaxNS < r.P99NS {
		return fmt.Errorf("servebench: implausible latency quantiles p50=%d p99=%d max=%d",
			r.P50NS, r.P99NS, r.MaxNS)
	}
	if r.ThroughputRPS <= 0 {
		return fmt.Errorf("servebench: throughput %f", r.ThroughputRPS)
	}
	if r.HitRate < 0 || r.HitRate > 1 {
		return fmt.Errorf("servebench: hit rate %f out of range", r.HitRate)
	}
	// Repeats over a small corpus must actually hit: with requests >>
	// programs the warm fraction dominates.
	if r.Requests >= 4*r.Programs && r.CacheHits == 0 {
		return fmt.Errorf("servebench: %d requests over %d programs produced no cache hits", r.Requests, r.Programs)
	}
	return nil
}

// ValidateServeBenchJSON parses and validates a BENCH_serve.json artifact.
func ValidateServeBenchJSON(data []byte) (*ServeBenchResult, error) {
	var r ServeBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("servebench: bad JSON: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
