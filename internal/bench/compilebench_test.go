package bench

import (
	"encoding/json"
	"testing"

	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/workloads"
)

func TestCompileBenchArtifact(t *testing.T) {
	res, err := CompileBench(miniSuite(), CompileBenchOptions{
		Machine: ir.IA64, UseProfile: true, Parallelism: 4, Repeats: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("fresh result does not validate: %v", err)
	}
	if len(res.Workloads) != 2 || res.Parallelism != 4 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	for _, w := range res.Workloads {
		if !w.Identical {
			t.Fatalf("%s: parallel compile diverged from sequential", w.Name)
		}
		if w.Elim <= 0 {
			t.Fatalf("%s: the full variant should eliminate extensions, got %d", w.Name, w.Elim)
		}
		var signext bool
		for _, p := range w.Phases {
			if p.Phase == jit.PhaseSignExt {
				signext = true
			}
		}
		if !signext {
			t.Fatalf("%s: telemetry missing the signext phase: %+v", w.Name, w.Phases)
		}
	}

	// The artifact must survive a JSON round trip and still validate.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateCompileBenchJSON(blob)
	if err != nil {
		t.Fatalf("round-tripped artifact rejected: %v", err)
	}
	if back.Speedup != res.Speedup || len(back.Workloads) != len(res.Workloads) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, res)
	}
}

func TestCompileBenchCacheColdWarm(t *testing.T) {
	res, err := CompileBench(miniSuite(), CompileBenchOptions{
		Machine: ir.IA64, UseProfile: true, Parallelism: 2, Repeats: 2, Cache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("cache-enabled result does not validate: %v", err)
	}
	if !res.CacheEnabled || res.CacheStats == nil {
		t.Fatalf("cache run did not record cache data: %+v", res)
	}
	for _, w := range res.Workloads {
		if !w.CacheIdentical {
			t.Fatalf("%s: cached compile diverged from uncached", w.Name)
		}
		if w.CacheHits != w.Funcs || w.CacheMisses != 0 {
			t.Fatalf("%s: warm pass not fully warm: hits=%d misses=%d funcs=%d",
				w.Name, w.CacheHits, w.CacheMisses, w.Funcs)
		}
		if w.WarmSpeedup <= 1 {
			t.Errorf("%s: warm compile not faster than cold (speedup %.2f)", w.Name, w.WarmSpeedup)
		}
	}
	if res.WarmSpeedup <= 1 {
		t.Errorf("aggregate warm speedup %.2f should exceed 1", res.WarmSpeedup)
	}
	if res.CacheStats.HitRate() <= 0 {
		t.Errorf("suite hit rate missing: %+v", res.CacheStats)
	}

	// Cache-specific corruption is caught by Validate.
	bad := *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].CacheIdentical = false
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a non-identical cached compile")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].CacheMisses = 1
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a warm pass with misses")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].WarmSpeedup *= 3
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a warm speedup inconsistent with its walls")
	}
	bad = *res
	bad.CacheStats = nil
	if bad.Validate() == nil {
		t.Fatal("validation must fail when cache stats are missing from a cache run")
	}
}

func TestCompileBenchTiered(t *testing.T) {
	res, err := CompileBench(miniSuite(), CompileBenchOptions{
		Machine: ir.IA64, UseProfile: true, Parallelism: 2, Repeats: 1,
		Tiered: true, TieredInvocations: 3, HotThreshold: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("tiered result does not validate: %v", err)
	}
	if !res.TieredEnabled || res.TieredInvocations != 3 {
		t.Fatalf("tiered run did not record tiered parameters: %+v", res)
	}
	if res.TotalTierUps < len(res.Workloads) {
		t.Fatalf("expected every workload's main to tier up, got %d over %d workloads",
			res.TotalTierUps, len(res.Workloads))
	}
	for _, w := range res.Workloads {
		if !w.TierIdentical {
			t.Fatalf("%s: tiered execution diverged from the one-shot profile compile", w.Name)
		}
		if w.TierSpeedup <= 1 {
			t.Errorf("%s: steady state not faster than cold (speedup %.2f)", w.Name, w.TierSpeedup)
		}
	}
	if res.TierSpeedup <= 1 {
		t.Errorf("aggregate steady-state speedup %.2f should exceed 1", res.TierSpeedup)
	}

	// The artifact survives the JSON round trip with the tiered fields intact.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateCompileBenchJSON(blob)
	if err != nil {
		t.Fatalf("round-tripped tiered artifact rejected: %v", err)
	}
	if back.TotalTierUps != res.TotalTierUps || back.TierSpeedup != res.TierSpeedup {
		t.Fatalf("round trip lost tiered data: %+v vs %+v", back, res)
	}

	// Tiered-specific corruption is caught by Validate.
	bad := *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].TierIdentical = false
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a non-identical tiered execution")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].TierUps = 0
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a workload with no promotions")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].TierSpeedup *= 2
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a tiered speedup inconsistent with its cycles")
	}
	bad = *res
	bad.TotalTierUps++
	if bad.Validate() == nil {
		t.Fatal("validation must fail when tier-up totals do not match workload sums")
	}
	bad = *res
	bad.TierSpeedup += 0.5
	if bad.Validate() == nil {
		t.Fatal("validation must fail on an aggregate tiered speedup inconsistent with the cycle sums")
	}
}

func TestCompileBenchValidateCatchesCorruption(t *testing.T) {
	res, err := CompileBench(miniSuite()[:1], CompileBenchOptions{
		Machine: ir.IA64, Parallelism: 2, Repeats: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].Identical = false
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a non-identical parallel compile")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].WorkNS += 12345
	if bad.Validate() == nil {
		t.Fatal("validation must fail when phase walls do not sum to the recorded work")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.TotalSeqNS += 999
	if bad.Validate() == nil {
		t.Fatal("validation must fail when totals do not match workload sums")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Workloads[0].Speedup *= 2
	if bad.Validate() == nil {
		t.Fatal("validation must fail on a per-workload speedup inconsistent with its walls")
	}
	bad = *res
	bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
	bad.Speedup += 0.5
	if bad.Validate() == nil {
		t.Fatal("validation must fail on an aggregate speedup inconsistent with the totals")
	}
	if _, err := ValidateCompileBenchJSON([]byte("{not json")); err == nil {
		t.Fatal("validation must fail on malformed JSON")
	}
}

// peepSuite is a workload whose inner loop carries the patterns the rule
// table targets: division and remainder by constants plus a power-of-two
// multiply, all on a loop counter the range analysis can bound.
func peepSuite() []workloads.Workload {
	return []workloads.Workload{
		{Name: "peep-div", Suite: "test", Source: `
			void main() {
				int s = 0;
				for (int i = 0; i < 1000; i++) {
					s += i / 7 + i / 8 + i % 16 + i * 4;
				}
				print(s);
			}`},
	}
}

func TestCompileBenchPeep(t *testing.T) {
	for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
		res, err := CompileBench(peepSuite(), CompileBenchOptions{
			Machine: mach, UseProfile: true, Parallelism: 2, Repeats: 1, Peep: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%v: peep result does not validate: %v", mach, err)
		}
		if !res.PeepEnabled || res.TotalRewrites < 1 {
			t.Fatalf("%v: peep pass recorded no rewrites: %+v", mach, res)
		}
		for _, w := range res.Workloads {
			if !w.PeepIdentical {
				t.Fatalf("%v: %s: peeped output diverged from base", mach, w.Name)
			}
			if w.PeepCycles > w.BaseCycles {
				t.Fatalf("%v: %s: peephole pass regressed cycles (%d > %d)",
					mach, w.Name, w.PeepCycles, w.BaseCycles)
			}
			if w.PeepCycles >= w.BaseCycles {
				t.Errorf("%v: %s: expected a strict cycle win on the division loop (base=%d peep=%d)",
					mach, w.Name, w.BaseCycles, w.PeepCycles)
			}
		}

		// The artifact survives the JSON round trip with the peep fields intact.
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ValidateCompileBenchJSON(blob)
		if err != nil {
			t.Fatalf("round-tripped peep artifact rejected: %v", err)
		}
		if back.TotalRewrites != res.TotalRewrites || back.PeepCycleGain != res.PeepCycleGain {
			t.Fatalf("round trip lost peep data: %+v vs %+v", back, res)
		}

		// Peep-specific corruption is caught by Validate.
		bad := *res
		bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
		bad.Workloads[0].PeepIdentical = false
		if bad.Validate() == nil {
			t.Fatal("validation must fail on a non-identical peeped build")
		}
		bad = *res
		bad.Workloads = append([]CompileBenchWorkload(nil), res.Workloads...)
		bad.Workloads[0].PeepCycles = bad.Workloads[0].BaseCycles + 1
		bad.TotalPeepCycles += bad.Workloads[0].BaseCycles + 1 - res.Workloads[0].PeepCycles
		if bad.Validate() == nil {
			t.Fatal("validation must fail on a cycle-regressing peephole pass")
		}
		bad = *res
		bad.TotalRewrites++
		if bad.Validate() == nil {
			t.Fatal("validation must fail when rewrite totals do not match workload sums")
		}
	}
}
