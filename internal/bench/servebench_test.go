package bench

import (
	"encoding/json"
	"testing"

	"signext/internal/ir"
)

// TestServeBenchSmall runs a scaled-down load + degradation campaign and
// checks the artifact validates and round-trips through JSON.
func TestServeBenchSmall(t *testing.T) {
	r, err := ServeBench(ServeBenchOptions{
		Machine:          ir.IA64,
		Clients:          4,
		Requests:         40,
		Programs:         5,
		CacheDir:         t.TempDir(),
		DegradedRequests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.DiskStores == 0 {
		t.Errorf("disk cache recorded no stores: %+v", r)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ValidateServeBenchJSON(data)
	if err != nil {
		t.Fatalf("artifact does not re-validate: %v", err)
	}
	if r2.Requests != r.Requests || r2.Mismatches != 0 {
		t.Fatalf("artifact round-trip mangled: %+v", r2)
	}
}

// TestServeBenchValidateRejects pins the validator's teeth: an artifact
// claiming mismatches, inconsistent counts or absurd quantiles must fail.
func TestServeBenchValidateRejects(t *testing.T) {
	good := ServeBenchResult{
		Machine: "ia64", NumCPU: 4, Clients: 2, Programs: 3,
		Requests: 12, DurationNS: 1e6, ThroughputRPS: 100,
		P50NS: 1000, P99NS: 2000, MaxNS: 3000,
		DegradedRequests: 2, DegradedSeen: 2,
		Served: 14, IdentityChecked: 14, HitRate: 0.5, CacheHits: 9,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline artifact rejected: %v", err)
	}
	mutate := []struct {
		name string
		f    func(*ServeBenchResult)
	}{
		{"mismatch", func(r *ServeBenchResult) { r.Mismatches = 1 }},
		{"unchecked answers", func(r *ServeBenchResult) { r.IdentityChecked = 3 }},
		{"served drift", func(r *ServeBenchResult) { r.Served = 99 }},
		{"floors did not degrade", func(r *ServeBenchResult) { r.DegradedSeen = 0 }},
		{"inverted quantiles", func(r *ServeBenchResult) { r.P99NS = r.P50NS - 1 }},
		{"hit rate out of range", func(r *ServeBenchResult) { r.HitRate = 1.5 }},
		{"no hits despite repeats", func(r *ServeBenchResult) { r.CacheHits = 0 }},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			bad := good
			m.f(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatal("corrupt artifact validated")
			}
		})
	}
}
