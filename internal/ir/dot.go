package ir

import (
	"fmt"
	"strings"
)

// Dot renders the function's control-flow graph in Graphviz DOT syntax, one
// node per basic block with its instructions listed. Useful with
// `sxelim -dot prog.mj | dot -Tsvg`.
func (f *Func) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("\tnode [shape=box, fontname=\"monospace\", fontsize=9];\n")
	for _, b := range f.Blocks {
		var body strings.Builder
		fmt.Fprintf(&body, "%s:\\l", b)
		for _, ins := range b.Instrs {
			body.WriteString(escapeDot(ins.String()))
			body.WriteString("\\l")
		}
		fmt.Fprintf(&sb, "\t%s [label=\"%s\"];\n", b, body.String())
		for k, s := range b.Succs {
			attr := ""
			if t := b.Term(); t != nil && (t.Op == OpBr || t.Op == OpFBr) {
				if k == 0 {
					attr = " [label=\"T\"]"
				} else {
					attr = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&sb, "\t%s -> %s%s;\n", b, s, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
