package ir

import (
	"testing"
)

const sampleIR = `
globals 1
func helper(r0 i32) i32 {
b0:
	r1 = const 3
	r2 = mul.32 r0 r1
	r2 = ext.32 r2
	ret.32 r2
}
func main() {
b0:
	r0 = const 10
	r1 = newarr.32 r0
	r2 = const 0
	jmp -> b1
b1:
	br.32.lt r2 r0 -> b2, b3
b2:
	r3 = call helper (r2)
	astore.32 r1 r2 r3
	r4 = const 1
	r2 = add.32 r2 r4
	r2 = ext.32 r2
	jmp -> b1
b3:
	r5 = const 0
	r6 = const 0
	jmp -> b4
b4:
	br.32.lt r6 r0 -> b5, b6
b5:
	r7 = aload.32 r1 r6
	r7 = ext.32 r7
	r5 = add.32 r5 r7
	r5 = ext.32 r5
	r8 = const 1
	r6 = add.32 r6 r8
	r6 = ext.32 r6
	jmp -> b4
b6:
	storeg.32 g0 r5
	r9 = loadg.32 g0
	r9 = ext.32 r9
	print.32 r9
	r10 = i2d r9
	fprint r10
	ret
}
`

func TestParseProgram(t *testing.T) {
	prog, err := ParseProgram(sampleIR)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NGlobals != 1 || len(prog.Funcs) != 2 {
		t.Fatalf("structure: globals=%d funcs=%d", prog.NGlobals, len(prog.Funcs))
	}
	for _, fn := range prog.Funcs {
		if err := fn.Verify(); err != nil {
			t.Fatalf("%s: %v\n%s", fn.Name, err, fn.Format())
		}
	}
	mainFn := prog.Func("main")
	if len(mainFn.Blocks) != 7 {
		t.Fatalf("main has %d blocks", len(mainFn.Blocks))
	}
	if got := mainFn.CountOp(OpExt); got != 5 {
		t.Fatalf("main has %d extensions, want 5", got)
	}
	h := prog.Func("helper")
	if h.RetW != W32 || h.NParams() != 1 || h.Params[0].W != W32 {
		t.Fatalf("helper signature wrong: %+v", h.Params)
	}
}

// TestParseFormatRoundTrip: Format(Parse(Format(f))) is a fixpoint — the
// second and third textual forms agree exactly.
func TestParseFormatRoundTrip(t *testing.T) {
	prog, err := ParseProgram(sampleIR)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Funcs {
		once := fn.Format()
		fn2, err := ParseFunc(once)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", fn.Name, err, once)
		}
		twice := fn2.Format()
		if once != twice {
			t.Fatalf("%s: round trip diverged:\n--- once ---\n%s\n--- twice ---\n%s",
				fn.Name, once, twice)
		}
	}
}

// TestConstWidthRoundTrip pins the width of constants across Format/Parse.
// A bare "const" is W32 by parser default; every other width must print its
// suffix, or a 64-bit constant silently narrows on the way back in — which
// changes how the optimizer classifies it. Text-based persistence (the disk
// compile cache, the daemon's IR intake) rides on this.
func TestConstWidthRoundTrip(t *testing.T) {
	b := NewFunc("f")
	b.Fn.RetW = W64
	wide := b.Const(W64, 2654435761)
	b.Const(W32, 7)
	b.Ret(wide)

	text := b.Fn.Format()
	fn2, err := ParseFunc(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	var got []Width
	fn2.ForEachInstr(func(_ *Block, ins *Instr) {
		if ins.Op == OpConst {
			got = append(got, ins.W)
		}
	})
	if len(got) != 2 || got[0] != W64 || got[1] != W32 {
		t.Fatalf("const widths %v after round trip, want [W64 W32]\n%s", got, text)
	}
	if fn2.Format() != text {
		t.Fatalf("format not a fixpoint:\n%s\n---\n%s", text, fn2.Format())
	}
}

func TestParseFloatMarker(t *testing.T) {
	fn, err := ParseFunc(`func f() f64 {
b0:
	r0 = const 4
	r1 = newarr.f.64 r0
	r2 = fconst 2.5
	astore.f.64 r1 r0 r2
	r3 = aload.f.64 r1 r0
	ret r3
}`)
	// The parse should fail gracefully or succeed; the canonical order is
	// op.width.f — accept both by formatting what Format would emit.
	if err != nil {
		// Canonical spelling.
		fn, err = ParseFunc(`func f() f64 {
b0:
	r0 = const 4
	r1 = newarr.64.f r0
	r2 = fconst 2.5
	r4 = const 0
	astore.64.f r1 r4 r2
	r3 = aload.64.f r1 r4
	ret r3
}`)
		if err != nil {
			t.Fatal(err)
		}
	}
	found := false
	fn.ForEachInstr(func(_ *Block, ins *Instr) {
		if ins.Op == OpArrLoad && ins.Float {
			found = true
		}
	})
	if !found {
		t.Fatalf("float marker lost:\n%s", fn.Format())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func broken( {",
		"func f() {\nb0:\n\tbogus.32 r1\n}",
		"func f() {\n\tr0 = const 1\n}",                 // instruction before label
		"func f() {\nb0:\n\tjmp -> nowhere\n}",          // unknown block
		"func f() {\nb0:\n\tr0 = const 1\n",             // unterminated
		"globals x\nfunc f() {\nb0:\n\tret\n}",          // bad globals
		"func f(r0 quux) {\nb0:\n\tret\n}",              // bad param type
		"func f() {\nb0:\n\tr0 = const\n}",              // missing immediate
		"func f() {\nb0:\n\tr0 = add.32 r1 r2 r3 r4\n}", // too many operands
	}
	for _, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}
