package ir

import "fmt"

// Verify performs structural sanity checks on the function and returns the
// first problem found. It is used by tests and (under a build flag in the
// driver) after every compiler phase.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	seenID := map[int]bool{}
	for _, b := range f.Blocks {
		if b.Fn != f {
			return fmt.Errorf("%s/%s: block has wrong Fn", f.Name, b)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s/%s: empty block", f.Name, b)
		}
		for k, ins := range b.Instrs {
			if ins.Blk != b {
				return fmt.Errorf("%s/%s: instr %s has wrong Blk", f.Name, b, ins)
			}
			if seenID[ins.ID] {
				return fmt.Errorf("%s/%s: duplicate instr ID %d", f.Name, b, ins.ID)
			}
			seenID[ins.ID] = true
			if ins.IsTerminator() != (k == len(b.Instrs)-1) {
				return fmt.Errorf("%s/%s: terminator misplaced: %s", f.Name, b, ins)
			}
			if ins.HasDst() && (int(ins.Dst) < 0 || int(ins.Dst) >= f.NReg) {
				return fmt.Errorf("%s/%s: dst out of range: %s", f.Name, b, ins)
			}
			bad := false
			ins.ForEachUse(func(_ int, r Reg) {
				if int(r) < 0 || int(r) >= f.NReg {
					bad = true
				}
			})
			if bad {
				return fmt.Errorf("%s/%s: src out of range: %s", f.Name, b, ins)
			}
			if ins.Op == OpExt || ins.Op == OpZext || ins.Op == OpExtDummy {
				if ins.W != W8 && ins.W != W16 && ins.W != W32 {
					return fmt.Errorf("%s/%s: bad extension width: %s", f.Name, b, ins)
				}
			}
		}
		term := b.Instrs[len(b.Instrs)-1]
		want := 0
		switch term.Op {
		case OpBr, OpFBr:
			want = 2
		case OpJmp:
			want = 1
		}
		if len(b.Succs) != want {
			return fmt.Errorf("%s/%s: %d successors for %s", f.Name, b, len(b.Succs), term)
		}
		for _, s := range b.Succs {
			if !hasBlock(s.Preds, b) {
				return fmt.Errorf("%s/%s: successor %s lacks pred edge", f.Name, b, s)
			}
		}
		for _, p := range b.Preds {
			if !hasBlock(p.Succs, b) {
				return fmt.Errorf("%s/%s: pred %s lacks succ edge", f.Name, b, p)
			}
		}
	}
	return nil
}

func hasBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
