package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram parses the textual IR form produced by Func.Format back into
// a program, enabling golden tests, hand-written test inputs and tooling.
// The accepted grammar is exactly what Format emits, plus an optional
// leading "globals N" line; everything from a ";" to the end of its line is
// a comment (Format itself emits "; preds" annotations, and sxfuzz
// reproducers carry "; key: value" metadata headers):
//
//	globals 2
//	func f(r0 i32, r1 ref) i32 {
//	b0:
//		r2 = const 7
//		r2 = ext.32 r2
//		br.32.lt r2 r0 -> b1, b2
//	b1:
//		ret.32 r2
//	b2:
//		r3 = aload.32 r1 r0
//		ret.32 r3
//	}
func ParseProgram(src string) (*Program, error) {
	p := &irParser{lines: strings.Split(src, "\n")}
	prog := NewProgram()
	for {
		p.skipBlank()
		if p.eof() {
			break
		}
		line := stripComment(p.cur())
		switch {
		case strings.HasPrefix(line, "globals "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "globals ")))
			if err != nil {
				return nil, p.errf("bad globals count")
			}
			prog.NGlobals = n
			p.next()
		case strings.HasPrefix(line, "func "):
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.AddFunc(fn)
		default:
			return nil, p.errf("expected 'func' or 'globals', found %q", line)
		}
	}
	return prog, nil
}

// ParseFunc parses a single function in Format syntax.
func ParseFunc(src string) (*Func, error) {
	p := &irParser{lines: strings.Split(src, "\n")}
	p.skipBlank()
	return p.parseFunc()
}

type irParser struct {
	lines []string
	pos   int
}

func (p *irParser) eof() bool   { return p.pos >= len(p.lines) }
func (p *irParser) cur() string { return p.lines[p.pos] }
func (p *irParser) next()       { p.pos++ }

func (p *irParser) skipBlank() {
	for !p.eof() && stripComment(p.cur()) == "" {
		p.next()
	}
}

// stripComment trims whitespace and drops everything from ";" on. The IR
// grammar has no string literals, so ";" anywhere starts a comment.
func stripComment(line string) string {
	if idx := strings.Index(line, ";"); idx >= 0 {
		line = line[:idx]
	}
	return strings.TrimSpace(line)
}

func (p *irParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ir: line %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

var opByName = func() map[string]Op {
	m := map[string]Op{}
	for op := Op(1); op < opMax; op++ {
		m[op.String()] = op
	}
	return m
}()

var condByName = func() map[string]Cond {
	m := map[string]Cond{}
	for c := CondEQ; c <= CondUGE; c++ {
		m[c.String()] = c
	}
	return m
}()

func parseReg(s string) (Reg, error) {
	if s == "_" {
		return NoReg, nil
	}
	if !strings.HasPrefix(s, "r") {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func (p *irParser) parseFunc() (*Func, error) {
	head := strings.TrimSpace(p.cur())
	if !strings.HasPrefix(head, "func ") {
		return nil, p.errf("expected func header")
	}
	open := strings.Index(head, "(")
	close := strings.LastIndex(head, ")")
	if open < 0 || close < open || !strings.HasSuffix(head, "{") {
		return nil, p.errf("malformed func header %q", head)
	}
	fn := &Func{Name: strings.TrimSpace(head[5:open])}
	// Parameters.
	for _, part := range strings.Split(head[open+1:close], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, p.errf("malformed parameter %q", part)
		}
		var prm Param
		switch fields[1] {
		case "ref":
			prm.Ref = true
		case "f64":
			prm.Float = true
			prm.W = W64
		case "i8":
			prm.W = W8
		case "i16":
			prm.W = W16
		case "i32":
			prm.W = W32
		case "i64":
			prm.W = W64
		default:
			return nil, p.errf("unknown parameter type %q", fields[1])
		}
		fn.Params = append(fn.Params, prm)
	}
	fn.NReg = len(fn.Params)
	// Return type between ")" and "{".
	switch ret := strings.TrimSpace(strings.TrimSuffix(head[close+1:], "{")); ret {
	case "":
	case "f64":
		fn.RetF = true
	case "i32":
		fn.RetW = W32
	case "i64":
		fn.RetW = W64
	default:
		return nil, p.errf("unknown return type %q", ret)
	}
	p.next()

	// First pass: collect blocks and raw instruction lines; second pass:
	// resolve branch targets.
	type rawBlock struct {
		blk     *Block
		targets [][]string // per terminator line (at most one)
	}
	blocks := map[string]*Block{}
	var order []*rawBlock
	var curRaw *rawBlock
	getBlock := func(label string) *Block {
		if b, ok := blocks[label]; ok {
			return b
		}
		b := fn.NewBlock()
		blocks[label] = b
		return b
	}
	touch := func(r Reg) {
		if int(r) >= fn.NReg {
			fn.NReg = int(r) + 1
		}
	}
	for {
		if p.eof() {
			return nil, p.errf("unterminated function %s", fn.Name)
		}
		line := stripComment(p.cur())
		p.next()
		switch {
		case line == "":
			continue
		case line == "}":
			// Wire up branch targets.
			for _, rb := range order {
				for _, ts := range rb.targets {
					for _, t := range ts {
						dst, ok := blocks[t]
						if !ok {
							return nil, p.errf("unknown block %q", t)
						}
						AddEdge(rb.blk, dst)
					}
				}
			}
			return fn, nil
		case strings.HasSuffix(line, ":"):
			label := strings.TrimSuffix(line, ":")
			curRaw = &rawBlock{blk: getBlock(label)}
			order = append(order, curRaw)
			continue
		}
		if curRaw == nil {
			return nil, p.errf("instruction before first block label")
		}
		ins, targets, err := p.parseInstr(fn, line)
		if err != nil {
			return nil, err
		}
		if ins.HasDst() {
			touch(ins.Dst)
		}
		ins.ForEachUse(func(_ int, r Reg) { touch(r) })
		ins.Blk = curRaw.blk
		curRaw.blk.Instrs = append(curRaw.blk.Instrs, ins)
		if targets != nil {
			curRaw.targets = append(curRaw.targets, targets)
		}
	}
}

// parseInstr parses one instruction line, returning branch target labels for
// terminators.
func (p *irParser) parseInstr(fn *Func, line string) (*Instr, []string, error) {
	var dst Reg = NoReg
	rest := line
	if eq := strings.Index(line, " = "); eq > 0 && strings.HasPrefix(line, "r") {
		d, err := parseReg(strings.TrimSpace(line[:eq]))
		if err == nil {
			dst = d
			rest = strings.TrimSpace(line[eq+3:])
		}
	}
	// Split off "-> b1, b2" targets.
	var targets []string
	if arrow := strings.Index(rest, "->"); arrow >= 0 {
		for _, t := range strings.Split(rest[arrow+2:], ",") {
			targets = append(targets, strings.TrimSpace(t))
		}
		rest = strings.TrimSpace(rest[:arrow])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, nil, p.errf("empty instruction")
	}
	// Mnemonic: op[.width][.cond]
	mn := fields[0]
	parts := strings.Split(mn, ".")
	opName := parts[0]
	// Multi-part op names (ext.dummy) need reassembly.
	if opName == "ext" && len(parts) > 1 && parts[1] == "dummy" {
		opName = "ext.dummy"
		parts = append(parts[:1], parts[2:]...)
	}
	op, ok := opByName[opName]
	if !ok {
		return nil, nil, p.errf("unknown opcode %q", opName)
	}
	ins := fn.NewInstr(op)
	ins.Dst = dst
	for _, suffix := range parts[1:] {
		if suffix == "f" {
			ins.Float = true
			continue
		}
		if c, ok := condByName[suffix]; ok {
			ins.Cond = c
			continue
		}
		n, err := strconv.Atoi(suffix)
		if err != nil {
			return nil, nil, p.errf("bad mnemonic suffix %q in %q", suffix, mn)
		}
		ins.W = Width(n)
	}
	args := fields[1:]
	// Immediate-style operands.
	switch op {
	case OpConst:
		if len(args) != 1 {
			return nil, nil, p.errf("const takes one immediate")
		}
		v, err := strconv.ParseInt(args[0], 0, 64)
		if err != nil {
			return nil, nil, p.errf("bad integer %q", args[0])
		}
		ins.Const = v
		if ins.W == 0 {
			ins.W = W32
		}
		return ins, targets, nil
	case OpFConst:
		if len(args) != 1 {
			return nil, nil, p.errf("fconst takes one immediate")
		}
		f, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return nil, nil, p.errf("bad float %q", args[0])
		}
		ins.F = f
		ins.W = W64
		return ins, targets, nil
	case OpLoadG, OpStoreG:
		if len(args) < 1 || !strings.HasPrefix(args[0], "g") {
			return nil, nil, p.errf("%s needs a gN cell", op)
		}
		n, err := strconv.Atoi(args[0][1:])
		if err != nil {
			return nil, nil, p.errf("bad global %q", args[0])
		}
		ins.Const = int64(n)
		args = args[1:]
	case OpCall, OpFCall:
		if len(args) < 1 {
			return nil, nil, p.errf("%s needs a callee", op)
		}
		ins.Callee = args[0]
		args = args[1:]
	}
	// Call argument list "(r1, r2)".
	if len(args) > 0 && strings.HasPrefix(args[0], "(") {
		joined := strings.Join(args, " ")
		joined = strings.TrimPrefix(joined, "(")
		joined = strings.TrimSuffix(joined, ")")
		for _, a := range strings.Split(joined, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			r, err := parseReg(a)
			if err != nil {
				return nil, nil, p.errf("%v", err)
			}
			ins.Args = append(ins.Args, r)
		}
		return ins, targets, nil
	}
	// Fixed register operands.
	for _, a := range args {
		r, err := parseReg(a)
		if err != nil {
			return nil, nil, p.errf("%v", err)
		}
		if int(ins.NSrcs) >= len(ins.Srcs) {
			return nil, nil, p.errf("too many operands in %q", line)
		}
		ins.Srcs[ins.NSrcs] = r
		ins.NSrcs++
	}
	return ins, targets, nil
}
