package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWidthSignExt(t *testing.T) {
	cases := []struct {
		w    Width
		in   int64
		want int64
	}{
		{W8, 0x7f, 127},
		{W8, 0x80, -128},
		{W8, 0x1ff, -1},
		{W16, 0x8000, -32768},
		{W16, 0x7fff, 32767},
		{W32, 0x80000000, math.MinInt32},
		{W32, 0x7fffffff, math.MaxInt32},
		{W32, 0x1_00000005, 5},
		{W64, -17, -17},
	}
	for _, c := range cases {
		if got := c.w.SignExt(c.in); got != c.want {
			t.Errorf("SignExt(%d, %#x) = %d, want %d", c.w, c.in, got, c.want)
		}
	}
}

func TestWidthZeroExt(t *testing.T) {
	if got := W8.ZeroExt(-1); got != 255 {
		t.Errorf("ZeroExt8(-1) = %d", got)
	}
	if got := W16.ZeroExt(-1); got != 65535 {
		t.Errorf("ZeroExt16(-1) = %d", got)
	}
	if got := W32.ZeroExt(-1); got != 0xffffffff {
		t.Errorf("ZeroExt32(-1) = %d", got)
	}
	if got := W64.ZeroExt(-1); got != -1 {
		t.Errorf("ZeroExt64(-1) = %d", got)
	}
}

// Property: sign extension is idempotent and agrees with Go's native
// narrowing conversions.
func TestWidthSignExtProperties(t *testing.T) {
	f := func(v int64) bool {
		return W8.SignExt(v) == int64(int8(v)) &&
			W16.SignExt(v) == int64(int16(v)) &&
			W32.SignExt(v) == int64(int32(v)) &&
			W32.SignExt(W32.SignExt(v)) == W32.SignExt(v) &&
			W8.SignExt(W8.SignExt(v)) == W8.SignExt(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a value is InRange exactly when extension does not change it.
func TestWidthInRangeProperty(t *testing.T) {
	f := func(v int64) bool {
		for _, w := range []Width{W8, W16, W32} {
			if w.InRange(v) != (w.SignExt(v) == v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondEvalAndNegate(t *testing.T) {
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	conds := []Cond{CondEQ, CondNE, CondLT, CondLE, CondGT, CondGE, CondULT, CondULE, CondUGT, CondUGE}
	for _, c := range conds {
		for _, a := range vals {
			for _, b := range vals {
				if c.Eval(a, b) == c.Negate().Eval(a, b) {
					t.Fatalf("%v and its negation agree on (%d, %d)", c, a, b)
				}
			}
		}
	}
	if !CondULT.Eval(0, -1) {
		t.Error("0 <u -1 should hold (unsigned)")
	}
	if CondLT.Eval(0, -1) {
		t.Error("0 < -1 must not hold (signed)")
	}
}

func buildLoopFunc() *Func {
	b := NewFunc("f", Param{W: W32})
	i := b.Fn.NewReg()
	b.ConstTo(W32, i, 0)
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(OpAdd, W32, i, i, Reg(0))
	b.Br(W32, CondLT, i, Reg(0), loop, exit)
	b.SetBlock(exit)
	b.Print(W32, i)
	b.Ret(NoReg)
	return b.Fn
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	fn := buildLoopFunc()
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsBrokenCFG(t *testing.T) {
	fn := buildLoopFunc()
	// Break a pred edge.
	loop := fn.Blocks[1]
	loop.Preds = loop.Preds[:1]
	if err := fn.Verify(); err == nil {
		t.Fatal("verify accepted a broken pred list")
	}
}

func TestVerifyRejectsMisplacedTerminator(t *testing.T) {
	fn := buildLoopFunc()
	entry := fn.Entry()
	// Append an instruction after the terminator.
	ins := fn.NewInstr(OpConst)
	ins.Dst = fn.NewReg()
	ins.Blk = entry
	entry.Instrs = append(entry.Instrs, ins)
	if err := fn.Verify(); err == nil {
		t.Fatal("verify accepted an instruction after the terminator")
	}
}

func TestCloneIndependence(t *testing.T) {
	fn := buildLoopFunc()
	cl := fn.Clone()
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	cl.Blocks[1].Instrs[0].Const = 999
	cl.Blocks[1].Remove(cl.Blocks[1].Instrs[0])
	if len(fn.Blocks[1].Instrs) != 2 {
		t.Fatal("clone mutation leaked into the original")
	}
	for _, b := range cl.Blocks {
		for _, s := range b.Succs {
			if s.Fn != cl {
				t.Fatal("clone references original blocks")
			}
		}
	}
}

func TestBlockInsertRemove(t *testing.T) {
	fn := buildLoopFunc()
	loop := fn.Blocks[1]
	add := loop.Instrs[0]
	ext := fn.NewInstr(OpExt)
	ext.W = W32
	ext.Dst = add.Dst
	ext.Srcs[0] = add.Dst
	ext.NSrcs = 1
	loop.InsertAfter(add, ext)
	if loop.IndexOf(ext) != 1 {
		t.Fatal("InsertAfter misplaced the instruction")
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	loop.Remove(ext)
	if loop.IndexOf(ext) != -1 || ext.Blk != nil {
		t.Fatal("Remove left residue")
	}
}

func TestKinds(t *testing.T) {
	b := NewFunc("k", Param{W: W32}, Param{W: W64}, Param{Float: true}, Param{Ref: true})
	i32 := b.Add(W32, Reg(0), Reg(0))
	l := b.Mov(W64, i32) // widening copy
	d := b.I2D(i32)
	n := b.ArrLen(Reg(3))
	narrow := b.Mov(W32, Reg(1)) // narrowing copy
	b.Print(W32, n)
	b.Print(W32, narrow)
	b.Print(W64, l)
	b.FPrint(d)
	b.Ret(NoReg)
	ks := Kinds(b.Fn)
	for r, want := range map[Reg]Kind{
		0: KInt32, 1: KInt64, 2: KFloat, 3: KRef,
		i32: KInt32, l: KInt64, d: KFloat, n: KInt32, narrow: KInt32,
	} {
		if ks[r] != want {
			t.Errorf("kind(%v) = %v, want %v", r, ks[r], want)
		}
	}
}

func TestUseOfClassification(t *testing.T) {
	b := NewFunc("u", Param{W: W32}, Param{Ref: true})
	x := Reg(0)
	arr := Reg(1)
	add := b.Fn.NewInstr(OpAdd)
	add.W = W32
	add.Srcs[0], add.Srcs[1] = x, x
	add.NSrcs = 2
	if u := UseOf(add, 0); u.Class != UseThrough || u.Bits != 32 {
		t.Errorf("add32 operand: %+v", u)
	}
	ld := b.Fn.NewInstr(OpArrLoad)
	ld.W = W32
	ld.Srcs[0], ld.Srcs[1] = arr, x
	ld.NSrcs = 2
	if u := UseOf(ld, 0); u.Class != UseRef {
		t.Errorf("array ref operand: %+v", u)
	}
	if u := UseOf(ld, 1); u.Class != UseIndex {
		t.Errorf("array index operand: %+v", u)
	}
	i2d := b.Fn.NewInstr(OpI2D)
	i2d.W = W32
	i2d.Srcs[0] = x
	i2d.NSrcs = 1
	if u := UseOf(i2d, 0); u.Class != UseAll {
		t.Errorf("i2d operand: %+v", u)
	}
	br := b.Fn.NewInstr(OpBr)
	br.W = W32
	br.Srcs[0], br.Srcs[1] = x, x
	br.NSrcs = 2
	if u := UseOf(br, 0); u.Class != UseLow || u.Bits != 32 {
		t.Errorf("cmp4 operand: %+v", u)
	}
	br64 := b.Fn.NewInstr(OpBr)
	br64.W = W64
	br64.Srcs[0], br64.Srcs[1] = x, x
	br64.NSrcs = 2
	if u := UseOf(br64, 0); u.Class != UseAll {
		t.Errorf("cmp8 operand: %+v", u)
	}
	shl := b.Fn.NewInstr(OpShl)
	shl.W = W32
	shl.Srcs[0], shl.Srcs[1] = x, x
	shl.NSrcs = 2
	if u := UseOf(shl, 1); u.Class != UseLow || u.Bits != 8 {
		t.Errorf("shift amount: %+v", u)
	}
}

func TestDefOfClassification(t *testing.T) {
	fn := &Func{Name: "d", NReg: 4}
	mk := func(op Op, w Width) *Instr {
		ins := fn.NewInstr(op)
		ins.W = w
		ins.Dst = 0
		ins.Srcs[0] = 1
		ins.NSrcs = 1
		return ins
	}
	if d := DefOf(mk(OpExt, W32), IA64); d.Class != DefExtended || d.Bits != 32 {
		t.Errorf("ext.32: %+v", d)
	}
	if d := DefOf(mk(OpAdd, W32), IA64); d.Class != DefDirty {
		t.Errorf("add.32: %+v", d)
	}
	if d := DefOf(mk(OpAdd, W64), IA64); d.Class != DefExtended {
		t.Errorf("add.64: %+v", d)
	}
	if d := DefOf(mk(OpMov, W32), IA64); d.Class != DefThrough {
		t.Errorf("mov: %+v", d)
	}
	// Memory reads: zero-extending on IA64, sign-extending on PPC64.
	ld := mk(OpLoadG, W32)
	if d := DefOf(ld, IA64); d.Class != DefDirty || !d.U32Z {
		t.Errorf("ia64 load: %+v", d)
	}
	if d := DefOf(ld, PPC64); d.Class != DefExtended || d.Bits != 32 {
		t.Errorf("ppc64 load: %+v", d)
	}
	c := fn.NewInstr(OpConst)
	c.W = W32
	c.Dst = 0
	c.Const = -5
	if d := DefOf(c, IA64); d.Class != DefExtended || d.Bits != 8 || d.U32Z {
		t.Errorf("const -5: %+v", d)
	}
	c.Const = 300
	if d := DefOf(c, IA64); d.Bits != 16 || !d.U32Z {
		t.Errorf("const 300: %+v", d)
	}
}

func TestFormatMentionsEverything(t *testing.T) {
	fn := buildLoopFunc()
	s := fn.Format()
	for _, want := range []string{"func f(", "b0:", "add.32", "br.32.lt", "print.32", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() missing %q in:\n%s", want, s)
		}
	}
}

func TestProgramLookup(t *testing.T) {
	p := NewProgram()
	fn := buildLoopFunc()
	p.AddFunc(fn)
	if p.Func("f") != fn || p.Func("missing") != nil {
		t.Fatal("Func lookup broken")
	}
	cl := p.Clone()
	if cl.Func("f") == fn {
		t.Fatal("program clone shares functions")
	}
}
