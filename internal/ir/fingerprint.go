package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Fingerprint is a canonical structural hash of a function: two functions
// with the same CFG shape, instruction stream and operand structure produce
// the same fingerprint regardless of pointer identity, instruction ID
// numbering or block allocation order. It is the content-address half of a
// compile-cache key (codecache keys add the function name, variant and
// configuration knobs on top).
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:]) }

// fpWriter serializes IR facts into a hash with unambiguous framing.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) i64(v int64) { w.u64(uint64(v)) }

func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) bool(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

// Fingerprint computes the canonical structural hash of f.
//
// Canonicalization: blocks are numbered densely in depth-first traversal
// order from the entry (successor edges in operand order), so Block.ID values
// — which record allocation history, not structure — never reach the hash.
// Unreachable blocks, which cannot affect execution but are still part of the
// function body, are appended after the reachable ones in layout order.
// Instruction IDs are likewise excluded; every other instruction field is
// hashed with explicit framing so that distinct structures cannot collide by
// concatenation.
func (f *Func) Fingerprint() Fingerprint {
	w := &fpWriter{h: sha256.New()}

	w.u64(uint64(len(f.Params)))
	for _, p := range f.Params {
		w.u64(uint64(p.W))
		w.bool(p.Float)
		w.bool(p.Ref)
	}
	w.u64(uint64(f.RetW))
	w.bool(f.RetF)
	w.u64(uint64(f.NReg))

	// Canonical block numbering: entry-first DFS over successor edges.
	num := make(map[*Block]int, len(f.Blocks))
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if _, ok := num[b]; ok {
			return
		}
		num[b] = len(order)
		order = append(order, b)
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	if len(f.Blocks) > 0 {
		dfs(f.Entry())
	}
	for _, b := range f.Blocks { // unreachable leftovers, layout order
		if _, ok := num[b]; !ok {
			num[b] = len(order)
			order = append(order, b)
		}
	}

	w.u64(uint64(len(order)))
	for _, b := range order {
		w.u64(uint64(len(b.Instrs)))
		for _, ins := range b.Instrs {
			w.u64(uint64(ins.Op))
			w.u64(uint64(ins.W))
			w.u64(uint64(ins.Cond))
			w.i64(int64(ins.Dst))
			w.u64(uint64(ins.NSrcs))
			for k := 0; k < int(ins.NSrcs); k++ {
				w.i64(int64(ins.Srcs[k]))
			}
			w.i64(ins.Const)
			w.u64(math.Float64bits(ins.F))
			w.bool(ins.Float)
			w.str(ins.Callee)
			w.u64(uint64(len(ins.Args)))
			for _, a := range ins.Args {
				w.i64(int64(a))
			}
		}
		w.u64(uint64(len(b.Succs)))
		for _, s := range b.Succs {
			w.u64(uint64(num[s]))
		}
	}

	var fp Fingerprint
	w.h.Sum(fp[:0])
	return fp
}
