package ir

// Kind classifies the value category a register carries. MiniJava (like
// Java) computes on int (32-bit) and long (64-bit) integers; sub-32-bit
// values exist only in memory and are widened on load, so an integer
// register is either a 32-bit or a 64-bit quantity.
type Kind uint8

// Register kinds.
const (
	KInt32 Kind = iota
	KInt64
	KFloat
	KRef
)

// Kinds infers the kind of every register from its definitions, iterating
// copies to a fixpoint. Well-typed frontend output gives every register a
// single consistent kind; Mov propagates its source's kind.
func Kinds(fn *Func) []Kind {
	ks := make([]Kind, fn.NReg)
	for p, prm := range fn.Params {
		switch {
		case prm.Ref:
			ks[p] = KRef
		case prm.Float:
			ks[p] = KFloat
		case prm.W == W64:
			ks[p] = KInt64
		default:
			ks[p] = KInt32
		}
	}
	// Direct kinds first, then propagate through Mov until stable.
	movs := []*Instr{}
	fn.ForEachInstr(func(_ *Block, ins *Instr) {
		if !ins.HasDst() {
			return
		}
		switch ins.Op {
		case OpMov:
			movs = append(movs, ins)
			return
		case OpFConst, OpFMov, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg,
			OpI2D, OpL2D, OpFCall:
			ks[ins.Dst] = KFloat
		case OpNewArr:
			ks[ins.Dst] = KRef
		case OpLoadG, OpArrLoad:
			switch {
			case ins.Float:
				ks[ins.Dst] = KFloat
			case ins.W == W64:
				ks[ins.Dst] = KInt64
			default:
				ks[ins.Dst] = KInt32
			}
		case OpCall:
			switch {
			case ins.Float:
				ks[ins.Dst] = KFloat
			case ins.W == W64:
				ks[ins.Dst] = KInt64
			default:
				ks[ins.Dst] = KInt32
			}
		case OpD2L:
			ks[ins.Dst] = KInt64
		default:
			if ins.W == W64 {
				ks[ins.Dst] = KInt64
			} else {
				ks[ins.Dst] = KInt32
			}
		}
	})
	for changed := true; changed; {
		changed = false
		for _, m := range movs {
			nk := ks[m.Srcs[0]]
			// A mov's width overrides the integer kind: mov.64 widens
			// (int-to-long), mov.32 narrows.
			if m.W == W64 && nk == KInt32 {
				nk = KInt64
			}
			if m.W == W32 && nk == KInt64 {
				nk = KInt32
			}
			if ks[m.Dst] != nk && ks[m.Dst] == KInt32 {
				ks[m.Dst] = nk
				changed = true
			}
		}
	}
	return ks
}
