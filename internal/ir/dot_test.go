package ir

import (
	"strings"
	"testing"
)

func TestDot(t *testing.T) {
	fn := buildLoopFunc()
	dot := fn.Dot()
	for _, want := range []string{
		`digraph "f"`, "b0", "b1 -> b1 [label=\"T\"]", "b1 -> b2 [label=\"F\"]",
		"add.32", "shape=box",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	edges := 0
	for _, line := range strings.Split(dot, "\n") {
		if strings.HasPrefix(line, "\tb") && strings.Contains(line, " -> ") &&
			strings.HasSuffix(line, ";") && !strings.Contains(line, "label=\"b") {
			edges++
		}
	}
	if edges != 3 { // b0->b1, b1->b1, b1->b2
		t.Errorf("edge count %d, want 3:\n%s", edges, dot)
	}
}

func TestDotEscaping(t *testing.T) {
	if escapeDot(`a"b\c`) != `a\"b\\c` {
		t.Fatalf("escape: %q", escapeDot(`a"b\c`))
	}
}
