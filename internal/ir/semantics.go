package ir

// This file classifies how every opcode interacts with sign extension. The
// classification drives both the paper's UD/DU-chain analyses (AnalyzeUSE /
// AnalyzeDEF, section 2.3) and the first algorithm's backward dataflow.
//
// Demand model: a consumer "demands" some number of low bits of each operand
// register. A sign extension "r = ext.W r" is removable along the DU
// direction iff every transitive demand on its result is at most W bits
// (paper: "the upper bits of its destination operand do not affect the
// correct execution of the following instructions").

// UseClass describes how an instruction consumes one operand register.
type UseClass uint8

const (
	// UseLow: the instruction inspects only the low Bits bits of the
	// operand; the remaining bits never affect execution (AnalyzeUSE Case 1
	// when Bits <= the extension width).
	UseLow UseClass = iota
	// UseAll: the instruction inspects the whole 64-bit register, so the
	// operand must be properly sign-extended.
	UseAll
	// UseThrough: low k bits of the result depend only on the low k bits of
	// this operand for any k <= Bits; a demand beyond Bits escalates to the
	// full register (AnalyzeUSE Case 2).
	UseThrough
	// UseIndex: the operand is an array subscript feeding an effective
	// address computation; eligible for the paper's AnalyzeARRAY theorems.
	UseIndex
	// UseRef: the operand is an array reference (never the target of an
	// integer sign extension).
	UseRef
	// UseFloat: the operand is a float register.
	UseFloat
)

// Use describes the consumption of one operand.
type Use struct {
	Class UseClass
	Bits  uint8 // meaningful for UseLow and UseThrough
}

// DemandBits converts the use into a bit demand given the demand placed on
// the consuming instruction's own destination (dstDemand; 0 when the
// destination is undemanded or absent).
func (u Use) DemandBits(dstDemand uint8) uint8 {
	switch u.Class {
	case UseLow:
		return u.Bits
	case UseAll:
		return 64
	case UseThrough:
		if dstDemand == 0 {
			return 0
		}
		if dstDemand <= u.Bits {
			return dstDemand
		}
		return 64
	case UseIndex:
		// Treated as a full demand by width-based analyses; AnalyzeARRAY
		// refines this with Theorems 1-4.
		return 64
	default:
		return 0
	}
}

// UseOf classifies how ins consumes its operand at index k (fixed sources
// first, then call arguments, matching Instr.UseAt).
func UseOf(ins *Instr, k int) Use {
	w := uint8(ins.W)
	switch ins.Op {
	case OpMov:
		return Use{UseThrough, 64}
	case OpFMov, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpD2I, OpD2L,
		OpFPrint, OpFBr:
		return Use{UseFloat, 0}
	case OpFCall:
		return Use{UseFloat, 0}
	case OpAdd, OpSub, OpMul, OpNot, OpNeg:
		// Low k bits of the result depend only on low k bits of the sources
		// (k <= W); demanding more than W bits forces fully valid inputs.
		return Use{UseThrough, w}
	case OpAnd, OpOr, OpXor:
		return Use{UseThrough, w}
	case OpShl:
		if k == 1 {
			return Use{UseLow, 8} // shift amount: low log2(W) bits
		}
		return Use{UseThrough, w}
	case OpAShr, OpLShr:
		if k == 1 {
			return Use{UseLow, 8}
		}
		if ins.W == W64 {
			return Use{UseAll, 0}
		}
		// 32-bit shifts lower to bit-field extracts (IA64 extr/extr.u,
		// PPC64 rlwinm-style), which read only the low W bits.
		return Use{UseLow, w}
	case OpDiv, OpRem:
		// Integer division executes at full register width; both operands
		// must be properly extended regardless of W.
		return Use{UseAll, 0}
	case OpExt, OpZext:
		return Use{UseLow, w}
	case OpExtDummy:
		// The dummy only asserts a fact; it reads nothing at runtime.
		return Use{UseLow, 0}
	case OpI2D, OpL2D:
		return Use{UseAll, 0}
	case OpCall:
		// Integer arguments follow the sign-extended calling convention.
		return Use{UseAll, 0}
	case OpRet:
		if ins.Blk != nil && ins.Blk.Fn != nil {
			fn := ins.Blk.Fn
			if fn.RetF {
				return Use{UseFloat, 0}
			}
		}
		return Use{UseAll, 0}
	case OpStoreG:
		if ins.W == W64 {
			return Use{UseAll, 0}
		}
		return Use{UseLow, w} // stores write only the low W bits
	case OpNewArr:
		return Use{UseAll, 0} // the allocator consumes a real length
	case OpArrLoad:
		if k == 0 {
			return Use{UseRef, 0}
		}
		return Use{UseIndex, 0}
	case OpArrStore:
		switch k {
		case 0:
			return Use{UseRef, 0}
		case 1:
			return Use{UseIndex, 0}
		default:
			if ins.Float {
				return Use{UseFloat, 0}
			}
			if ins.W == W64 {
				return Use{UseAll, 0}
			}
			return Use{UseLow, w}
		}
	case OpArrLen:
		return Use{UseRef, 0}
	case OpBr:
		if ins.W == W64 {
			return Use{UseAll, 0}
		}
		// 32-bit compares (IA64 cmp4, including the unsigned forms used by
		// bounds checks) ignore the upper halves of both registers.
		return Use{UseLow, w}
	case OpPrint:
		// Modeled as a runtime call taking a sign-extended argument.
		return Use{UseAll, 0}
	}
	return Use{UseAll, 0}
}

// RequiresExt reports whether operand k of ins demands a properly
// sign-extended register on its own (ignoring pass-through demands), together
// with the special array-index case. This is the paper's "instruction that
// requires sign extensions" notion used by the insertion phase.
func RequiresExt(ins *Instr, k int) bool {
	u := UseOf(ins, k)
	return u.Class == UseAll || u.Class == UseIndex
}

// DefClass describes the sign-extension state of an instruction's result.
type DefClass uint8

const (
	// DefDirty: the upper bits of the result are garbage in general
	// (e.g. 32-bit add/sub/mul, zero-extending loads).
	DefDirty DefClass = iota
	// DefExtended: the result is guaranteed sign-extended from Bits bits
	// (AnalyzeDEF Case 1).
	DefExtended
	// DefThrough: the result is sign-extended iff all integer sources are
	// (AnalyzeDEF Case 2: copies and bitwise ops).
	DefThrough
	// DefFloat: the result is a float register.
	DefFloat
	// DefRefKind: the result is an array reference.
	DefRefKind
)

// Def describes an instruction's destination.
type Def struct {
	Class DefClass
	Bits  uint8 // for DefExtended: extended-from width; for DefThrough: op width
	U32Z  bool  // upper 32 bits guaranteed zero (Theorem 1/3 precondition)
}

// smallestExtWidth returns the narrowest w in {8,16,32,64} such that v is a
// valid signed w-bit value.
func smallestExtWidth(v int64) uint8 {
	switch {
	case W8.InRange(v):
		return 8
	case W16.InRange(v):
		return 16
	case W32.InRange(v):
		return 32
	default:
		return 64
	}
}

// DefOf classifies the destination of ins using only the instruction itself
// (no UD-chain context). Analyses refine DefThrough recursively and combine
// DefDirty cases with value-range facts (e.g. AND with a non-negative mask).
func DefOf(ins *Instr, machine Machine) Def {
	switch ins.Op {
	case OpConst:
		v := ins.Const
		return Def{DefExtended, smallestExtWidth(v), v >= 0 && W32.InRange(v)}
	case OpFConst, OpFMov, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpI2D,
		OpL2D, OpFCall:
		return Def{Class: DefFloat}
	case OpNewArr:
		return Def{Class: DefRefKind}
	case OpMov:
		return Def{DefThrough, 64, false}
	case OpAnd, OpOr, OpXor, OpNot:
		// Bitwise ops preserve sign-extendedness: if every source register
		// equals the sign extension of its low W bits, so does the result.
		return Def{DefThrough, uint8(ins.W), false}
	case OpAdd, OpSub, OpMul, OpNeg, OpShl:
		if ins.W == W64 {
			return Def{DefExtended, 64, false}
		}
		return Def{Class: DefDirty}
	case OpDiv, OpRem:
		// Division executes on genuine values; a W-bit quotient/remainder
		// fits in W bits, so the result is sign-extended.
		return Def{DefExtended, uint8(ins.W), false}
	case OpAShr:
		if ins.W == W64 {
			return Def{DefExtended, 64, false}
		}
		// Signed bit-field extract produces a sign-extended W-bit value.
		return Def{DefExtended, uint8(ins.W), false}
	case OpLShr:
		if ins.W == W64 {
			return Def{DefExtended, 64, false}
		}
		// Unsigned extract: upper bits zero; sign-extended as a W-bit value
		// only if the shift amount is nonzero, which analyses check via the
		// range of the amount; here report the unconditional fact.
		return Def{Class: DefDirty, U32Z: ins.W <= W32}
	case OpExt:
		return Def{DefExtended, uint8(ins.W), false}
	case OpExtDummy:
		return Def{DefExtended, uint8(ins.W), false}
	case OpZext:
		// zext.W yields a value in [0, 2^W-1]: upper 32 bits zero for W<=32,
		// and sign-extended when viewed at the next width up.
		b := uint8(ins.W) * 2
		if ins.W == W64 {
			b = 64
		}
		return Def{DefExtended, b, ins.W <= W32}
	case OpD2I:
		return Def{DefExtended, 32, false}
	case OpD2L:
		return Def{DefExtended, 64, false}
	case OpCall:
		if ins.Float {
			return Def{Class: DefFloat}
		}
		// Integer results follow the sign-extended calling convention.
		return Def{DefExtended, uint8(ins.W), false}
	case OpArrLen:
		// Lengths lie in [0, 2^31-1]: sign-extended and upper-32 zero.
		return Def{DefExtended, 32, true}
	case OpLoadG, OpArrLoad:
		if ins.Float {
			return Def{Class: DefFloat}
		}
		if ins.W == W64 {
			return Def{DefExtended, 64, false}
		}
		if machine == PPC64 {
			// lwa / lha: memory reads sign-extend implicitly.
			return Def{DefExtended, uint8(ins.W), false}
		}
		// IA64: memory reads zero-extend.
		return Def{Class: DefDirty, U32Z: true}
	}
	return Def{Class: DefDirty}
}

// Machine selects the memory-read extension behaviour and lowering style.
type Machine uint8

// Supported machine models.
const (
	// IA64: loads zero-extend; explicit sxt needed; shladd computes array
	// EAs in one instruction when the index is extended.
	IA64 Machine = iota
	// PPC64: loads sign-extend implicitly (lwa/lha); exts for explicit
	// extension; rldic can form EAs from known-non-negative indices.
	PPC64
)

func (m Machine) String() string {
	if m == PPC64 {
		return "ppc64"
	}
	return "ia64"
}
