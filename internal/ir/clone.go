package ir

// Clone returns a deep copy of the function. The copy shares nothing mutable
// with the original, so one frontend result can be compiled under many
// optimization variants.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:    f.Name,
		Params:  append([]Param(nil), f.Params...),
		RetW:    f.RetW,
		RetF:    f.RetF,
		NReg:    f.NReg,
		nextIID: f.nextIID,
		nextBID: f.nextBID,
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Fn: nf}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		nb.Instrs = make([]*Instr, len(b.Instrs))
		for k, ins := range b.Instrs {
			ci := *ins
			ci.Blk = nb
			if ins.Args != nil {
				ci.Args = append([]Reg(nil), ins.Args...)
			}
			nb.Instrs[k] = &ci
		}
		nb.Succs = make([]*Block, len(b.Succs))
		for k, s := range b.Succs {
			nb.Succs[k] = bmap[s]
		}
		nb.Preds = make([]*Block, len(b.Preds))
		for k, p := range b.Preds {
			nb.Preds[k] = bmap[p]
		}
	}
	return nf
}

// Clone deep-copies a whole program.
func (p *Program) Clone() *Program {
	np := NewProgram()
	np.NGlobals = p.NGlobals
	for _, fn := range p.Funcs {
		np.AddFunc(fn.Clone())
	}
	return np
}
