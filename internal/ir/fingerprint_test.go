package ir

import "testing"

// fpDiamond builds a small diamond-CFG function. When permute is true the
// non-entry blocks are allocated in reverse order (different Block.IDs and a
// different layout order in Blocks), but the wiring and instruction streams
// are structurally identical to the permute=false build.
func fpDiamond(name string, permute bool) *Func {
	b := NewFunc(name)
	entry := b.Block()
	var t, e, j *Block
	if permute {
		j = b.NewBlock()
		e = b.NewBlock()
		t = b.NewBlock()
	} else {
		t = b.NewBlock()
		e = b.NewBlock()
		j = b.NewBlock()
	}
	b.SetBlock(entry)
	x := b.Const(W32, 1)
	y := b.Const(W32, 2)
	b.Br(W32, CondLT, x, y, t, e)
	b.SetBlock(t)
	tv := b.Const(W32, 7)
	b.Print(W32, tv)
	b.Jmp(j)
	b.SetBlock(e)
	ev := b.Const(W32, 9)
	b.Print(W32, ev)
	b.Jmp(j)
	b.SetBlock(j)
	b.Ret(NoReg)
	return b.Fn
}

func TestFingerprintStable(t *testing.T) {
	a := fpDiamond("f", false)
	fp := a.Fingerprint()
	if fp == (Fingerprint{}) {
		t.Fatal("zero fingerprint")
	}
	if got := a.Fingerprint(); got != fp {
		t.Error("fingerprint not deterministic across calls")
	}
	if got := a.Clone().Fingerprint(); got != fp {
		t.Error("clone changed the fingerprint")
	}
	if got := fpDiamond("g", false).Fingerprint(); got != fp {
		t.Error("function name leaked into the structural fingerprint")
	}
}

func TestFingerprintBlockAllocationOrderIndependent(t *testing.T) {
	a := fpDiamond("f", false)
	b := fpDiamond("f", true)
	// Sanity: the two builds really do differ in block IDs and layout.
	if a.Blocks[1].ID == b.Blocks[1].ID && a.Blocks[1].Term().Op == b.Blocks[1].Term().Op {
		t.Fatal("permuted build did not permute block allocation")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on block allocation order")
	}
}

func TestFingerprintInstrIDIndependent(t *testing.T) {
	a := fpDiamond("f", false)
	b := fpDiamond("f", false)
	// Burn instruction IDs mid-build equivalent: renumber b's instructions.
	for _, blk := range b.Blocks {
		for _, ins := range blk.Instrs {
			ins.ID += 100
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on instruction ID numbering")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpDiamond("f", false).Fingerprint()
	mutate := func(name string, f func(*Func)) {
		fn := fpDiamond("f", false)
		f(fn)
		if fn.Fingerprint() == base {
			t.Errorf("%s: structural change did not change the fingerprint", name)
		}
	}
	mutate("const value", func(fn *Func) { fn.Entry().Instrs[0].Const = 3 })
	mutate("width", func(fn *Func) { fn.Entry().Instrs[0].W = W64 })
	mutate("opcode", func(fn *Func) { fn.Blocks[1].Instrs[0].Op = OpNeg })
	mutate("cond", func(fn *Func) { fn.Entry().Term().Cond = CondGE })
	mutate("operand", func(fn *Func) { fn.Entry().Term().Srcs[0] = fn.Entry().Term().Srcs[1] })
	mutate("edge order", func(fn *Func) {
		s := fn.Entry().Succs
		s[0], s[1] = s[1], s[0]
	})
	mutate("ret width", func(fn *Func) { fn.RetW = W32 })
	mutate("extra instr", func(fn *Func) {
		ins := fn.NewInstr(OpConst)
		ins.W = W32
		fn.Entry().InsertAt(0, ins)
	})
}
