package ir

import (
	"fmt"
	"strings"
)

// String renders the instruction in a compact assembly-like syntax.
func (i *Instr) String() string {
	var sb strings.Builder
	if i.HasDst() {
		fmt.Fprintf(&sb, "%s = ", i.Dst)
	}
	sb.WriteString(i.Op.String())
	switch i.Op {
	case OpExt, OpZext, OpExtDummy, OpAdd, OpSub, OpMul, OpDiv, OpRem,
		OpAnd, OpOr, OpXor, OpNot, OpNeg, OpShl, OpAShr, OpLShr, OpMov,
		OpLoadG, OpStoreG, OpArrLoad, OpArrStore, OpNewArr, OpPrint, OpRet:
		if i.W != 0 {
			fmt.Fprintf(&sb, ".%d", i.W.Bits())
		}
	case OpBr:
		fmt.Fprintf(&sb, ".%d.%s", i.W.Bits(), i.Cond)
	case OpFBr:
		fmt.Fprintf(&sb, ".%s", i.Cond)
	case OpConst:
		// The parser defaults a bare "const" to W32, so only non-default
		// widths need the suffix — but they NEED it: a 64-bit constant
		// printed bare would silently re-parse as a 32-bit one, changing
		// how the optimizer classifies it (a semantic round-trip loss the
		// serve-identity property caught on generated IR).
		if i.W != 0 && i.W != W32 {
			fmt.Fprintf(&sb, ".%d", i.W.Bits())
		}
	}
	// Float memory/call variants carry a .f marker so the textual form
	// round-trips.
	if i.Float {
		switch i.Op {
		case OpLoadG, OpStoreG, OpNewArr, OpArrLoad, OpArrStore, OpCall:
			sb.WriteString(".f")
		}
	}
	switch i.Op {
	case OpConst:
		fmt.Fprintf(&sb, " %d", i.Const)
	case OpFConst:
		fmt.Fprintf(&sb, " %g", i.F)
	case OpLoadG, OpStoreG:
		fmt.Fprintf(&sb, " g%d", i.Const)
	case OpCall, OpFCall:
		fmt.Fprintf(&sb, " %s", i.Callee)
	}
	for k := 0; k < int(i.NSrcs); k++ {
		fmt.Fprintf(&sb, " %s", i.Srcs[k])
	}
	if len(i.Args) > 0 {
		parts := make([]string, len(i.Args))
		for k, a := range i.Args {
			parts[k] = a.String()
		}
		fmt.Fprintf(&sb, " (%s)", strings.Join(parts, ", "))
	}
	if i.Op == OpBr || i.Op == OpFBr {
		if b := i.Blk; b != nil && len(b.Succs) == 2 {
			fmt.Fprintf(&sb, " -> %s, %s", b.Succs[0], b.Succs[1])
		}
	}
	if i.Op == OpJmp {
		if b := i.Blk; b != nil && len(b.Succs) == 1 {
			fmt.Fprintf(&sb, " -> %s", b.Succs[0])
		}
	}
	return sb.String()
}

// Format renders the whole function as text, one instruction per line.
func (f *Func) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for k, p := range f.Params {
		if k > 0 {
			sb.WriteString(", ")
		}
		switch {
		case p.Ref:
			fmt.Fprintf(&sb, "r%d ref", k)
		case p.Float:
			fmt.Fprintf(&sb, "r%d f64", k)
		default:
			fmt.Fprintf(&sb, "r%d i%d", k, p.W.Bits())
		}
	}
	sb.WriteString(")")
	switch {
	case f.RetF:
		sb.WriteString(" f64")
	case f.RetW != 0:
		fmt.Fprintf(&sb, " i%d", f.RetW.Bits())
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if len(b.Preds) > 0 {
			preds := make([]string, len(b.Preds))
			for k, p := range b.Preds {
				preds[k] = p.String()
			}
			fmt.Fprintf(&sb, " ; preds %s", strings.Join(preds, " "))
		}
		sb.WriteString("\n")
		for _, ins := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", ins)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
