package ir

// Builder provides a convenient way to assemble IR functions, used by the
// MiniJava lowerer, the examples, and the tests.
type Builder struct {
	Fn  *Func
	cur *Block
}

// NewFunc starts a new function with the given parameters and makes its entry
// block current.
func NewFunc(name string, params ...Param) *Builder {
	fn := &Func{Name: name, Params: params, NReg: len(params)}
	b := &Builder{Fn: fn}
	b.cur = fn.NewBlock()
	return b
}

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

// NewBlock creates a block without switching to it.
func (b *Builder) NewBlock() *Block { return b.Fn.NewBlock() }

// SetBlock switches the insertion point.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Param returns the register holding parameter i.
func (b *Builder) Param(i int) Reg { return Reg(i) }

func (b *Builder) emit(ins *Instr) *Instr {
	if b.cur == nil {
		panic("ir: builder has no current block")
	}
	if t := b.cur.Term(); t != nil {
		panic("ir: emitting into terminated block in " + b.Fn.Name)
	}
	ins.Blk = b.cur
	b.cur.Instrs = append(b.cur.Instrs, ins)
	return ins
}

func (b *Builder) op0(op Op, w Width) (*Instr, Reg) {
	ins := b.Fn.NewInstr(op)
	ins.W = w
	ins.Dst = b.Fn.NewReg()
	b.emit(ins)
	return ins, ins.Dst
}

func (b *Builder) op1(op Op, w Width, s Reg) (*Instr, Reg) {
	ins := b.Fn.NewInstr(op)
	ins.W = w
	ins.Dst = b.Fn.NewReg()
	ins.Srcs[0] = s
	ins.NSrcs = 1
	b.emit(ins)
	return ins, ins.Dst
}

func (b *Builder) op2(op Op, w Width, s0, s1 Reg) (*Instr, Reg) {
	ins := b.Fn.NewInstr(op)
	ins.W = w
	ins.Dst = b.Fn.NewReg()
	ins.Srcs[0], ins.Srcs[1] = s0, s1
	ins.NSrcs = 2
	b.emit(ins)
	return ins, ins.Dst
}

// Const materializes a W-width integer constant.
func (b *Builder) Const(w Width, v int64) Reg {
	ins, d := b.op0(OpConst, w)
	ins.Const = v
	return d
}

// FConst materializes a float constant.
func (b *Builder) FConst(v float64) Reg {
	ins, d := b.op0(OpFConst, W64)
	ins.F = v
	return d
}

// Mov copies a register.
func (b *Builder) Mov(w Width, s Reg) Reg { _, d := b.op1(OpMov, w, s); return d }

// MovTo copies s into an existing register d.
func (b *Builder) MovTo(w Width, d, s Reg) *Instr {
	ins := b.Fn.NewInstr(OpMov)
	ins.W = w
	ins.Dst = d
	ins.Srcs[0] = s
	ins.NSrcs = 1
	return b.emit(ins)
}

// FMov copies a float register.
func (b *Builder) FMov(s Reg) Reg { _, d := b.op1(OpFMov, W64, s); return d }

// Arithmetic and bitwise helpers.
func (b *Builder) Add(w Width, x, y Reg) Reg  { _, d := b.op2(OpAdd, w, x, y); return d }
func (b *Builder) Sub(w Width, x, y Reg) Reg  { _, d := b.op2(OpSub, w, x, y); return d }
func (b *Builder) Mul(w Width, x, y Reg) Reg  { _, d := b.op2(OpMul, w, x, y); return d }
func (b *Builder) Div(w Width, x, y Reg) Reg  { _, d := b.op2(OpDiv, w, x, y); return d }
func (b *Builder) Rem(w Width, x, y Reg) Reg  { _, d := b.op2(OpRem, w, x, y); return d }
func (b *Builder) And(w Width, x, y Reg) Reg  { _, d := b.op2(OpAnd, w, x, y); return d }
func (b *Builder) Or(w Width, x, y Reg) Reg   { _, d := b.op2(OpOr, w, x, y); return d }
func (b *Builder) Xor(w Width, x, y Reg) Reg  { _, d := b.op2(OpXor, w, x, y); return d }
func (b *Builder) Not(w Width, x Reg) Reg     { _, d := b.op1(OpNot, w, x); return d }
func (b *Builder) Neg(w Width, x Reg) Reg     { _, d := b.op1(OpNeg, w, x); return d }
func (b *Builder) Shl(w Width, x, y Reg) Reg  { _, d := b.op2(OpShl, w, x, y); return d }
func (b *Builder) AShr(w Width, x, y Reg) Reg { _, d := b.op2(OpAShr, w, x, y); return d }
func (b *Builder) LShr(w Width, x, y Reg) Reg { _, d := b.op2(OpLShr, w, x, y); return d }

// AddTo emits d = x op y into an existing destination register.
func (b *Builder) OpTo(op Op, w Width, d, x, y Reg) *Instr {
	ins := b.Fn.NewInstr(op)
	ins.W = w
	ins.Dst = d
	ins.Srcs[0], ins.Srcs[1] = x, y
	ins.NSrcs = 2
	return b.emit(ins)
}

// ConstTo materializes a constant into an existing register.
func (b *Builder) ConstTo(w Width, d Reg, v int64) *Instr {
	ins := b.Fn.NewInstr(OpConst)
	ins.W = w
	ins.Dst = d
	ins.Const = v
	return b.emit(ins)
}

// LoadGTo loads global cell g into an existing register.
func (b *Builder) LoadGTo(w Width, d Reg, g int) *Instr {
	ins := b.Fn.NewInstr(OpLoadG)
	ins.W = w
	ins.Dst = d
	ins.Const = int64(g)
	return b.emit(ins)
}

// Op1To emits d = op s into an existing destination register.
func (b *Builder) Op1To(op Op, w Width, d, s Reg) *Instr {
	ins := b.Fn.NewInstr(op)
	ins.W = w
	ins.Dst = d
	ins.Srcs[0] = s
	ins.NSrcs = 1
	return b.emit(ins)
}

// Ext emits an explicit same-register sign extension r = ext.w r.
func (b *Builder) Ext(w Width, r Reg) *Instr {
	ins := b.Fn.NewInstr(OpExt)
	ins.W = w
	ins.Dst = r
	ins.Srcs[0] = r
	ins.NSrcs = 1
	return b.emit(ins)
}

// ExtTo emits d = ext.w s with distinct registers.
func (b *Builder) ExtTo(w Width, d, s Reg) *Instr {
	ins := b.Fn.NewInstr(OpExt)
	ins.W = w
	ins.Dst = d
	ins.Srcs[0] = s
	ins.NSrcs = 1
	return b.emit(ins)
}

// Zext emits d = zext.w s.
func (b *Builder) Zext(w Width, s Reg) Reg { _, d := b.op1(OpZext, w, s); return d }

// Conversions.
func (b *Builder) I2D(s Reg) Reg { _, d := b.op1(OpI2D, W32, s); return d }
func (b *Builder) L2D(s Reg) Reg { _, d := b.op1(OpL2D, W64, s); return d }
func (b *Builder) D2I(s Reg) Reg { _, d := b.op1(OpD2I, W32, s); return d }
func (b *Builder) D2L(s Reg) Reg { _, d := b.op1(OpD2L, W64, s); return d }

// Float arithmetic.
func (b *Builder) FAdd(x, y Reg) Reg { _, d := b.op2(OpFAdd, W64, x, y); return d }
func (b *Builder) FSub(x, y Reg) Reg { _, d := b.op2(OpFSub, W64, x, y); return d }
func (b *Builder) FMul(x, y Reg) Reg { _, d := b.op2(OpFMul, W64, x, y); return d }
func (b *Builder) FDiv(x, y Reg) Reg { _, d := b.op2(OpFDiv, W64, x, y); return d }
func (b *Builder) FNeg(x Reg) Reg    { _, d := b.op1(OpFNeg, W64, x); return d }

// FCall invokes a float builtin (sqrt, sin, cos, exp, log, fabs, pow).
func (b *Builder) FCall(name string, args ...Reg) Reg {
	ins := b.Fn.NewInstr(OpFCall)
	ins.W = W64
	ins.Dst = b.Fn.NewReg()
	ins.Callee = name
	ins.Args = append([]Reg(nil), args...)
	b.emit(ins)
	return ins.Dst
}

// Call invokes a user function. retW 0 means void (returns NoReg).
func (b *Builder) Call(name string, retW Width, retF bool, args ...Reg) Reg {
	ins := b.Fn.NewInstr(OpCall)
	ins.W = retW
	ins.Callee = name
	ins.Args = append([]Reg(nil), args...)
	if retW != 0 || retF {
		ins.Dst = b.Fn.NewReg()
	}
	ins.Float = retF
	b.emit(ins)
	return ins.Dst
}

// Ret returns a value (or nothing when r == NoReg).
func (b *Builder) Ret(r Reg) {
	ins := b.Fn.NewInstr(OpRet)
	if r != NoReg {
		ins.Srcs[0] = r
		ins.NSrcs = 1
	}
	b.emit(ins)
	b.cur = nil
}

// LoadG loads global scalar cell g.
func (b *Builder) LoadG(w Width, g int) Reg {
	ins, d := b.op0(OpLoadG, w)
	ins.Const = int64(g)
	return d
}

// LoadGF loads a float from global cell g.
func (b *Builder) LoadGF(g int) Reg {
	ins, d := b.op0(OpLoadG, W64)
	ins.Const = int64(g)
	ins.Float = true
	return d
}

// StoreG stores the low w bits of s into global cell g.
func (b *Builder) StoreG(w Width, g int, s Reg) *Instr {
	ins := b.Fn.NewInstr(OpStoreG)
	ins.W = w
	ins.Const = int64(g)
	ins.Srcs[0] = s
	ins.NSrcs = 1
	return b.emit(ins)
}

// StoreGF stores a float into global cell g.
func (b *Builder) StoreGF(g int, s Reg) *Instr {
	ins := b.StoreG(W64, g, s)
	ins.Float = true
	return ins
}

// NewArr allocates an array of n elements of width w (float elements when
// fl).
func (b *Builder) NewArr(w Width, fl bool, n Reg) Reg {
	ins, d := b.op1(OpNewArr, w, n)
	ins.Float = fl
	return d
}

// ArrLoad loads arr[idx].
func (b *Builder) ArrLoad(w Width, fl bool, arr, idx Reg) Reg {
	ins, d := b.op2(OpArrLoad, w, arr, idx)
	ins.Float = fl
	return d
}

// ArrLoadTo loads arr[idx] into an existing register.
func (b *Builder) ArrLoadTo(w Width, fl bool, d, arr, idx Reg) *Instr {
	ins := b.Fn.NewInstr(OpArrLoad)
	ins.W = w
	ins.Float = fl
	ins.Dst = d
	ins.Srcs[0], ins.Srcs[1] = arr, idx
	ins.NSrcs = 2
	return b.emit(ins)
}

// ArrStore stores val into arr[idx].
func (b *Builder) ArrStore(w Width, fl bool, arr, idx, val Reg) *Instr {
	ins := b.Fn.NewInstr(OpArrStore)
	ins.W = w
	ins.Float = fl
	ins.Srcs[0], ins.Srcs[1], ins.Srcs[2] = arr, idx, val
	ins.NSrcs = 3
	return b.emit(ins)
}

// ArrLen loads the length of arr.
func (b *Builder) ArrLen(arr Reg) Reg { _, d := b.op1(OpArrLen, W32, arr); return d }

// Br ends the current block with a conditional branch and leaves no current
// block; callers must SetBlock afterwards.
func (b *Builder) Br(w Width, c Cond, x, y Reg, then, els *Block) {
	ins := b.Fn.NewInstr(OpBr)
	ins.W = w
	ins.Cond = c
	ins.Srcs[0], ins.Srcs[1] = x, y
	ins.NSrcs = 2
	blk := b.cur
	b.emit(ins)
	AddEdge(blk, then)
	AddEdge(blk, els)
	b.cur = nil
}

// FBr is the float-compare conditional branch.
func (b *Builder) FBr(c Cond, x, y Reg, then, els *Block) {
	ins := b.Fn.NewInstr(OpFBr)
	ins.W = W64
	ins.Cond = c
	ins.Srcs[0], ins.Srcs[1] = x, y
	ins.NSrcs = 2
	blk := b.cur
	b.emit(ins)
	AddEdge(blk, then)
	AddEdge(blk, els)
	b.cur = nil
}

// Jmp ends the current block with an unconditional jump.
func (b *Builder) Jmp(to *Block) {
	ins := b.Fn.NewInstr(OpJmp)
	blk := b.cur
	b.emit(ins)
	AddEdge(blk, to)
	b.cur = nil
}

// Print emits an integer to the program output.
func (b *Builder) Print(w Width, s Reg) *Instr {
	ins := b.Fn.NewInstr(OpPrint)
	ins.W = w
	ins.Srcs[0] = s
	ins.NSrcs = 1
	return b.emit(ins)
}

// FPrint emits a float to the program output.
func (b *Builder) FPrint(s Reg) *Instr {
	ins := b.Fn.NewInstr(OpFPrint)
	ins.W = W64
	ins.Srcs[0] = s
	ins.NSrcs = 1
	return b.emit(ins)
}

// CallV invokes a void user function.
func (b *Builder) CallV(name string, args ...Reg) {
	ins := b.Fn.NewInstr(OpCall)
	ins.Callee = name
	ins.Args = append([]Reg(nil), args...)
	b.emit(ins)
}
