package chains

import (
	"testing"

	"signext/internal/cfg"
	"signext/internal/ir"
)

// benchLadder builds a chain-heavy function: k sequential blocks each
// redefining a rotating set of registers.
func benchLadder(nBlocks, nRegs int) *ir.Func {
	b := ir.NewFunc("ladder", ir.Param{W: ir.W32})
	regs := make([]ir.Reg, nRegs)
	for i := range regs {
		regs[i] = b.Fn.NewReg()
		b.ConstTo(ir.W32, regs[i], int64(i))
	}
	prev := b.Block()
	for k := 0; k < nBlocks; k++ {
		nb := b.Fn.NewBlock()
		b.Jmp(nb)
		b.SetBlock(nb)
		r := regs[k%nRegs]
		b.OpTo(ir.OpAdd, ir.W32, r, r, regs[(k+1)%nRegs])
		b.Ext(ir.W32, r)
		_ = prev
		prev = nb
	}
	for _, r := range regs {
		b.Print(ir.W32, r)
	}
	b.Ret(ir.NoReg)
	return b.Fn
}

func BenchmarkBuildChains(b *testing.B) {
	fn := benchLadder(120, 12)
	info := cfg.Compute(fn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(fn, info)
	}
}

func BenchmarkRemoveSameRegExt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := benchLadder(60, 8)
		info := cfg.Compute(fn)
		c := Build(fn, info)
		var exts []*ir.Instr
		fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
			if ins.IsExt() {
				exts = append(exts, ins)
			}
		})
		b.StartTimer()
		for _, e := range exts {
			c.RemoveSameRegExt(e)
		}
	}
}
