package chains

import (
	"fmt"

	"signext/internal/dataflow"
	"signext/internal/ir"
)

// Check validates the chain structure's internal cross-consistency: every
// UD edge has a matching DU edge and vice versa, and every instruction the
// chains mention is still placed in a block of the function. Incremental
// patching (RemoveSameRegExt) must preserve all of these invariants; the
// guard verifier runs Check at phase boundaries to catch chain corruption
// before it licenses an unsound elimination.
func (c *Chains) Check() error {
	inFn := map[*ir.Instr]bool{}
	c.Fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) { inFn[ins] = true })

	place := func(ins *ir.Instr) error {
		if !inFn[ins] {
			return fmt.Errorf("chains: %s/%s not in function %s", ins, ins.Blk, c.Fn.Name)
		}
		return nil
	}
	duOf := func(d dataflow.DefSite) []UseSite {
		if d.IsParam() {
			return c.duParam[d.Param]
		}
		return c.du[d.Instr]
	}

	// UD -> DU direction.
	for key, defs := range c.ud {
		if err := place(key.ins); err != nil {
			return err
		}
		if key.op < 0 || key.op >= key.ins.NumUses() {
			return fmt.Errorf("chains: UD entry for out-of-range operand %d of %s", key.op, key.ins)
		}
		use := UseSite{key.ins, key.op}
		for _, d := range defs {
			if !d.IsParam() {
				if err := place(d.Instr); err != nil {
					return err
				}
				if d.Instr.Dst != d.Reg {
					return fmt.Errorf("chains: def site %s claims reg %s", d.Instr, d.Reg)
				}
			} else if d.Param < 0 || d.Param >= c.Fn.NParams() {
				return fmt.Errorf("chains: def site for out-of-range param %d", d.Param)
			}
			if d.Reg != key.ins.UseAt(key.op) {
				return fmt.Errorf("chains: UD def of %s feeds operand %d of %s reading %s",
					d.Reg, key.op, key.ins, key.ins.UseAt(key.op))
			}
			if !containsUse(duOf(d), use) {
				return fmt.Errorf("chains: UD edge %v -> operand %d of %s lacks DU back-edge",
					d.Reg, key.op, key.ins)
			}
		}
	}

	// DU -> UD direction.
	checkDU := func(d dataflow.DefSite, uses []UseSite) error {
		for _, u := range uses {
			if err := place(u.Instr); err != nil {
				return err
			}
			if u.OpIdx < 0 || u.OpIdx >= u.Instr.NumUses() {
				return fmt.Errorf("chains: DU entry for out-of-range operand %d of %s", u.OpIdx, u.Instr)
			}
			if !containsDef(c.ud[useKey{u.Instr, u.OpIdx}], d) {
				return fmt.Errorf("chains: DU edge to operand %d of %s lacks UD back-edge", u.OpIdx, u.Instr)
			}
		}
		return nil
	}
	for ins, uses := range c.du {
		if err := place(ins); err != nil {
			return err
		}
		if err := checkDU(dataflow.DefSite{Instr: ins, Param: -1, Reg: ins.Dst}, uses); err != nil {
			return err
		}
	}
	for p, uses := range c.duParam {
		if err := checkDU(dataflow.DefSite{Param: p, Reg: ir.Reg(p)}, uses); err != nil {
			return err
		}
	}
	return nil
}

// DropUDEdge removes one reaching definition from the UD list of operand op
// of ins WITHOUT patching the DU side — a deliberately unsound mutation.
// It exists for the guard's fault injection, which proves Check detects
// exactly this class of chain damage; it reports whether there was an edge
// to drop.
func (c *Chains) DropUDEdge(ins *ir.Instr, op int) bool {
	key := useKey{ins, op}
	defs := c.ud[key]
	if len(defs) == 0 {
		return false
	}
	c.ud[key] = defs[1:]
	return true
}
