// Package chains builds and maintains UD/DU chains over the IR. The paper's
// elimination phase (section 2.3) is driven entirely by these chains:
// AnalyzeUSE walks DU chains forward, AnalyzeDEF and AnalyzeARRAY walk UD
// chains backward. Because every compiler-generated sign extension has the
// same-register form "v = ext.W v", removing one is a local chain-patching
// operation rather than a full recomputation.
package chains

import (
	"signext/internal/cfg"
	"signext/internal/dataflow"
	"signext/internal/ir"
)

// UseSite identifies one operand of one instruction.
type UseSite struct {
	Instr *ir.Instr
	OpIdx int // index as in ir.Instr.UseAt
}

type useKey struct {
	ins *ir.Instr
	op  int
}

// Chains is the UD/DU chain structure for a single function.
type Chains struct {
	Fn *ir.Func

	ud      map[useKey][]dataflow.DefSite
	du      map[*ir.Instr][]UseSite
	duParam [][]UseSite
}

// Build computes fresh chains for fn.
func Build(fn *ir.Func, info *cfg.Info) *Chains {
	r := dataflow.ComputeReaching(fn, info)
	c := &Chains{
		Fn:      fn,
		ud:      map[useKey][]dataflow.DefSite{},
		du:      map[*ir.Instr][]UseSite{},
		duParam: make([][]UseSite, fn.NParams()),
	}
	for _, b := range fn.Blocks {
		in, ok := r.In[b]
		if !ok {
			continue
		}
		cur := in.Clone()
		for _, ins := range b.Instrs {
			ins.ForEachUse(func(k int, reg ir.Reg) {
				var defs []dataflow.DefSite
				for _, dn := range r.ByReg[reg] {
					if cur.Has(dn) {
						site := r.Defs[dn]
						defs = append(defs, site)
						use := UseSite{ins, k}
						if site.IsParam() {
							c.duParam[site.Param] = append(c.duParam[site.Param], use)
						} else {
							c.du[site.Instr] = append(c.du[site.Instr], use)
						}
					}
				}
				c.ud[useKey{ins, k}] = defs
			})
			if ins.HasDst() {
				for _, other := range r.ByReg[ins.Dst] {
					cur.Clear(other)
				}
				cur.Set(r.DefNum[ins])
			}
		}
	}
	return c
}

// UD returns the definitions reaching operand op of ins.
func (c *Chains) UD(ins *ir.Instr, op int) []dataflow.DefSite {
	return c.ud[useKey{ins, op}]
}

// DU returns the uses reached by the definition made by ins.
func (c *Chains) DU(ins *ir.Instr) []UseSite { return c.du[ins] }

// DUOfParam returns the uses reached by parameter p's entry definition.
func (c *Chains) DUOfParam(p int) []UseSite { return c.duParam[p] }

func containsDef(ds []dataflow.DefSite, d dataflow.DefSite) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}

func containsUse(us []UseSite, u UseSite) bool {
	for _, x := range us {
		if x == u {
			return true
		}
	}
	return false
}

func removeDef(ds []dataflow.DefSite, d dataflow.DefSite) []dataflow.DefSite {
	out := ds[:0]
	for _, x := range ds {
		if x != d {
			out = append(out, x)
		}
	}
	return out
}

func removeUse(us []UseSite, u UseSite) []UseSite {
	out := us[:0]
	for _, x := range us {
		if x != u {
			out = append(out, x)
		}
	}
	return out
}

// RemoveSameRegExt deletes a same-register extension or dummy
// ("v = ext.W v" / "v = ext.dummy.W v") from its block and patches the chains
// so every use formerly fed by e is fed by the definitions that fed e.
func (c *Chains) RemoveSameRegExt(e *ir.Instr) {
	if (e.Op != ir.OpExt && e.Op != ir.OpExtDummy) || e.Dst != e.Srcs[0] {
		panic("chains: RemoveSameRegExt on non same-register extension")
	}
	eDef := dataflow.DefSite{Instr: e, Param: -1, Reg: e.Dst}
	eUse := UseSite{e, 0}

	feeding := append([]dataflow.DefSite(nil), c.ud[useKey{e, 0}]...)
	feeding = removeDef(feeding, eDef) // drop a self-loop, if any
	downstream := append([]UseSite(nil), c.du[e]...)
	downstream = removeUse(downstream, eUse)

	// Re-point each downstream use at the feeding definitions.
	for _, u := range downstream {
		key := useKey{u.Instr, u.OpIdx}
		ds := removeDef(c.ud[key], eDef)
		for _, d := range feeding {
			if !containsDef(ds, d) {
				ds = append(ds, d)
			}
		}
		c.ud[key] = ds
	}
	// Extend each feeding definition's DU set with the downstream uses and
	// drop its edge to e itself.
	for _, d := range feeding {
		var us []UseSite
		if d.IsParam() {
			us = c.duParam[d.Param]
		} else {
			us = c.du[d.Instr]
		}
		us = removeUse(us, eUse)
		for _, u := range downstream {
			if !containsUse(us, u) {
				us = append(us, u)
			}
		}
		if d.IsParam() {
			c.duParam[d.Param] = us
		} else {
			c.du[d.Instr] = us
		}
	}
	delete(c.du, e)
	delete(c.ud, useKey{e, 0})
	e.Blk.Remove(e)
}
