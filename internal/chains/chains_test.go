package chains

import (
	"sort"
	"testing"

	"signext/internal/cfg"
	"signext/internal/dataflow"
	"signext/internal/ir"
)

// buildLoop constructs the canonical shape chains must get right:
//
//	b0: i = 0;           jmp b1
//	b1: i = i + p0
//	    i = ext.32 i     <- candidate
//	    print? no: br i < p0 -> b1, b2
//	b2: i2d i; ret
func buildLoop() (*ir.Func, *ir.Instr, *ir.Instr, *ir.Instr) {
	b := ir.NewFunc("c", ir.Param{W: ir.W32})
	i := b.Fn.NewReg()
	init := b.ConstTo(ir.W32, i, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	add := b.OpTo(ir.OpAdd, ir.W32, i, i, ir.Reg(0))
	ext := b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), loop, exit)
	b.SetBlock(exit)
	d := b.I2D(i)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	return b.Fn, init, add, ext
}

func TestUDChains(t *testing.T) {
	fn, init, add, ext := buildLoop()
	info := cfg.Compute(fn)
	c := Build(fn, info)

	// The add's i operand sees the init and (around the back edge) the ext.
	defs := c.UD(add, 0)
	if len(defs) != 2 {
		t.Fatalf("defs of i at the add: %v", defs)
	}
	want := map[*ir.Instr]bool{init: true, ext: true}
	for _, d := range defs {
		if d.IsParam() || !want[d.Instr] {
			t.Fatalf("unexpected def %v", d)
		}
	}
	// The ext's source is defined only by the add.
	defs = c.UD(ext, 0)
	if len(defs) != 1 || defs[0].Instr != add {
		t.Fatalf("defs at ext: %v", defs)
	}
	// The add's second operand is the parameter.
	defs = c.UD(add, 1)
	if len(defs) != 1 || !defs[0].IsParam() {
		t.Fatalf("param def: %v", defs)
	}
}

func TestDUChains(t *testing.T) {
	fn, init, add, ext := buildLoop()
	info := cfg.Compute(fn)
	c := Build(fn, info)
	_ = fn

	// init reaches only the add (the ext kills it within the loop).
	uses := c.DU(init)
	if len(uses) != 1 || uses[0].Instr != add || uses[0].OpIdx != 0 {
		t.Fatalf("DU(init): %v", uses)
	}
	// The ext's value is used by the branch, the i2d and the add (back
	// edge).
	uses = c.DU(ext)
	ops := map[ir.Op]bool{}
	for _, u := range uses {
		ops[u.Instr.Op] = true
	}
	if !ops[ir.OpBr] || !ops[ir.OpI2D] || !ops[ir.OpAdd] {
		t.Fatalf("DU(ext) incomplete: %v", uses)
	}
}

func TestRemoveSameRegExtPatches(t *testing.T) {
	fn, _, add, ext := buildLoop()
	info := cfg.Compute(fn)
	c := Build(fn, info)
	c.RemoveSameRegExt(ext)

	if ext.Blk != nil {
		t.Fatal("ext not removed from its block")
	}
	// After patching, the chains must equal a fresh rebuild.
	fresh := Build(fn, cfg.Compute(fn))
	compareChains(t, fn, c, fresh)

	// The add's downstream uses now come straight from the add.
	uses := c.DU(add)
	ops := map[ir.Op]int{}
	for _, u := range uses {
		ops[u.Instr.Op]++
	}
	if ops[ir.OpBr] != 1 || ops[ir.OpI2D] != 1 || ops[ir.OpAdd] != 1 {
		t.Fatalf("DU(add) after patch: %v", uses)
	}
}

// compareChains asserts c matches fresh on every use site and def site.
func compareChains(t *testing.T, fn *ir.Func, c, fresh *Chains) {
	t.Helper()
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		for op := 0; op < ins.NumUses(); op++ {
			a := normalizeDefs(c.UD(ins, op))
			b := normalizeDefs(fresh.UD(ins, op))
			if !sameStrings(a, b) {
				t.Errorf("UD(%v, %d): patched %v, fresh %v", ins, op, a, b)
			}
		}
		if ins.HasDst() {
			a := normalizeUses(c.DU(ins))
			b := normalizeUses(fresh.DU(ins))
			if !sameStrings(a, b) {
				t.Errorf("DU(%v): patched %v, fresh %v", ins, a, b)
			}
		}
	})
	for p := 0; p < fn.NParams(); p++ {
		a := normalizeUses(c.DUOfParam(p))
		b := normalizeUses(fresh.DUOfParam(p))
		if !sameStrings(a, b) {
			t.Errorf("DUOfParam(%d): patched %v, fresh %v", p, a, b)
		}
	}
}

func normalizeDefs(ds []dataflow.DefSite) []string {
	out := make([]string, 0, len(ds))
	for _, d := range ds {
		if d.IsParam() {
			out = append(out, "param:"+d.Reg.String())
		} else {
			out = append(out, d.Instr.String())
		}
	}
	sort.Strings(out)
	return out
}

func normalizeUses(us []UseSite) []string {
	out := make([]string, 0, len(us))
	for _, u := range us {
		out = append(out, u.Instr.String()+"#"+string(rune('0'+u.OpIdx)))
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// buildChained is the stale-chain trap of the elimination phase: two chained
// same-register extensions over a dirty definition,
//
//	r  = p0 + p0      <- dirty (32-bit add leaves undefined upper bits)
//	e1 = ext.32 r     <- removable: its only use (e2) reads the low word
//	e2 = ext.32 r     <- required: the div reads the full register
//	q  = div.64 r, r
//
// After e1 is removed, e2's UD chain must point at the dirty add; if it kept
// pointing at the removed e1 ("source already extended"), e2 would wrongly be
// eliminated and the div would read dirty upper bits.
func buildChained() (*ir.Func, *ir.Instr, *ir.Instr, *ir.Instr, *ir.Instr) {
	b := ir.NewFunc("chained", ir.Param{W: ir.W32})
	r := b.Fn.NewReg()
	dirty := b.OpTo(ir.OpAdd, ir.W32, r, ir.Reg(0), ir.Reg(0))
	e1 := b.Ext(ir.W32, r)
	e2 := b.Ext(ir.W32, r)
	q := b.Div(ir.W64, r, r)
	div := b.Block().Instrs[len(b.Block().Instrs)-1]
	b.Print(ir.W64, q)
	b.Ret(ir.NoReg)
	return b.Fn, dirty, e1, e2, div
}

func TestChainedSameRegExtRemoveFirst(t *testing.T) {
	fn, dirty, e1, e2, div := buildChained()
	info := cfg.Compute(fn)
	c := Build(fn, info)
	c.RemoveSameRegExt(e1)

	// e2's source must now be fed by the dirty add — not by the removed e1.
	defs := c.UD(e2, 0)
	if len(defs) != 1 || defs[0].IsParam() || defs[0].Instr != dirty {
		t.Fatalf("UD(e2) after removing e1: %v (want the dirty add)", defs)
	}
	for _, d := range defs {
		if !d.IsParam() && d.Instr == e1 {
			t.Fatalf("stale UD chain: e2 still fed by the removed e1")
		}
	}
	// The dirty add's DU chain must reach e2 directly.
	found := false
	for _, u := range c.DU(dirty) {
		if u.Instr == e2 {
			found = true
		}
		if u.Instr == e1 {
			t.Fatalf("stale DU chain: removed e1 still listed as a use of the add")
		}
	}
	if !found {
		t.Fatalf("DU(dirty add) not re-attached to e2: %v", c.DU(dirty))
	}
	// The removed extension's own entries must be gone and the whole
	// structure internally consistent and equal to a fresh rebuild.
	if got := c.DU(e1); len(got) != 0 {
		t.Fatalf("removed e1 still has DU entries: %v", got)
	}
	if got := c.UD(e1, 0); len(got) != 0 {
		t.Fatalf("removed e1 still has UD entries: %v", got)
	}
	if err := c.Check(); err != nil {
		t.Fatalf("patched chains inconsistent: %v", err)
	}
	compareChains(t, fn, c, Build(fn, cfg.Compute(fn)))
	_ = div
}

func TestChainedSameRegExtRemoveSecond(t *testing.T) {
	fn, _, e1, e2, div := buildChained()
	info := cfg.Compute(fn)
	c := Build(fn, info)
	c.RemoveSameRegExt(e2)

	// The div's operands must now be fed by e1.
	for op := 0; op < 2; op++ {
		defs := c.UD(div, op)
		if len(defs) != 1 || defs[0].IsParam() || defs[0].Instr != e1 {
			t.Fatalf("UD(div, %d) after removing e2: %v (want e1)", op, defs)
		}
	}
	if err := c.Check(); err != nil {
		t.Fatalf("patched chains inconsistent: %v", err)
	}
	compareChains(t, fn, c, Build(fn, cfg.Compute(fn)))
}

// TestRemovalSequenceMatchesRebuild removes every same-register extension of
// a richer function one at a time, comparing the patched chains against a
// fresh rebuild after each removal — the invariant the elimination phase
// relies on.
func TestRemovalSequenceMatchesRebuild(t *testing.T) {
	b := ir.NewFunc("seq", ir.Param{W: ir.W32}, ir.Param{Ref: true})
	i := b.Fn.NewReg()
	s := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	b.ConstTo(ir.W32, s, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	one := b.Const(ir.W32, 1)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	e1 := b.Ext(ir.W32, i)
	v := b.ArrLoad(ir.W32, false, ir.Reg(1), i)
	e2 := b.Ext(ir.W32, v)
	b.OpTo(ir.OpAdd, ir.W32, s, s, v)
	e3 := b.Ext(ir.W32, s)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, s)
	b.Ret(ir.NoReg)

	fn := b.Fn
	info := cfg.Compute(fn)
	c := Build(fn, info)
	for _, ext := range []*ir.Instr{e2, e1, e3} {
		c.RemoveSameRegExt(ext)
		fresh := Build(fn, cfg.Compute(fn))
		compareChains(t, fn, c, fresh)
	}
}
