package chains

import (
	"sort"
	"testing"

	"signext/internal/cfg"
	"signext/internal/dataflow"
	"signext/internal/ir"
)

// buildLoop constructs the canonical shape chains must get right:
//
//	b0: i = 0;           jmp b1
//	b1: i = i + p0
//	    i = ext.32 i     <- candidate
//	    print? no: br i < p0 -> b1, b2
//	b2: i2d i; ret
func buildLoop() (*ir.Func, *ir.Instr, *ir.Instr, *ir.Instr) {
	b := ir.NewFunc("c", ir.Param{W: ir.W32})
	i := b.Fn.NewReg()
	init := b.ConstTo(ir.W32, i, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	add := b.OpTo(ir.OpAdd, ir.W32, i, i, ir.Reg(0))
	ext := b.Ext(ir.W32, i)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), loop, exit)
	b.SetBlock(exit)
	d := b.I2D(i)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	return b.Fn, init, add, ext
}

func TestUDChains(t *testing.T) {
	fn, init, add, ext := buildLoop()
	info := cfg.Compute(fn)
	c := Build(fn, info)

	// The add's i operand sees the init and (around the back edge) the ext.
	defs := c.UD(add, 0)
	if len(defs) != 2 {
		t.Fatalf("defs of i at the add: %v", defs)
	}
	want := map[*ir.Instr]bool{init: true, ext: true}
	for _, d := range defs {
		if d.IsParam() || !want[d.Instr] {
			t.Fatalf("unexpected def %v", d)
		}
	}
	// The ext's source is defined only by the add.
	defs = c.UD(ext, 0)
	if len(defs) != 1 || defs[0].Instr != add {
		t.Fatalf("defs at ext: %v", defs)
	}
	// The add's second operand is the parameter.
	defs = c.UD(add, 1)
	if len(defs) != 1 || !defs[0].IsParam() {
		t.Fatalf("param def: %v", defs)
	}
}

func TestDUChains(t *testing.T) {
	fn, init, add, ext := buildLoop()
	info := cfg.Compute(fn)
	c := Build(fn, info)
	_ = fn

	// init reaches only the add (the ext kills it within the loop).
	uses := c.DU(init)
	if len(uses) != 1 || uses[0].Instr != add || uses[0].OpIdx != 0 {
		t.Fatalf("DU(init): %v", uses)
	}
	// The ext's value is used by the branch, the i2d and the add (back
	// edge).
	uses = c.DU(ext)
	ops := map[ir.Op]bool{}
	for _, u := range uses {
		ops[u.Instr.Op] = true
	}
	if !ops[ir.OpBr] || !ops[ir.OpI2D] || !ops[ir.OpAdd] {
		t.Fatalf("DU(ext) incomplete: %v", uses)
	}
}

func TestRemoveSameRegExtPatches(t *testing.T) {
	fn, _, add, ext := buildLoop()
	info := cfg.Compute(fn)
	c := Build(fn, info)
	c.RemoveSameRegExt(ext)

	if ext.Blk != nil {
		t.Fatal("ext not removed from its block")
	}
	// After patching, the chains must equal a fresh rebuild.
	fresh := Build(fn, cfg.Compute(fn))
	compareChains(t, fn, c, fresh)

	// The add's downstream uses now come straight from the add.
	uses := c.DU(add)
	ops := map[ir.Op]int{}
	for _, u := range uses {
		ops[u.Instr.Op]++
	}
	if ops[ir.OpBr] != 1 || ops[ir.OpI2D] != 1 || ops[ir.OpAdd] != 1 {
		t.Fatalf("DU(add) after patch: %v", uses)
	}
}

// compareChains asserts c matches fresh on every use site and def site.
func compareChains(t *testing.T, fn *ir.Func, c, fresh *Chains) {
	t.Helper()
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		for op := 0; op < ins.NumUses(); op++ {
			a := normalizeDefs(c.UD(ins, op))
			b := normalizeDefs(fresh.UD(ins, op))
			if !sameStrings(a, b) {
				t.Errorf("UD(%v, %d): patched %v, fresh %v", ins, op, a, b)
			}
		}
		if ins.HasDst() {
			a := normalizeUses(c.DU(ins))
			b := normalizeUses(fresh.DU(ins))
			if !sameStrings(a, b) {
				t.Errorf("DU(%v): patched %v, fresh %v", ins, a, b)
			}
		}
	})
	for p := 0; p < fn.NParams(); p++ {
		a := normalizeUses(c.DUOfParam(p))
		b := normalizeUses(fresh.DUOfParam(p))
		if !sameStrings(a, b) {
			t.Errorf("DUOfParam(%d): patched %v, fresh %v", p, a, b)
		}
	}
}

func normalizeDefs(ds []dataflow.DefSite) []string {
	out := make([]string, 0, len(ds))
	for _, d := range ds {
		if d.IsParam() {
			out = append(out, "param:"+d.Reg.String())
		} else {
			out = append(out, d.Instr.String())
		}
	}
	sort.Strings(out)
	return out
}

func normalizeUses(us []UseSite) []string {
	out := make([]string, 0, len(us))
	for _, u := range us {
		out = append(out, u.Instr.String()+"#"+string(rune('0'+u.OpIdx)))
	}
	sort.Strings(out)
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// TestRemovalSequenceMatchesRebuild removes every same-register extension of
// a richer function one at a time, comparing the patched chains against a
// fresh rebuild after each removal — the invariant the elimination phase
// relies on.
func TestRemovalSequenceMatchesRebuild(t *testing.T) {
	b := ir.NewFunc("seq", ir.Param{W: ir.W32}, ir.Param{Ref: true})
	i := b.Fn.NewReg()
	s := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	b.ConstTo(ir.W32, s, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	one := b.Const(ir.W32, 1)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	e1 := b.Ext(ir.W32, i)
	v := b.ArrLoad(ir.W32, false, ir.Reg(1), i)
	e2 := b.Ext(ir.W32, v)
	b.OpTo(ir.OpAdd, ir.W32, s, s, v)
	e3 := b.Ext(ir.W32, s)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, s)
	b.Ret(ir.NoReg)

	fn := b.Fn
	info := cfg.Compute(fn)
	c := Build(fn, info)
	for _, ext := range []*ir.Instr{e2, e1, e3} {
		c.RemoveSameRegExt(ext)
		fresh := Build(fn, cfg.Compute(fn))
		compareChains(t, fn, c, fresh)
	}
}
