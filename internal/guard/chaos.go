package guard

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"signext/internal/chains"
	"signext/internal/ir"
)

// Injector deterministically injects the fault classes a broken optimizer
// could produce, so tests can prove each one is caught by the verifier or
// the oracle rather than silently miscompiling. Every choice is driven by
// the seed: the same seed injects the same fault at the same site.
type Injector struct {
	rng *rand.Rand
}

// NewInjector returns a fault injector seeded for reproducibility.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// pick returns a random element of xs, or the zero value for an empty list.
func pick[T any](rng *rand.Rand, xs []T) (T, bool) {
	var zero T
	if len(xs) == 0 {
		return zero, false
	}
	return xs[rng.Intn(len(xs))], true
}

// DropExt deletes one sign extension from the function without any chain
// or analysis justification — the "optimizer removed an extension it must
// not" fault. The damage is semantic, not structural, so it is the
// differential oracle's job to catch it. Reports whether a fault was
// injected.
func (in *Injector) DropExt(fn *ir.Func) bool {
	var exts []*ir.Instr
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if ins.IsExt() && ins.Dst == ins.Srcs[0] {
			exts = append(exts, ins)
		}
	})
	ext, ok := pick(in.rng, exts)
	if !ok {
		return false
	}
	ext.Blk.Remove(ext)
	return true
}

// CorruptChain drops one UD edge from the chain structure without patching
// the DU side — the "incremental chain maintenance went wrong" fault. The
// chains no longer describe the function, which chains.Check (run by
// VerifyFunc at phase boundaries) detects. Reports whether a fault was
// injected.
func (in *Injector) CorruptChain(ch *chains.Chains) bool {
	type site struct {
		ins *ir.Instr
		op  int
	}
	var sites []site
	ch.Fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		for op := 0; op < ins.NumUses(); op++ {
			if len(ch.UD(ins, op)) > 0 {
				sites = append(sites, site{ins, op})
			}
		}
	})
	s, ok := pick(in.rng, sites)
	if !ok {
		return false
	}
	return ch.DropUDEdge(s.ins, s.op)
}

// HoistExt moves one same-register extension above the definition feeding
// it, into the entry block — the "elimination processed sites in a wrong
// order" fault: the extension now reads its register before any definition
// reaches it. The deep verifier's def-before-use check detects it. Reports
// whether a fault was injected.
func (in *Injector) HoistExt(fn *ir.Func) bool {
	var exts []*ir.Instr
	fn.ForEachInstr(func(b *ir.Block, ins *ir.Instr) {
		// Only extensions of non-parameter registers: a parameter is defined
		// at entry, so hoisting its extension would stay legal.
		if ins.IsExt() && ins.Dst == ins.Srcs[0] && int(ins.Dst) >= fn.NParams() {
			exts = append(exts, ins)
		}
	})
	ext, ok := pick(in.rng, exts)
	if !ok {
		return false
	}
	ext.Blk.Remove(ext)
	fn.Entry().InsertAt(0, ext)
	return true
}

// BadWidth corrupts one extension's width field to 64 — the "phase wrote a
// nonsensical instruction" fault, caught by the structural verifier's
// width check. Reports whether a fault was injected.
func (in *Injector) BadWidth(fn *ir.Func) bool {
	var exts []*ir.Instr
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if ins.Op == ir.OpExt || ins.Op == ir.OpExtDummy {
			exts = append(exts, ins)
		}
	})
	ext, ok := pick(in.rng, exts)
	if !ok {
		return false
	}
	ext.W = ir.W64
	return true
}

// DropEdge removes one predecessor edge without touching the successor
// side — the "CFG surgery left dangling edges" fault, caught by the CFG
// consistency checks. Reports whether a fault was injected.
func (in *Injector) DropEdge(fn *ir.Func) bool {
	var blocks []*ir.Block
	for _, b := range fn.Blocks {
		if len(b.Preds) > 0 {
			blocks = append(blocks, b)
		}
	}
	b, ok := pick(in.rng, blocks)
	if !ok {
		return false
	}
	k := in.rng.Intn(len(b.Preds))
	b.Preds = append(b.Preds[:k], b.Preds[k+1:]...)
	return true
}

// CorruptDiskEntry damages one persisted cache entry under dir — the "disk
// artifact rotted (or a torn write slipped past rename atomicity)" fault.
// Half the time it flips one byte, half the time it truncates the file to a
// random prefix; either way the store's SHA-256 (or decode) check must catch
// it on the next load and quarantine the file. Entries already quarantined
// are skipped, so repeated injection walks through the intact set. Returns
// the damaged path, and false when no intact entry exists.
func (in *Injector) CorruptDiskEntry(dir string) (string, bool) {
	matches, _ := filepath.Glob(filepath.Join(dir, "*", "*.sxe"))
	sort.Strings(matches) // glob order is filesystem-dependent; the seed must rule
	path, ok := pick(in.rng, matches)
	if !ok {
		return "", false
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return "", false
	}
	if in.rng.Intn(2) == 0 {
		data[in.rng.Intn(len(data))] ^= 1 << uint(in.rng.Intn(8))
	} else {
		data = data[:in.rng.Intn(len(data))]
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", false
	}
	return path, true
}

// Delay returns a seeded random duration in [0, max) — the "request got
// slow" fault a deadline-chaos campaign injects into a server's compile
// path to force degradation. Centralizing it here keeps deadline chaos as
// reproducible as every other fault kind: the same seed stalls the same
// requests by the same amounts.
func (in *Injector) Delay(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(in.rng.Int63n(int64(max)))
}
