package guard

import (
	"fmt"

	"signext/internal/extelim"
	"signext/internal/interp"
	"signext/internal/ir"
)

// Oracle is the differential checker: it executes the optimized program
// against the unoptimized Convert64-only reference in the interpreter and
// demands identical observable behaviour (output, and trap identity when
// both runs trap) plus a non-increasing dynamic extension count — the
// optimizer's whole contract in two properties. It backs Options.CheckedRun
// and the sxelim -check flag.
type Oracle struct {
	Machine     ir.Machine
	MaxArrayLen int64
	MaxSteps    int64  // per-run interpreter budget (0 = interp default)
	Entry       string // entry function ("" = "main")
}

// Report is the outcome of one oracle comparison.
type Report struct {
	RefOutput string
	OptOutput string
	RefErr    error
	OptErr    error
	RefExts   int64 // dynamic 32-bit extensions in the reference run
	OptExts   int64 // dynamic 32-bit extensions in the optimized run
}

// Check compiles the reference (clone of src, Convert64 only — correct by
// construction) and runs both programs. A non-nil error describes the first
// divergence; the Report always carries both runs' observations.
//
// src must be the 32-bit-form frontend output; optimized the compiled
// 64-bit-form program. Dummy assertions are enabled on the optimized run so
// a violated just_extended() claim also surfaces here.
func (o Oracle) Check(src, optimized *ir.Program) (*Report, error) {
	ref := src.Clone()
	for _, fn := range ref.Funcs {
		extelim.Convert64(fn, o.Machine)
	}
	return o.CheckAgainst(ref, optimized)
}

// CheckAgainst runs optimized against an explicitly supplied 64-bit-form
// reference. The pipeline uses it with the Baseline-variant compile of the
// same source (sign extension phase disabled, everything else identical), so
// the dynamic extension counts are an apples-to-apples comparison even when
// inlining and general optimizations reshape the code.
func (o Oracle) CheckAgainst(ref, optimized *ir.Program) (*Report, error) {
	entry := o.Entry
	if entry == "" {
		entry = "main"
	}
	rep := &Report{}
	refRes, refErr := interp.Run(ref, entry, interp.Options{
		Mode: interp.Mode64, Machine: o.Machine,
		MaxSteps: o.MaxSteps, MaxArrayLen: o.MaxArrayLen,
	})
	rep.RefOutput, rep.RefErr, rep.RefExts = refRes.Output, refErr, refRes.Ext32()

	optRes, optErr := interp.Run(optimized, entry, interp.Options{
		Mode: interp.Mode64, Machine: o.Machine,
		MaxSteps: o.MaxSteps, MaxArrayLen: o.MaxArrayLen,
		CheckDummies: true,
	})
	rep.OptOutput, rep.OptErr, rep.OptExts = optRes.Output, optErr, optRes.Ext32()

	if (refErr != nil) != (optErr != nil) {
		return rep, fmt.Errorf("guard: oracle trap mismatch: reference %v, optimized %v", refErr, optErr)
	}
	if refErr != nil && optErr != nil && refErr.Error() != optErr.Error() {
		return rep, fmt.Errorf("guard: oracle trap identity mismatch: reference %v, optimized %v", refErr, optErr)
	}
	if rep.RefOutput != rep.OptOutput {
		return rep, fmt.Errorf("guard: oracle output mismatch:\nreference %q\noptimized %q", rep.RefOutput, rep.OptOutput)
	}
	if rep.OptExts > rep.RefExts {
		return rep, fmt.Errorf("guard: oracle regression: optimized executes %d dynamic extensions, reference %d",
			rep.OptExts, rep.RefExts)
	}
	return rep, nil
}
