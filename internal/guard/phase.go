package guard

import (
	"fmt"
	"runtime/debug"

	"signext/internal/ir"
)

// PhaseError is the structured report produced when a compiler phase panics
// or fails verification for one function. The driver records it, restores
// the pre-phase IR snapshot and compiles on — the phase is disabled for
// that function only.
type PhaseError struct {
	Phase    string // pipeline phase ("inline", "convert", "opt", "signext", ...)
	Func     string // function being compiled ("" for program-wide phases)
	Variant  string // algorithm variant in effect
	Snapshot string // IR text at phase entry (the state the driver restores)
	Panic    any    // recovered panic value, nil for verifier failures
	Stack    []byte // stack at the panic site, nil for verifier failures
	Err      error  // verifier (or other detected) error, nil for panics
}

func (e *PhaseError) Error() string {
	where := e.Phase
	if e.Func != "" {
		where += "/" + e.Func
	}
	if e.Variant != "" {
		where += " (" + e.Variant + ")"
	}
	if e.Panic != nil {
		return fmt.Sprintf("guard: phase %s panicked: %v", where, e.Panic)
	}
	return fmt.Sprintf("guard: phase %s failed: %v", where, e.Err)
}

// Unwrap exposes the verifier error for errors.Is/As.
func (e *PhaseError) Unwrap() error { return e.Err }

// RunPhase executes body with panic capture. A panic or a returned error is
// converted into a *PhaseError carrying the phase identity and the IR
// snapshot the caller should restore; a clean run returns nil. snapshot may
// be empty when the caller keeps its own clone.
func RunPhase(phase, fnName, variant, snapshot string, body func() error) (perr *PhaseError) {
	defer func() {
		if r := recover(); r != nil {
			perr = &PhaseError{
				Phase: phase, Func: fnName, Variant: variant,
				Snapshot: snapshot, Panic: r, Stack: debug.Stack(),
			}
		}
	}()
	if err := body(); err != nil {
		return &PhaseError{
			Phase: phase, Func: fnName, Variant: variant,
			Snapshot: snapshot, Err: err,
		}
	}
	return nil
}

// Snapshot renders a function to IR text for PhaseError reports. It is
// panic-safe: a function broken badly enough that printing it panics
// reports a placeholder instead of masking the original failure.
func Snapshot(fn *ir.Func) (s string) {
	defer func() {
		if recover() != nil {
			s = "<unprintable IR>"
		}
	}()
	return fn.Format()
}
