// Package guard is the pipeline's production guardrail subsystem: deep IR
// verification at phase boundaries, panic-safe phase execution with
// structured PhaseError reports, a differential oracle that runs optimized
// code against the unoptimized reference, and a deterministic fault
// injector that proves each guardrail actually fires.
//
// The design mirrors how JIT tiers degrade in production: a broken or
// crashing optimization must never take down compilation. It is detected,
// reported, and disabled for the offending function only; the function
// falls back to the correct Convert64-only code and compilation succeeds.
package guard

import (
	"fmt"

	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/dataflow"
	"signext/internal/ir"
)

// VerifyFunc performs the deep per-phase verification: the structural
// checks of ir.Verify, CFG edge consistency, def-before-use via reaching
// definitions, width/type agreement on every extension, and UD/DU chain
// cross-consistency on freshly built chains. It is the paper-pipeline
// analogue of an -d:checkir debug build, cheap enough to leave on under
// jit.Options.Checked.
func VerifyFunc(fn *ir.Func, machine ir.Machine) error {
	if err := fn.Verify(); err != nil {
		return err
	}
	if err := verifyCFG(fn); err != nil {
		return err
	}
	if err := verifyExtWidths(fn); err != nil {
		return err
	}
	info := cfg.Compute(fn)
	if err := verifyDefBeforeUse(fn, info); err != nil {
		return err
	}
	ch := chains.Build(fn, info)
	if err := ch.Check(); err != nil {
		return fmt.Errorf("%s: %w", fn.Name, err)
	}
	return nil
}

// verifyCFG checks edge consistency beyond ir.Verify's symmetric-presence
// test: every successor/predecessor belongs to this function, edge
// multiplicities agree in both directions, and branch/jump targets are the
// recorded successors.
func verifyCFG(fn *ir.Func) error {
	member := map[*ir.Block]bool{}
	for _, b := range fn.Blocks {
		member[b] = true
	}
	count := func(bs []*ir.Block, x *ir.Block) int {
		n := 0
		for _, b := range bs {
			if b == x {
				n++
			}
		}
		return n
	}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs {
			if !member[s] {
				return fmt.Errorf("%s/%s: successor %s not in function", fn.Name, b, s)
			}
			if count(b.Succs, s) != count(s.Preds, b) {
				return fmt.Errorf("%s: edge %s->%s multiplicity mismatch (%d succ, %d pred)",
					fn.Name, b, s, count(b.Succs, s), count(s.Preds, b))
			}
		}
		for _, p := range b.Preds {
			if !member[p] {
				return fmt.Errorf("%s/%s: predecessor %s not in function", fn.Name, b, p)
			}
			if count(p.Succs, b) != count(b.Preds, p) {
				return fmt.Errorf("%s: edge %s->%s multiplicity mismatch (%d succ, %d pred)",
					fn.Name, p, b, count(p.Succs, b), count(b.Preds, p))
			}
		}
	}
	return nil
}

// verifyExtWidths checks width and type agreement on every extension: the
// canonical operand shape, a register kind that is an integer on both
// sides, and (for the compiler-generated same-register form) agreement
// between the ext width and the kind of value the register can carry — a
// 32-bit register extended from 64 bits, or an ext.dummy of width 64, are
// phase bugs, not representable machine code.
func verifyExtWidths(fn *ir.Func) error {
	kinds := ir.Kinds(fn)
	var err error
	fn.ForEachInstr(func(b *ir.Block, ins *ir.Instr) {
		if err != nil {
			return
		}
		switch ins.Op {
		case ir.OpExt, ir.OpZext, ir.OpExtDummy:
		default:
			return
		}
		// ir.Verify already bounds W to {8,16,32}; check shape and kinds.
		if ins.NSrcs != 1 || !ins.HasDst() {
			err = fmt.Errorf("%s/%s: malformed extension %s", fn.Name, b, ins)
			return
		}
		for _, r := range []ir.Reg{ins.Dst, ins.Srcs[0]} {
			if k := kinds[r]; k == ir.KFloat || k == ir.KRef {
				err = fmt.Errorf("%s/%s: %s extends non-integer register %s", fn.Name, b, ins, r)
				return
			}
		}
		if kinds[ins.Dst] == ir.KInt32 && ins.W > ir.W32 {
			err = fmt.Errorf("%s/%s: %s wider than its 32-bit destination", fn.Name, b, ins)
		}
	})
	return err
}

// verifyDefBeforeUse checks, via the reaching-definitions solution, that
// every integer/float use in a reachable block is fed by at least one
// definition (an instruction or an incoming parameter). A use with no
// reaching definition means a phase moved or deleted a definition it should
// not have — the classic symptom of a bad elimination order.
func verifyDefBeforeUse(fn *ir.Func, info *cfg.Info) error {
	r := dataflow.ComputeReaching(fn, info)
	for _, b := range fn.Blocks {
		in, ok := r.In[b]
		if !ok {
			continue // unreachable: the frontends may leave dead blocks
		}
		cur := in.Clone()
		for _, ins := range b.Instrs {
			var missing ir.Reg = ir.NoReg
			ins.ForEachUse(func(k int, reg ir.Reg) {
				if missing != ir.NoReg {
					return
				}
				if ins.Op == ir.OpExtDummy {
					return // markers assert, they do not read
				}
				any := false
				for _, dn := range r.ByReg[reg] {
					if cur.Has(dn) {
						any = true
						break
					}
				}
				if !any {
					missing = reg
				}
			})
			if missing != ir.NoReg {
				return fmt.Errorf("%s/%s: %s reads %s with no reaching definition",
					fn.Name, b, ins, missing)
			}
			if ins.HasDst() {
				for _, other := range r.ByReg[ins.Dst] {
					cur.Clear(other)
				}
				cur.Set(r.DefNum[ins])
			}
		}
	}
	return nil
}

// VerifyProgram runs VerifyFunc over every function.
func VerifyProgram(p *ir.Program, machine ir.Machine) error {
	for _, fn := range p.Funcs {
		if err := VerifyFunc(fn, machine); err != nil {
			return err
		}
	}
	return nil
}
