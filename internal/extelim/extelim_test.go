package extelim

import (
	"testing"

	"signext/internal/cfg"
	"signext/internal/ir"
)

// TestConvert64GeneratesAfterDirtyDefs checks the generation rule on each
// definition class.
func TestConvert64GeneratesAfterDirtyDefs(t *testing.T) {
	b := ir.NewFunc("g", ir.Param{W: ir.W32}, ir.Param{Ref: true})
	x := ir.Reg(0)
	add := b.Add(ir.W32, x, x)                               // dirty: ext expected
	bit := b.And(ir.W32, add, x)                             // through: ext expected (Figure 3 (7))
	dv := b.Div(ir.W32, add, bit)                            // extended by the divide routine: no ext
	ln := b.ArrLen(ir.Reg(1))                                // extended: no ext
	l := b.Add(ir.W64, b.Mov(ir.W64, dv), b.Mov(ir.W64, ln)) // 64-bit: no ext
	b.Print(ir.W64, l)
	b.Ret(ir.NoReg)

	n := Convert64(b.Fn, ir.IA64)
	if n != 2 {
		t.Fatalf("generated %d extensions, want 2 (after add, after and):\n%s", n, b.Fn.Format())
	}
	entry := b.Fn.Entry()
	for k, ins := range entry.Instrs {
		if ins.IsExt() {
			prev := entry.Instrs[k-1]
			if prev.Op != ir.OpAdd && prev.Op != ir.OpAnd {
				t.Errorf("extension after %s, want only after add/and", prev)
			}
			if ins.Dst != ins.Srcs[0] || ins.Dst != prev.Dst {
				t.Errorf("generated extension not in canonical form: %s", ins)
			}
		}
	}
}

// TestInsertOnlyInLoopMethods: the paper applies insertion only to methods
// containing a loop.
func TestInsertOnlyInLoopMethods(t *testing.T) {
	build := func(withLoop bool) *ir.Func {
		b := ir.NewFunc("m", ir.Param{W: ir.W32})
		x := b.Add(ir.W32, ir.Reg(0), ir.Reg(0))
		if withLoop {
			loop, exit := b.NewBlock(), b.NewBlock()
			b.Jmp(loop)
			b.SetBlock(loop)
			b.OpTo(ir.OpAdd, ir.W32, x, x, ir.Reg(0))
			b.Br(ir.W32, ir.CondLT, x, ir.Reg(0), loop, exit)
			b.SetBlock(exit)
		}
		d := b.I2D(x)
		b.FPrint(d)
		b.Ret(ir.NoReg)
		return b.Fn
	}
	noLoop := build(false)
	Convert64(noLoop, ir.IA64)
	st := Eliminate(noLoop, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
	if st.Inserted != 0 {
		t.Fatalf("insertion ran on a loop-free method (%d inserted)", st.Inserted)
	}
	withLoop := build(true)
	Convert64(withLoop, ir.IA64)
	st = Eliminate(withLoop, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
	if st.Inserted == 0 {
		t.Fatal("insertion skipped a loop method")
	}
}

// TestDummySkipsOverwrittenIndex: "unless an array index is overwritten
// immediately, as in the case of i = a[i]".
func TestDummySkipsOverwrittenIndex(t *testing.T) {
	b := ir.NewFunc("d", ir.Param{Ref: true}, ir.Param{W: ir.W32})
	i := ir.Reg(1)
	b.ArrLoadTo(ir.W32, false, i, ir.Reg(0), i) // i = a[i]
	v := b.ArrLoad(ir.W32, false, ir.Reg(0), i) // v = a[i]
	b.Print(ir.W32, v)
	b.Ret(ir.NoReg)
	kinds := ir.Kinds(b.Fn)
	n := insertDummies(b.Fn, kinds)
	if n != 1 {
		t.Fatalf("inserted %d dummies, want 1 (skip the overwritten index):\n%s",
			n, b.Fn.Format())
	}
	// The surviving dummy must follow the second access.
	entry := b.Fn.Entry()
	for k, ins := range entry.Instrs {
		if ins.IsDummy() && entry.Instrs[k-1].Op == ir.OpArrLoad &&
			entry.Instrs[k-1].Srcs[1] == i && entry.Instrs[k-1].Dst == i {
			t.Fatalf("dummy after the overwriting access:\n%s", b.Fn.Format())
		}
	}
}

// TestCrossRegisterDemotion: a fused copy+extend whose value is already
// extended becomes a plain mov.
func TestCrossRegisterDemotion(t *testing.T) {
	b := ir.NewFunc("x", ir.Param{W: ir.W32})
	src := ir.Reg(0) // parameters arrive extended
	dst := b.Fn.NewReg()
	ext := b.ExtTo(ir.W32, dst, src)
	d := b.I2D(dst)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	st := Eliminate(b.Fn, Config{Machine: ir.IA64})
	if st.Eliminated != 1 {
		t.Fatalf("cross-register extension not eliminated:\n%s", b.Fn.Format())
	}
	if ext.Op != ir.OpMov {
		t.Fatalf("demotion should leave a mov, got %s", ext)
	}
	if b.Fn.CountOp(ir.OpExt) != 0 {
		t.Fatal("extension still present")
	}
}

// TestUDDirectionElimination: "source already extended" removes an extension
// even when its uses demand full registers.
func TestUDDirectionElimination(t *testing.T) {
	b := ir.NewFunc("u", ir.Param{W: ir.W32})
	x := ir.Reg(0)
	r := b.Mov(ir.W32, x) // copy of an extended parameter
	ext := b.Ext(ir.W32, r)
	_ = ext
	d := b.I2D(r) // demands a full register
	b.FPrint(d)
	b.Ret(ir.NoReg)
	st := Eliminate(b.Fn, Config{Machine: ir.IA64})
	if st.Eliminated != 1 || b.Fn.CountOp(ir.OpExt) != 0 {
		t.Fatalf("UD-direction elimination failed:\n%s", b.Fn.Format())
	}
}

// TestDUKeptWhenDemanded: a genuinely needed extension survives.
func TestDUKeptWhenDemanded(t *testing.T) {
	b := ir.NewFunc("k", ir.Param{W: ir.W32})
	x := b.Add(ir.W32, ir.Reg(0), ir.Reg(0)) // dirty
	b.Ext(ir.W32, x)
	d := b.I2D(x)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	st := Eliminate(b.Fn, Config{Machine: ir.IA64, Array: true, Order: true, Insert: true})
	if b.Fn.CountOp(ir.OpExt) != 1 {
		t.Fatalf("needed extension removed (eliminated=%d):\n%s", st.Eliminated, b.Fn.Format())
	}
}

// TestChainedSameRegExtsKeepSecond: two chained same-register extensions
// over a dirty definition. The first is removable (its only use, the second
// extension, reads just the low word); the second must survive because the
// div demands a clean full register. Deciding the second extension on stale
// chains — still pointing at the first, removed extension, which looks like
// an already-extended source — would wrongly eliminate it too and let the
// div read dirty upper bits.
func TestChainedSameRegExtsKeepSecond(t *testing.T) {
	b := ir.NewFunc("chained", ir.Param{W: ir.W32})
	r := b.Fn.NewReg()
	b.OpTo(ir.OpAdd, ir.W32, r, ir.Reg(0), ir.Reg(0)) // dirty def
	e1 := b.Ext(ir.W32, r)
	e2 := b.Ext(ir.W32, r)
	q := b.Div(ir.W64, r, r)
	b.Print(ir.W64, q)
	b.Ret(ir.NoReg)

	st := Eliminate(b.Fn, Config{Machine: ir.IA64})
	if st.Eliminated != 1 {
		t.Fatalf("eliminated %d extensions, want exactly 1 (the redundant first):\n%s",
			st.Eliminated, b.Fn.Format())
	}
	if e1.Blk != nil {
		t.Fatalf("redundant first extension survived:\n%s", b.Fn.Format())
	}
	if e2.Blk == nil || e2.Op != ir.OpExt {
		t.Fatalf("required second extension wrongly removed — the div now reads dirty upper bits:\n%s",
			b.Fn.Format())
	}
}

// TestNarrowWidthElimination: 8- and 16-bit extensions obey the same
// algorithm ("8-bit and 16-bit sign extensions are also eliminated").
func TestNarrowWidthElimination(t *testing.T) {
	b := ir.NewFunc("n", ir.Param{W: ir.W32})
	x := ir.Reg(0)
	v := b.Mov(ir.W32, x)
	b.Ext(ir.W8, v)  // byte cast
	b.Ext(ir.W8, v)  // redundant: source extended from 8
	b.Ext(ir.W16, v) // redundant: 8-extended implies 16-extended
	d := b.I2D(v)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	Eliminate(b.Fn, Config{Machine: ir.IA64})
	// The first ext.8 must survive (v is a full int), the second and the
	// ext.16 must go.
	n8, n16 := 0, 0
	b.Fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if ins.IsExt() {
			if ins.W == ir.W8 {
				n8++
			} else {
				n16++
			}
		}
	})
	if n8 != 1 || n16 != 0 {
		t.Fatalf("narrow elimination wrong: %d ext.8, %d ext.16:\n%s", n8, n16, b.Fn.Format())
	}
}

// TestPDEInsertSinks: the PDE-style variant moves an extension forward past
// independent instructions.
func TestPDEInsertSinks(t *testing.T) {
	b := ir.NewFunc("p", ir.Param{W: ir.W32})
	x := b.Add(ir.W32, ir.Reg(0), ir.Reg(0))
	ext := b.Ext(ir.W32, x)
	y := b.Add(ir.W32, ir.Reg(0), ir.Reg(0)) // independent of x
	z := b.Add(ir.W32, y, y)                 // independent of x
	d := b.I2D(x)
	b.FPrint(d)
	b.Print(ir.W32, z)
	b.Ret(ir.NoReg)
	info := cfg.Compute(b.Fn)
	insertPDE(b.Fn, info)
	entry := b.Fn.Entry()
	idx := entry.IndexOf(ext)
	// The ext must now sit immediately before the i2d (its latest point).
	if entry.Instrs[idx+1].Op != ir.OpI2D {
		t.Fatalf("PDE did not sink the extension to its use:\n%s", b.Fn.Format())
	}
}

// TestGenUseWidths: generation before uses picks the operand's natural
// width (sxt1 for byte elements feeding int arithmetic).
func TestGenUseWidths(t *testing.T) {
	b := ir.NewFunc("w", ir.Param{Ref: true}, ir.Param{W: ir.W32})
	v := b.ArrLoad(ir.W8, false, ir.Reg(0), ir.Reg(1)) // byte element
	s := b.Add(ir.W32, v, ir.Reg(1))                   // int use: needs ext.8
	d := b.I2D(s)                                      // needs ext.32 of the dirty add
	b.FPrint(d)
	b.Ret(ir.NoReg)
	n := ConvertGenUse(b.Fn, ir.IA64)
	if n != 2 {
		t.Fatalf("gen-use inserted %d, want 2:\n%s", n, b.Fn.Format())
	}
	var w8, w32 int
	b.Fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if ins.IsExt() {
			switch ins.W {
			case ir.W8:
				w8++
			case ir.W32:
				w32++
			}
		}
	})
	if w8 != 1 || w32 != 1 {
		t.Fatalf("gen-use widths: %d ext.8 and %d ext.32:\n%s", w8, w32, b.Fn.Format())
	}
}

// TestGenUseMixedWidths pins the sxfuzz-found miscompile where a byte load
// (valid to 8 bits) and a 32-bit value reach the same full-register use on
// different paths: one ext.32 before the use cannot repair the byte path,
// and one ext.8 would corrupt the 32-bit path. Gen-use must extend the
// narrow producer at its definition and only then extend from 32 at the use.
func TestGenUseMixedWidths(t *testing.T) {
	b := ir.NewFunc("m", ir.Param{Ref: true}, ir.Param{W: ir.W32})
	arr, x := ir.Reg(0), ir.Reg(1)
	v := b.Mov(ir.W32, x)
	thenB, joinB := b.NewBlock(), b.NewBlock()
	b.Br(ir.W32, ir.CondLT, x, v, thenB, joinB)
	b.SetBlock(thenB)
	load := b.Fn.NewInstr(ir.OpArrLoad)
	load.W = ir.W8
	load.Dst = v
	load.Srcs[0], load.Srcs[1] = arr, x
	load.NSrcs = 2
	thenB.InsertAt(0, load)
	b.Jmp(joinB)
	b.SetBlock(joinB)
	b.Print(ir.W32, v)
	b.Ret(ir.NoReg)

	ConvertGenUse(b.Fn, ir.IA64)
	// The byte load must carry its own trailing ext.8.
	next := load.Blk.Instrs[1]
	if !next.IsExt() || next.W != ir.W8 || next.Dst != v {
		t.Fatalf("byte load not extended at its definition:\n%s", b.Fn.Format())
	}
	// The use still needs an ext.32 for the 32-bit path.
	var w32 int
	for _, ins := range joinB.Instrs {
		if ins.IsExt() && ins.W == ir.W32 && ins.Dst == v {
			w32++
		}
	}
	if w32 != 1 {
		t.Fatalf("expected one ext.32 before the full-register use:\n%s", b.Fn.Format())
	}
}

// TestFirstAlgorithmKeepsLatest: with two extensions in sequence and a full
// demand downstream, backward dataflow keeps the later one (the paper's
// third limitation).
func TestFirstAlgorithmKeepsLatest(t *testing.T) {
	b := ir.NewFunc("l", ir.Param{W: ir.W32})
	x := b.Add(ir.W32, ir.Reg(0), ir.Reg(0))
	e1 := b.Ext(ir.W32, x)
	e2 := b.Ext(ir.W32, x)
	d := b.I2D(x)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	removed := FirstAlgorithm(b.Fn)
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if e1.Blk != nil {
		t.Fatal("the earlier extension should be the one removed")
	}
	if e2.Blk == nil {
		t.Fatal("the latest extension must survive")
	}
}
