package extelim

import (
	"testing"

	"signext/internal/ir"
)

// buildFig15 reproduces the paper's Figure 15 drawback shape for the PDE
// approach: an extension whose demands sit on both sides of a branch, where
// forward motion (PDE) cannot sink it past the split, while insertion +
// frequency-ordered elimination places the surviving extension in the cold
// arm.
//
//	x = a + b              (dirty def; conversion appends ext (3))
//	if (p) goto hot
//	cold: d = (double) x   (requires extension — the paper's (5))
//	hot:  store32 x        (does not require)
func buildFig15() (*ir.Func, *ir.Block, *ir.Block) {
	b := ir.NewFunc("fig15", ir.Param{W: ir.W32}, ir.Param{W: ir.W32})
	x := b.Add(ir.W32, ir.Reg(0), ir.Reg(1))
	b.Ext(ir.W32, x) // the conversion-generated (3)
	hot := b.NewBlock()
	cold := b.NewBlock()
	b.Br(ir.W32, ir.CondGT, ir.Reg(0), ir.Reg(1), hot, cold)
	b.SetBlock(hot)
	b.StoreG(ir.W32, 0, x)
	b.Print(ir.W32, ir.Reg(0)) // keep the block busy; param needs no ext
	b.Ret(ir.NoReg)
	b.SetBlock(cold)
	d := b.I2D(x)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	return b.Fn, hot, cold
}

func countExts(blk *ir.Block) int {
	n := 0
	for _, ins := range blk.Instrs {
		if ins.IsExt() {
			n++
		}
	}
	return n
}

// TestFigure15WithoutInsertion establishes the drawback itself: elimination
// alone cannot move the extension — the cold arm's int-to-double demand pins
// the after-definition extension in the shared prefix, where the hot path
// pays for it on every execution. This is what Figure 15 says PDE also fails
// to fix, and what insertion (next test) solves.
func TestFigure15WithoutInsertion(t *testing.T) {
	fn, hot, cold := buildFig15()
	Eliminate(fn, Config{Machine: ir.IA64, Order: true, Array: true})
	if got := countExts(fn.Entry()); got != 1 {
		t.Fatalf("without insertion the prefix extension must survive, got %d:\n%s",
			got, fn.Format())
	}
	if countExts(hot) != 0 || countExts(cold) != 0 {
		t.Fatalf("no extensions belong in the arms without insertion:\n%s", fn.Format())
	}
}

// TestFigure15WithInsertion: with a loop present (making insertion eligible)
// the inserted use-site extension in the cold region survives and the
// loop-resident one disappears — the behaviour the paper credits over PDE.
func TestFigure15WithInsertion(t *testing.T) {
	b := ir.NewFunc("fig15loop", ir.Param{W: ir.W32}, ir.Param{W: ir.W32})
	x := b.Fn.NewReg()
	i := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	b.ConstTo(ir.W32, x, 0)
	loop := b.NewBlock()
	hot := b.NewBlock()
	latch := b.NewBlock()
	cold := b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(ir.OpAdd, ir.W32, x, x, ir.Reg(0))
	b.Ext(ir.W32, x) // conversion's after-def extension, inside the loop
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(1), hot, cold)
	b.SetBlock(hot)
	b.StoreG(ir.W32, 0, x) // low-bits use only
	b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
	b.Ext(ir.W32, i)
	b.Jmp(latch)
	b.SetBlock(latch)
	b.Jmp(loop)
	b.SetBlock(cold)
	d := b.I2D(x) // the only genuine demand, in the cold exit
	b.FPrint(d)
	b.Ret(ir.NoReg)
	fn := b.Fn

	st := Eliminate(fn, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
	if st.Inserted == 0 {
		t.Fatal("insertion should have added the use-site extension")
	}
	if got := countExts(loop); got != 0 {
		t.Fatalf("the in-loop extension must be gone:\n%s", fn.Format())
	}
	if got := countExts(cold); got != 1 {
		t.Fatalf("exactly the inserted extension survives in the cold exit, got %d:\n%s",
			got, fn.Format())
	}
}
