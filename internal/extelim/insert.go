package extelim

import (
	"signext/internal/cfg"
	"signext/internal/ir"
)

// insertSimple is the paper's simple insertion algorithm (section 2.1): place
// a sign extension immediately before every instruction that requires one,
// unless the register is obviously sign-extended at that point. Combined with
// elimination and order determination this effectively moves extensions out
// of loops (Figures 7 and 8). The paper applies insertion only to methods
// containing a loop, balancing compilation time against effectiveness; the
// caller enforces that. Returns the number of extensions inserted.
func insertSimple(fn *ir.Func, kinds []ir.Kind, mach ir.Machine) int {
	n := 0
	for _, b := range fn.Blocks {
		for k := 0; k < len(b.Instrs); k++ {
			ins := b.Instrs[k]
			if ins.IsExt() || ins.IsDummy() {
				continue
			}
			done := map[ir.Reg]bool{}
			for op := 0; op < ins.NumUses(); op++ {
				r := ins.UseAt(op)
				if done[r] || kinds[r] != ir.KInt32 {
					continue
				}
				if !ir.RequiresExt(ins, op) {
					continue
				}
				if obviouslyExtended(b, k, r, mach) {
					continue
				}
				done[r] = true
				b.InsertAt(k, newSameRegExt(fn, ir.W32, r))
				k++
				n++
			}
		}
	}
	return n
}

// obviouslyExtended is the quick local check: the nearest preceding
// definition of r inside the same block is itself extension-producing.
func obviouslyExtended(b *ir.Block, idx int, r ir.Reg, mach ir.Machine) bool {
	for k := idx - 1; k >= 0; k-- {
		ins := b.Instrs[k]
		if !ins.HasDst() || ins.Dst != r {
			continue
		}
		d := ir.DefOf(ins, mach)
		return d.Class == ir.DefExtended && d.Bits <= 32
	}
	return false
}

// insertDummies places the paper's just_extended() marker after every array
// access, recording that the index register is guaranteed sign-extended (and,
// per the language specification, that its value was a valid subscript) —
// unless the access overwrites the index immediately, as in "i = a[i]".
// Dummies exist only to let other extensions be eliminated; removeDummies
// strips them once elimination is done. Returns the number inserted.
func insertDummies(fn *ir.Func, kinds []ir.Kind) int {
	n := 0
	for _, b := range fn.Blocks {
		for k := 0; k < len(b.Instrs); k++ {
			ins := b.Instrs[k]
			var idx ir.Reg
			switch ins.Op {
			case ir.OpArrLoad:
				idx = ins.Srcs[1]
				if ins.Dst == idx {
					continue // "i = a[i]": the index is gone
				}
			case ir.OpArrStore:
				idx = ins.Srcs[1]
			default:
				continue
			}
			if kinds[idx] != ir.KInt32 {
				continue
			}
			b.InsertAt(k+1, newDummy(fn, idx))
			k++
			n++
		}
	}
	return n
}

// removeDummies strips every remaining dummy marker; called after the
// elimination phase ("this phase ends with one trivial operation; that is,
// to eliminate all the dummy sign extensions").
func removeDummies(fn *ir.Func) {
	for _, b := range fn.Blocks {
		kept := b.Instrs[:0]
		for _, ins := range b.Instrs {
			if ins.IsDummy() {
				ins.Blk = nil
				continue
			}
			kept = append(kept, ins)
		}
		b.Instrs = kept
	}
}

// insertPDE is the partial-dead-code-elimination-style insertion variant the
// paper evaluates as "all, using PDE": instead of inserting before every
// requiring instruction, each existing extension is moved forward to the
// latest point on every path where it can be needed. The paper found the
// simple algorithm slightly better on every benchmark (Figures 11, 12 and
// the discussion of Figure 15); this implementation exists to reproduce that
// comparison. Returns the number of extension copies created minus removals.
func insertPDE(fn *ir.Func, info *cfg.Info) int {
	delta := 0
	for _, b := range fn.Blocks {
		// Snapshot: sinking mutates instruction order.
		exts := []*ir.Instr{}
		for _, ins := range b.Instrs {
			if ins.IsExt() {
				exts = append(exts, ins)
			}
		}
		for _, e := range exts {
			delta += sinkExt(fn, info, e, 0)
		}
	}
	return delta
}

// sinkExt pushes one same-register extension forward past independent
// instructions; when it reaches a block end it duplicates into every
// single-predecessor successor that may still need the value. depth bounds
// cross-block sinking.
func sinkExt(fn *ir.Func, info *cfg.Info, e *ir.Instr, depth int) int {
	if e.Dst != e.Srcs[0] {
		return 0
	}
	r := e.Dst
	b := e.Blk
	k := b.IndexOf(e)
	for {
		if k+1 >= len(b.Instrs) {
			break
		}
		next := b.Instrs[k+1]
		if usesReg(next, r) || (next.HasDst() && next.Dst == r) {
			return 0 // a demand or a kill: this is the latest point
		}
		if next.IsTerminator() {
			if usesReg(next, r) {
				return 0
			}
			// Sink into successors if each is exclusively ours.
			if depth >= 3 || len(b.Succs) == 0 {
				return 0
			}
			for _, s := range b.Succs {
				if len(s.Preds) != 1 {
					return 0
				}
			}
			delta := 0
			for _, s := range b.Succs {
				c := newSameRegExt(fn, e.W, r)
				s.InsertAt(0, c)
				delta++
				delta += sinkExt(fn, info, c, depth+1)
			}
			b.Remove(e)
			return delta - 1
		}
		// Swap e past next.
		b.Instrs[k], b.Instrs[k+1] = next, e
		k++
	}
	return 0
}

func usesReg(ins *ir.Instr, r ir.Reg) bool {
	found := false
	ins.ForEachUse(func(_ int, x ir.Reg) {
		if x == r {
			found = true
		}
	})
	return found
}
