package extelim

import (
	"math"
	"strings"
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
)

// runBoth executes the program before and after Eliminate under Mode64 and
// requires identical output; returns the optimized dynamic extension count.
func runBoth(t *testing.T, build func() *ir.Program, cfg Config) int64 {
	t.Helper()
	before := build()
	for _, fn := range before.Funcs {
		Convert64(fn, cfg.Machine)
	}
	refRes, err := interp.Run(before, "main", interp.Options{
		Mode: interp.Mode64, Machine: cfg.Machine, CheckDummies: true,
	})
	if err != nil {
		t.Fatalf("pre-opt run: %v", err)
	}
	after := build()
	for _, fn := range after.Funcs {
		Convert64(fn, cfg.Machine)
		Eliminate(fn, cfg)
		if verr := fn.Verify(); verr != nil {
			t.Fatalf("verify: %v", verr)
		}
	}
	optRes, err := interp.Run(after, "main", interp.Options{
		Mode: interp.Mode64, Machine: cfg.Machine, CheckDummies: true,
	})
	if err != nil {
		t.Fatalf("post-opt run: %v", err)
	}
	if refRes.Output != optRes.Output {
		var dump strings.Builder
		for _, fn := range after.Funcs {
			dump.WriteString(fn.Format())
		}
		t.Fatalf("elimination changed behaviour:\nwant %q\ngot  %q\n%s",
			refRes.Output, optRes.Output, dump.String())
	}
	return optRes.Ext32()
}

// TestMinIntBoundarySubscripts drives indices around the int32 boundaries —
// the regime the Theorem proofs reason about.
func TestMinIntBoundarySubscripts(t *testing.T) {
	build := func() *ir.Program {
		prog := ir.NewProgram()
		prog.NGlobals = 1
		b := ir.NewFunc("main")
		n := b.Const(ir.W32, 16)
		a := b.NewArr(ir.W32, false, n)
		// i starts at MaxInt32-3 via a dirty computation, then wraps.
		i := b.Fn.NewReg()
		b.ConstTo(ir.W32, i, math.MaxInt32-3)
		loop, exit := b.NewBlock(), b.NewBlock()
		b.Jmp(loop)
		b.SetBlock(loop)
		b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
		// Mask into range before the access: the subscript itself is safe,
		// but i's raw value crosses the sign boundary.
		m := b.And(ir.W32, i, b.Const(ir.W32, 15))
		v := b.ArrLoad(ir.W32, false, a, m)
		b.ArrStore(ir.W32, false, a, m, b.Add(ir.W32, v, b.Const(ir.W32, 1)))
		end := b.Const(ir.W32, math.MinInt32+5)
		b.Br(ir.W32, ir.CondNE, i, end, loop, exit)
		b.SetBlock(exit)
		s := b.Fn.NewReg()
		b.ConstTo(ir.W32, s, 0)
		k := b.Fn.NewReg()
		b.ConstTo(ir.W32, k, 0)
		l2, x2 := b.NewBlock(), b.NewBlock()
		b.Jmp(l2)
		b.SetBlock(l2)
		e := b.ArrLoad(ir.W32, false, a, k)
		b.OpTo(ir.OpAdd, ir.W32, s, s, e)
		b.OpTo(ir.OpAdd, ir.W32, k, k, b.Const(ir.W32, 1))
		b.Br(ir.W32, ir.CondLT, k, n, l2, x2)
		b.SetBlock(x2)
		b.Print(ir.W32, s)
		b.Ret(ir.NoReg)
		prog.AddFunc(b.Fn)
		return prog
	}
	runBoth(t, build, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
}

// TestUninitializedRegisterTolerated: a (dead-path) use with no reaching
// definitions must not crash the analyses or license bad removals.
func TestUninitializedRegisterTolerated(t *testing.T) {
	build := func() *ir.Program {
		prog := ir.NewProgram()
		b := ir.NewFunc("main")
		ghost := b.Fn.NewReg() // never defined
		live, dead := b.NewBlock(), b.NewBlock()
		one := b.Const(ir.W32, 1)
		b.Br(ir.W32, ir.CondEQ, one, one, live, dead)
		b.SetBlock(dead)
		b.Ext(ir.W32, ghost)
		d := b.I2D(ghost)
		b.FPrint(d)
		b.Ret(ir.NoReg)
		b.SetBlock(live)
		b.Print(ir.W32, one)
		b.Ret(ir.NoReg)
		prog.AddFunc(b.Fn)
		return prog
	}
	runBoth(t, build, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
}

// TestAliasedArrays: two references to the same array must not confuse the
// dummy facts.
func TestAliasedArrays(t *testing.T) {
	build := func() *ir.Program {
		prog := ir.NewProgram()
		b := ir.NewFunc("main")
		n := b.Const(ir.W32, 8)
		a1 := b.NewArr(ir.W32, false, n)
		a2 := b.Mov(ir.W64, a1) // alias
		i := b.Fn.NewReg()
		b.ConstTo(ir.W32, i, 0)
		loop, exit := b.NewBlock(), b.NewBlock()
		b.Jmp(loop)
		b.SetBlock(loop)
		b.ArrStore(ir.W32, false, a1, i, i)
		v := b.ArrLoad(ir.W32, false, a2, i)
		b.Print(ir.W32, v)
		b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
		b.Br(ir.W32, ir.CondLT, i, n, loop, exit)
		b.SetBlock(exit)
		b.Ret(ir.NoReg)
		prog.AddFunc(b.Fn)
		return prog
	}
	runBoth(t, build, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
}

// TestDirtyFlowThroughEveryThroughOp chains the value through each Case 2
// operation before a full-register use.
func TestDirtyFlowThroughEveryThroughOp(t *testing.T) {
	ops := []ir.Op{ir.OpMov, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpAdd, ir.OpSub, ir.OpMul}
	for _, op := range ops {
		op := op
		build := func() *ir.Program {
			prog := ir.NewProgram()
			prog.NGlobals = 1
			b := ir.NewFunc("main")
			b.StoreG(ir.W32, 0, b.Const(ir.W32, -123456))
			x := b.LoadG(ir.W32, 0) // zero-extended: dirty as an int
			var y ir.Reg
			switch op {
			case ir.OpMov:
				y = b.Mov(ir.W32, x)
			case ir.OpNot:
				y = b.Not(ir.W32, x)
			default:
				ins := b.Fn.NewInstr(op)
				ins.W = ir.W32
				ins.Dst = b.Fn.NewReg()
				ins.Srcs[0], ins.Srcs[1] = x, x
				ins.NSrcs = 2
				ins.Blk = b.Block()
				b.Block().Instrs = append(b.Block().Instrs, ins)
				y = ins.Dst
			}
			d := b.I2D(y) // demands the full register
			b.FPrint(d)
			b.Ret(ir.NoReg)
			prog.AddFunc(b.Fn)
			return prog
		}
		if n := runBoth(t, build, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true}); n == 0 {
			// At least one extension must execute somewhere on the path for
			// the dirty load feeding i2d.
			t.Errorf("%v: every extension removed on a genuinely dirty path", op)
		}
	}
}

// TestSelfLoopExtension: an extension that reaches its own source around a
// back edge (no redefinition in the loop) is handled by the cycle-optimistic
// flags without infinite recursion.
func TestSelfLoopExtension(t *testing.T) {
	build := func() *ir.Program {
		prog := ir.NewProgram()
		b := ir.NewFunc("main")
		x := b.Fn.NewReg()
		b.ConstTo(ir.W32, x, 41)
		i := b.Fn.NewReg()
		b.ConstTo(ir.W32, i, 0)
		loop, exit := b.NewBlock(), b.NewBlock()
		b.Jmp(loop)
		b.SetBlock(loop)
		b.Ext(ir.W32, x) // x never redefined in the loop: self-reaching ext
		b.OpTo(ir.OpAdd, ir.W32, i, i, b.Const(ir.W32, 1))
		b.Br(ir.W32, ir.CondLT, i, b.Const(ir.W32, 5), loop, exit)
		b.SetBlock(exit)
		d := b.I2D(x)
		b.FPrint(d)
		b.Ret(ir.NoReg)
		prog.AddFunc(b.Fn)
		return prog
	}
	runBoth(t, build, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
}
