package extelim

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
)

// buildWide returns a function with a long chain of through-ops feeding a
// full-register consumer, so elimination has real traversal work to do.
func buildWide() *ir.Program {
	prog := ir.NewProgram()
	prog.NGlobals = 1
	b := ir.NewFunc("main")
	b.StoreG(ir.W32, 0, b.Const(ir.W32, -42))
	x := b.LoadG(ir.W32, 0)
	for k := 0; k < 40; k++ {
		x = b.Add(ir.W32, x, b.Const(ir.W32, 1))
	}
	d := b.I2D(x)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	prog.AddFunc(b.Fn)
	return prog
}

// TestWorkBudget: a tiny budget must stop analysis gracefully (flagging
// BudgetExhausted, keeping unanalyzed extensions) and never change
// behaviour; an ample budget must not trip.
func TestWorkBudget(t *testing.T) {
	ref := buildWide()
	for _, fn := range ref.Funcs {
		Convert64(fn, ir.IA64)
	}
	want, err := interp.Run(ref, "main", interp.Options{Mode: interp.Mode64, Machine: ir.IA64})
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []int{1, 5, 50, 1 << 20} {
		p := buildWide()
		fn := p.Funcs[0]
		Convert64(fn, ir.IA64)
		st := Eliminate(fn, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true, MaxWork: budget})
		if budget <= 5 && !st.BudgetExhausted {
			t.Errorf("budget %d: exhaustion not reported", budget)
		}
		if budget >= 1<<20 && st.BudgetExhausted {
			t.Errorf("budget %d: spuriously exhausted", budget)
		}
		if err := fn.Verify(); err != nil {
			t.Errorf("budget %d: %v", budget, err)
		}
		got, err := interp.Run(p, "main", interp.Options{Mode: interp.Mode64, Machine: ir.IA64})
		if err != nil {
			t.Errorf("budget %d: %v", budget, err)
			continue
		}
		if got.Output != want.Output {
			t.Errorf("budget %d changed behaviour: want %q got %q", budget, want.Output, got.Output)
		}
	}
}

// TestWorkBudgetUnlimitedByDefault: MaxWork zero must not restrict anything.
func TestWorkBudgetUnlimitedByDefault(t *testing.T) {
	p := buildWide()
	fn := p.Funcs[0]
	Convert64(fn, ir.IA64)
	st := Eliminate(fn, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
	if st.BudgetExhausted {
		t.Fatal("unlimited budget reported exhausted")
	}
	if st.Eliminated == 0 {
		t.Fatal("nothing eliminated on the chain program")
	}
}
