package extelim

import (
	"math"
	"time"

	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/dataflow"
	"signext/internal/freq"
	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/vrange"
)

// Config selects which components of the paper's algorithm run, matching the
// variant rows of Tables 1 and 2.
type Config struct {
	Machine     ir.Machine
	MaxArrayLen int64 // the language's maxlen (0 = 0x7fffffff, Java's)

	Insert bool // sign extension insertion (section 2.1)
	Order  bool // order determination (section 2.2)
	Array  bool // elimination for array indices (section 3)
	UsePDE bool // replace simple insertion with the PDE-style variant

	Profile interp.Profile // optional dynamic branch profile for ordering

	// MaxWork caps the per-function analysis effort (counted in chain
	// traversal queries, mirroring interp.MaxSteps). 0 means unlimited. On
	// an adversarial CFG the memoized traversals are polynomial but can
	// still be arbitrarily expensive; when the budget runs out the
	// remaining candidates are simply kept (always sound) and
	// Stats.BudgetExhausted reports it so the driver can fall back.
	MaxWork int
}

// Stats reports what the elimination phase did to one function.
type Stats struct {
	Inserted   int // extensions added by the insertion phase
	Dummies    int // just_extended() markers added (and later removed)
	Eliminated int // extensions removed
	Remaining  int // extensions left in the function

	// BudgetExhausted reports that Config.MaxWork ran out before every
	// candidate was analyzed; the function is still correct (unanalyzed
	// extensions are kept), just not fully optimized.
	BudgetExhausted bool

	// ChainTime is the time spent creating the shared analyses — UD/DU
	// chains and value ranges — reported separately because the paper's
	// Table 3 does: chains "are used for other optimizations" and value
	// range analysis likewise serves e.g. bounds-check elimination, so
	// neither is charged to the sign extension phase proper.
	ChainTime time.Duration
}

// Eliminate runs the paper's phase (3): insertion, order determination and
// UD/DU-chain elimination. The function must already be in 64-bit form
// (Convert64). Returns per-function statistics.
func Eliminate(fn *ir.Func, cfg Config) Stats {
	e := newEliminator(fn, cfg)
	return e.run()
}

type eliminator struct {
	fn   *ir.Func
	cfg  Config
	info *cfg.Info
	ch   *chains.Chains
	vr   *vrange.Analysis

	maxLen int64

	// Per-EliminateOneExtend traversal state (the paper's USE/DEF/ARRAY
	// instruction flags), reset before each candidate. Unlike the paper's
	// single-bit flags, finished queries memoize their result; only
	// in-progress revisits (cycles) answer optimistically.
	// Flag maps are allocated once and reset per candidate with a
	// generation stamp (value = gen<<2 | state), avoiding per-candidate
	// allocation in the hot elimination loop.
	gen      int64
	useFlags map[useSiteKey]int64
	defFlags map[defKey]int64
	u32Flags map[*ir.Instr]int64
	arrFlags map[*ir.Instr]int64

	// work counts chain traversal queries against cfg.MaxWork. When the
	// budget is spent, every pending query answers conservatively ("the
	// extension is required"), which is always sound.
	work     int
	overWork bool

	// candidate is the extension currently being analyzed. Definition-side
	// traversals treat it as absent ("transparent"), looking through to the
	// definitions of its source: the analysis must describe the world after
	// the removal it is trying to justify.
	candidate *ir.Instr
}

type useSiteKey struct {
	ins *ir.Instr
	op  int
}

type defKey struct {
	ins *ir.Instr
	w   uint8
}

// Traversal memo states.
const (
	qUnseen     int8 = 0
	qInProgress int8 = 1
	qFalse      int8 = 2 // finished: result false
	qTrue       int8 = 3 // finished: result true
)

func newEliminator(fn *ir.Func, c Config) *eliminator {
	e := &eliminator{fn: fn, cfg: c, maxLen: c.MaxArrayLen}
	if e.maxLen == 0 {
		e.maxLen = math.MaxInt32
	}
	return e
}

func (e *eliminator) run() Stats {
	var st Stats
	e.info = cfg.Compute(e.fn)
	kinds := ir.Kinds(e.fn)

	// Phase (3)-1: insertion. The simple algorithm applies only to methods
	// that contain a loop (compilation-time/effectiveness balance); dummies
	// accompany both the insertion and the array analysis, which relies on
	// their postcondition.
	if e.cfg.Insert && e.info.HasLoop() {
		if e.cfg.UsePDE {
			st.Inserted += insertPDE(e.fn, e.info)
		} else {
			st.Inserted += insertSimple(e.fn, kinds, e.cfg.Machine)
		}
	}
	if e.cfg.Insert || e.cfg.Array {
		st.Dummies = insertDummies(e.fn, kinds)
	}
	if st.Inserted > 0 || st.Dummies > 0 {
		e.info = cfg.Compute(e.fn) // block contents changed
	}

	// UD/DU chains over the post-insertion function.
	tc := time.Now()
	e.ch = chains.Build(e.fn, e.info)
	e.vr = vrange.Compute(e.fn, e.ch, e.info, e.cfg.Machine, e.maxLen)
	st.ChainTime = time.Since(tc)

	// Phase (3)-2: order determination. With ordering enabled, blocks are
	// processed hottest-first; otherwise in the fixed reverse-DFS order the
	// paper uses for the no-ordering variants.
	var order []*ir.Block
	if e.cfg.Order {
		order = freq.Compute(e.fn, e.info, e.cfg.Profile).HotFirst()
	} else {
		order = e.info.RPO
	}

	// Phase (3)-3: eliminate, hottest region first.
	for _, b := range order {
		if e.overWork {
			break
		}
		// Snapshot: elimination mutates the block.
		exts := []*ir.Instr{}
		for _, ins := range b.Instrs {
			if ins.IsExt() {
				exts = append(exts, ins)
			}
		}
		for _, x := range exts {
			if e.overWork {
				break
			}
			if e.eliminateOneExtend(x) {
				st.Eliminated++
			}
		}
	}
	st.BudgetExhausted = e.overWork

	removeDummies(e.fn)
	st.Remaining = e.fn.CountOp(ir.OpExt)
	return st
}

// spend charges one traversal query against the work budget and reports
// whether analysis may continue. Once the budget is exhausted every query
// answers conservatively, so candidates analyzed after that point are kept.
func (e *eliminator) spend() bool {
	if e.cfg.MaxWork <= 0 {
		return true
	}
	if e.work >= e.cfg.MaxWork {
		e.overWork = true
		return false
	}
	e.work++
	return true
}

// eliminateOneExtend is the paper's EliminateOneExtend: analyze one extension
// with fresh traversal flags and remove it when no use requires it (DU
// direction) or its source is already extended (UD direction).
func (e *eliminator) eliminateOneExtend(ext *ir.Instr) bool {
	if e.useFlags == nil {
		e.useFlags = map[useSiteKey]int64{}
		e.defFlags = map[defKey]int64{}
		e.u32Flags = map[*ir.Instr]int64{}
		e.arrFlags = map[*ir.Instr]int64{}
	}
	e.gen++
	e.candidate = ext

	required := false
	for _, u := range e.ch.DU(ext) {
		if e.analyzeUSE(ext, u.Instr, u.OpIdx, true) {
			required = true
			break
		}
	}
	if required {
		required = false
		for _, d := range e.ch.UD(ext, 0) {
			if e.analyzeDEF(d, uint8(ext.W)) {
				required = true
				break
			}
		}
	}
	if required {
		return false
	}
	if ext.Dst == ext.Srcs[0] {
		e.ch.RemoveSameRegExt(ext)
	} else {
		// A cross-register extension (a fused copy+extend, e.g. from a cast
		// or copy propagation) is demoted to a plain register copy: the
		// chains are untouched because definition and use sites are
		// unchanged, and the sxt disappears from the generated code.
		ext.Op = ir.OpMov
		ext.W = ir.W64
	}
	return true
}

// analyzeUSE reports whether the use at (ins, op) requires ext's result to be
// properly extended beyond ext.W bits. canArray tracks the paper's
// ANALYZE_ARRAY flag: it stays true only while the value reaches the array
// access unchanged (through copies), because the subscript theorems are
// stated about the extension's own register.
func (e *eliminator) analyzeUSE(ext *ir.Instr, ins *ir.Instr, op int, canArray bool) bool {
	if !e.spend() {
		return true // out of budget: conservatively required
	}
	key := useSiteKey{ins, op}
	if v := e.useFlags[key]; v>>2 == e.gen {
		switch int8(v & 3) {
		case qInProgress, qFalse:
			return false // in-progress: cycle, no requirement via this path
		case qTrue:
			return true
		}
	}
	e.useFlags[key] = e.gen<<2 | int64(qInProgress)
	req := e.analyzeUSE1(ext, ins, op, canArray)
	if req {
		e.useFlags[key] = e.gen<<2 | int64(qTrue)
	} else {
		e.useFlags[key] = e.gen<<2 | int64(qFalse)
	}
	return req
}

func (e *eliminator) analyzeUSE1(ext *ir.Instr, ins *ir.Instr, op int, canArray bool) bool {
	w := uint8(ext.W)
	u := ir.UseOf(ins, op)
	switch u.Class {
	case ir.UseRef, ir.UseFloat:
		return false
	case ir.UseLow:
		// Case 1: only the low bits participate.
		return u.Bits > w
	case ir.UseAll:
		return true
	case ir.UseIndex:
		if canArray && e.cfg.Array {
			return e.analyzeARRAY(ext, ins)
		}
		return true
	case ir.UseThrough:
		// Case 2: the operand's suspect bits (>= w) feed only the result's
		// bits >= w, so the requirement is inherited from the result's
		// uses. Copies and one level of +/- keep the subscript analyzable
		// (the theorems cover subscript expressions i, i+j and i-j); any
		// other operation makes it "impossible to analyze array's address
		// computation via I" and clears the paper's ANALYZE_ARRAY flag.
		switch ins.Op {
		case ir.OpMov, ir.OpAdd, ir.OpSub:
		default:
			canArray = false
		}
		if ins.W != ir.W64 && uint8(ins.W) < w {
			// A narrower through-op caps the meaningful bits below the
			// extension width; bits beyond its width are garbage anyway.
			return true
		}
		for _, uu := range e.ch.DU(ins) {
			if e.analyzeUSE(ext, uu.Instr, uu.OpIdx, canArray) {
				return true
			}
		}
		return false
	}
	return true
}

// analyzeDEF reports whether the definition d fails to produce a value
// sign-extended from w bits (true = an extension is still necessary).
func (e *eliminator) analyzeDEF(d dataflow.DefSite, w uint8) bool {
	if !e.spend() {
		return true // out of budget: conservatively not extended
	}
	if d.IsParam() {
		p := e.fn.Params[d.Param]
		if p.Float || p.Ref {
			return false
		}
		pw := uint8(p.W)
		if pw > 32 {
			return false // full-width values need no extension
		}
		return pw > w // parameters arrive extended from their width
	}
	ins := d.Instr
	key := defKey{ins, w}
	if v := e.defFlags[key]; v>>2 == e.gen {
		switch int8(v & 3) {
		case qInProgress, qFalse:
			return false // in-progress: cycle, optimistic per the DEF flag
		case qTrue:
			return true
		}
	}
	e.defFlags[key] = e.gen<<2 | int64(qInProgress)
	req := e.analyzeDEF1(ins, w)
	if req {
		e.defFlags[key] = e.gen<<2 | int64(qTrue)
	} else {
		e.defFlags[key] = e.gen<<2 | int64(qFalse)
	}
	return req
}

func (e *eliminator) analyzeDEF1(ins *ir.Instr, w uint8) bool {
	if ins == e.candidate {
		// Transparent: the candidate is hypothetically removed, so the value
		// here is whatever its source definitions produce. This is what
		// keeps Figure 9's entry extension alive (its source i=j+k is dirty)
		// while the dummy markers let the in-loop extension go.
		for _, dd := range e.ch.UD(ins, 0) {
			if e.analyzeDEF(dd, w) {
				return true
			}
		}
		return false
	}
	def := ir.DefOf(ins, e.cfg.Machine)
	switch def.Class {
	case ir.DefFloat, ir.DefRefKind:
		return false
	case ir.DefExtended:
		return def.Bits > w
	case ir.DefThrough:
		// AND with a register known non-negative over its full width yields
		// a sign-extended (indeed zero-extended) result: the paper's Case 1
		// example for AnalyzeDEF.
		if ins.Op == ir.OpAnd && ins.W == ir.W32 && w >= 32 {
			for k := 0; k < 2; k++ {
				if e.operandFullNonNeg(ins, k) {
					return false
				}
			}
		}
		// A narrowing copy (the (int)(long) cast) whose source register
		// holds its exact value (extended from 64 — trivially true for long
		// values, provable for others) with a range inside the 32-bit band
		// is already sign-extended.
		if ins.Op == ir.OpMov && w >= 32 {
			if r, ok := e.vr.OfDefRange(ins); ok && !r.IsBottom() &&
				r.Within(math.MinInt32, math.MaxInt32) &&
				(r.Lo > math.MinInt32 || r.Hi < math.MaxInt32) {
				ok64 := true
				for _, dd := range e.ch.UD(ins, 0) {
					if e.analyzeDEF(dd, 64) {
						ok64 = false
						break
					}
				}
				if ok64 && len(e.ch.UD(ins, 0)) > 0 {
					return false
				}
			}
		}
		// Case 2: extended iff every integer source is.
		for op := 0; op < ins.NumUses(); op++ {
			for _, dd := range e.ch.UD(ins, op) {
				if e.analyzeDEF(dd, w) {
					return true
				}
			}
		}
		return false
	default: // DefDirty
		// A zero-upper-half register whose 32-bit value is known
		// non-negative is sign-extended (e.g. unsigned bit-field extracts).
		if w >= 32 && def.U32Z {
			if r, ok := e.vr.OfDefRange(ins); ok && r.NonNeg() {
				return false
			}
		}
		// Exact narrow arithmetic on extended operands is extended: when the
		// value range analysis proves the result cannot wrap (a strictly
		// interior interval) and every operand register holds a genuine
		// sign-extended value, the 64-bit operation computes the exact
		// mathematical result, which fits — the paper's AnalyzeDEF Case 1
		// backed by range analysis [4, 7].
		if w >= 32 && ins.W == ir.W32 {
			switch ins.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpNeg, ir.OpShl:
				r, ok := e.vr.OfDefRange(ins)
				if ok && !r.IsBottom() &&
					(r.Lo > math.MinInt32 || r.Hi < math.MaxInt32) &&
					r.Within(math.MinInt32, math.MaxInt32) {
					extended := true
					for op := 0; op < ins.NumUses() && extended; op++ {
						if ins.Op == ir.OpShl && op == 1 {
							continue // the shift amount's upper bits are masked
						}
						defs := e.ch.UD(ins, op)
						if len(defs) == 0 {
							extended = false
						}
						for _, dd := range defs {
							if e.analyzeDEF(dd, 32) {
								extended = false
								break
							}
						}
					}
					if extended {
						return false
					}
				}
			}
		}
		return true
	}
}

// operandFullNonNeg reports whether operand k of ins is known, over the full
// 64-bit register, to lie in [0, 0x7fffffff]: upper half zero and semantic
// value non-negative.
func (e *eliminator) operandFullNonNeg(ins *ir.Instr, k int) bool {
	if !e.vr.OfOperandAt(ins, k).NonNeg() {
		return false
	}
	for _, d := range e.ch.UD(ins, k) {
		if !e.analyzeU32Z(d) {
			return false
		}
	}
	return len(e.ch.UD(ins, k)) > 0
}

// analyzeU32Z reports whether the definition d leaves the register's upper
// 32 bits zero (the "initialized to zero" premise of Theorems 1 and 3).
func (e *eliminator) analyzeU32Z(d dataflow.DefSite) bool {
	if !e.spend() {
		return false // out of budget: conservatively unknown
	}
	if d.IsParam() {
		return false
	}
	ins := d.Instr
	if v := e.u32Flags[ins]; v>>2 == e.gen {
		switch int8(v & 3) {
		case qInProgress, qTrue:
			return true // in-progress: optimistic on cycles
		case qFalse:
			return false
		}
	}
	e.u32Flags[ins] = e.gen<<2 | int64(qInProgress)
	ok := e.analyzeU32Z1(ins)
	if ok {
		e.u32Flags[ins] = e.gen<<2 | int64(qTrue)
	} else {
		e.u32Flags[ins] = e.gen<<2 | int64(qFalse)
	}
	return ok
}

func (e *eliminator) analyzeU32Z1(ins *ir.Instr) bool {
	if ins == e.candidate {
		// Transparent: look through to the candidate's source.
		defs := e.ch.UD(ins, 0)
		if len(defs) == 0 {
			return false
		}
		for _, dd := range defs {
			if !e.analyzeU32Z(dd) {
				return false
			}
		}
		return true
	}

	def := ir.DefOf(ins, e.cfg.Machine)
	if def.U32Z {
		return true
	}
	// A sign-extended register with a non-negative 32-bit value has a zero
	// upper half.
	if def.Class == ir.DefExtended && def.Bits <= 32 {
		if r, ok := e.vr.OfDefRange(ins); ok && r.NonNeg() {
			return true
		}
		return false
	}
	switch ins.Op {
	case ir.OpAnd:
		if ins.W != ir.W32 {
			return false
		}
		// x & y has a zero upper half if either side does.
		for k := 0; k < 2; k++ {
			all := len(e.ch.UD(ins, k)) > 0
			for _, dd := range e.ch.UD(ins, k) {
				if !e.analyzeU32Z(dd) {
					all = false
					break
				}
			}
			if all {
				return true
			}
		}
		return false
	case ir.OpMov, ir.OpOr, ir.OpXor:
		// Zero upper halves propagate through copies and (for or/xor) when
		// every operand has one.
		if ins.Op != ir.OpMov && ins.W != ir.W32 {
			return false
		}
		for op := 0; op < ins.NumUses(); op++ {
			if len(e.ch.UD(ins, op)) == 0 {
				return false
			}
			for _, dd := range e.ch.UD(ins, op) {
				if !e.analyzeU32Z(dd) {
					return false
				}
			}
		}
		return true
	}
	return false
}

// analyzeARRAY is the paper's AnalyzeARRAY (section 3): the extension's value
// reaches the effective-address computation of an array access (directly, or
// as an operand of the one-level subscript expression i+j / i-j the theorems
// cover). The extension can be removed if, in the post-removal world, every
// definition of the *subscript* satisfies one of Theorems 1-4 or is itself
// sign-extended. The language specification supplies the LS(e) predicate: a
// negative subscript always traps, and array lengths never exceed maxlen.
func (e *eliminator) analyzeARRAY(ext *ir.Instr, access *ir.Instr) bool {
	// Both OpArrLoad and OpArrStore carry the index in Srcs[1].
	defs := e.ch.UD(access, 1)
	if len(defs) == 0 {
		return true
	}
	for _, d := range defs {
		if !e.theoremHolds(d, uint8(ext.W)) {
			return true
		}
	}
	return false
}

// theoremHolds checks one definition of the subscript against Theorems 1-4.
func (e *eliminator) theoremHolds(d dataflow.DefSite, w uint8) bool {
	if !e.spend() {
		return false // out of budget: conservatively no theorem applies
	}
	if !d.IsParam() {
		if v := e.arrFlags[d.Instr]; v>>2 == e.gen {
			switch int8(v & 3) {
			case qInProgress, qTrue:
				return true // the paper's ARRAY flag: optimistic on cycles
			case qFalse:
				return false
			}
		}
		e.arrFlags[d.Instr] = e.gen<<2 | int64(qInProgress)
		ok := e.theoremHolds1(d, w)
		if ok {
			e.arrFlags[d.Instr] = e.gen<<2 | int64(qTrue)
		} else {
			e.arrFlags[d.Instr] = e.gen<<2 | int64(qFalse)
		}
		return ok
	}
	return e.theoremHolds1(d, w)
}

func (e *eliminator) theoremHolds1(d dataflow.DefSite, w uint8) bool {
	// The candidate extension is transparent: the subscript is really
	// defined by whatever feeds it (this is the paper's "all the
	// instructions that define the source operand of the given sign
	// extension").
	if !d.IsParam() && d.Instr == e.candidate {
		defs := e.ch.UD(d.Instr, 0)
		if len(defs) == 0 {
			return false
		}
		for _, dd := range defs {
			if !e.theoremHolds(dd, w) {
				return false
			}
		}
		return true
	}
	// Already sign-extended sources need no theorem (the general UD case).
	if !e.analyzeDEF(d, w) {
		return true
	}
	if d.IsParam() {
		return false
	}
	ins := d.Instr

	// Theorem 1: upper 32 bits zero + LS(i) from the language.
	if e.analyzeU32Z(d) {
		return true
	}

	switch ins.Op {
	case ir.OpMov:
		// A copy preserves the subscript value: the theorems apply to
		// whatever defines the copied register.
		defs := e.ch.UD(ins, 0)
		if len(defs) == 0 {
			return false
		}
		for _, dd := range defs {
			if !e.theoremHolds(dd, w) {
				return false
			}
		}
		return true
	case ir.OpAdd:
		if ins.W != ir.W32 {
			return false
		}
		return e.sumTheorems(ins, e.vr.OfOperandAt(ins, 0), e.vr.OfOperandAt(ins, 1), false)
	case ir.OpSub:
		if ins.W != ir.W32 {
			return false
		}
		rx := e.vr.OfOperandAt(ins, 0)
		ry := e.vr.OfOperandAt(ins, 1)
		// Theorem 3: x has a zero upper half and 0 <= y <= 0x7fffffff.
		if ry.NonNeg() && e.allDefsU32Z(ins, 0) {
			return true
		}
		// Theorems 2/4 applied to i-j by ranging over -j.
		return e.sumTheorems(ins, rx, negRange(ry), true)
	}
	return false
}

// sumTheorems checks Theorems 2 and 4 for a subscript of the form x+y (or
// x-y when ryIsNegated). Both operands must already be sign-extended; then
// one operand non-negative (Theorem 2) or, with the maximum array length
// bounded by maxlen, one operand >= maxlen-1-0x7fffffff (Theorem 4) suffices.
func (e *eliminator) sumTheorems(ins *ir.Instr, rx, ry vrange.Range, ryIsNegated bool) bool {
	if !e.allDefsExtended(ins, 0, 32) || !e.allDefsExtended(ins, 1, 32) {
		return false
	}
	// Theorem 2.
	if rx.NonNeg() || ry.NonNeg() {
		return true
	}
	// Theorem 4: (maxlen-1) - 0x7fffffff <= i or j <= 0x7fffffff. With
	// Java's maxlen = 0x7fffffff the bound is -1, which covers count-down
	// loops (i + (-1)).
	lo := (e.maxLen - 1) - math.MaxInt32
	if rx.Within(lo, math.MaxInt32) || ry.Within(lo, math.MaxInt32) {
		return true
	}
	return false
}

func (e *eliminator) allDefsExtended(ins *ir.Instr, op int, w uint8) bool {
	defs := e.ch.UD(ins, op)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if e.analyzeDEF(d, w) {
			return false
		}
	}
	return true
}

func (e *eliminator) allDefsU32Z(ins *ir.Instr, op int) bool {
	defs := e.ch.UD(ins, op)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if !e.analyzeU32Z(d) {
			return false
		}
	}
	return true
}

func negRange(r vrange.Range) vrange.Range {
	if r.IsBottom() {
		return r
	}
	if r.Lo == math.MinInt64 {
		return vrange.Full64()
	}
	return vrange.Range{Lo: -r.Hi, Hi: -r.Lo}
}
