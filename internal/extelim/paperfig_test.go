package extelim

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
)

// buildFig7 constructs the paper's Figure 3 / Figure 7 program:
//
//	int t = 0; int i = mem;          // mem in global g0, zero-extending load
//	do { i = i - 1; j = a[i]; j &= 0x0fffffff; t += j; } while (i > start);
//	d = (double) t;
//
// plus a main that allocates and fills the array. Returns the program and
// the fig7 function.
func buildFig7() (*ir.Program, *ir.Func) {
	prog := ir.NewProgram()
	prog.NGlobals = 1

	b := ir.NewFunc("fig7", ir.Param{Ref: true}, ir.Param{W: ir.W32})
	f := b.Fn
	a, start := ir.Reg(0), ir.Reg(1)
	t := f.NewReg()
	i := f.NewReg()
	j := f.NewReg()
	one := b.Const(ir.W32, 1)
	mask := b.Const(ir.W32, 0x0fffffff)
	b.ConstTo(ir.W32, t, 0)
	b.LoadGTo(ir.W32, i, 0)
	loop := f.NewBlock()
	exit := f.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(ir.OpSub, ir.W32, i, i, one)
	b.ArrLoadTo(ir.W32, false, j, a, i)
	b.OpTo(ir.OpAnd, ir.W32, j, j, mask)
	b.OpTo(ir.OpAdd, ir.W32, t, t, j)
	b.Br(ir.W32, ir.CondGT, i, start, loop, exit)
	b.SetBlock(exit)
	d := b.I2D(t)
	b.FPrint(d)
	b.Print(ir.W32, i)
	b.Ret(ir.NoReg)
	prog.AddFunc(f)

	mb := ir.NewFunc("main")
	m := mb.Fn
	n := mb.Const(ir.W32, 60)
	arr := mb.NewArr(ir.W32, false, n)
	k := m.NewReg()
	mb.ConstTo(ir.W32, k, 0)
	fill := m.NewBlock()
	done := m.NewBlock()
	mb.Jmp(fill)
	mb.SetBlock(fill)
	c1 := mb.Const(ir.W32, 1103515245)
	c2 := mb.Const(ir.W32, 12345)
	v := mb.Mul(ir.W32, k, c1)
	v = mb.Add(ir.W32, v, c2)
	mb.ArrStore(ir.W32, false, arr, k, v)
	mb.OpTo(ir.OpAdd, ir.W32, k, k, mb.Const(ir.W32, 1))
	mb.Br(ir.W32, ir.CondLT, k, n, fill, done)
	mb.SetBlock(done)
	mem := mb.Const(ir.W32, 50)
	mb.StoreG(ir.W32, 0, mem)
	mb.CallV("fig7", arr, mb.Const(ir.W32, 1))
	mb.Ret(ir.NoReg)
	prog.AddFunc(m)
	_ = start
	return prog, f
}

// run executes the program under Mode64 and returns output and dynamic
// 32-bit extension count, failing the test on any runtime error.
func run(t *testing.T, prog *ir.Program) (string, int64) {
	t.Helper()
	res, err := interp.Run(prog, "main", interp.Options{
		Mode: interp.Mode64, Machine: ir.IA64, CheckDummies: true,
	})
	if err != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", err, res.Output)
	}
	return res.Output, res.Ext32()
}

// reference executes the pre-conversion program under 32-bit semantics.
func reference(t *testing.T, prog *ir.Program) string {
	t.Helper()
	res, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	return res.Output
}

func convertAll(prog *ir.Program, mach ir.Machine) {
	for _, fn := range prog.Funcs {
		Convert64(fn, mach)
	}
}

// TestConvert64Preserves checks the conversion invariant: the converted
// program running on the dirty-upper-bits machine reproduces the 32-bit
// reference semantics exactly.
func TestConvert64Preserves(t *testing.T) {
	prog, _ := buildFig7()
	want := reference(t, prog)
	convertAll(prog, ir.IA64)
	got, _ := run(t, prog)
	if got != want {
		t.Fatalf("conversion changed behaviour:\nwant %q\ngot  %q", want, got)
	}
}

// countExtsIn returns the number of OpExt instructions in the given block.
func countExtsIn(b *ir.Block) int {
	n := 0
	for _, ins := range b.Instrs {
		if ins.IsExt() {
			n++
		}
	}
	return n
}

// TestFigure3FirstAlgorithm reproduces the paper's Figure 3 analysis: the
// first algorithm eliminates extensions (1), (5) and (7) but must keep (3)
// (the array index, its first limitation) and (9) (needed by the
// int-to-double conversion after the loop).
func TestFigure3FirstAlgorithm(t *testing.T) {
	prog, fn := buildFig7()
	want := reference(t, prog)
	convertAll(prog, ir.IA64)
	if got := fn.CountOp(ir.OpExt); got != 5 {
		t.Fatalf("conversion generated %d extensions in fig7, want 5", got)
	}
	for _, f := range prog.Funcs {
		FirstAlgorithm(f)
	}
	if got := fn.CountOp(ir.OpExt); got != 2 {
		t.Fatalf("first algorithm left %d extensions, want 2 ((3) and (9)):\n%s",
			got, fn.Format())
	}
	loop := fn.Blocks[1]
	if got := countExtsIn(loop); got != 2 {
		t.Fatalf("first algorithm: %d extensions in the loop, want 2:\n%s", got, fn.Format())
	}
	got, _ := run(t, prog)
	if got != want {
		t.Fatalf("first algorithm miscompiled:\nwant %q\ngot  %q", want, got)
	}
}

// TestFigure8NewAlgorithm reproduces Figure 8(b): with insertion, order
// determination and array handling all enabled, the only surviving extension
// is the inserted one before the int-to-double conversion, outside the loop.
func TestFigure8NewAlgorithm(t *testing.T) {
	prog, fn := buildFig7()
	want := reference(t, prog)
	convertAll(prog, ir.IA64)
	for _, f := range prog.Funcs {
		Eliminate(f, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
	}
	loop, exit := fn.Blocks[1], fn.Blocks[2]
	if got := countExtsIn(loop); got != 0 {
		t.Fatalf("new algorithm left %d extensions in the loop, want 0:\n%s", got, fn.Format())
	}
	if got := countExtsIn(exit); got != 1 {
		t.Fatalf("want exactly the inserted extension before i2d, got %d:\n%s", got, fn.Format())
	}
	if fn.CountOp(ir.OpExtDummy) != 0 {
		t.Fatalf("dummies must be removed after elimination:\n%s", fn.Format())
	}
	got, _ := run(t, prog)
	if got != want {
		t.Fatalf("new algorithm miscompiled:\nwant %q\ngot  %q", want, got)
	}
}

// TestFigure7DynamicCounts checks the dynamic-count gradient across variants
// on the Figure 7 program: baseline > first algorithm ≥ basic > array-only >
// full algorithm.
func TestFigure7DynamicCounts(t *testing.T) {
	counts := map[string]int64{}
	variants := []struct {
		name string
		run  func(p *ir.Program)
	}{
		{"baseline", func(p *ir.Program) { convertAll(p, ir.IA64) }},
		{"first", func(p *ir.Program) {
			convertAll(p, ir.IA64)
			for _, f := range p.Funcs {
				FirstAlgorithm(f)
			}
		}},
		{"basic", func(p *ir.Program) {
			convertAll(p, ir.IA64)
			for _, f := range p.Funcs {
				Eliminate(f, Config{Machine: ir.IA64})
			}
		}},
		{"array", func(p *ir.Program) {
			convertAll(p, ir.IA64)
			for _, f := range p.Funcs {
				Eliminate(f, Config{Machine: ir.IA64, Array: true})
			}
		}},
		{"all", func(p *ir.Program) {
			convertAll(p, ir.IA64)
			for _, f := range p.Funcs {
				Eliminate(f, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
			}
		}},
	}
	var want string
	for _, v := range variants {
		prog, _ := buildFig7()
		if want == "" {
			want = reference(t, prog)
		}
		v.run(prog)
		out, n := run(t, prog)
		if out != want {
			t.Fatalf("%s: wrong output\nwant %q\ngot  %q", v.name, want, out)
		}
		counts[v.name] = n
	}
	if !(counts["baseline"] > counts["first"] &&
		counts["first"] >= counts["basic"] &&
		counts["basic"] > counts["array"] &&
		counts["array"] > counts["all"]) {
		t.Fatalf("unexpected dynamic count gradient: %v", counts)
	}
	if counts["all"] > 2 {
		t.Fatalf("full algorithm should execute at most a couple of extensions, got %d", counts["all"])
	}
}

// buildFig9 constructs the paper's Figure 9:
//
//	i = j + k; do { i = i + 1; a[i] = 0; } while (i < end);
func buildFig9() (*ir.Program, *ir.Func) {
	prog := ir.NewProgram()
	b := ir.NewFunc("fig9",
		ir.Param{Ref: true}, ir.Param{W: ir.W32}, ir.Param{W: ir.W32}, ir.Param{W: ir.W32})
	f := b.Fn
	a, j, k, end := ir.Reg(0), ir.Reg(1), ir.Reg(2), ir.Reg(3)
	i := f.NewReg()
	one := b.Const(ir.W32, 1)
	zero := b.Const(ir.W32, 0)
	b.OpTo(ir.OpAdd, ir.W32, i, j, k)
	loop, exit := f.NewBlock(), f.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(ir.OpAdd, ir.W32, i, i, one)
	b.ArrStore(ir.W32, false, a, i, zero)
	b.Br(ir.W32, ir.CondLT, i, end, loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, i)
	b.Ret(ir.NoReg)
	prog.AddFunc(f)

	mb := ir.NewFunc("main")
	m := mb.Fn
	n := mb.Const(ir.W32, 40)
	arr := mb.NewArr(ir.W32, false, n)
	mb.CallV("fig9", arr, mb.Const(ir.W32, 3), mb.Const(ir.W32, 4), mb.Const(ir.W32, 39))
	mb.Ret(ir.NoReg)
	prog.AddFunc(m)
	return prog, f
}

// TestFigure9OrderDetermination reproduces the paper's Figure 9: with order
// determination the in-loop extension is eliminated and the entry one
// survives (Result 1); only one of the two can go.
func TestFigure9OrderDetermination(t *testing.T) {
	prog, fn := buildFig9()
	want := reference(t, prog)
	convertAll(prog, ir.IA64)
	for _, f := range prog.Funcs {
		Eliminate(f, Config{Machine: ir.IA64, Order: true, Array: true})
	}
	entry, loop := fn.Blocks[0], fn.Blocks[1]
	if got := countExtsIn(loop); got != 0 {
		t.Fatalf("order+array must clear the loop, got %d exts:\n%s", got, fn.Format())
	}
	if got := countExtsIn(entry); got != 1 {
		t.Fatalf("Result 1 keeps the entry extension, got %d:\n%s", got, fn.Format())
	}
	got, _ := run(t, prog)
	if got != want {
		t.Fatalf("fig9 miscompiled:\nwant %q\ngot  %q", want, got)
	}
}

// buildFig10 isolates the paper's Figure 10 / Theorem 4 maxlen effect: a
// count-down-by-2 loop over an array index arriving sign-extended (as a
// parameter). With Java's maxlen = 0x7fffffff, j = -2 violates Theorem 4's
// bound of -1 and the in-loop extension must stay; with maxlen = 0x7fff0001
// the bound loosens to -65535 and it can go.
func buildFig10() (*ir.Program, *ir.Func) {
	prog := ir.NewProgram()
	b := ir.NewFunc("fig10", ir.Param{Ref: true}, ir.Param{W: ir.W32}, ir.Param{W: ir.W32})
	f := b.Fn
	a, start := ir.Reg(0), ir.Reg(2)
	i := f.NewReg()
	t := f.NewReg()
	j := f.NewReg()
	two := b.Const(ir.W32, 2)
	b.ConstTo(ir.W32, t, 0)
	b.MovTo(ir.W32, i, ir.Reg(1))
	loop, exit := f.NewBlock(), f.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(ir.OpSub, ir.W32, i, i, two)
	b.ArrLoadTo(ir.W32, false, j, a, i)
	b.OpTo(ir.OpAdd, ir.W32, t, t, j)
	b.Br(ir.W32, ir.CondGT, i, start, loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, t)
	b.Ret(ir.NoReg)
	prog.AddFunc(f)

	mb := ir.NewFunc("main")
	m := mb.Fn
	n := mb.Const(ir.W32, 64)
	arr := mb.NewArr(ir.W32, false, n)
	mb.CallV("fig10", arr, mb.Const(ir.W32, 62), mb.Const(ir.W32, 2))
	mb.Ret(ir.NoReg)
	prog.AddFunc(m)
	return prog, f
}

// TestFigure10MaxlenDependence: the same extension is kept under Java's
// maximum array length and removable when the configuration bounds arrays
// below 0x7fffffff (Theorem 4's maxlen parameter).
func TestFigure10MaxlenDependence(t *testing.T) {
	{
		prog, fn := buildFig10()
		convertAll(prog, ir.IA64)
		for _, f := range prog.Funcs {
			Eliminate(f, Config{Machine: ir.IA64, Order: true, Array: true})
		}
		loop := fn.Blocks[1]
		hasIndexExt := false
		for _, ins := range loop.Instrs {
			if ins.IsExt() && ins.Dst == ir.Reg(3) {
				hasIndexExt = true
			}
		}
		if !hasIndexExt {
			t.Fatalf("maxlen=0x7fffffff: the i-2 index extension must survive:\n%s", fn.Format())
		}
	}
	{
		prog, fn := buildFig10()
		want := reference(t, prog)
		convertAll(prog, ir.IA64)
		for _, f := range prog.Funcs {
			Eliminate(f, Config{Machine: ir.IA64, Order: true, Array: true, MaxArrayLen: 0x7fff0001})
		}
		loop := fn.Blocks[1]
		for _, ins := range loop.Instrs {
			if ins.IsExt() && ins.Dst == ir.Reg(3) {
				t.Fatalf("maxlen=0x7fff0001: Theorem 4 should remove the index extension:\n%s", fn.Format())
			}
		}
		res, err := interp.Run(prog, "main", interp.Options{
			Mode: interp.Mode64, Machine: ir.IA64, CheckDummies: true, MaxArrayLen: 0x7fff0001,
		})
		if err != nil {
			t.Fatalf("fig10 run failed: %v", err)
		}
		if res.Output != want {
			t.Fatalf("fig10 miscompiled:\nwant %q\ngot  %q", want, res.Output)
		}
	}
}

// TestFigure9WithoutOrder reproduces the paper's Result 2: in the fixed
// reverse-DFS order the entry-block extension is analyzed (and eliminated)
// first, leaving the in-loop extension stuck — the motivating failure for
// order determination.
func TestFigure9WithoutOrder(t *testing.T) {
	prog, fn := buildFig9()
	convertAll(prog, ir.IA64)
	for _, f := range prog.Funcs {
		Eliminate(f, Config{Machine: ir.IA64, Array: true}) // Order off
	}
	entry, loop := fn.Blocks[0], fn.Blocks[1]
	if got := countExtsIn(entry); got != 0 {
		t.Fatalf("Result 2 eliminates the entry extension first, got %d:\n%s", got, fn.Format())
	}
	if got := countExtsIn(loop); got != 1 {
		t.Fatalf("Result 2 leaves the in-loop extension, got %d:\n%s", got, fn.Format())
	}
	// Behaviour must still be correct, just slower.
	want := reference(t, prog)
	got, _ := run(t, prog)
	if got != want {
		t.Fatalf("Result 2 must still be sound:\nwant %q\ngot  %q", want, got)
	}
}
