package extelim

import (
	"testing"

	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/opt"
)

// benchFn builds a representative function: nested loops over a flattened
// matrix with a call-free body — the shape the elimination phase spends its
// time on.
func benchFn(b *testing.B) *ir.Func {
	b.Helper()
	cu, err := minijava.Compile(`
		void main() {
			int n = 48;
			int[] m = new int[n * n];
			for (int i = 0; i < n; i++) {
				for (int j = 0; j < n; j++) {
					m[i * n + j] = (i << 8) ^ j;
				}
			}
			int s = 0;
			for (int i = n - 1; i >= 0; i--) {
				for (int j = n - 1; j >= 0; j--) {
					s += m[i * n + j] & 0xffff;
				}
			}
			print(s);
		}`)
	if err != nil {
		b.Fatal(err)
	}
	return cu.Prog.Func("main")
}

// BenchmarkConvert64 measures the generation pass.
func BenchmarkConvert64(b *testing.B) {
	src := benchFn(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := src.Clone()
		b.StartTimer()
		Convert64(fn, ir.IA64)
	}
}

// BenchmarkEliminateFull measures the complete sign extension phase
// (insertion + ordering + UD/DU elimination with the array theorems) on one
// method — the per-method cost behind Table 3.
func BenchmarkEliminateFull(b *testing.B) {
	src := benchFn(b)
	Convert64(src, ir.IA64)
	opt.Run(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := src.Clone()
		b.StartTimer()
		Eliminate(fn, Config{Machine: ir.IA64, Insert: true, Order: true, Array: true})
	}
}

// BenchmarkFirstAlgorithm measures the backward-dataflow baseline.
func BenchmarkFirstAlgorithm(b *testing.B) {
	src := benchFn(b)
	Convert64(src, ir.IA64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn := src.Clone()
		b.StartTimer()
		FirstAlgorithm(fn)
	}
}
