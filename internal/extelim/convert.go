// Package extelim implements the paper's sign extension optimization: the
// 64-bit conversion step that generates extensions (Figure 5 step 1, Figure
// 6), the insertion phase (section 2.1), order determination (section 2.2),
// the UD/DU-chain elimination with the array-subscript theorems (sections 2.3
// and 3), and the reference algorithms measured against it ("gen use" and the
// backward-dataflow "first algorithm").
package extelim

import (
	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/ir"
)

// Convert64 translates a function from its 32-bit-architecture form to the
// 64-bit form by generating a sign extension immediately *after* every
// instruction with a narrow integer destination, unless that destination is
// guaranteed to be sign-extended (Figure 6(b), the strategy the paper
// chooses because it maximizes elimination opportunities).
//
// Conversion establishes the invariant that every integer register holds a
// properly sign-extended value at every program point, which makes it
// trivially correct and also means pass-through definitions (copies, bitwise
// ops) need no extension of their own. It returns the number of extensions
// generated.
func Convert64(fn *ir.Func, mach ir.Machine) int {
	kinds := ir.Kinds(fn)
	n := 0
	for _, b := range fn.Blocks {
		for k := 0; k < len(b.Instrs); k++ {
			ins := b.Instrs[k]
			if w, need := needsGenAfterDef(ins, kinds, mach); need {
				ext := newSameRegExt(fn, w, ins.Dst)
				b.InsertAt(k+1, ext)
				k++
				n++
			}
		}
	}
	return n
}

// needsGenAfterDef decides whether ins's destination requires a trailing
// extension under the all-registers-extended invariant, and of which width.
func needsGenAfterDef(ins *ir.Instr, kinds []ir.Kind, mach ir.Machine) (ir.Width, bool) {
	if !ins.HasDst() || ins.IsTerminator() {
		return 0, false
	}
	if kinds[ins.Dst] != ir.KInt32 && kinds[ins.Dst] != ir.KInt64 {
		return 0, false
	}
	if ins.W == ir.W64 {
		return 0, false
	}
	d := ir.DefOf(ins, mach)
	switch d.Class {
	case ir.DefExtended:
		if d.Bits <= 32 {
			return 0, false
		}
	case ir.DefThrough:
		// Not *locally* guaranteed: copies and bitwise ops are extended only
		// if their inputs are, which generation-time code cannot see. The
		// paper generates here too — Figure 3 has extensions (5) and (7)
		// after the array load and the AND — and relies on elimination to
		// remove them.
	case ir.DefFloat, ir.DefRefKind:
		return 0, false
	}
	// Dirty narrow definition: extend from the operation width. Narrow loads
	// extend from the element width (ld1+sxt1 style); arithmetic from 32.
	w := ins.W
	if w > ir.W32 {
		w = ir.W32
	}
	return w, true
}

// ConvertGenUse is the reference conversion strategy of Figure 6(c): it
// generates a sign extension immediately *before* every instruction that
// requires one, unless the source operand is locally guaranteed to be
// sign-extended. The paper measures this (with no elimination afterwards) as
// the "gen use" row of Tables 1 and 2.
//
// The extension width is the operand's natural width: a byte element feeding
// a 32-bit operation gets sxt1, a 32-bit value feeding a widening copy or a
// full-register consumer gets sxt4.
func ConvertGenUse(fn *ir.Func, mach ir.Machine) int {
	kinds := ir.Kinds(fn)
	info := cfg.Compute(fn)
	ch := chains.Build(fn, info)
	n := 0
	// Definitions that were given a trailing def-site extension by the
	// mixed-width fallback below; they now produce clean values.
	defExtended := map[*ir.Instr]bool{}
	for _, b := range fn.Blocks {
		for k := 0; k < len(b.Instrs); k++ {
			ins := b.Instrs[k]
			done := map[ir.Reg]bool{}
			for op := 0; op < ins.NumUses(); op++ {
				r := ins.UseAt(op)
				if done[r] || kinds[r] != ir.KInt32 {
					continue
				}
				d := genUseDemand(ins, op)
				if d == 0 {
					continue
				}
				dirty := genUseDirtyDefs(ch, ins, op, mach, defExtended)
				if len(dirty) == 0 {
					continue
				}
				extW := dirty[0].w
				mixed := false
				for _, dd := range dirty[1:] {
					if dd.w != extW {
						mixed = true
					}
				}
				if mixed {
					// No single use-site width repairs every path: sign-
					// extending from 32 leaves a zero-extended byte load
					// wrong, extending from 8 corrupts genuine 32-bit
					// values. Extend the narrow producers where they are
					// defined; only width-32 producers then remain dirty.
					extW = 32
					for _, dd := range dirty {
						if dd.w >= 32 || defExtended[dd.def] {
							continue
						}
						defExtended[dd.def] = true
						ext := newSameRegExt(fn, ir.Width(dd.w), dd.def.Dst)
						blk := dd.def.Blk
						for i, x := range blk.Instrs {
							if x == dd.def {
								blk.InsertAt(i+1, ext)
								if blk == b && i < k {
									k++
								}
								break
							}
						}
						n++
					}
				}
				if d <= extW {
					continue
				}
				done[r] = true
				ext := newSameRegExt(fn, ir.Width(extW), r)
				b.InsertAt(k, ext)
				k++
				n++
			}
		}
	}
	return n
}

// genUseDemand returns how many low bits of the operand the instruction
// needs to be valid (0 for non-integer operands).
func genUseDemand(ins *ir.Instr, op int) uint8 {
	u := ir.UseOf(ins, op)
	switch u.Class {
	case ir.UseAll, ir.UseIndex:
		return 64
	case ir.UseLow:
		return u.Bits
	case ir.UseThrough:
		// The operation consumes u.Bits meaningful bits (64 for copies).
		if u.Bits > 64 {
			return 64
		}
		return u.Bits
	}
	return 0
}

// dirtyDef is a reaching definition that does not produce a sign-extended
// value, with the width its register is valid to.
type dirtyDef struct {
	def *ir.Instr
	w   uint8
}

// genUseDirtyDefs is the cheap code-generation-time check: it returns the
// reaching definitions of the operand that are not extension-producing (and
// were not already repaired by a def-site extension), each with the natural
// width the register is valid to. An empty result means the operand is
// guaranteed clean and needs no extension.
func genUseDirtyDefs(ch *chains.Chains, ins *ir.Instr, op int, mach ir.Machine,
	defExtended map[*ir.Instr]bool) []dirtyDef {
	var dirty []dirtyDef
	for _, d := range ch.UD(ins, op) {
		if d.IsParam() {
			continue // parameters arrive extended
		}
		if defExtended[d.Instr] {
			continue
		}
		dd := ir.DefOf(d.Instr, mach)
		if dd.Class == ir.DefExtended && dd.Bits <= 32 {
			continue
		}
		nat := uint8(d.Instr.W)
		if nat > 32 || nat == 0 {
			nat = 32
		}
		dirty = append(dirty, dirtyDef{def: d.Instr, w: nat})
	}
	return dirty
}

// newSameRegExt builds the canonical compiler-generated extension
// "r = ext.w r".
func newSameRegExt(fn *ir.Func, w ir.Width, r ir.Reg) *ir.Instr {
	ext := fn.NewInstr(ir.OpExt)
	ext.W = w
	ext.Dst = r
	ext.Srcs[0] = r
	ext.NSrcs = 1
	return ext
}

// newDummy builds the paper's just_extended() marker for register r.
func newDummy(fn *ir.Func, r ir.Reg) *ir.Instr {
	d := fn.NewInstr(ir.OpExtDummy)
	d.W = ir.W32
	d.Dst = r
	d.Srcs[0] = r
	d.NSrcs = 1
	return d
}
