package extelim

import (
	"signext/internal/cfg"
	"signext/internal/ir"
)

// FirstAlgorithm is the paper's original sign extension elimination: after
// generation-after-definitions (Convert64), a backward dataflow analysis
// computes, for every register at every program point, how many low bits of
// the register the rest of the execution can observe; an extension "r =
// ext.W r" is removed when at most W bits are demanded after it.
//
// This reproduces the paper's "first algorithm (bwd flow)" rows, including
// its four documented limitations: it cannot remove extensions feeding array
// effective addresses, it misses opportunities a UD-direction check would
// catch, it keeps the latest extension in the flow graph (possibly the one
// inside a loop), and it cannot move extensions out of loops.
//
// It returns the number of extensions removed.
func FirstAlgorithm(fn *ir.Func) int {
	info := cfg.Compute(fn)

	// demandIn[b][r]: bits of register r demanded at entry to block b.
	demandIn := map[*ir.Block][]uint8{}
	for _, b := range fn.Blocks {
		demandIn[b] = make([]uint8, fn.NReg)
	}
	post := info.PostOrder()
	cur := make([]uint8, fn.NReg)
	for changed := true; changed; {
		changed = false
		for _, b := range post {
			// Demand at block exit: join (max) over successors' entries.
			for r := range cur {
				cur[r] = 0
			}
			for _, s := range b.Succs {
				for r, d := range demandIn[s] {
					if d > cur[r] {
						cur[r] = d
					}
				}
			}
			transferBlock(b, cur, nil)
			in := demandIn[b]
			for r := range cur {
				if cur[r] != in[r] {
					in[r] = cur[r]
					changed = true
				}
			}
		}
	}

	// Removal pass: walk each block backward with the converged exit state
	// and delete extensions whose register is demanded at most W bits.
	removed := 0
	for _, b := range post {
		for r := range cur {
			cur[r] = 0
		}
		for _, s := range b.Succs {
			for r, d := range demandIn[s] {
				if d > cur[r] {
					cur[r] = d
				}
			}
		}
		var dead []*ir.Instr
		transferBlock(b, cur, func(ext *ir.Instr, after uint8) {
			if after <= uint8(ext.W) {
				dead = append(dead, ext)
			}
		})
		for _, e := range dead {
			b.Remove(e)
			removed++
		}
	}
	return removed
}

// transferBlock propagates bit demands backward through one block. onExt, if
// non-nil, receives each same-register extension together with the demand on
// its register immediately after it.
func transferBlock(b *ir.Block, demand []uint8, onExt func(*ir.Instr, uint8)) {
	for k := len(b.Instrs) - 1; k >= 0; k-- {
		ins := b.Instrs[k]
		var dstDemand uint8
		if ins.HasDst() {
			dstDemand = demand[ins.Dst]
			demand[ins.Dst] = 0 // the definition kills the demand
		}
		if ins.IsExt() && ins.Dst == ins.Srcs[0] {
			if onExt != nil {
				onExt(ins, dstDemand)
			}
			// The extension satisfies any demand; it reads only W bits.
			if w := uint8(ins.W); w > demand[ins.Srcs[0]] {
				demand[ins.Srcs[0]] = w
			}
			continue
		}
		for op := 0; op < ins.NumUses(); op++ {
			r := ins.UseAt(op)
			u := ir.UseOf(ins, op)
			if u.Class == ir.UseRef || u.Class == ir.UseFloat {
				continue
			}
			d := u.DemandBits(dstDemand)
			if d > demand[r] {
				demand[r] = d
			}
		}
	}
}
