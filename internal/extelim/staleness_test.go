package extelim

import (
	"testing"

	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/ir"
	"signext/internal/minijava"
	"signext/internal/opt"
	"signext/internal/vrange"
	"signext/internal/workloads"
)

// paranoidRun mirrors eliminator.run but rebuilds the chains and value
// ranges from scratch after every successful elimination, so any staleness
// in the incremental chain patching (chains.RemoveSameRegExt and the
// cross-register demotion path) shows up as an IR divergence against the
// normal, incrementally-patched run.
func paranoidRun(fn *ir.Func, c Config) Stats {
	e := newEliminator(fn, c)
	var st Stats
	e.info = cfg.Compute(e.fn)
	kinds := ir.Kinds(e.fn)

	if e.cfg.Insert && e.info.HasLoop() {
		if e.cfg.UsePDE {
			st.Inserted += insertPDE(e.fn, e.info)
		} else {
			st.Inserted += insertSimple(e.fn, kinds, e.cfg.Machine)
		}
	}
	if e.cfg.Insert || e.cfg.Array {
		st.Dummies = insertDummies(e.fn, kinds)
	}
	if st.Inserted > 0 || st.Dummies > 0 {
		e.info = cfg.Compute(e.fn)
	}

	rebuild := func() {
		e.ch = chains.Build(e.fn, e.info)
		e.vr = vrange.Compute(e.fn, e.ch, e.info, e.cfg.Machine, e.maxLen)
		e.useFlags = nil
		e.defFlags = nil
		e.u32Flags = nil
		e.arrFlags = nil
	}
	rebuild()

	for _, b := range e.info.RPO {
		exts := []*ir.Instr{}
		for _, ins := range b.Instrs {
			if ins.IsExt() {
				exts = append(exts, ins)
			}
		}
		for _, x := range exts {
			if e.eliminateOneExtend(x) {
				st.Eliminated++
				rebuild()
			}
		}
	}
	removeDummies(e.fn)
	st.Remaining = e.fn.CountOp(ir.OpExt)
	return st
}

// TestIncrementalChainsMatchParanoidRebuild is the chain-patching audit for
// the whole benchmark suite: the production eliminator (incremental chain
// patching) and the paranoid variant (full rebuild after every removal) must
// produce byte-identical IR under every configuration on both machines. A
// stale DU or UD entry surviving a removal would make a later
// eliminateOneExtend decide differently and diverge here.
func TestIncrementalChainsMatchParanoidRebuild(t *testing.T) {
	configs := []Config{
		{},
		{Insert: true},
		{Array: true},
		{Insert: true, Array: true},
		{Insert: true, Array: true, UsePDE: true},
	}
	for _, w := range workloads.All() {
		cu, err := minijava.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for ci, c0 := range configs {
			for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
				c := c0
				c.Machine = mach
				for _, fn := range cu.Prog.Funcs {
					a := fn.Clone()
					b := fn.Clone()
					Convert64(a, mach)
					Convert64(b, mach)
					opt.Run(a)
					opt.Run(b)
					sa := Eliminate(a, c)
					sb := paranoidRun(b, c)
					if a.Format() != b.Format() {
						t.Errorf("%s/%s cfg%d mach%v: incremental vs paranoid IR differ\nincremental (elim %d):\n%s\nparanoid (elim %d):\n%s",
							w.Name, fn.Name, ci, mach, sa.Eliminated, a.Format(), sb.Eliminated, b.Format())
						return
					}
				}
			}
		}
	}
}
