package minijava

import "fmt"

// Parse turns source text into an AST.
func Parse(src string) (*ProgramAST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return &Error{t.line, t.col, fmt.Sprintf(format, args...)}
}

func (p *parser) expect(text string) (token, error) {
	t := p.cur()
	if t.kind != tPunct && t.kind != tKeyword || t.text != text {
		return t, p.errf(t, "expected %q, found %q", text, t.text)
	}
	return p.next(), nil
}

func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.kind == tPunct || t.kind == tKeyword) && t.text == text
}

func (p *parser) eat(text string) bool {
	if p.at(text) {
		p.next()
		return true
	}
	return false
}

var baseTypes = map[string]*Type{
	"void": tyVoid, "boolean": tyBool, "byte": tyByte, "short": tyShort,
	"char": tyChar, "int": tyInt, "long": tyLong, "double": tyDouble,
}

// atType reports whether the current token begins a type.
func (p *parser) atType() bool {
	t := p.cur()
	return t.kind == tKeyword && baseTypes[t.text] != nil
}

func (p *parser) parseType() (*Type, error) {
	t := p.cur()
	base := baseTypes[t.text]
	if t.kind != tKeyword || base == nil {
		return nil, p.errf(t, "expected type, found %q", t.text)
	}
	p.next()
	ty := base
	for p.at("[") && p.peek().text == "]" {
		p.next()
		p.next()
		ty = &Type{K: TArray, Elem: ty}
	}
	return ty, nil
}

func (p *parser) parseProgram() (*ProgramAST, error) {
	prog := &ProgramAST{}
	for p.cur().kind != tEOF {
		isStatic := p.eat("static")
		line := p.cur().line
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name := p.cur()
		if name.kind != tIdent {
			return nil, p.errf(name, "expected identifier, found %q", name.text)
		}
		p.next()
		if p.at("(") {
			fn, err := p.parseFuncRest(ty, name.text, line)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		} else {
			g := &GlobalDecl{Name: name.text, Type: ty, Line: line}
			if p.eat("=") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				g.Init = e
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		}
		_ = isStatic
	}
	return prog, nil
}

func (p *parser) parseFuncRest(ret *Type, name string, line int) (*FuncDecl, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name, Ret: ret, Line: line}
	for !p.at(")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		id := p.cur()
		if id.kind != tIdent {
			return nil, p.errf(id, "expected parameter name")
		}
		p.next()
		fn.Params = append(fn.Params, ParamDecl{Name: id.text, Type: ty})
	}
	p.next() // ")"
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.at("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf(p.cur(), "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at("{"):
		return p.parseBlock()
	case p.at("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.eat("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.at("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.at("do"):
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("while"); err != nil {
			return nil, err
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond}, nil
	case p.at("for"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{}
		if !p.at(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(")") {
			post, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.at("return"):
		p.next()
		st := &ReturnStmt{Line: t.line}
		if !p.at(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = e
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return st, nil
	case p.at("break"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case p.at("continue"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses a declaration or expression statement (no trailing
// semicolon), as used in for-clauses.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.atType() {
		line := p.cur().line
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		id := p.cur()
		if id.kind != tIdent {
			return nil, p.errf(id, "expected variable name")
		}
		p.next()
		d := &VarDecl{Name: id.text, Type: ty, Line: line}
		if p.eat("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{E: e}, nil
}

// Expression grammar, precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true, ">>>=": true,
}

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tPunct && assignOps[t.text] {
		p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		op := ""
		if t.text != "=" {
			op = t.text[:len(t.text)-1]
		}
		switch lhs.(type) {
		case *Ident, *Index:
		default:
			return nil, p.errf(t, "invalid assignment target")
		}
		return &Assign{LHS: lhs, Op: op, RHS: rhs, Line: t.line}, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.at("?") {
		line := p.cur().line
		p.next()
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, A: a, B: b, Line: line}, nil
	}
	return c, nil
}

// binary operator precedence levels, lowest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>", ">>>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		found := false
		if t.kind == tPunct {
			for _, op := range precLevels[level] {
				if t.text == op {
					found = true
					break
				}
			}
		}
		if !found {
			return x, nil
		}
		p.next()
		y, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: t.text, X: x, Y: y, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct {
		switch t.text {
		case "!", "~", "-":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.text, X: x, Line: t.line}, nil
		case "+":
			p.next()
			return p.parseUnary()
		case "++", "--":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &IncDec{X: x, Op: t.text, Line: t.line}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.peek().kind == tKeyword && baseTypes[p.peek().text] != nil {
				p.next()
				ty, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{To: ty, X: x, Line: t.line}, nil
			}
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.at("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{Arr: x, Idx: idx, Line: t.line}
		case p.at("."):
			p.next()
			id := p.cur()
			if id.kind != tIdent || id.text != "length" {
				return nil, p.errf(id, "only .length is supported")
			}
			p.next()
			x = &Length{Arr: x, Line: t.line}
		case p.at("++"), p.at("--"):
			p.next()
			x = &IncDec{X: x, Op: t.text, Post: true, Line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tIntLit:
		p.next()
		return &IntLit{V: t.ival}, nil
	case tCharLit:
		p.next()
		return &IntLit{V: t.ival, Char: true}, nil
	case tLongLit:
		p.next()
		return &IntLit{V: t.ival, Long: true}, nil
	case tFloatLit:
		p.next()
		return &FloatLit{V: t.fval}, nil
	case tIdent:
		p.next()
		if p.at("(") {
			p.next()
			c := &Call{Name: t.text, Line: t.line}
			for !p.at(")") {
				if len(c.Args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
			}
			p.next()
			return c, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	case tKeyword:
		switch t.text {
		case "true":
			p.next()
			return &BoolLit{V: true}, nil
		case "false":
			p.next()
			return &BoolLit{V: false}, nil
		case "new":
			p.next()
			elem, err := p.parseElemType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("["); err != nil {
				return nil, err
			}
			n, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			return &NewArray{Elem: elem, Len: n, Line: t.line}, nil
		}
	case tPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf(t, "unexpected token %q", t.text)
}

// parseElemType parses the element type of a new-expression (no [] suffix).
func (p *parser) parseElemType() (*Type, error) {
	t := p.cur()
	base := baseTypes[t.text]
	if t.kind != tKeyword || base == nil || base == tyVoid {
		return nil, p.errf(t, "expected element type, found %q", t.text)
	}
	p.next()
	return base, nil
}
