package minijava

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
)

func TestGlobalsOfEveryType(t *testing.T) {
	out := compileAndRun(t, `
		static int gi = -7;
		static long gl = 10000000000L;
		static double gd = 2.25;
		static boolean gb = true;
		static short gs = -12345;
		static char gc = 'Z';
		static byte gy = -100;
		void main() {
			print(gi); print(gl); print(gd); print(gb ? 1 : 0);
			print(gs); print(gc); print(gy);
			gi = gi * -3;
			gl += gi;
			gd = gd * 2.0;
			gb = !gb;
			gs = (short) (gs - 1);
			gc = (char) (gc + 1);
			gy = (byte) (gy - 100);
			print(gi); print(gl); print(gd); print(gb ? 1 : 0);
			print(gs); print(gc); print(gy);
		}`)
	want := "-7\n10000000000\n2.25\n1\n-12345\n90\n-100\n" +
		"21\n10000000021\n4.5\n0\n-12346\n91\n56\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestTernaryWithMixedTypes(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			int i = 5;
			long l = i > 3 ? 100L : i;      // int arm widens
			print(l);
			double d = i < 3 ? 1.5 : i;     // int arm converts
			print(d);
			print(i == 5 ? i * 2 : i / 0);  // untaken arm must not trap
		}`)
	want := "100\n5\n10\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestDoWhileAndBreakInNested(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			int found = -1;
			for (int i = 0; i < 5; i++) {
				int j = 0;
				do {
					if (i * 10 + j == 23) { found = i * 100 + j; break; }
					j++;
				} while (j < 10);
				if (found >= 0) { break; }
			}
			print(found);
		}`)
	if out != "203\n" {
		t.Fatalf("got %q", out)
	}
}

func TestLongShiftAndUnsigned(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			long x = -1L;
			print(x >>> 32);
			print(x >> 32);
			print(x << 62);
			long y = 0x8000000000000000L;
			print(y >> 63);
			print(y >>> 63);
			int i = -1;
			print(i >>> 28);   // int unsigned shift
		}`)
	want := "4294967295\n-1\n-4611686018427387904\n-1\n1\n15\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestModuloAndDivisionSigns(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			print(7 / 2); print(7 % 2);
			print(-7 / 2); print(-7 % 2);
			print(7 / -2); print(7 % -2);
			print(-7 / -2); print(-7 % -2);
			long a = -9000000000L;
			print(a / 7L); print(a % 7L);
		}`)
	want := "3\n1\n-3\n-1\n-3\n1\n3\n-1\n-1285714285\n-5\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

// TestDeepCallChainUnderOptimization: recursion prevents inlining; calling
// convention extensions must survive where needed.
func TestDeepCallChainUnderOptimization(t *testing.T) {
	src := `
		int weird(int n, int acc) {
			if (n == 0) { return acc; }
			return weird(n - 1, acc * 31 + n);
		}
		void main() {
			print(weird(40, 7));
		}`
	cu, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []jit.Variant{jit.Baseline, jit.All} {
		res, err := jit.Compile(cu.Prog, jit.Options{Variant: v, Machine: ir.IA64, GeneralOpts: true})
		if err != nil {
			t.Fatal(err)
		}
		out, err := jit.Execute(res, "main")
		if err != nil || out.Output != ref.Output {
			t.Fatalf("%v: %v / %q vs %q", v, err, out.Output, ref.Output)
		}
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	out := compileAndRun(t, `
		int f(int x) {
			if (x > 0) { return 1; } else { return -1; }
		}
		void main() {
			print(f(5));
			print(f(-5));
		}`)
	if out != "1\n-1\n" {
		t.Fatalf("got %q", out)
	}
}

func TestBooleanArrays(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			boolean[] sieve = new boolean[30];
			for (int i = 2; i < 30; i++) {
				if (!sieve[i]) {
					for (int j = i + i; j < 30; j += i) { sieve[j] = true; }
				}
			}
			int count = 0;
			for (int i = 2; i < 30; i++) { if (!sieve[i]) { count++; } }
			print(count);
		}`)
	if out != "10\n" {
		t.Fatalf("primes below 30: got %q", out)
	}
}
