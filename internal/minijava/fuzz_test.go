package minijava

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/progen"
)

// generate delegates to the shared coverage-seeking generator in
// internal/progen, which stresses narrow widths far harder than the local
// generator it replaced: byte/short/char helper parameters and returns,
// short locals and loop counters, chained casts, narrow array index
// arithmetic and long/double checksum consumers.
func generate(seed int64) string {
	return progen.MiniJava(seed, progen.Config{})
}

func execLimited(res *jit.Result) (*interp.Result, error) {
	return interp.Run(res.Prog, "main", interp.Options{
		Mode:         interp.Mode64,
		Machine:      res.Options.Machine,
		MaxSteps:     60_000_000,
		CheckDummies: true,
	})
}

// FuzzMiniJava is the native fuzz entry (CI runs it as a short smoke job):
// whatever source the fuzzer mutates, the frontend must reject it cleanly or
// the guarded pipeline must compile it with zero fallbacks and reproduce the
// 32-bit reference behaviour. Panics anywhere surface as fuzz crashes.
func FuzzMiniJava(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(generate(seed))
	}
	f.Add("void main() { print(1); }")
	f.Add("static long g = -1; void main() { int x = (int) g; print(x); }")
	// Array indexing through a narrow value: the address computation needs
	// the index extension, so elimination must take the just_extended path
	// rather than deleting it.
	f.Add(`void main() {
	int[] a = new int[32];
	byte i = (byte) 200;
	a[i & 31] = 7;
	short s = (short) 70000;
	a[(s ^ 70000) & 31] = a[i & 31] + 1;
	print(a[8]); print(a[4]);
}`)
	// Chained same-register extensions: (short)(byte)x lowers to two
	// back-to-back ext instructions on one register; the second must not be
	// considered redundant with the first in either direction.
	f.Add(`void main() {
	int x = 70000;
	short s = (short)(byte) x;
	int y = (byte)(short) x;
	int z = (char)(byte) x;
	print(s); print(y); print(z);
}`)
	// Narrow loop counters: the increment is a 16-bit add whose result
	// feeds the back-edge compare, keeping a loop-carried truncation live
	// across iterations.
	f.Add(`void main() {
	int cs = 0;
	for (short s = 0; s < 300; s++) { cs = cs * 31 + s; }
	short t = 32760;
	for (; t < 32767; t++) { cs = cs + t; }
	print(cs); print(t);
}`)
	f.Fuzz(func(t *testing.T, src string) {
		cu, err := Compile(src)
		if err != nil {
			return // rejected cleanly: that is the contract for bad input
		}
		ref, refErr := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32, MaxSteps: 2_000_000})
		if refErr != nil {
			return // non-terminating or trapping programs prove nothing here
		}
		res, err := jit.Compile(cu.Prog, jit.Options{
			Variant: jit.All, Machine: ir.IA64, GeneralOpts: true, Checked: true,
		})
		if err != nil {
			t.Fatalf("guarded compile failed: %v\n%s", err, src)
		}
		for _, fb := range res.Fallbacks {
			t.Errorf("guarded pipeline fell back on valid input: %v\n%s", fb, src)
		}
		out, outErr := interp.Run(res.Prog, "main", interp.Options{
			Mode: interp.Mode64, Machine: ir.IA64, MaxSteps: 4_000_000, CheckDummies: true,
		})
		if outErr != nil {
			t.Fatalf("optimized run trapped, reference did not: %v\n%s", outErr, src)
		}
		if out.Output != ref.Output {
			t.Fatalf("output mismatch\nref %q\ngot %q\n%s", ref.Output, out.Output, src)
		}
	})
}

// TestFuzzVariantsAgree cross-checks hundreds of random programs: every
// variant on both machine models must reproduce the 32-bit reference
// behaviour (output and trap/no-trap) and never trip the interpreter's
// wild-address or dummy-assertion detectors.
func TestFuzzVariantsAgree(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	variants := []jit.Variant{
		jit.Baseline, jit.GenUse, jit.FirstAlgorithm, jit.BasicUDDU,
		jit.InsertOrder, jit.Array, jit.AllPDE, jit.All,
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src := generate(seed)
		cu, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d: frontend rejected its own program: %v\n%s", seed, err, src)
		}
		ref, refErr := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32, MaxSteps: 30_000_000})
		if refErr != nil && ref.Steps >= 30_000_000 {
			t.Fatalf("seed %d: generated a non-terminating program\n%s", seed, src)
		}
		for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
			for _, v := range variants {
				// Exercise the pipeline with and without the general
				// optimization layer (alternating to bound cost).
				gen := seed%2 == 0 || v == jit.All
				res, err := jit.Compile(cu.Prog, jit.Options{
					Variant: v, Machine: mach, GeneralOpts: gen, Verify: true,
				})
				if err != nil {
					t.Fatalf("seed %d %v/%v: compile: %v\n%s", seed, mach, v, err, src)
				}
				out, outErr := execLimited(res)
				if (outErr != nil) != (refErr != nil) {
					t.Fatalf("seed %d %v/%v: trap mismatch: ref=%v opt=%v\n%s",
						seed, mach, v, refErr, outErr, src)
				}
				if out.Output != ref.Output {
					t.Fatalf("seed %d %v/%v: output mismatch\nref %q\ngot %q\n%s",
						seed, mach, v, ref.Output, out.Output, src)
				}
			}
		}
	}
}
