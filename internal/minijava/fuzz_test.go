package minijava

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
)

// progGen generates random but terminating MiniJava programs exercising the
// whole surface: mixed-width arithmetic, casts, narrow arrays, bounded loops
// and array subscript shapes. Programs are deterministic per seed.
type progGen struct {
	r     *rand.Rand
	sb    strings.Builder
	depth int
	vars  []string // assignable int locals in scope
	ro    []string // read-only names (loop counters): never assigned, so loops terminate
}

func (g *progGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprint(g.r.Int31n(200) - 100)
		case 1:
			return fmt.Sprint(g.r.Int31()) // large constants stress wrapping
		case 2:
			all := append(append([]string{}, g.vars...), g.ro...)
			if len(all) > 0 {
				return g.pick(all)
			}
			return "7"
		case 3:
			return fmt.Sprintf("a[%s & 31]", g.smallExpr())
		default:
			return fmt.Sprintf("(b[%s & 63])", g.smallExpr())
		}
	}
	op := g.pick([]string{"+", "-", "*", "&", "|", "^", "<<", ">>", ">>>"})
	x := g.intExpr(depth - 1)
	y := g.intExpr(depth - 1)
	if op == "<<" || op == ">>" || op == ">>>" {
		y = fmt.Sprintf("(%s & 7)", y)
	}
	e := fmt.Sprintf("(%s %s %s)", x, op, y)
	switch g.r.Intn(8) {
	case 0:
		return "(byte)" + e
	case 1:
		return "(short)" + e
	case 2:
		return "(char)" + e
	case 3:
		return "(int)((long)" + e + " * 3L)"
	}
	return e
}

func (g *progGen) smallExpr() string {
	all := append(append([]string{}, g.vars...), g.ro...)
	if len(all) > 0 && g.r.Intn(2) == 0 {
		return g.pick(all)
	}
	return fmt.Sprint(g.r.Int31n(64))
}

func (g *progGen) stmt(depth int) {
	switch g.r.Intn(7) {
	case 0: // new local
		name := fmt.Sprintf("v%d", len(g.vars))
		fmt.Fprintf(&g.sb, "int %s = %s;\n", name, g.intExpr(2))
		g.vars = append(g.vars, name)
	case 1: // assignment / compound
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		v := g.pick(g.vars)
		op := g.pick([]string{"=", "+=", "-=", "*=", "&=", "|=", "^="})
		fmt.Fprintf(&g.sb, "%s %s %s;\n", v, op, g.intExpr(2))
	case 2: // array store
		fmt.Fprintf(&g.sb, "a[%s & 31] = %s;\n", g.smallExpr(), g.intExpr(2))
	case 3: // byte array store (truncating)
		fmt.Fprintf(&g.sb, "b[%s & 63] = (byte)(%s);\n", g.smallExpr(), g.intExpr(1))
	case 4: // bounded loop
		if depth <= 0 {
			g.stmt(0)
			return
		}
		idx := fmt.Sprintf("k%d", g.depth)
		g.depth++
		n := g.r.Intn(2)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "for (int %s = 0; %s < %d; %s++) {\n", idx, idx, 3+g.r.Intn(12), idx)
		} else {
			fmt.Fprintf(&g.sb, "for (int %s = %d; %s > 0; %s--) {\n", idx, 3+g.r.Intn(12), idx, idx)
		}
		savedRO := len(g.ro)
		savedVars := len(g.vars)
		g.ro = append(g.ro, idx)
		for s := 0; s <= n; s++ {
			g.stmt(depth - 1)
		}
		g.ro = g.ro[:savedRO]
		g.vars = g.vars[:savedVars] // block-scoped declarations
		g.sb.WriteString("}\n")
	case 5: // conditional
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		fmt.Fprintf(&g.sb, "if (%s %s %s) { %s = %s; }\n",
			g.pick(g.vars), g.pick([]string{"<", "<=", ">", ">=", "==", "!="}),
			g.intExpr(1), g.pick(g.vars), g.intExpr(1))
	case 6: // print
		if len(g.vars) > 0 {
			fmt.Fprintf(&g.sb, "print(%s);\n", g.pick(g.vars))
		} else {
			fmt.Fprintf(&g.sb, "print(%s);\n", g.intExpr(1))
		}
	}
}

func generate(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.sb.WriteString("static int seed = ")
	fmt.Fprintf(&g.sb, "%d;\n", g.r.Int31())
	g.sb.WriteString(`int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }
void main() {
	int[] a = new int[32];
	byte[] b = new byte[64];
	for (int i = 0; i < 32; i++) { a[i] = rnd() - 32768; }
	for (int i = 0; i < 64; i++) { b[i] = (byte) rnd(); }
`)
	nstmt := 4 + g.r.Intn(10)
	for s := 0; s < nstmt; s++ {
		g.stmt(2)
	}
	// Deterministic epilogue: observable checksums through full-register
	// consumers.
	g.sb.WriteString(`
	int cs = 0;
	for (int i = 0; i < 32; i++) { cs = cs * 31 + a[i]; }
	for (int i = 0; i < 64; i++) { cs = cs * 31 + b[i]; }
	print(cs);
	long lcs = cs;
	print(lcs * 2654435761L);
	double d = cs;
	print(d * 0.125);
}
`)
	return g.sb.String()
}

func execLimited(res *jit.Result) (*interp.Result, error) {
	return interp.Run(res.Prog, "main", interp.Options{
		Mode:         interp.Mode64,
		Machine:      res.Options.Machine,
		MaxSteps:     60_000_000,
		CheckDummies: true,
	})
}

// FuzzMiniJava is the native fuzz entry (CI runs it as a short smoke job):
// whatever source the fuzzer mutates, the frontend must reject it cleanly or
// the guarded pipeline must compile it with zero fallbacks and reproduce the
// 32-bit reference behaviour. Panics anywhere surface as fuzz crashes.
func FuzzMiniJava(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(generate(seed))
	}
	f.Add("void main() { print(1); }")
	f.Add("static long g = -1; void main() { int x = (int) g; print(x); }")
	f.Fuzz(func(t *testing.T, src string) {
		cu, err := Compile(src)
		if err != nil {
			return // rejected cleanly: that is the contract for bad input
		}
		ref, refErr := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32, MaxSteps: 2_000_000})
		if refErr != nil {
			return // non-terminating or trapping programs prove nothing here
		}
		res, err := jit.Compile(cu.Prog, jit.Options{
			Variant: jit.All, Machine: ir.IA64, GeneralOpts: true, Checked: true,
		})
		if err != nil {
			t.Fatalf("guarded compile failed: %v\n%s", err, src)
		}
		for _, fb := range res.Fallbacks {
			t.Errorf("guarded pipeline fell back on valid input: %v\n%s", fb, src)
		}
		out, outErr := interp.Run(res.Prog, "main", interp.Options{
			Mode: interp.Mode64, Machine: ir.IA64, MaxSteps: 4_000_000, CheckDummies: true,
		})
		if outErr != nil {
			t.Fatalf("optimized run trapped, reference did not: %v\n%s", outErr, src)
		}
		if out.Output != ref.Output {
			t.Fatalf("output mismatch\nref %q\ngot %q\n%s", ref.Output, out.Output, src)
		}
	})
}

// TestFuzzVariantsAgree cross-checks hundreds of random programs: every
// variant on both machine models must reproduce the 32-bit reference
// behaviour (output and trap/no-trap) and never trip the interpreter's
// wild-address or dummy-assertion detectors.
func TestFuzzVariantsAgree(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	variants := []jit.Variant{
		jit.Baseline, jit.GenUse, jit.FirstAlgorithm, jit.BasicUDDU,
		jit.InsertOrder, jit.Array, jit.AllPDE, jit.All,
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src := generate(seed)
		cu, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d: frontend rejected its own program: %v\n%s", seed, err, src)
		}
		ref, refErr := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32, MaxSteps: 30_000_000})
		if refErr != nil && ref.Steps >= 30_000_000 {
			t.Fatalf("seed %d: generated a non-terminating program\n%s", seed, src)
		}
		for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
			for _, v := range variants {
				// Exercise the pipeline with and without the general
				// optimization layer (alternating to bound cost).
				gen := seed%2 == 0 || v == jit.All
				res, err := jit.Compile(cu.Prog, jit.Options{
					Variant: v, Machine: mach, GeneralOpts: gen, Verify: true,
				})
				if err != nil {
					t.Fatalf("seed %d %v/%v: compile: %v\n%s", seed, mach, v, err, src)
				}
				out, outErr := execLimited(res)
				if (outErr != nil) != (refErr != nil) {
					t.Fatalf("seed %d %v/%v: trap mismatch: ref=%v opt=%v\n%s",
						seed, mach, v, refErr, outErr, src)
				}
				if out.Output != ref.Output {
					t.Fatalf("seed %d %v/%v: output mismatch\nref %q\ngot %q\n%s",
						seed, mach, v, ref.Output, out.Output, src)
				}
			}
		}
	}
}
