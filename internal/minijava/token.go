// Package minijava implements a small Java-flavoured language — the
// frontend substrate standing in for the paper's Java programs. It has
// exactly the properties the paper's array-subscript theorems rely on:
// arrays throw on negative indices, the maximum array length is 0x7fffffff,
// int is 32 bits wide and long 64, and the sub-int types (byte, short, char)
// exist in memory and widen to int on load.
//
// The pipeline is lexer → parser → type-directed lowering to the signext IR
// in its 32-bit-architecture form (no explicit extensions except those
// denoting casts).
package minijava

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tIntLit
	tLongLit
	tFloatLit
	tCharLit
	tPunct // operators and punctuation
	tKeyword
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

var keywords = map[string]bool{
	"int": true, "long": true, "double": true, "boolean": true, "byte": true,
	"short": true, "char": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "do": true, "return": true, "break": true,
	"continue": true, "new": true, "true": true, "false": true, "static": true,
}

// Error is a positioned frontend error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// three-character then two-character then one-character operators, longest
// match first.
var ops3 = []string{">>>=", "<<=", ">>=", ">>>"}
var ops2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
	"&=", "|=", "^=", "<<", ">>", "++", "--",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tEOF, line: l.line, col: l.col})
			return l.toks, nil
		}
		start, line, col := l.pos, l.line, l.col
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.advance()
			}
			text := l.src[start:l.pos]
			k := tIdent
			if keywords[text] {
				k = tKeyword
			}
			l.toks = append(l.toks, token{kind: k, text: text, line: line, col: col})
		case c >= '0' && c <= '9':
			if err := l.lexNumber(line, col); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexChar(line, col); err != nil {
				return nil, err
			}
		default:
			matched := ""
			rest := l.src[l.pos:]
			for _, op := range ops3 {
				if strings.HasPrefix(rest, op) {
					matched = op
					break
				}
			}
			if matched == "" {
				for _, op := range ops2 {
					if strings.HasPrefix(rest, op) {
						matched = op
						break
					}
				}
			}
			if matched == "" {
				if strings.ContainsRune("+-*/%&|^!~<>=(){}[];,.?:", rune(c)) {
					matched = string(c)
				} else {
					return nil, &Error{line, col, fmt.Sprintf("unexpected character %q", c)}
				}
			}
			for range matched {
				l.advance()
			}
			l.toks = append(l.toks, token{kind: tPunct, text: matched, line: line, col: col})
		}
	}
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.advance()
			}
			if l.pos+1 < len(l.src) {
				l.advance()
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber(line, col int) error {
	start := l.pos
	isHex := false
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		isHex = true
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.advance()
		}
		// Fraction / exponent => double literal.
		isFloat := false
		if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.advance()
			}
		}
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			save := l.pos
			l.advance()
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.advance()
			}
			if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				isFloat = true
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.advance()
				}
			} else {
				l.pos = save
			}
		}
		if isFloat {
			var f float64
			if _, err := fmt.Sscanf(l.src[start:l.pos], "%g", &f); err != nil {
				return &Error{line, col, "bad float literal"}
			}
			l.toks = append(l.toks, token{kind: tFloatLit, fval: f, line: line, col: col})
			return nil
		}
	}
	text := l.src[start:l.pos]
	long := false
	if l.pos < len(l.src) && (l.src[l.pos] == 'L' || l.src[l.pos] == 'l') {
		long = true
		l.advance()
	}
	var v uint64
	if isHex {
		for _, c := range []byte(text[2:]) {
			v = v*16 + uint64(hexVal(c))
		}
	} else {
		for _, c := range []byte(text) {
			v = v*10 + uint64(c-'0')
		}
	}
	k := tIntLit
	if long {
		k = tLongLit
	}
	l.toks = append(l.toks, token{kind: k, ival: int64(v), line: line, col: col})
	return nil
}

func (l *lexer) lexChar(line, col int) error {
	l.advance() // opening quote
	if l.pos >= len(l.src) {
		return &Error{line, col, "unterminated char literal"}
	}
	var v int64
	if l.src[l.pos] == '\\' {
		l.advance()
		switch l.src[l.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '0':
			v = 0
		case '\'':
			v = '\''
		case '\\':
			v = '\\'
		default:
			return &Error{line, col, "bad escape in char literal"}
		}
		l.advance()
	} else {
		v = int64(l.src[l.pos])
		l.advance()
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return &Error{line, col, "unterminated char literal"}
	}
	l.advance()
	l.toks = append(l.toks, token{kind: tCharLit, ival: v, line: line, col: col})
	return nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func hexVal(c byte) int {
	switch {
	case c <= '9':
		return int(c - '0')
	case c >= 'a':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
