package minijava

// Type is a MiniJava type.
type Type struct {
	K    TypeKind
	Elem *Type // for arrays
}

// TypeKind enumerates the base types.
type TypeKind uint8

// MiniJava type kinds.
const (
	TVoid TypeKind = iota
	TBool
	TByte
	TShort
	TChar
	TInt
	TLong
	TDouble
	TArray
)

var typeNames = [...]string{"void", "boolean", "byte", "short", "char", "int", "long", "double", "array"}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	if t.K == TArray {
		return t.Elem.String() + "[]"
	}
	return typeNames[t.K]
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.K != o.K {
		return false
	}
	if t.K == TArray {
		return t.Elem.Equal(o.Elem)
	}
	return true
}

// IsInteger reports whether the type is an integral scalar.
func (t *Type) IsInteger() bool {
	switch t.K {
	case TByte, TShort, TChar, TInt, TLong:
		return true
	}
	return false
}

// IsNumeric reports whether the type participates in arithmetic.
func (t *Type) IsNumeric() bool { return t.IsInteger() || t.K == TDouble }

var (
	tyVoid   = &Type{K: TVoid}
	tyBool   = &Type{K: TBool}
	tyByte   = &Type{K: TByte}
	tyShort  = &Type{K: TShort}
	tyChar   = &Type{K: TChar}
	tyInt    = &Type{K: TInt}
	tyLong   = &Type{K: TLong}
	tyDouble = &Type{K: TDouble}
)

// Program is a parsed compilation unit.
type ProgramAST struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl is a static scalar variable.
type GlobalDecl struct {
	Name string
	Type *Type
	Init Expr // optional constant initializer
	Line int
}

// FuncDecl is a static function.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []ParamDecl
	Body   *BlockStmt
	Line   int
}

// ParamDecl is one formal parameter.
type ParamDecl struct {
	Name string
	Type *Type
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Expr is an expression node.
type Expr interface{ expr() }

// Statements.
type (
	// BlockStmt is { ... }.
	BlockStmt struct{ Stmts []Stmt }
	// VarDecl declares a local, optionally initialized.
	VarDecl struct {
		Name string
		Type *Type
		Init Expr
		Line int
	}
	// IfStmt is if/else.
	IfStmt struct {
		Cond       Expr
		Then, Else Stmt
	}
	// WhileStmt is while (cond) body.
	WhileStmt struct {
		Cond Expr
		Body Stmt
	}
	// DoWhileStmt is do body while (cond);.
	DoWhileStmt struct {
		Body Stmt
		Cond Expr
	}
	// ForStmt is for (init; cond; post) body.
	ForStmt struct {
		Init, Post Stmt
		Cond       Expr
		Body       Stmt
	}
	// ReturnStmt returns an optional value.
	ReturnStmt struct {
		Value Expr
		Line  int
	}
	// ExprStmt evaluates an expression for effect.
	ExprStmt struct{ E Expr }
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Line int }
	// ContinueStmt restarts the innermost loop.
	ContinueStmt struct{ Line int }
)

func (*BlockStmt) stmt()    {}
func (*VarDecl) stmt()      {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expressions.
type (
	// IntLit is an integer literal (int unless Long; char literals carry
	// Char and type as char).
	IntLit struct {
		V    int64
		Long bool
		Char bool
	}
	// FloatLit is a double literal.
	FloatLit struct{ V float64 }
	// BoolLit is true/false.
	BoolLit struct{ V bool }
	// Ident references a local, parameter or global.
	Ident struct {
		Name string
		Line int
	}
	// Assign is lhs = rhs or a compound assignment (Op != "").
	Assign struct {
		LHS  Expr // Ident or Index
		Op   string
		RHS  Expr
		Line int
	}
	// IncDec is ++x/--x/x++/x-- (value semantics of the pre/post form).
	IncDec struct {
		X    Expr
		Op   string // "++" or "--"
		Post bool
		Line int
	}
	// Binary is a binary operator application.
	Binary struct {
		Op   string
		X, Y Expr
		Line int
	}
	// Unary is !x, ~x, -x.
	Unary struct {
		Op   string
		X    Expr
		Line int
	}
	// Cast is (type) x.
	Cast struct {
		To   *Type
		X    Expr
		Line int
	}
	// Index is a[i].
	Index struct {
		Arr, Idx Expr
		Line     int
	}
	// Length is a.length.
	Length struct {
		Arr  Expr
		Line int
	}
	// Call invokes a function or builtin.
	Call struct {
		Name string
		Args []Expr
		Line int
	}
	// NewArray is new T[n].
	NewArray struct {
		Elem *Type
		Len  Expr
		Line int
	}
	// Cond is c ? a : b.
	Cond struct {
		C, A, B Expr
		Line    int
	}
)

func (*IntLit) expr()   {}
func (*FloatLit) expr() {}
func (*BoolLit) expr()  {}
func (*Ident) expr()    {}
func (*Assign) expr()   {}
func (*IncDec) expr()   {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}
func (*Cast) expr()     {}
func (*Index) expr()    {}
func (*Length) expr()   {}
func (*Call) expr()     {}
func (*NewArray) expr() {}
func (*Cond) expr()     {}
