package minijava

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
)

// compileAndRun lowers src and executes it under the 32-bit reference
// semantics, returning the output.
func compileAndRun(t *testing.T, src string) string {
	t.Helper()
	cu, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, res.Output)
	}
	return res.Output
}

func TestArithmetic(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			int a = 7; int b = 3;
			print(a + b); print(a - b); print(a * b); print(a / b); print(a % b);
			print(a & b); print(a | b); print(a ^ b);
			print(a << b); print(a >> 1); print(-a); print(~a);
			print(-7 >> 1); print(-7 >>> 28);
		}`)
	want := "10\n4\n21\n2\n1\n3\n7\n4\n56\n3\n-7\n-8\n-4\n15\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestIntWrapAround(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			int x = 2147483647;
			x = x + 1;
			print(x);
			int y = -2147483647 - 1;
			print(y);
			print(y - 1);
			long l = 2147483647L + 1L;
			print(l);
		}`)
	want := "-2147483648\n-2147483648\n2147483647\n2147483648\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestLongAndMixed(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			long l = 1L << 40;
			int i = 3;
			long m = l + i;
			print(m);
			print((int) m);
			long big = 123456789L * 1000L;
			print(big);
			print((int) big);
		}`)
	want := "1099511627779\n3\n123456789000\n-1097262584\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	out := compileAndRun(t, `
		int collatz(int n) {
			int steps = 0;
			while (n != 1) {
				if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
				steps++;
			}
			return steps;
		}
		void main() {
			print(collatz(27));
			int s = 0;
			for (int i = 0; i < 10; i++) {
				if (i == 3) { continue; }
				if (i == 8) { break; }
				s += i;
			}
			print(s);
			int j = 0;
			do { j += 5; } while (j < 12);
			print(j);
			boolean b = j > 10 && j < 20;
			print(b ? 1 : 0);
			print(!b ? 1 : 0);
		}`)
	want := "111\n25\n15\n1\n0\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestArraysAndNarrowTypes(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			byte[] b = new byte[4];
			b[0] = 200;          // stores 200, loads back as -56
			print(b[0]);
			short[] s = new short[2];
			s[0] = 40000;
			print(s[0]);
			char[] c = new char[2];
			c[0] = (char) 65535;
			print(c[0]);         // unsigned
			int[] a = new int[5];
			for (int i = 0; i < a.length; i++) { a[i] = i * i; }
			int t = 0;
			for (int i = a.length - 1; i >= 0; i--) { t += a[i]; }
			print(t);
			long[] l = new long[2];
			l[1] = 1L << 33;
			print(l[1]);
			double[] d = new double[2];
			d[0] = 2.5;
			print(d[0] * 4.0);
		}`)
	want := "-56\n-25536\n65535\n30\n8589934592\n10\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestCastsAndDoubles(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			int i = 300;
			byte b = (byte) i;
			print(b);
			short sh = (short) 70000;
			print(sh);
			double d = i;
			print(d / 8.0);
			print((int) 3.99);
			print((int) -3.99);
			print((long) 1.5e10);
			print(sqrt(144.0));
			print(pow(2.0, 10.0));
		}`)
	want := "44\n4464\n37.5\n3\n-3\n15000000000\n12\n1024\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestGlobalsAndRecursion(t *testing.T) {
	out := compileAndRun(t, `
		static int counter = 10;
		static long acc;
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		void main() {
			print(fib(15));
			counter = counter + 5;
			print(counter);
			acc = counter;
			acc *= 1000000L;
			print(acc);
		}`)
	want := "610\n15\n15000000\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestExceptionOnNegativeIndex(t *testing.T) {
	cu, err := Compile(`
		void main() {
			int[] a = new int[3];
			int i = -1;
			print(a[i]);
		}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err == nil {
		t.Fatal("negative index must trap (the language fact Theorems 1-4 rely on)")
	}
}

// TestAllVariantsAgree compiles a mixed workload under every Table 1/2
// variant on both machine models and checks output equivalence against the
// 32-bit reference — the end-to-end soundness property of the system.
func TestAllVariantsAgree(t *testing.T) {
	src := `
		static int seed = 12345;
		int rnd() {
			seed = seed * 1103515245 + 12345;
			return (seed >> 4) & 262143;
		}
		int checksumDown(int[] a, int start) {
			int t = 0;
			int i = a.length;
			do {
				i = i - 1;
				int j = a[i];
				j = j & 0x0fffffff;
				t += j;
			} while (i > start);
			return t;
		}
		void main() {
			int[] a = new int[500];
			for (int i = 0; i < a.length; i++) { a[i] = rnd() - 100000; }
			print(checksumDown(a, 0));
			long l = 0;
			double d = 0.0;
			for (int i = 0; i < a.length; i++) {
				l += a[i];
				d = d + a[i];
			}
			print(l);
			print(d);
			byte[] bytes = new byte[64];
			for (int i = 0; i < 64; i++) { bytes[i] = (byte)(rnd()); }
			int bsum = 0;
			for (int i = 63; i >= 0; i--) { bsum += bytes[i]; }
			print(bsum);
		}`
	cu, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	var prevExt int64 = -1
	for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
		for _, v := range jit.Variants {
			res, err := jit.Compile(cu.Prog, jit.Options{
				Variant: v, Machine: mach, GeneralOpts: true, Verify: true,
			})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", mach, v, err)
			}
			out, err := jit.Execute(res, "main")
			if err != nil {
				t.Fatalf("%s/%s: run: %v\noutput:\n%s", mach, v, err, out.Output)
			}
			if out.Output != ref.Output {
				t.Errorf("%s/%s: wrong output\nwant %q\ngot  %q", mach, v, ref.Output, out.Output)
			}
			if mach == ir.IA64 && v == jit.Baseline {
				prevExt = out.Ext32()
			}
			if mach == ir.IA64 && v == jit.All {
				if out.Ext32()*2 > prevExt {
					t.Errorf("new algorithm removed too few dynamic extensions: baseline=%d all=%d",
						prevExt, out.Ext32())
				}
			}
		}
	}
}
