package minijava

import (
	"fmt"

	"signext/internal/ir"
)

// CompileUnit is the result of lowering: the IR program in 32-bit form plus
// the global-cell layout.
type CompileUnit struct {
	Prog        *ir.Program
	GlobalCells map[string]int
}

// Compile parses and lowers MiniJava source into the signext IR.
func Compile(src string) (*CompileUnit, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(ast)
}

// floatBuiltins maps builtin math functions to their arity.
var floatBuiltins = map[string]int{
	"sqrt": 1, "sin": 1, "cos": 1, "atan": 1, "exp": 1, "log": 1,
	"fabs": 1, "floor": 1, "pow": 2,
}

type global struct {
	cell int
	ty   *Type
	init Expr
}

type local struct {
	reg ir.Reg
	ty  *Type
}

type lowerer struct {
	ast     *ProgramAST
	prog    *ir.Program
	globals map[string]*global
	funcs   map[string]*FuncDecl
}

// Lower translates a parsed program.
func Lower(ast *ProgramAST) (*CompileUnit, error) {
	lo := &lowerer{
		ast:     ast,
		prog:    ir.NewProgram(),
		globals: map[string]*global{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range ast.Globals {
		if g.Type.K == TArray || g.Type.K == TVoid {
			return nil, &Error{g.Line, 1, "globals must be scalar"}
		}
		if _, dup := lo.globals[g.Name]; dup {
			return nil, &Error{g.Line, 1, "duplicate global " + g.Name}
		}
		lo.globals[g.Name] = &global{cell: len(lo.globals), ty: g.Type, init: g.Init}
	}
	lo.prog.NGlobals = len(lo.globals)
	for _, f := range ast.Funcs {
		if _, dup := lo.funcs[f.Name]; dup {
			return nil, &Error{f.Line, 1, "duplicate function " + f.Name}
		}
		lo.funcs[f.Name] = f
	}
	if lo.funcs["main"] == nil {
		return nil, &Error{1, 1, "no main function"}
	}
	for _, f := range ast.Funcs {
		if err := lo.lowerFunc(f); err != nil {
			return nil, err
		}
	}
	cells := map[string]int{}
	for name, g := range lo.globals {
		cells[name] = g.cell
	}
	return &CompileUnit{Prog: lo.prog, GlobalCells: cells}, nil
}

// value is a typed IR register.
type value struct {
	reg ir.Reg
	ty  *Type
}

type loopCtx struct {
	brk, cont *ir.Block
}

type fnLowerer struct {
	*lowerer
	decl   *FuncDecl
	b      *ir.Builder
	scopes []map[string]local
	loops  []loopCtx
}

func irParam(t *Type) ir.Param {
	switch t.K {
	case TArray:
		return ir.Param{Ref: true}
	case TDouble:
		return ir.Param{Float: true, W: ir.W64}
	case TLong:
		return ir.Param{W: ir.W64}
	default:
		return ir.Param{W: ir.W32}
	}
}

func (lo *lowerer) lowerFunc(f *FuncDecl) error {
	params := make([]ir.Param, len(f.Params))
	for k, p := range f.Params {
		params[k] = irParam(p.Type)
	}
	b := ir.NewFunc(f.Name, params...)
	switch f.Ret.K {
	case TVoid:
	case TDouble:
		b.Fn.RetF = true
	case TLong:
		b.Fn.RetW = ir.W64
	default:
		b.Fn.RetW = ir.W32
	}
	fl := &fnLowerer{lowerer: lo, decl: f, b: b}
	fl.pushScope()
	for k, p := range f.Params {
		if err := fl.declare(p.Name, local{ir.Reg(k), p.Type}, f.Line); err != nil {
			return err
		}
	}
	// Global initializers run at the top of main.
	if f.Name == "main" {
		for _, gd := range lo.ast.Globals {
			g := lo.globals[gd.Name]
			if gd.Init == nil {
				continue
			}
			v, err := fl.eval(gd.Init)
			if err != nil {
				return err
			}
			v, err = fl.convertOrConstNarrow(v, g.ty, gd.Init, gd.Line)
			if err != nil {
				return err
			}
			fl.storeGlobal(g, v)
		}
	}
	if err := fl.lowerBlock(f.Body); err != nil {
		return err
	}
	if fl.b.Block() != nil {
		if f.Ret.K == TVoid {
			fl.b.Ret(ir.NoReg)
		} else {
			// Control may fall off a non-void function only on dead paths;
			// trap if it ever actually happens.
			t := fl.b.Fn.NewInstr(ir.OpTrap)
			t.Blk = fl.b.Block()
			fl.b.Block().Instrs = append(fl.b.Block().Instrs, t)
			fl.b.SetBlock(nil)
		}
	}
	lo.prog.AddFunc(b.Fn)
	return b.Fn.Verify()
}

func (f *fnLowerer) pushScope() { f.scopes = append(f.scopes, map[string]local{}) }
func (f *fnLowerer) popScope()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *fnLowerer) declare(name string, l local, line int) error {
	top := f.scopes[len(f.scopes)-1]
	if _, dup := top[name]; dup {
		return &Error{line, 1, "duplicate variable " + name}
	}
	top[name] = l
	return nil
}

func (f *fnLowerer) lookup(name string) (local, bool) {
	for k := len(f.scopes) - 1; k >= 0; k-- {
		if l, ok := f.scopes[k][name]; ok {
			return l, true
		}
	}
	return local{}, false
}

func (f *fnLowerer) errf(line int, format string, args ...interface{}) error {
	return &Error{line, 1, fmt.Sprintf("%s: %s", f.decl.Name, fmt.Sprintf(format, args...))}
}

// dead reports whether the current insertion point is unreachable.
func (f *fnLowerer) dead() bool { return f.b.Block() == nil }

func (f *fnLowerer) lowerBlock(b *BlockStmt) error {
	f.pushScope()
	defer f.popScope()
	for _, s := range b.Stmts {
		if f.dead() {
			break // unreachable code after return/break/continue
		}
		if err := f.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (f *fnLowerer) lowerStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return f.lowerBlock(st)
	case *VarDecl:
		if st.Type.K == TVoid {
			return f.errf(st.Line, "void variable")
		}
		reg := f.b.Fn.NewReg()
		if err := f.declare(st.Name, local{reg, st.Type}, st.Line); err != nil {
			return err
		}
		if st.Init != nil {
			return f.assignToReg(reg, st.Type, st.Init, st.Line)
		}
		// Definite zero initialization keeps the IR well defined.
		switch st.Type.K {
		case TDouble:
			z := f.b.FConst(0)
			ins := f.b.Op1To(ir.OpFMov, ir.W64, reg, z)
			_ = ins
		case TArray:
			// Leave nil; use-before-init traps in the interpreter.
			f.b.ConstTo(ir.W64, reg, 0)
		case TLong:
			f.b.ConstTo(ir.W64, reg, 0)
		default:
			f.b.ConstTo(ir.W32, reg, 0)
		}
		return nil
	case *IfStmt:
		then := f.b.Fn.NewBlock()
		var els *ir.Block
		join := f.b.Fn.NewBlock()
		if st.Else != nil {
			els = f.b.Fn.NewBlock()
		} else {
			els = join
		}
		if err := f.genCond(st.Cond, then, els); err != nil {
			return err
		}
		f.b.SetBlock(then)
		if err := f.lowerStmt(st.Then); err != nil {
			return err
		}
		if !f.dead() {
			f.b.Jmp(join)
		}
		if st.Else != nil {
			f.b.SetBlock(els)
			if err := f.lowerStmt(st.Else); err != nil {
				return err
			}
			if !f.dead() {
				f.b.Jmp(join)
			}
		}
		if len(join.Preds) == 0 {
			// Both arms returned; keep the join block valid but unreachable.
			f.b.SetBlock(join)
			t := f.b.Fn.NewInstr(ir.OpTrap)
			t.Blk = join
			join.Instrs = append(join.Instrs, t)
			f.b.SetBlock(nil)
			return nil
		}
		f.b.SetBlock(join)
		return nil
	case *WhileStmt:
		head := f.b.Fn.NewBlock()
		body := f.b.Fn.NewBlock()
		exit := f.b.Fn.NewBlock()
		f.b.Jmp(head)
		f.b.SetBlock(head)
		if err := f.genCond(st.Cond, body, exit); err != nil {
			return err
		}
		f.loops = append(f.loops, loopCtx{exit, head})
		f.b.SetBlock(body)
		if err := f.lowerStmt(st.Body); err != nil {
			return err
		}
		if !f.dead() {
			f.b.Jmp(head)
		}
		f.loops = f.loops[:len(f.loops)-1]
		f.b.SetBlock(exit)
		return nil
	case *DoWhileStmt:
		body := f.b.Fn.NewBlock()
		cond := f.b.Fn.NewBlock()
		exit := f.b.Fn.NewBlock()
		f.b.Jmp(body)
		f.loops = append(f.loops, loopCtx{exit, cond})
		f.b.SetBlock(body)
		if err := f.lowerStmt(st.Body); err != nil {
			return err
		}
		if !f.dead() {
			f.b.Jmp(cond)
		}
		f.loops = f.loops[:len(f.loops)-1]
		f.b.SetBlock(cond)
		if len(cond.Preds) == 0 {
			t := f.b.Fn.NewInstr(ir.OpTrap)
			t.Blk = cond
			cond.Instrs = append(cond.Instrs, t)
		} else if err := f.genCond(st.Cond, body, exit); err != nil {
			return err
		}
		f.b.SetBlock(exit)
		if len(exit.Preds) == 0 {
			t := f.b.Fn.NewInstr(ir.OpTrap)
			t.Blk = exit
			exit.Instrs = append(exit.Instrs, t)
			f.b.SetBlock(nil)
		}
		return nil
	case *ForStmt:
		f.pushScope()
		defer f.popScope()
		if st.Init != nil {
			if err := f.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		head := f.b.Fn.NewBlock()
		body := f.b.Fn.NewBlock()
		post := f.b.Fn.NewBlock()
		exit := f.b.Fn.NewBlock()
		f.b.Jmp(head)
		f.b.SetBlock(head)
		if st.Cond != nil {
			if err := f.genCond(st.Cond, body, exit); err != nil {
				return err
			}
		} else {
			f.b.Jmp(body)
		}
		f.loops = append(f.loops, loopCtx{exit, post})
		f.b.SetBlock(body)
		if err := f.lowerStmt(st.Body); err != nil {
			return err
		}
		if !f.dead() {
			f.b.Jmp(post)
		}
		f.loops = f.loops[:len(f.loops)-1]
		f.b.SetBlock(post)
		if len(post.Preds) == 0 {
			t := f.b.Fn.NewInstr(ir.OpTrap)
			t.Blk = post
			post.Instrs = append(post.Instrs, t)
			f.b.SetBlock(nil)
		} else {
			if st.Post != nil {
				if err := f.lowerStmt(st.Post); err != nil {
					return err
				}
			}
			f.b.Jmp(head)
		}
		f.b.SetBlock(exit)
		return nil
	case *ReturnStmt:
		want := f.decl.Ret
		if want.K == TVoid {
			if st.Value != nil {
				return f.errf(st.Line, "void function returns a value")
			}
			f.b.Ret(ir.NoReg)
			return nil
		}
		if st.Value == nil {
			return f.errf(st.Line, "missing return value")
		}
		v, err := f.eval(st.Value)
		if err != nil {
			return err
		}
		v, err = f.convert(v, want, st.Line)
		if err != nil {
			return err
		}
		f.b.Ret(v.reg)
		return nil
	case *BreakStmt:
		if len(f.loops) == 0 {
			return f.errf(st.Line, "break outside loop")
		}
		f.b.Jmp(f.loops[len(f.loops)-1].brk)
		return nil
	case *ContinueStmt:
		if len(f.loops) == 0 {
			return f.errf(st.Line, "continue outside loop")
		}
		f.b.Jmp(f.loops[len(f.loops)-1].cont)
		return nil
	case *ExprStmt:
		// Statement-level x++/x-- needs no old-value copy.
		if inc, ok := st.E.(*IncDec); ok && inc.Post {
			pre := *inc
			pre.Post = false
			_, err := f.lowerIncDec(&pre)
			return err
		}
		_, err := f.evalMaybeVoid(st.E)
		return err
	}
	return fmt.Errorf("minijava: unhandled statement %T", s)
}

// widthOf maps a scalar type to its IR width.
func widthOf(t *Type) ir.Width {
	switch t.K {
	case TBool, TByte:
		return ir.W8
	case TShort, TChar:
		return ir.W16
	case TLong:
		return ir.W64
	default:
		return ir.W32
	}
}

// opWidth is the computation width of a numeric type (int ops for everything
// below long).
func opWidth(t *Type) ir.Width {
	if t.K == TLong {
		return ir.W64
	}
	return ir.W32
}
