package minijava

import (
	"signext/internal/ir"
)

// eval lowers an expression, producing a typed value. Boolean expressions in
// value position are materialized as 0/1 ints of type boolean.
func (f *fnLowerer) eval(e Expr) (value, error) {
	v, err := f.evalMaybeVoid(e)
	if err != nil {
		return value{}, err
	}
	if v.ty.K == TVoid {
		return value{}, f.errf(lineOf(e), "void value used")
	}
	return v, nil
}

func lineOf(e Expr) int {
	switch x := e.(type) {
	case *Ident:
		return x.Line
	case *Assign:
		return x.Line
	case *Binary:
		return x.Line
	case *Unary:
		return x.Line
	case *Cast:
		return x.Line
	case *Index:
		return x.Line
	case *Length:
		return x.Line
	case *Call:
		return x.Line
	case *NewArray:
		return x.Line
	case *Cond:
		return x.Line
	case *IncDec:
		return x.Line
	}
	return 0
}

func (f *fnLowerer) evalMaybeVoid(e Expr) (value, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.Long {
			return value{f.b.Const(ir.W64, x.V), tyLong}, nil
		}
		if x.Char {
			return value{f.b.Const(ir.W32, ir.W16.ZeroExt(x.V)), tyChar}, nil
		}
		return value{f.b.Const(ir.W32, ir.W32.SignExt(x.V)), tyInt}, nil
	case *FloatLit:
		return value{f.b.FConst(x.V), tyDouble}, nil
	case *BoolLit:
		v := int64(0)
		if x.V {
			v = 1
		}
		return value{f.b.Const(ir.W32, v), tyBool}, nil
	case *Ident:
		if l, ok := f.lookup(x.Name); ok {
			return value{l.reg, l.ty}, nil
		}
		if g, ok := f.globals[x.Name]; ok {
			return f.loadGlobal(g), nil
		}
		return value{}, f.errf(x.Line, "undefined variable %s", x.Name)
	case *Assign:
		return f.lowerAssign(x)
	case *IncDec:
		return f.lowerIncDec(x)
	case *Binary:
		return f.lowerBinary(x)
	case *Unary:
		return f.lowerUnary(x)
	case *Cast:
		v, err := f.eval(x.X)
		if err != nil {
			return value{}, err
		}
		return f.cast(v, x.To, x.Line)
	case *Index:
		arr, idx, err := f.evalIndex(x)
		if err != nil {
			return value{}, err
		}
		return f.loadElem(arr, idx), nil
	case *Length:
		arr, err := f.eval(x.Arr)
		if err != nil {
			return value{}, err
		}
		if arr.ty.K != TArray {
			return value{}, f.errf(x.Line, ".length on non-array %s", arr.ty)
		}
		return value{f.b.ArrLen(arr.reg), tyInt}, nil
	case *Call:
		return f.lowerCall(x)
	case *NewArray:
		n, err := f.eval(x.Len)
		if err != nil {
			return value{}, err
		}
		n, err = f.convert(n, tyInt, x.Line)
		if err != nil {
			return value{}, err
		}
		w := widthOf(x.Elem)
		fl := x.Elem.K == TDouble
		if fl {
			w = ir.W64
		}
		return value{f.b.NewArr(w, fl, n.reg), &Type{K: TArray, Elem: x.Elem}}, nil
	case *Cond:
		return f.lowerTernary(x)
	}
	return value{}, f.errf(lineOf(e), "unhandled expression %T", e)
}

func (f *fnLowerer) loadGlobal(g *global) value {
	switch g.ty.K {
	case TDouble:
		return value{f.b.LoadGF(g.cell), tyDouble}
	case TLong:
		return value{f.b.LoadG(ir.W64, g.cell), tyLong}
	case TChar:
		r := f.b.LoadG(ir.W16, g.cell)
		f.b.Op1To(ir.OpZext, ir.W16, r, r)
		return value{r, tyChar}
	default:
		return value{f.b.LoadG(widthOf(g.ty), g.cell), g.ty}
	}
}

func (f *fnLowerer) storeGlobal(g *global, v value) {
	if g.ty.K == TDouble {
		f.b.StoreGF(g.cell, v.reg)
		return
	}
	f.b.StoreG(widthOf(g.ty), g.cell, v.reg)
}

// evalIndex evaluates an indexing expression's array and subscript.
func (f *fnLowerer) evalIndex(x *Index) (value, value, error) {
	arr, err := f.eval(x.Arr)
	if err != nil {
		return value{}, value{}, err
	}
	if arr.ty.K != TArray {
		return value{}, value{}, f.errf(x.Line, "indexing non-array %s", arr.ty)
	}
	idx, err := f.eval(x.Idx)
	if err != nil {
		return value{}, value{}, err
	}
	idx, err = f.convert(idx, tyInt, x.Line)
	if err != nil {
		return value{}, value{}, err
	}
	return arr, idx, nil
}

// loadElem emits an element load, widening to the element's value type.
func (f *fnLowerer) loadElem(arr, idx value) value {
	elem := arr.ty.Elem
	fl := elem.K == TDouble
	w := widthOf(elem)
	if fl {
		w = ir.W64
	}
	r := f.b.ArrLoad(w, fl, arr.reg, idx.reg)
	if elem.K == TChar {
		// char widens unsigned.
		f.b.Op1To(ir.OpZext, ir.W16, r, r)
	}
	return value{r, elem}
}

// promoteUnary applies Java's unary numeric promotion: byte/short/char
// become int (the register already holds the widened value).
func promoteUnary(v value) value {
	switch v.ty.K {
	case TByte, TShort, TChar:
		return value{v.reg, tyInt}
	}
	return v
}

// promoteBinary applies binary numeric promotion and returns both operands
// converted to the common type.
func (f *fnLowerer) promoteBinary(x, y value, line int) (value, value, *Type, error) {
	x, y = promoteUnary(x), promoteUnary(y)
	var common *Type
	switch {
	case x.ty.K == TDouble || y.ty.K == TDouble:
		common = tyDouble
	case x.ty.K == TLong || y.ty.K == TLong:
		common = tyLong
	default:
		common = tyInt
	}
	var err error
	if x, err = f.convert(x, common, line); err != nil {
		return x, y, nil, err
	}
	if y, err = f.convert(y, common, line); err != nil {
		return x, y, nil, err
	}
	return x, y, common, nil
}

// convert applies an implicit (widening) conversion; it rejects narrowing.
func (f *fnLowerer) convert(v value, to *Type, line int) (value, error) {
	if v.ty.Equal(to) {
		return v, nil
	}
	v = promoteUnary(v)
	from := v.ty
	switch {
	case from.Equal(to):
		return v, nil
	case from.K == TInt && to.K == TInt:
		return v, nil
	case from.K == TInt && to.K == TLong:
		r := f.b.Mov(ir.W64, v.reg)
		return value{r, tyLong}, nil
	case from.K == TInt && to.K == TDouble:
		return value{f.b.I2D(v.reg), tyDouble}, nil
	case from.K == TLong && to.K == TDouble:
		return value{f.b.L2D(v.reg), tyDouble}, nil
	case from.K == TBool && to.K == TBool:
		return v, nil
	}
	return value{}, f.errf(line, "cannot implicitly convert %s to %s", from, to)
}

// cast applies an explicit conversion. Narrowing integer casts lower to the
// canonical copy + same-register extension so they participate in the
// elimination phase exactly like compiler-generated extensions.
func (f *fnLowerer) cast(v value, to *Type, line int) (value, error) {
	v = promoteUnary(v)
	from := v.ty
	if from.Equal(to) {
		return v, nil
	}
	if from.K == TArray || to.K == TArray || from.K == TBool || to.K == TBool {
		return value{}, f.errf(line, "cannot cast %s to %s", from, to)
	}
	switch to.K {
	case TDouble:
		return f.convert(v, tyDouble, line)
	case TLong:
		if from.K == TDouble {
			return value{f.b.D2L(v.reg), tyLong}, nil
		}
		return f.convert(v, tyLong, line)
	case TInt:
		switch from.K {
		case TDouble:
			return value{f.b.D2I(v.reg), tyInt}, nil
		case TLong:
			t := f.b.Mov(ir.W32, v.reg)
			f.b.Ext(ir.W32, t)
			return value{t, tyInt}, nil
		default:
			return value{v.reg, tyInt}, nil
		}
	case TByte, TShort, TChar:
		// Narrow via int first.
		iv, err := f.cast(v, tyInt, line)
		if err != nil {
			return value{}, err
		}
		t := f.b.Mov(ir.W32, iv.reg)
		if to.K == TChar {
			f.b.Op1To(ir.OpZext, ir.W16, t, t)
		} else {
			f.b.Ext(widthOf(to), t)
		}
		return value{t, to}, nil
	}
	return value{}, f.errf(line, "cannot cast %s to %s", from, to)
}

// isRelational reports comparison operators.
func isRelational(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

var relCond = map[string]ir.Cond{
	"==": ir.CondEQ, "!=": ir.CondNE, "<": ir.CondLT, "<=": ir.CondLE,
	">": ir.CondGT, ">=": ir.CondGE,
}

func (f *fnLowerer) lowerBinary(x *Binary) (value, error) {
	if x.Op == "&&" || x.Op == "||" || isRelational(x.Op) {
		return f.materializeBool(x)
	}
	xv, err := f.eval(x.X)
	if err != nil {
		return value{}, err
	}
	yv, err := f.eval(x.Y)
	if err != nil {
		return value{}, err
	}
	return f.applyBinary(x.Op, xv, yv, ir.NoReg, x.Line)
}

// applyBinary emits the operation, optionally into a caller-provided
// destination register (dst != NoReg), returning the result.
func (f *fnLowerer) applyBinary(op string, xv, yv value, dst ir.Reg, line int) (value, error) {
	// Boolean bitwise ops (&, |, ^ on booleans) work on 0/1 ints.
	if xv.ty.K == TBool && yv.ty.K == TBool && (op == "&" || op == "|" || op == "^") {
		o := map[string]ir.Op{"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor}[op]
		if dst == ir.NoReg {
			dst = f.b.Fn.NewReg()
		}
		f.b.OpTo(o, ir.W32, dst, xv.reg, yv.reg)
		return value{dst, tyBool}, nil
	}
	// Shifts promote each operand separately (Java: the shift count is not
	// part of binary promotion).
	if op == "<<" || op == ">>" || op == ">>>" {
		xv = promoteUnary(xv)
		yv = promoteUnary(yv)
		if !xv.ty.IsInteger() || !yv.ty.IsInteger() {
			return value{}, f.errf(line, "shift on non-integer")
		}
		w := opWidth(xv.ty)
		var o ir.Op
		switch op {
		case "<<":
			o = ir.OpShl
		case ">>":
			o = ir.OpAShr
		default:
			o = ir.OpLShr
		}
		if dst == ir.NoReg {
			dst = f.b.Fn.NewReg()
		}
		f.b.OpTo(o, w, dst, xv.reg, yv.reg)
		return value{dst, xv.ty}, nil
	}
	xv2, yv2, common, err := f.promoteBinary(xv, yv, line)
	if err != nil {
		return value{}, err
	}
	if !common.IsNumeric() {
		return value{}, f.errf(line, "arithmetic on %s", common)
	}
	if common.K == TDouble {
		var o ir.Op
		switch op {
		case "+":
			o = ir.OpFAdd
		case "-":
			o = ir.OpFSub
		case "*":
			o = ir.OpFMul
		case "/":
			o = ir.OpFDiv
		default:
			return value{}, f.errf(line, "operator %q not defined on double", op)
		}
		if dst == ir.NoReg {
			dst = f.b.Fn.NewReg()
		}
		f.b.OpTo(o, ir.W64, dst, xv2.reg, yv2.reg)
		return value{dst, tyDouble}, nil
	}
	var o ir.Op
	switch op {
	case "+":
		o = ir.OpAdd
	case "-":
		o = ir.OpSub
	case "*":
		o = ir.OpMul
	case "/":
		o = ir.OpDiv
	case "%":
		o = ir.OpRem
	case "&":
		o = ir.OpAnd
	case "|":
		o = ir.OpOr
	case "^":
		o = ir.OpXor
	default:
		return value{}, f.errf(line, "unknown operator %q", op)
	}
	if dst == ir.NoReg {
		dst = f.b.Fn.NewReg()
	}
	f.b.OpTo(o, opWidth(common), dst, xv2.reg, yv2.reg)
	return value{dst, common}, nil
}

func (f *fnLowerer) lowerUnary(x *Unary) (value, error) {
	if x.Op == "!" {
		return f.materializeBool(x)
	}
	v, err := f.eval(x.X)
	if err != nil {
		return value{}, err
	}
	v = promoteUnary(v)
	switch x.Op {
	case "-":
		if v.ty.K == TDouble {
			return value{f.b.FNeg(v.reg), tyDouble}, nil
		}
		if !v.ty.IsInteger() {
			return value{}, f.errf(x.Line, "negating %s", v.ty)
		}
		return value{f.b.Neg(opWidth(v.ty), v.reg), v.ty}, nil
	case "~":
		if !v.ty.IsInteger() {
			return value{}, f.errf(x.Line, "~ on %s", v.ty)
		}
		return value{f.b.Not(opWidth(v.ty), v.reg), v.ty}, nil
	}
	return value{}, f.errf(x.Line, "unknown unary %q", x.Op)
}

// materializeBool lowers a boolean-valued expression to a 0/1 int register.
func (f *fnLowerer) materializeBool(e Expr) (value, error) {
	r := f.b.Fn.NewReg()
	tBlk := f.b.Fn.NewBlock()
	fBlk := f.b.Fn.NewBlock()
	join := f.b.Fn.NewBlock()
	if err := f.genCond(e, tBlk, fBlk); err != nil {
		return value{}, err
	}
	f.b.SetBlock(tBlk)
	f.b.ConstTo(ir.W32, r, 1)
	f.b.Jmp(join)
	f.b.SetBlock(fBlk)
	f.b.ConstTo(ir.W32, r, 0)
	f.b.Jmp(join)
	f.b.SetBlock(join)
	return value{r, tyBool}, nil
}

// genCond lowers a conditional expression as control flow into then/else
// blocks. The current block is consumed.
func (f *fnLowerer) genCond(e Expr, then, els *ir.Block) error {
	switch x := e.(type) {
	case *BoolLit:
		if x.V {
			f.b.Jmp(then)
		} else {
			f.b.Jmp(els)
		}
		return nil
	case *Unary:
		if x.Op == "!" {
			return f.genCond(x.X, els, then)
		}
	case *Binary:
		switch x.Op {
		case "&&":
			mid := f.b.Fn.NewBlock()
			if err := f.genCond(x.X, mid, els); err != nil {
				return err
			}
			f.b.SetBlock(mid)
			return f.genCond(x.Y, then, els)
		case "||":
			mid := f.b.Fn.NewBlock()
			if err := f.genCond(x.X, then, mid); err != nil {
				return err
			}
			f.b.SetBlock(mid)
			return f.genCond(x.Y, then, els)
		}
		if isRelational(x.Op) {
			xv, err := f.eval(x.X)
			if err != nil {
				return err
			}
			yv, err := f.eval(x.Y)
			if err != nil {
				return err
			}
			if xv.ty.K == TBool && yv.ty.K == TBool {
				if x.Op != "==" && x.Op != "!=" {
					return f.errf(x.Line, "ordering booleans")
				}
				f.b.Br(ir.W32, relCond[x.Op], xv.reg, yv.reg, then, els)
				return nil
			}
			xv2, yv2, common, err := f.promoteBinary(xv, yv, x.Line)
			if err != nil {
				return err
			}
			if common.K == TDouble {
				f.b.FBr(relCond[x.Op], xv2.reg, yv2.reg, then, els)
				return nil
			}
			f.b.Br(opWidth(common), relCond[x.Op], xv2.reg, yv2.reg, then, els)
			return nil
		}
	}
	// General boolean-valued expression: compare against zero.
	v, err := f.eval(e)
	if err != nil {
		return err
	}
	if v.ty.K != TBool {
		return f.errf(lineOf(e), "condition must be boolean, got %s", v.ty)
	}
	z := f.b.Const(ir.W32, 0)
	f.b.Br(ir.W32, ir.CondNE, v.reg, z, then, els)
	return nil
}

func (f *fnLowerer) lowerTernary(x *Cond) (value, error) {
	tBlk := f.b.Fn.NewBlock()
	fBlk := f.b.Fn.NewBlock()
	join := f.b.Fn.NewBlock()
	if err := f.genCond(x.C, tBlk, fBlk); err != nil {
		return value{}, err
	}
	// Evaluate both arms to learn the common type; assign into one register.
	r := f.b.Fn.NewReg()
	f.b.SetBlock(tBlk)
	av, err := f.eval(x.A)
	if err != nil {
		return value{}, err
	}
	aBlkEnd := f.b.Block()
	f.b.SetBlock(fBlk)
	bv, err := f.eval(x.B)
	if err != nil {
		return value{}, err
	}
	bBlkEnd := f.b.Block()
	var common *Type
	switch {
	case av.ty.Equal(bv.ty):
		common = av.ty
	case av.ty.IsNumeric() && bv.ty.IsNumeric():
		switch {
		case av.ty.K == TDouble || bv.ty.K == TDouble:
			common = tyDouble
		case av.ty.K == TLong || bv.ty.K == TLong:
			common = tyLong
		default:
			common = tyInt
		}
	default:
		return value{}, f.errf(x.Line, "incompatible ternary arms %s / %s", av.ty, bv.ty)
	}
	f.b.SetBlock(aBlkEnd)
	av2, err := f.convert(av, common, x.Line)
	if err != nil {
		return value{}, err
	}
	f.copyInto(r, av2)
	f.b.Jmp(join)
	f.b.SetBlock(bBlkEnd)
	bv2, err := f.convert(bv, common, x.Line)
	if err != nil {
		return value{}, err
	}
	f.copyInto(r, bv2)
	f.b.Jmp(join)
	f.b.SetBlock(join)
	return value{r, common}, nil
}

func (f *fnLowerer) copyInto(dst ir.Reg, v value) {
	switch v.ty.K {
	case TDouble:
		f.b.Op1To(ir.OpFMov, ir.W64, dst, v.reg)
	case TLong:
		f.b.MovTo(ir.W64, dst, v.reg)
	case TArray:
		f.b.MovTo(ir.W64, dst, v.reg)
	default:
		f.b.MovTo(ir.W32, dst, v.reg)
	}
}
