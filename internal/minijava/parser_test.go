package minijava

import (
	"strings"
	"testing"
)

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{"void main() {", "unexpected end"},
		{"void main() { int = 3; }", "expected variable name"},
		{"void main() { 3 = x; }", "invalid assignment"},
		{"void main() { if x { } }", `expected "("`},
		{"int main() { return; }", "missing return value"},
		{"void main() { return 3; }", "void function returns"},
		{"void main() { break; }", "break outside loop"},
		{"void main() { continue; }", "continue outside loop"},
		{"void main() { x = 1; }", "undefined variable"},
		{"void main() { f(); }", "undefined function"},
		{"void main() { int x = 1; int x = 2; }", "duplicate variable"},
		{"void f() {} void f() {} void main() {}", "duplicate function"},
		{"void notmain() {}", "no main function"},
		{"void main() { int x = 1; x.size; }", "only .length"},
		{"void main() { print(1, 2); }", "print takes one argument"},
		{"void main() { sqrt(1.0, 2.0); }", "sqrt takes 1"},
		{"void main() { int x = true + 1; }", "convert"},
		{"void main() { boolean b = (boolean) 3; }", "cast"},
		{"void main() { if (3) {} }", "condition must be boolean"},
		{"void main() { double d = 1.0; int x = d; }", "convert"},
		{"static int[] g; void main() {}", "globals must be scalar"},
		{"void main() { char c = '", ""},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("accepted %q", c.src)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestLexerDetails(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			// line comment
			/* block
			   comment */
			int hexv = 0xFF;
			print(hexv);
			print('A');
			print('\n');
			print('\\');
			long big = 0x7fffffffffffffffL;
			print(big);
			print(1e3);
			print(2.5e-1);
		}`)
	want := "255\n65\n10\n92\n9223372036854775807\n1000\n0.25\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			print(2 + 3 * 4);
			print((2 + 3) * 4);
			print(1 << 2 + 1);        // shift binds looser than +
			print(10 - 4 - 3);        // left associative
			print(7 & 3 | 4 ^ 1);     // & over ^ over |
			print(1 < 2 == true ? 1 : 0);
			print(-2 * -3);
			print(~-1);
			int x = 5;
			print(x++ + x);
			print(x-- - x);
		}`)
	want := "14\n20\n8\n3\n7\n1\n6\n0\n11\n1\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestShortCircuit(t *testing.T) {
	out := compileAndRun(t, `
		static int calls = 0;
		boolean bump() { calls = calls + 1; return true; }
		void main() {
			boolean a = false && bump();
			boolean b = true || bump();
			print(calls);        // neither side evaluated
			boolean c = true && bump();
			print(calls);        // one call
			print(a ? 1 : 0); print(b ? 1 : 0); print(c ? 1 : 0);
		}`)
	want := "0\n1\n0\n1\n1\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestCharArithmetic(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			char c = 'z';
			int v = c - 'a';
			print(v);
			char big = (char) 70000;   // wraps mod 65536
			print(big);
			char[] cs = new char[3];
			cs[0] = (char) 65535;
			cs[1] = 'q';
			print(cs[0] + cs[1]);
		}`)
	want := "25\n4464\n65648\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestNestedLoopsAndShadowing(t *testing.T) {
	out := compileAndRun(t, `
		void main() {
			int total = 0;
			for (int i = 0; i < 3; i++) {
				for (int j = 0; j < 3; j++) {
					int i2 = i * 10;
					{ int k = i2 + j; total += k; }
				}
			}
			print(total);
			int i = 99;   // the loop's i is out of scope
			print(i);
		}`)
	want := "99\n99\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}
