package minijava

import "signext/internal/ir"

// assignToReg lowers "target = expr" for a local variable, emitting the
// computing instruction directly into the variable's register whenever
// possible — matching the variable-oriented IR style of the paper's JIT, so
// every definition of a source variable writes the same register.
func (f *fnLowerer) assignToReg(reg ir.Reg, ty *Type, e Expr, line int) error {
	// Constant initializers materialize straight into the variable.
	if lit, ok := e.(*IntLit); ok && (ty.K == TInt || ty.K == TLong) {
		w := opWidth(ty)
		v := lit.V
		if ty.K == TInt {
			v = ir.W32.SignExt(v)
		}
		f.b.ConstTo(w, reg, v)
		return nil
	}
	// Fast path: a binary op assignable without conversion computes straight
	// into the target register.
	if ty.K == TInt || ty.K == TLong {
		if bin, ok := e.(*Binary); ok && !isRelational(bin.Op) && bin.Op != "&&" && bin.Op != "||" {
			xv, err := f.eval(bin.X)
			if err != nil {
				return err
			}
			yv, err := f.eval(bin.Y)
			if err != nil {
				return err
			}
			xp, yp := promoteUnary(xv), promoteUnary(yv)
			sameType := xp.ty.K == ty.K && yp.ty.K == ty.K
			if bin.Op == "<<" || bin.Op == ">>" || bin.Op == ">>>" {
				sameType = xp.ty.K == ty.K && yp.ty.IsInteger()
			}
			if sameType {
				_, err = f.applyBinary(bin.Op, xv, yv, reg, line)
				return err
			}
			// Type mismatch: fall through via a temporary.
			v, err := f.applyBinary(bin.Op, xv, yv, ir.NoReg, line)
			if err != nil {
				return err
			}
			v, err = f.convert(v, ty, line)
			if err != nil {
				return err
			}
			f.copyInto(reg, v)
			return nil
		}
	}
	// Element load straight into the target register.
	if ix, ok := e.(*Index); ok {
		arr, idx, err := f.evalIndex(ix)
		if err != nil {
			return err
		}
		elem := arr.ty.Elem
		if elem.Equal(ty) || (elem.K != TDouble && elem.K != TLong && ty.K == TInt && elem.K != TChar) {
			fl := elem.K == TDouble
			w := widthOf(elem)
			if fl {
				w = ir.W64
			}
			f.b.ArrLoadTo(w, fl, reg, arr.reg, idx.reg)
			if elem.K == TChar {
				f.b.Op1To(ir.OpZext, ir.W16, reg, reg)
			}
			return nil
		}
	}
	v, err := f.eval(e)
	if err != nil {
		return err
	}
	v, err = f.convertOrConstNarrow(v, ty, e, line)
	if err != nil {
		return err
	}
	if v.reg == reg {
		return nil
	}
	f.copyInto(reg, v)
	f.renarrow(reg, ty)
	return nil
}

// convertOrConstNarrow applies an implicit conversion, additionally allowing
// Java's constant narrowing: an int literal that fits a byte/short/char
// target converts implicitly.
func (f *fnLowerer) convertOrConstNarrow(v value, ty *Type, e Expr, line int) (value, error) {
	cv, err := f.convert(v, ty, line)
	if err == nil {
		return cv, nil
	}
	if val, ok := constIntValue(e); ok {
		fits := false
		switch ty.K {
		case TByte:
			fits = val >= -128 && val <= 127
		case TShort:
			fits = val >= -32768 && val <= 32767
		case TChar:
			fits = val >= 0 && val <= 65535
		}
		if fits {
			return f.cast(v, ty, line)
		}
	}
	return value{}, err
}

// constIntValue recognizes int literal expressions, including a negation.
func constIntValue(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		if !x.Long {
			return x.V, true
		}
	case *Unary:
		if x.Op == "-" {
			if v, ok := constIntValue(x.X); ok {
				return -v, true
			}
		}
	}
	return 0, false
}

// lowerAssign handles =, += and friends for locals, globals and elements.
func (f *fnLowerer) lowerAssign(x *Assign) (value, error) {
	switch lhs := x.LHS.(type) {
	case *Ident:
		if l, ok := f.lookup(lhs.Name); ok {
			if x.Op == "" {
				if err := f.assignToReg(l.reg, l.ty, x.RHS, x.Line); err != nil {
					return value{}, err
				}
				return value{l.reg, l.ty}, nil
			}
			// Compound: a op= b  ==  a = (T)(a op b).
			rv, err := f.eval(x.RHS)
			if err != nil {
				return value{}, err
			}
			// int/long compute straight into the variable's register (the
			// bytecode iinc pattern) when no narrowing is involved.
			if ok, err := f.compoundInPlace(l, rv, x.Op, x.Line); ok || err != nil {
				return value{l.reg, l.ty}, err
			}
			return f.compound(value{l.reg, l.ty}, rv, x.Op, x.Line, func(v value) {
				f.copyInto(l.reg, v)
				f.renarrow(l.reg, l.ty)
			})
		}
		if g, ok := f.globals[lhs.Name]; ok {
			var rv value
			var err error
			if x.Op == "" {
				rv, err = f.eval(x.RHS)
				if err != nil {
					return value{}, err
				}
				rv, err = f.convert(rv, g.ty, x.Line)
				if err != nil {
					return value{}, err
				}
			} else {
				cur := f.loadGlobal(g)
				r2, err2 := f.eval(x.RHS)
				if err2 != nil {
					return value{}, err2
				}
				rv, err = f.applyBinary(x.Op, cur, r2, ir.NoReg, x.Line)
				if err != nil {
					return value{}, err
				}
				rv, err = f.narrowTo(rv, g.ty, x.Line)
				if err != nil {
					return value{}, err
				}
			}
			f.storeGlobal(g, rv)
			return rv, nil
		}
		return value{}, f.errf(x.Line, "undefined variable %s", lhs.Name)
	case *Index:
		arr, idx, err := f.evalIndex(lhs)
		if err != nil {
			return value{}, err
		}
		elem := arr.ty.Elem
		var rv value
		if x.Op == "" {
			rv, err = f.eval(x.RHS)
			if err != nil {
				return value{}, err
			}
			rv, err = f.elemAssignable(rv, elem, x.Line)
			if err != nil {
				return value{}, err
			}
		} else {
			cur := f.loadElem(arr, idx)
			r2, err2 := f.eval(x.RHS)
			if err2 != nil {
				return value{}, err2
			}
			rv, err = f.applyBinary(x.Op, cur, r2, ir.NoReg, x.Line)
			if err != nil {
				return value{}, err
			}
			rv, err = f.elemAssignable(rv, elem, x.Line)
			if err != nil {
				return value{}, err
			}
		}
		fl := elem.K == TDouble
		w := widthOf(elem)
		if fl {
			w = ir.W64
		}
		f.b.ArrStore(w, fl, arr.reg, idx.reg, rv.reg)
		return rv, nil
	}
	return value{}, f.errf(x.Line, "bad assignment target")
}

// compoundInPlace emits "a op= b" directly into a's register when a is an
// int or long local and the promoted result type equals a's type — producing
// the same-variable definitions ("i = i + 1") the paper's analyses are built
// around. Returns ok=false when the general path must run instead.
func (f *fnLowerer) compoundInPlace(l local, rv value, op string, line int) (bool, error) {
	if l.ty.K != TInt && l.ty.K != TLong {
		return false, nil
	}
	rp := promoteUnary(rv)
	if rp.ty.K == TDouble {
		return false, nil
	}
	if op == "<<" || op == ">>" || op == ">>>" {
		if !rp.ty.IsInteger() {
			return false, nil
		}
		_, err := f.applyBinary(op, value{l.reg, l.ty}, rv, l.reg, line)
		return true, err
	}
	common := TInt
	if l.ty.K == TLong || rp.ty.K == TLong {
		common = TLong
	}
	if common != l.ty.K {
		return false, nil // would narrow; take the cast path
	}
	_, err := f.applyBinary(op, value{l.reg, l.ty}, rv, l.reg, line)
	return true, err
}

// compound finishes a compound assignment: apply the op, narrow back to the
// target type, store via the callback, and return the stored value.
func (f *fnLowerer) compound(cur, rhs value, op string, line int, store func(value)) (value, error) {
	rv, err := f.applyBinary(op, cur, rhs, ir.NoReg, line)
	if err != nil {
		return value{}, err
	}
	rv, err = f.narrowTo(rv, cur.ty, line)
	if err != nil {
		return value{}, err
	}
	store(rv)
	return value{rv.reg, cur.ty}, nil
}

// narrowTo converts a computed value back to the target's declared type
// (Java compound-assignment semantics include an implicit cast).
func (f *fnLowerer) narrowTo(v value, ty *Type, line int) (value, error) {
	switch ty.K {
	case TByte, TShort, TChar, TInt, TLong, TDouble:
		return f.cast(v, ty, line)
	}
	return f.convert(v, ty, line)
}

// renarrow re-establishes a sub-int local's width after a copy (the cast
// already happened; locals of type byte/short get a same-register extension
// so their register always holds a valid int).
func (f *fnLowerer) renarrow(reg ir.Reg, ty *Type) {
	switch ty.K {
	case TByte, TShort:
		f.b.Ext(widthOf(ty), reg)
	case TChar:
		f.b.Op1To(ir.OpZext, ir.W16, reg, reg)
	}
}

// elemAssignable converts a value for storage into an element of type elem:
// widening conversions apply; int expressions store into narrow arrays by
// truncation (the store writes only the low bits).
func (f *fnLowerer) elemAssignable(v value, elem *Type, line int) (value, error) {
	v = promoteUnary(v)
	switch elem.K {
	case TByte, TShort, TChar:
		if v.ty.K == TInt {
			return v, nil // the store truncates
		}
	case TBool:
		if v.ty.K == TBool {
			return v, nil
		}
	}
	return f.convert(v, elem, line)
}

// lowerIncDec handles ++/--.
func (f *fnLowerer) lowerIncDec(x *IncDec) (value, error) {
	op := "+"
	if x.Op == "--" {
		op = "-"
	}
	switch lhs := x.X.(type) {
	case *Ident:
		if l, ok := f.lookup(lhs.Name); ok {
			if !l.ty.IsNumeric() {
				return value{}, f.errf(x.Line, "++/-- on %s", l.ty)
			}
			var old value
			if x.Post {
				if l.ty.K == TDouble {
					old = value{f.b.FMov(l.reg), tyDouble}
				} else {
					old = value{f.b.Mov(opWidth(l.ty), l.reg), promoteUnary(value{l.reg, l.ty}).ty}
				}
			}
			one := value{f.b.Const(opWidth(l.ty), 1), promoteUnary(value{l.reg, l.ty}).ty}
			if l.ty.K == TLong {
				one.ty = tyLong
			}
			if l.ty.K == TDouble {
				one = value{f.b.FConst(1), tyDouble}
			}
			var nv value
			ok, err := f.compoundInPlace(l, one, op, x.Line)
			if err != nil {
				return value{}, err
			}
			if ok {
				nv = value{l.reg, l.ty}
			} else {
				nv, err = f.compound(value{l.reg, l.ty}, one, op, x.Line, func(v value) {
					f.copyInto(l.reg, v)
					f.renarrow(l.reg, l.ty)
				})
				if err != nil {
					return value{}, err
				}
			}
			if x.Post {
				return old, nil
			}
			return nv, nil
		}
		// Globals: rewrite as compound assignment.
		a := &Assign{LHS: lhs, Op: op, RHS: &IntLit{V: 1}, Line: x.Line}
		return f.lowerAssign(a)
	case *Index:
		a := &Assign{LHS: lhs, Op: op, RHS: &IntLit{V: 1}, Line: x.Line}
		return f.lowerAssign(a)
	}
	return value{}, f.errf(x.Line, "++/-- target must be a variable or element")
}

// lowerCall handles builtins (print, math) and user calls.
func (f *fnLowerer) lowerCall(x *Call) (value, error) {
	if x.Name == "print" || x.Name == "println" {
		if len(x.Args) != 1 {
			return value{}, f.errf(x.Line, "print takes one argument")
		}
		v, err := f.eval(x.Args[0])
		if err != nil {
			return value{}, err
		}
		v = promoteUnary(v)
		switch v.ty.K {
		case TDouble:
			f.b.FPrint(v.reg)
		case TLong:
			f.b.Print(ir.W64, v.reg)
		case TInt, TBool:
			f.b.Print(ir.W32, v.reg)
		default:
			return value{}, f.errf(x.Line, "cannot print %s", v.ty)
		}
		return value{ir.NoReg, tyVoid}, nil
	}
	if n, ok := floatBuiltins[x.Name]; ok {
		if len(x.Args) != n {
			return value{}, f.errf(x.Line, "%s takes %d argument(s)", x.Name, n)
		}
		args := make([]ir.Reg, n)
		for k, a := range x.Args {
			v, err := f.eval(a)
			if err != nil {
				return value{}, err
			}
			v, err = f.convert(v, tyDouble, x.Line)
			if err != nil {
				return value{}, err
			}
			args[k] = v.reg
		}
		return value{f.b.FCall(x.Name, args...), tyDouble}, nil
	}
	decl := f.funcs[x.Name]
	if decl == nil {
		return value{}, f.errf(x.Line, "undefined function %s", x.Name)
	}
	if len(x.Args) != len(decl.Params) {
		return value{}, f.errf(x.Line, "%s takes %d argument(s), got %d",
			x.Name, len(decl.Params), len(x.Args))
	}
	args := make([]ir.Reg, len(x.Args))
	for k, a := range x.Args {
		v, err := f.eval(a)
		if err != nil {
			return value{}, err
		}
		v, err = f.convert(v, decl.Params[k].Type, x.Line)
		if err != nil {
			return value{}, err
		}
		args[k] = v.reg
	}
	switch decl.Ret.K {
	case TVoid:
		f.b.CallV(x.Name, args...)
		return value{ir.NoReg, tyVoid}, nil
	case TDouble:
		return value{f.b.Call(x.Name, 0, true, args...), tyDouble}, nil
	case TLong:
		return value{f.b.Call(x.Name, ir.W64, false, args...), tyLong}, nil
	case TArray:
		return value{}, f.errf(x.Line, "array returns are not supported")
	default:
		return value{f.b.Call(x.Name, ir.W32, false, args...), decl.Ret}, nil
	}
}
