package peep

import (
	"signext/internal/chains"
	"signext/internal/ir"
	"signext/internal/vrange"
)

type vrangeRange = vrange.Range

// bindSite records where a pattern variable was read, so guards can ask for
// its value range at exactly that use (OfOperandAt refines through
// dominating branch conditions, which is what powers redundant-compare
// elimination).
type bindSite struct {
	ins *ir.Instr
	op  int
}

// Match is one successful (or in-progress) binding of a rule's pattern
// against an anchor instruction, plus scratch space for guard-computed
// constants consumed by the replacement template.
type Match struct {
	Fn  *ir.Func
	Ins *ir.Instr  // the anchor
	W   ir.Width   // anchor width
	M   ir.Machine // machine model the run targets

	an *vrange.Analysis
	ch *chains.Chains

	regs    map[string]ir.Reg
	sites   map[string]bindSite
	consts  map[string]int64
	scratch map[string]int64
	subs    []*ir.Instr // matched nested instructions, dead after rewrite
}

// Reg returns the register bound to a pattern variable.
func (m *Match) Reg(name string) ir.Reg { return m.regs[name] }

// Const returns a named constant: pattern-bound first, then guard-stashed.
func (m *Match) Const(name string) int64 {
	if v, ok := m.consts[name]; ok {
		return v
	}
	return m.scratch[name]
}

// Set stashes a guard-computed constant for the template to consume.
func (m *Match) Set(name string, v int64) {
	if m.scratch == nil {
		m.scratch = map[string]int64{}
	}
	m.scratch[name] = v
}

// Get returns a guard-stashed constant.
func (m *Match) Get(name string) int64 { return m.scratch[name] }

// RangeOf returns the value range of a bound variable at its use site.
func (m *Match) RangeOf(name string) vrange.Range {
	s, ok := m.sites[name]
	if !ok {
		return vrange.Bottom()
	}
	return m.an.OfOperandAt(s.ins, s.op)
}

// matchRule attempts to bind rule against anchor, trying the commuted
// operand order as well when the rule allows it. dirty suppresses binding
// instructions already rewritten this round (their cached analyses are
// stale in ways the value-preservation argument does not cover).
func matchRule(rule *Rule, anchor *ir.Instr, fn *ir.Func,
	an *vrange.Analysis, ch *chains.Chains, dirty map[*ir.Instr]bool) *Match {

	widthOK := false
	for _, w := range rule.Widths {
		if anchor.W == w {
			widthOK = true
			break
		}
	}
	if !widthOK {
		return nil
	}
	orders := [][]int{nil} // nil means identity order
	if rule.Commute && len(rule.Pattern.Args) == 2 {
		orders = append(orders, []int{1, 0})
	}
	for _, order := range orders {
		m := &Match{
			Fn:     fn,
			Ins:    anchor,
			W:      anchor.W,
			an:     an,
			ch:     ch,
			regs:   map[string]ir.Reg{},
			sites:  map[string]bindSite{},
			consts: map[string]int64{},
		}
		if !m.matchPat(anchor, &rule.Pattern, order, dirty) {
			continue
		}
		if !m.noRedefinitions() {
			continue
		}
		ok := true
		for _, g := range rule.Guards {
			if !g.Fn(m) {
				ok = false
				break
			}
		}
		if ok {
			return m
		}
	}
	return nil
}

// matchPat binds one pattern instruction. order, when non-nil, permutes the
// pattern args over the instruction operands (commuted matching).
func (m *Match) matchPat(ins *ir.Instr, p *Pat, order []int, dirty map[*ir.Instr]bool) bool {
	if ins.Op != p.Op || ins.NumSrcs() != len(p.Args) {
		return false
	}
	for k := range p.Args {
		opIdx := k
		if order != nil {
			opIdx = order[k]
		}
		if !m.matchArg(ins, opIdx, &p.Args[k], dirty) {
			return false
		}
	}
	return true
}

func (m *Match) matchArg(ins *ir.Instr, op int, pa *PatArg, dirty map[*ir.Instr]bool) bool {
	switch pa.Kind {
	case ArgVar:
		r := ins.UseAt(op)
		if prev, ok := m.regs[pa.Name]; ok {
			return prev == r
		}
		m.regs[pa.Name] = r
		m.sites[pa.Name] = bindSite{ins, op}
		return true

	case ArgConst:
		v, ok := m.an.ConstOperand(ins, op)
		if !ok {
			return false
		}
		if prev, bound := m.consts[pa.Name]; bound {
			return prev == v
		}
		m.consts[pa.Name] = v
		return true

	case ArgConstVal:
		v, ok := m.an.ConstOperand(ins, op)
		return ok && v == pa.Val

	case ArgSub:
		defs := m.ch.UD(ins, op)
		if len(defs) != 1 || defs[0].IsParam() {
			return false
		}
		sub := defs[0].Instr
		// Same block as the anchor, matching width, and the anchor is its
		// only use, so the matched instruction is dead after the rewrite.
		if sub.Blk != m.Ins.Blk || sub.W != m.Ins.W || dirty[sub] {
			return false
		}
		if len(m.ch.DU(sub)) != 1 {
			return false
		}
		if !m.matchPat(sub, pa.Sub, nil, dirty) {
			return false
		}
		m.subs = append(m.subs, sub)
		return true
	}
	return false
}

// noRedefinitions rejects matches where a register bound at a nested
// instruction is redefined between that binding and the anchor — including
// by the nested instruction itself (`r2 = shl r2, k` overwrites the value
// the pattern variable names). The replacement reads bound registers
// immediately before the anchor, so their values must survive to there.
func (m *Match) noRedefinitions() bool {
	b := m.Ins.Blk
	anchorIdx := b.IndexOf(m.Ins)
	for name, site := range m.sites {
		if site.ins == m.Ins {
			continue
		}
		r := m.regs[name]
		from := b.IndexOf(site.ins)
		if from < 0 || anchorIdx < 0 {
			return false
		}
		for k := from; k < anchorIdx; k++ {
			ins := b.Instrs[k]
			if ins.HasDst() && ins.Dst == r {
				return false
			}
		}
	}
	return true
}

// apply performs the rewrite: template prefix instructions are inserted
// before the anchor, then the last template line (or the rule's Branch
// function) rewrites the anchor in place, keeping its destination register
// so no uses need rewriting. It returns the freshly inserted instructions
// and whether the rewrite actually happened — a Branch function may still
// decline after its guards passed (foldDecidedBranch reverts folds that
// would leave the function statically malformed).
func (m *Match) apply(rule *Rule) ([]*ir.Instr, bool) {
	if rule.Branch != nil {
		return nil, rule.Branch(m)
	}
	anchor := m.Ins
	b := anchor.Blk
	locals := map[string]ir.Reg{}
	lookup := func(name string) ir.Reg {
		if r, ok := locals[name]; ok {
			return r
		}
		if r, ok := m.regs[name]; ok {
			return r
		}
		panic("peep: rule " + rule.Name + ": unbound template operand " + name)
	}
	var inserted []*ir.Instr
	for i := range rule.Replace {
		t := &rule.Replace[i]
		w := t.W
		if t.WF != nil {
			w = t.WF(m)
		}
		if w == 0 {
			w = anchor.W
		}
		if i < len(rule.Replace)-1 {
			ins := m.Fn.NewInstr(t.Op)
			ins.W = w
			if t.Const != nil {
				ins.Const = t.Const(m)
			}
			for _, a := range t.Args {
				ins.Srcs[ins.NSrcs] = lookup(a)
				ins.NSrcs++
			}
			ins.Dst = m.Fn.NewReg()
			locals[t.Dst] = ins.Dst
			b.InsertBefore(anchor, ins)
			inserted = append(inserted, ins)
			continue
		}
		if t.Dst != RDst {
			panic("peep: rule " + rule.Name + ": last template line must define " + RDst)
		}
		anchor.Op = t.Op
		anchor.W = w
		anchor.Cond = 0
		anchor.NSrcs = 0
		anchor.Srcs = [3]ir.Reg{}
		anchor.Const = 0
		if t.Const != nil {
			anchor.Const = t.Const(m)
		}
		for _, a := range t.Args {
			anchor.Srcs[anchor.NSrcs] = lookup(a)
			anchor.NSrcs++
		}
	}
	return inserted, true
}
