package peep

import (
	"fmt"
	"strings"

	"signext/internal/cfg"
	"signext/internal/chains"
	"signext/internal/ir"
	"signext/internal/opt"
	"signext/internal/vrange"
)

// DefaultMaxRounds bounds the match-rewrite fixpoint. Rewrites strictly
// simplify, so in practice two rounds reach the fixpoint; the cap only
// defends against a pathological rule interaction.
const DefaultMaxRounds = 4

// Config parameterizes one Run.
type Config struct {
	Machine     ir.Machine
	MaxArrayLen int64
	Rules       []string // rule-name filter; empty enables the whole table
	MaxRounds   int      // 0 means DefaultMaxRounds
}

// Stats reports what one Run did.
type Stats struct {
	Rewrites int            // total rule applications
	Rounds   int            // rounds that performed at least one rewrite
	Removed  int            // dead instructions cleaned up after rewriting
	ByRule   map[string]int // applications per rule name
}

// ValidateRules checks a -peep-rules style filter against the table.
func ValidateRules(names []string) error {
	for _, n := range names {
		if FindRule(n) == nil {
			return fmt.Errorf("peep: unknown rule %q (have %s)",
				n, strings.Join(RuleNames(), ", "))
		}
	}
	return nil
}

// Run drives the table interpreter over fn to a bounded fixpoint. Each
// round recomputes the CFG, UD/DU chains and value ranges, walks reachable
// blocks in layout order, and applies the first matching rule at each
// instruction. Instructions touched by a rewrite are dirty for the rest of
// the round: the cached analyses still describe the old code, and the
// value-preservation argument (every rewrite is bit-identical) only covers
// facts about registers the rewrite did not redefine. A control-flow
// rewrite invalidates the CFG itself, so it ends the round immediately.
// Dead pattern remnants (the matched nested instructions lose their only
// use) are removed between rounds.
func Run(fn *ir.Func, c Config) Stats {
	var enabled []*Rule
	if len(c.Rules) == 0 {
		for i := range Rules {
			enabled = append(enabled, &Rules[i])
		}
	} else {
		set := map[string]bool{}
		for _, n := range c.Rules {
			set[n] = true
		}
		for i := range Rules {
			if set[Rules[i].Name] {
				enabled = append(enabled, &Rules[i])
			}
		}
	}
	maxRounds := c.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	st := Stats{ByRule: map[string]int{}}
	for round := 0; round < maxRounds; round++ {
		n := runRound(fn, c, enabled, &st)
		if n == 0 {
			break
		}
		st.Rounds++
		st.Rewrites += n
		st.Removed += opt.DCE(fn)
	}
	return st
}

func runRound(fn *ir.Func, c Config, enabled []*Rule, st *Stats) int {
	info := cfg.Compute(fn)
	ch := chains.Build(fn, info)
	an := vrange.Compute(fn, ch, info, c.Machine, c.MaxArrayLen)
	reach := reachable(fn)
	dirty := map[*ir.Instr]bool{}
	n := 0
	for _, b := range fn.Blocks {
		if !reach[b] {
			continue
		}
		snapshot := append([]*ir.Instr(nil), b.Instrs...)
		for _, ins := range snapshot {
			if dirty[ins] || ins.Blk != b {
				continue
			}
			for _, rule := range enabled {
				if ins.Op != rule.Pattern.Op {
					continue
				}
				m := matchRule(rule, ins, fn, an, ch, dirty)
				if m == nil {
					continue
				}
				m.M = c.Machine
				inserted, ok := m.apply(rule)
				if !ok {
					continue
				}
				n++
				st.ByRule[rule.Name]++
				dirty[ins] = true
				for _, s := range m.subs {
					dirty[s] = true
				}
				for _, s := range inserted {
					dirty[s] = true
				}
				if rule.Branch != nil {
					// The CFG changed under the cached analyses; end the
					// round and let the next one recompute everything.
					return n
				}
				break
			}
		}
	}
	return n
}

// reachable returns the blocks reachable from the entry. Branch folding
// leaves abandoned blocks in the function; matching inside them would
// consume stale range facts for code that can never run.
func reachable(fn *ir.Func) map[*ir.Block]bool {
	seen := map[*ir.Block]bool{fn.Entry(): true}
	work := []*ir.Block{fn.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
