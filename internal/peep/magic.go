// Package peep is a peephole pass driven by one declarative rule table.
// Each Rule carries a match pattern over the 64-bit-form IR, guard
// predicates over value-range and width facts, and a replacement template.
// The same table feeds three consumers: the table interpreter run inside the
// guarded jit pipeline after the sign extension phase (Run), a generator of
// one self-contained IR test program per rule (GenProgram), and directed
// sxfuzz corpus entries (GenCorpusEntry) so every rule stays continuously
// differential-tested. See DESIGN.md §13.
package peep

import "math/big"

// Magic holds multiply-shift constants replacing a division by the constant
// d: for every dividend x in [0, N], x/d == (x*M) >> S, with x*M free of
// signed 64-bit overflow. This is the improved 32-bit unsigned-division
// method (Mitsunari & Hoshino): instead of fixing the shift at 32 and
// patching the error with adds, the smallest shift whose round-up multiplier
// is exact over the proven dividend range is chosen, which the value-range
// analysis supplies (the paper's upper-32-bits-zero facts).
type Magic struct {
	M int64 // round-up multiplier, floor(2^S/d) + 1
	S uint  // shift amount
}

// FindMagic searches for the smallest shift S such that M = floor(2^S/d)+1
// satisfies x/d == (x*M)>>S for all x in [0, n], and x*M stays below 2^63.
// It requires d >= 2 and 0 <= n; ok is false when no such pair exists (for
// example when n is so large that the multiply would overflow).
//
// Correctness: with e = M*d - 2^S (0 < e <= d), for x >= 0
//
//	x*M/2^S = x/d + e*x/(d*2^S)
//
// so floor(x*M/2^S) = floor(x/d) whenever the accumulated error
// r/d + e*x/(d*2^S) stays below 1 for r = x mod d <= d-1; the round-up
// condition e*n < 2^S is sufficient for every x <= n. The checks run in
// math/big so no intermediate overflows can forge a witness.
func FindMagic(d, n int64) (Magic, bool) {
	if d < 2 || n < 0 {
		return Magic{}, false
	}
	bigD := big.NewInt(d)
	bigN := big.NewInt(n)
	maxM := new(big.Int).Lsh(big.NewInt(1), 63) // M itself must fit int64
	maxMN := new(big.Int).Lsh(big.NewInt(1), 63)
	for s := uint(1); s <= 62; s++ {
		pow := new(big.Int).Lsh(big.NewInt(1), s)
		m := new(big.Int).Div(pow, bigD)
		m.Add(m, big.NewInt(1))
		e := new(big.Int).Mul(m, bigD)
		e.Sub(e, pow) // e in (0, d]
		// Exactness: e*n < 2^s.
		en := new(big.Int).Mul(e, bigN)
		if en.Cmp(pow) >= 0 {
			continue
		}
		// No signed-64 overflow in the rewritten multiply: M*n < 2^63.
		mn := new(big.Int).Mul(m, bigN)
		if m.Cmp(maxM) >= 0 || mn.Cmp(maxMN) >= 0 {
			// Larger s only grows M; nothing further can work.
			return Magic{}, false
		}
		return Magic{M: m.Int64(), S: s}, true
	}
	return Magic{}, false
}
