package peep

import (
	"testing"

	"signext/internal/guard"
	"signext/internal/ir"
)

// TestBrFoldRefusesStrandingDefs pins the fuzzer-found hazard: folding a
// decided branch removes a CFG edge, and when the dead arm holds the only
// definition of a register a still-reachable block reads, the fold would
// leave the function statically malformed (a use with no reaching
// definition). The fold must notice and decline, leaving the branch in
// place and the function verifiable.
func TestBrFoldRefusesStrandingDefs(t *testing.T) {
	src := `
globals 1

func main() {
	b0:
	r0 = const 3
	storeg.64 g0 r0
	r1 = loadg.64 g0
	r2 = const 15
	r3 = and.64 r1 r2
	r4 = const 16
	br.32.ult r3 r4 -> b1, b2
	b1:
	jmp -> b3
	b2:
	r5 = const 99
	jmp -> b3
	b3:
	print.32 r5
	ret
}
`
	prog, err := ir.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("main")
	if err := guard.VerifyFunc(fn, ir.IA64); err != nil {
		t.Fatalf("test input must verify before the pass: %v", err)
	}
	st := Run(fn, Config{Machine: ir.IA64, Rules: []string{"br-fold"}})
	if st.ByRule["br-fold"] != 0 {
		t.Fatalf("fold must decline when it would strand r5's only definition, fired %d times", st.ByRule["br-fold"])
	}
	if err := guard.VerifyFunc(fn, ir.IA64); err != nil {
		t.Fatalf("function no longer verifies after the declined fold: %v", err)
	}
	var brs int
	for _, b := range fn.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpBr {
				brs++
			}
		}
	}
	if brs != 1 {
		t.Fatalf("the branch must survive the declined fold, found %d", brs)
	}
}
