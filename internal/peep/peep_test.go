package peep

import (
	"strings"
	"testing"

	"signext/internal/guard"
	"signext/internal/interp"
	"signext/internal/ir"
)

func runProg(t *testing.T, prog *ir.Program, mode interp.Mode, mach ir.Machine, d interp.Dispatch) string {
	t.Helper()
	res, err := interp.Run(prog, "main", interp.Options{Mode: mode, Machine: mach, Dispatch: d})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return res.Output
}

// TestRuleRewritesFireAndPreserveOutput is the in-package half of the
// self-generated test story: for every table row, the generated program
// parses, the rule fires on it, the rewritten function passes the deep
// verifier, and the output is bit-identical to the unrewritten build under
// both machines and both interpreter dispatchers. (The jit-pipeline half,
// including Mode32/Convert64 and the cache, lives in gentest_test.go.)
func TestRuleRewritesFireAndPreserveOutput(t *testing.T) {
	for i := range Rules {
		r := &Rules[i]
		t.Run(r.Name, func(t *testing.T) {
			src := GenProgram(r)
			prog, err := ir.ParseProgram(src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, src)
			}
			ref := runProg(t, prog, interp.Mode32, ir.IA64, interp.DispatchSwitch)
			base := runProg(t, prog, interp.Mode64, ir.IA64, interp.DispatchSwitch)
			if ref != base {
				t.Fatalf("generated program is mode-sensitive before any rewrite:\nMode32 %q\nMode64 %q", ref, base)
			}
			for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
				rw := prog.Clone()
				st := Run(rw.Func("main"), Config{Machine: mach, Rules: []string{r.Name}})
				if st.ByRule[r.Name] == 0 {
					t.Fatalf("%s: rule did not fire on its own generated program (%s):\n%s",
						mach, r.Name, src)
				}
				if err := guard.VerifyFunc(rw.Func("main"), mach); err != nil {
					t.Fatalf("%s: rewritten function fails verification: %v", mach, err)
				}
				for _, d := range []interp.Dispatch{interp.DispatchSwitch, interp.DispatchThreaded} {
					if got := runProg(t, rw, interp.Mode64, mach, d); got != base {
						t.Fatalf("%s dispatch %d: output diverged after %s\ngot  %q\nwant %q",
							mach, d, r.Name, got, base)
					}
				}
			}
		})
	}
}

// TestRuleFilter: a filter naming one rule must not let any other fire.
func TestRuleFilter(t *testing.T) {
	r := FindRule("or-zero")
	prog, err := ir.ParseProgram(GenProgram(r))
	if err != nil {
		t.Fatal(err)
	}
	st := Run(prog.Func("main"), Config{Machine: ir.IA64, Rules: []string{"div-pow2"}})
	if st.Rewrites != 0 {
		t.Fatalf("disabled rules fired: %+v", st.ByRule)
	}
}

func TestValidateRules(t *testing.T) {
	if err := ValidateRules([]string{"or-zero", "div-magic"}); err != nil {
		t.Fatalf("valid names rejected: %v", err)
	}
	err := ValidateRules([]string{"no-such-rule"})
	if err == nil || !strings.Contains(err.Error(), "no-such-rule") {
		t.Fatalf("want unknown-rule error, got %v", err)
	}
}

// TestBrFoldRemovesBranch: after the rewrite no conditional branch remains
// reachable — every decided compare became a jump.
func TestBrFoldRemovesBranch(t *testing.T) {
	r := FindRule("br-fold")
	prog, err := ir.ParseProgram(GenProgram(r))
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("main")
	before := fn.CountOp(ir.OpBr)
	if before == 0 {
		t.Fatal("generated program has no conditional branch")
	}
	st := Run(fn, Config{Machine: ir.IA64})
	if st.ByRule["br-fold"] != before {
		t.Fatalf("folded %d of %d branches: %+v", st.ByRule["br-fold"], before, st.ByRule)
	}
	if fn.CountOp(ir.OpBr) != 0 {
		t.Fatal("conditional branches remain after folding")
	}
}

// TestNoRedefinitionHazard pins the self-redefinition trap: in
// `r = shl r, k; out = lshr r, k` the inner shl overwrites the register the
// pattern variable names, so shift-mask must NOT fire (the replacement
// would read the shifted value where the original read the unshifted one).
func TestNoRedefinitionHazard(t *testing.T) {
	src := `
globals 1
func main() {
	b0:
	r0 = const -1
	storeg.64 g0 r0
	r1 = loadg.64 g0
	r2 = const 24
	r1 = shl.64 r1 r2
	r3 = lshr.64 r1 r2
	print.64 r3
	ret
}
`
	prog, err := ir.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	base := runProg(t, prog, interp.Mode64, ir.IA64, interp.DispatchSwitch)
	rw := prog.Clone()
	st := Run(rw.Func("main"), Config{Machine: ir.IA64, Rules: []string{"shift-mask"}})
	if st.Rewrites != 0 {
		t.Fatalf("shift-mask fired across a redefinition: %+v", st.ByRule)
	}
	if got := runProg(t, rw, interp.Mode64, ir.IA64, interp.DispatchSwitch); got != base {
		t.Fatalf("output changed: got %q want %q", got, base)
	}
}

// TestSharedConstMismatch: shift-mask requires the same k on both shifts.
func TestSharedConstMismatch(t *testing.T) {
	src := `
globals 1
func main() {
	b0:
	r0 = const -1
	storeg.64 g0 r0
	r1 = loadg.64 g0
	r2 = const 24
	r3 = const 16
	r4 = shl.64 r1 r2
	r5 = lshr.64 r4 r3
	print.64 r5
	ret
}
`
	prog, err := ir.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	st := Run(prog.Func("main"), Config{Machine: ir.IA64, Rules: []string{"shift-mask"}})
	if st.Rewrites != 0 {
		t.Fatalf("shift-mask fired with mismatched shift amounts: %+v", st.ByRule)
	}
}

// TestDivNegativeRangeBlocked: without the non-negativity fact the division
// rules must not fire — signed division of a negative dividend disagrees
// with both the logical shift and the magic multiply.
func TestDivNegativeRangeBlocked(t *testing.T) {
	src := `
globals 1
func main() {
	b0:
	r0 = const -64
	storeg.64 g0 r0
	r1 = loadg.64 g0
	r2 = const 16
	r3 = div.32 r1 r2
	print.32 r3
	r4 = const 7
	r5 = div.32 r1 r4
	print.32 r5
	ret
}
`
	prog, err := ir.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	st := Run(prog.Func("main"), Config{Machine: ir.IA64})
	if st.ByRule["div-pow2"] != 0 || st.ByRule["div-magic"] != 0 {
		t.Fatalf("division rules fired on an unbounded dividend: %+v", st.ByRule)
	}
}

// TestCommutedMatch: the commuted operand order (2^k * x) must rewrite too.
func TestCommutedMatch(t *testing.T) {
	src := `
globals 1
func main() {
	b0:
	r0 = const 37
	storeg.64 g0 r0
	r1 = loadg.64 g0
	r2 = const 8
	r3 = mul.32 r2 r1
	print.32 r3
	ret
}
`
	prog, err := ir.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	base := runProg(t, prog, interp.Mode64, ir.IA64, interp.DispatchSwitch)
	rw := prog.Clone()
	st := Run(rw.Func("main"), Config{Machine: ir.IA64, Rules: []string{"mul-pow2"}})
	if st.ByRule["mul-pow2"] != 1 {
		t.Fatalf("commuted mul-pow2 did not fire: %+v", st.ByRule)
	}
	if got := runProg(t, rw, interp.Mode64, ir.IA64, interp.DispatchSwitch); got != base {
		t.Fatalf("output changed: got %q want %q", got, base)
	}
}

// TestDeadPatternCleanup: the matched inner shl loses its only use and must
// be gone after Run's between-round cleanup.
func TestDeadPatternCleanup(t *testing.T) {
	r := FindRule("shift-mask")
	prog, err := ir.ParseProgram(GenProgram(r))
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("main")
	st := Run(fn, Config{Machine: ir.IA64, Rules: []string{"shift-mask"}})
	if st.Rewrites == 0 {
		t.Fatal("shift-mask did not fire")
	}
	if st.Removed == 0 {
		t.Fatal("dead inner shifts were not cleaned up")
	}
	if n := fn.CountOp(ir.OpShl); n != 0 {
		t.Fatalf("%d dead shl instructions remain", n)
	}
}
