package peep_test

import (
	"os"
	"path/filepath"
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/peep"
)

// TestGeneratedProgramsThroughJIT is the jit-pipeline half of the
// self-generated test story (the in-package half is
// TestRuleRewritesFireAndPreserveOutput): each committed generated program
// is compiled through the full guarded pipeline with the peephole pass
// focused on its one rule, the stats counter must show the rule fired
// inside the pipeline, and the peeped build must be bit-identical to the
// Mode32 reference of the 32-bit form — across both machine models and
// both interpreter dispatchers. This is the rewrite-fires +
// differential-identity acceptance gate, run on the committed artifacts so
// a stale checkout cannot pass by accident.
func TestGeneratedProgramsThroughJIT(t *testing.T) {
	for i := range peep.Rules {
		r := &peep.Rules[i]
		t.Run(r.Name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "gen", r.Name+".ir"))
			if err != nil {
				t.Fatalf("%v (run with -update via TestEveryRuleHasGeneratedTest)", err)
			}
			prog, err := ir.ParseProgram(string(src))
			if err != nil {
				t.Fatalf("committed generated program does not parse: %v", err)
			}
			ref, err := interp.Run(prog, "main", interp.Options{Mode: interp.Mode32, Machine: ir.IA64})
			if err != nil {
				t.Fatalf("Mode32 reference: %v", err)
			}
			for _, mach := range []ir.Machine{ir.IA64, ir.PPC64} {
				res, err := jit.Compile(prog, jit.Options{
					Variant: jit.All, Machine: mach, GeneralOpts: true,
					Checked: true, Parallelism: 1,
					Peep: true, PeepRules: []string{r.Name},
				})
				if err != nil {
					t.Fatalf("%v: peeped compile: %v", mach, err)
				}
				if len(res.Fallbacks) != 0 {
					t.Fatalf("%v: pipeline fell back on a generated program: %v", mach, res.Fallbacks)
				}
				if res.PeepRewrites == 0 {
					t.Fatalf("%v: rule %s did not fire inside the jit pipeline", mach, r.Name)
				}
				for _, d := range []interp.Dispatch{interp.DispatchSwitch, interp.DispatchThreaded} {
					got, err := interp.Run(res.Prog, "main", interp.Options{
						Mode: interp.Mode64, Machine: mach, Dispatch: d,
					})
					if err != nil {
						t.Fatalf("%v dispatch %d: %v", mach, d, err)
					}
					if got.Output != ref.Output {
						t.Fatalf("%v dispatch %d: peeped build diverged from Mode32 reference\ngot  %q\nwant %q",
							mach, d, got.Output, ref.Output)
					}
				}
			}
		})
	}
}
