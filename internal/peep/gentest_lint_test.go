package peep

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the per-rule test programs and corpus entries")

// Generated-artifact locations, relative to this package directory (the
// test working directory): the per-rule IR test programs consumed by the
// jit-pipeline tests in gentest_test.go, and the directed sxfuzz corpus
// replayed by the differential tester.
const (
	genDir    = "testdata/gen"
	corpusDir = "../difftest/testdata/peep"
)

// TestEveryRuleHasGeneratedTest is the lint the issue asks for: every rule
// in the table must have a generated test program and a directed corpus
// entry, both byte-identical to what the current table generates. A new or
// edited rule fails this test until `go test ./internal/peep -run
// TestEveryRuleHasGeneratedTest -update` regenerates the artifacts, and a
// stale artifact can never silently survive a table change.
func TestEveryRuleHasGeneratedTest(t *testing.T) {
	if *update {
		for _, dir := range []string{genDir, corpusDir} {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
	}
	var missing, stale []string
	checkFile := func(rule, path, want string) {
		if *update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		got, err := os.ReadFile(path)
		switch {
		case err != nil:
			missing = append(missing, rule+": "+path)
		case string(got) != want:
			stale = append(stale, rule+": "+path)
		}
	}
	for i := range Rules {
		r := &Rules[i]
		checkFile(r.Name, filepath.Join(genDir, r.Name+".ir"), GenProgram(r))
		checkFile(r.Name, filepath.Join(corpusDir, r.Name+".ir"), GenCorpusEntry(r))
	}
	if len(missing)+len(stale) > 0 {
		t.Errorf("rule table and generated artifacts disagree; run:\n\tgo test ./internal/peep -run TestEveryRuleHasGeneratedTest -update")
		if len(missing) > 0 {
			t.Errorf("missing generated files:\n\t%s", strings.Join(missing, "\n\t"))
		}
		if len(stale) > 0 {
			t.Errorf("stale generated files (table changed since last -update):\n\t%s", strings.Join(stale, "\n\t"))
		}
	}

	// The reverse direction: an orphan artifact whose rule left the table is
	// as much lint as a missing one.
	for _, dir := range []string{genDir, corpusDir} {
		entries, err := filepath.Glob(filepath.Join(dir, "*.ir"))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range entries {
			name := strings.TrimSuffix(filepath.Base(p), ".ir")
			if FindRule(name) == nil {
				if *update {
					if err := os.Remove(p); err != nil {
						t.Fatal(err)
					}
					continue
				}
				t.Errorf("orphan generated file %s: no rule %q in the table (rerun with -update to remove)", p, name)
			}
		}
	}
}
