package peep

import (
	"testing"

	"signext/internal/ir"
	"signext/internal/target"
)

// patternCost sums the machine cycle cost of the instructions a rule's
// match consumes: the anchor plus every nested sub-pattern instruction
// (sole-use by construction, so the rewrite deletes it).
func patternCost(p *Pat, c func(*ir.Instr) int64) int64 {
	total := c(&ir.Instr{Op: p.Op})
	for i := range p.Args {
		if p.Args[i].Kind == ArgSub {
			total += patternCost(p.Args[i].Sub, c)
		}
	}
	return total
}

// replacementCost sums the cycle cost of the emitted template. The one
// branch rule rewrites its anchor to a jump.
func replacementCost(r *Rule, c func(*ir.Instr) int64) int64 {
	if r.Branch != nil {
		return c(&ir.Instr{Op: ir.OpJmp})
	}
	var total int64
	for i := range r.Replace {
		total += c(&ir.Instr{Op: r.Replace[i].Op})
	}
	return total
}

// TestRuleCostModel pins, per rule and per machine model, the static cycle
// cost of the matched pattern against its replacement, and fails on any
// pessimization. This is the satellite the issue asks for: a table change
// that makes a "peephole" emit something slower than what it matched (on
// either IA64 or PPC64 — the machines disagree on multiply cost) cannot
// land silently.
func TestRuleCostModel(t *testing.T) {
	// want[name] = {patIA64, replIA64, patPPC64, replPPC64}.
	want := map[string][4]int64{
		"div-pow2":     {35, 2, 35, 2},  // div -> const+lshr
		"rem-pow2":     {35, 2, 35, 2},  // rem -> const+and
		"div-magic":    {35, 10, 35, 8}, // div -> const+mul+const+lshr
		"rem-magic":    {35, 19, 35, 15},
		"shift-ext":    {2, 1, 2, 1}, // shl+ashr -> ext
		"shift-mask":   {2, 2, 2, 2}, // shl+lshr -> const+and
		"shl-shl":      {2, 2, 2, 2},
		"mul-pow2":     {7, 2, 5, 2}, // mul -> const+shl
		"mul-one":      {7, 1, 5, 1}, // mul -> mov
		"or-zero":      {1, 1, 1, 1},
		"and-minusone": {1, 1, 1, 1},
		"xor-zero":     {1, 1, 1, 1},
		"add-zero":     {1, 1, 1, 1},
		"sub-zero":     {1, 1, 1, 1},
		"br-fold":      {2, 1, 2, 1}, // br -> jmp
	}
	machines := []ir.Machine{ir.IA64, ir.PPC64}
	for i := range Rules {
		r := &Rules[i]
		t.Run(r.Name, func(t *testing.T) {
			w, ok := want[r.Name]
			if !ok {
				t.Fatalf("rule %s has no pinned cost row; add one to TestRuleCostModel", r.Name)
			}
			for mi, mach := range machines {
				c := target.CostModel(mach)
				pat := patternCost(&r.Pattern, c)
				repl := replacementCost(r, c)
				if pat != w[2*mi] || repl != w[2*mi+1] {
					t.Errorf("%v: cost (pattern=%d, replacement=%d), pinned (%d, %d)",
						mach, pat, repl, w[2*mi], w[2*mi+1])
				}
				if repl > pat {
					t.Errorf("%v: replacement costs %d cycles but the matched pattern only %d — the rule is a pessimization",
						mach, repl, pat)
				}
			}
		})
	}
	for name := range want {
		if FindRule(name) == nil {
			t.Errorf("pinned cost row %q names no rule in the table", name)
		}
	}
}
