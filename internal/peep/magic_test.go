package peep

import (
	"math"
	"testing"
)

// TestFindMagicExhaustive checks every divisor up to 50 against dense small
// dividends and the extreme of each claimed range: (x*M)>>S must equal x/d
// and the product must stay below 2^63 (no signed overflow in the rewritten
// mul.64).
func TestFindMagicExhaustive(t *testing.T) {
	check := func(d, n, x int64, m Magic) {
		t.Helper()
		p := x * m.M
		if x != 0 && p/x != m.M {
			t.Fatalf("d=%d n=%d x=%d: x*M overflows int64 (M=%d)", d, n, x, m.M)
		}
		if got, want := int64(uint64(p)>>m.S), x/d; got != want {
			t.Fatalf("d=%d n=%d x=%d: (x*%d)>>%d = %d, want %d", d, n, x, m.M, m.S, got, want)
		}
	}
	for d := int64(2); d <= 50; d++ {
		for _, n := range []int64{0, 1, d - 1, d, 100, 65535, math.MaxInt32} {
			m, ok := FindMagic(d, n)
			if !ok {
				t.Fatalf("FindMagic(%d, %d) found nothing", d, n)
			}
			for x := int64(0); x <= n && x <= 300; x++ {
				check(d, n, x, m)
			}
			// The top of the range is where round-up error accumulates.
			for x := n - 300; x <= n; x++ {
				if x >= 0 {
					check(d, n, x, m)
				}
			}
		}
	}
}

// TestFindMagicPinned pins the d=3 constants over the full non-negative
// int32 range: M = floor(2^31/3)+1 has round-up error e = 1, so e*N < 2^31
// already holds at S = 31 — smaller than the classical fixed shift of 32,
// which is exactly the improvement of choosing S per proven range.
func TestFindMagicPinned(t *testing.T) {
	m, ok := FindMagic(3, math.MaxInt32)
	if !ok {
		t.Fatal("no magic for d=3 over int32")
	}
	if m.M != 715827883 || m.S != 31 {
		t.Fatalf("got M=%d S=%d, want M=715827883 S=31", m.M, m.S)
	}
}

func TestFindMagicRejects(t *testing.T) {
	cases := []struct{ d, n int64 }{
		{1, 10},            // d too small
		{0, 10},            // degenerate
		{-3, 10},           // negative divisor
		{3, -1},            // negative range
		{3, math.MaxInt64}, // x*M cannot stay below 2^63
	}
	for _, c := range cases {
		if _, ok := FindMagic(c.d, c.n); ok {
			t.Errorf("FindMagic(%d, %d) unexpectedly succeeded", c.d, c.n)
		}
	}
}
