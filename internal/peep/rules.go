package peep

import (
	"math"
	"math/bits"

	"signext/internal/guard"
	"signext/internal/ir"
)

// ArgKind says how one pattern operand matches.
type ArgKind int

const (
	// ArgVar matches any operand register and binds Name to it.
	ArgVar ArgKind = iota
	// ArgConst matches an operand the value-range analysis proves constant
	// and binds Name to the value. Two operands bound to the same Name must
	// hold the same constant.
	ArgConst
	// ArgConstVal matches an operand proven to be exactly the constant Val.
	ArgConstVal
	// ArgSub matches an operand whose unique reaching definition is a
	// same-block instruction matching the nested pattern Sub with no other
	// uses, so it is guaranteed dead once the anchor is rewritten.
	ArgSub
)

// PatArg is one operand of a pattern instruction.
type PatArg struct {
	Kind ArgKind
	Name string
	Val  int64
	Sub  *Pat
}

// Pat is a pattern over one instruction: the opcode plus one PatArg per
// fixed operand. The anchor pattern's width is constrained by Rule.Widths;
// nested patterns must match the anchor's width exactly.
type Pat struct {
	Op   ir.Op
	Args []PatArg
}

// Guard is a named predicate over the match bindings and the value-range
// facts. Guards may stash computed constants (via Match.Set) for the
// replacement template to consume. The name appears in documentation and in
// the generated-test lint, so keep it a readable sentence fragment.
type Guard struct {
	Name string
	Fn   func(m *Match) bool
}

// RInstr is one instruction of a replacement template. Instructions are
// emitted in order immediately before the anchor; the last one rewrites the
// anchor in place (keeping its destination register), so its Dst must be
// RDst. W == 0 means "the anchor's width"; WF, when set, computes the width
// from the match. Const, when set, makes this an OpConst whose value is
// resolved against the match bindings.
type RInstr struct {
	Op    ir.Op
	W     ir.Width
	WF    func(m *Match) ir.Width
	Dst   string
	Args  []string
	Const func(m *Match) int64
}

// RDst is the template destination name denoting the anchor's own register.
const RDst = "out"

// GenIn describes one runtime input of a generated rule test program.
type GenIn struct {
	// Mask, when positive, launders the input through a 64-bit and with
	// this constant, establishing the value-range fact [0, Mask] that the
	// rule's guards consume. Zero launders through globals only (full
	// range). Const materializes the (single) value as a plain constant
	// instead, giving the analysis an exact range.
	Mask  int64
	Const bool
	Vals  []int64
}

// GenSpec parameterizes GenProgram for one rule: the width to instantiate
// the anchor at, values for the pattern's named constants, and the runtime
// inputs for its variables.
type GenSpec struct {
	W      ir.Width
	Consts map[string]int64
	Inputs map[string]GenIn
}

// Rule is one row of the declarative table.
type Rule struct {
	Name    string
	Doc     string
	Pattern Pat
	Commute bool       // also match the anchor with swapped operands
	Widths  []ir.Width // anchor widths the rule applies at
	Guards  []Guard

	// Replace is the rewrite template for value rules. Branch, set instead
	// for control-flow rules, performs the rewrite itself (the only current
	// one folds a range-decided conditional branch to a jump).
	Replace []RInstr
	Branch  func(m *Match) bool

	Gen GenSpec
}

// helpers keeping the table itself readable ------------------------------

func pv(name string) PatArg { return PatArg{Kind: ArgVar, Name: name} }
func pc(name string) PatArg { return PatArg{Kind: ArgConst, Name: name} }
func pcv(v int64) PatArg    { return PatArg{Kind: ArgConstVal, Val: v} }
func psub(op ir.Op, args ...PatArg) PatArg {
	return PatArg{Kind: ArgSub, Sub: &Pat{Op: op, Args: args}}
}

func rop(op ir.Op, dst string, args ...string) RInstr {
	return RInstr{Op: op, Dst: dst, Args: args}
}

func rop64(op ir.Op, dst string, args ...string) RInstr {
	return RInstr{Op: op, W: ir.W64, Dst: dst, Args: args}
}

// rconst emits an OpConst holding the named match constant (bound by the
// pattern or computed by a guard). The width is chosen at rewrite time so
// wide magic multipliers are honestly annotated.
func rconst(dst, name string) RInstr {
	return RInstr{
		Op:  ir.OpConst,
		Dst: dst,
		WF: func(m *Match) ir.Width {
			if ir.W32.InRange(m.Const(name)) {
				return ir.W32
			}
			return ir.W64
		},
		Const: func(m *Match) int64 { return m.Const(name) },
	}
}

func anyWidth() []ir.Width { return []ir.Width{ir.W32, ir.W64} }

func maxSigned(w ir.Width) int64 {
	if w == ir.W64 {
		return math.MaxInt64
	}
	return int64(w.Mask() >> 1)
}

// nonNegIn reports whether the bound variable's value range is proven
// within [0, hi] — for W32 operands this is exactly the paper's
// upper-32-bits-zero fact.
func nonNegIn(m *Match, name string, hi int64) bool {
	r := m.RangeOf(name)
	return !r.IsBottom() && r.Lo >= 0 && r.Hi <= hi
}

// pow2Guard matches c == 2^k with 1 <= k <= W-1 and stashes k.
func pow2Guard(cname, kname string) Guard {
	return Guard{
		Name: cname + " is a power of two 2^k, 1 <= k <= W-1",
		Fn: func(m *Match) bool {
			c := m.Const(cname)
			if c <= 1 || c&(c-1) != 0 {
				return false
			}
			k := int64(bits.TrailingZeros64(uint64(c)))
			if k < 1 || k > int64(m.W)-1 {
				return false
			}
			m.Set(kname, k)
			return true
		},
	}
}

// magicGuard requires a vrange-bounded non-negative 32-bit dividend and an
// exact round-up magic pair for the matched divisor, stashing M and S.
func magicGuard() Guard {
	return Guard{
		Name: "dividend proven in [0, N] with exact magic M, S for the divisor",
		Fn: func(m *Match) bool {
			d := m.Const("d")
			if d < 3 || d&(d-1) == 0 {
				return false
			}
			r := m.RangeOf("x")
			if r.IsBottom() || r.Lo < 0 || r.Hi > math.MaxInt32 {
				return false
			}
			mg, ok := FindMagic(d, r.Hi)
			if !ok {
				return false
			}
			m.Set("M", mg.M)
			m.Set("S", int64(mg.S))
			return true
		},
	}
}

// Rules is the declarative table. Order matters: the first matching rule
// rewrites the instruction, so cheaper special cases precede general ones
// (power-of-two division before magic-number division).
var Rules = []Rule{
	{
		Name:    "div-pow2",
		Doc:     "x / 2^k  =>  x >>u k  when x is proven non-negative",
		Pattern: Pat{Op: ir.OpDiv, Args: []PatArg{pv("x"), pc("c")}},
		Widths:  anyWidth(),
		Guards: []Guard{
			pow2Guard("c", "k"),
			{Name: "x proven non-negative within the width", Fn: func(m *Match) bool {
				return nonNegIn(m, "x", maxSigned(m.W))
			}},
		},
		Replace: []RInstr{
			rconst("k", "k"),
			rop(ir.OpLShr, RDst, "x", "k"),
		},
		Gen: GenSpec{
			W:      ir.W32,
			Consts: map[string]int64{"c": 16},
			Inputs: map[string]GenIn{"x": {Mask: 0x7fff, Vals: []int64{0, 12345, 32767}}},
		},
	},
	{
		Name:    "rem-pow2",
		Doc:     "x % 2^k  =>  x & (2^k - 1)  when x is proven non-negative",
		Pattern: Pat{Op: ir.OpRem, Args: []PatArg{pv("x"), pc("c")}},
		Widths:  anyWidth(),
		Guards: []Guard{
			pow2Guard("c", "k"),
			{Name: "x proven non-negative within the width", Fn: func(m *Match) bool {
				if !nonNegIn(m, "x", maxSigned(m.W)) {
					return false
				}
				m.Set("mask", m.Const("c")-1)
				return true
			}},
		},
		Replace: []RInstr{
			rconst("mask", "mask"),
			rop(ir.OpAnd, RDst, "x", "mask"),
		},
		Gen: GenSpec{
			W:      ir.W32,
			Consts: map[string]int64{"c": 32},
			Inputs: map[string]GenIn{"x": {Mask: 0x7fff, Vals: []int64{1, 9999, 32767}}},
		},
	},
	{
		Name: "div-magic",
		Doc: "x / d  =>  (x * M) >>u S  by the round-up magic-number method, " +
			"exact over the proven dividend range [0, N]",
		Pattern: Pat{Op: ir.OpDiv, Args: []PatArg{pv("x"), pc("d")}},
		Widths:  []ir.Width{ir.W32},
		Guards:  []Guard{magicGuard()},
		Replace: []RInstr{
			rconst("M", "M"),
			rop64(ir.OpMul, "t", "x", "M"),
			rconst("S", "S"),
			rop64(ir.OpLShr, RDst, "t", "S"),
		},
		Gen: GenSpec{
			W:      ir.W32,
			Consts: map[string]int64{"d": 7},
			Inputs: map[string]GenIn{"x": {Mask: 0xfffff, Vals: []int64{0, 54321, 1048575}}},
		},
	},
	{
		Name:    "rem-magic",
		Doc:     "x % d  =>  x - ((x * M) >>u S) * d  via the magic quotient",
		Pattern: Pat{Op: ir.OpRem, Args: []PatArg{pv("x"), pc("d")}},
		Widths:  []ir.Width{ir.W32},
		Guards:  []Guard{magicGuard()},
		Replace: []RInstr{
			rconst("M", "M"),
			rop64(ir.OpMul, "t", "x", "M"),
			rconst("S", "S"),
			rop64(ir.OpLShr, "q", "t", "S"),
			rconst("d", "d"),
			rop64(ir.OpMul, "qd", "q", "d"),
			rop64(ir.OpSub, RDst, "x", "qd"),
		},
		Gen: GenSpec{
			W:      ir.W32,
			Consts: map[string]int64{"d": 10},
			Inputs: map[string]GenIn{"x": {Mask: 0xfffff, Vals: []int64{6, 123456, 1048575}}},
		},
	},
	{
		Name:    "shift-ext",
		Doc:     "(x << k) >>s k  =>  ext.(W-k) x  when W-k is a register subwidth",
		Pattern: Pat{Op: ir.OpAShr, Args: []PatArg{psub(ir.OpShl, pv("x"), pc("k")), pc("k")}},
		Widths:  anyWidth(),
		Guards: []Guard{
			{Name: "W-k is 8, 16 or 32", Fn: func(m *Match) bool {
				k := m.Const("k")
				ew := int64(m.W) - k
				if ew != 8 && ew != 16 && ew != 32 {
					return false
				}
				m.Set("ew", ew)
				return true
			}},
		},
		Replace: []RInstr{
			{Op: ir.OpExt, Dst: RDst, Args: []string{"x"},
				WF: func(m *Match) ir.Width { return ir.Width(m.Const("ew")) }},
		},
		Gen: GenSpec{
			W:      ir.W64,
			Consts: map[string]int64{"k": 32},
			Inputs: map[string]GenIn{"x": {Vals: []int64{74565, -42, 255}}},
		},
	},
	{
		Name:    "shift-mask",
		Doc:     "(x << k) >>u k  =>  x & (2^(W-k) - 1)",
		Pattern: Pat{Op: ir.OpLShr, Args: []PatArg{psub(ir.OpShl, pv("x"), pc("k")), pc("k")}},
		Widths:  anyWidth(),
		Guards: []Guard{
			{Name: "1 <= k <= W-1", Fn: func(m *Match) bool {
				k := m.Const("k")
				if k < 1 || k > int64(m.W)-1 {
					return false
				}
				m.Set("mask", int64(m.W.Mask()>>uint(k)))
				return true
			}},
		},
		Replace: []RInstr{
			rconst("mask", "mask"),
			rop(ir.OpAnd, RDst, "x", "mask"),
		},
		Gen: GenSpec{
			W:      ir.W64,
			Consts: map[string]int64{"k": 24},
			Inputs: map[string]GenIn{"x": {Vals: []int64{-1, 987654321, 77}}},
		},
	},
	{
		Name:    "shl-shl",
		Doc:     "(x << a) << b  =>  x << (a+b)",
		Pattern: Pat{Op: ir.OpShl, Args: []PatArg{psub(ir.OpShl, pv("x"), pc("a")), pc("b")}},
		Widths:  anyWidth(),
		Guards: []Guard{
			{Name: "a, b >= 0 and a+b <= W-1", Fn: func(m *Match) bool {
				a, b := m.Const("a"), m.Const("b")
				if a < 0 || b < 0 || a+b > int64(m.W)-1 {
					return false
				}
				m.Set("s", a+b)
				return true
			}},
		},
		Replace: []RInstr{
			rconst("s", "s"),
			rop(ir.OpShl, RDst, "x", "s"),
		},
		Gen: GenSpec{
			W:      ir.W64,
			Consts: map[string]int64{"a": 5, "b": 7},
			Inputs: map[string]GenIn{"x": {Vals: []int64{1, -1, 123456789}}},
		},
	},
	{
		Name:    "mul-pow2",
		Doc:     "x * 2^k  =>  x << k",
		Pattern: Pat{Op: ir.OpMul, Args: []PatArg{pv("x"), pc("c")}},
		Commute: true,
		Widths:  anyWidth(),
		Guards:  []Guard{pow2Guard("c", "k")},
		Replace: []RInstr{
			rconst("k", "k"),
			rop(ir.OpShl, RDst, "x", "k"),
		},
		Gen: GenSpec{
			W:      ir.W32,
			Consts: map[string]int64{"c": 8},
			Inputs: map[string]GenIn{"x": {Vals: []int64{3, -5, 4097}}},
		},
	},
	{
		Name:    "mul-one",
		Doc:     "x * 1  =>  x",
		Pattern: Pat{Op: ir.OpMul, Args: []PatArg{pv("x"), pcv(1)}},
		Commute: true,
		Widths:  anyWidth(),
		Replace: []RInstr{rop(ir.OpMov, RDst, "x")},
		Gen: GenSpec{
			W:      ir.W32,
			Inputs: map[string]GenIn{"x": {Vals: []int64{6, -14, 31415}}},
		},
	},
	{
		Name:    "or-zero",
		Doc:     "x | 0  =>  x",
		Pattern: Pat{Op: ir.OpOr, Args: []PatArg{pv("x"), pcv(0)}},
		Commute: true,
		Widths:  anyWidth(),
		Replace: []RInstr{rop(ir.OpMov, RDst, "x")},
		Gen: GenSpec{
			W:      ir.W32,
			Inputs: map[string]GenIn{"x": {Vals: []int64{5, -7, 1234567}}},
		},
	},
	{
		Name:    "and-minusone",
		Doc:     "x & -1  =>  x",
		Pattern: Pat{Op: ir.OpAnd, Args: []PatArg{pv("x"), pcv(-1)}},
		Commute: true,
		Widths:  anyWidth(),
		Replace: []RInstr{rop(ir.OpMov, RDst, "x")},
		Gen: GenSpec{
			W:      ir.W32,
			Inputs: map[string]GenIn{"x": {Vals: []int64{5, -7, 123456}}},
		},
	},
	{
		Name:    "xor-zero",
		Doc:     "x ^ 0  =>  x",
		Pattern: Pat{Op: ir.OpXor, Args: []PatArg{pv("x"), pcv(0)}},
		Commute: true,
		Widths:  anyWidth(),
		Replace: []RInstr{rop(ir.OpMov, RDst, "x")},
		Gen: GenSpec{
			W:      ir.W32,
			Inputs: map[string]GenIn{"x": {Vals: []int64{9, -3, 271828}}},
		},
	},
	{
		Name:    "add-zero",
		Doc:     "x + 0  =>  x",
		Pattern: Pat{Op: ir.OpAdd, Args: []PatArg{pv("x"), pcv(0)}},
		Commute: true,
		Widths:  anyWidth(),
		Replace: []RInstr{rop(ir.OpMov, RDst, "x")},
		Gen: GenSpec{
			W:      ir.W32,
			Inputs: map[string]GenIn{"x": {Vals: []int64{1, -1, 65536}}},
		},
	},
	{
		Name:    "sub-zero",
		Doc:     "x - 0  =>  x",
		Pattern: Pat{Op: ir.OpSub, Args: []PatArg{pv("x"), pcv(0)}},
		Widths:  anyWidth(),
		Replace: []RInstr{rop(ir.OpMov, RDst, "x")},
		Gen: GenSpec{
			W:      ir.W32,
			Inputs: map[string]GenIn{"x": {Vals: []int64{42, -9, 100000}}},
		},
	},
	{
		Name: "br-fold",
		Doc: "a conditional branch whose outcome the value ranges decide " +
			"becomes a jump (redundant-compare elimination: a compare dominated " +
			"by an identical decided compare folds through OfOperandAt refinement)",
		Pattern: Pat{Op: ir.OpBr, Args: []PatArg{pv("x"), pv("y")}},
		Widths:  anyWidth(),
		Guards:  []Guard{{Name: "both operand ranges decide the condition", Fn: brDecided}},
		Branch:  foldDecidedBranch,
		Gen: GenSpec{
			W: ir.W32,
			Inputs: map[string]GenIn{
				"x": {Mask: 15, Vals: []int64{3, 9, 15}},
				"y": {Const: true, Vals: []int64{16}},
			},
		},
	},
}

// brDecided reports whether the anchor branch's outcome is decided by the
// operand value ranges under the exact evalBr width semantics: signed
// conditions compare the sign-extended low W bits, unsigned conditions the
// zero-extended low W bits. The ranges bound the raw register values, so the
// fold only applies when every range value is its own W-bit normalization —
// then range-endpoint comparison is sound. The decided direction is stashed
// as "taken".
func brDecided(m *Match) bool {
	ins := m.Ins
	if len(ins.Blk.Succs) != 2 {
		return false
	}
	rx, ry := m.RangeOf("x"), m.RangeOf("y")
	if rx.IsBottom() || ry.IsBottom() {
		return false
	}
	hi := maxSigned(m.W)
	lo := int64(-1) - hi
	cond := ins.Cond
	switch cond {
	case ir.CondULT, ir.CondULE, ir.CondUGT, ir.CondUGE:
		// Zero-extension is the identity only on [0, 2^(W-1)-1]; there the
		// unsigned comparison agrees with its signed counterpart.
		if rx.Lo < 0 || rx.Hi > hi || ry.Lo < 0 || ry.Hi > hi {
			return false
		}
		switch cond {
		case ir.CondULT:
			cond = ir.CondLT
		case ir.CondULE:
			cond = ir.CondLE
		case ir.CondUGT:
			cond = ir.CondGT
		case ir.CondUGE:
			cond = ir.CondGE
		}
	default:
		if rx.Lo < lo || rx.Hi > hi || ry.Lo < lo || ry.Hi > hi {
			return false
		}
	}
	switch {
	case condAlways(cond, rx, ry):
		m.Set("taken", 1)
	case condAlways(cond.Negate(), rx, ry):
		m.Set("taken", 0)
	default:
		return false
	}
	return true
}

// condAlways reports whether cond holds for every (x, y) pair drawn from the
// two ranges (signed semantics; unsigned conditions were translated away).
func condAlways(cond ir.Cond, rx, ry vrangeRange) bool {
	switch cond {
	case ir.CondEQ:
		return rx.Lo == rx.Hi && ry.Lo == ry.Hi && rx.Lo == ry.Lo
	case ir.CondNE:
		return rx.Hi < ry.Lo || ry.Hi < rx.Lo
	case ir.CondLT:
		return rx.Hi < ry.Lo
	case ir.CondLE:
		return rx.Hi <= ry.Lo
	case ir.CondGT:
		return rx.Lo > ry.Hi
	case ir.CondGE:
		return rx.Lo >= ry.Hi
	}
	return false
}

// foldDecidedBranch rewrites the anchor into a jump to the decided
// successor and removes the dead edge. The abandoned block may become
// unreachable; it is left in place — the verifier tolerates unreachable
// blocks and the interpreter never executes them.
//
// Removing an edge can, however, sever the only def→use path of a register
// some still-reachable block reads (the definition sat on the arm the
// ranges prove dead). Execution never misses it — that path never runs —
// but the function is then statically malformed and the deep verifier
// rejects it, which in the guarded jit pipeline means a needless fallback.
// The fold is therefore applied tentatively and reverted unless the
// function still verifies.
func foldDecidedBranch(m *Match) bool {
	ins := m.Ins
	b := ins.Blk
	dead := b.Succs[1]
	if m.Get("taken") == 0 {
		dead = b.Succs[0]
	}
	saved := *ins
	savedSuccs := append([]*ir.Block(nil), b.Succs...)
	savedPreds := append([]*ir.Block(nil), dead.Preds...)
	ir.RemoveEdge(b, dead)
	ins.Op = ir.OpJmp
	ins.W = 0
	ins.Cond = 0
	ins.NSrcs = 0
	ins.Srcs = [3]ir.Reg{}
	if guard.VerifyFunc(m.Fn, m.M) != nil {
		*ins = saved
		b.Succs = savedSuccs
		dead.Preds = savedPreds
		return false
	}
	return true
}

// RuleNames returns the table's rule names in table order.
func RuleNames() []string {
	names := make([]string, len(Rules))
	for i := range Rules {
		names[i] = Rules[i].Name
	}
	return names
}

// FindRule returns the named rule, or nil.
func FindRule(name string) *Rule {
	for i := range Rules {
		if Rules[i].Name == name {
			return &Rules[i]
		}
	}
	return nil
}
