package workloads

import (
	"testing"

	"signext/internal/interp"
	"signext/internal/ir"
	"signext/internal/jit"
	"signext/internal/minijava"
)

// TestWorkloadsCompileAndRun compiles every kernel and checks it runs to
// completion under the 32-bit reference semantics with deterministic output.
func TestWorkloadsCompileAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cu, err := minijava.Compile(w.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
			if err != nil {
				t.Fatalf("run: %v\noutput:\n%s", err, res.Output)
			}
			if res.Output == "" {
				t.Fatal("no output")
			}
			res2, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
			if err != nil || res2.Output != res.Output {
				t.Fatalf("non-deterministic output")
			}
		})
	}
}

// TestWorkloadsSoundUnderOptimization runs every kernel under the key
// variants and checks behavioural equivalence plus the expected monotone
// drop in dynamic extension counts.
func TestWorkloadsSoundUnderOptimization(t *testing.T) {
	variants := []jit.Variant{jit.Baseline, jit.GenUse, jit.FirstAlgorithm, jit.BasicUDDU, jit.All}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cu, err := minijava.Compile(w.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ref, err := interp.Run(cu.Prog, "main", interp.Options{Mode: interp.Mode32})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			counts := map[jit.Variant]int64{}
			for _, v := range variants {
				res, err := jit.Compile(cu.Prog, jit.Options{
					Variant: v, Machine: ir.IA64, GeneralOpts: true, Verify: true,
				})
				if err != nil {
					t.Fatalf("%s: compile: %v", v, err)
				}
				out, err := jit.Execute(res, "main")
				if err != nil {
					t.Fatalf("%s: run: %v\noutput:\n%s", v, err, out.Output)
				}
				if out.Output != ref.Output {
					t.Fatalf("%s: wrong output\nwant %q\ngot  %q", v, ref.Output, out.Output)
				}
				counts[v] = out.Ext32()
			}
			if counts[jit.All] > counts[jit.Baseline] {
				t.Errorf("new algorithm worse than baseline: %v", counts)
			}
			// Per-benchmark, basic ud/du can lose to the backward-dataflow
			// first algorithm (flow-sensitivity vs chain precision — the
			// paper's tables have such cells too); the full algorithm must
			// still win overall.
			if counts[jit.All] > counts[jit.FirstAlgorithm] {
				t.Errorf("the new algorithm should not lose to the first algorithm: %v", counts)
			}
		})
	}
}
