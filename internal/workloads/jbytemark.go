package workloads

// The ten jBYTEmark kernels. Each reproduces the operation mix of the
// original benchmark: the integer sorts and bit manipulation are
// array-subscript heavy (where the paper's Theorems shine), FP emulation
// does 32-bit mantissa/exponent arithmetic, Fourier and the neural net mix
// int subscripts with double math, IDEA works in 16-bit modular arithmetic.

const srcNumericSort = `
// jBYTEmark Numeric Sort: heapsort over signed 32-bit integers.
static int seed = 7;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }

void heapify(int[] a, int n, int i) {
	while (true) {
		int largest = i;
		int l = 2 * i + 1;
		int r = 2 * i + 2;
		if (l < n && a[l] > a[largest]) { largest = l; }
		if (r < n && a[r] > a[largest]) { largest = r; }
		if (largest == i) { break; }
		int t = a[i]; a[i] = a[largest]; a[largest] = t;
		i = largest;
	}
}

void main() {
	int n = 2000;
	int[] a = new int[n];
	int pass = 0;
	int check = 0;
	while (pass < 3) {
		for (int i = 0; i < n; i++) { a[i] = rnd() - 32768; }
		for (int i = n / 2 - 1; i >= 0; i--) { heapify(a, n, i); }
		for (int i = n - 1; i > 0; i--) {
			int t = a[0]; a[0] = a[i]; a[i] = t;
			heapify(a, i, 0);
		}
		int ok = 1;
		for (int i = 1; i < n; i++) { if (a[i - 1] > a[i]) { ok = 0; } }
		check = check * 31 + a[0] + a[n - 1] + ok;
		pass++;
	}
	print(check);
}
`

const srcStringSort = `
// jBYTEmark String Sort: shell sort of variable-length byte strings held in
// one pool, addressed through an offset table.
static int seed = 99;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 9) & 0x7fff; }

// Compare strings at offsets oa and ob (length-prefixed in the pool).
int cmp(byte[] pool, int oa, int ob) {
	int la = pool[oa] & 0xff;
	int lb = pool[ob] & 0xff;
	int n = la;
	if (lb < n) { n = lb; }
	for (int k = 1; k <= n; k++) {
		int ca = pool[oa + k] & 0xff;
		int cb = pool[ob + k] & 0xff;
		if (ca != cb) { return ca - cb; }
	}
	return la - lb;
}

void main() {
	int count = 400;
	byte[] pool = new byte[count * 18];
	int[] off = new int[count];
	int pos = 0;
	for (int i = 0; i < count; i++) {
		int len = 4 + rnd() % 12;
		off[i] = pos;
		pool[pos] = (byte) len;
		for (int k = 1; k <= len; k++) { pool[pos + k] = (byte) (97 + rnd() % 26); }
		pos = pos + len + 1;
	}
	// Shell sort on the offset table.
	int gap = count / 2;
	while (gap > 0) {
		for (int i = gap; i < count; i++) {
			int tmp = off[i];
			int j = i;
			while (j >= gap && cmp(pool, off[j - gap], tmp) > 0) {
				off[j] = off[j - gap];
				j = j - gap;
			}
			off[j] = tmp;
		}
		gap = gap / 2;
	}
	int check = 0;
	for (int i = 0; i < count; i++) {
		check = check * 131 + pool[off[i] + 1];
	}
	print(check);
}
`

const srcBitfield = `
// jBYTEmark Bitfield: set, clear and complement runs of bits in a bitmap.
static int seed = 13;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 7) & 0xfffff; }

void setRange(int[] map, int start, int len) {
	for (int b = start; b < start + len; b++) {
		map[b >> 5] = map[b >> 5] | (1 << (b & 31));
	}
}
void clearRange(int[] map, int start, int len) {
	for (int b = start; b < start + len; b++) {
		map[b >> 5] = map[b >> 5] & ~(1 << (b & 31));
	}
}
void flipRange(int[] map, int start, int len) {
	for (int b = start; b < start + len; b++) {
		map[b >> 5] = map[b >> 5] ^ (1 << (b & 31));
	}
}
int popcount(int[] map) {
	int total = 0;
	for (int i = 0; i < map.length; i++) {
		int v = map[i];
		while (v != 0) { v = v & (v - 1); total++; }
	}
	return total;
}

void main() {
	int words = 1024;
	int bits = words * 32;
	int[] map = new int[words];
	for (int op = 0; op < 1200; op++) {
		int start = rnd() % (bits - 64);
		int len = 1 + rnd() % 63;
		int kind = op % 3;
		if (kind == 0) { setRange(map, start, len); }
		else if (kind == 1) { clearRange(map, start, len); }
		else { flipRange(map, start, len); }
	}
	print(popcount(map));
	int check = 0;
	for (int i = 0; i < words; i++) { check = check ^ (map[i] * (i + 1)); }
	print(check);
}
`

const srcFPEmu = `
// jBYTEmark FP Emulation: software floating point on 32-bit words
// (1 sign bit, 8 exponent bits, 23-bit mantissa), add and multiply
// implemented with integer shifts and 64-bit products.
static int seed = 21;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 10) & 0xffff; }

int fpPack(int sign, int exp, int mant) {
	// Normalize the 24-bit mantissa.
	if (mant == 0) { return 0; }
	while (mant >= (1 << 24)) { mant = mant >>> 1; exp++; }
	while (mant < (1 << 23)) { mant = mant << 1; exp--; }
	if (exp <= 0) { return 0; }
	if (exp >= 255) { exp = 255; mant = 1 << 23; }
	return (sign << 31) | (exp << 23) | (mant & 0x7fffff);
}
int fpSign(int f) { return (f >>> 31); }
int fpExp(int f) { return (f >>> 23) & 0xff; }
int fpMant(int f) {
	if (fpExp(f) == 0) { return 0; }
	return (f & 0x7fffff) | (1 << 23);
}

int fpAdd(int a, int b) {
	if (fpExp(a) < fpExp(b)) { int t = a; a = b; b = t; }
	int ea = fpExp(a); int eb = fpExp(b);
	int ma = fpMant(a); int mb = fpMant(b);
	int shift = ea - eb;
	if (shift > 30) { return a; }
	mb = mb >>> shift;
	if (fpSign(a) == fpSign(b)) {
		return fpPack(fpSign(a), ea, ma + mb);
	}
	int m = ma - mb;
	int s = fpSign(a);
	if (m < 0) { m = -m; s = 1 - s; }
	return fpPack(s, ea, m);
}

int fpMul(int a, int b) {
	if (fpExp(a) == 0 || fpExp(b) == 0) { return 0; }
	long p = (long) fpMant(a) * (long) fpMant(b);
	int mant = (int) (p >> 23);
	int exp = fpExp(a) + fpExp(b) - 127;
	return fpPack(fpSign(a) ^ fpSign(b), exp, mant);
}

void main() {
	int n = 600;
	int[] xs = new int[n];
	for (int i = 0; i < n; i++) {
		xs[i] = fpPack(rnd() & 1, 120 + rnd() % 16, (1 << 23) + rnd() * 64);
	}
	int acc = fpPack(0, 127, 1 << 23); // 1.0
	int sum = 0;
	for (int round = 0; round < 8; round++) {
		for (int i = 0; i < n; i++) {
			acc = fpMul(acc, xs[i]);
			sum = fpAdd(sum, xs[i]);
			if (fpExp(acc) < 8 || fpExp(acc) > 240) { acc = fpPack(0, 127, 1 << 23); }
		}
	}
	print(acc);
	print(sum);
}
`

const srcFourier = `
// jBYTEmark Fourier: coefficients of a periodic function by trapezoidal
// numerical integration.
double thefunction(double x, double omegan, int select) {
	if (select == 0) { return x * x; }
	if (select == 1) { return x * x * cos(omegan * x); }
	return x * x * sin(omegan * x);
}

double trapezoid(double lo, double hi, double omegan, int select, int nsteps) {
	double dx = (hi - lo) / nsteps;
	double x = lo;
	double sum = 0.5 * (thefunction(lo, omegan, select) + thefunction(hi, omegan, select));
	for (int i = 1; i < nsteps; i++) {
		x = x + dx;
		sum = sum + thefunction(x, omegan, select);
	}
	return sum * dx;
}

void main() {
	int ncoeffs = 25;
	double[] abase = new double[ncoeffs];
	double[] bbase = new double[ncoeffs];
	double two_pi = 6.283185307179586;
	abase[0] = trapezoid(0.0, two_pi, 0.0, 0, 100) / two_pi;
	for (int i = 1; i < ncoeffs; i++) {
		double omegan = i;
		abase[i] = trapezoid(0.0, two_pi, omegan, 1, 100) * 2.0 / two_pi;
		bbase[i] = trapezoid(0.0, two_pi, omegan, 2, 100) * 2.0 / two_pi;
	}
	double check = 0.0;
	for (int i = 0; i < ncoeffs; i++) { check = check + abase[i] + bbase[i]; }
	print(check);
	print(abase[1]);
	print(bbase[1]);
}
`

const srcAssignment = `
// jBYTEmark Assignment: the assignment problem on a cost matrix, solved with
// row/column reduction plus a greedy augmenting assignment.
static int seed = 5;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 6) & 0x3fff; }

void main() {
	int n = 40;
	int[] cost = new int[n * n];
	int[] rowmin = new int[n];
	int[] colmin = new int[n];
	int[] assigned = new int[n];
	int check = 0;
	for (int round = 0; round < 12; round++) {
		for (int i = 0; i < n * n; i++) { cost[i] = rnd() % 1000; }
		// Row reduction.
		for (int r = 0; r < n; r++) {
			int m = cost[r * n];
			for (int c = 1; c < n; c++) {
				if (cost[r * n + c] < m) { m = cost[r * n + c]; }
			}
			rowmin[r] = m;
			for (int c = 0; c < n; c++) { cost[r * n + c] -= m; }
		}
		// Column reduction.
		for (int c = 0; c < n; c++) {
			int m = cost[c];
			for (int r = 1; r < n; r++) {
				if (cost[r * n + c] < m) { m = cost[r * n + c]; }
			}
			colmin[c] = m;
			for (int r = 0; r < n; r++) { cost[r * n + c] -= m; }
		}
		// Greedy assignment on zeros, then cheapest-available fallback.
		for (int r = 0; r < n; r++) { assigned[r] = -1; }
		for (int r = 0; r < n; r++) {
			for (int c = 0; c < n; c++) {
				if (cost[r * n + c] == 0) {
					int taken = 0;
					for (int r2 = 0; r2 < r; r2++) {
						if (assigned[r2] == c) { taken = 1; }
					}
					if (taken == 0) { assigned[r] = c; break; }
				}
			}
			if (assigned[r] < 0) {
				int best = -1; int bestCost = 1 << 30;
				for (int c = 0; c < n; c++) {
					int taken = 0;
					for (int r2 = 0; r2 < r; r2++) {
						if (assigned[r2] == c) { taken = 1; }
					}
					if (taken == 0 && cost[r * n + c] < bestCost) {
						bestCost = cost[r * n + c]; best = c;
					}
				}
				assigned[r] = best;
			}
		}
		int total = 0;
		for (int r = 0; r < n; r++) {
			total += cost[r * n + assigned[r]] + rowmin[r] + colmin[assigned[r]];
		}
		check = check * 31 + total;
	}
	print(check);
}
`

const srcIDEA = `
// jBYTEmark IDEA: the IDEA block cipher's 16-bit modular arithmetic
// (multiplication modulo 65537) over short-sized data.
static int seed = 17;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 11) & 0xffff; }

// IDEA multiplication: a*b mod 65537, with 0 standing for 65536.
int mul(int a, int b) {
	if (a == 0) { return (65537 - b) & 0xffff; }
	if (b == 0) { return (65537 - a) & 0xffff; }
	long p = (long) a * (long) b;
	int lo = (int) (p % 65537L);
	return lo & 0xffff;
}

void main() {
	int blocks = 300;
	char[] data = new char[blocks * 4];
	char[] key = new char[52];
	for (int i = 0; i < data.length; i++) { data[i] = (char) rnd(); }
	for (int i = 0; i < key.length; i++) { key[i] = (char) (rnd() | 1); }
	int check = 0;
	for (int b = 0; b < blocks; b++) {
		int x1 = data[b * 4];
		int x2 = data[b * 4 + 1];
		int x3 = data[b * 4 + 2];
		int x4 = data[b * 4 + 3];
		for (int round = 0; round < 8; round++) {
			int k = round * 6;
			x1 = mul(x1, key[k]);
			x2 = (x2 + key[k + 1]) & 0xffff;
			x3 = (x3 + key[k + 2]) & 0xffff;
			x4 = mul(x4, key[k + 3]);
			int t1 = x1 ^ x3;
			int t2 = x2 ^ x4;
			t1 = mul(t1, key[k + 4]);
			t2 = (t1 + t2) & 0xffff;
			t2 = mul(t2, key[k + 5]);
			t1 = (t1 + t2) & 0xffff;
			x1 = x1 ^ t2;
			x3 = x3 ^ t2;
			x2 = x2 ^ t1;
			x4 = x4 ^ t1;
		}
		data[b * 4] = (char) x1;
		data[b * 4 + 1] = (char) x2;
		data[b * 4 + 2] = (char) x3;
		data[b * 4 + 3] = (char) x4;
		check = (check * 31 + x1 + x2 + x3 + x4) & 0xffffff;
	}
	print(check);
}
`

const srcHuffman = `
// jBYTEmark Huffman: build a Huffman tree over byte frequencies, encode the
// buffer into a bit stream and decode it back.
static int seed = 31;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 5) & 0x7fffffff; }

void main() {
	int n = 2500;
	byte[] text = new byte[n];
	for (int i = 0; i < n; i++) {
		int r = rnd() % 100;
		// Skewed distribution over 16 symbols.
		int sym = 0;
		if (r < 40) { sym = 0; }
		else if (r < 60) { sym = 1; }
		else if (r < 72) { sym = 2; }
		else { sym = 3 + rnd() % 13; }
		text[i] = (byte) sym;
	}
	int nsym = 16;
	int nnode = 2 * nsym - 1;
	int[] freq = new int[nnode];
	int[] left = new int[nnode];
	int[] right = new int[nnode];
	int[] parent = new int[nnode];
	for (int i = 0; i < nnode; i++) { left[i] = -1; right[i] = -1; parent[i] = -1; }
	for (int i = 0; i < n; i++) { freq[text[i]]++; }
	for (int i = 0; i < nsym; i++) { freq[i]++; } // no zero freq
	// Build the tree: repeatedly join the two smallest roots.
	int next = nsym;
	while (next < nnode) {
		int a = -1; int b = -1;
		for (int i = 0; i < next; i++) {
			if (parent[i] < 0) {
				if (a < 0 || freq[i] < freq[a]) { b = a; a = i; }
				else if (b < 0 || freq[i] < freq[b]) { b = i; }
			}
		}
		left[next] = a; right[next] = b;
		parent[a] = next; parent[b] = next;
		freq[next] = freq[a] + freq[b];
		next++;
	}
	int root = nnode - 1;
	// Per-symbol code bits (int-packed, LSB first) and lengths.
	int[] code = new int[nsym];
	int[] clen = new int[nsym];
	for (int s = 0; s < nsym; s++) {
		int bits = 0; int len = 0;
		int node = s;
		while (parent[node] >= 0) {
			int p = parent[node];
			bits = bits << 1;
			if (right[p] == node) { bits = bits | 1; }
			len++;
			node = p;
		}
		code[s] = bits; clen[s] = len;
	}
	// Encode.
	byte[] stream = new byte[n * 2];
	int bitpos = 0;
	for (int i = 0; i < n; i++) {
		int s = text[i];
		int bits = code[s];
		for (int k = 0; k < clen[s]; k++) {
			if ((bits & 1) != 0) {
				stream[bitpos >> 3] = (byte) (stream[bitpos >> 3] | (1 << (bitpos & 7)));
			}
			bits = bits >> 1;
			bitpos++;
		}
	}
	// Decode and verify.
	int errors = 0;
	int pos = 0;
	for (int i = 0; i < n; i++) {
		int node = root;
		while (left[node] >= 0) {
			int bit = (stream[pos >> 3] >> (pos & 7)) & 1;
			if (bit != 0) { node = right[node]; } else { node = left[node]; }
			pos++;
		}
		if (node != text[i]) { errors++; }
	}
	print(errors);
	print(bitpos);
}
`

const srcNeuralNet = `
// jBYTEmark Neural Net: back-propagation training of a small feed-forward
// network; weight matrices flattened into 1D arrays (i*cols + j subscripts).
static int seed = 41;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }
double rndw() { return (rnd() - 32768) / 65536.0; }

double sigmoid(double x) { return 1.0 / (1.0 + exp(-x)); }

void main() {
	int nin = 8; int nhid = 8; int nout = 4;
	double[] w1 = new double[nin * nhid];
	double[] w2 = new double[nhid * nout];
	double[] hid = new double[nhid];
	double[] out = new double[nout];
	double[] dout = new double[nout];
	double[] dhid = new double[nhid];
	double[] in = new double[nin];
	double[] want = new double[nout];
	for (int i = 0; i < w1.length; i++) { w1[i] = rndw(); }
	for (int i = 0; i < w2.length; i++) { w2[i] = rndw(); }
	double rate = 0.4;
	double err = 0.0;
	for (int epoch = 0; epoch < 60; epoch++) {
		err = 0.0;
		for (int pat = 0; pat < 8; pat++) {
			for (int i = 0; i < nin; i++) { in[i] = ((pat >> (i & 3)) & 1); }
			for (int o = 0; o < nout; o++) { want[o] = ((pat >> o) & 1); }
			// Forward.
			for (int h = 0; h < nhid; h++) {
				double s = 0.0;
				for (int i = 0; i < nin; i++) { s = s + in[i] * w1[i * nhid + h]; }
				hid[h] = sigmoid(s);
			}
			for (int o = 0; o < nout; o++) {
				double s = 0.0;
				for (int h = 0; h < nhid; h++) { s = s + hid[h] * w2[h * nout + o]; }
				out[o] = sigmoid(s);
			}
			// Backward.
			for (int o = 0; o < nout; o++) {
				double e = want[o] - out[o];
				err = err + e * e;
				dout[o] = e * out[o] * (1.0 - out[o]);
			}
			for (int h = 0; h < nhid; h++) {
				double s = 0.0;
				for (int o = 0; o < nout; o++) { s = s + dout[o] * w2[h * nout + o]; }
				dhid[h] = s * hid[h] * (1.0 - hid[h]);
			}
			for (int h = 0; h < nhid; h++) {
				for (int o = 0; o < nout; o++) {
					w2[h * nout + o] = w2[h * nout + o] + rate * dout[o] * hid[h];
				}
			}
			for (int i = 0; i < nin; i++) {
				for (int h = 0; h < nhid; h++) {
					w1[i * nhid + h] = w1[i * nhid + h] + rate * dhid[h] * in[i];
				}
			}
		}
	}
	print(err);
}
`

const srcLUDecomp = `
// jBYTEmark LU Decomposition: Crout factorization with partial pivoting and
// back substitution, matrices flattened to 1D.
static int seed = 3;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 9) & 0xfff; }

void main() {
	int n = 24;
	double[] a = new double[n * n];
	double[] b = new double[n];
	int[] piv = new int[n];
	double check = 0.0;
	for (int round = 0; round < 10; round++) {
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < n; j++) { a[i * n + j] = (rnd() % 1000) / 100.0 + 0.01; }
			a[i * n + i] = a[i * n + i] + 50.0; // diagonally dominant
			b[i] = rnd() % 100;
			piv[i] = i;
		}
		// LU factorization with partial pivoting.
		for (int k = 0; k < n; k++) {
			int p = k;
			double maxv = fabs(a[k * n + k]);
			for (int i = k + 1; i < n; i++) {
				double v = fabs(a[i * n + k]);
				if (v > maxv) { maxv = v; p = i; }
			}
			if (p != k) {
				for (int j = 0; j < n; j++) {
					double t = a[k * n + j]; a[k * n + j] = a[p * n + j]; a[p * n + j] = t;
				}
				double tb = b[k]; b[k] = b[p]; b[p] = tb;
			}
			for (int i = k + 1; i < n; i++) {
				double f = a[i * n + k] / a[k * n + k];
				a[i * n + k] = f;
				for (int j = k + 1; j < n; j++) {
					a[i * n + j] = a[i * n + j] - f * a[k * n + j];
				}
			}
		}
		// Forward then back substitution.
		for (int i = 1; i < n; i++) {
			double s = b[i];
			for (int j = 0; j < i; j++) { s = s - a[i * n + j] * b[j]; }
			b[i] = s;
		}
		for (int i = n - 1; i >= 0; i--) {
			double s = b[i];
			for (int j = i + 1; j < n; j++) { s = s - a[i * n + j] * b[j]; }
			b[i] = s / a[i * n + i];
		}
		double sum = 0.0;
		for (int i = 0; i < n; i++) { sum = sum + b[i]; }
		check = check + sum;
	}
	print(check);
}
`
