package workloads

// The seven SPECjvm98 kernels, reproducing each benchmark's characteristic
// operation mix: mtrt's double-heavy ray intersections, jess's rule-matching
// table scans, compress's LZW byte/hash loops, db's record sorting and
// searching, mpegaudio's filter bank, jack's table-driven parsing and
// javac's scanning plus hashed symbol tables.

const srcMtrt = `
// mtrt: ray-sphere intersection over a small scene, flattened double arrays.
static int seed = 11;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }
double rndd() { return (rnd() - 32768) / 8192.0; }

void main() {
	int nsph = 16;
	double[] cx = new double[nsph];
	double[] cy = new double[nsph];
	double[] cz = new double[nsph];
	double[] rad = new double[nsph];
	for (int i = 0; i < nsph; i++) {
		cx[i] = rndd(); cy[i] = rndd(); cz[i] = rndd();
		rad[i] = 0.5 + (rnd() % 100) / 50.0;
	}
	int width = 40; int height = 30;
	int hits = 0;
	double depthsum = 0.0;
	for (int py = 0; py < height; py++) {
		for (int px = 0; px < width; px++) {
			// Ray from the origin through the pixel.
			double dx = (px - width / 2) / 10.0;
			double dy = (py - height / 2) / 10.0;
			double dz = 1.0;
			double norm = sqrt(dx * dx + dy * dy + dz * dz);
			dx = dx / norm; dy = dy / norm; dz = dz / norm;
			double best = 1.0e30;
			int bestIdx = -1;
			for (int s = 0; s < nsph; s++) {
				double ox = cx[s]; double oy = cy[s]; double oz = cz[s];
				double b = ox * dx + oy * dy + oz * dz;
				double c = ox * ox + oy * oy + oz * oz - rad[s] * rad[s];
				double disc = b * b - c;
				if (disc > 0.0) {
					double t = b - sqrt(disc);
					if (t > 0.001 && t < best) { best = t; bestIdx = s; }
				}
			}
			if (bestIdx >= 0) { hits++; depthsum = depthsum + best; }
		}
	}
	print(hits);
	print(depthsum);
}
`

const srcJess = `
// jess: rule matching — facts as int tuples, rules as condition tables,
// repeated join scans with early exits.
static int seed = 23;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 7) & 0x7fff; }

void main() {
	int nfacts = 220;
	int nrules = 40;
	// Facts: (kind, a, b); rules: (kindWanted, minA, maxB, action).
	int[] fkind = new int[nfacts];
	int[] fa = new int[nfacts];
	int[] fb = new int[nfacts];
	int[] rkind = new int[nrules];
	int[] rmin = new int[nrules];
	int[] rmax = new int[nrules];
	int[] fired = new int[nrules];
	for (int i = 0; i < nfacts; i++) {
		fkind[i] = rnd() % 8;
		fa[i] = rnd() % 100;
		fb[i] = rnd() % 100;
	}
	for (int r = 0; r < nrules; r++) {
		rkind[r] = rnd() % 8;
		rmin[r] = rnd() % 50;
		rmax[r] = 50 + rnd() % 50;
	}
	int agenda = 0;
	for (int cycle = 0; cycle < 25; cycle++) {
		for (int r = 0; r < nrules; r++) {
			int matches = 0;
			for (int i = 0; i < nfacts; i++) {
				if (fkind[i] == rkind[r] && fa[i] >= rmin[r] && fb[i] <= rmax[r]) {
					// Join against a second fact with the complement kind.
					for (int j = 0; j < nfacts; j++) {
						if (fkind[j] == (7 - rkind[r]) && fa[j] + fb[i] > 100) {
							matches++;
							break;
						}
					}
				}
			}
			if (matches > 0) {
				fired[r] += matches;
				agenda = agenda + matches;
				// The fired rule mutates one fact (working memory change).
				int v = (fired[r] + cycle) % nfacts;
				fa[v] = (fa[v] + 7) % 100;
			}
		}
	}
	int check = 0;
	for (int r = 0; r < nrules; r++) { check = check * 31 + fired[r]; }
	print(agenda);
	print(check);
}
`

const srcCompress = `
// compress: LZW compression over a byte buffer with an open-addressed hash
// table of (prefix, char) -> code, then decompression and verification.
static int seed = 29;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 6) & 0x7fffffff; }

void main() {
	int n = 3000;
	byte[] input = new byte[n];
	for (int i = 0; i < n; i++) {
		// Compressible: runs plus a small alphabet.
		int r = rnd() % 10;
		if (r < 6 && i > 0) { input[i] = input[i - 1]; }
		else { input[i] = (byte) (65 + rnd() % 8); }
	}
	int tabSize = 4096;
	int hashSize = 8192;
	int[] hashKey = new int[hashSize];   // packed (prefix<<9)|ch, -1 empty
	int[] hashVal = new int[hashSize];
	int[] codePrefix = new int[tabSize];
	int[] codeChar = new int[tabSize];
	int[] output = new int[n + 16];
	for (int i = 0; i < hashSize; i++) { hashKey[i] = -1; }
	int nextCode = 256;
	int outPos = 0;
	int prefix = input[0] & 0xff;
	for (int i = 1; i < n; i++) {
		int ch = input[i] & 0xff;
		int key = (prefix << 9) | ch;
		int h = (key * 40503) & (hashSize - 1);
		int found = -1;
		while (hashKey[h] != -1) {
			if (hashKey[h] == key) { found = hashVal[h]; break; }
			h = (h + 1) & (hashSize - 1);
		}
		if (found >= 0) {
			prefix = found;
		} else {
			output[outPos] = prefix; outPos++;
			if (nextCode < tabSize) {
				hashKey[h] = key;
				hashVal[h] = nextCode;
				codePrefix[nextCode] = prefix;
				codeChar[nextCode] = ch;
				nextCode++;
			}
			prefix = ch;
		}
	}
	output[outPos] = prefix; outPos++;
	// Decompress into a scratch buffer and verify.
	byte[] decoded = new byte[n + 256];
	byte[] stack = new byte[512];
	int dpos = 0;
	for (int o = 0; o < outPos; o++) {
		int code = output[o];
		int sp = 0;
		while (code >= 256) {
			stack[sp] = (byte) codeChar[code];
			sp++;
			code = codePrefix[code];
		}
		decoded[dpos] = (byte) code; dpos++;
		while (sp > 0) { sp--; decoded[dpos] = stack[sp]; dpos++; }
	}
	int errors = 0;
	for (int i = 0; i < n; i++) { if (decoded[i] != input[i]) { errors++; } }
	print(outPos);
	print(errors);
}
`

const srcDb = `
// db: an in-memory database of string-keyed records — names live in a byte
// pool, the index is shell-sorted by lexicographic key comparison, and
// queries do binary search plus field updates (the SPECjvm98 db shape).
static int seed = 37;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 8) & 0xffff; }

// Lexicographic compare of two fixed-width (8-byte) keys in the pool.
int keyCmp(byte[] pool, int ra, int rb) {
	int oa = ra * 8;
	int ob = rb * 8;
	for (int k = 0; k < 8; k++) {
		int ca = pool[oa + k] & 0xff;
		int cb = pool[ob + k] & 0xff;
		if (ca != cb) { return ca - cb; }
	}
	return 0;
}

void main() {
	int nrec = 420;
	int nfield = 3;
	byte[] keys = new byte[nrec * 8];
	int[] fields = new int[nrec * nfield];
	int[] index = new int[nrec];
	for (int i = 0; i < nrec; i++) {
		for (int k = 0; k < 8; k++) { keys[i * 8 + k] = (byte) (97 + rnd() % 26); }
		fields[i * nfield] = rnd() % 1000;
		fields[i * nfield + 1] = rnd() % 100;
		fields[i * nfield + 2] = 0;
		index[i] = i;
	}
	// Shell sort the index by key.
	int gap = nrec / 2;
	while (gap > 0) {
		for (int i = gap; i < nrec; i++) {
			int tmp = index[i];
			int j = i;
			while (j >= gap && keyCmp(keys, index[j - gap], tmp) > 0) {
				index[j] = index[j - gap];
				j = j - gap;
			}
			index[j] = tmp;
		}
		gap = gap / 2;
	}
	// Queries: binary search for a probe record, then touch a window.
	int touched = 0;
	for (int q = 0; q < 250; q++) {
		int probe = rnd() % nrec;
		int lo = 0; int hi = nrec - 1;
		while (lo < hi) {
			int mid = (lo + hi) / 2;
			if (keyCmp(keys, index[mid], probe) < 0) { lo = mid + 1; } else { hi = mid; }
		}
		int from = lo - 3;
		if (from < 0) { from = 0; }
		int to = lo + 3;
		if (to > nrec) { to = nrec; }
		for (int k = from; k < to; k++) {
			int rec = index[k];
			fields[rec * nfield + 2] = fields[rec * nfield + 2] + 1;
			touched++;
		}
	}
	int check = 0;
	for (int i = 0; i < nrec; i++) { check = check * 17 + fields[i * nfield + 2]; }
	for (int i = 0; i < nrec; i++) { check = check * 3 + keys[index[i] * 8]; }
	print(touched);
	print(check);
}
`

const srcMpegaudio = `
// mpegaudio: polyphase filter bank — windowed dot products over a circular
// sample buffer, with fixed-point butterflies on ints.
static int seed = 43;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 9) & 0xffff; }

void main() {
	int nwin = 512;
	int nsub = 32;
	double[] window = new double[nwin];
	double[] buf = new double[nwin];
	double[] sub = new double[nsub];
	int[] pcm = new int[1152];
	for (int i = 0; i < nwin; i++) {
		window[i] = sin(i * 0.0122718) / (1.0 + i * 0.002);
	}
	for (int i = 0; i < pcm.length; i++) { pcm[i] = rnd() - 32768; }
	int bufPos = 0;
	double energy = 0.0;
	for (int frame = 0; frame < 12; frame++) {
		// Shift 32 new samples into the circular buffer.
		for (int s = 0; s < 32; s++) {
			buf[bufPos] = pcm[(frame * 32 + s) % pcm.length] / 32768.0;
			bufPos = (bufPos + 1) % nwin;
		}
		// Subband dot products.
		for (int sb = 0; sb < nsub; sb++) {
			double acc = 0.0;
			for (int k = 0; k < 16; k++) {
				int idx = (bufPos + sb * 16 + k) % nwin;
				acc = acc + buf[idx] * window[(sb * 16 + k) % nwin];
			}
			sub[sb] = acc;
			energy = energy + acc * acc;
		}
		// Fixed-point butterfly pass over the subbands.
		int[] fx = new int[nsub];
		for (int sb = 0; sb < nsub; sb++) { fx[sb] = (int) (sub[sb] * 65536.0); }
		for (int stride = 1; stride < nsub; stride = stride * 2) {
			for (int i = 0; i < nsub; i += stride * 2) {
				for (int k = 0; k < stride; k++) {
					int a = fx[i + k];
					int b = fx[i + k + stride];
					fx[i + k] = (a + b) >> 1;
					fx[i + k + stride] = (a - b) >> 1;
				}
			}
		}
		energy = energy + fx[0] / 65536.0;
	}
	print(energy);
}
`

const srcJack = `
// jack: table-driven parser generator run — a DFA over a token stream with
// action tables, nested productions tracked on an int stack.
static int seed = 47;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 10) & 0x3fff; }

void main() {
	int nstates = 64;
	int nsyms = 16;
	int[] trans = new int[nstates * nsyms];
	byte[] action = new byte[nstates * nsyms];
	for (int i = 0; i < trans.length; i++) {
		trans[i] = rnd() % nstates;
		action[i] = (byte) (rnd() % 5);
	}
	int ntok = 4000;
	byte[] tokens = new byte[ntok];
	for (int i = 0; i < ntok; i++) { tokens[i] = (byte) (rnd() % nsyms); }
	int[] stack = new int[256];
	int sp = 0;
	int state = 0;
	int reduces = 0;
	int shifts = 0;
	int errors = 0;
	for (int i = 0; i < ntok; i++) {
		int sym = tokens[i];
		int cell = state * nsyms + sym;
		int act = action[cell];
		if (act == 0 || act == 1) {
			// shift
			if (sp < 255) { stack[sp] = state; sp++; }
			shifts++;
		} else if (act == 2 || act == 3) {
			// reduce: pop a rule-length prefix
			int len = 1 + (sym & 3);
			while (len > 0 && sp > 0) { sp--; len--; }
			reduces++;
		} else {
			// error recovery: reset
			sp = 0;
			errors++;
		}
		state = trans[cell];
	}
	print(shifts);
	print(reduces);
	print(errors);
	print(state + sp);
}
`

const srcJavac = `
// javac: scanner plus hashed symbol table — tokenize a synthetic source
// buffer, intern identifiers, count token classes.
static int seed = 53;
int rnd() { seed = seed * 1103515245 + 12345; return (seed >>> 5) & 0x7fffffff; }

void main() {
	int n = 5000;
	byte[] src = new byte[n];
	// Synthesize identifier/number/operator soup.
	int p = 0;
	while (p < n - 12) {
		int kind = rnd() % 10;
		if (kind < 5) {
			int len = 2 + rnd() % 6;
			for (int k = 0; k < len && p < n; k++) { src[p] = (byte) (97 + rnd() % 12); p++; }
		} else if (kind < 8) {
			int len = 1 + rnd() % 5;
			for (int k = 0; k < len && p < n; k++) { src[p] = (byte) (48 + rnd() % 10); p++; }
		} else {
			src[p] = (byte) (40 + rnd() % 8); p++;
		}
		if (p < n) { src[p] = 32; p++; }
	}
	while (p < n) { src[p] = 32; p++; }
	// Scan.
	int hashSize = 4096;
	int[] symHash = new int[hashSize];  // interned identifier hash, 0 empty
	int[] symCount = new int[hashSize];
	int idents = 0; int numbers = 0; int ops = 0; int uniques = 0;
	int pos = 0;
	while (pos < n) {
		int c = src[pos] & 0xff;
		if (c == 32) { pos++; }
		else if (c >= 97 && c <= 122) {
			int h = 0;
			while (pos < n) {
				c = src[pos] & 0xff;
				if (c < 97 || c > 122) { break; }
				h = h * 31 + c;
				pos++;
			}
			h = h & 0x7fffffff;
			if (h == 0) { h = 1; }
			int slot = h & (hashSize - 1);
			while (symHash[slot] != 0 && symHash[slot] != h) { slot = (slot + 1) & (hashSize - 1); }
			if (symHash[slot] == 0) { symHash[slot] = h; uniques++; }
			symCount[slot]++;
			idents++;
		} else if (c >= 48 && c <= 57) {
			long v = 0;
			while (pos < n) {
				c = src[pos] & 0xff;
				if (c < 48 || c > 57) { break; }
				v = v * 10 + (c - 48);
				pos++;
			}
			numbers++;
			if (v > 100000L) { numbers++; }
		} else {
			ops++;
			pos++;
		}
	}
	int check = 0;
	for (int i = 0; i < hashSize; i++) { check = check * 13 + symCount[i]; }
	print(idents);
	print(numbers);
	print(ops);
	print(uniques);
	print(check);
}
`
