// Package workloads provides the benchmark programs of the paper's
// evaluation: MiniJava kernels reproducing the operation mixes of the
// jBYTEmark and SPECjvm98 suites (Tables 1 and 2, Figures 11-14). Each
// kernel prints checksums, which the harness uses to validate that every
// compiler variant preserves behaviour.
package workloads

// Workload is one benchmark program.
type Workload struct {
	Name   string // paper's benchmark name
	Suite  string // "jbytemark" or "specjvm98"
	Source string // MiniJava source
}

// JBYTEmark returns the ten jBYTEmark kernels in the paper's column order.
func JBYTEmark() []Workload {
	return []Workload{
		{"Numeric Sort", "jbytemark", srcNumericSort},
		{"String Sort", "jbytemark", srcStringSort},
		{"Bitfield", "jbytemark", srcBitfield},
		{"FP Emu.", "jbytemark", srcFPEmu},
		{"Fourier", "jbytemark", srcFourier},
		{"Assignment", "jbytemark", srcAssignment},
		{"IDEA", "jbytemark", srcIDEA},
		{"Huffman", "jbytemark", srcHuffman},
		{"Neural Net", "jbytemark", srcNeuralNet},
		{"LU Decom.", "jbytemark", srcLUDecomp},
	}
}

// SPECjvm98 returns the seven SPECjvm98 kernels in the paper's column order.
func SPECjvm98() []Workload {
	return []Workload{
		{"mtrt", "specjvm98", srcMtrt},
		{"jess", "specjvm98", srcJess},
		{"compress", "specjvm98", srcCompress},
		{"db", "specjvm98", srcDb},
		{"mpegaudio", "specjvm98", srcMpegaudio},
		{"jack", "specjvm98", srcJack},
		{"javac", "specjvm98", srcJavac},
	}
}

// All returns every workload, jBYTEmark first.
func All() []Workload {
	return append(JBYTEmark(), SPECjvm98()...)
}
