package profile

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzParseProfile hardens Unmarshal against hostile artifacts: whatever the
// bytes, it must return a structured error (wrapping ErrInvalid) or a profile
// whose re-encoding round-trips — and never panic, the property the compile
// daemon's -profile-in / request paths depend on.
func FuzzParseProfile(f *testing.F) {
	f.Add([]byte(`{"version":1,"functions":[]}`))
	f.Add([]byte(`{"version":1,"functions":[{"name":"main","calls":3,"branches":[{"id":7,"taken":1,"fall":2}]}]}`))
	f.Add([]byte(`{"version":1,"functions":[{"name":"main","calls":3,"branches":[{"id":7,"taken":1,"fall":2}`)) // truncated
	f.Add([]byte(`{"version":2,"functions":[]}`))                                                               // unknown version
	f.Add([]byte(`{"version":1,"functions":[{"name":"f","calls":-1}]}`))                                        // negative counter
	f.Add([]byte(`{"version":1,"functions":[{"name":"f","calls":99999999999999999999999999}]}`))                // overflowing counter
	f.Add([]byte(`{"version":1,"functions":[{"name":"f"},{"name":"f"}]}`))                                      // duplicate function
	f.Add([]byte(`{"version":1,"functions":[{"name":"f","branches":[{"id":1},{"id":1}]}]}`))                    // duplicate branch
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data) // must not panic
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("rejection does not wrap ErrInvalid: %v", err)
			}
			return
		}
		// Accepted input must round-trip: Marshal is deterministic and its
		// output re-parses to an equal encoding (byte-exact fixed point).
		enc := p.Marshal()
		p2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-parse of own encoding failed: %v", err)
		}
		if !bytes.Equal(enc, p2.Marshal()) {
			t.Fatalf("encoding not a fixed point:\n%s\n---\n%s", enc, p2.Marshal())
		}
	})
}

func TestUnmarshalRejectionsAreStructured(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the diagnostic
	}{
		{"truncated JSON", `{"version":1,"functions":[{"na`, "bad JSON"},
		{"overflowing counter", `{"version":1,"functions":[{"name":"f","calls":99999999999999999999}]}`, "bad JSON"},
		{"overflowing branch", `{"version":1,"functions":[{"name":"f","branches":[{"id":1,"taken":1e300,"fall":0}]}]}`, "bad JSON"},
		{"negative call count", `{"version":1,"functions":[{"name":"f","calls":-2}]}`, "negative call count"},
		{"negative branch count", `{"version":1,"functions":[{"name":"f","branches":[{"id":1,"taken":-1,"fall":0}]}]}`, "negative counts"},
		{"unknown version", `{"version":7,"functions":[]}`, "unsupported version"},
		{"zero version", `{"functions":[]}`, "unsupported version"},
		{"empty name", `{"version":1,"functions":[{"name":""}]}`, "empty name"},
		{"duplicate function", `{"version":1,"functions":[{"name":"f"},{"name":"f"}]}`, "duplicate function"},
		{"duplicate branch", `{"version":1,"functions":[{"name":"f","branches":[{"id":3},{"id":3}]}]}`, "duplicate branch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Unmarshal([]byte(tc.in))
			if err == nil {
				t.Fatal("hostile input accepted")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
