package profile

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"signext/internal/interp"
)

func sample() Profile {
	return Profile{
		"main": {Calls: 3, Branches: map[int]Counts{
			7:  {Taken: 10, Fall: 2},
			12: {Taken: 0, Fall: 5},
		}},
		"helper": {Calls: 40, Branches: map[int]Counts{}},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := sample()
	data := p.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the profile:\n%v\n%v", p, got)
	}
	// Deterministic bytes: marshal of the decoded copy is identical.
	if !bytes.Equal(data, got.Marshal()) {
		t.Fatalf("marshal is not byte-deterministic:\n%s\n%s", data, got.Marshal())
	}
}

func TestMarshalDeterministicOrder(t *testing.T) {
	// Two structurally equal profiles built in different insertion orders
	// must serialize to the same bytes.
	a := Profile{}
	a.Merge(sample())
	b := Profile{
		"helper": {Calls: 40, Branches: map[int]Counts{}},
		"main": {Calls: 3, Branches: map[int]Counts{
			12: {Taken: 0, Fall: 5},
			7:  {Taken: 10, Fall: 2},
		}},
	}
	if !bytes.Equal(a.Marshal(), b.Marshal()) {
		t.Fatalf("equal profiles serialized differently:\n%s\n%s", a.Marshal(), b.Marshal())
	}
}

func TestUnmarshalRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"wrong version":  `{"version":2,"functions":[]}`,
		"empty name":     `{"version":1,"functions":[{"name":""}]}`,
		"dup func":       `{"version":1,"functions":[{"name":"f"},{"name":"f"}]}`,
		"negative calls": `{"version":1,"functions":[{"name":"f","calls":-1}]}`,
		"negative taken": `{"version":1,"functions":[{"name":"f","branches":[{"id":1,"taken":-2,"fall":0}]}]}`,
		"dup branch":     `{"version":1,"functions":[{"name":"f","branches":[{"id":1,"taken":1,"fall":0},{"id":1,"taken":2,"fall":0}]}]}`,
	}
	for name, data := range cases {
		if _, err := Unmarshal([]byte(data)); err == nil {
			t.Errorf("%s: Unmarshal accepted %s", name, data)
		}
	}
}

func TestMergeAndWeight(t *testing.T) {
	var p Profile // merging into nil allocates
	p = p.Merge(sample())
	p = p.Merge(sample())
	if got := p["main"].Calls; got != 6 {
		t.Fatalf("merged calls = %d, want 6", got)
	}
	if got := p["main"].Branches[7]; got != (Counts{Taken: 20, Fall: 4}) {
		t.Fatalf("merged branch = %+v", got)
	}
	// Weight = calls + branch events.
	if got, want := p.Weight("main"), int64(6+20+4+0+10); got != want {
		t.Fatalf("Weight(main) = %d, want %d", got, want)
	}
	if got := p.Weight("helper"); got != 80 {
		t.Fatalf("Weight(helper) = %d, want 80", got)
	}
	if got := p.Weight("absent"); got != 0 {
		t.Fatalf("Weight(absent) = %d, want 0", got)
	}
}

func TestMergeSaturates(t *testing.T) {
	p := Profile{"f": {Calls: math.MaxInt64 - 1, Branches: map[int]Counts{
		1: {Taken: math.MaxInt64, Fall: 0},
	}}}
	p = p.Merge(Profile{"f": {Calls: 10, Branches: map[int]Counts{1: {Taken: 10, Fall: 0}}}})
	if p["f"].Calls != math.MaxInt64 {
		t.Fatalf("calls did not saturate: %d", p["f"].Calls)
	}
	if p["f"].Branches[1].Taken != math.MaxInt64 {
		t.Fatalf("taken did not saturate: %d", p["f"].Branches[1].Taken)
	}
	if p.Weight("f") != math.MaxInt64 {
		t.Fatalf("weight did not saturate: %d", p.Weight("f"))
	}
}

func TestInterpConversions(t *testing.T) {
	ip := interp.Profile{
		"main": {4: &[2]int64{7, 3}},
	}
	p := FromInterp(ip, map[string]int64{"main": 2, "cold": 1})
	if got, want := p.Weight("main"), int64(2+7+3); got != want {
		t.Fatalf("Weight = %d, want %d", got, want)
	}
	if p["cold"].Calls != 1 {
		t.Fatalf("calls-only function lost: %+v", p["cold"])
	}
	back := p.ToInterp()
	if got := back["main"][4]; got == nil || got[0] != 7 || got[1] != 3 {
		t.Fatalf("ToInterp lost counts: %v", got)
	}
	if taken, fall := p.Counts("main", 4); taken != 7 || fall != 3 {
		t.Fatalf("Counts = %d/%d", taken, fall)
	}
	if taken, fall := p.Counts("main", 99); taken != 0 || fall != 0 {
		t.Fatalf("missing branch Counts = %d/%d, want 0/0", taken, fall)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Observe("main", 7, i%2 == 0)
				c.ObserveCall("main")
				c.Observe("f", w, true) // per-worker branch id: map growth under contention
			}
		}(w)
	}
	wg.Wait()
	p := c.Snapshot()
	if got := p["main"].Calls; got != workers*per {
		t.Fatalf("calls = %d, want %d", got, workers*per)
	}
	b := p["main"].Branches[7]
	if b.Taken+b.Fall != workers*per || b.Taken != b.Fall {
		t.Fatalf("branch counts = %+v", b)
	}
	for w := 0; w < workers; w++ {
		if got := p["f"].Branches[w]; got != (Counts{Taken: per}) {
			t.Fatalf("worker %d branch = %+v", w, got)
		}
	}
	if got, want := c.Weight("main"), int64(2*workers*per); got != want {
		t.Fatalf("Weight = %d, want %d", got, want)
	}
	c.Reset()
	if len(c.Snapshot()) != 0 {
		t.Fatal("Reset left counters behind")
	}
}

func TestCollectorSeedAndAddRun(t *testing.T) {
	c := NewCollector(sample())
	c.AddRun(
		interp.Profile{
			"main": {7: &[2]int64{1, 1}},
			"hot":  {3: &[2]int64{5, 0}},
		},
		map[string]int64{"main": 1, "hot": 2},
		func(name string) bool { return name != "hot" }, // hot already promoted: its IDs are compiled-body IDs
	)
	p := c.Snapshot()
	if got := p["main"].Branches[7]; got != (Counts{Taken: 11, Fall: 3}) {
		t.Fatalf("seed+run merge = %+v", got)
	}
	if p["hot"] != nil {
		t.Fatalf("excluded function was merged: %+v", p["hot"])
	}
	if p["main"].Calls != 4 {
		t.Fatalf("calls = %d, want 4", p["main"].Calls)
	}
}
