// Package profile implements the online branch-profiling side of the tiered
// runtime: lock-cheap per-function taken/fall-through counters gathered while
// code runs in the interpreter tier, a serializable snapshot form that
// round-trips through JSON (sxelim -profile-out / -profile-in), and the
// conversions that feed gathered counts into order determination
// (freq.BranchProfile) and the jit driver (interp.Profile).
//
// Two representations exist on purpose:
//
//   - Collector is the hot mutable accumulator: a read-locked map lookup plus
//     one atomic add per observed branch, safe for concurrent writers, so an
//     instrumented execution tier never serializes on a global lock.
//   - Profile is the immutable value form a Snapshot produces: plain counts,
//     mergeable, JSON-serializable with a deterministic byte encoding
//     (functions sorted by name, branches by instruction ID), and directly
//     usable as a freq.BranchProfile.
//
// Branch counters are keyed by the branch instruction's ID in the frontend
// (32-bit form) program; ir.Func.Clone preserves IDs, so profiles gathered on
// an execution clone apply to every later compilation of the same frontend
// output.
package profile

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"signext/internal/interp"
)

// ErrInvalid is wrapped by every Unmarshal rejection, so callers can
// distinguish "this artifact is bad" (errors.Is(err, ErrInvalid)) from I/O
// problems without matching message text. Unmarshal never panics on hostile
// input — truncated JSON, overflowing counters, unknown versions and
// structural garbage all come back as structured errors (FuzzParseProfile
// enforces this).
var ErrInvalid = errors.New("invalid profile artifact")

// Counts is one branch's outcome totals.
type Counts struct {
	Taken int64 `json:"taken"`
	Fall  int64 `json:"fall"`
}

// FuncProfile is the gathered profile of one function: how often it was
// entered and how each of its conditional branches resolved.
type FuncProfile struct {
	Calls    int64
	Branches map[int]Counts
}

// Profile is the serializable value form of a gathered profile: function
// name -> counters. The zero value (nil) is a valid empty profile.
type Profile map[string]*FuncProfile

// Counts returns a branch's taken/fall-through totals, making Profile a
// freq.BranchProfile.
func (p Profile) Counts(fn string, id int) (taken, fall int64) {
	if fp := p[fn]; fp != nil {
		c := fp.Branches[id]
		return c.Taken, c.Fall
	}
	return 0, 0
}

// Weight is the hotness of one function: entries plus executed branch
// events. Calls alone would starve loop bodies (one call, a million
// iterations); branch events alone would starve straight-line code.
func (p Profile) Weight(fn string) int64 {
	fp := p[fn]
	if fp == nil {
		return 0
	}
	w := fp.Calls
	for _, c := range fp.Branches {
		w = satAdd(w, satAdd(c.Taken, c.Fall))
	}
	return w
}

// Clone deep-copies the profile.
func (p Profile) Clone() Profile {
	if p == nil {
		return nil
	}
	out := make(Profile, len(p))
	for name, fp := range p {
		nb := make(map[int]Counts, len(fp.Branches))
		for id, c := range fp.Branches {
			nb[id] = c
		}
		out[name] = &FuncProfile{Calls: fp.Calls, Branches: nb}
	}
	return out
}

// Merge adds other's counters into p (saturating at MaxInt64) and returns p,
// allocating it if nil. Merging partial profiles from several runs is the
// normal mode of the tiered runtime; consumers must not assume arm counts
// sum to any particular total (freq normalizes probabilities).
func (p Profile) Merge(other Profile) Profile {
	if len(other) == 0 {
		return p
	}
	if p == nil {
		p = Profile{}
	}
	for name, ofp := range other {
		fp := p[name]
		if fp == nil {
			fp = &FuncProfile{Branches: map[int]Counts{}}
			p[name] = fp
		}
		fp.Calls = satAdd(fp.Calls, ofp.Calls)
		for id, c := range ofp.Branches {
			cur := fp.Branches[id]
			fp.Branches[id] = Counts{
				Taken: satAdd(cur.Taken, c.Taken),
				Fall:  satAdd(cur.Fall, c.Fall),
			}
		}
	}
	return p
}

// ToInterp converts to the interp.Profile form jit.Options.Profile and the
// compile-cache key signature consume. Entry counts are dropped: order
// determination only reads branch probabilities.
func (p Profile) ToInterp() interp.Profile {
	if p == nil {
		return nil
	}
	out := interp.Profile{}
	for name, fp := range p {
		m := map[int]*[2]int64{}
		for id, c := range fp.Branches {
			m[id] = &[2]int64{c.Taken, c.Fall}
		}
		out[name] = m
	}
	return out
}

// FromInterp builds a Profile from one interpreter run's branch counters and
// (optionally) its per-function call counts.
func FromInterp(ip interp.Profile, calls map[string]int64) Profile {
	p := Profile{}
	for name, m := range ip {
		fp := &FuncProfile{Branches: map[int]Counts{}}
		for id, c := range m {
			fp.Branches[id] = Counts{Taken: c[0], Fall: c[1]}
		}
		p[name] = fp
	}
	for name, n := range calls {
		fp := p[name]
		if fp == nil {
			fp = &FuncProfile{Branches: map[int]Counts{}}
			p[name] = fp
		}
		fp.Calls = satAdd(fp.Calls, n)
	}
	return p
}

// Wire format: one JSON object with explicit, sorted arrays so the encoding
// is byte-deterministic (golden-file pinnable) and diff-friendly.
type wireFile struct {
	Version   int        `json:"version"`
	Functions []wireFunc `json:"functions"`
}

type wireFunc struct {
	Name     string       `json:"name"`
	Calls    int64        `json:"calls,omitempty"`
	Branches []wireBranch `json:"branches,omitempty"`
}

type wireBranch struct {
	ID    int   `json:"id"`
	Taken int64 `json:"taken"`
	Fall  int64 `json:"fall"`
}

// wireVersion is bumped on incompatible schema changes; Unmarshal rejects
// anything else so a stale artifact fails loudly instead of silently biasing
// order determination.
const wireVersion = 1

// Marshal encodes the profile deterministically: functions sorted by name,
// branches by instruction ID, indented for human diffing, trailing newline.
func (p Profile) Marshal() []byte {
	w := wireFile{Version: wireVersion, Functions: []wireFunc{}}
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fp := p[name]
		wf := wireFunc{Name: name, Calls: fp.Calls}
		ids := make([]int, 0, len(fp.Branches))
		for id := range fp.Branches {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			c := fp.Branches[id]
			wf.Branches = append(wf.Branches, wireBranch{ID: id, Taken: c.Taken, Fall: c.Fall})
		}
		w.Functions = append(w.Functions, wf)
	}
	data, err := json.MarshalIndent(&w, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("profile: marshal cannot fail on plain structs: %v", err))
	}
	return append(data, '\n')
}

// Unmarshal decodes a profile written by Marshal (or hand-written JSON in
// the same schema), validating version, duplicates, count signs and overflow.
// Counters too large for int64 are rejected by the JSON decoder itself
// (overflow, not silent wrap); every rejection wraps ErrInvalid.
func Unmarshal(data []byte) (Profile, error) {
	var w wireFile
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("profile: bad JSON: %w: %w", ErrInvalid, err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("profile: %w: unsupported version %d (want %d)", ErrInvalid, w.Version, wireVersion)
	}
	p := Profile{}
	for _, wf := range w.Functions {
		if wf.Name == "" {
			return nil, fmt.Errorf("profile: %w: function with empty name", ErrInvalid)
		}
		if p[wf.Name] != nil {
			return nil, fmt.Errorf("profile: %w: duplicate function %q", ErrInvalid, wf.Name)
		}
		if wf.Calls < 0 {
			return nil, fmt.Errorf("profile: %w: %s: negative call count %d", ErrInvalid, wf.Name, wf.Calls)
		}
		fp := &FuncProfile{Calls: wf.Calls, Branches: map[int]Counts{}}
		for _, b := range wf.Branches {
			if b.Taken < 0 || b.Fall < 0 {
				return nil, fmt.Errorf("profile: %w: %s: branch %d has negative counts (%d/%d)", ErrInvalid, wf.Name, b.ID, b.Taken, b.Fall)
			}
			if _, dup := fp.Branches[b.ID]; dup {
				return nil, fmt.Errorf("profile: %w: %s: duplicate branch id %d", ErrInvalid, wf.Name, b.ID)
			}
			fp.Branches[b.ID] = Counts{Taken: b.Taken, Fall: b.Fall}
		}
		p[wf.Name] = fp
	}
	return p, nil
}

// satAdd adds two non-negative counters, saturating at MaxInt64 so merged
// long-running profiles never wrap negative.
func satAdd(a, b int64) int64 {
	s := a + b
	if s < a {
		return math.MaxInt64
	}
	return s
}

// funcCounters is one function's live counter block inside a Collector.
type funcCounters struct {
	calls int64 // atomic

	mu sync.RWMutex // guards the branches map's shape, not the counters
	br map[int]*[2]int64
}

func (fc *funcCounters) counter(id int) *[2]int64 {
	fc.mu.RLock()
	c := fc.br[id]
	fc.mu.RUnlock()
	if c != nil {
		return c
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if c = fc.br[id]; c == nil {
		c = new([2]int64)
		fc.br[id] = c
	}
	return c
}

// Collector accumulates branch and entry counters from any number of
// concurrent observers. The hot path — an already-seen (function, branch)
// pair — is a shared read lock plus one atomic add; map growth takes the
// write lock once per new key.
type Collector struct {
	mu  sync.RWMutex
	fns map[string]*funcCounters
}

// NewCollector returns an empty collector. seed, if non-nil, pre-loads
// previously gathered counters (sxelim -profile-in, warm-start persistence).
func NewCollector(seed Profile) *Collector {
	c := &Collector{fns: map[string]*funcCounters{}}
	c.Add(seed)
	return c
}

func (c *Collector) fn(name string) *funcCounters {
	c.mu.RLock()
	fc := c.fns[name]
	c.mu.RUnlock()
	if fc != nil {
		return fc
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if fc = c.fns[name]; fc == nil {
		fc = &funcCounters{br: map[int]*[2]int64{}}
		c.fns[name] = fc
	}
	return fc
}

// Observe records one executed conditional branch.
func (c *Collector) Observe(fn string, id int, taken bool) {
	ctr := c.fn(fn).counter(id)
	if taken {
		atomic.AddInt64(&ctr[0], 1)
	} else {
		atomic.AddInt64(&ctr[1], 1)
	}
}

// ObserveCall records one function entry.
func (c *Collector) ObserveCall(fn string) {
	atomic.AddInt64(&c.fn(fn).calls, 1)
}

// Add merges a finished profile (e.g. one interpreter run's snapshot) into
// the collector. Cheaper than per-branch Observe calls when a run already
// aggregated its own counters.
func (c *Collector) Add(p Profile) {
	for name, fp := range p {
		fc := c.fn(name)
		if fp.Calls != 0 {
			atomic.AddInt64(&fc.calls, fp.Calls)
		}
		for id, counts := range fp.Branches {
			ctr := fc.counter(id)
			atomic.AddInt64(&ctr[0], counts.Taken)
			atomic.AddInt64(&ctr[1], counts.Fall)
		}
	}
}

// AddRun merges one interpreter run's branch counters and call counts,
// keeping only functions include accepts (the tiered runtime filters out
// functions already running compiled code, whose instruction IDs belong to
// the optimized body, not the frontend form). A nil include keeps all.
func (c *Collector) AddRun(ip interp.Profile, calls map[string]int64, include func(string) bool) {
	for name, m := range ip {
		if include != nil && !include(name) {
			continue
		}
		fc := c.fn(name)
		for id, counts := range m {
			ctr := fc.counter(id)
			atomic.AddInt64(&ctr[0], counts[0])
			atomic.AddInt64(&ctr[1], counts[1])
		}
	}
	for name, n := range calls {
		if include != nil && !include(name) {
			continue
		}
		atomic.AddInt64(&c.fn(name).calls, n)
	}
}

// Snapshot returns a consistent value copy of the counters. Concurrent
// observers may keep counting; the snapshot reflects some point between the
// call's start and end.
func (c *Collector) Snapshot() Profile {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p := Profile{}
	for name, fc := range c.fns {
		fp := &FuncProfile{Calls: atomic.LoadInt64(&fc.calls), Branches: map[int]Counts{}}
		fc.mu.RLock()
		for id, ctr := range fc.br {
			fp.Branches[id] = Counts{
				Taken: atomic.LoadInt64(&ctr[0]),
				Fall:  atomic.LoadInt64(&ctr[1]),
			}
		}
		fc.mu.RUnlock()
		p[name] = fp
	}
	return p
}

// Weight reports a function's current hotness (entries + branch events).
func (c *Collector) Weight(fn string) int64 {
	c.mu.RLock()
	fc := c.fns[fn]
	c.mu.RUnlock()
	if fc == nil {
		return 0
	}
	w := atomic.LoadInt64(&fc.calls)
	fc.mu.RLock()
	for _, ctr := range fc.br {
		w = satAdd(w, satAdd(atomic.LoadInt64(&ctr[0]), atomic.LoadInt64(&ctr[1])))
	}
	fc.mu.RUnlock()
	return w
}

// Reset drops every counter.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.fns = map[string]*funcCounters{}
	c.mu.Unlock()
}
