package codecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Codec serializes cache payloads for the on-disk store. The cache itself is
// payload-agnostic (entries are `any`); the consumer that defines the payload
// type — the jit driver — supplies the codec.
type Codec interface {
	// Encode serializes v. ok=false means "do not persist this payload"
	// (e.g. jit skips entries carrying context-dependent fallback records);
	// that is a policy decision, not an error.
	Encode(v any) (data []byte, ok bool)

	// Decode reconstructs a payload and reports its resident size (the byte
	// charge for the in-memory cache). A decode error marks the entry
	// corrupt: the store quarantines the file.
	Decode(data []byte) (v any, size int64, err error)
}

// DiskStats counts what a DiskStore did over its lifetime.
type DiskStats struct {
	Loads       uint64 `json:"loads"`        // entries served from disk
	LoadMisses  uint64 `json:"load_misses"`  // keys with no on-disk entry
	Stores      uint64 `json:"stores"`       // entries written
	Quarantined uint64 `json:"quarantined"`  // corrupt entries moved aside
	Errors      uint64 `json:"errors"`       // I/O failures (degraded to miss/no-op)
	Skipped     uint64 `json:"skipped"`      // payloads the codec declined to persist
}

// DiskStore is a crash-safe, content-addressed on-disk entry store. Each
// entry is one file named by the hex of its key under a two-hex-digit prefix
// directory (dir/ab/abcdef….sxe — the same fingerprint-prefix sharding the
// in-memory cache uses for locks, here keeping directories small).
//
// Crash safety comes from two mechanisms:
//
//   - writes go to a same-directory temp file that is fsync'd and renamed
//     into place, so a crash — even kill -9 mid-write — leaves either the
//     old entry, no entry, or a stray *.tmp file that Open sweeps away; a
//     torn final file cannot exist;
//   - every file embeds a SHA-256 of its payload, verified on load; an entry
//     that is corrupt anyway (bit rot, a torn write on a filesystem without
//     atomic rename, a chaos campaign flipping bytes) is quarantined —
//     renamed to *.quarantine, counted, and treated as a miss — so one bad
//     artifact costs one recompile, never a wrong answer and never a crash
//     loop.
//
// Every failure path degrades to "miss" or "no-op": a DiskStore never turns
// an I/O problem into a caller-visible error.
type DiskStore struct {
	dir   string
	codec Codec

	loads       atomic.Uint64
	loadMisses  atomic.Uint64
	stores      atomic.Uint64
	quarantined atomic.Uint64
	errors      atomic.Uint64
	skipped     atomic.Uint64

	mu sync.Mutex // serializes writers to the same entry file
}

const (
	diskMagic  = "sxd1" // format version; bumped on incompatible changes
	diskSuffix = ".sxe"
)

// OpenDiskStore opens (creating if needed) the store rooted at dir and sweeps
// stray temp files left by a crashed writer.
func OpenDiskStore(dir string, codec Codec) (*DiskStore, error) {
	if codec == nil {
		return nil, fmt.Errorf("codecache: OpenDiskStore needs a codec")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("codecache: %w", err)
	}
	s := &DiskStore{dir: dir, codec: codec}
	// A crash can only leave *.tmp files (rename is atomic); they are
	// garbage by construction.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*", "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(k Key) string {
	h := hex.EncodeToString(k[:])
	return filepath.Join(s.dir, h[:2], h+diskSuffix)
}

// Store persists v under k (write-through, atomic). Payloads the codec
// declines and I/O failures are counted and otherwise ignored: persistence
// is an optimization, never a correctness dependency.
func (s *DiskStore) Store(k Key, v any) {
	data, ok := s.codec.Encode(v)
	if !ok {
		s.skipped.Add(1)
		return
	}
	sum := sha256.Sum256(data)
	var buf bytes.Buffer
	buf.Grow(len(diskMagic) + len(sum) + len(data))
	buf.WriteString(diskMagic)
	buf.Write(sum[:])
	buf.Write(data)

	path := s.path(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.errors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "*.tmp")
	if err != nil {
		s.errors.Add(1)
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.errors.Add(1)
		return
	}
	s.stores.Add(1)
}

// Load reads and verifies the entry stored under k. It returns the decoded
// payload and its resident size, or ok=false on a miss. A file that fails
// the magic, hash or decode check is quarantined and reported as a miss.
func (s *DiskStore) Load(k Key) (v any, size int64, ok bool) {
	path := s.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.errors.Add(1)
		}
		s.loadMisses.Add(1)
		return nil, 0, false
	}
	header := len(diskMagic) + sha256.Size
	if len(raw) < header || string(raw[:len(diskMagic)]) != diskMagic {
		s.loadMisses.Add(1)
		s.quarantine(path)
		return nil, 0, false
	}
	var want [sha256.Size]byte
	copy(want[:], raw[len(diskMagic):header])
	body := raw[header:]
	if sha256.Sum256(body) != want {
		s.loadMisses.Add(1)
		s.quarantine(path)
		return nil, 0, false
	}
	val, sz, err := s.codec.Decode(body)
	if err != nil {
		s.loadMisses.Add(1)
		s.quarantine(path)
		return nil, 0, false
	}
	s.loads.Add(1)
	return val, sz, true
}

// quarantine moves a corrupt entry aside (never deletes: chaos campaigns and
// humans both want the evidence).
func (s *DiskStore) quarantine(path string) {
	s.quarantined.Add(1)
	if err := os.Rename(path, path+".quarantine"); err != nil {
		// Last resort: remove, so the corrupt entry cannot be re-read forever.
		os.Remove(path)
	}
}

// Len walks the store and returns the number of intact-looking entry files.
// O(entries); intended for tests and the stats endpoint, not hot paths.
func (s *DiskStore) Len() int {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "*", "*"+diskSuffix))
	return len(matches)
}

// Stats returns a snapshot of the store's counters.
func (s *DiskStore) Stats() DiskStats {
	return DiskStats{
		Loads:       s.loads.Load(),
		LoadMisses:  s.loadMisses.Load(),
		Stores:      s.stores.Load(),
		Quarantined: s.quarantined.Load(),
		Errors:      s.errors.Load(),
		Skipped:     s.skipped.Load(),
	}
}

// Spill layers a DiskStore under an in-memory cache: gets fall through to
// disk (promoting hits into memory), puts write through to both. Because
// every put is persisted immediately and the store's writes are atomic, the
// warm set survives any crash — including kill -9 — with no shutdown hook
// needed. Spill satisfies Interface, so the jit driver uses it untouched.
type Spill struct {
	mem  Interface
	disk *DiskStore
}

var _ Interface = (*Spill)(nil)

// NewSpill combines a memory cache and a disk store.
func NewSpill(mem Interface, disk *DiskStore) *Spill {
	return &Spill{mem: mem, disk: disk}
}

// Disk returns the underlying store (for its stats).
func (s *Spill) Disk() *DiskStore { return s.disk }

// Get checks memory first, then disk. A disk hit is promoted into the memory
// cache (charged at its decoded size) so subsequent gets are pure memory.
func (s *Spill) Get(k Key) (any, bool) {
	if v, ok := s.mem.Get(k); ok {
		return v, true
	}
	v, size, ok := s.disk.Load(k)
	if !ok {
		return nil, false
	}
	s.mem.Put(k, v, size)
	return v, true
}

// Put stores v in memory and persists it (write-through).
func (s *Spill) Put(k Key, v any, size int64) {
	s.mem.Put(k, v, size)
	s.disk.Store(k, v)
}

// Remove drops the entry from memory only: the persisted copy is not a
// correctness hazard (it is re-verified by hash and, under paranoid mode, by
// the deep verifier on every load).
func (s *Spill) Remove(k Key) { s.mem.Remove(k) }

// RejectParanoid drops the entry from memory, records the rejection, and
// quarantines the persisted copy: an entry that failed deep verification
// must not be resurrected from disk on the next miss.
func (s *Spill) RejectParanoid(k Key) {
	s.mem.RejectParanoid(k)
	if _, err := os.Stat(s.disk.path(k)); err == nil {
		s.disk.quarantine(s.disk.path(k))
	}
}

// SetParanoid toggles paranoid mode on the memory cache.
func (s *Spill) SetParanoid(on bool) { s.mem.SetParanoid(on) }

// Paranoid reports whether paranoid re-verification is enabled.
func (s *Spill) Paranoid() bool { return s.mem.Paranoid() }

// Stats returns the memory cache's consistent snapshot. Disk counters are
// separate (Disk().Stats()): mixing the two would make HitRate meaningless.
func (s *Spill) Stats() Stats { return s.mem.Stats() }

// Len returns the number of in-memory entries.
func (s *Spill) Len() int { return s.mem.Len() }
