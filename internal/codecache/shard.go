package codecache

// Interface is the cache contract the jit driver (and any other memoizing
// consumer) compiles against: a flat Cache, a Sharded cache, and a disk-backed
// Spill all satisfy it, so the choice of cache topology is a wiring decision,
// not a compiler change.
type Interface interface {
	Get(k Key) (any, bool)
	Put(k Key, v any, size int64)
	Remove(k Key)
	RejectParanoid(k Key)
	SetParanoid(on bool)
	Paranoid() bool
	Stats() Stats
	Len() int
}

var (
	_ Interface = (*Cache)(nil)
	_ Interface = (*Sharded)(nil)
)

// Sharded is a content-address-sharded cache: keys route to one of NShards
// independent LRU shards by their first byte. Since keys are SHA-256 outputs,
// the first byte is uniformly distributed and shards stay balanced without
// any coordination. Each shard has its own lock, so concurrent compiles
// touching different functions almost never contend — the property a
// many-tenant compile daemon needs from its one hot shared cache.
//
// Eviction is per shard (each shard is bounded at maxBytes/NShards), which
// approximates global LRU: a key can be evicted while a colder key survives
// in another shard, but only within the capacity of a single shard.
type Sharded struct {
	shards []*Cache
	mask   uint8
}

// DefaultShards is the shard count NewSharded uses when asked for 0. Sixteen
// shards keep worst-case contention at 1/16th of a flat cache while the
// per-shard byte bound stays large enough that sharded eviction tracks
// global LRU closely.
const DefaultShards = 16

// NewSharded returns a cache bounded at maxBytes total, split over nShards
// independent shards. nShards is rounded up to a power of two (so routing is
// a mask, not a modulo) and clamped to [1, 256]; 0 selects DefaultShards.
func NewSharded(maxBytes int64, nShards int) *Sharded {
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if nShards > 256 {
		nShards = 256
	}
	pow := 1
	for pow < nShards {
		pow <<= 1
	}
	per := maxBytes / int64(pow)
	s := &Sharded{shards: make([]*Cache, pow), mask: uint8(pow - 1)}
	for i := range s.shards {
		s.shards[i] = New(per)
	}
	return s
}

// shard routes a key to its shard: SHA-256 keys are uniform in every byte, so
// the first byte masked is a balanced router.
func (s *Sharded) shard(k Key) *Cache { return s.shards[k[0]&s.mask] }

// NShards returns the shard count.
func (s *Sharded) NShards() int { return len(s.shards) }

// Get returns the payload stored under k and marks it most recently used
// within its shard.
func (s *Sharded) Get(k Key) (any, bool) { return s.shard(k).Get(k) }

// Put stores v under k in its shard, evicting that shard's LRU entries as
// needed.
func (s *Sharded) Put(k Key, v any, size int64) { s.shard(k).Put(k, v, size) }

// Remove drops the entry stored under k, if any.
func (s *Sharded) Remove(k Key) { s.shard(k).Remove(k) }

// RejectParanoid drops the entry stored under k and records a paranoid
// verification rejection on its shard.
func (s *Sharded) RejectParanoid(k Key) { s.shard(k).RejectParanoid(k) }

// SetParanoid toggles paranoid mode on every shard.
func (s *Sharded) SetParanoid(on bool) {
	for _, c := range s.shards {
		c.SetParanoid(on)
	}
}

// Paranoid reports whether paranoid re-verification is enabled.
func (s *Sharded) Paranoid() bool { return s.shards[0].Paranoid() }

// Len returns the current number of entries across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// Stats returns one consistent snapshot of the summed counters: every shard
// lock is held simultaneously (acquired in shard order, so concurrent Stats
// calls cannot deadlock) while the counters are read. Summing per-shard
// snapshots taken one at a time would tear — a Put racing between two shard
// reads shows up in Bytes but not Entries — and torn stats are exactly what a
// monitoring endpoint must never serve.
func (s *Sharded) Stats() Stats {
	for _, c := range s.shards {
		c.mu.Lock()
	}
	var t Stats
	for _, c := range s.shards {
		t.Hits += c.hits
		t.Misses += c.misses
		t.Evictions += c.evictions
		t.ParanoidRejects += c.paranoidRejects
		t.Entries += c.ll.Len()
		t.Bytes += c.bytes
		t.CapacityBytes += c.max
	}
	for _, c := range s.shards {
		c.mu.Unlock()
	}
	return t
}
