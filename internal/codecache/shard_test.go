package codecache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func keyOf(s string) Key {
	w := NewKeyWriter()
	w.String(s)
	return w.Key()
}

func TestShardedRouting(t *testing.T) {
	s := NewSharded(1<<20, 16)
	if s.NShards() != 16 {
		t.Fatalf("NShards = %d, want 16", s.NShards())
	}
	// Every key lands in exactly one shard and is found again.
	for i := 0; i < 500; i++ {
		k := keyOf(fmt.Sprintf("key-%d", i))
		s.Put(k, i, 10)
		v, ok := s.Get(k)
		if !ok || v.(int) != i {
			t.Fatalf("key %d: got (%v, %v)", i, v, ok)
		}
	}
	if s.Len() != 500 {
		t.Fatalf("Len = %d, want 500", s.Len())
	}
	// With 500 SHA-256 keys over 16 shards, every shard should be populated.
	for i, c := range s.shards {
		if c.Len() == 0 {
			t.Errorf("shard %d empty: keys are not spreading", i)
		}
	}
}

func TestShardedShardCountClamps(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32}, {1000, 256},
	} {
		if got := NewSharded(1<<20, tc.ask).NShards(); got != tc.want {
			t.Errorf("NewSharded(_, %d).NShards() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestShardedParanoidAndRemove(t *testing.T) {
	s := NewSharded(1<<20, 4)
	if s.Paranoid() {
		t.Fatal("paranoid on by default")
	}
	s.SetParanoid(true)
	if !s.Paranoid() {
		t.Fatal("SetParanoid(true) not visible")
	}
	k := keyOf("x")
	s.Put(k, "v", 8)
	s.RejectParanoid(k)
	if _, ok := s.Get(k); ok {
		t.Fatal("entry survived RejectParanoid")
	}
	if got := s.Stats().ParanoidRejects; got != 1 {
		t.Fatalf("ParanoidRejects = %d, want 1", got)
	}
	s.Put(k, "v", 8)
	s.Remove(k)
	if _, ok := s.Get(k); ok {
		t.Fatal("entry survived Remove")
	}
}

// TestShardedStatsConsistentSnapshot hammers a sharded cache from many
// goroutines while concurrently taking Stats snapshots, asserting on every
// snapshot the cross-counter invariants that only hold if the snapshot is a
// single consistent cut (all shard locks held at once):
//
//   - Bytes == Entries * entrySize: every entry has the same size and the
//     capacity is set so nothing is evicted, so a snapshot that interleaves
//     with a Put (bytes charged, entry counted — both under the shard lock)
//     must see the two move together;
//   - Bytes never exceeds CapacityBytes;
//   - cumulative counters are monotone non-decreasing across snapshots.
//
// Run under -race this also proves the lock-all Stats path is race-clean
// against every mutating method.
func TestShardedStatsConsistentSnapshot(t *testing.T) {
	const (
		entrySize = 64
		keys      = 512
		workers   = 8
		opsPer    = 4000
	)
	// Capacity well above keys*entrySize per shard: no evictions, so
	// Bytes == Entries*entrySize must hold exactly.
	s := NewSharded(int64(keys*entrySize*16), 16)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var gets, puts atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := keyOf(fmt.Sprintf("k-%d", (w*31+i)%keys))
				if _, ok := s.Get(k); !ok {
					s.Put(k, i, entrySize)
					puts.Add(1)
				}
				gets.Add(1)
			}
		}(w)
	}

	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var prev Stats
		for !stop.Load() {
			st := s.Stats()
			if st.Bytes != int64(st.Entries)*entrySize {
				snapErr = fmt.Errorf("torn snapshot: Bytes=%d, Entries=%d (want Bytes == Entries*%d)", st.Bytes, st.Entries, entrySize)
				return
			}
			if st.Bytes > st.CapacityBytes {
				snapErr = fmt.Errorf("Bytes=%d exceeds CapacityBytes=%d", st.Bytes, st.CapacityBytes)
				return
			}
			if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Evictions < prev.Evictions {
				snapErr = fmt.Errorf("counters went backwards: %+v then %+v", prev, st)
				return
			}
			prev = st
		}
	}()

	wg.Wait()
	stop.Store(true)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	// Quiescent totals must reconcile exactly with the issued operations.
	st := s.Stats()
	if st.Hits+st.Misses != uint64(gets.Load()) {
		t.Fatalf("Hits+Misses = %d, want %d gets", st.Hits+st.Misses, gets.Load())
	}
	if st.Misses != uint64(puts.Load()) {
		t.Fatalf("Misses = %d, want %d (one put per miss)", st.Misses, puts.Load())
	}
	if st.Entries != keys || st.Evictions != 0 {
		t.Fatalf("Entries=%d Evictions=%d, want %d and 0", st.Entries, st.Evictions, keys)
	}
}

// TestShardedEvictionStaysBounded pins per-shard eviction: a sharded cache
// under byte pressure evicts within shards and never exceeds its bound.
func TestShardedEvictionStaysBounded(t *testing.T) {
	const entrySize = 100
	s := NewSharded(16*4*entrySize, 16) // 4 entries per shard
	for i := 0; i < 2000; i++ {
		s.Put(keyOf(fmt.Sprintf("e-%d", i)), i, entrySize)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions under byte pressure")
	}
	if st.Bytes > st.CapacityBytes {
		t.Fatalf("Bytes=%d exceeds capacity %d", st.Bytes, st.CapacityBytes)
	}
}
