package codecache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stringCodec is a trivial test codec: payloads are strings; "skipme" values
// are declined; decode rejects bodies containing "poison".
type stringCodec struct{}

func (stringCodec) Encode(v any) ([]byte, bool) {
	s := v.(string)
	if s == "skipme" {
		return nil, false
	}
	return []byte(s), true
}

func (stringCodec) Decode(data []byte) (any, int64, error) {
	if strings.Contains(string(data), "poison") {
		return nil, 0, fmt.Errorf("poisoned payload")
	}
	return string(data), int64(len(data)), nil
}

func openTestStore(t *testing.T) *DiskStore {
	t.Helper()
	s, err := OpenDiskStore(t.TempDir(), stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiskStoreRoundTrip(t *testing.T) {
	s := openTestStore(t)
	k := keyOf("a")
	s.Store(k, "hello")
	v, size, ok := s.Load(k)
	if !ok || v.(string) != "hello" || size != 5 {
		t.Fatalf("Load = (%v, %d, %v), want (hello, 5, true)", v, size, ok)
	}
	if _, _, ok := s.Load(keyOf("missing")); ok {
		t.Fatal("hit on a never-stored key")
	}
	st := s.Stats()
	if st.Stores != 1 || st.Loads != 1 || st.LoadMisses != 1 {
		t.Fatalf("stats %+v, want 1 store, 1 load, 1 miss", st)
	}
	// The store survives reopening: a fresh handle over the same directory
	// serves the entry (this is the whole point).
	s2, err := OpenDiskStore(s.Dir(), stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _, ok := s2.Load(k); !ok || v.(string) != "hello" {
		t.Fatal("entry lost across reopen")
	}
}

func TestDiskStoreCodecSkip(t *testing.T) {
	s := openTestStore(t)
	s.Store(keyOf("x"), "skipme")
	if _, _, ok := s.Load(keyOf("x")); ok {
		t.Fatal("declined payload was persisted")
	}
	if st := s.Stats(); st.Skipped != 1 || st.Stores != 0 {
		t.Fatalf("stats %+v, want Skipped=1 Stores=0", st)
	}
}

// corrupt flips one byte of the stored entry file for k.
func corrupt(t *testing.T, s *DiskStore, k Key, off int) {
	t.Helper()
	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = len(data) + off
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreCorruptionQuarantined(t *testing.T) {
	cases := []struct {
		name string
		muck func(t *testing.T, s *DiskStore, k Key)
	}{
		{"flipped payload byte", func(t *testing.T, s *DiskStore, k Key) { corrupt(t, s, k, -1) }},
		{"flipped hash byte", func(t *testing.T, s *DiskStore, k Key) { corrupt(t, s, k, len(diskMagic)) }},
		{"bad magic", func(t *testing.T, s *DiskStore, k Key) { corrupt(t, s, k, 0) }},
		{"truncated file", func(t *testing.T, s *DiskStore, k Key) {
			if err := os.Truncate(s.path(k), 10); err != nil {
				t.Fatal(err)
			}
		}},
		{"decode rejection", func(t *testing.T, s *DiskStore, k Key) {
			// Valid magic and hash over a body the codec rejects: simulates a
			// schema-level corruption the hash cannot catch.
			s.Store(k, "poisoned payload ok hash") // contains "poison"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openTestStore(t)
			k := keyOf("victim")
			s.Store(k, "valuable")
			tc.muck(t, s, k)
			if _, _, ok := s.Load(k); ok && tc.name != "decode rejection" {
				t.Fatal("corrupt entry served")
			}
			if tc.name == "decode rejection" {
				if _, _, ok := s.Load(k); ok {
					t.Fatal("poisoned entry served")
				}
			}
			st := s.Stats()
			if st.Quarantined == 0 {
				t.Fatalf("stats %+v: corruption not quarantined", st)
			}
			// The evidence is preserved next to the entry…
			q, _ := filepath.Glob(filepath.Join(s.Dir(), "*", "*.quarantine"))
			if len(q) == 0 {
				t.Fatal("no .quarantine file left behind")
			}
			// …and the slot is reusable: a fresh store + load recovers.
			s.Store(k, "recompiled")
			if v, _, ok := s.Load(k); !ok || v.(string) != "recompiled" {
				t.Fatal("slot not reusable after quarantine")
			}
		})
	}
}

// TestDiskStoreCrashLeftoversSwept simulates a writer killed mid-write: a
// stray temp file must be swept by Open and never served as an entry.
func TestDiskStoreCrashLeftoversSwept(t *testing.T) {
	s := openTestStore(t)
	k := keyOf("a")
	s.Store(k, "committed")
	sub := filepath.Dir(s.path(k))
	tmp := filepath.Join(sub, "halfwrite.tmp")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(s.Dir(), stringCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stray temp file not swept on open")
	}
	if v, _, ok := s2.Load(k); !ok || v.(string) != "committed" {
		t.Fatal("committed entry lost")
	}
}

func TestSpillWriteThroughAndPromotion(t *testing.T) {
	disk := openTestStore(t)
	sp := NewSpill(NewSharded(1<<20, 4), disk)
	k := keyOf("f")
	sp.Put(k, "compiled", 8)
	if v, ok := sp.Get(k); !ok || v.(string) != "compiled" {
		t.Fatal("memory hit failed")
	}
	// A "restarted process": fresh memory over the same disk store.
	sp2 := NewSpill(NewSharded(1<<20, 4), disk)
	if v, ok := sp2.Get(k); !ok || v.(string) != "compiled" {
		t.Fatal("warm start from disk failed")
	}
	// Promotion: the disk hit is now in memory; a second Get must not touch
	// disk again.
	loadsBefore := disk.Stats().Loads
	if _, ok := sp2.Get(k); !ok {
		t.Fatal("promoted entry lost")
	}
	if disk.Stats().Loads != loadsBefore {
		t.Fatal("second Get went to disk; promotion into memory failed")
	}
}

func TestSpillRejectParanoidQuarantinesDisk(t *testing.T) {
	disk := openTestStore(t)
	sp := NewSpill(New(1<<20), disk)
	k := keyOf("bad")
	sp.Put(k, "entry", 8)
	sp.RejectParanoid(k)
	if _, ok := sp.Get(k); ok {
		t.Fatal("rejected entry resurrected from disk")
	}
	if disk.Stats().Quarantined == 0 {
		t.Fatal("persisted copy of rejected entry not quarantined")
	}
}
