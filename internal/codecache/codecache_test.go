package codecache

import (
	"fmt"
	"sync"
	"testing"
)

func key(s string) Key {
	w := NewKeyWriter()
	w.String(s)
	return w.Key()
}

func TestKeyWriterFraming(t *testing.T) {
	a := NewKeyWriter()
	a.String("ab")
	a.String("c")
	b := NewKeyWriter()
	b.String("a")
	b.String("bc")
	if a.Key() == b.Key() {
		t.Error("length framing failed: concatenation collision")
	}
	c := NewKeyWriter()
	c.Uint64(1)
	c.Bool(true)
	d := NewKeyWriter()
	d.Uint64(1)
	d.Bool(true)
	if c.Key() != d.Key() {
		t.Error("key writer not deterministic")
	}
}

func TestCacheBasic(t *testing.T) {
	c := New(1000)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("a"), "va", 10)
	v, ok := c.Get(key("a"))
	if !ok || v.(string) != "va" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 10 || s.CapacityBytes != 1000 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
	// Replacing a key adjusts bytes, not entry count.
	c.Put(key("a"), "va2", 30)
	if s := c.Stats(); s.Entries != 1 || s.Bytes != 30 {
		t.Errorf("after replace: %+v", s)
	}
	c.Remove(key("a"))
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("after remove: %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(30)
	c.Put(key("a"), "a", 10)
	c.Put(key("b"), "b", 10)
	c.Put(key("c"), "c", 10)
	// Touch a so b becomes the oldest.
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a missing")
	}
	c.Put(key("d"), "d", 10) // over budget: evict b
	if _, ok := c.Get(key("b")); ok {
		t.Error("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(key(k)); !ok {
			t.Errorf("%s unexpectedly evicted", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Bytes != 30 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheOversizedEntry(t *testing.T) {
	c := New(10)
	c.Put(key("big"), "big", 100)
	if _, ok := c.Get(key("big")); !ok {
		t.Error("oversized entry should be kept alone rather than thrashing")
	}
	c.Put(key("small"), "small", 1)
	if s := c.Stats(); s.Bytes > 10 && s.Entries > 1 {
		t.Errorf("bound not restored after oversized entry: %+v", s)
	}
}

func TestCacheParanoid(t *testing.T) {
	c := New(100)
	if c.Paranoid() {
		t.Error("paranoid should default off")
	}
	c.SetParanoid(true)
	if !c.Paranoid() {
		t.Error("SetParanoid(true) not visible")
	}
	c.Put(key("a"), "a", 1)
	c.RejectParanoid(key("a"))
	if _, ok := c.Get(key("a")); ok {
		t.Error("rejected entry still present")
	}
	if s := c.Stats(); s.ParanoidRejects != 1 {
		t.Errorf("paranoid rejects = %d, want 1", s.ParanoidRejects)
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := New(0)
	c.Put(key("a"), "a", 5)
	if _, ok := c.Get(key("a")); !ok {
		t.Error("degenerate capacity should still hold the latest entry")
	}
	c.Put(key("b"), "b", 5)
	if _, ok := c.Get(key("a")); ok {
		t.Error("old entry should be evicted under a 1-byte bound")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(fmt.Sprintf("k%d", i%37))
				if v, ok := c.Get(k); ok {
					if v.(int) != i%37 {
						t.Errorf("corrupted payload: got %v want %d", v, i%37)
						return
					}
				} else {
					c.Put(k, i%37, 64)
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > s.CapacityBytes || s.Entries > 37 {
		t.Errorf("invariants violated: %+v", s)
	}
}
