// Package codecache provides a content-addressed, concurrency-safe LRU cache
// for per-function compilation results. Entries are keyed by a 256-bit
// content hash (the caller composes it from the function's structural
// fingerprint plus every configuration knob that influences compilation) and
// bounded by total byte size, with least-recently-used eviction.
//
// The cache stores opaque payloads: the jit package defines what a cached
// compilation result looks like, which keeps this package free of import
// cycles and reusable for other memoized artifacts.
package codecache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
)

// Key is a 256-bit content address.
type Key [sha256.Size]byte

// KeyWriter incrementally composes a Key from typed fields with unambiguous
// framing. The zero value is not usable; call NewKeyWriter.
type KeyWriter struct {
	h   hash.Hash
	buf [8]byte
}

// NewKeyWriter returns an empty key writer.
func NewKeyWriter() *KeyWriter { return &KeyWriter{h: sha256.New()} }

// Uint64 mixes an integer field into the key.
func (w *KeyWriter) Uint64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

// Int64 mixes a signed integer field into the key.
func (w *KeyWriter) Int64(v int64) { w.Uint64(uint64(v)) }

// Bool mixes a flag into the key.
func (w *KeyWriter) Bool(b bool) {
	if b {
		w.Uint64(1)
	} else {
		w.Uint64(0)
	}
}

// String mixes a length-prefixed string field into the key.
func (w *KeyWriter) String(s string) {
	w.Uint64(uint64(len(s)))
	w.h.Write([]byte(s))
}

// Bytes mixes a length-prefixed byte field into the key.
func (w *KeyWriter) Bytes(b []byte) {
	w.Uint64(uint64(len(b)))
	w.h.Write(b)
}

// Key finalizes and returns the composed key.
func (w *KeyWriter) Key() Key {
	var k Key
	w.h.Sum(k[:0])
	return k
}

// Stats is a point-in-time snapshot of cache counters. Hits/Misses/Evictions
// and ParanoidRejects are cumulative over the cache's lifetime; Entries and
// Bytes describe the current contents.
type Stats struct {
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Evictions       uint64 `json:"evictions"`
	ParanoidRejects uint64 `json:"paranoid_rejects"`
	Entries         int    `json:"entries"`
	Bytes           int64  `json:"bytes"`
	CapacityBytes   int64  `json:"capacity_bytes"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key   Key
	value any
	size  int64
}

// Cache is a byte-size-bounded LRU map from Key to an opaque payload. All
// methods are safe for concurrent use.
type Cache struct {
	mu              sync.Mutex
	max             int64
	bytes           int64
	ll              *list.List // front = most recently used
	index           map[Key]*list.Element
	hits            uint64
	misses          uint64
	evictions       uint64
	paranoidRejects uint64
	paranoid        bool
}

// New returns a cache bounded at maxBytes of payload (as reported by callers
// to Put). maxBytes <= 0 means a minimal 1-byte bound: every Put evicts, but
// the cache still functions, which keeps degenerate configurations safe.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 1
	}
	return &Cache{max: maxBytes, ll: list.New(), index: map[Key]*list.Element{}}
}

// SetParanoid toggles paranoid mode: consumers re-verify cached payloads on
// every hit and call RejectParanoid on verification failure.
func (c *Cache) SetParanoid(on bool) {
	c.mu.Lock()
	c.paranoid = on
	c.mu.Unlock()
}

// Paranoid reports whether paranoid re-verification is enabled.
func (c *Cache) Paranoid() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.paranoid
}

// Get returns the payload stored under k and marks it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).value, true
	}
	c.misses++
	return nil, false
}

// Put stores v under k, charging size bytes against the bound, and evicts
// least-recently-used entries until the contents fit. Re-putting an existing
// key replaces its payload and size. A payload larger than the whole cache is
// stored alone (the bound is interpreted as "at most one oversized entry").
func (c *Cache) Put(k Key, v any, size int64) {
	if size < 1 {
		size = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.value, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: k, value: v, size: size})
		c.index[k] = el
		c.bytes += size
	}
	for c.bytes > c.max && c.ll.Len() > 1 {
		c.evictOldestLocked()
	}
}

// Remove drops the entry stored under k, if any.
func (c *Cache) Remove(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.removeLocked(el)
	}
}

// RejectParanoid drops the entry stored under k and records a paranoid
// verification rejection.
func (c *Cache) RejectParanoid(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.paranoidRejects++
	if el, ok := c.index[k]; ok {
		c.removeLocked(el)
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.removeLocked(el)
	c.evictions++
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:            c.hits,
		Misses:          c.misses,
		Evictions:       c.evictions,
		ParanoidRejects: c.paranoidRejects,
		Entries:         c.ll.Len(),
		Bytes:           c.bytes,
		CapacityBytes:   c.max,
	}
}
