package dataflow

import (
	"testing"
	"testing/quick"

	"signext/internal/cfg"
	"signext/internal/ir"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatal("set/has broken")
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("clear broken")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("ForEach = %v", got)
	}
}

// Properties of the set algebra on random membership vectors.
func TestBitSetAlgebra(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := NewBitSet(n), NewBitSet(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		u := a.Clone()
		u.UnionWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		d := a.Clone()
		d.AndNotWith(b)
		for k := 0; k < n; k++ {
			if u.Has(k) != (a.Has(k) || b.Has(k)) {
				return false
			}
			if i.Has(k) != (a.Has(k) && b.Has(k)) {
				return false
			}
			if d.Has(k) != (a.Has(k) && !b.Has(k)) {
				return false
			}
		}
		// Union is idempotent: adding b twice changes nothing.
		u2 := u.Clone()
		if u2.UnionWith(b) {
			return false
		}
		return u2.Equal(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildDiamond constructs:
//
//	b0: x=1; br -> b1, b2
//	b1: x=2; jmp b3
//	b2: (nothing) jmp b3
//	b3: print x; ret
func buildDiamond() (*ir.Func, []*ir.Instr) {
	b := ir.NewFunc("d", ir.Param{W: ir.W32})
	x := b.Fn.NewReg()
	d0 := b.ConstTo(ir.W32, x, 1)
	t1, t2, t3 := b.NewBlock(), b.NewBlock(), b.NewBlock()
	b.Br(ir.W32, ir.CondLT, ir.Reg(0), x, t1, t2)
	b.SetBlock(t1)
	d1 := b.ConstTo(ir.W32, x, 2)
	b.Jmp(t3)
	b.SetBlock(t2)
	b.Jmp(t3)
	b.SetBlock(t3)
	use := b.Print(ir.W32, x)
	b.Ret(ir.NoReg)
	return b.Fn, []*ir.Instr{d0, d1, use}
}

func TestReachingDefsDiamond(t *testing.T) {
	fn, ins := buildDiamond()
	info := cfg.Compute(fn)
	r := ComputeReaching(fn, info)
	defsAtUse := r.DefsAt(ins[2], ins[2].Srcs[0])
	if len(defsAtUse) != 2 {
		t.Fatalf("want both definitions to reach the join use, got %d", len(defsAtUse))
	}
	// Inside b1, only d1 reaches the jmp point... check at the branch in b0:
	// only d0.
	term := fn.Entry().Term()
	defsAtBr := r.DefsAt(term, ins[0].Dst)
	if len(defsAtBr) != 1 || r.Defs[defsAtBr[0]].Instr != ins[0] {
		t.Fatalf("only d0 reaches the entry branch, got %v", defsAtBr)
	}
}

func TestReachingParamsAtEntry(t *testing.T) {
	b := ir.NewFunc("p", ir.Param{W: ir.W32}, ir.Param{W: ir.W32})
	use := b.Print(ir.W32, ir.Reg(1))
	b.Ret(ir.NoReg)
	info := cfg.Compute(b.Fn)
	r := ComputeReaching(b.Fn, info)
	defs := r.DefsAt(use, ir.Reg(1))
	if len(defs) != 1 || !r.Defs[defs[0]].IsParam() || r.Defs[defs[0]].Param != 1 {
		t.Fatalf("parameter definition not found: %v", defs)
	}
}

func TestLivenessLoop(t *testing.T) {
	// i alive around the loop; t dead after its final use.
	b := ir.NewFunc("l", ir.Param{W: ir.W32})
	i := b.Fn.NewReg()
	tt := b.Fn.NewReg()
	b.ConstTo(ir.W32, i, 0)
	loop, exit := b.NewBlock(), b.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	add := b.OpTo(ir.OpAdd, ir.W32, i, i, ir.Reg(0))
	b.ConstTo(ir.W32, tt, 7)
	b.Br(ir.W32, ir.CondLT, i, ir.Reg(0), loop, exit)
	b.SetBlock(exit)
	b.Print(ir.W32, i)
	b.Ret(ir.NoReg)

	info := cfg.Compute(b.Fn)
	lv := ComputeLiveness(b.Fn, info)
	if !lv.In[loop].Has(int(i)) {
		t.Error("i must be live into the loop")
	}
	if lv.In[loop].Has(int(tt)) {
		t.Error("t must not be live into the loop (defined before use)")
	}
	if !lv.LiveAfter(add, i) {
		t.Error("i is live after the add")
	}
	if lv.Out[exit].Count() != 0 {
		t.Error("nothing is live out of the exit block")
	}
}
