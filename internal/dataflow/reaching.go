package dataflow

import (
	"signext/internal/cfg"
	"signext/internal/ir"
)

// DefSite identifies one definition: an instruction that writes a register,
// or a function parameter (Instr == nil, Param >= 0).
type DefSite struct {
	Instr *ir.Instr
	Param int // parameter index when Instr == nil
	Reg   ir.Reg
}

// IsParam reports whether the definition is an incoming parameter.
func (d DefSite) IsParam() bool { return d.Instr == nil }

// Reaching holds the reaching-definitions solution for a function.
type Reaching struct {
	Fn      *ir.Func
	Defs    []DefSite            // def number -> site
	DefNum  map[*ir.Instr]int    // defining instruction -> def number
	ByReg   [][]int              // register -> def numbers writing it
	In, Out map[*ir.Block]BitSet // block boundary sets
}

// ComputeReaching solves reaching definitions over fn. Parameters act as
// definitions at function entry.
func ComputeReaching(fn *ir.Func, info *cfg.Info) *Reaching {
	r := &Reaching{
		Fn:     fn,
		DefNum: map[*ir.Instr]int{},
		ByReg:  make([][]int, fn.NReg),
		In:     map[*ir.Block]BitSet{},
		Out:    map[*ir.Block]BitSet{},
	}
	for p := range fn.Params {
		n := len(r.Defs)
		r.Defs = append(r.Defs, DefSite{Param: p, Reg: ir.Reg(p)})
		r.ByReg[p] = append(r.ByReg[p], n)
	}
	fn.ForEachInstr(func(_ *ir.Block, ins *ir.Instr) {
		if !ins.HasDst() {
			return
		}
		n := len(r.Defs)
		r.Defs = append(r.Defs, DefSite{Instr: ins, Param: -1, Reg: ins.Dst})
		r.DefNum[ins] = n
		r.ByReg[ins.Dst] = append(r.ByReg[ins.Dst], n)
	})

	nd := len(r.Defs)
	gen := map[*ir.Block]BitSet{}
	kill := map[*ir.Block]BitSet{}
	for _, b := range fn.Blocks {
		g := NewBitSet(nd)
		k := NewBitSet(nd)
		for _, ins := range b.Instrs {
			if !ins.HasDst() {
				continue
			}
			dn := r.DefNum[ins]
			for _, other := range r.ByReg[ins.Dst] {
				g.Clear(other)
				k.Set(other)
			}
			g.Set(dn)
			k.Clear(dn)
		}
		gen[b] = g
		kill[b] = k
		r.In[b] = NewBitSet(nd)
		r.Out[b] = NewBitSet(nd)
	}
	// Entry IN: the parameters.
	entryIn := NewBitSet(nd)
	for p := range fn.Params {
		entryIn.Set(p)
	}
	r.In[fn.Entry()].CopyFrom(entryIn)

	order := info.RPO
	changed := true
	tmp := NewBitSet(nd)
	for changed {
		changed = false
		for _, b := range order {
			in := r.In[b]
			if b != fn.Entry() {
				in.Reset()
				for _, p := range b.Preds {
					in.UnionWith(r.Out[p])
				}
			}
			tmp.CopyFrom(in)
			tmp.AndNotWith(kill[b])
			tmp.UnionWith(gen[b])
			if !tmp.Equal(r.Out[b]) {
				r.Out[b].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return r
}

// DefsAt returns the definition numbers of reg live immediately before ins
// within its block (walking the block from its IN set).
func (r *Reaching) DefsAt(ins *ir.Instr, reg ir.Reg) []int {
	b := ins.Blk
	cur := r.In[b].Clone()
	for _, x := range b.Instrs {
		if x == ins {
			break
		}
		if x.HasDst() {
			for _, other := range r.ByReg[x.Dst] {
				cur.Clear(other)
			}
			cur.Set(r.DefNum[x])
		}
	}
	var out []int
	for _, dn := range r.ByReg[reg] {
		if cur.Has(dn) {
			out = append(out, dn)
		}
	}
	return out
}
