// Package dataflow implements the iterative bit-vector dataflow framework
// used by the compiler: reaching definitions (feeding UD/DU chains), liveness
// (feeding dead-code elimination and the PDE-style insertion), and the
// per-register demanded-width analysis of the paper's first algorithm.
package dataflow

import "math/bits"

// BitSet is a fixed-capacity bit vector.
type BitSet []uint64

// NewBitSet returns a bitset able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (s BitSet) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s BitSet) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (s BitSet) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// UnionWith ors t into s, reporting whether s changed.
func (s BitSet) UnionWith(t BitSet) bool {
	changed := false
	for k := range s {
		nv := s[k] | t[k]
		if nv != s[k] {
			s[k] = nv
			changed = true
		}
	}
	return changed
}

// IntersectWith ands t into s, reporting whether s changed.
func (s BitSet) IntersectWith(t BitSet) bool {
	changed := false
	for k := range s {
		nv := s[k] & t[k]
		if nv != s[k] {
			s[k] = nv
			changed = true
		}
	}
	return changed
}

// AndNotWith removes t's bits from s.
func (s BitSet) AndNotWith(t BitSet) {
	for k := range s {
		s[k] &^= t[k]
	}
}

// CopyFrom overwrites s with t.
func (s BitSet) CopyFrom(t BitSet) { copy(s, t) }

// Equal reports whether two same-capacity bitsets hold identical bits.
func (s BitSet) Equal(t BitSet) bool {
	for k := range s {
		if s[k] != t[k] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Reset clears every bit.
func (s BitSet) Reset() {
	for k := range s {
		s[k] = 0
	}
}

// Fill sets the low n bits.
func (s BitSet) Fill(n int) {
	for i := 0; i < n; i++ {
		s.Set(i)
	}
}

// Count returns the number of set bits.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach invokes f with the index of every set bit, ascending.
func (s BitSet) ForEach(f func(i int)) {
	for k, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(k<<6 + b)
			w &= w - 1
		}
	}
}
