package dataflow

import (
	"signext/internal/cfg"
	"signext/internal/ir"
)

// Liveness holds per-block live-register sets.
type Liveness struct {
	Fn      *ir.Func
	In, Out map[*ir.Block]BitSet // live registers at block entry/exit
}

// ComputeLiveness solves backward liveness over the registers of fn.
func ComputeLiveness(fn *ir.Func, info *cfg.Info) *Liveness {
	lv := &Liveness{Fn: fn, In: map[*ir.Block]BitSet{}, Out: map[*ir.Block]BitSet{}}
	n := fn.NReg
	use := map[*ir.Block]BitSet{}
	def := map[*ir.Block]BitSet{}
	for _, b := range fn.Blocks {
		u := NewBitSet(n)
		d := NewBitSet(n)
		for _, ins := range b.Instrs {
			ins.ForEachUse(func(_ int, r ir.Reg) {
				if !d.Has(int(r)) {
					u.Set(int(r))
				}
			})
			if ins.HasDst() {
				d.Set(int(ins.Dst))
			}
		}
		use[b], def[b] = u, d
		lv.In[b] = NewBitSet(n)
		lv.Out[b] = NewBitSet(n)
	}
	order := info.PostOrder()
	changed := true
	tmp := NewBitSet(n)
	for changed {
		changed = false
		for _, b := range order {
			out := lv.Out[b]
			out.Reset()
			for _, s := range b.Succs {
				out.UnionWith(lv.In[s])
			}
			tmp.CopyFrom(out)
			tmp.AndNotWith(def[b])
			tmp.UnionWith(use[b])
			if !tmp.Equal(lv.In[b]) {
				lv.In[b].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return lv
}

// LiveAfter reports whether reg is live immediately after ins.
func (lv *Liveness) LiveAfter(ins *ir.Instr, reg ir.Reg) bool {
	b := ins.Blk
	idx := b.IndexOf(ins)
	for k := idx + 1; k < len(b.Instrs); k++ {
		x := b.Instrs[k]
		found := false
		x.ForEachUse(func(_ int, r ir.Reg) {
			if r == reg {
				found = true
			}
		})
		if found {
			return true
		}
		if x.HasDst() && x.Dst == reg {
			return false
		}
	}
	return lv.Out[b].Has(int(reg))
}
